//===- bench/bench_fig15_perturbation_spectra.cpp - Paper Fig. 15 ------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 15 ("Transition matrix spectra for Na+ ... with
// different matrix combination configurations"): spectra of
//   P1  = 0.4 Pqd + 0.6 Pgc        P1' = 0.4 Pqd + 0.3 Pgc + 0.3 Prp
//   P2  = 0.2 Pqd + 0.8 Pgc        P2' = 0.2 Pqd + 0.4 Pgc + 0.4 Prp
// and the standard deviation sigma of the sampled circuits' algorithmic
// accuracy under each. The paper reports sigma reductions of 26% (P1' vs
// P1) and 33% (P2' vs P2) and visibly flatter spectra with perturbation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"

#include <cmath>
#include <cstdlib>
#include <iostream>

using namespace marqsim;

namespace {

/// Prints the top eigenvalue magnitudes of \p P.
void printTopSpectrum(const std::string &Label, const TransitionMatrix &P,
                      size_t TopK) {
  auto Eigs = P.spectrum();
  std::cout << Label << ": |lambda| =";
  for (size_t I = 0; I < std::min(TopK, Eigs.size()); ++I)
    std::cout << " " << formatDouble(std::abs(Eigs[I]), 3);
  std::cout << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  Opts.Reps = 8;
  applyCommonFlags(CL, Opts);
  std::string Name = CL.getString("benchmark", "Na+");
  double Eps = CL.getDouble("epsilon", 0.05);
  int64_t ColumnsArg = CL.getInt("columns", 16);
  if (ColumnsArg < 1) {
    std::cerr << "error: --columns must be at least 1 (sigma is measured "
                 "on fidelity)\n";
    return 1;
  }
  size_t Columns = static_cast<size_t>(ColumnsArg);

  auto Spec = findBenchmark(Name);
  if (!Spec) {
    std::cerr << "unknown benchmark: " << Name << "\n";
    return 1;
  }
  std::cout << "Fig. 15: spectra and sampling variance under random "
               "perturbation ("
            << Name << ")\n\n";

  Hamiltonian H = makeBenchmark(*Spec);
  Opts.FidelityColumns = Columns;
  Opts.Epsilons = {Eps};

  // The four mixes are four declarative channel weights over the same two
  // MCFP artifacts: the service solves Pgc once and the Prp rounds once
  // (shared perturbation seed), then only the convex combinations differ.
  SimulationService Service;
  const ConfigSpec P1{"P1  = 0.4Pqd + 0.6Pgc          ", {0.4, 0.6, 0.0}};
  const ConfigSpec P1p{"P1' = 0.4Pqd + 0.3Pgc + 0.3Prp ", {0.4, 0.3, 0.3}};
  const ConfigSpec P2{"P2  = 0.2Pqd + 0.8Pgc          ", {0.2, 0.8, 0.0}};
  const ConfigSpec P2p{"P2' = 0.2Pqd + 0.4Pgc + 0.4Prp ", {0.2, 0.4, 0.4}};

  auto SpectrumOf = [&](const ConfigSpec &Config) {
    TaskSpec Cell = sweepTaskSpec(H, Spec->Time, Config, Opts, Eps, 0);
    std::string Error;
    auto Graph = Service.graphFor(Cell, &Error);
    if (!Graph) {
      std::cerr << "error: " << Error << "\n";
      std::exit(1);
    }
    return Graph->transitionMatrix();
  };
  std::cout << "(a) Pqd share 0.4\n";
  printTopSpectrum(P1.Name, SpectrumOf(P1), 10);
  printTopSpectrum(P1p.Name, SpectrumOf(P1p), 10);
  std::cout << "\n(b) Pqd share 0.2\n";
  printTopSpectrum(P2.Name, SpectrumOf(P2), 10);
  printTopSpectrum(P2p.Name, SpectrumOf(P2p), 10);

  /// Sigma of sampled-circuit accuracy across one batch of shots, with
  /// per-shot fidelity evaluated on the batch workers.
  auto AccuracySigma = [&](const ConfigSpec &Config, uint64_t Seed) {
    TaskSpec Cell = sweepTaskSpec(H, Spec->Time, Config, Opts, Eps, 0);
    Cell.Seed = Seed;
    std::string Error;
    std::optional<TaskResult> Task = Service.run(Cell, &Error);
    if (!Task) {
      std::cerr << "error: " << Error << "\n";
      std::exit(1);
    }
    return Task->Fidelity.Std;
  };
  double S1 = AccuracySigma(P1, 10);
  double S1p = AccuracySigma(P1p, 10);
  double S2 = AccuracySigma(P2, 20);
  double S2p = AccuracySigma(P2p, 20);

  std::cout << "\nsampled-accuracy sigma (" << Opts.Reps
            << " compilations, eps=" << formatDouble(Eps) << "):\n";
  Table T({"config", "sigma", "sigma w/ Prp", "reduction"});
  T.addRow({"Pqd share 0.4", formatDouble(S1, 5), formatDouble(S1p, 5),
            S1 > 0 ? formatPercent(1.0 - S1p / S1) : "-"});
  T.addRow({"Pqd share 0.2", formatDouble(S2, 5), formatDouble(S2p, 5),
            S2 > 0 ? formatPercent(1.0 - S2p / S2) : "-"});
  T.print(std::cout);
  printCacheStats(std::cout, Service);
  std::cout << "\nPaper reference: 26% (share 0.4) and 33% (share 0.2) "
               "sigma reductions;\nperturbed spectra sit strictly below "
               "their unperturbed counterparts.\n";
  return 0;
}
