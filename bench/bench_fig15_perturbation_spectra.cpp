//===- bench/bench_fig15_perturbation_spectra.cpp - Paper Fig. 15 ------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 15 ("Transition matrix spectra for Na+ ... with
// different matrix combination configurations"): spectra of
//   P1  = 0.4 Pqd + 0.6 Pgc        P1' = 0.4 Pqd + 0.3 Pgc + 0.3 Prp
//   P2  = 0.2 Pqd + 0.8 Pgc        P2' = 0.2 Pqd + 0.4 Pgc + 0.4 Prp
// and the standard deviation sigma of the sampled circuits' algorithmic
// accuracy under each. The paper reports sigma reductions of 26% (P1' vs
// P1) and 33% (P2' vs P2) and visibly flatter spectra with perturbation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"
#include "stats/Stats.h"

#include <cmath>
#include <iostream>

using namespace marqsim;

namespace {

/// Prints the top eigenvalue magnitudes of \p P.
void printTopSpectrum(const std::string &Label, const TransitionMatrix &P,
                      size_t TopK) {
  auto Eigs = P.spectrum();
  std::cout << Label << ": |lambda| =";
  for (size_t I = 0; I < std::min(TopK, Eigs.size()); ++I)
    std::cout << " " << formatDouble(std::abs(Eigs[I]), 3);
  std::cout << "\n";
}

/// Sigma of sampled-circuit accuracy across one batch of shots.
double accuracySigma(const Hamiltonian &H, const TransitionMatrix &P,
                     double T, double Eps, unsigned Reps, unsigned Jobs,
                     const FidelityEvaluator &Eval, uint64_t Seed) {
  BatchRequest Req;
  Req.Strategy = std::make_shared<const SamplingStrategy>(
      std::make_shared<const HTTGraph>(H, P), T, Eps);
  Req.NumShots = Reps;
  Req.Jobs = Jobs;
  Req.Seed = Seed;
  Req.KeepResults = true; // fidelity needs the schedules
  BatchResult Batch = CompilerEngine().compileBatch(Req);
  RunningStats Stats;
  for (const CompilationResult &R : Batch.Results)
    Stats.add(Eval.fidelity(R.Schedule));
  return Stats.stddev();
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  Opts.Reps = 8;
  applyCommonFlags(CL, Opts);
  std::string Name = CL.getString("benchmark", "Na+");
  double Eps = CL.getDouble("epsilon", 0.05);
  size_t Columns = static_cast<size_t>(CL.getInt("columns", 16));

  auto Spec = findBenchmark(Name);
  if (!Spec) {
    std::cerr << "unknown benchmark: " << Name << "\n";
    return 1;
  }
  std::cout << "Fig. 15: spectra and sampling variance under random "
               "perturbation ("
            << Name << ")\n\n";

  Hamiltonian H = makeBenchmark(*Spec).splitLargeTerms();
  TransitionMatrix Pqd = buildQDrift(H);
  TransitionMatrix Pgc = buildGateCancellation(H);
  RNG PerturbRng(Opts.Seed ^ 0xF15);
  TransitionMatrix Prp =
      buildRandomPerturbation(H, Opts.PerturbRounds, PerturbRng);

  TransitionMatrix P1 = TransitionMatrix::combine({&Pqd, &Pgc}, {0.4, 0.6});
  TransitionMatrix P1p =
      TransitionMatrix::combine({&Pqd, &Pgc, &Prp}, {0.4, 0.3, 0.3});
  TransitionMatrix P2 = TransitionMatrix::combine({&Pqd, &Pgc}, {0.2, 0.8});
  TransitionMatrix P2p =
      TransitionMatrix::combine({&Pqd, &Pgc, &Prp}, {0.2, 0.4, 0.4});

  std::cout << "(a) Pqd share 0.4\n";
  printTopSpectrum("P1  = 0.4Pqd + 0.6Pgc          ", P1, 10);
  printTopSpectrum("P1' = 0.4Pqd + 0.3Pgc + 0.3Prp ", P1p, 10);
  std::cout << "\n(b) Pqd share 0.2\n";
  printTopSpectrum("P2  = 0.2Pqd + 0.8Pgc          ", P2, 10);
  printTopSpectrum("P2' = 0.2Pqd + 0.4Pgc + 0.4Prp ", P2p, 10);

  FidelityEvaluator Eval(H, Spec->Time, Columns);
  double S1 =
      accuracySigma(H, P1, Spec->Time, Eps, Opts.Reps, Opts.Jobs, Eval, 10);
  double S1p = accuracySigma(H, P1p, Spec->Time, Eps, Opts.Reps, Opts.Jobs,
                             Eval, 10);
  double S2 =
      accuracySigma(H, P2, Spec->Time, Eps, Opts.Reps, Opts.Jobs, Eval, 20);
  double S2p = accuracySigma(H, P2p, Spec->Time, Eps, Opts.Reps, Opts.Jobs,
                             Eval, 20);

  std::cout << "\nsampled-accuracy sigma (" << Opts.Reps
            << " compilations, eps=" << formatDouble(Eps) << "):\n";
  Table T({"config", "sigma", "sigma w/ Prp", "reduction"});
  T.addRow({"Pqd share 0.4", formatDouble(S1, 5), formatDouble(S1p, 5),
            S1 > 0 ? formatPercent(1.0 - S1p / S1) : "-"});
  T.addRow({"Pqd share 0.2", formatDouble(S2, 5), formatDouble(S2p, 5),
            S2 > 0 ? formatPercent(1.0 - S2p / S2) : "-"});
  T.print(std::cout);
  std::cout << "\nPaper reference: 26% (share 0.4) and 33% (share 0.2) "
               "sigma reductions;\nperturbed spectra sit strictly below "
               "their unperturbed counterparts.\n";
  return 0;
}
