//===- bench/bench_fig12_data_processing.cpp - Paper Fig. 12 -----------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 12 ("Data processing with raw data from BeH2 (froze)"):
//   (a) the raw scatter of (algorithmic accuracy, CNOT count) across the
//       epsilon sweep and repeated randomized compilations, and
//   (b) the paper's processing pipeline: cluster by epsilon, average, fit
//       y = a + e^{bx + c}, and interpolate CNOT counts on an accuracy
//       grid (the paper compares configurations at accuracy 0.992-0.994).
//
// Defaults favour CI runtime: the 10-qubit LiH-froze workload with a short
// epsilon list. Pass --benchmark=BeH2-froze --paper for the paper's exact
// setting.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"
#include "stats/ExpFit.h"
#include "stats/Stats.h"

#include <algorithm>
#include <iostream>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  Opts.Epsilons = {0.1, 0.067, 0.05};
  Opts.Reps = 3;
  applyCommonFlags(CL, Opts);
  std::string Name = CL.getString("benchmark", "LiH-froze");
  int64_t ColumnsArg = CL.getInt("columns", 6);
  if (ColumnsArg < 1) {
    std::cerr << "error: --columns must be at least 1 (the accuracy axis "
                 "needs fidelity)\n";
    return 1;
  }
  size_t Columns = static_cast<size_t>(ColumnsArg);
  auto Spec = findBenchmark(Name);
  if (!Spec) {
    std::cerr << "unknown benchmark: " << Name << "\n";
    return 1;
  }

  std::cout << "Fig. 12: data processing (" << Spec->Name << ", "
            << Spec->Qubits << " qubits, " << Spec->Strings
            << " strings, t=" << formatDouble(Spec->Time) << ")\n\n";

  Hamiltonian H = makeBenchmark(*Spec);
  Opts.FidelityColumns = Columns;
  SimulationService Service;
  const ConfigSpec GC{"MarQSim-GC", *ChannelMix::preset("gc")};

  // (a) Raw data: one point per (epsilon, shot); each epsilon is one
  // declarative task, all sharing the cached MCFP solution, graph, alias
  // tables, and fidelity evaluator. Fidelity runs on the batch workers.
  std::cout << "(a) raw data points\n";
  Table Raw({"eps", "N", "shot", "accuracy", "CNOTs"});
  std::vector<double> Xs, Ys;
  std::vector<std::pair<double, std::vector<double>>> Clusters;
  for (size_t EIdx = 0; EIdx < Opts.Epsilons.size(); ++EIdx) {
    double Eps = Opts.Epsilons[EIdx];
    TaskSpec Cell = sweepTaskSpec(H, Spec->Time, GC, Opts, Eps, EIdx);
    std::string Error;
    std::optional<TaskResult> Task = Service.run(Cell, &Error);
    if (!Task) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }

    std::vector<double> ClusterCNOTs;
    for (size_t Shot = 0; Shot < Task->Batch.NumShots; ++Shot) {
      const ShotSummary &S = Task->Batch.Shots[Shot];
      double F = Task->ShotFidelities[Shot];
      Raw.addRow({formatDouble(Eps), std::to_string(S.NumSamples),
                  std::to_string(Shot), formatDouble(F, 5),
                  std::to_string(S.Counts.CNOTs)});
      Xs.push_back(F);
      Ys.push_back(static_cast<double>(S.Counts.CNOTs));
      ClusterCNOTs.push_back(static_cast<double>(S.Counts.CNOTs));
    }
    Clusters.emplace_back(Eps, ClusterCNOTs);
  }
  Raw.print(std::cout);
  printCacheStats(std::cout, Service);

  // (b) Cluster means and the exponential fit.
  std::cout << "\n(b) cluster means and y = a + e^(b x + c) fit\n";
  Table Means({"eps", "CNOT(mean)", "CNOT(std)"});
  for (const auto &[Eps, CNOTs] : Clusters)
    Means.addRow({formatDouble(Eps), formatDouble(mean(CNOTs)),
                  formatDouble(stddev(CNOTs))});
  Means.print(std::cout);

  if (Xs.size() >= 4) {
    ExpFitResult Fit = expFit(Xs, Ys);
    std::cout << "\nfit: a=" << formatDouble(Fit.A)
              << " b=" << formatDouble(Fit.B) << " c=" << formatDouble(Fit.C)
              << " SSE=" << formatDouble(Fit.SSE) << "\n\n";
    double Lo = *std::min_element(Xs.begin(), Xs.end());
    double Hi = *std::max_element(Xs.begin(), Xs.end());
    Table Interp({"accuracy", "CNOT(interpolated)"});
    for (int K = 0; K <= 6; ++K) {
      double X = Lo + (Hi - Lo) * K / 6.0;
      Interp.addRow({formatDouble(X, 5), formatDouble(Fit.eval(X))});
    }
    Interp.print(std::cout);
  }
  return 0;
}
