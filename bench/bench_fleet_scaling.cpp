//===- bench/bench_fleet_scaling.cpp - Cross-host fabric scaling --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the networked shard fabric buys: one fleet batch
// dispatched over 1, 2, and 4 loopback marqsim-daemon workers, cold
// (fresh worker stores — the coordinator pushes every artifact over the
// wire) and warm (worker stores already hold the batch's artifacts —
// every probe hits and no bytes move). Reports per configuration, as
// CSV on stdout:
//
//   phase,workers,shots,shards,wall_s,ranges_dispatched,redispatched,
//   fetch_hits,fetch_misses,artifact_bytes,eval_cpu_s,batch_hash
//
// plus one "worker" row per fleet member with its dispatch counters and
// evaluation CPU-seconds, so load balance across the fleet is visible.
//
// The run is exit-gated on the fabric's contracts, not just wall-clock:
//   * every batch hash across all six runs is identical (the fleet
//     merge is bit-exact for any worker count and phase),
//   * each cold run performs exactly ONE gate-cancellation MCFP solve
//     fleet-wide (coordinator prewarm; zero worker solves), and
//   * the warm 4-worker batch beats the warm 1-worker batch by at
//     least --min-speedup (default 1.5x; pass 0 to skip). The gate is
//     skipped automatically on hosts with fewer than 4 hardware
//     threads — loopback workers share the host CPU, so no wall-clock
//     scaling is physically available there.
// Violations exit 1.
//
// Flags: --shots=N (32) --shards=K (8) --columns=C (2) --time=T (0.5)
//        --epsilon=E (0.01) --seed=S (31337) --min-speedup=X (1.5)
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"
#include "shard/ShardCoordinator.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace marqsim;

namespace {

/// A 10-qubit register: the evaluation state vector is 1024-dim, so a
/// shot costs enough that dispatch overhead cannot hide the scaling.
Hamiltonian benchHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZYIIIXZI"},
                             {0.8, "XXIIZZIIIY"},
                             {0.6, "ZXZYIIXYII"},
                             {0.5, "IIXXIIZZYI"},
                             {0.4, "IZZXYIIIIZ"},
                             {0.3, "YIIZXZIXII"},
                             {0.2, "XYYZIIZIIX"}});
}

/// An in-process loopback worker: a resident daemon on an ephemeral
/// port with its serve() loop on a thread, modelling one remote host.
struct Worker {
  SimulationService Service;
  server::Daemon D;
  std::thread Server;
  bool Started = false;

  Worker() : D(Service, {}) {
    std::string Error;
    Started = D.start(&Error);
    if (!Started)
      std::fprintf(stderr, "error: worker start failed: %s\n",
                   Error.c_str());
    else
      Server = std::thread([this] { D.serve(); });
  }
  ~Worker() {
    if (Server.joinable()) {
      D.notifyShutdown();
      Server.join();
    }
  }
  std::string hostPort() const {
    return "127.0.0.1:" + std::to_string(D.port());
  }
};

std::string freshDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / Name).string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

struct RunRow {
  double WallSeconds = 0.0;
  uint64_t BatchHash = 0;
  ShardReport Report;
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const int64_t Shots = CL.getInt("shots", 32);
  const int64_t Shards = CL.getInt("shards", 8);
  const int64_t Columns = CL.getInt("columns", 2);
  const double MinSpeedup = CL.getDouble("min-speedup", 1.5);
  if (Shots <= 0 || Shards <= 0 || Columns < 0) {
    std::fprintf(stderr, "error: --shots/--shards must be positive\n");
    return 1;
  }

  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(benchHamiltonian());
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = CL.getDouble("time", 0.5);
  Spec.Epsilon = CL.getDouble("epsilon", 0.01);
  Spec.Shots = static_cast<size_t>(Shots);
  Spec.Seed = static_cast<uint64_t>(CL.getInt("seed", 31337));
  Spec.Evaluate.FidelityColumns = static_cast<size_t>(Columns);
  // One compile/eval thread per worker: each loopback daemon models one
  // remote host contributing one core, so the fleet's scaling comes from
  // worker count alone instead of shot-level threads inside one daemon
  // (which would saturate the machine at W=1 and flatten the curve).
  Spec.Jobs = static_cast<unsigned>(CL.getInt("jobs", 1));
  Spec.EvalJobs = Spec.Jobs;

  std::printf("phase,workers,shots,shards,wall_s,ranges_dispatched,"
              "redispatched,fetch_hits,fetch_misses,artifact_bytes,"
              "eval_cpu_s,batch_hash\n");

  std::set<uint64_t> Hashes;
  double WarmWall1 = 0.0, WarmWall4 = 0.0;
  bool Ok = true;

  for (unsigned W : {1u, 2u, 4u}) {
    // One fleet per worker count; the warm phase reuses its daemons and
    // the coordinator-side service, so only dispatch and evaluation
    // remain on the clock.
    std::vector<std::unique_ptr<Worker>> Fleet;
    std::vector<std::string> HostPorts;
    for (unsigned I = 0; I < W; ++I) {
      Fleet.push_back(std::make_unique<Worker>());
      if (!Fleet.back()->Started)
        return 1;
      HostPorts.push_back(Fleet.back()->hostPort());
    }
    SimulationService Coordinator;

    for (const char *Phase : {"cold", "warm"}) {
      ShardOptions Options;
      Options.ShardCount = static_cast<unsigned>(Shards);
      Options.WorkDir = freshDir("fleet_bench_" + std::to_string(W) + "_" +
                                 Phase);
      Options.Workers = HostPorts;
      Options.SharedService = &Coordinator;

      RunRow Row;
      std::string Error;
      Timer Wall;
      std::optional<TaskResult> Merged =
          ShardCoordinator(Options).run(Spec, &Error, &Row.Report);
      Row.WallSeconds = Wall.seconds();
      if (!Merged) {
        std::fprintf(stderr, "error: %s fleet of %u failed: %s\n", Phase, W,
                     Error.c_str());
        return 1;
      }
      Row.BatchHash = Merged->Batch.batchHash();
      Hashes.insert(Row.BatchHash);

      size_t Dispatched = 0, Redispatched = 0, Hits = 0, Misses = 0;
      size_t Bytes = 0;
      double EvalSeconds = 0.0;
      for (const FleetWorkerStats &WS : Row.Report.Fleet.Workers) {
        Dispatched += WS.RangesDispatched;
        Redispatched += WS.RangesRedispatched;
        Hits += WS.FetchHits;
        Misses += WS.FetchMisses;
        Bytes += WS.ArtifactBytesServed;
        EvalSeconds += WS.EvalSeconds;
      }
      std::printf("%s,%u,%" PRId64 ",%" PRId64
                  ",%.4f,%zu,%zu,%zu,%zu,%zu,%.4f,%016" PRIx64 "\n",
                  Phase, W, Shots, Shards, Row.WallSeconds, Dispatched,
                  Redispatched, Hits, Misses, Bytes, EvalSeconds,
                  Row.BatchHash);
      for (const FleetWorkerStats &WS : Row.Report.Fleet.Workers)
        std::printf("worker,%s,%u,%s,%zu,%zu,%zu,%zu,%zu,%.4f,%s\n", Phase,
                    W, WS.HostPort.c_str(), WS.RangesDispatched,
                    WS.RangesRedispatched, WS.FetchHits, WS.FetchMisses,
                    WS.ArtifactBytesServed, WS.EvalSeconds,
                    WS.Alive ? "alive" : "dead");

      const bool Cold = Phase[0] == 'c';
      if (Cold) {
        // The one-solve contract is exact and noise-free: the
        // coordinator's prewarm is the only MCFP solve fleet-wide.
        if (Row.Report.LocalStats.GCSolveMisses != 1 ||
            Row.Report.WorkerStats.GCSolveMisses != 0) {
          std::fprintf(stderr,
                       "error: cold fleet of %u solved %zu+%zu times, "
                       "want 1+0\n",
                       W, Row.Report.LocalStats.GCSolveMisses,
                       Row.Report.WorkerStats.GCSolveMisses);
          Ok = false;
        }
        if (Misses == 0 || Bytes == 0) {
          std::fprintf(stderr,
                       "error: cold fleet of %u pushed no artifacts\n", W);
          Ok = false;
        }
      } else {
        if (Hits == 0 || Misses != 0) {
          std::fprintf(stderr,
                       "error: warm fleet of %u re-fetched artifacts "
                       "(hits=%zu misses=%zu)\n",
                       W, Hits, Misses);
          Ok = false;
        }
        if (W == 1)
          WarmWall1 = Row.WallSeconds;
        if (W == 4)
          WarmWall4 = Row.WallSeconds;
      }
      if (Redispatched != 0) {
        std::fprintf(stderr,
                     "error: loopback fleet of %u re-dispatched %zu "
                     "ranges\n",
                     W, Redispatched);
        Ok = false;
      }
    }
  }

  if (Hashes.size() != 1) {
    std::fprintf(stderr,
                 "error: batch hash varied across worker counts/phases "
                 "(%zu distinct)\n",
                 Hashes.size());
    Ok = false;
  }
  // A loopback fleet shares the host's cores, so the wall-clock gate is
  // only meaningful when there are enough of them to scale into.
  const unsigned Cores = std::thread::hardware_concurrency();
  if (Cores < 4) {
    std::fprintf(stderr,
                 "note: %u hardware thread(s); skipping the %.2fx warm "
                 "speedup gate (loopback workers share the host CPU)\n",
                 Cores, MinSpeedup);
  } else if (MinSpeedup > 0.0 && WarmWall4 > 0.0 &&
             WarmWall1 < MinSpeedup * WarmWall4) {
    std::fprintf(stderr,
                 "error: warm 4-worker speedup %.2fx below the %.2fx "
                 "gate (1w %.4fs, 4w %.4fs)\n",
                 WarmWall1 / WarmWall4, MinSpeedup, WarmWall1, WarmWall4);
    Ok = false;
  }
  if (Ok)
    std::fprintf(stderr,
                 "fleet scaling ok: warm 1w %.4fs -> 4w %.4fs (%.2fx)\n",
                 WarmWall1, WarmWall4, WarmWall1 / WarmWall4);
  return Ok ? 0 : 1;
}
