//===- bench/bench_micro_substrate.cpp - Substrate microbenchmarks -----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the substrates the compiler is built
// on: Pauli algebra, analytic Pauli-rotation application, discrete
// sampling, the min-cost-flow solver at MarQSim network shapes, spectra
// via Hessenberg QR, schedule emission, and dense matrix exponentials.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/TransitionBuilders.h"
#include "flow/MinCostFlow.h"
#include "hamgen/Models.h"
#include "linalg/Expm.h"
#include "markov/Sampler.h"
#include "sim/StateVector.h"

#include <benchmark/benchmark.h>

using namespace marqsim;

static void BM_PauliMultiply(benchmark::State &State) {
  RNG Rng(1);
  std::vector<PauliString> Strings;
  for (int I = 0; I < 256; ++I) {
    PauliString P;
    for (unsigned Q = 0; Q < 32; ++Q)
      P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
    Strings.push_back(P);
  }
  size_t I = 0;
  for (auto _ : State) {
    int Pow = 0;
    benchmark::DoNotOptimize(
        Strings[I % 256].multiply(Strings[(I + 7) % 256], Pow));
    benchmark::DoNotOptimize(Pow);
    ++I;
  }
}
BENCHMARK(BM_PauliMultiply);

static void BM_ApplyPauliExp(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  RNG Rng(2);
  PauliString P;
  for (unsigned Q = 0; Q < N; ++Q)
    P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
  StateVector SV(N, 0);
  for (auto _ : State)
    SV.applyPauliExp(P, 0.01);
  State.SetItemsProcessed(State.iterations() * (int64_t(1) << N));
}
BENCHMARK(BM_ApplyPauliExp)->Arg(8)->Arg(12)->Arg(16);

static void BM_AliasSampler(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  RNG Rng(3);
  std::vector<double> W(N);
  for (double &X : W)
    X = Rng.uniform() + 1e-3;
  AliasSampler S(W);
  RNG Draw(4);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.sample(Draw));
}
BENCHMARK(BM_AliasSampler)->Arg(100)->Arg(1000);

static void BM_CDFSampler(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  RNG Rng(5);
  std::vector<double> W(N);
  for (double &X : W)
    X = Rng.uniform() + 1e-3;
  CDFSampler S(W);
  RNG Draw(6);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.sample(Draw));
}
BENCHMARK(BM_CDFSampler)->Arg(100)->Arg(1000);

static void BM_MinCostFlowBipartite(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    RNG Rng(7);
    MinCostFlow Net(2 * N + 2);
    int64_t Scale = 1'000'000;
    std::vector<int64_t> Units(N, Scale / static_cast<int64_t>(N));
    Units[0] += Scale % static_cast<int64_t>(N);
    for (size_t I = 0; I < N; ++I)
      Net.addEdge(0, 1 + I, Units[I], 0);
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        if (I != J)
          Net.addEdge(1 + I, 1 + N + J, MinCostFlow::kInfiniteCapacity,
                      static_cast<int64_t>(Rng.uniformInt(30)));
    for (size_t J = 0; J < N; ++J)
      Net.addEdge(1 + N + J, 2 * N + 1, Units[J], 0);
    State.ResumeTiming();
    auto R = Net.solve(0, 2 * N + 1, Scale);
    benchmark::DoNotOptimize(R.TotalCost);
  }
}
BENCHMARK(BM_MinCostFlowBipartite)->Arg(60)->Arg(120)->Arg(240)
    ->Unit(benchmark::kMillisecond);

static void BM_SpectrumQR(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  RNG Rng(8);
  TransitionMatrix P(N);
  for (size_t I = 0; I < N; ++I) {
    double Sum = 0;
    std::vector<double> Row(N);
    for (size_t J = 0; J < N; ++J) {
      Row[J] = Rng.uniform() + 1e-3;
      Sum += Row[J];
    }
    for (size_t J = 0; J < N; ++J)
      P.at(I, J) = Row[J] / Sum;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(P.spectrum());
  State.SetComplexityN(static_cast<int64_t>(N));
}
BENCHMARK(BM_SpectrumQR)->Arg(60)->Arg(120)->Arg(240)
    ->Unit(benchmark::kMillisecond);

static void BM_EmitSchedule(benchmark::State &State) {
  RNG Rng(9);
  Hamiltonian H = makeRandomHamiltonian(16, 64, Rng);
  std::vector<ScheduledRotation> Schedule;
  for (int K = 0; K < 4096; ++K)
    Schedule.emplace_back(H.term(Rng.uniformInt(64)).String, 0.003);
  for (auto _ : State) {
    Circuit C = emitSchedule(Schedule, 16);
    benchmark::DoNotOptimize(C.size());
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_EmitSchedule)->Unit(benchmark::kMillisecond);

static void BM_ExpmDense(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  RNG Rng(10);
  Hamiltonian H = makeRandomHamiltonian(N, 12, Rng);
  Matrix M = H.toMatrix() * Complex(0.0, 0.3);
  for (auto _ : State)
    benchmark::DoNotOptimize(expm(M));
  State.SetComplexityN(int64_t(1) << N);
}
BENCHMARK(BM_ExpmDense)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

static void BM_BuildGateCancellation(benchmark::State &State) {
  const size_t Terms = static_cast<size_t>(State.range(0));
  RNG Rng(11);
  Hamiltonian H =
      makeRandomHamiltonian(12, Terms, Rng).rescaledToLambda(10.0);
  for (auto _ : State)
    benchmark::DoNotOptimize(buildGateCancellation(H).size());
}
BENCHMARK(BM_BuildGateCancellation)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
