//===- bench/bench_daemon_throughput.cpp - Resident daemon throughput ---------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what staying resident buys: N concurrent clients submit the
// same TaskSpec to an in-process daemon, cold (empty caches — the first
// requests pay the MCFP solve and the fidelity-column evolution) and
// warm (every artifact cached — requests only sample, emit, and
// evaluate). Reports request throughput and exact p50/p90/p99 submit-to-
// result latencies per phase, as CSV on stdout:
//
//   phase,clients,rounds,requests,wall_s,req_per_s,p50_ms,p90_ms,p99_ms,
//   gc_solves_delta
//
// The run is exit-gated on the coalescing contract, not on wall-clock
// (CI machines are noisy; the cache accounting is exact):
//   * every batch hash across both phases is identical (N concurrent
//     clients cannot perturb determinism), and
//   * the daemon performs exactly ONE gate-cancellation MCFP solve
//     total — with C clients x R rounds x 2 phases requests, all
//     2*C*R - 1 repeats reuse it, i.e. every repeat client saves at
//     least one solve.
// Violations exit 1.
//
// Flags: --clients=C (4) --rounds=R (3) --shots=N (2) --columns=K (2)
//        --time=T (0.4) --epsilon=E (0.06) --seed=S (7)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "server/Client.h"
#include "server/Daemon.h"
#include "support/Timer.h"

#include <algorithm>
#include <iostream>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace marqsim;

namespace {

/// Exact quantile of a sorted latency sample (nearest-rank).
double quantileMs(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  return Sorted[std::min(Rank, Sorted.size() - 1)];
}

/// Cumulative MCFP solve count from the daemon's stats frame.
int64_t gcSolves(server::DaemonClient &Client) {
  std::optional<json::Value> Stats = Client.serverStats();
  if (!Stats)
    return -1;
  const json::Value *Cache = Stats->find("cache");
  const json::Value *Solves = Cache ? Cache->find("gc_solves") : nullptr;
  return Solves ? Solves->asInt() : -1;
}

struct PhaseResult {
  double WallSeconds = 0.0;
  std::vector<double> LatenciesMs; // sorted
  std::set<std::string> BatchHashes;
  bool Ok = true;
  std::string Error;
};

/// C clients x R sequential rounds of one spec against the daemon.
PhaseResult runPhase(const std::string &HostPort, const TaskSpec &Spec,
                     unsigned Clients, unsigned Rounds) {
  PhaseResult Result;
  std::mutex M;
  Timer Wall;
  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      std::string Error;
      std::optional<server::DaemonClient> Client =
          server::DaemonClient::connectTo(HostPort, &Error);
      if (!Client) {
        std::lock_guard<std::mutex> Lock(M);
        Result.Ok = false;
        Result.Error = "client " + std::to_string(C) + ": " + Error;
        return;
      }
      for (unsigned R = 0; R < Rounds; ++R) {
        Timer Latency;
        std::optional<server::RemoteRunResult> Out =
            Client->runTask(Spec, &Error);
        double Ms = Latency.seconds() * 1e3;
        std::lock_guard<std::mutex> Lock(M);
        if (!Out) {
          Result.Ok = false;
          Result.Error = "client " + std::to_string(C) + " round " +
                         std::to_string(R) + ": " + Error;
          return;
        }
        Result.LatenciesMs.push_back(Ms);
        Result.BatchHashes.insert(
            std::to_string(Out->Result.Batch.batchHash()));
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Result.WallSeconds = Wall.seconds();
  std::sort(Result.LatenciesMs.begin(), Result.LatenciesMs.end());
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  unsigned Clients = static_cast<unsigned>(CL.getInt("clients", 4));
  unsigned Rounds = static_cast<unsigned>(CL.getInt("rounds", 3));
  if (Clients < 1 || Rounds < 1) {
    std::cerr << "error: --clients and --rounds must be at least 1\n";
    return 1;
  }

  TaskSpec Spec;
  // The Fig. 11 / Example 5.3 Hamiltonian, the repo's standard workload.
  Spec.Source = HamiltonianSource::fromHamiltonian(
      Hamiltonian::parse({{1.0, "IIIZY"},
                          {1.0, "XXIII"},
                          {0.7, "ZXZYI"},
                          {0.5, "IIZZX"},
                          {0.3, "XXYYZ"}}));
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = CL.getDouble("time", 0.4);
  Spec.Epsilon = CL.getDouble("epsilon", 0.06);
  Spec.Shots = static_cast<size_t>(CL.getInt("shots", 2));
  Spec.Seed = static_cast<uint64_t>(CL.getInt("seed", 7));
  Spec.Evaluate.FidelityColumns =
      static_cast<size_t>(CL.getInt("columns", 2));

  // Schedulable concurrency matching the client count, so the phases
  // measure contention on the caches rather than on the executor queue.
  SimulationService Service;
  server::DaemonOptions Opts;
  Opts.Scheduler.Workers = Clients;
  server::Daemon Daemon(Service, Opts);
  std::string Error;
  if (!Daemon.start(&Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::thread Server([&] { Daemon.serve(); });
  const std::string HostPort =
      "127.0.0.1:" + std::to_string(Daemon.port());

  std::optional<server::DaemonClient> Probe =
      server::DaemonClient::connectTo(HostPort, &Error);
  if (!Probe) {
    std::cerr << "error: " << Error << "\n";
    Daemon.notifyShutdown();
    Server.join();
    return 1;
  }

  std::cout << "phase,clients,rounds,requests,wall_s,req_per_s,p50_ms,"
               "p90_ms,p99_ms,gc_solves_delta\n";
  std::set<std::string> AllHashes;
  int64_t TotalSolves = 0;
  bool Ok = true;
  int64_t SolvesBefore = gcSolves(*Probe);
  for (const char *Phase : {"cold", "warm"}) {
    PhaseResult R = runPhase(HostPort, Spec, Clients, Rounds);
    int64_t SolvesAfter = gcSolves(*Probe);
    if (!R.Ok) {
      std::cerr << "error: " << Phase << " phase: " << R.Error << "\n";
      Ok = false;
      break;
    }
    const size_t Requests = R.LatenciesMs.size();
    std::cout << Phase << "," << Clients << "," << Rounds << "," << Requests
              << "," << formatDouble(R.WallSeconds, 4) << ","
              << formatDouble(static_cast<double>(Requests) /
                                  std::max(R.WallSeconds, 1e-9),
                              2)
              << "," << formatDouble(quantileMs(R.LatenciesMs, 0.50), 3)
              << "," << formatDouble(quantileMs(R.LatenciesMs, 0.90), 3)
              << "," << formatDouble(quantileMs(R.LatenciesMs, 0.99), 3)
              << "," << (SolvesAfter - SolvesBefore) << "\n";
    TotalSolves += SolvesAfter - SolvesBefore;
    SolvesBefore = SolvesAfter;
    AllHashes.insert(R.BatchHashes.begin(), R.BatchHashes.end());
  }

  Probe->shutdownServer();
  Server.join();
  if (!Ok)
    return 1;

  // The exit gates: bit-identity across every concurrent request, and
  // full warm-path amortization (one solve total, every repeat saved).
  if (AllHashes.size() != 1) {
    std::cerr << "error: batch hashes diverged across requests ("
              << AllHashes.size() << " distinct)\n";
    return 1;
  }
  if (TotalSolves != 1) {
    std::cerr << "error: expected exactly 1 MCFP solve across "
              << (2 * Clients * Rounds) << " requests, measured "
              << TotalSolves << " — the warm path is not amortizing\n";
    return 1;
  }
  return 0;
}
