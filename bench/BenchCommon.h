//===- bench/BenchCommon.h - Shared experiment harness ----------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure harnesses: the paper's three
/// experimental configurations (Section 6.1), epsilon sweeps with repeated
/// randomized compilation, fidelity evaluation, and reduction summaries.
///
/// Every harness accepts:
///   --paper         full-scale parameters (paper epsilon list, 20 reps,
///                   100 perturbation rounds)
///   --reps=K        repetitions (shots) per epsilon
///   --jobs=J        worker threads for batch compilation (results are
///                   bit-identical for every J)
///   --seed=S        base RNG seed
///
/// Sweeps run through a shared SimulationService: each (config, epsilon)
/// cell is one declarative TaskSpec, and the service's content-hash caches
/// guarantee one gate-cancellation MCFP solve per (Hamiltonian, flow
/// options) across the whole sweep — every other cell reuses it. Fidelity
/// (SweepOptions::FidelityColumns > 0) is evaluated per shot inside the
/// batch workers, so --jobs covers it too.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_BENCH_BENCHCOMMON_H
#define MARQSIM_BENCH_BENCHCOMMON_H

#include "service/SimulationService.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace marqsim {

/// One experimental configuration: a named convex combination of
/// Pqd / Pgc / Prp (paper Section 6.1).
struct ConfigSpec {
  std::string Name;
  ChannelMix Mix;
};

/// The paper's three configurations: Baseline (qDrift + cancellation),
/// MarQSim-GC (0.4/0.6), MarQSim-GC-RP (0.4/0.3/0.3).
std::vector<ConfigSpec> paperConfigs();

/// Sweep parameters shared by the figure harnesses.
struct SweepOptions {
  /// Target precisions; each maps to N = ceil(2 lambda^2 t^2 / eps).
  std::vector<double> Epsilons = {0.1, 0.067, 0.05, 0.04};
  /// Repeated compilations per epsilon (compilation is randomized).
  unsigned Reps = 3;
  /// Perturbation rounds for Prp (paper: 100).
  unsigned PerturbRounds = 8;
  /// Base seed; each (epsilon, shot) pair derives its own substream via
  /// RNG::forShot.
  uint64_t Seed = 1;
  /// Columns for fidelity estimation; 0 disables fidelity entirely.
  size_t FidelityColumns = 0;
  /// Worker threads per batch (0 = all hardware threads). Results are
  /// bit-identical regardless of the value.
  unsigned Jobs = 1;
};

/// Aggregated measurements at one epsilon.
struct SweepPoint {
  double Epsilon = 0.0;
  size_t NumSamples = 0;
  double MeanCNOTs = 0.0;
  double StdCNOTs = 0.0;
  double MeanSingles = 0.0;
  double MeanTotal = 0.0;
  double MeanFidelity = 0.0;
  double StdFidelity = 0.0;
  bool HasFidelity = false;
};

/// The series of one configuration over the epsilon sweep.
struct SweepResult {
  ConfigSpec Config;
  std::vector<SweepPoint> Points;
};

/// Builds the TaskSpec of one (config, epsilon) sweep cell; the shared
/// knobs (rounds, perturbation seed, shots, jobs, fidelity) come from
/// \p Opts. Exposed so harnesses can derive one-off cells (spectra, DOT)
/// that still hit the same cache entries as the sweep.
TaskSpec sweepTaskSpec(const Hamiltonian &H, double T,
                       const ConfigSpec &Config, const SweepOptions &Opts,
                       double Epsilon, size_t EpsilonIndex);

/// Runs the sweep for one configuration of \p H at evolution time \p T
/// through \p Service. Fidelity is evaluated (in-worker) when
/// Opts.FidelityColumns > 0.
SweepResult runConfigSweep(SimulationService &Service, const Hamiltonian &H,
                           double T, const ConfigSpec &Config,
                           const SweepOptions &Opts);

/// Gate reductions of \p Opt relative to \p Base, averaged over matched
/// epsilon points (identical N by construction).
struct ReductionSummary {
  double CNOT = 0.0;
  double Single = 0.0;
  double Total = 0.0;
};
ReductionSummary averageReduction(const SweepResult &Base,
                                  const SweepResult &Opt);

/// Prints one benchmark's sweep series as an aligned table.
void printSweepTable(std::ostream &OS, const std::string &Title,
                     const std::vector<SweepResult> &Results);

/// Prints the service's cumulative cache accounting (one line).
void printCacheStats(std::ostream &OS, const SimulationService &Service);

/// Applies --paper / --reps / --seed / --eps (comma list) to \p Opts.
void applyCommonFlags(const CommandLine &CL, SweepOptions &Opts);

} // namespace marqsim

#endif // MARQSIM_BENCH_BENCHCOMMON_H
