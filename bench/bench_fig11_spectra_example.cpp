//===- bench/bench_fig11_spectra_example.cpp - Paper Fig. 11 -----------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 11: the spectra of the two transition matrices of the
// paper's Example 5.3 Hamiltonian
//   H = 1.0 IIIZY + 1.0 XXIII + 0.7 ZXZYI + 0.5 IIZZX + 0.3 XXYYZ.
// Subfigure (a): Pqd is rank one, spectrum {1, 0, 0, 0, 0}.
// Subfigure (b): P = 0.4 Pqd + 0.6 Pgc has non-trivial secondary
// eigenvalues (the paper reports 1, 0.46, 0.46, 0.25, 0).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/CNOTCountOracle.h"

#include <cmath>
#include <iostream>

using namespace marqsim;

static void printSpectrum(const std::string &Label,
                          const TransitionMatrix &P) {
  std::cout << Label << "\n";
  Table T({"i", "|lambda_i|", "Re", "Im"});
  auto Eigs = P.spectrum();
  for (size_t I = 0; I < Eigs.size(); ++I)
    T.addRow({std::to_string(I + 1), formatDouble(std::abs(Eigs[I])),
              formatDouble(Eigs[I].real()), formatDouble(Eigs[I].imag())});
  T.print(std::cout);
  std::cout << "\n";
}

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  (void)CL;
  Hamiltonian H = Hamiltonian::parse({{1.0, "IIIZY"},
                                      {1.0, "XXIII"},
                                      {0.7, "ZXZYI"},
                                      {0.5, "IIZZX"},
                                      {0.3, "XXYYZ"}});

  std::cout << "Fig. 11: transition matrix spectra (Example 5.3)\n\n";
  TransitionMatrix Pqd = buildQDrift(H);
  printSpectrum("(a) Spectra of Pqd (rank-1: {1, 0, 0, 0, 0})", Pqd);

  TransitionMatrix Pgc = buildGateCancellation(H);
  TransitionMatrix P = combineWithQDrift(H, Pgc, 0.4);
  printSpectrum("(b) Spectra of P = 0.4 Pqd + 0.6 Pgc "
                "(paper: {1, 0.46, 0.46, 0.25, 0})",
                P);

  std::cout << "Expected CNOTs per transition (Prop. 5.1 objective):\n";
  std::vector<double> Pi = H.stationaryDistribution();
  Table T({"matrix", "E[CNOTs/transition]"});
  T.addRow({"Pqd", formatDouble(expectedTransitionCNOTs(H, Pqd, Pi))});
  T.addRow(
      {"0.4Pqd+0.6Pgc", formatDouble(expectedTransitionCNOTs(H, P, Pi))});
  T.print(std::cout);
  return 0;
}
