//===- bench/bench_eval_kernels.cpp - Fused evaluation kernel proof ----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The evaluation-substrate contract, as a machine-checkable table: the
// fused in-place Pauli kernels, the StatePanel multi-column sweep, the
// EvalJobs column-chunked evaluation, the fused evolve+overlap tail, AND
// every SIMD kernel tier must all emit *byte-identical* fidelity hex to
// the textbook reference path (a faithful copy of the original two-pass
// scratch kernel replayed column by column), while being substantially
// faster. The opt-in FP32 panel tier is the one exception: it is gated
// against the reference to a tolerance, not bitwise.
//
// Paths timed per column count:
//   reference     — fresh state per column, two-pass scratch applyPauliExp
//                   with a PauliString::applyToBasis call per element (the
//                   pre-fusion seed path, kept here as the yardstick)
//   fused         — fresh StateVector per column, fused single-pass
//                   kernels under the dispatched tier
//   panel-<tier>  — FidelityEvaluator::fidelity with the kernel dispatch
//                   pinned to <tier>, one row per tier the host can run
//                   (always at least panel-scalar; the hex must not change
//                   across tiers)
//   panel         — the same under the dispatched tier
//   chunked       — panel with EvalJobs=4 (bit-identity under fan-out)
//   panel-fp32    — the FP32 panel tier (tolerance gate, not hex)
//
// A second, overlap-heavy table (16 columns, 2 rotations — overlap
// accumulation dominates) separates the fused evolve+overlap tail from
// the unfused evolve-then-overlapWith path, per runnable tier:
//   reference-ov     — the scratch yardstick on the overlap-heavy shape
//   unfused-<tier>   — panel sweep of every rotation, then one strided
//                      overlapWith walk per column
//   fused-<tier>     — panel sweep of all but the last rotation, then the
//                      fused tail (rotate + streaming per-lane overlap
//                      accumulation in one kernel call)
//
// Output is CSV (stdout):
//   columns,path,kernel,evolve_ms,overlap_ms,eval_ms,speedup,fidelity_hex
// where kernel is the tier that produced the row, speedup is vs the
// table's reference row, and evolve_ms/overlap_ms split eval_ms into the
// rotation sweeps vs the overlap reduction where the bench can observe
// the boundary (0 for the production-evaluator rows, which time the whole
// evaluation). Exit code 1 when any FP64 path's hex differs from the
// reference, when the FP32 fidelity strays beyond --fp32-tol, or when a
// speedup gate fails.
//
// Speedup gates (each disabled by passing 0):
//   --min-speedup=X        panel vs reference at >= 8 columns (default 3)
//   --min-simd-speedup=X   panel vs panel-scalar at >= 8 columns (default
//                          1.5); skipped — not failed — when the
//                          dispatched tier is already scalar (no ISA, or
//                          the process runs under MARQSIM_FORCE_SCALAR=1)
//   --min-fused-speedup=X  fused-<tier> vs unfused-<tier> on the
//                          overlap-heavy table (default 1.15), gated on
//                          the scalar tier and on the best tier the host
//                          runs; tiers the host lacks are reported as
//                          skipped, never failed
//
// --list-tiers prints the runnable tier names (best first, scalar last),
// one per line, and exits — CI uses it to build its pin matrix.
//
// Flags: --qubits=N (10) --reps=R (8 Trotter reps; ~R*terms rotations)
//        --time=T (0.9) --min-seconds=S (0.25 per timing cell)
//        --fp32-tol=E (1e-3)
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "sim/Fidelity.h"
#include "sim/Kernels.h"
#include "sim/StatePanel.h"
#include "support/CommandLine.h"
#include "support/Serial.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

using namespace marqsim;

namespace {

/// The pre-fusion evaluation kernel, verbatim: one scratch pass forming
/// P|psi>, one combine pass, an applyToBasis call per element. This is the
/// seed path every fused kernel must reproduce bit for bit.
void referencePauliExp(CVector &Amp, CVector &Scratch, const PauliString &P,
                       double Theta) {
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Amp)
      A *= Phase;
    return;
  }
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  for (size_t X = 0; X < Amp.size(); ++X)
    Amp[X] = CosT * Amp[X] + ISinT * Scratch[X];
}

/// One evaluation's result plus the evolve/overlap split where the bench
/// observes the boundary (zeros where it cannot).
struct SplitEval {
  double Fidelity = 0.0;
  double EvolveSec = 0.0;
  double OverlapSec = 0.0;
};

SplitEval referenceFidelity(const FidelityEvaluator &Eval,
                            const std::vector<ScheduledRotation> &Schedule) {
  const size_t Dim = size_t(1) << Eval.numQubits();
  CVector Amp, Scratch(Dim);
  Complex Acc = 0.0;
  SplitEval R;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    Amp.assign(Dim, Complex(0.0, 0.0));
    Amp[Eval.columns()[C]] = 1.0;
    Timer Evolve;
    for (const ScheduledRotation &Step : Schedule)
      referencePauliExp(Amp, Scratch, Step.String, Step.Tau);
    R.EvolveSec += Evolve.seconds();
    Timer Overlap;
    Acc += innerProduct(Eval.targets()[C], Amp);
    R.OverlapSec += Overlap.seconds();
  }
  R.Fidelity = std::abs(Acc) / static_cast<double>(Eval.numColumns());
  return R;
}

/// Per-column replay through the fused StateVector kernels (no panel).
SplitEval fusedSerialFidelity(const FidelityEvaluator &Eval,
                              const std::vector<ScheduledRotation> &Schedule) {
  Complex Acc = 0.0;
  SplitEval R;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    StateVector SV(Eval.numQubits(), Eval.columns()[C]);
    Timer Evolve;
    for (const ScheduledRotation &Step : Schedule)
      SV.applyPauliExp(Step.String, Step.Tau);
    R.EvolveSec += Evolve.seconds();
    Timer Overlap;
    Acc += innerProduct(Eval.targets()[C], SV.amplitudes());
    R.OverlapSec += Overlap.seconds();
  }
  R.Fidelity = std::abs(Acc) / static_cast<double>(Eval.numColumns());
  return R;
}

/// Packs \p Eval's targets block by block at the FP64 panel stride, once,
/// mirroring the evaluator's cached TargetPanels so the fused timing below
/// excludes the one-time packing cost exactly as production does.
std::vector<TargetPanel> packTargets(const FidelityEvaluator &Eval) {
  std::vector<TargetPanel> Packed;
  const size_t N = Eval.numColumns();
  constexpr size_t W = StatePanel::PreferredWidth;
  constexpr size_t Lane = StatePanel::LaneMultiple;
  for (size_t Begin = 0; Begin < N; Begin += W) {
    const size_t Width = std::min(Begin + W, N) - Begin;
    const size_t Stride = (Width + Lane - 1) / Lane * Lane;
    Packed.emplace_back(Eval.targets().data() + Begin, Width, Stride);
  }
  return Packed;
}

/// Bench-local FP64 panel evaluation with an observable evolve/overlap
/// boundary. Unfused (\p Packed == nullptr): sweep every rotation, then
/// one strided overlapWith walk per column. Fused: sweep all but the last
/// rotation, then the fused evolve+overlap tail against the pre-packed
/// targets. Both reduce overlaps in ascending column order — the
/// evaluator's chain — so the hex must match the reference path.
SplitEval panelFidelity(const FidelityEvaluator &Eval,
                        const std::vector<ScheduledRotation> &Schedule,
                        const std::vector<TargetPanel> *Packed) {
  Complex Acc = 0.0;
  SplitEval R;
  const size_t N = Eval.numColumns();
  constexpr size_t W = StatePanel::PreferredWidth;
  for (size_t Begin = 0, Block = 0; Begin < N; Begin += W, ++Block) {
    const size_t End = std::min(Begin + W, N);
    StatePanel Panel(Eval.numQubits(), Eval.columns().data() + Begin,
                     End - Begin);
    const size_t Swept = Schedule.size() - (Packed ? 1 : 0);
    Timer Evolve;
    for (size_t I = 0; I < Swept; ++I)
      Panel.applyPauliExpAll(Schedule[I].String, Schedule[I].Tau);
    R.EvolveSec += Evolve.seconds();
    Timer Overlap;
    if (Packed) {
      std::vector<Complex> Out(End - Begin);
      Panel.applyPauliExpAllFused(Schedule.back().String, Schedule.back().Tau,
                                  (*Packed)[Block], Out.data());
      for (size_t C = 0; C < End - Begin; ++C)
        Acc += Out[C];
    } else {
      for (size_t C = 0; C < End - Begin; ++C)
        Acc += Panel.overlapWith(Eval.targets()[Begin + C], C);
    }
    R.OverlapSec += Overlap.seconds();
  }
  R.Fidelity = std::abs(Acc) / static_cast<double>(N);
  return R;
}

struct Row {
  std::string Name;
  std::string Kernel;
  double EvolveMs;
  double OverlapMs;
  double Ms;
  double Fidelity;
  bool BitExact; // gate: hex-identical to reference vs fp32 tolerance
};

/// Times \p Run with enough iterations to fill \p MinSeconds and appends a
/// row: total ms from the wall clock around the loop, the evolve/overlap
/// split averaged over the same iterations (the evaluation itself is
/// identical every time).
template <typename Fn>
void timeRow(std::vector<Row> &Rows, double MinSeconds, std::string Name,
             std::string Kernel, bool BitExact, const Fn &Run) {
  SplitEval Sample = Run(); // warm-up + correctness sample
  Timer Once;
  (void)Run();
  double Single = Once.seconds();
  size_t Iters = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(MinSeconds / std::max(Single, 1e-9))));
  SplitEval Acc;
  Timer Clock;
  for (size_t I = 0; I < Iters; ++I) {
    SplitEval E = Run();
    Acc.EvolveSec += E.EvolveSec;
    Acc.OverlapSec += E.OverlapSec;
  }
  const double Scale = 1e3 / static_cast<double>(Iters);
  Rows.push_back({std::move(Name), std::move(Kernel), Acc.EvolveSec * Scale,
                  Acc.OverlapSec * Scale, Clock.seconds() * Scale,
                  Sample.Fidelity, BitExact});
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.getBool("list-tiers")) {
    for (const kernels::Ops *O : kernels::availableOps())
      std::cout << O->Name << "\n";
    return 0;
  }
  const unsigned Qubits =
      static_cast<unsigned>(CL.getInt("qubits", 10));
  const unsigned Reps = static_cast<unsigned>(CL.getInt("reps", 8));
  const double T = CL.getDouble("time", 0.9);
  const double MinSeconds = CL.getDouble("min-seconds", 0.25);
  const double MinSpeedup = CL.getDouble("min-speedup", 3.0);
  const double MinSimdSpeedup = CL.getDouble("min-simd-speedup", 1.5);
  const double MinFusedSpeedup = CL.getDouble("min-fused-speedup", 1.15);
  const double Fp32Tol = CL.getDouble("fp32-tol", 1e-3);

  // The dispatched tier for this process: MARQSIM_KERNEL_TIER /
  // MARQSIM_FORCE_SCALAR pin every dispatched row (including "panel"), so
  // a pinned CI run produces a table whose hex column must match the
  // free-dispatch run's. The per-tier rows pin explicitly and are immune
  // to the environment: availableOps() reflects the CPU, not the pin.
  const bool EnvScalar = kernels::forcedScalarByEnv();
  const char *Dispatched = kernels::activeName();
  const std::vector<const kernels::Ops *> Tiers = kernels::availableOps();
  std::cerr << "eval-kernels: dispatch=" << Dispatched << " detected="
            << kernels::detectedName()
            << (EnvScalar ? " (MARQSIM_FORCE_SCALAR)" : "") << "\n";

  // A strongly-interacting spin chain: XX/YY butterflies plus ZZ/Z
  // diagonal terms, so every kernel path is exercised.
  Hamiltonian H = makeHeisenbergXXZ(Qubits, 1.0, 0.8, 0.6, 0.3);
  std::vector<ScheduledRotation> Schedule;
  for (unsigned R = 0; R < Reps; ++R)
    for (const auto &Term : H.terms())
      Schedule.emplace_back(Term.String,
                            Term.Coeff * T / static_cast<double>(Reps));
  std::cerr << "eval-kernels: " << Qubits << " qubits, " << H.numTerms()
            << " terms, " << Schedule.size() << " rotations\n";

  bool Ok = true;
  std::cout
      << "columns,path,kernel,evolve_ms,overlap_ms,eval_ms,speedup,"
         "fidelity_hex\n";

  auto printRows = [&](size_t Columns, const std::vector<Row> &Rows,
                       double Fp32Ref) {
    const uint64_t RefBits = serial::doubleBits(Rows[0].Fidelity);
    for (const Row &R : Rows) {
      const uint64_t Bits = serial::doubleBits(R.Fidelity);
      std::cout << Columns << "," << R.Name << "," << R.Kernel << ","
                << R.EvolveMs << "," << R.OverlapMs << "," << R.Ms << ","
                << Rows[0].Ms / R.Ms << "," << serial::hex16(Bits) << "\n";
      if (R.BitExact && Bits != RefBits) {
        std::cerr << "FAIL: " << R.Name << " at " << Columns
                  << " columns diverges from the reference path ("
                  << serial::hex16(Bits) << " != " << serial::hex16(RefBits)
                  << ")\n";
        Ok = false;
      }
      if (!R.BitExact && std::abs(R.Fidelity - Fp32Ref) > Fp32Tol) {
        std::cerr << "FAIL: " << R.Name << " at " << Columns
                  << " columns strays " << std::abs(R.Fidelity - Fp32Ref)
                  << " from the reference fidelity (tolerance " << Fp32Tol
                  << ")\n";
        Ok = false;
      }
    }
  };

  for (size_t Columns : {size_t(1), size_t(8), size_t(16)}) {
    FidelityEvaluator Eval(H, T, Columns, /*Seed=*/7);

    std::vector<Row> Rows;
    timeRow(Rows, MinSeconds, "reference", "none", true,
            [&] { return referenceFidelity(Eval, Schedule); });
    timeRow(Rows, MinSeconds, "fused", Dispatched, true,
            [&] { return fusedSerialFidelity(Eval, Schedule); });
    for (const kernels::Ops *Tier : Tiers) {
      // Production evaluator pinned to each runnable tier: the hex column
      // is the cross-tier bit-identity gate.
      kernels::selectTierForTesting(*Tier);
      timeRow(Rows, MinSeconds, std::string("panel-") + Tier->Name,
              Tier->Name, true,
              [&] { return SplitEval{Eval.fidelity(Schedule, 1), 0.0, 0.0}; });
      kernels::selectAuto();
    }
    timeRow(Rows, MinSeconds, "panel", Dispatched, true,
            [&] { return SplitEval{Eval.fidelity(Schedule, 1), 0.0, 0.0}; });
    timeRow(Rows, MinSeconds, "chunked", Dispatched, true,
            [&] { return SplitEval{Eval.fidelity(Schedule, 4), 0.0, 0.0}; });
    timeRow(Rows, MinSeconds, "panel-fp32", Dispatched, false, [&] {
      return SplitEval{Eval.fidelity(Schedule, 1, EvalPrecision::FP32), 0.0,
                       0.0};
    });

    printRows(Columns, Rows, Rows[0].Fidelity);

    double PanelMs = 0.0, PanelScalarMs = 0.0;
    for (const Row &R : Rows) {
      if (R.Name == "panel")
        PanelMs = R.Ms;
      if (R.Name == "panel-scalar")
        PanelScalarMs = R.Ms;
    }
    const double PanelSpeedup = Rows[0].Ms / PanelMs;
    if (MinSpeedup > 0.0 && Columns >= 8 && PanelSpeedup < MinSpeedup) {
      std::cerr << "FAIL: panel speedup " << PanelSpeedup << " at " << Columns
                << " columns is below the required " << MinSpeedup << "x\n";
      Ok = false;
    }
    if (MinSimdSpeedup > 0.0 && Columns >= 8) {
      if (std::string(Dispatched) == "scalar") {
        std::cerr << "eval-kernels: SIMD speedup gate skipped at " << Columns
                  << " columns (scalar dispatch)\n";
      } else if (PanelScalarMs / PanelMs < MinSimdSpeedup) {
        std::cerr << "FAIL: SIMD panel speedup " << (PanelScalarMs / PanelMs)
                  << " over the scalar panel at " << Columns
                  << " columns is below the required " << MinSimdSpeedup
                  << "x\n";
        Ok = false;
      }
    }
  }

  // --- Overlap-heavy table: the fused evolve+overlap tail vs the unfused
  // sweep-then-overlapWith path, per runnable tier. Two rotations over 16
  // columns: the per-column strided overlap walk dominates, which is the
  // regime the fused kernel exists for.
  {
    const size_t Columns = 16;
    std::vector<ScheduledRotation> Short(Schedule.begin(),
                                         Schedule.begin() + 2);
    FidelityEvaluator Eval(H, T, Columns, /*Seed=*/7);
    const std::vector<TargetPanel> Packed = packTargets(Eval);

    std::vector<Row> Rows;
    timeRow(Rows, MinSeconds, "reference-ov", "none", true,
            [&] { return referenceFidelity(Eval, Short); });
    for (const kernels::Ops *Tier : Tiers) {
      kernels::selectTierForTesting(*Tier);
      timeRow(Rows, MinSeconds, std::string("unfused-") + Tier->Name,
              Tier->Name, true,
              [&] { return panelFidelity(Eval, Short, nullptr); });
      timeRow(Rows, MinSeconds, std::string("fused-") + Tier->Name,
              Tier->Name, true,
              [&] { return panelFidelity(Eval, Short, &Packed); });
      kernels::selectAuto();
    }
    printRows(Columns, Rows, Rows[0].Fidelity);

    // Gate the fused reduction on the scalar tier and on the best tier
    // the host runs (the ends of the precedence chain); report — never
    // fail — tiers this host cannot run.
    auto msOf = [&](const std::string &Name) {
      for (const Row &R : Rows)
        if (R.Name == Name)
          return R.Ms;
      return 0.0;
    };
    for (const char *Known : {"scalar", "neon", "avx2-fma", "avx512"}) {
      if (!kernels::findTier(Known))
        std::cerr << "eval-kernels: fused gate skipped for tier " << Known
                  << " (not runnable on this host)\n";
    }
    if (MinFusedSpeedup > 0.0) {
      for (const kernels::Ops *Tier : Tiers) {
        const double Unfused = msOf(std::string("unfused-") + Tier->Name);
        const double Fused = msOf(std::string("fused-") + Tier->Name);
        const double Speedup = Unfused / Fused;
        const bool Gated = Tier == Tiers.front() || Tier == Tiers.back();
        std::cerr << "eval-kernels: fused speedup " << Speedup << "x on "
                  << Tier->Name << (Gated ? "" : " (informational)") << "\n";
        if (Gated && Speedup < MinFusedSpeedup) {
          std::cerr << "FAIL: fused evolve+overlap speedup " << Speedup
                    << "x on tier " << Tier->Name
                    << " is below the required " << MinFusedSpeedup << "x\n";
          Ok = false;
        }
      }
    }
  }

  if (Ok)
    std::cerr << "eval-kernels: all FP64 paths byte-identical to the "
                 "reference\n";
  return Ok ? 0 : 1;
}
