//===- bench/bench_eval_kernels.cpp - Fused evaluation kernel proof ----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The evaluation-substrate contract, as a machine-checkable table: the
// fused in-place Pauli kernels, the StatePanel multi-column sweep, and the
// EvalJobs column-chunked evaluation must all emit *byte-identical*
// fidelity hex to the textbook reference path (a faithful copy of the
// original two-pass scratch kernel replayed column by column), while being
// substantially faster.
//
// Paths timed per column count:
//   reference — fresh state per column, two-pass scratch applyPauliExp
//               with a PauliString::applyToBasis call per element (the
//               pre-fusion seed evaluation path, kept here as the yardstick)
//   fused     — fresh StateVector per column, fused single-pass kernels
//   panel     — FidelityEvaluator::fidelity (StatePanel blocks, serial)
//   chunked   — the same with EvalJobs=4 (bit-identity under fan-out; on
//               a single-core host this only proves the contract, not a
//               speedup)
//
// Output is CSV (stdout): columns,path,eval_ms,speedup,fidelity_hex.
// Exit code 1 when any path's hex differs from the reference, or when the
// panel path's speedup at >= 8 columns falls below --min-speedup.
//
// Flags: --qubits=N (10) --reps=R (8 Trotter reps; ~R*terms rotations)
//        --time=T (0.9) --min-seconds=S (0.25 per timing cell)
//        --min-speedup=X (3.0; 0 disables the speedup gate, the hex
//                         equivalence gate always applies)
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "sim/Fidelity.h"
#include "support/CommandLine.h"
#include "support/Serial.h"
#include "support/Timer.h"

#include <cmath>
#include <iostream>
#include <vector>

using namespace marqsim;

namespace {

/// The pre-fusion evaluation kernel, verbatim: one scratch pass forming
/// P|psi>, one combine pass, an applyToBasis call per element. This is the
/// seed path every fused kernel must reproduce bit for bit.
void referencePauliExp(CVector &Amp, CVector &Scratch, const PauliString &P,
                       double Theta) {
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Amp)
      A *= Phase;
    return;
  }
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  for (size_t X = 0; X < Amp.size(); ++X)
    Amp[X] = CosT * Amp[X] + ISinT * Scratch[X];
}

double referenceFidelity(const FidelityEvaluator &Eval,
                         const std::vector<ScheduledRotation> &Schedule) {
  const size_t Dim = size_t(1) << Eval.numQubits();
  CVector Amp, Scratch(Dim);
  Complex Acc = 0.0;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    Amp.assign(Dim, Complex(0.0, 0.0));
    Amp[Eval.columns()[C]] = 1.0;
    for (const ScheduledRotation &Step : Schedule)
      referencePauliExp(Amp, Scratch, Step.String, Step.Tau);
    Acc += innerProduct(Eval.targets()[C], Amp);
  }
  return std::abs(Acc) / static_cast<double>(Eval.numColumns());
}

/// Per-column replay through the fused StateVector kernels (no panel).
double fusedSerialFidelity(const FidelityEvaluator &Eval,
                           const std::vector<ScheduledRotation> &Schedule) {
  Complex Acc = 0.0;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    StateVector SV(Eval.numQubits(), Eval.columns()[C]);
    for (const ScheduledRotation &Step : Schedule)
      SV.applyPauliExp(Step.String, Step.Tau);
    Acc += innerProduct(Eval.targets()[C], SV.amplitudes());
  }
  return std::abs(Acc) / static_cast<double>(Eval.numColumns());
}

/// Times \p Run with enough iterations to fill \p MinSeconds; returns
/// milliseconds per evaluation and the (identical every time) fidelity.
template <typename Fn>
double timeIt(double MinSeconds, double &FidelityOut, const Fn &Run) {
  FidelityOut = Run(); // warm-up + correctness sample
  Timer Once;
  (void)Run();
  double Single = Once.seconds();
  size_t Iters = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(MinSeconds / std::max(Single, 1e-9))));
  Timer Clock;
  for (size_t I = 0; I < Iters; ++I)
    (void)Run();
  return Clock.seconds() * 1e3 / static_cast<double>(Iters);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const unsigned Qubits =
      static_cast<unsigned>(CL.getInt("qubits", 10));
  const unsigned Reps = static_cast<unsigned>(CL.getInt("reps", 8));
  const double T = CL.getDouble("time", 0.9);
  const double MinSeconds = CL.getDouble("min-seconds", 0.25);
  const double MinSpeedup = CL.getDouble("min-speedup", 3.0);

  // A strongly-interacting spin chain: XX/YY butterflies plus ZZ/Z
  // diagonal terms, so every kernel path is exercised.
  Hamiltonian H = makeHeisenbergXXZ(Qubits, 1.0, 0.8, 0.6, 0.3);
  std::vector<ScheduledRotation> Schedule;
  for (unsigned R = 0; R < Reps; ++R)
    for (const auto &Term : H.terms())
      Schedule.emplace_back(Term.String,
                            Term.Coeff * T / static_cast<double>(Reps));
  std::cerr << "eval-kernels: " << Qubits << " qubits, " << H.numTerms()
            << " terms, " << Schedule.size() << " rotations\n";

  bool Ok = true;
  std::cout << "columns,path,eval_ms,speedup,fidelity_hex\n";
  for (size_t Columns : {size_t(1), size_t(8), size_t(16)}) {
    FidelityEvaluator Eval(H, T, Columns, /*Seed=*/7);

    struct Row {
      const char *Name;
      double Ms;
      double Fidelity;
    };
    std::vector<Row> Rows;
    {
      double F;
      double Ms = timeIt(MinSeconds, F,
                         [&] { return referenceFidelity(Eval, Schedule); });
      Rows.push_back({"reference", Ms, F});
    }
    {
      double F;
      double Ms = timeIt(MinSeconds, F,
                         [&] { return fusedSerialFidelity(Eval, Schedule); });
      Rows.push_back({"fused", Ms, F});
    }
    {
      double F;
      double Ms =
          timeIt(MinSeconds, F, [&] { return Eval.fidelity(Schedule, 1); });
      Rows.push_back({"panel", Ms, F});
    }
    {
      double F;
      double Ms =
          timeIt(MinSeconds, F, [&] { return Eval.fidelity(Schedule, 4); });
      Rows.push_back({"chunked", Ms, F});
    }

    const uint64_t RefBits = serial::doubleBits(Rows[0].Fidelity);
    double PanelSpeedup = 0.0;
    for (const Row &R : Rows) {
      const uint64_t Bits = serial::doubleBits(R.Fidelity);
      const double Speedup = Rows[0].Ms / R.Ms;
      if (std::string(R.Name) == "panel")
        PanelSpeedup = Speedup;
      std::cout << Columns << "," << R.Name << "," << R.Ms << "," << Speedup
                << "," << serial::hex16(Bits) << "\n";
      if (Bits != RefBits) {
        std::cerr << "FAIL: " << R.Name << " at " << Columns
                  << " columns diverges from the reference path ("
                  << serial::hex16(Bits) << " != " << serial::hex16(RefBits)
                  << ")\n";
        Ok = false;
      }
    }
    if (MinSpeedup > 0.0 && Columns >= 8 && PanelSpeedup < MinSpeedup) {
      std::cerr << "FAIL: panel speedup " << PanelSpeedup << " at "
                << Columns << " columns is below the required " << MinSpeedup
                << "x\n";
      Ok = false;
    }
  }
  if (Ok)
    std::cerr << "eval-kernels: all paths byte-identical to the reference\n";
  return Ok ? 0 : 1;
}
