//===- bench/bench_eval_kernels.cpp - Fused evaluation kernel proof ----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The evaluation-substrate contract, as a machine-checkable table: the
// fused in-place Pauli kernels, the StatePanel multi-column sweep, the
// EvalJobs column-chunked evaluation, AND every SIMD kernel tier must all
// emit *byte-identical* fidelity hex to the textbook reference path (a
// faithful copy of the original two-pass scratch kernel replayed column by
// column), while being substantially faster. The opt-in FP32 panel tier is
// the one exception: it is gated against the reference to a tolerance, not
// bitwise.
//
// Paths timed per column count:
//   reference    — fresh state per column, two-pass scratch applyPauliExp
//                  with a PauliString::applyToBasis call per element (the
//                  pre-fusion seed path, kept here as the yardstick)
//   fused        — fresh StateVector per column, fused single-pass kernels
//                  under the dispatched tier
//   panel-scalar — FidelityEvaluator::fidelity with the kernel dispatch
//                  pinned to the scalar reference tier
//   panel        — the same under the dispatched tier (avx2-fma/neon when
//                  the host has it; the hex must not change)
//   chunked      — panel with EvalJobs=4 (bit-identity under fan-out)
//   panel-fp32   — the FP32 panel tier (tolerance gate, not hex)
//
// Output is CSV (stdout): columns,path,kernel,eval_ms,speedup,fidelity_hex
// where kernel is the tier that produced the row and speedup is vs the
// reference row. Exit code 1 when any FP64 path's hex differs from the
// reference, when the FP32 fidelity strays beyond --fp32-tol, or when a
// speedup gate fails.
//
// Speedup gates (each disabled by passing 0):
//   --min-speedup=X       panel vs reference at >= 8 columns (default 3)
//   --min-simd-speedup=X  panel vs panel-scalar at >= 8 columns (default
//                         1.5); skipped — not failed — when the dispatched
//                         tier is already scalar (no ISA, or the process
//                         runs under MARQSIM_FORCE_SCALAR=1)
//
// Flags: --qubits=N (10) --reps=R (8 Trotter reps; ~R*terms rotations)
//        --time=T (0.9) --min-seconds=S (0.25 per timing cell)
//        --fp32-tol=E (1e-3)
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "sim/Fidelity.h"
#include "sim/Kernels.h"
#include "support/CommandLine.h"
#include "support/Serial.h"
#include "support/Timer.h"

#include <cmath>
#include <iostream>
#include <vector>

using namespace marqsim;

namespace {

/// The pre-fusion evaluation kernel, verbatim: one scratch pass forming
/// P|psi>, one combine pass, an applyToBasis call per element. This is the
/// seed path every fused kernel must reproduce bit for bit.
void referencePauliExp(CVector &Amp, CVector &Scratch, const PauliString &P,
                       double Theta) {
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Amp)
      A *= Phase;
    return;
  }
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  for (size_t X = 0; X < Amp.size(); ++X)
    Amp[X] = CosT * Amp[X] + ISinT * Scratch[X];
}

double referenceFidelity(const FidelityEvaluator &Eval,
                         const std::vector<ScheduledRotation> &Schedule) {
  const size_t Dim = size_t(1) << Eval.numQubits();
  CVector Amp, Scratch(Dim);
  Complex Acc = 0.0;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    Amp.assign(Dim, Complex(0.0, 0.0));
    Amp[Eval.columns()[C]] = 1.0;
    for (const ScheduledRotation &Step : Schedule)
      referencePauliExp(Amp, Scratch, Step.String, Step.Tau);
    Acc += innerProduct(Eval.targets()[C], Amp);
  }
  return std::abs(Acc) / static_cast<double>(Eval.numColumns());
}

/// Per-column replay through the fused StateVector kernels (no panel).
double fusedSerialFidelity(const FidelityEvaluator &Eval,
                           const std::vector<ScheduledRotation> &Schedule) {
  Complex Acc = 0.0;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    StateVector SV(Eval.numQubits(), Eval.columns()[C]);
    for (const ScheduledRotation &Step : Schedule)
      SV.applyPauliExp(Step.String, Step.Tau);
    Acc += innerProduct(Eval.targets()[C], SV.amplitudes());
  }
  return std::abs(Acc) / static_cast<double>(Eval.numColumns());
}

/// Times \p Run with enough iterations to fill \p MinSeconds; returns
/// milliseconds per evaluation and the (identical every time) fidelity.
template <typename Fn>
double timeIt(double MinSeconds, double &FidelityOut, const Fn &Run) {
  FidelityOut = Run(); // warm-up + correctness sample
  Timer Once;
  (void)Run();
  double Single = Once.seconds();
  size_t Iters = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(MinSeconds / std::max(Single, 1e-9))));
  Timer Clock;
  for (size_t I = 0; I < Iters; ++I)
    (void)Run();
  return Clock.seconds() * 1e3 / static_cast<double>(Iters);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const unsigned Qubits =
      static_cast<unsigned>(CL.getInt("qubits", 10));
  const unsigned Reps = static_cast<unsigned>(CL.getInt("reps", 8));
  const double T = CL.getDouble("time", 0.9);
  const double MinSeconds = CL.getDouble("min-seconds", 0.25);
  const double MinSpeedup = CL.getDouble("min-speedup", 3.0);
  const double MinSimdSpeedup = CL.getDouble("min-simd-speedup", 1.5);
  const double Fp32Tol = CL.getDouble("fp32-tol", 1e-3);

  // The dispatched tier for this process: MARQSIM_FORCE_SCALAR pins every
  // row (including "panel") to scalar, so a forced-scalar CI run produces
  // a fully scalar table whose hex column must match the dispatched run's.
  const bool EnvScalar = kernels::forcedScalarByEnv();
  const char *Dispatched = kernels::activeName();
  std::cerr << "eval-kernels: dispatch=" << Dispatched
            << (EnvScalar ? " (MARQSIM_FORCE_SCALAR)" : "") << "\n";

  // A strongly-interacting spin chain: XX/YY butterflies plus ZZ/Z
  // diagonal terms, so every kernel path is exercised.
  Hamiltonian H = makeHeisenbergXXZ(Qubits, 1.0, 0.8, 0.6, 0.3);
  std::vector<ScheduledRotation> Schedule;
  for (unsigned R = 0; R < Reps; ++R)
    for (const auto &Term : H.terms())
      Schedule.emplace_back(Term.String,
                            Term.Coeff * T / static_cast<double>(Reps));
  std::cerr << "eval-kernels: " << Qubits << " qubits, " << H.numTerms()
            << " terms, " << Schedule.size() << " rotations\n";

  bool Ok = true;
  std::cout << "columns,path,kernel,eval_ms,speedup,fidelity_hex\n";
  for (size_t Columns : {size_t(1), size_t(8), size_t(16)}) {
    FidelityEvaluator Eval(H, T, Columns, /*Seed=*/7);

    struct Row {
      const char *Name;
      const char *Kernel;
      double Ms;
      double Fidelity;
      bool BitExact; // gate: hex-identical to reference vs fp32 tolerance
    };
    std::vector<Row> Rows;
    {
      double F;
      double Ms = timeIt(MinSeconds, F,
                         [&] { return referenceFidelity(Eval, Schedule); });
      Rows.push_back({"reference", "none", Ms, F, true});
    }
    {
      double F;
      double Ms = timeIt(MinSeconds, F,
                         [&] { return fusedSerialFidelity(Eval, Schedule); });
      Rows.push_back({"fused", Dispatched, Ms, F, true});
    }
    {
      // Scalar yardstick of the SIMD gate: same SoA panel, scalar tier.
      kernels::selectForTesting(/*ForceScalar=*/true);
      double F;
      double Ms =
          timeIt(MinSeconds, F, [&] { return Eval.fidelity(Schedule, 1); });
      kernels::selectAuto();
      Rows.push_back({"panel-scalar", "scalar", Ms, F, true});
    }
    {
      double F;
      double Ms =
          timeIt(MinSeconds, F, [&] { return Eval.fidelity(Schedule, 1); });
      Rows.push_back({"panel", Dispatched, Ms, F, true});
    }
    {
      double F;
      double Ms =
          timeIt(MinSeconds, F, [&] { return Eval.fidelity(Schedule, 4); });
      Rows.push_back({"chunked", Dispatched, Ms, F, true});
    }
    {
      double F;
      double Ms = timeIt(MinSeconds, F, [&] {
        return Eval.fidelity(Schedule, 1, EvalPrecision::FP32);
      });
      Rows.push_back({"panel-fp32", Dispatched, Ms, F, false});
    }

    const uint64_t RefBits = serial::doubleBits(Rows[0].Fidelity);
    double PanelSpeedup = 0.0, PanelScalarMs = 0.0, PanelMs = 0.0;
    for (const Row &R : Rows) {
      const uint64_t Bits = serial::doubleBits(R.Fidelity);
      const double Speedup = Rows[0].Ms / R.Ms;
      if (std::string(R.Name) == "panel") {
        PanelSpeedup = Speedup;
        PanelMs = R.Ms;
      }
      if (std::string(R.Name) == "panel-scalar")
        PanelScalarMs = R.Ms;
      std::cout << Columns << "," << R.Name << "," << R.Kernel << "," << R.Ms
                << "," << Speedup << "," << serial::hex16(Bits) << "\n";
      if (R.BitExact && Bits != RefBits) {
        std::cerr << "FAIL: " << R.Name << " at " << Columns
                  << " columns diverges from the reference path ("
                  << serial::hex16(Bits) << " != " << serial::hex16(RefBits)
                  << ")\n";
        Ok = false;
      }
      if (!R.BitExact &&
          std::abs(R.Fidelity - Rows[0].Fidelity) > Fp32Tol) {
        std::cerr << "FAIL: " << R.Name << " at " << Columns
                  << " columns strays " << std::abs(R.Fidelity - Rows[0].Fidelity)
                  << " from the reference fidelity (tolerance " << Fp32Tol
                  << ")\n";
        Ok = false;
      }
    }
    if (MinSpeedup > 0.0 && Columns >= 8 && PanelSpeedup < MinSpeedup) {
      std::cerr << "FAIL: panel speedup " << PanelSpeedup << " at "
                << Columns << " columns is below the required " << MinSpeedup
                << "x\n";
      Ok = false;
    }
    if (MinSimdSpeedup > 0.0 && Columns >= 8) {
      if (std::string(Dispatched) == "scalar") {
        std::cerr << "eval-kernels: SIMD speedup gate skipped at " << Columns
                  << " columns (scalar dispatch)\n";
      } else if (PanelScalarMs / PanelMs < MinSimdSpeedup) {
        std::cerr << "FAIL: SIMD panel speedup " << (PanelScalarMs / PanelMs)
                  << " over the scalar panel at " << Columns
                  << " columns is below the required " << MinSimdSpeedup
                  << "x\n";
        Ok = false;
      }
    }
  }
  if (Ok)
    std::cerr << "eval-kernels: all FP64 paths byte-identical to the "
                 "reference\n";
  return Ok ? 0 : 1;
}
