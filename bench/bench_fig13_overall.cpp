//===- bench/bench_fig13_overall.cpp - Paper Fig. 13 -------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 13 ("Overall Improvement over all benchmarks"): for each
// Table 1 benchmark, the CNOT-count-versus-accuracy series of the three
// configurations, plus the per-benchmark CNOT / total gate reductions of
// MarQSim-GC and MarQSim-GC-RP relative to the qDrift baseline (the paper
// annotates each subplot with these percentages).
//
// Configurations (paper Section 6.1):
//   Baseline       = Pqd                       (+ gate cancellation)
//   MarQSim-GC     = 0.4 Pqd + 0.6 Pgc
//   MarQSim-GC-RP  = 0.4 Pqd + 0.3 Pgc + 0.3 Prp
//
// Reductions are computed at matched sampling budget N (identical epsilon
// implies identical N across configurations — the knob the paper turns).
// Fidelity columns validate that accuracy is preserved; by default they are
// evaluated for benchmarks up to --fidelity-qubits (8) to bound runtime.
//
// Flags: --all includes the 12/14-qubit workloads; --paper restores the
// paper's epsilon list and 20 repetitions.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"

#include <algorithm>
#include <iostream>
#include <memory>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  applyCommonFlags(CL, Opts);
  bool All = CL.getBool("all") || CL.getBool("paper");
  unsigned FidelityQubits = static_cast<unsigned>(
      std::max<int64_t>(0, CL.getInt("fidelity-qubits", 8)));
  size_t Columns = static_cast<size_t>(
      std::max<int64_t>(0, CL.getInt("columns", 16)));

  std::cout << "Fig. 13: overall improvement over all benchmarks\n\n";

  Table Summary({"Benchmark", "GC CNOT red.", "GC total red.",
                 "GC-RP CNOT red.", "GC-RP 1q red.", "GC-RP total red.",
                 "GC-RP std red."});

  // One service for the whole run: every configuration's MCFP solution,
  // graph, and alias tables are resolved once per benchmark and shared
  // across the epsilon sweep; fidelity evaluators are cached per
  // (Hamiltonian, time, columns).
  SimulationService Service;
  for (const BenchmarkSpec &Spec : paperBenchmarks()) {
    if (!All && Spec.Qubits > 10)
      continue;
    Hamiltonian H = makeBenchmark(Spec);
    SweepOptions Local = Opts;
    Local.FidelityColumns = Spec.Qubits <= FidelityQubits ? Columns : 0;

    std::vector<SweepResult> Results;
    for (const ConfigSpec &Config : paperConfigs())
      Results.push_back(
          runConfigSweep(Service, H, Spec.Time, Config, Local));
    printSweepTable(std::cout, Spec.Name, Results);

    ReductionSummary GC = averageReduction(Results[0], Results[1]);
    ReductionSummary RP = averageReduction(Results[0], Results[2]);
    // Std-dev reduction of GC-RP vs GC (paper Section 6.2 reports ~8.3%).
    double StdGc = 0, StdRp = 0;
    for (size_t I = 0; I < Results[1].Points.size(); ++I) {
      StdGc += Results[1].Points[I].StdCNOTs;
      StdRp += Results[2].Points[I].StdCNOTs;
    }
    double StdRed = StdGc > 0 ? 1.0 - StdRp / StdGc : 0.0;

    std::cout << Spec.Name << ": GC CNOT " << formatPercent(GC.CNOT)
              << ", GC total " << formatPercent(GC.Total) << " | GC-RP CNOT "
              << formatPercent(RP.CNOT) << ", GC-RP total "
              << formatPercent(RP.Total) << "\n\n";
    Summary.addRow({Spec.Name, formatPercent(GC.CNOT),
                    formatPercent(GC.Total), formatPercent(RP.CNOT),
                    formatPercent(RP.Single), formatPercent(RP.Total),
                    formatPercent(StdRed)});
  }

  std::cout << "== Summary (reductions vs qDrift baseline, matched N) ==\n";
  Summary.print(std::cout);
  printCacheStats(std::cout, Service);
  std::cout << "\nPaper reference: MarQSim-GC averages 25.1% CNOT / 14.6% "
               "total;\nMarQSim-GC-RP averages 27.0% CNOT / 5.0% 1q / 17.0% "
               "total, 8.3% std reduction.\n";
  return 0;
}
