//===- bench/bench_noise_overhead.cpp - Noisy-tier cost and contracts --------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// What the noisy-simulation tier costs and what it must never break:
//
//   1. Per-shot evaluation overhead — every channel in both modes against
//      the noiseless baseline, on one shared sampling batch. Stochastic
//      injection should stay within a small factor of noiseless
//      evaluation (same panel harness, slightly longer schedules); the
//      density oracle is expected to be orders of magnitude slower — it
//      exists for validation, not throughput — and the table records by
//      how much.
//   2. Contract gates (exit code 1 on violation, so CI can run this
//      binary directly):
//        * noise never perturbs the compiled circuits: every noisy batch
//          hash equals the noiseless batch hash,
//        * stochastic noisy fidelities are bit-identical across --jobs,
//        * the stochastic mean tracks the density oracle's exact
//          expectation within a generous statistical tolerance,
//        * noise costs fidelity: every noisy mean sits below noiseless.
//
// Output is CSV (stdout); human-oriented notes go to stderr.
//
// Flags: --time=T (1.0) --epsilon=E (0.1) --seed=S (1) --shots=N (96)
//        --prob=P (0.02) --columns=K (8)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sim/NoiseModel.h"
#include "support/Serial.h"
#include "support/Timer.h"

#include <cmath>
#include <iostream>

using namespace marqsim;

namespace {

/// A 4-qubit operator: large enough for multi-qubit factors to matter,
/// small enough for the density oracle on every shot.
Hamiltonian benchHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"}});
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  double Time = CL.getDouble("time", 1.0);
  double Eps = CL.getDouble("epsilon", 0.1);
  uint64_t Seed = static_cast<uint64_t>(CL.getInt("seed", 1));
  size_t Shots = static_cast<size_t>(CL.getInt("shots", 96));
  double Prob = CL.getDouble("prob", 0.02);
  size_t Columns = static_cast<size_t>(CL.getInt("columns", 8));
  if (Shots < 2 || !(Prob > 0.0) || Prob > 1.0 || Columns < 1) {
    std::cerr << "error: need --shots>=2, --prob in (0, 1], --columns>=1\n";
    return 1;
  }

  TaskSpec Base;
  Base.Source = HamiltonianSource::fromHamiltonian(benchHamiltonian());
  Base.Mix = *ChannelMix::preset("gc");
  Base.Time = Time;
  Base.Epsilon = Eps;
  Base.Seed = Seed;
  Base.Shots = Shots;
  Base.Jobs = 4;
  Base.Evaluate.FidelityColumns = Columns;

  SimulationService Service;
  std::string Error;
  bool Ok = true;

  Timer CleanWall;
  std::optional<TaskResult> Clean = Service.run(Base, &Error);
  if (!Clean) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  const double CleanSeconds = CleanWall.seconds();
  const double CleanEval = Clean->Batch.EvalSeconds;
  std::cerr << "# noiseless baseline: " << Shots << " shots, eval="
            << formatDouble(CleanEval, 4) << " s, mean fidelity="
            << formatDouble(Clean->Fidelity.Mean, 5) << "\n";

  Table Grid({"channel", "mode", "prob", "wall_s", "eval_s", "eval_x",
              "mean_fidelity"});
  Grid.row("none", "-", 0.0, formatDouble(CleanSeconds, 4),
           formatDouble(CleanEval, 4), 1.0,
           formatDouble(Clean->Fidelity.Mean, 5));

  for (NoiseChannelKind Kind :
       {NoiseChannelKind::Depolarizing, NoiseChannelKind::PhaseFlip,
        NoiseChannelKind::AmplitudeDamping}) {
    double StochasticMean = 0.0, DensityMean = 0.0;
    for (NoiseMode Mode : {NoiseMode::Stochastic, NoiseMode::Density}) {
      TaskSpec Spec = Base;
      Spec.Noise.Kind = Kind;
      Spec.Noise.Prob = Prob;
      Spec.Noise.TwoQubitFactor = 1.5;
      Spec.Noise.Mode = Mode;

      Timer Wall;
      std::optional<TaskResult> R = Service.run(Spec, &Error);
      if (!R) {
        std::cerr << "error: " << noiseChannelName(Kind) << "/"
                  << noiseModeName(Mode) << ": " << Error << "\n";
        return 1;
      }
      Grid.row(noiseChannelName(Kind), noiseModeName(Mode), Prob,
               formatDouble(Wall.seconds(), 4),
               formatDouble(R->Batch.EvalSeconds, 4),
               formatDouble(CleanEval > 0.0
                                ? R->Batch.EvalSeconds / CleanEval
                                : 0.0, 2),
               formatDouble(R->Fidelity.Mean, 5));

      // Gate: noise models execution, never compilation — the batch is
      // the same circuits as the noiseless run, bit for bit.
      if (R->Batch.batchHash() != Clean->Batch.batchHash()) {
        std::cerr << "ERROR: " << noiseChannelName(Kind) << "/"
                  << noiseModeName(Mode)
                  << " perturbed the compiled batch hash\n";
        Ok = false;
      }
      // Gate: noise costs fidelity (tiny slack for estimator noise).
      if (R->Fidelity.Mean > Clean->Fidelity.Mean + 1e-9) {
        std::cerr << "ERROR: noisy mean above noiseless baseline for "
                  << noiseChannelName(Kind) << "/" << noiseModeName(Mode)
                  << "\n";
        Ok = false;
      }

      if (Mode == NoiseMode::Stochastic) {
        StochasticMean = R->Fidelity.Mean;
        // Gate: stochastic noisy fidelities are bit-identical across
        // worker counts.
        TaskSpec Serial = Spec;
        Serial.Jobs = 1;
        std::optional<TaskResult> S = Service.run(Serial, &Error);
        if (!S) {
          std::cerr << "error: " << Error << "\n";
          return 1;
        }
        for (size_t I = 0; I < Shots; ++I)
          if (serial::doubleBits(S->ShotFidelities[I]) !=
              serial::doubleBits(R->ShotFidelities[I])) {
            std::cerr << "ERROR: " << noiseChannelName(Kind)
                      << " stochastic fidelity of shot " << I
                      << " depends on --jobs\n";
            Ok = false;
            break;
          }
      } else {
        DensityMean = R->Fidelity.Mean;
      }
    }
    // Gate: the density oracle is the exact expectation of the
    // stochastic tier, so the two means must agree within sampling
    // error. 0.15 is several sigma at default settings — a trip means a
    // wrong twirl or a broken metric, not an unlucky seed.
    if (std::abs(StochasticMean - DensityMean) > 0.15) {
      std::cerr << "ERROR: stochastic mean " << StochasticMean
                << " disagrees with density oracle " << DensityMean
                << " for " << noiseChannelName(Kind) << "\n";
      Ok = false;
    }
  }

  Grid.printCSV(std::cout);
  if (!Ok) {
    std::cerr << "noise contract violations detected\n";
    return 1;
  }
  std::cerr << "ok: batch hashes stable, jobs-bit-identity held, "
               "stochastic tier tracks the density oracle\n";
  return 0;
}
