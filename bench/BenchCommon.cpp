//===- bench/BenchCommon.cpp - Shared experiment harness ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

using namespace marqsim;

std::vector<ConfigSpec> marqsim::paperConfigs() {
  return {{"Baseline", *ChannelMix::preset("baseline")},
          {"MarQSim-GC", *ChannelMix::preset("gc")},
          {"MarQSim-GC-RP", *ChannelMix::preset("gc-rp")}};
}

TaskSpec marqsim::sweepTaskSpec(const Hamiltonian &H, double T,
                                const ConfigSpec &Config,
                                const SweepOptions &Opts, double Epsilon,
                                size_t EpsilonIndex) {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(H);
  Spec.Mix = Config.Mix;
  Spec.PerturbRounds = Opts.PerturbRounds;
  Spec.PerturbSeed = Opts.Seed ^ 0xC0FFEE;
  Spec.Time = T;
  Spec.Epsilon = Epsilon;
  Spec.Shots = Opts.Reps;
  Spec.Jobs = Opts.Jobs;
  Spec.Seed = Opts.Seed + 7919 * EpsilonIndex;
  Spec.Evaluate.FidelityColumns = Opts.FidelityColumns;
  return Spec;
}

SweepResult marqsim::runConfigSweep(SimulationService &Service,
                                    const Hamiltonian &H, double T,
                                    const ConfigSpec &Config,
                                    const SweepOptions &Opts) {
  SweepResult Result;
  Result.Config = Config;

  // One declarative task per epsilon. The expensive setup — the MCFP
  // solves, the combined matrix, the graph, the alias tables — is resolved
  // through the service caches, so it happens at most once per
  // configuration no matter how many sweep points (or sweeps) share it.
  for (size_t EIdx = 0; EIdx < Opts.Epsilons.size(); ++EIdx) {
    double Eps = Opts.Epsilons[EIdx];
    TaskSpec Spec = sweepTaskSpec(H, T, Config, Opts, Eps, EIdx);
    std::string Error;
    std::optional<TaskResult> Task = Service.run(Spec, &Error);
    if (!Task) {
      // Sweep cells share validated inputs; a failure here is a harness
      // bug, not a data point. Surface it loudly.
      throw std::runtime_error("sweep cell failed: " + Error);
    }

    SweepPoint Point;
    Point.Epsilon = Eps;
    Point.NumSamples = Task->NumSamples;
    Point.MeanCNOTs = Task->Batch.CNOTs.Mean;
    Point.StdCNOTs = Task->Batch.CNOTs.Std;
    Point.MeanSingles = Task->Batch.Singles.Mean;
    Point.MeanTotal = Task->Batch.Totals.Mean;
    if (Task->HasFidelity) {
      Point.MeanFidelity = Task->Fidelity.Mean;
      Point.StdFidelity = Task->Fidelity.Std;
      Point.HasFidelity = true;
    }
    Result.Points.push_back(Point);
  }
  return Result;
}

ReductionSummary marqsim::averageReduction(const SweepResult &Base,
                                           const SweepResult &Opt) {
  ReductionSummary Summary;
  size_t Count = std::min(Base.Points.size(), Opt.Points.size());
  if (Count == 0)
    return Summary;
  for (size_t I = 0; I < Count; ++I) {
    const SweepPoint &B = Base.Points[I];
    const SweepPoint &O = Opt.Points[I];
    if (B.MeanCNOTs > 0)
      Summary.CNOT += 1.0 - O.MeanCNOTs / B.MeanCNOTs;
    if (B.MeanSingles > 0)
      Summary.Single += 1.0 - O.MeanSingles / B.MeanSingles;
    if (B.MeanTotal > 0)
      Summary.Total += 1.0 - O.MeanTotal / B.MeanTotal;
  }
  Summary.CNOT /= static_cast<double>(Count);
  Summary.Single /= static_cast<double>(Count);
  Summary.Total /= static_cast<double>(Count);
  return Summary;
}

void marqsim::printSweepTable(std::ostream &OS, const std::string &Title,
                              const std::vector<SweepResult> &Results) {
  OS << "== " << Title << " ==\n";
  Table T({"config", "eps", "N", "CNOT(mean)", "CNOT(std)", "1q(mean)",
           "total(mean)", "fidelity", "fid(std)"});
  for (const SweepResult &R : Results)
    for (const SweepPoint &P : R.Points) {
      T.addRow({R.Config.Name, formatDouble(P.Epsilon),
                std::to_string(P.NumSamples), formatDouble(P.MeanCNOTs),
                formatDouble(P.StdCNOTs), formatDouble(P.MeanSingles),
                formatDouble(P.MeanTotal),
                P.HasFidelity ? formatDouble(P.MeanFidelity, 5) : "-",
                P.HasFidelity ? formatDouble(P.StdFidelity, 3) : "-"});
    }
  T.print(OS);
}

void marqsim::printCacheStats(std::ostream &OS,
                              const SimulationService &Service) {
  CacheStats S = Service.stats();
  OS << "service caches: MCFP solves=" << S.matrixMisses()
     << " reused=" << S.matrixHits() << " (disk=" << S.DiskLoads
     << "), graphs built=" << S.GraphMisses << " reused=" << S.GraphHits
     << ", evaluators built=" << S.EvaluatorMisses
     << " reused=" << S.EvaluatorHits
     << ", superoperators built=" << S.SuperMisses
     << " reused=" << S.SuperHits << "\n";
}

void marqsim::applyCommonFlags(const CommandLine &CL, SweepOptions &Opts) {
  if (CL.getBool("paper")) {
    // The paper's epsilon list (Section 6.1) and repetition count.
    Opts.Epsilons = {0.1, 0.067, 0.05, 0.04, 0.033, 0.0286, 0.025};
    Opts.Reps = 20;
    Opts.PerturbRounds = 100;
  }
  if (CL.has("eps")) {
    Opts.Epsilons.clear();
    std::stringstream SS(CL.getString("eps"));
    std::string Item;
    while (std::getline(SS, Item, ','))
      if (!Item.empty())
        Opts.Epsilons.push_back(std::strtod(Item.c_str(), nullptr));
  }
  Opts.Reps = static_cast<unsigned>(CL.getInt("reps", Opts.Reps));
  Opts.Seed = static_cast<uint64_t>(CL.getInt("seed", Opts.Seed));
  Opts.PerturbRounds =
      static_cast<unsigned>(CL.getInt("rounds", Opts.PerturbRounds));
  Opts.Jobs = static_cast<unsigned>(CL.getInt("jobs", Opts.Jobs));
}
