//===- bench/BenchCommon.cpp - Shared experiment harness ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "stats/Stats.h"

#include <ostream>
#include <sstream>

using namespace marqsim;

std::vector<ConfigSpec> marqsim::paperConfigs() {
  return {{"Baseline", 1.0, 0.0, 0.0},
          {"MarQSim-GC", 0.4, 0.6, 0.0},
          {"MarQSim-GC-RP", 0.4, 0.3, 0.3}};
}

SweepResult marqsim::runConfigSweep(const Hamiltonian &H, double T,
                                    const ConfigSpec &Config,
                                    const SweepOptions &Opts,
                                    const FidelityEvaluator *Eval) {
  SweepResult Result;
  Result.Config = Config;

  // Per-configuration setup happens exactly once: min-cost-flow solves for
  // the matrix, then the graph and the alias tables, shared read-only by
  // every epsilon's batch.
  Hamiltonian Prepared = H.splitLargeTerms();
  TransitionMatrix P =
      makeConfigMatrix(Prepared, Config.WQd, Config.WGc, Config.WRp,
                       Opts.PerturbRounds, Opts.Seed ^ 0xC0FFEE);
  auto Graph =
      std::make_shared<const HTTGraph>(std::move(Prepared), std::move(P));

  CompilerEngine Engine;
  std::shared_ptr<const SamplingStrategy> First;
  for (size_t EIdx = 0; EIdx < Opts.Epsilons.size(); ++EIdx) {
    double Eps = Opts.Epsilons[EIdx];
    std::shared_ptr<const SamplingStrategy> Strategy =
        First ? First->retargeted(T, Eps)
              : (First = std::make_shared<const SamplingStrategy>(Graph, T,
                                                                  Eps));

    BatchRequest Req;
    Req.Strategy = Strategy;
    Req.NumShots = Opts.Reps;
    Req.Jobs = Opts.Jobs;
    Req.Seed = Opts.Seed + 7919 * EIdx;
    // Fidelity per shot on the worker that compiled it (the evaluator is
    // immutable after construction), into the shot's own slot — no need to
    // retain whole CompilationResults across the batch.
    std::vector<double> ShotFidelities;
    if (Eval) {
      ShotFidelities.resize(Opts.Reps);
      Req.PerShot = [&](size_t Shot, const CompilationResult &R) {
        ShotFidelities[Shot] = Eval->fidelity(R.Schedule);
      };
    }
    BatchResult Batch = Engine.compileBatch(Req);

    SweepPoint Point;
    Point.Epsilon = Eps;
    Point.NumSamples = Strategy->sampleCount();
    Point.MeanCNOTs = Batch.CNOTs.Mean;
    Point.StdCNOTs = Batch.CNOTs.Std;
    Point.MeanSingles = Batch.Singles.Mean;
    Point.MeanTotal = Batch.Totals.Mean;
    if (Eval) {
      RunningStats Fids;
      for (double F : ShotFidelities)
        Fids.add(F);
      Point.MeanFidelity = Fids.mean();
      Point.StdFidelity = Fids.stddev();
      Point.HasFidelity = true;
    }
    Result.Points.push_back(Point);
  }
  return Result;
}

ReductionSummary marqsim::averageReduction(const SweepResult &Base,
                                           const SweepResult &Opt) {
  ReductionSummary Summary;
  size_t Count = std::min(Base.Points.size(), Opt.Points.size());
  if (Count == 0)
    return Summary;
  for (size_t I = 0; I < Count; ++I) {
    const SweepPoint &B = Base.Points[I];
    const SweepPoint &O = Opt.Points[I];
    if (B.MeanCNOTs > 0)
      Summary.CNOT += 1.0 - O.MeanCNOTs / B.MeanCNOTs;
    if (B.MeanSingles > 0)
      Summary.Single += 1.0 - O.MeanSingles / B.MeanSingles;
    if (B.MeanTotal > 0)
      Summary.Total += 1.0 - O.MeanTotal / B.MeanTotal;
  }
  Summary.CNOT /= static_cast<double>(Count);
  Summary.Single /= static_cast<double>(Count);
  Summary.Total /= static_cast<double>(Count);
  return Summary;
}

void marqsim::printSweepTable(std::ostream &OS, const std::string &Title,
                              const std::vector<SweepResult> &Results) {
  OS << "== " << Title << " ==\n";
  Table T({"config", "eps", "N", "CNOT(mean)", "CNOT(std)", "1q(mean)",
           "total(mean)", "fidelity", "fid(std)"});
  for (const SweepResult &R : Results)
    for (const SweepPoint &P : R.Points) {
      T.addRow({R.Config.Name, formatDouble(P.Epsilon),
                std::to_string(P.NumSamples), formatDouble(P.MeanCNOTs),
                formatDouble(P.StdCNOTs), formatDouble(P.MeanSingles),
                formatDouble(P.MeanTotal),
                P.HasFidelity ? formatDouble(P.MeanFidelity, 5) : "-",
                P.HasFidelity ? formatDouble(P.StdFidelity, 3) : "-"});
    }
  T.print(OS);
}

void marqsim::applyCommonFlags(const CommandLine &CL, SweepOptions &Opts) {
  if (CL.getBool("paper")) {
    // The paper's epsilon list (Section 6.1) and repetition count.
    Opts.Epsilons = {0.1, 0.067, 0.05, 0.04, 0.033, 0.0286, 0.025};
    Opts.Reps = 20;
    Opts.PerturbRounds = 100;
  }
  if (CL.has("eps")) {
    Opts.Epsilons.clear();
    std::stringstream SS(CL.getString("eps"));
    std::string Item;
    while (std::getline(SS, Item, ','))
      if (!Item.empty())
        Opts.Epsilons.push_back(std::strtod(Item.c_str(), nullptr));
  }
  Opts.Reps = static_cast<unsigned>(CL.getInt("reps", Opts.Reps));
  Opts.Seed = static_cast<uint64_t>(CL.getInt("seed", Opts.Seed));
  Opts.PerturbRounds =
      static_cast<unsigned>(CL.getInt("rounds", Opts.PerturbRounds));
  Opts.Jobs = static_cast<unsigned>(CL.getInt("jobs", Opts.Jobs));
}
