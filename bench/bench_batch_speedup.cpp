//===- bench/bench_batch_speedup.cpp - Batch compilation speedup -------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what CompilerEngine::compileBatch buys over the legacy
// shot-at-a-time loop on the Fig. 11 / Example 5.3 Hamiltonian with the
// MarQSim-GC-RP configuration:
//
//   * sequential baseline — the pre-engine pattern: every shot rebuilds the
//     transition matrix (min-cost-flow + perturbation rounds), the HTT
//     graph, and the per-row alias tables before sampling;
//   * batch — setup once, shots fanned across --jobs workers from
//     counter-based RNG substreams.
//
// The harness also cross-checks determinism: the batch hash must be
// identical for jobs=1 and jobs=--jobs.
//
// Flags: --shots=N (64) --jobs=J (8) --time=T (1.0) --epsilon=E (0.002)
//        --rounds=K (16, Prp perturbation rounds) --seed=S (1)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "shard/ShardCoordinator.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int64_t ShotsArg = CL.getInt("shots", 64);
  if (ShotsArg < 1) {
    std::cerr << "error: --shots must be at least 1\n";
    return 1;
  }
  size_t Shots = static_cast<size_t>(ShotsArg);
  unsigned Jobs = static_cast<unsigned>(CL.getInt("jobs", 8));
  double Time = CL.getDouble("time", 1.0);
  double Eps = CL.getDouble("epsilon", 0.002);
  unsigned Rounds = static_cast<unsigned>(CL.getInt("rounds", 16));
  uint64_t Seed = static_cast<uint64_t>(CL.getInt("seed", 1));

  // The paper's Example 5.3 Hamiltonian (Fig. 11).
  Hamiltonian H = Hamiltonian::parse({{1.0, "IIIZY"},
                                      {1.0, "XXIII"},
                                      {0.7, "ZXZYI"},
                                      {0.5, "IIZZX"},
                                      {0.3, "XXYYZ"}})
                      .splitLargeTerms();
  const ConfigSpec Config = paperConfigs().back(); // MarQSim-GC-RP

  std::cout << "Batch speedup on the Fig. 11 Hamiltonian ("
            << H.numTerms() << " strings, t=" << formatDouble(Time)
            << ", eps=" << formatDouble(Eps) << ", " << Shots
            << " shots, config " << Config.Name << ")\n\n";

  // Legacy loop: per-shot setup, sequential compilation.
  Timer Sequential;
  GateCounts SeqTotal;
  for (size_t Shot = 0; Shot < Shots; ++Shot) {
    TransitionMatrix P =
        makeConfigMatrix(H, Config.Mix.WQd, Config.Mix.WGc, Config.Mix.WRp,
                         Rounds, Seed ^ 0xBA7C);
    HTTGraph Graph(H, std::move(P));
    RNG Rng = RNG::forShot(Seed, Shot);
    CompilationResult R = compileBySampling(Graph, Time, Eps, Rng);
    SeqTotal += R.Counts;
  }
  double SeqSeconds = Sequential.seconds();

  // Batch: setup once, shots in parallel.
  CompilerEngine Engine;
  Timer Setup;
  TransitionMatrix P =
      makeConfigMatrix(H, Config.Mix.WQd, Config.Mix.WGc, Config.Mix.WRp,
                       Rounds, Seed ^ 0xBA7C);
  BatchRequest Req;
  Req.Strategy = std::make_shared<const SamplingStrategy>(
      std::make_shared<const HTTGraph>(H, std::move(P)), Time, Eps);
  Req.NumShots = Shots;
  Req.Seed = Seed;
  double SetupSeconds = Setup.seconds();

  // Both compileBatch rows charge the shared setup once, so they are
  // comparable to each other and to the legacy loop.
  Req.Jobs = Jobs;
  Timer Parallel;
  BatchResult Batch = Engine.compileBatch(Req);
  double BatchSeconds = Parallel.seconds() + SetupSeconds;

  Req.Jobs = 1;
  BatchResult Serial = Engine.compileBatch(Req);
  double SerialSeconds = Serial.Seconds + SetupSeconds;

  Table T({"mode", "wall(s)", "CNOT(mean)", "CNOT(std)", "batch hash"});
  T.addRow({"legacy loop (setup per shot)", formatDouble(SeqSeconds),
            formatDouble(double(SeqTotal.CNOTs) / double(Shots)), "-", "-"});
  T.addRow({"compileBatch jobs=1", formatDouble(SerialSeconds),
            formatDouble(Serial.CNOTs.Mean), formatDouble(Serial.CNOTs.Std),
            std::to_string(Serial.batchHash())});
  T.addRow({"compileBatch jobs=" + std::to_string(Batch.JobsUsed),
            formatDouble(BatchSeconds), formatDouble(Batch.CNOTs.Mean),
            formatDouble(Batch.CNOTs.Std),
            std::to_string(Batch.batchHash())});
  T.print(std::cout);

  bool Deterministic = Batch.batchHash() == Serial.batchHash();
  std::cout << "\nsetup (matrix + graph + alias tables): "
            << formatDouble(SetupSeconds) << " s, amortized over " << Shots
            << " shots\nspeedup vs legacy loop: "
            << formatDouble(SeqSeconds / BatchSeconds, 2)
            << "x\njobs=1 vs jobs=" << std::to_string(Batch.JobsUsed)
            << " bit-identical: " << (Deterministic ? "yes" : "NO") << "\n";

  // Service-level amortization: the same workload as declarative tasks
  // through one SimulationService. The first task pays the MCFP solve and
  // table construction; every later task (here: an epsilon sweep) resolves
  // them from the content-hash caches.
  std::cout << "\nService-level setup amortization (one SimulationService, "
               "epsilon sweep):\n";
  SimulationService Service;
  TaskSpec Task;
  Task.Source = HamiltonianSource::fromHamiltonian(H);
  Task.Mix = Config.Mix;
  Task.PerturbRounds = Rounds;
  Task.PerturbSeed = Seed ^ 0xBA7C;
  Task.Time = Time;
  Task.Shots = Shots;
  Task.Jobs = Jobs;
  Task.Seed = Seed;
  Table Svc({"task", "eps", "wall(s)", "batch hash", "MCFP solves",
             "cache hits"});
  bool ServiceDeterministic = true;
  uint64_t ColdHash = 0;
  const std::vector<double> SweepEps = {Eps, Eps * 2, Eps * 4, Eps};
  for (size_t I = 0; I < SweepEps.size(); ++I) {
    Task.Epsilon = SweepEps[I];
    Timer Wall;
    std::optional<TaskResult> R = Service.run(Task);
    double Seconds = Wall.seconds();
    if (!R)
      return 1;
    if (I == 0)
      ColdHash = R->Batch.batchHash();
    else if (I + 1 == SweepEps.size() &&
             R->Batch.batchHash() != ColdHash)
      ServiceDeterministic = false; // same eps + seed must replay exactly
    Svc.addRow({I == 0 ? "cold" : "warm", formatDouble(Task.Epsilon),
                formatDouble(Seconds),
                std::to_string(R->Batch.batchHash()),
                std::to_string(R->Stats.matrixMisses()),
                std::to_string(R->Stats.matrixHits() + R->Stats.GraphHits)});
  }
  Svc.print(std::cout);
  CacheStats Totals = Service.stats();
  std::cout << "service totals: MCFP solves=" << Totals.matrixMisses()
            << " reused=" << Totals.matrixHits()
            << ", graphs built=" << Totals.GraphMisses << " reused="
            << Totals.GraphHits << "\nrepeat task bit-identical: "
            << (ServiceDeterministic ? "yes" : "NO") << "\n";
  bool OneSolvePerConfig = Totals.GCSolveMisses <= 1 &&
                           Totals.RPSolveMisses <= 1;
  if (!OneSolvePerConfig)
    std::cout << "ERROR: expected at most one MCFP solve per component\n";

  // Process scaling: the same task split over K worker processes
  // (re-exec'd marqsim-cli sharing a fresh cache directory per row, so
  // every row shows the whole-run solve count). Subprocess workers can
  // only re-parse a file, so the operator goes through one; when the CLI
  // is not built alongside this bench the shards run in-process instead.
  std::cout << "\nProcess sharding (ShardCoordinator, --shards analogue):\n";
  std::filesystem::path Self = currentExecutablePath(Argv[0]);
  std::string Cli = (Self.parent_path() / "marqsim-cli").string();
  if (!std::filesystem::exists(Cli)) {
    std::cout << "(marqsim-cli not found next to this bench; running "
                 "shards in-process)\n";
    Cli.clear();
  }
  std::filesystem::path ShardBase =
      std::filesystem::temp_directory_path() / "marqsim_bench_shards";
  std::filesystem::remove_all(ShardBase);
  std::string HamPath = (ShardBase / "ham.txt").string();
  std::filesystem::create_directories(ShardBase);
  {
    std::ofstream Out(HamPath);
    char Buf[32];
    for (const PauliTerm &Term : H.terms()) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", Term.Coeff);
      Out << Buf << " " << Term.String.str(H.numQubits()) << "\n";
    }
  }
  TaskSpec ShardTask = Task;
  ShardTask.Source = HamiltonianSource::fromFile(HamPath);
  ShardTask.Epsilon = Eps;

  Table Sh({"shards", "mode", "wall(s)", "batch hash", "MCFP solves",
            "disk loads", "retries"});
  bool ShardDeterministic = true, ShardOneSolve = true;
  uint64_t ShardHash = 0;
  for (unsigned K : {1u, 2u, 4u}) {
    ShardOptions Options;
    Options.ShardCount = K;
    Options.WorkDir = (ShardBase / ("work" + std::to_string(K))).string();
    Options.CacheDir = (ShardBase / ("cache" + std::to_string(K))).string();
    Options.WorkerBinary = Cli;
    ShardCoordinator Coordinator(Options);
    ShardReport Report;
    std::string Error;
    Timer Wall;
    std::optional<TaskResult> R = Coordinator.run(ShardTask, &Error, &Report);
    double Seconds = Wall.seconds();
    if (!R) {
      std::cout << "ERROR: " << Error << "\n";
      return 1;
    }
    if (K == 1)
      ShardHash = R->Batch.batchHash();
    else if (R->Batch.batchHash() != ShardHash)
      ShardDeterministic = false;
    size_t Solves = Report.LocalStats.matrixMisses() +
                    Report.WorkerStats.matrixMisses();
    size_t Disk =
        Report.LocalStats.DiskLoads + Report.WorkerStats.DiskLoads;
    // The GC-RP configuration has two MCFP components (Pgc and Prp): one
    // solve each for the whole sharded run, no matter how many workers.
    if (Solves > 2)
      ShardOneSolve = false;
    Sh.row(K, Cli.empty() ? "in-process" : "subprocess",
           formatDouble(Seconds), std::to_string(R->Batch.batchHash()),
           Solves, Disk, Report.Retries);
  }
  Sh.print(std::cout);
  std::cout << "K-shard merge bit-identical: "
            << (ShardDeterministic ? "yes" : "NO")
            << "\none MCFP solve per component per run: "
            << (ShardOneSolve ? "yes" : "NO") << "\n";

  return Deterministic && ServiceDeterministic && OneSolvePerConfig &&
                 ShardDeterministic && ShardOneSolve
             ? 0
             : 1;
}
