//===- bench/bench_table1_benchmarks.cpp - Paper Table 1 ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1 ("Benchmark Information"): the twelve workloads with
// their qubit counts, Pauli string counts, and evolution times, plus the
// derived quantities our substitution produces (lambda, mean string weight).
//
// Flags: --skip-large skips the 12/14-qubit instances (they take a few
// seconds to generate); --seed has no effect (the registry is fixed).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"
#include "support/Timer.h"

#include <iostream>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bool SkipLarge = CL.getBool("skip-large");

  std::cout << "Table 1: Benchmark Information (paper spec -> generated "
               "workload)\n\n";
  Table T({"Benchmark", "Qubit#", "PauliString#", "Time", "lambda",
           "mean|weight|", "gen(ms)"});
  for (const BenchmarkSpec &Spec : paperBenchmarks()) {
    if (SkipLarge && Spec.Qubits > 10)
      continue;
    Timer Gen;
    Hamiltonian H = makeBenchmark(Spec);
    double GenMs = Gen.millis();
    double MeanWeight = 0.0;
    for (const PauliTerm &Term : H.terms())
      MeanWeight += Term.String.weight();
    MeanWeight /= static_cast<double>(H.numTerms());
    T.addRow({Spec.Name, std::to_string(Spec.Qubits),
              std::to_string(H.numTerms()), formatDouble(Spec.Time),
              formatDouble(H.lambda()), formatDouble(MeanWeight),
              formatDouble(GenMs)});
  }
  T.print(std::cout);
  std::cout << "\nMolecular entries are synthetic electronic-structure\n"
               "Hamiltonians (see DESIGN.md substitutions); SYK entries are\n"
               "Majorana quadruple models. String counts match the paper\n"
               "exactly; lambda is normalized into the paper's sampling\n"
               "regime.\n";
  return 0;
}
