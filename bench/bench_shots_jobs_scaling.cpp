//===- bench/bench_shots_jobs_scaling.cpp - Batch + service scaling ----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The ROADMAP's engine-scaling coverage, as machine-readable tables:
//
//   1. compileBatch shots x jobs grid — wall clock, throughput, and the
//      batch hash for every cell; the hash column must be constant along
//      each shots row (bit-identity across worker counts is the engine's
//      core contract, re-checked here under load).
//   2. SimulationService cache hit rates under concurrent run() load —
//      T threads hammer one service with an epsilon sweep; the service
//      must perform exactly one gate-cancellation MCFP solve in total,
//      and every thread must observe bit-identical batches.
//   3. ArtifactStore tiers under a mix sweep — the same task list run
//      cold (fresh disk store), warm (second service over that store),
//      and capped (warm store, in-memory budget so tiny every artifact
//      evicts). Records what the store buys (solves and wall clock) and
//      re-checks the eviction contract: capped output is bit-identical
//      and the disk tier keeps the sweep at one GC solve.
//
// Output is CSV (stdout) so plotting/regression tooling can consume it
// directly; human-oriented notes go to stderr. Exit code 1 on any
// determinism or single-solve violation, so CI can gate on it.
//
// Flags: --time=T (1.0) --epsilon=E (0.01) --seed=S (1)
//        --threads=T (4, part 2) --sweeps=K (4 epsilons per thread)
//        --store-dir=DIR (part 3 disk tier parent; the bench creates and
//                         deletes its own subdirectory under it; default
//                         is the system temp dir)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Timer.h"

#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <memory>
#include <thread>

using namespace marqsim;

namespace {

/// The Fig. 11 / Example 5.3 Hamiltonian.
Hamiltonian benchHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIIZY"},
                             {1.0, "XXIII"},
                             {0.7, "ZXZYI"},
                             {0.5, "IIZZX"},
                             {0.3, "XXYYZ"}})
      .splitLargeTerms();
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  double Time = CL.getDouble("time", 1.0);
  double Eps = CL.getDouble("epsilon", 0.01);
  uint64_t Seed = static_cast<uint64_t>(CL.getInt("seed", 1));
  unsigned Threads = static_cast<unsigned>(CL.getInt("threads", 4));
  size_t Sweeps = static_cast<size_t>(CL.getInt("sweeps", 4));
  if (Threads < 1 || Sweeps < 1) {
    std::cerr << "error: --threads and --sweeps must be at least 1\n";
    return 1;
  }

  Hamiltonian H = benchHamiltonian();
  bool Ok = true;

  // --- Part 1: compileBatch shots x jobs grid -----------------------------
  std::cerr << "# compileBatch scaling (t=" << formatDouble(Time)
            << ", eps=" << formatDouble(Eps) << ")\n";
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  auto Strategy = std::make_shared<const SamplingStrategy>(
      std::make_shared<const HTTGraph>(H, std::move(P)), Time, Eps);
  CompilerEngine Engine;

  Table Grid({"shots", "jobs", "wall_s", "shots_per_s", "batch_hash"});
  for (size_t Shots : {8u, 32u, 128u}) {
    uint64_t RowHash = 0;
    for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
      BatchRequest Req;
      Req.Strategy = Strategy;
      Req.NumShots = Shots;
      Req.Jobs = Jobs;
      Req.Seed = Seed;
      Timer Wall;
      BatchResult Batch = Engine.compileBatch(Req);
      double Seconds = Wall.seconds();
      if (Jobs == 1)
        RowHash = Batch.batchHash();
      else if (Batch.batchHash() != RowHash) {
        std::cerr << "ERROR: hash diverged at shots=" << Shots
                  << " jobs=" << Jobs << "\n";
        Ok = false;
      }
      Grid.row(Shots, Jobs, formatDouble(Seconds, 4),
               formatDouble(double(Shots) / Seconds, 1),
               std::to_string(Batch.batchHash()));
    }
  }
  Grid.printCSV(std::cout);

  // --- Part 2: service cache hit rates under concurrent load --------------
  std::cerr << "# service cache hit rates (" << Threads << " threads x "
            << Sweeps << "-epsilon sweep, shared service)\n";
  Table Svc({"threads", "tasks", "wall_s", "gc_solves", "matrix_hits",
             "graph_misses", "graph_hits", "hit_rate"});
  for (unsigned T = 1; T <= Threads; T *= 2) {
    SimulationService Service;
    std::vector<std::vector<uint64_t>> Hashes(T);
    // One byte per thread (vector<bool> would pack flags into shared
    // bytes — a data race under concurrent writers).
    std::vector<char> Failed(T, 0);
    Timer Wall;
    std::vector<std::thread> Pool;
    for (unsigned I = 0; I < T; ++I)
      Pool.emplace_back([&, I] {
        for (size_t S = 0; S < Sweeps; ++S) {
          TaskSpec Task;
          Task.Source = HamiltonianSource::fromHamiltonian(H);
          Task.Mix = *ChannelMix::preset("gc");
          Task.Time = Time;
          Task.Epsilon = Eps * static_cast<double>(1 + S);
          Task.Shots = 4;
          Task.Seed = Seed;
          std::optional<TaskResult> R = Service.run(Task);
          if (!R) {
            Failed[I] = 1;
            return;
          }
          Hashes[I].push_back(R->Batch.batchHash());
        }
      });
    for (std::thread &Worker : Pool)
      Worker.join();
    double Seconds = Wall.seconds();
    for (unsigned I = 0; I < T; ++I) {
      if (Failed[I] || Hashes[I] != Hashes[0]) {
        std::cerr << "ERROR: thread " << I
                  << " diverged or failed under concurrent load\n";
        Ok = false;
      }
    }
    CacheStats S = Service.stats();
    if (S.GCSolveMisses != 1) {
      std::cerr << "ERROR: expected exactly one GC solve, got "
                << S.GCSolveMisses << "\n";
      Ok = false;
    }
    size_t Lookups = S.matrixHits() + S.matrixMisses() + S.GraphHits +
                     S.GraphMisses;
    Svc.row(T, T * Sweeps, formatDouble(Seconds, 4), S.GCSolveMisses,
            S.matrixHits(), S.GraphMisses, S.GraphHits,
            formatDouble(double(Lookups - S.matrixMisses() - S.GraphMisses) /
                             double(Lookups),
                         3));
  }
  Svc.printCSV(std::cout);

  // --- Part 3: store tiers, cold vs warm vs capped ------------------------
  std::cerr << "# artifact store tiers (mix sweep, shared disk store)\n";
  // The bench owns (and deletes) only its own subdirectory, so pointing
  // --store-dir at an existing directory never wipes unrelated contents.
  std::string StoreDir =
      (std::filesystem::path(CL.getString(
           "store-dir", std::filesystem::temp_directory_path().string())) /
       ("marqsim-store-bench-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(StoreDir);
  const ChannelMix Mixes[] = {{1.0, 0.0, 0.0},
                              {0.4, 0.6, 0.0},
                              {0.2, 0.8, 0.0},
                              {0.4, 0.3, 0.3}};
  auto SweepTasks = [&] {
    std::vector<TaskSpec> Tasks;
    for (const ChannelMix &Mix : Mixes)
      for (double E : {Eps, Eps * 2.0}) {
        TaskSpec Task;
        Task.Source = HamiltonianSource::fromHamiltonian(H);
        Task.Mix = Mix;
        Task.Time = Time;
        Task.Epsilon = E;
        Task.Shots = 4;
        Task.Seed = Seed;
        Task.Evaluate.FidelityColumns = 4;
        Tasks.push_back(Task);
      }
    return Tasks;
  };
  const std::vector<TaskSpec> Tasks = SweepTasks();

  Table Tiers({"scenario", "tasks", "wall_s", "gc_solves", "disk_hits",
               "evictions", "peak_bytes", "hash_ok"});
  std::vector<uint64_t> ColdHashes;
  auto RunScenario = [&](const char *Name, const ServiceOptions &Options,
                         size_t ExpectedSolves) {
    SimulationService Service(Options);
    std::vector<uint64_t> Hashes;
    Timer Wall;
    for (const TaskSpec &Task : Tasks) {
      std::optional<TaskResult> R = Service.run(Task);
      if (!R) {
        std::cerr << "ERROR: " << Name << " scenario failed a task\n";
        Ok = false;
        return;
      }
      Hashes.push_back(R->Batch.batchHash());
    }
    double Seconds = Wall.seconds();
    bool HashOk = ColdHashes.empty() || Hashes == ColdHashes;
    if (ColdHashes.empty())
      ColdHashes = Hashes;
    if (!HashOk) {
      std::cerr << "ERROR: " << Name
                << " scenario diverged from the cold run\n";
      Ok = false;
    }
    CacheStats S = Service.stats();
    ArtifactStore::Stats Store = Service.storeStats();
    if (ExpectedSolves != size_t(-1) && S.GCSolveMisses != ExpectedSolves) {
      std::cerr << "ERROR: " << Name << " scenario expected "
                << ExpectedSolves << " GC solve(s), got " << S.GCSolveMisses
                << "\n";
      Ok = false;
    }
    Tiers.row(Name, Tasks.size(), formatDouble(Seconds, 4), S.GCSolveMisses,
              Store.DiskHits, Store.Evictions, Store.PeakBytes,
              HashOk ? "yes" : "NO");
  };

  ServiceOptions ColdOptions;
  ColdOptions.CacheDir = StoreDir;
  RunScenario("cold", ColdOptions, 1);
  // Warm: a fresh service over the now-populated disk tier — zero solves.
  RunScenario("warm", ColdOptions, 0);
  // Capped: a one-byte budget evicts every artifact after use; the disk
  // tier must keep the sweep at zero solves, bit-identically.
  ServiceOptions CappedOptions = ColdOptions;
  CappedOptions.CacheLimitBytes = 1;
  RunScenario("capped", CappedOptions, 0);
  // Memory-capped with no disk tier: eviction costs real re-solves, the
  // honest price of a budget without persistence (the solve count is
  // informational — it depends on the eviction cascade). Bits must still
  // match.
  ServiceOptions UncachedCapped;
  UncachedCapped.CacheLimitBytes = 1;
  RunScenario("capped-nodisk", UncachedCapped, size_t(-1));
  Tiers.printCSV(std::cout);
  std::filesystem::remove_all(StoreDir);

  std::cerr << (Ok ? "scaling checks passed\n"
                   : "SCALING CHECKS FAILED\n");
  return Ok ? 0 : 1;
}
