//===- bench/bench_fig14_ratio_sweep.cpp - Paper Fig. 14 ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 14 ("Compilation results of varying (Pqd, Pgc)
// combination ratios"): for each benchmark the CNOT reduction of
//   P = 0.8 Pqd + 0.2 Pgc,  0.4 Pqd + 0.6 Pgc,  0.2 Pqd + 0.8 Pgc
// relative to pure qDrift, at matched sampling budget. The paper reports
// average reductions of 10.3% / 23.8% / 28.0% and notes an accuracy loss as
// the Pgc share grows (larger secondary eigenvalues, Section 5.4) — the
// lambda_2 column makes that mechanism visible.
//
// Flags: --all runs the paper's full 8-benchmark set; default is a faster
// 4-benchmark subset. --paper for full epsilon list / repetitions.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"

#include <iostream>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  Opts.Epsilons = {0.1, 0.05};
  applyCommonFlags(CL, Opts);
  bool All = CL.getBool("all") || CL.getBool("paper");

  std::vector<std::string> Names = {"Na+", "Cl-", "Ar", "SYK-1"};
  if (All)
    Names = {"Na+", "Cl-", "OH-", "HF", "Ar", "LiH", "SYK-1", "SYK-2"};

  std::vector<ConfigSpec> Ratios = {{"Pqd", {1.0, 0.0, 0.0}},
                                    {"0.8Pqd+0.2Pgc", {0.8, 0.2, 0.0}},
                                    {"0.4Pqd+0.6Pgc", {0.4, 0.6, 0.0}},
                                    {"0.2Pqd+0.8Pgc", {0.2, 0.8, 0.0}}};

  std::cout << "Fig. 14: varying (Pqd, Pgc) combination ratios\n\n";
  Table Summary({"Benchmark", "0.8/0.2 CNOT red.", "0.4/0.6 CNOT red.",
                 "0.2/0.8 CNOT red."});
  std::vector<double> Avg(3, 0.0);
  size_t Ran = 0;

  // All four ratios share one gate-cancellation MCFP solution per
  // benchmark: the service caches Pgc by content hash and only the convex
  // combination differs between ratios.
  SimulationService Service;
  for (const std::string &Name : Names) {
    auto Spec = findBenchmark(Name);
    if (!Spec) {
      std::cerr << "unknown benchmark: " << Name << "\n";
      continue;
    }
    Hamiltonian H = makeBenchmark(*Spec);
    SweepOptions Local = Opts;
    Local.FidelityColumns = Spec->Qubits <= 8 ? 12 : 0;

    std::vector<SweepResult> Results;
    for (const ConfigSpec &Config : Ratios)
      Results.push_back(
          runConfigSweep(Service, H, Spec->Time, Config, Local));
    printSweepTable(std::cout, Name, Results);

    // Spectra: lambda_2 grows with the Pgc share (accuracy-loss
    // mechanism). The graphs come from the same cache entries the sweep
    // above populated, so this adds no MCFP work.
    Table Spectra({"ratio", "|lambda_2|"});
    for (const ConfigSpec &Config : Ratios) {
      TaskSpec Cell =
          sweepTaskSpec(H, Spec->Time, Config, Local, Local.Epsilons[0], 0);
      std::string Error;
      auto Graph = Service.graphFor(Cell, &Error);
      if (!Graph) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
      Spectra.addRow(
          {Config.Name,
           formatDouble(
               Graph->transitionMatrix().secondEigenvalueMagnitude())});
    }
    Spectra.print(std::cout);
    std::cout << "\n";

    std::vector<std::string> Row = {Name};
    for (size_t K = 1; K < Ratios.size(); ++K) {
      ReductionSummary R = averageReduction(Results[0], Results[K]);
      Row.push_back(formatPercent(R.CNOT));
      Avg[K - 1] += R.CNOT;
    }
    Summary.addRow(Row);
    ++Ran;
  }

  std::cout << "== Summary (CNOT reduction vs pure qDrift) ==\n";
  Summary.print(std::cout);
  printCacheStats(std::cout, Service);
  if (Ran > 0) {
    std::cout << "\nAverages: ";
    const char *Labels[3] = {"0.8/0.2: ", " 0.4/0.6: ", " 0.2/0.8: "};
    for (int K = 0; K < 3; ++K)
      std::cout << Labels[K] << formatPercent(Avg[K] / double(Ran));
    std::cout << "\nPaper reference: 10.3% / 23.8% / 28.0%.\n";
  }
  return 0;
}
