//===- bench/bench_ablation_oracle.cpp - Design-choice ablations -------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablations for the design choices DESIGN.md calls out (beyond the paper's
// own figures):
//
//  1. Oracle accuracy: Proposition 5.1 says the MCFP objective equals the
//     expected CNOTs per transition; we compare that prediction against the
//     CNOTs the emitter actually realizes per transition.
//  2. Emitter cancellation value: gates with cross-snippet cancellation on
//     vs off, and what the generic peephole pass still finds afterwards.
//  3. Sampler choice: alias (O(1)) vs binary-search CDF (O(log n)) draw
//     throughput — the knob behind Algorithm 1's log(n) sampling term.
//  4. Commutation-grouping extension (paper Section 7): the fraction of
//     consecutive sampled pairs that commute under Pqd vs a Pcg mix.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "circuit/Optimizer.h"
#include "core/CNOTCountOracle.h"
#include "core/HardwareCost.h"
#include "hamgen/Registry.h"
#include "pauli/CommutingGroups.h"
#include "support/Timer.h"

#include <cstdlib>
#include <iostream>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  applyCommonFlags(CL, Opts);
  std::string Name = CL.getString("benchmark", "Na+");
  double Eps = CL.getDouble("epsilon", 0.05);

  auto Spec = findBenchmark(Name);
  if (!Spec) {
    std::cerr << "unknown benchmark: " << Name << "\n";
    return 1;
  }
  // The canonical (merged, split) form the service compiles: the oracle
  // and spectra sections below index terms against service-built matrices,
  // so they must share its term order.
  Hamiltonian H = SimulationService::prepare(makeBenchmark(*Spec));
  std::vector<double> Pi = H.stationaryDistribution();
  std::cout << "Ablations on " << Name << " (" << H.numTerms()
            << " strings)\n\n";

  // Sections 1 and 2 share one service: each configuration's MCFP solve
  // and graph happen once and every single-shot task below reuses them.
  SimulationService Service;
  SweepOptions Cell = Opts;
  Cell.Reps = 1;
  Cell.FidelityColumns = 0;
  auto RunOne = [&](const ConfigSpec &Config,
                    const CompilationOptions &Lowering) {
    TaskSpec Task = sweepTaskSpec(H, Spec->Time, Config, Cell, Eps, 0);
    Task.Seed = Opts.Seed;
    Task.Lowering = Lowering;
    Task.Evaluate.ExportShotZero = true;
    std::string Error;
    std::optional<TaskResult> Result = Service.run(Task, &Error);
    if (!Result) {
      std::cerr << "error: " << Error << "\n";
      std::exit(1);
    }
    return std::move(Result->ShotZero);
  };

  // 1. Oracle prediction vs realized CNOTs per transition.
  std::cout << "1. Prop. 5.1 prediction vs emitter-realized CNOTs\n";
  Table Oracle({"config", "predicted E[CNOT/transition]",
                "realized CNOT/transition", "ratio"});
  for (const ConfigSpec &Config : paperConfigs()) {
    TaskSpec Task = sweepTaskSpec(H, Spec->Time, Config, Cell, Eps, 0);
    std::string Error;
    auto Graph = Service.graphFor(Task, &Error);
    if (!Graph) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    double Predicted = expectedTransitionCNOTs(
        Graph->hamiltonian(), Graph->transitionMatrix(),
        Graph->hamiltonian().stationaryDistribution());
    CompilationResult R = RunOne(Config, {});
    // Realized CNOTs per transition: subtract the one-off ladder halves at
    // the two circuit ends (they are not "transitions").
    double Realized =
        static_cast<double>(R.Counts.CNOTs) /
        std::max<size_t>(1, R.Schedule.size() - 1);
    Oracle.addRow({Config.Name, formatDouble(Predicted),
                   formatDouble(Realized),
                   formatDouble(Predicted > 0 ? Realized / Predicted : 0)});
  }
  Oracle.print(std::cout);

  // 2. Cancellation value: emitter off/on + peephole afterwards.
  std::cout << "\n2. Cross-snippet cancellation value\n";
  Table Cancel({"config", "CNOTs (no cancel)", "CNOTs (emitter)",
                "CNOTs (emitter+peephole)", "emitter red.",
                "peephole extra"});
  for (const ConfigSpec &Config : paperConfigs()) {
    // Same strategy + seed => identical sequence; only the lowering
    // options differ, so the comparison isolates the emitter. Both tasks
    // hit the cached graph built in section 1.
    CompilationOptions NoCancel;
    NoCancel.Emit.CrossCancellation = false;
    CompilationResult Plain = RunOne(Config, NoCancel);
    CompilationResult Fancy = RunOne(Config, {});
    Circuit Peep = optimizeCircuit(Fancy.Circ);
    double EmitRed = 1.0 - double(Fancy.Counts.CNOTs) /
                               double(Plain.Counts.CNOTs);
    double PeepExtra = 1.0 - double(Peep.counts().CNOTs) /
                                 double(Fancy.Counts.CNOTs);
    Cancel.addRow({Config.Name, std::to_string(Plain.Counts.CNOTs),
                   std::to_string(Fancy.Counts.CNOTs),
                   std::to_string(Peep.counts().CNOTs),
                   formatPercent(EmitRed), formatPercent(PeepExtra)});
  }
  Cancel.print(std::cout);
  printCacheStats(std::cout, Service);

  // 3. Sampler throughput.
  std::cout << "\n3. Sampler ablation (draws from the stationary row)\n";
  {
    const size_t Draws = 2'000'000;
    AliasSampler Alias(Pi);
    CDFSampler CDF(Pi);
    RNG R1(1), R2(1);
    Timer TA;
    uint64_t SinkA = 0;
    for (size_t I = 0; I < Draws; ++I)
      SinkA += Alias.sample(R1);
    double AliasTime = TA.seconds();
    Timer TC;
    uint64_t SinkC = 0;
    for (size_t I = 0; I < Draws; ++I)
      SinkC += CDF.sample(R2);
    double CDFTime = TC.seconds();
    Table S({"sampler", "draws/s", "checksum"});
    S.addRow({"alias", formatDouble(Draws / AliasTime),
              std::to_string(SinkA % 97)});
    S.addRow({"CDF", formatDouble(Draws / CDFTime),
              std::to_string(SinkC % 97)});
    S.print(std::cout);
  }

  // 4. Commutation-grouping extension.
  std::cout << "\n4. Commutation-grouping extension (Section 7)\n";
  {
    TransitionMatrix Pcg = buildCommutationGrouping(H);
    TransitionMatrix Mix = combineWithQDrift(H, Pcg, 0.4);
    TransitionMatrix Pqd = buildQDrift(H);
    CompilerEngine Engine;
    auto CommutingFraction = [&](const TransitionMatrix &P) {
      SamplingStrategy Strategy(std::make_shared<const HTTGraph>(H, P),
                                Spec->Time, Eps);
      CompilationResult R = Engine.compileOne(Strategy, Opts.Seed + 3);
      size_t Commuting = 0;
      for (size_t K = 1; K < R.Sequence.size(); ++K)
        Commuting += H.term(R.Sequence[K - 1])
                         .String.commutesWith(H.term(R.Sequence[K]).String);
      return double(Commuting) / double(R.Sequence.size() - 1);
    };
    Table C({"matrix", "commuting consecutive pairs"});
    C.addRow({"Pqd", formatPercent(CommutingFraction(Pqd))});
    C.addRow({"0.4Pqd+0.6Pcg", formatPercent(CommutingFraction(Mix))});
    C.print(std::cout);

    auto Groups = groupCommutingTerms(H);
    std::cout << "commuting partition (greedy coloring): " << Groups.size()
              << " groups over " << H.numTerms()
              << " terms; largest group " << Groups.front().size() << "\n";
  }

  // 5. Hardware-aware objective (Section 7 extension): expected *routed*
  //    CNOTs per transition on a line topology, for the matrix tuned to the
  //    naive count vs the matrix tuned to the routed cost.
  std::cout << "\n5. Hardware-aware objective (line topology)\n";
  {
    DeviceTopology Line = DeviceTopology::line(H.numQubits());
    TransitionMatrix Pqd = buildQDrift(H);
    TransitionMatrix Pgc = buildGateCancellation(H);
    TransitionMatrix Phw = buildHardwareAwareGC(H, Line);
    Table HW({"matrix", "E[routed CNOT/transition]",
              "E[naive CNOT/transition]"});
    for (auto [Name, P] : {std::pair<const char *, TransitionMatrix *>{
                               "Pqd", &Pqd},
                           {"Pgc (naive costs)", &Pgc},
                           {"Phw (routed costs)", &Phw}})
      HW.addRow({Name,
                 formatDouble(expectedHardwareCNOTs(H, *P, Pi, Line)),
                 formatDouble(expectedTransitionCNOTs(H, *P, Pi))});
    HW.print(std::cout);
  }
  return 0;
}
