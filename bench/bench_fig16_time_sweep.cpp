//===- bench/bench_fig16_time_sweep.cpp - Paper Fig. 16 ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 16 ("Compilation optimization effect with different
// evolution times"): the Na+ and OH- workloads compiled by the three
// configurations at t = pi/6, pi/3, pi/2, 3pi/4, with CNOT and total
// reductions per evolution time. The paper's conclusion — the benefit
// persists for longer simulations — should be visible as roughly constant
// reduction percentages across t.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Registry.h"

#include <cmath>
#include <iostream>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  SweepOptions Opts;
  Opts.Epsilons = {0.1, 0.05};
  applyCommonFlags(CL, Opts);

  std::vector<double> Times = {M_PI / 6, M_PI / 3, M_PI / 2, 3 * M_PI / 4};
  std::vector<std::string> Names = {"Na+", "OH-"};

  std::cout << "Fig. 16: optimization effect vs evolution time\n\n";
  Table Summary({"Benchmark", "t", "GC CNOT red.", "GC-RP CNOT red.",
                 "GC-RP total red."});

  // One service across the whole time sweep: the transition matrices and
  // alias tables are time-independent, so every (config, t, eps) cell
  // after the first reuses one cached setup per configuration.
  SimulationService Service;
  for (const std::string &Name : Names) {
    auto Spec = findBenchmark(Name);
    if (!Spec)
      continue;
    Hamiltonian H = makeBenchmark(*Spec);
    for (double T : Times) {
      std::vector<SweepResult> Results;
      for (const ConfigSpec &Config : paperConfigs())
        Results.push_back(runConfigSweep(Service, H, T, Config, Opts));
      printSweepTable(std::cout,
                      Name + " @ t=" + formatDouble(T, 3), Results);
      ReductionSummary GC = averageReduction(Results[0], Results[1]);
      ReductionSummary RP = averageReduction(Results[0], Results[2]);
      Summary.addRow({Name, formatDouble(T, 3), formatPercent(GC.CNOT),
                      formatPercent(RP.CNOT), formatPercent(RP.Total)});
      std::cout << "\n";
    }
  }

  std::cout << "== Summary ==\n";
  Summary.print(std::cout);
  printCacheStats(std::cout, Service);
  std::cout << "\nPaper reference: GC CNOT reductions 21.8/24.7/17.9/24.8% "
               "and GC-RP 20.2/25.9/22.7/18.7%\nfor t = pi/6, pi/3, pi/2, "
               "3pi/4 — the benefit is not eroded by longer simulations.\n";
  return 0;
}
