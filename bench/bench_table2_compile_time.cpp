//===- bench/bench_table2_compile_time.cpp - Paper Table 2 -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2 ("Compilation time analysis"): wall-clock time to
// (a) generate the transition matrices Pqd / Pgc / Prp and (b) sample and
// emit the circuit for the three configurations, on randomly generated
// Hamiltonians with {10, 20, 30} qubits x {100, 500, 1000} Pauli strings
// (t = pi/4, eps = 0.05, exactly the paper's setting).
//
// Absolute times are not comparable to the paper (C++ vs Python/networkx);
// the *scaling* with the string count is the reproduced shape: matrix
// generation is dominated by the MCFP (~n^2..n^3 in strings, insensitive
// to qubit count), circuit generation scales with N and string count.
//
// Flags: --strings=100,500,1000  --qubits=10,20,30  --rounds (Prp rounds,
// paper: 100, default 4)  --paper for the full setting.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "hamgen/Models.h"
#include "support/Timer.h"

#include <cmath>
#include <iostream>
#include <sstream>

using namespace marqsim;

static std::vector<int64_t> parseList(const std::string &Text) {
  std::vector<int64_t> Out;
  std::stringstream SS(Text);
  std::string Item;
  while (std::getline(SS, Item, ','))
    if (!Item.empty())
      Out.push_back(std::strtoll(Item.c_str(), nullptr, 10));
  return Out;
}

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bool Paper = CL.getBool("paper");
  std::vector<int64_t> Qubits = parseList(CL.getString("qubits", "10,20,30"));
  std::vector<int64_t> Strings =
      parseList(CL.getString("strings", "100,500,1000"));
  unsigned Rounds =
      static_cast<unsigned>(CL.getInt("rounds", Paper ? 100 : 4));
  double T = M_PI / 4.0;
  double Eps = 0.05;
  // Random Hamiltonians are rescaled to a moderate lambda so the sampling
  // budget N stays in the paper's regime regardless of the term count.
  double Lambda = CL.getDouble("lambda", 20.0);

  std::cout << "Table 2: compilation time analysis (t=pi/4, eps=0.05, "
               "lambda=" << formatDouble(Lambda)
            << ", Prp rounds=" << Rounds << ")\n\n";
  Table Out({"Qubit#", "String#", "N", "Pqd(s)", "Pgc(s)", "Prp(s)",
             "circ Baseline(s)", "circ GC(s)", "circ GC-RP(s)"});

  for (int64_t Q : Qubits) {
    for (int64_t S : Strings) {
      RNG Gen(0xBEEF + static_cast<uint64_t>(Q * 1000 + S));
      Hamiltonian H =
          makeRandomHamiltonian(static_cast<unsigned>(Q),
                                static_cast<size_t>(S), Gen)
              .rescaledToLambda(Lambda)
              .splitLargeTerms();

      Timer TQd;
      TransitionMatrix Pqd = buildQDrift(H);
      double TimeQd = TQd.seconds();

      Timer TGc;
      TransitionMatrix Pgc = buildGateCancellation(H);
      double TimeGc = TGc.seconds();

      Timer TRp;
      RNG PerturbRng(0x5EED);
      TransitionMatrix Prp = buildRandomPerturbation(H, Rounds, PerturbRng);
      double TimeRp = TRp.seconds();

      TransitionMatrix MGc =
          TransitionMatrix::combine({&Pqd, &Pgc}, {0.4, 0.6});
      TransitionMatrix MRp =
          TransitionMatrix::combine({&Pqd, &Pgc, &Prp}, {0.4, 0.3, 0.3});

      size_t N = qdriftSampleCount(H.lambda(), T, Eps);
      // Circuit-generation time via the engine: strategy construction
      // (alias tables) plus one sampled shot, matching the paper's "circuit
      // generation" column.
      CompilerEngine Engine;
      auto TimeCircuit = [&](const TransitionMatrix &P) {
        Timer TC;
        SamplingStrategy Strategy(std::make_shared<const HTTGraph>(H, P), T,
                                  Eps);
        CompilationResult R = Engine.compileOne(Strategy, 0xCAFE);
        (void)R;
        return TC.seconds();
      };
      double CBase = TimeCircuit(Pqd);
      double CGc = TimeCircuit(MGc);
      double CRp = TimeCircuit(MRp);

      Out.addRow({std::to_string(Q), std::to_string(S), std::to_string(N),
                  formatDouble(TimeQd), formatDouble(TimeGc),
                  formatDouble(TimeRp), formatDouble(CBase),
                  formatDouble(CGc), formatDouble(CRp)});
    }
  }
  Out.print(std::cout);
  std::cout << "\nPaper shape to check: times depend almost entirely on the "
               "string count, not\nthe qubit count; Pgc/Prp (MCFP) dominate "
               "matrix generation and grow\nsuperlinearly in the string "
               "count; circuit generation is linear in N.\n";
  return 0;
}
