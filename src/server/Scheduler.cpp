//===- server/Scheduler.cpp - Request queue and batch scheduler -----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Scheduler.h"

#include "stats/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

namespace marqsim {
namespace server {

using Clock = std::chrono::steady_clock;

const char *stateName(RequestState S) {
  switch (S) {
  case RequestState::Queued:
    return "queued";
  case RequestState::Running:
    return "running";
  case RequestState::Done:
    return "done";
  case RequestState::Failed:
    return "failed";
  case RequestState::Cancelled:
    return "cancelled";
  case RequestState::Expired:
    return "expired";
  }
  return "failed";
}

//===----------------------------------------------------------------------===//
// SchedulerStats
//===----------------------------------------------------------------------===//

double SchedulerStats::latencyQuantileMs(double Q) const {
  if (!LatencyCount)
    return 0.0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  // Rank of the quantile observation (1-based, ceil), then walk buckets.
  size_t Rank = static_cast<size_t>(std::ceil(Q * LatencyCount));
  Rank = std::max<size_t>(Rank, 1);
  size_t Seen = 0;
  for (size_t I = 0; I < NumLatencyBuckets; ++I) {
    Seen += LatencyBuckets[I];
    if (Seen >= Rank)
      return static_cast<double>(uint64_t(1) << (I + 1));
  }
  return static_cast<double>(uint64_t(1) << NumLatencyBuckets);
}

json::Value SchedulerStats::toJson() const {
  json::Value Buckets = json::Value::array();
  // Trailing zero buckets are elided; index i still means [2^i, 2^(i+1)).
  size_t Last = 0;
  for (size_t I = 0; I < NumLatencyBuckets; ++I)
    if (LatencyBuckets[I])
      Last = I + 1;
  for (size_t I = 0; I < Last; ++I)
    Buckets.push(LatencyBuckets[I]);
  return json::Value::object()
      .set("admitted", Admitted)
      .set("rejected_full", RejectedFull)
      .set("rejected_invalid", RejectedInvalid)
      .set("rejected_draining", RejectedDraining)
      .set("completed", Completed)
      .set("failed", Failed)
      .set("cancelled", Cancelled)
      .set("expired", Expired)
      .set("queue_depth", QueueDepth)
      .set("peak_queue_depth", PeakQueueDepth)
      .set("running", Running)
      .set("eval_seconds", EvalSeconds)
      .set("latency", json::Value::object()
                          .set("count", LatencyCount)
                          .set("p50_ms", latencyQuantileMs(0.50))
                          .set("p90_ms", latencyQuantileMs(0.90))
                          .set("p99_ms", latencyQuantileMs(0.99))
                          .set("log2_ms_buckets", std::move(Buckets)));
}

//===----------------------------------------------------------------------===//
// BatchScheduler
//===----------------------------------------------------------------------===//

struct BatchScheduler::Request {
  uint64_t Id = 0;
  std::string ClientKey;
  std::shared_ptr<const TaskSpec> Spec;
  ShotSink Sink;
  /// Set for fleet shard-submit requests: execute only this global range.
  std::optional<ShotRange> Range;
  Clock::time_point EnqueuedAt;
  /// Zero time_point means "no deadline".
  Clock::time_point Deadline{};

  RequestState State = RequestState::Queued;
  bool CancelRequested = false;
  std::string Error;
  std::shared_ptr<const TaskResult> Result;
};

BatchScheduler::BatchScheduler(SimulationService &Service,
                               SchedulerOptions Opts)
    : Service(Service), Opts(Opts),
      EffectiveWorkers(Opts.Workers ? Opts.Workers
                                    : ThreadPool::hardwareWorkers()) {
  // Executors occupy pool slots for a whole request; make sure the pool
  // can hold every executor plus at least the caller-participating shot
  // workers underneath them (parallelFor nests safely on this pool).
  ThreadPool::shared().ensureWorkers(EffectiveWorkers);
}

BatchScheduler::~BatchScheduler() { drain(); }

uint64_t BatchScheduler::submit(TaskSpec Spec, const std::string &ClientKey,
                                SubmitReject *Reject, std::string *Error,
                                ShotSink Sink, uint64_t DeadlineMs,
                                std::optional<ShotRange> Range) {
  auto Fail = [&](SubmitReject Why, const std::string &Message) -> uint64_t {
    if (Reject)
      *Reject = Why;
    detail::fail(Error, Message);
    return 0;
  };
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.RejectedInvalid;
    return Fail(SubmitReject::Invalid, Validation);
  }
  if (Range && (Range->Count == 0 || Range->end() > Spec.Shots)) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.RejectedInvalid;
    return Fail(SubmitReject::Invalid,
                "shot range [" + std::to_string(Range->Begin) + ", " +
                    std::to_string(Range->end()) + ") outside batch of " +
                    std::to_string(Spec.Shots) + " shots");
  }

  std::unique_lock<std::mutex> Lock(Mutex);
  if (Draining) {
    ++Counters.RejectedDraining;
    return Fail(SubmitReject::Draining, "scheduler is draining");
  }
  if (QueuedCount >= Opts.MaxQueueDepth) {
    ++Counters.RejectedFull;
    return Fail(SubmitReject::QueueFull,
                "queue full (" + std::to_string(Opts.MaxQueueDepth) +
                    " requests)");
  }

  auto R = std::make_shared<Request>();
  R->Id = NextId++;
  R->ClientKey = ClientKey;
  R->Spec = std::make_shared<const TaskSpec>(std::move(Spec));
  // Ranged requests never stream: the shard-result frame carries the
  // whole manifest at once.
  R->Sink = Range ? nullptr : std::move(Sink);
  R->Range = Range;
  R->EnqueuedAt = Clock::now();
  if (DeadlineMs)
    R->Deadline = R->EnqueuedAt + std::chrono::milliseconds(DeadlineMs);

  Requests[R->Id] = R;
  auto &Queue = ClientQueues[ClientKey];
  if (Queue.empty())
    ClientRing.push_back(ClientKey);
  Queue.push_back(R);
  ++QueuedCount;
  ++Counters.Admitted;
  Counters.PeakQueueDepth = std::max(Counters.PeakQueueDepth, QueuedCount);

  uint64_t Id = R->Id;
  maybeDispatchLocked();
  return Id;
}

void BatchScheduler::maybeDispatchLocked() {
  while (!HoldForTesting && RunningCount < EffectiveWorkers &&
         !ClientRing.empty()) {
    // Round-robin: take the front client's oldest request, then move the
    // client to the back of the ring if it still has queued work.
    std::string Key = std::move(ClientRing.front());
    ClientRing.pop_front();
    auto QueueIt = ClientQueues.find(Key);
    std::shared_ptr<Request> R = QueueIt->second.front();
    QueueIt->second.pop_front();
    if (QueueIt->second.empty())
      ClientQueues.erase(QueueIt);
    else
      ClientRing.push_back(std::move(Key));
    --QueuedCount;

    R->State = RequestState::Running;
    ++RunningCount;
    ThreadPool::shared().submit([this, R] { execute(R); });
  }
  Counters.QueueDepth = QueuedCount;
  Counters.Running = RunningCount;
}

void BatchScheduler::finishLocked(std::unique_lock<std::mutex> &Lock,
                                  const std::shared_ptr<Request> &R,
                                  RequestState Terminal, std::string Error,
                                  std::shared_ptr<const TaskResult> Result) {
  R->State = Terminal;
  R->Error = std::move(Error);
  R->Result = std::move(Result);

  switch (Terminal) {
  case RequestState::Done:
    ++Counters.Completed;
    if (R->Result)
      Counters.EvalSeconds += R->Result->Batch.EvalSeconds;
    break;
  case RequestState::Failed:
    ++Counters.Failed;
    break;
  case RequestState::Cancelled:
    ++Counters.Cancelled;
    break;
  case RequestState::Expired:
    ++Counters.Expired;
    break;
  case RequestState::Queued:
  case RequestState::Running:
    break;
  }
  double Ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                        R->EnqueuedAt)
                  .count();
  size_t Bucket = 0;
  while (Bucket + 1 < SchedulerStats::NumLatencyBuckets &&
         Ms >= static_cast<double>(uint64_t(1) << (Bucket + 1)))
    ++Bucket;
  ++Counters.LatencyBuckets[Bucket];
  ++Counters.LatencyCount;

  Retired.push_back(R->Id);
  while (Retired.size() > Opts.ResultRetention) {
    Requests.erase(Retired.front());
    Retired.pop_front();
  }

  TerminalCV.notify_all();
  (void)Lock;
}

void BatchScheduler::execute(const std::shared_ptr<Request> &R) {
  // Pool tasks must not throw; any escape turns into a Failed outcome.
  std::string Error;
  std::shared_ptr<TaskResult> Result;
  RequestState Terminal = RequestState::Failed;
  try {
    const TaskSpec &Spec = *R->Spec;
    bool Expired = false, Cancelled = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Cancelled = R->CancelRequested;
    }
    if (!Cancelled && R->Deadline != Clock::time_point{} &&
        Clock::now() >= R->Deadline)
      Expired = true;

    if (Cancelled) {
      Terminal = RequestState::Cancelled;
      Error = "cancelled before dispatch";
    } else if (Expired) {
      Terminal = RequestState::Expired;
      Error = "deadline passed before dispatch";
    } else if (!Service.prewarm(Spec, &Error)) {
      // prewarm is the coalescing point: the store's single-flight keying
      // means concurrent requests for one Hamiltonian block on the same
      // MCFP solve here. It is also the early-out for specs whose
      // transition matrix fails Theorem 4.1 validation.
      Terminal = RequestState::Failed;
    } else if (R->Range) {
      std::optional<TaskResult> Run = Service.run(Spec, *R->Range, &Error);
      if (Run) {
        Result = std::make_shared<TaskResult>(std::move(*Run));
        Terminal = RequestState::Done;
      }
    } else if (!R->Sink) {
      std::optional<TaskResult> Run = Service.run(Spec, &Error);
      if (Run) {
        Result = std::make_shared<TaskResult>(std::move(*Run));
        Terminal = RequestState::Done;
      }
    } else {
      // Streamed execution: consecutive ranged sub-runs. Global shot
      // seeding makes the concatenation bit-identical to one full run;
      // recomputeAggregates is the same sequential pass compileBatch and
      // the shard merge use.
      const size_t Chunk = std::max<size_t>(Opts.StreamChunkShots, 1);
      Result = std::make_shared<TaskResult>();
      BatchResult &B = Result->Batch;
      bool First = true;
      bool Aborted = false;
      for (size_t Begin = 0; Begin < Spec.Shots; Begin += Chunk) {
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Cancelled = R->CancelRequested;
        }
        if (Cancelled) {
          Terminal = RequestState::Cancelled;
          Error = "cancelled after " + std::to_string(Begin) + " of " +
                  std::to_string(Spec.Shots) + " shots";
          Aborted = true;
          break;
        }
        if (R->Deadline != Clock::time_point{} &&
            Clock::now() >= R->Deadline) {
          Terminal = RequestState::Expired;
          Error = "deadline passed after " + std::to_string(Begin) + " of " +
                  std::to_string(Spec.Shots) + " shots";
          Aborted = true;
          break;
        }
        ShotRange Range{Begin, std::min(Chunk, Spec.Shots - Begin)};
        std::optional<TaskResult> Part = Service.run(Spec, Range, &Error);
        if (!Part) {
          Terminal = RequestState::Failed;
          Aborted = true;
          break;
        }
        if (First) {
          Result->Fingerprint = Part->Fingerprint;
          Result->NumSamples = Part->NumSamples;
          Result->HasFidelity = Part->HasFidelity;
          Result->HasShotZero = Part->HasShotZero;
          Result->ShotZero = std::move(Part->ShotZero);
          Result->GraphDot = std::move(Part->GraphDot);
          B.StrategyName = Part->Batch.StrategyName;
          B.Seed = Part->Batch.Seed;
          First = false;
        }
        B.JobsUsed = std::max(B.JobsUsed, Part->Batch.JobsUsed);
        B.Seconds += Part->Batch.Seconds;
        B.EvalSeconds += Part->Batch.EvalSeconds;
        B.Shots.insert(B.Shots.end(), Part->Batch.Shots.begin(),
                       Part->Batch.Shots.end());
        Result->ShotFidelities.insert(Result->ShotFidelities.end(),
                                      Part->ShotFidelities.begin(),
                                      Part->ShotFidelities.end());
        Result->Stats += Part->Stats;
        // The sink observes the chunk outside the scheduler lock, after
        // it has been folded into the accumulating result.
        R->Sink(Range, Part->Batch.Shots, Part->ShotFidelities);
      }
      if (!Aborted) {
        B.NumShots = Spec.Shots;
        B.recomputeAggregates();
        if (Result->HasFidelity) {
          RunningStats Fids;
          for (double F : Result->ShotFidelities)
            Fids.add(F);
          Result->Fidelity.Mean = Fids.mean();
          Result->Fidelity.Std = Fids.stddev();
          Result->Fidelity.Min = Fids.min();
          Result->Fidelity.Max = Fids.max();
        }
        Terminal = RequestState::Done;
      } else {
        Result.reset();
      }
    }
  } catch (const std::exception &E) {
    Terminal = RequestState::Failed;
    Error = std::string("internal error: ") + E.what();
    Result.reset();
  } catch (...) {
    Terminal = RequestState::Failed;
    Error = "internal error";
    Result.reset();
  }

  std::unique_lock<std::mutex> Lock(Mutex);
  --RunningCount;
  finishLocked(Lock, R, Terminal, std::move(Error), std::move(Result));
  maybeDispatchLocked();
}

std::optional<RequestState> BatchScheduler::status(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Requests.find(Id);
  if (It == Requests.end())
    return std::nullopt;
  return It->second->State;
}

std::optional<RequestOutcome> BatchScheduler::wait(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto It = Requests.find(Id);
  if (It == Requests.end())
    return std::nullopt;
  std::shared_ptr<Request> R = It->second;
  TerminalCV.wait(Lock, [&] {
    return R->State != RequestState::Queued &&
           R->State != RequestState::Running;
  });
  RequestOutcome Out;
  Out.State = R->State;
  Out.Error = R->Error;
  Out.Result = R->Result;
  Out.Spec = R->Spec;
  return Out;
}

bool BatchScheduler::cancel(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto It = Requests.find(Id);
  if (It == Requests.end())
    return false;
  std::shared_ptr<Request> R = It->second;
  if (R->State == RequestState::Queued) {
    // Remove from its client queue so it never dispatches.
    auto QueueIt = ClientQueues.find(R->ClientKey);
    if (QueueIt != ClientQueues.end()) {
      auto &Queue = QueueIt->second;
      Queue.erase(std::remove(Queue.begin(), Queue.end(), R), Queue.end());
      if (Queue.empty()) {
        ClientQueues.erase(QueueIt);
        ClientRing.erase(std::remove(ClientRing.begin(), ClientRing.end(),
                                     R->ClientKey),
                         ClientRing.end());
      }
    }
    --QueuedCount;
    Counters.QueueDepth = QueuedCount;
    finishLocked(Lock, R, RequestState::Cancelled, "cancelled while queued",
                 nullptr);
    return true;
  }
  if (R->State == RequestState::Running) {
    R->CancelRequested = true;
    return true;
  }
  return false;
}

void BatchScheduler::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Draining = true;
  // Draining completes admitted work; it only refuses *new* submits. A
  // test hold would deadlock the drain, so it is released here.
  HoldForTesting = false;
  maybeDispatchLocked();
  TerminalCV.wait(Lock, [&] { return QueuedCount == 0 && RunningCount == 0; });
}

bool BatchScheduler::draining() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Draining;
}

SchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  SchedulerStats S = Counters;
  S.QueueDepth = QueuedCount;
  S.Running = RunningCount;
  return S;
}

void BatchScheduler::holdDispatch(bool Hold) {
  std::unique_lock<std::mutex> Lock(Mutex);
  HoldForTesting = Hold;
  if (!Hold)
    maybeDispatchLocked();
}

} // namespace server
} // namespace marqsim
