//===- server/Daemon.cpp - Resident simulation daemon ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include "circuit/QasmExport.h"
#include "server/Protocol.h"
#include "shard/ShardManifest.h"
#include "support/Serial.h"

#include <fcntl.h>
#include <unistd.h>

#include <future>
#include <sstream>

namespace marqsim {
namespace server {

/// One live client connection: its socket, handler thread, and a write
/// lock serializing response frames (streamed shot frames are written
/// from executor threads while the handler may answer other requests).
struct Daemon::Connection {
  uint64_t Id = 0;
  Socket Sock;
  std::thread Handler;
  std::mutex WriteMutex;
  std::atomic<bool> Done{false};

  bool send(const std::string &Frame) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    return Sock.sendAll(Frame);
  }
};

Daemon::Daemon(SimulationService &Service, DaemonOptions Opts)
    : Service(Service), Opts(std::move(Opts)), Sched(Service, this->Opts.Scheduler) {
  if (::pipe(WakePipe) == 0) {
    ::fcntl(WakePipe[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(WakePipe[1], F_SETFD, FD_CLOEXEC);
  }
}

Daemon::~Daemon() {
  notifyShutdown();
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::shared_ptr<Connection>> Open;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Open = Connections;
    for (auto &Conn : Open)
      Conn->Sock.shutdownRead();
  }
  for (auto &Conn : Open)
    if (Conn->Handler.joinable())
      Conn->Handler.join();
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

bool Daemon::start(std::string *Error) {
  if (WakePipe[0] < 0)
    return detail::fail(Error, "daemon: wake pipe unavailable");
  if (!Listener.listenOn(Opts.Host, Opts.Port, Error))
    return false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

uint16_t Daemon::port() const { return Listener.port(); }

void Daemon::notifyShutdown() {
  // Called from signal handlers: only async-signal-safe calls here.
  ShutdownRequested.store(true, std::memory_order_relaxed);
  if (WakePipe[1] >= 0) {
    char Byte = 'x';
    ssize_t Ignored = ::write(WakePipe[1], &Byte, 1);
    (void)Ignored;
  }
}

void Daemon::reapFinishedLocked() {
  for (auto It = Connections.begin(); It != Connections.end();) {
    if ((*It)->Done.load(std::memory_order_acquire)) {
      if ((*It)->Handler.joinable())
        (*It)->Handler.join();
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

void Daemon::acceptLoop() {
  for (;;) {
    bool Woke = false;
    std::optional<Socket> Conn = Listener.accept(WakePipe[0], &Woke);
    if (Woke || ShutdownRequested.load(std::memory_order_relaxed))
      return;
    if (!Conn)
      return; // listener error: stop accepting, serve() will drain
    std::lock_guard<std::mutex> Lock(ConnMutex);
    reapFinishedLocked();
    if (Connections.size() >= Opts.MaxConnections) {
      Conn->sendAll(errorFrame("busy", "connection limit reached"));
      continue; // Socket destructor closes
    }
    auto Slot = std::make_shared<Connection>();
    Slot->Id = NextConnId++;
    Slot->Sock = std::move(*Conn);
    Connections.push_back(Slot);
    Slot->Handler = std::thread([this, Slot] { handleConnection(Slot); });
  }
}

namespace {

/// Pulls a positive "id" member out of a request body.
uint64_t frameId(const json::Value &Body) {
  const json::Value *Id = Body.find("id");
  if (!Id || Id->kind() != json::Value::Kind::Int || Id->asInt() <= 0)
    return 0;
  return static_cast<uint64_t>(Id->asInt());
}

json::Value shotChunkBody(uint64_t Id, const ShotRange &Range,
                          const std::vector<ShotSummary> &Shots,
                          const std::vector<double> &Fidelities) {
  json::Value Body = json::Value::object();
  Body.set("id", static_cast<int64_t>(Id));
  Body.set("begin", static_cast<int64_t>(Range.Begin));
  Body.set("count", static_cast<int64_t>(Range.Count));
  json::Value Rows = json::Value::array();
  for (const ShotSummary &S : Shots) {
    json::Value Row = json::Value::array();
    Row.push(static_cast<int64_t>(S.NumSamples));
    Row.push(static_cast<int64_t>(S.Counts.CNOTs));
    Row.push(static_cast<int64_t>(S.Counts.SingleQubit));
    Row.push(static_cast<int64_t>(S.Stats.CancelledCNOTs));
    Row.push(static_cast<int64_t>(S.Stats.CancelledSingles));
    Row.push(serial::hex16(S.SequenceHash));
    Rows.push(std::move(Row));
  }
  Body.set("shots", std::move(Rows));
  if (!Fidelities.empty()) {
    json::Value Hexes = json::Value::array();
    for (double F : Fidelities)
      Hexes.push(serial::hex16(serial::doubleBits(F)));
    Body.set("fidelity", std::move(Hexes));
  }
  return Body;
}

} // namespace

void Daemon::handleConnection(const std::shared_ptr<Connection> &Conn) {
  if (Opts.IdleTimeoutMs)
    Conn->Sock.setRecvTimeout(Opts.IdleTimeoutMs);
  const std::string ClientKey = "conn-" + std::to_string(Conn->Id);

  std::string Line;
  for (;;) {
    Socket::ReadStatus Status =
        Conn->Sock.readLine(Line, MaxRequestFrameBytes);
    if (Status == Socket::ReadStatus::Oversized) {
      Conn->send(errorFrame("oversized",
                            "request frame exceeds " +
                                std::to_string(MaxRequestFrameBytes) +
                                " bytes"));
      break; // mid-frame; the stream cannot be resynchronized
    }
    if (Status != Socket::ReadStatus::Line)
      break; // Eof / Truncated / Timeout / Error all end the connection

    std::string Code, Message;
    std::optional<Frame> F = decodeFrame(Line, &Code, &Message);
    if (!F) {
      // Line framing is intact, so the connection survives a bad frame.
      Conn->send(errorFrame(Code, Message));
      continue;
    }

    if (F->Type == "submit") {
      const json::Value *SpecJson = F->Body.find("spec");
      std::string Error;
      std::optional<TaskSpec> Spec;
      if (!SpecJson)
        Error = "submit frame missing 'spec'";
      else
        Spec = TaskSpec::fromJson(*SpecJson, &Error);
      if (!Spec) {
        Conn->send(errorFrame("bad-spec", Error));
        continue;
      }
      // The daemon always compiles shot 0 exportably: the result frame
      // carries the QASM text, and contentKey ignores this flag, so the
      // manifest still matches the client's spec.
      Spec->Evaluate.ExportShotZero = true;
      Spec->Evaluate.KeepResults = false;

      bool Stream = false;
      if (const json::Value *S = F->Body.find("stream"))
        Stream = S->asBool();
      uint64_t DeadlineMs = 0;
      if (const json::Value *D = F->Body.find("deadline_ms"))
        if (D->kind() == json::Value::Kind::Int && D->asInt() > 0)
          DeadlineMs = static_cast<uint64_t>(D->asInt());

      // The sink fires from executor threads strictly before the request
      // turns terminal, so every shot frame precedes the result frame
      // the handler sends after wait(). Dispatch can outrun this handler
      // (submit() may start executing before it returns), so the sink
      // blocks on the id future rather than reading a not-yet-filled
      // cell — shot frames always carry the real request id, even when
      // they overtake the accepted frame on the wire.
      ShotSink Sink;
      std::shared_ptr<std::promise<uint64_t>> IdPromise;
      if (Stream) {
        IdPromise = std::make_shared<std::promise<uint64_t>>();
        auto IdFuture = std::make_shared<std::shared_future<uint64_t>>(
            IdPromise->get_future().share());
        Sink = [Conn, IdFuture](const ShotRange &Range,
                                const std::vector<ShotSummary> &Shots,
                                const std::vector<double> &Fids) {
          Conn->send(encodeFrame(
              "shot", shotChunkBody(IdFuture->get(), Range, Shots, Fids)));
        };
      }

      SubmitReject Reject = SubmitReject::None;
      uint64_t Id = Sched.submit(std::move(*Spec), ClientKey, &Reject,
                                 &Error, std::move(Sink), DeadlineMs);
      if (IdPromise)
        IdPromise->set_value(Id); // unblocks the sink (no-op if rejected)
      if (!Id) {
        const char *RejectCode =
            Reject == SubmitReject::QueueFull
                ? "queue-full"
                : Reject == SubmitReject::Draining ? "draining" : "bad-spec";
        Conn->send(errorFrame(RejectCode, Error));
        continue;
      }
      Conn->send(encodeFrame(
          "accepted",
          json::Value::object().set("id", static_cast<int64_t>(Id))));
    } else if (F->Type == "status") {
      uint64_t Id = frameId(F->Body);
      if (!Id) {
        Conn->send(errorFrame("bad-frame", "status needs a positive 'id'"));
        continue;
      }
      std::optional<RequestState> State = Sched.status(Id);
      if (!State) {
        Conn->send(errorFrame("not-found", "unknown request id", Id));
        continue;
      }
      Conn->send(encodeFrame("status",
                             json::Value::object()
                                 .set("id", static_cast<int64_t>(Id))
                                 .set("state", stateName(*State))));
    } else if (F->Type == "result") {
      uint64_t Id = frameId(F->Body);
      if (!Id) {
        Conn->send(errorFrame("bad-frame", "result needs a positive 'id'"));
        continue;
      }
      std::optional<RequestOutcome> Out = Sched.wait(Id);
      if (!Out) {
        Conn->send(errorFrame("not-found", "unknown request id", Id));
        continue;
      }
      json::Value Body = json::Value::object();
      Body.set("id", static_cast<int64_t>(Id));
      Body.set("state", stateName(Out->State));
      if (Out->State != RequestState::Done) {
        Body.set("error", Out->Error);
      } else {
        const TaskSpec &Spec = *Out->Spec;
        const TaskResult &Result = *Out->Result;
        // The manifest is the bit-exact payload: the client rebuilds its
        // TaskResult through the same merge that reconstructs sharded
        // runs, so aggregates, batch hash, and fidelities round-trip
        // exactly. QASM/DOT are full-fidelity text already.
        ShardManifest Manifest = ShardManifest::fromTaskResult(
            Spec, ShotRange{0, Spec.Shots}, Result);
        Body.set("manifest", Manifest.serialize());
        if (Result.HasShotZero) {
          std::ostringstream Qasm;
          exportQasm(Result.ShotZero.Circ, Qasm);
          Body.set("qasm", Qasm.str());
          Body.set("depth",
                   static_cast<int64_t>(Result.ShotZero.Circ.depth()));
        }
        if (!Result.GraphDot.empty())
          Body.set("dot", Result.GraphDot);
        ArtifactStore::Stats Store = Service.storeStats();
        Body.set("stats", runStatsJson(Spec, Result, &Store,
                                       Opts.StoreLimitBytes));
      }
      Conn->send(encodeFrame("result", std::move(Body)));
    } else if (F->Type == "cancel") {
      uint64_t Id = frameId(F->Body);
      bool Cancelled = Id && Sched.cancel(Id);
      Conn->send(encodeFrame("ok", json::Value::object()
                                       .set("id", static_cast<int64_t>(Id))
                                       .set("cancelled", Cancelled)));
    } else if (F->Type == "health") {
      SchedulerStats S = Sched.stats();
      size_t Open;
      {
        std::lock_guard<std::mutex> Lock(ConnMutex);
        Open = Connections.size();
      }
      Conn->send(encodeFrame(
          "health",
          json::Value::object()
              .set("status", "ok")
              .set("draining", DrainingFlag.load(std::memory_order_relaxed))
              .set("connections", Open)
              .set("queue_depth", S.QueueDepth)
              .set("running", S.Running)));
    } else if (F->Type == "stats") {
      Conn->send(encodeFrame("stats", statsJson()));
    } else if (F->Type == "shutdown") {
      Conn->send(encodeFrame("ok", json::Value::object()
                                       .set("shutdown", true)));
      notifyShutdown();
    } else if (F->Type == "shard-submit") {
      Fabric.ShardSubmits.fetch_add(1, std::memory_order_relaxed);
      const json::Value *SpecJson = F->Body.find("spec");
      std::string Error;
      std::optional<TaskSpec> Spec;
      if (!SpecJson)
        Error = "shard-submit frame missing 'spec'";
      else
        Spec = TaskSpec::fromJson(*SpecJson, &Error);
      if (!Spec) {
        Conn->send(errorFrame("bad-spec", Error));
        continue;
      }
      const json::Value *Begin = F->Body.find("begin");
      const json::Value *Count = F->Body.find("count");
      if (!Begin || Begin->kind() != json::Value::Kind::Int ||
          Begin->asInt() < 0 || !Count ||
          Count->kind() != json::Value::Kind::Int || Count->asInt() <= 0) {
        Conn->send(errorFrame(
            "bad-frame",
            "shard-submit needs integer 'begin' >= 0 and 'count' > 0"));
        continue;
      }
      ShotRange Range{static_cast<size_t>(Begin->asInt()),
                      static_cast<size_t>(Count->asInt())};
      // Mirror the single-host worker path (ShardCoordinator::runShard):
      // per-shot extras cannot travel through a manifest, so the worker
      // never computes them. contentKey ignores these flags, so the
      // manifest's SpecKey still matches the coordinator's spec.
      Spec->Evaluate.ExportShotZero = false;
      Spec->Evaluate.KeepResults = false;
      Spec->Evaluate.DumpDot = false;

      uint64_t DeadlineMs = 0;
      if (const json::Value *D = F->Body.find("deadline_ms"))
        if (D->kind() == json::Value::Kind::Int && D->asInt() > 0)
          DeadlineMs = static_cast<uint64_t>(D->asInt());

      SubmitReject Reject = SubmitReject::None;
      uint64_t Id = Sched.submit(std::move(*Spec), ClientKey, &Reject,
                                 &Error, nullptr, DeadlineMs, Range);
      if (!Id) {
        const char *RejectCode =
            Reject == SubmitReject::QueueFull
                ? "queue-full"
                : Reject == SubmitReject::Draining ? "draining" : "bad-spec";
        Conn->send(errorFrame(RejectCode, Error));
        continue;
      }
      Conn->send(encodeFrame(
          "accepted",
          json::Value::object().set("id", static_cast<int64_t>(Id))));
      // Block until the range is terminal: the fleet coordinator drives
      // one range per connection at a time and waits for the manifest.
      std::optional<RequestOutcome> Out = Sched.wait(Id);
      json::Value Body = json::Value::object();
      Body.set("id", static_cast<int64_t>(Id));
      if (!Out) {
        Body.set("state", "failed");
        Body.set("error", "request evicted before its result was read");
      } else if (Out->State != RequestState::Done) {
        Body.set("state", stateName(Out->State));
        Body.set("error", Out->Error);
      } else {
        Body.set("state", stateName(Out->State));
        ShardManifest Manifest =
            ShardManifest::fromTaskResult(*Out->Spec, Range, *Out->Result);
        Body.set("manifest", Manifest.serialize());
      }
      Fabric.ShardResults.fetch_add(1, std::memory_order_relaxed);
      Conn->send(encodeFrame("shard-result", std::move(Body)));
    } else if (F->Type == "artifact-get") {
      Fabric.ArtifactGets.fetch_add(1, std::memory_order_relaxed);
      const json::Value *TypeName = F->Body.find("atype");
      const json::Value *IdVal = F->Body.find("id");
      std::optional<ArtifactType> Type;
      if (TypeName && TypeName->isString())
        Type = artifactTypeFromName(TypeName->asString());
      if (!Type || !IdVal || !IdVal->isString() ||
          IdVal->asString().empty()) {
        Conn->send(errorFrame("bad-frame",
                              "artifact-get needs a known 'atype' and a "
                              "non-empty 'id'"));
        continue;
      }
      bool Probe = false;
      if (const json::Value *P = F->Body.find("probe"))
        Probe = P->asBool();
      ArtifactKey Key{*Type, IdVal->asString()};
      // Never computes: a daemon serves only artifacts it has already
      // materialized, so a client cannot farm out solves for free.
      std::optional<std::string> BodyText = Service.exportArtifactBody(Key);
      if (Probe) {
        if (BodyText)
          Fabric.ArtifactHits.fetch_add(1, std::memory_order_relaxed);
        Conn->send(
            encodeFrame("artifact",
                        json::Value::object()
                            .set("atype", artifactTypeName(*Type))
                            .set("id", Key.Id)
                            .set("found", static_cast<bool>(BodyText))));
        continue;
      }
      if (!BodyText) {
        Conn->send(errorFrame("not-found",
                              "artifact '" + Key.Id +
                                  "' is not materialized on this daemon"));
        continue;
      }
      Fabric.ArtifactHits.fetch_add(1, std::memory_order_relaxed);
      Fabric.ArtifactBytesOut.fetch_add(BodyText->size(),
                                        std::memory_order_relaxed);
      Conn->send(encodeFrame("artifact",
                             json::Value::object()
                                 .set("atype", artifactTypeName(*Type))
                                 .set("id", Key.Id)
                                 .set("found", true)
                                 .set("body", *BodyText)));
    } else if (F->Type == "artifact-put") {
      Fabric.ArtifactPuts.fetch_add(1, std::memory_order_relaxed);
      const json::Value *SpecJson = F->Body.find("spec");
      std::string Error;
      std::optional<TaskSpec> Spec;
      if (!SpecJson)
        Error = "artifact-put frame missing 'spec'";
      else
        Spec = TaskSpec::fromJson(*SpecJson, &Error);
      if (!Spec) {
        Conn->send(errorFrame("bad-spec", Error));
        continue;
      }
      const json::Value *TypeName = F->Body.find("atype");
      const json::Value *IdVal = F->Body.find("id");
      const json::Value *BodyVal = F->Body.find("body");
      std::optional<ArtifactType> Type;
      if (TypeName && TypeName->isString())
        Type = artifactTypeFromName(TypeName->asString());
      if (!Type || !IdVal || !IdVal->isString() ||
          IdVal->asString().empty() || !BodyVal || !BodyVal->isString()) {
        Conn->send(errorFrame("bad-frame",
                              "artifact-put needs a known 'atype', a "
                              "non-empty 'id', and a string 'body'"));
        continue;
      }
      ArtifactKey Key{*Type, IdVal->asString()};
      const std::string &BodyText = BodyVal->asString();
      std::optional<ArtifactImport> Import =
          Service.importArtifact(*Spec, Key, BodyText, &Error);
      if (!Import) {
        // Unknown key for the spec or an undecodable body; either way
        // nothing entered the cache.
        Conn->send(errorFrame("bad-spec", Error));
        continue;
      }
      if (*Import == ArtifactImport::Inserted) {
        Fabric.ArtifactMisses.fetch_add(1, std::memory_order_relaxed);
        Fabric.ArtifactBytesIn.fetch_add(BodyText.size(),
                                         std::memory_order_relaxed);
      } else {
        Fabric.ArtifactHits.fetch_add(1, std::memory_order_relaxed);
      }
      Conn->send(encodeFrame(
          "ok", json::Value::object()
                    .set("id", Key.Id)
                    .set("stored", *Import == ArtifactImport::Inserted)));
    } else {
      Conn->send(errorFrame("unknown-type",
                            "unknown frame type '" + F->Type + "'"));
    }
  }
  Conn->Sock.close();
  Conn->Done.store(true, std::memory_order_release);
}

json::Value Daemon::statsJson() const {
  json::Value V = json::Value::object();
  V.set("format", "marqsim-server-stats-v1");
  size_t Open;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Open = Connections.size();
  }
  json::Value Server = Sched.stats().toJson();
  Server.set("connections", Open);
  Server.set("draining", DrainingFlag.load(std::memory_order_relaxed));
  V.set("server", std::move(Server));
  V.set("cache", cacheStatsJson(Service.stats()));
  V.set("store", storeStatsJson(Service.storeStats(), Opts.StoreLimitBytes));
  // "kernel" (flat tier string) predates the dispatch object; kept so
  // marqsim-server-stats-v1 consumers parse unchanged.
  V.set("kernel", SimulationService::kernelName());
  V.set("kernels", kernelDispatchJson());
  FabricServerStats FS;
  FS.ShardSubmits = Fabric.ShardSubmits.load(std::memory_order_relaxed);
  FS.ShardResults = Fabric.ShardResults.load(std::memory_order_relaxed);
  FS.ArtifactGets = Fabric.ArtifactGets.load(std::memory_order_relaxed);
  FS.ArtifactPuts = Fabric.ArtifactPuts.load(std::memory_order_relaxed);
  FS.ArtifactHits = Fabric.ArtifactHits.load(std::memory_order_relaxed);
  FS.ArtifactMisses = Fabric.ArtifactMisses.load(std::memory_order_relaxed);
  FS.ArtifactBytesIn = Fabric.ArtifactBytesIn.load(std::memory_order_relaxed);
  FS.ArtifactBytesOut =
      Fabric.ArtifactBytesOut.load(std::memory_order_relaxed);
  V.set("fabric", fabricStatsJson(FS));
  return V;
}

int Daemon::serve() {
  if (Acceptor.joinable())
    Acceptor.join(); // blocks until notifyShutdown wakes the accept loop

  // Drain order matters: finish every admitted request first (clients
  // blocked in `result` get their frames), then unblock idle readers so
  // the handler threads can exit.
  DrainingFlag.store(true, std::memory_order_relaxed);
  Sched.drain();
  Listener.close();

  std::vector<std::shared_ptr<Connection>> Open;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Open = Connections;
    for (auto &Conn : Open)
      Conn->Sock.shutdownRead();
  }
  for (auto &Conn : Open)
    if (Conn->Handler.joinable())
      Conn->Handler.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Connections.clear();
  }
  return 0;
}

int Daemon::run(std::string *Error) {
  if (!start(Error))
    return 2;
  return serve();
}

} // namespace server
} // namespace marqsim
