//===- server/Protocol.h - Daemon wire protocol -----------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-delimited JSON protocol of the resident simulation daemon:
/// one frame per '\n'-terminated line, each frame a single JSON object
/// carrying a protocol version ("v") and a frame type ("type").
///
/// Request frames (client -> daemon):
///
///   type         | body                                   | response
///   -------------+----------------------------------------+----------------
///   submit       | spec (TaskSpec::toJson), stream?,      | accepted, then
///                | deadline_ms?                           | shot* + result
///   status       | id                                     | status
///   result       | id (blocks until the task is terminal) | result
///   cancel       | id                                     | ok
///   health       | —                                      | health
///   stats        | —                                      | stats
///   shutdown     | —                                      | ok, then drain
///   shard-submit | spec, begin, count, deadline_ms?       | accepted, then
///                |                                        | shard-result
///   artifact-get | atype, id, probe?                      | artifact
///   artifact-put | spec, atype, id, body                  | ok
///
/// Response frames: accepted, status, shot (streamed per-chunk shot
/// summaries + fidelity hexes), result, shard-result (manifest text for
/// one dispatched range), artifact (probe answer or encoded body), ok,
/// health, stats, error.
///
/// The last three request types are the cross-host execution fabric: a
/// fleet coordinator (marqsim-cli --workers=host:port,...) pushes the
/// deterministic artifacts of a task to each worker daemon
/// (content-addressed on the ArtifactStore's existing keys — "atype" is
/// artifactTypeName, "id" the content-hash id, "body" the codec text the
/// disk tier would hold), then dispatches shot ranges as shard-submit
/// frames and merges the returned manifests exactly as the single-host
/// shard path does. An artifact-get for a key the daemon has not
/// materialized answers error "not-found" (the daemon never computes on
/// demand); a probe answers presence without the body.
///
/// Determinism over the wire: a result frame carries the run as a
/// serialized ShardManifest (the PR 3 bit-exact artifact format), so the
/// client rebuilds its TaskResult through the same ShardCoordinator::merge
/// path that makes K-shard runs bit-identical to local ones. Doubles and
/// 64-bit words whose bits matter travel as hex16 strings throughout.
///
/// This header is also the home of the *one* machine-readable stats
/// serializer ("marqsim-stats-v1"): `marqsim-cli --stats-json` and the
/// daemon's result/stats frames all call runStatsJson, so the two surfaces
/// can never drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVER_PROTOCOL_H
#define MARQSIM_SERVER_PROTOCOL_H

#include "service/SimulationService.h"
#include "shard/ShardCoordinator.h"
#include "support/Json.h"

#include <cstdint>
#include <optional>
#include <string>

namespace marqsim {
namespace server {

/// Bumped on any incompatible frame-shape change. A daemon answers a
/// mismatched "v" with error code "version-mismatch" and keeps serving.
inline constexpr int ProtocolVersion = 1;

/// Per-line cap the daemon enforces on *request* frames. Submit frames
/// carry a whole inline Hamiltonian, so this is generous; anything larger
/// is a protocol violation, answered with "oversized" and a close.
inline constexpr size_t MaxRequestFrameBytes = 4u << 20;

/// Per-line cap clients enforce on *response* frames. Result frames carry
/// a full manifest (per-shot summaries + fidelity hexes for every shot),
/// which dwarfs any request.
inline constexpr size_t MaxResponseFrameBytes = 256u << 20;

/// A decoded frame: its type tag plus the full body object (the body
/// retains "v" and "type"; handlers just ignore them).
struct Frame {
  std::string Type;
  json::Value Body;
};

/// Renders \p Body (an object; "v" and "type" are prepended) as one
/// newline-terminated line ready for Socket::sendAll.
std::string encodeFrame(const std::string &Type, json::Value Body);

/// Shorthand for bodyless frames.
inline std::string encodeFrame(const std::string &Type) {
  return encodeFrame(Type, json::Value::object());
}

/// Parses one received line. Returns std::nullopt on malformed JSON,
/// non-object frames, a missing/non-string "type", or a version mismatch,
/// filling \p ErrorCode ("bad-frame" | "version-mismatch") and
/// \p ErrorMessage for the error frame the server should answer with.
std::optional<Frame> decodeFrame(const std::string &Line,
                                 std::string *ErrorCode = nullptr,
                                 std::string *ErrorMessage = nullptr);

/// Builds the standard error response line. Codes in use: "bad-frame",
/// "version-mismatch", "oversized", "unknown-type", "bad-spec",
/// "queue-full", "draining", "not-found", "busy", "internal".
std::string errorFrame(const std::string &Code, const std::string &Message,
                       uint64_t Id = 0);

//===----------------------------------------------------------------------===//
// Shared stats serializers ("marqsim-stats-v1")
//===----------------------------------------------------------------------===//

/// Service-cache accounting. "*_solves" counts work performed (the CLI's
/// "gc-solves" contract: a warm repeat run reports gc_solves == 0).
json::Value cacheStatsJson(const CacheStats &S);

/// Artifact-store tier accounting; \p LimitBytes is the configured
/// memory budget (0 = unbounded).
json::Value storeStatsJson(const ArtifactStore::Stats &S, size_t LimitBytes);

/// The kernel dispatch decision alone: selected tier, best-detected tier
/// (what dispatch would pick with no environment pin), and whether the OS
/// exposes the AVX-512 register state. Shared by the per-run stats and
/// the daemon's stats frame so the two surfaces can never disagree.
json::Value kernelDispatchJson();

/// The dispatched SIMD tier (kernelDispatchJson keys) plus the evaluation
/// precision tier.
json::Value kernelsJson(EvalPrecision Precision);

/// The complete per-run stats object: fingerprint, batch aggregates and
/// hash, shot-0 gate counts, fidelity summary with exact per-shot hexes,
/// kernel tiers, cache and (optionally) store accounting. This is the one
/// serializer behind `marqsim-cli --stats-json` and the daemon's frames.
json::Value runStatsJson(const TaskSpec &Spec, const TaskResult &Result,
                         const ArtifactStore::Stats *Store = nullptr,
                         size_t StoreLimitBytes = 0);

/// Coordinator-side fleet accounting ("fleet" section of marqsim-stats-v1,
/// additive): per-worker ranges dispatched/re-dispatched, artifact fetch
/// hits/misses, bytes served, liveness, and eval CPU-seconds, plus the
/// fleet-wide totals. Shared by `marqsim-cli --stats-json` and the
/// human-readable --stats rendering so the surfaces cannot drift.
json::Value fleetStatsJson(const FleetStats &S);

/// Worker-daemon-side fabric accounting, embedded in the daemon's stats
/// frame ("fabric" section of marqsim-server-stats-v1, additive).
struct FabricServerStats {
  /// shard-submit frames admitted and shard-result frames answered.
  size_t ShardSubmits = 0;
  size_t ShardResults = 0;

  /// artifact-get / artifact-put frames served.
  size_t ArtifactGets = 0;
  size_t ArtifactPuts = 0;

  /// Fetch accounting from this daemon's perspective: keys it already
  /// held when asked (hits) vs bodies it had to receive (misses).
  size_t ArtifactHits = 0;
  size_t ArtifactMisses = 0;

  /// Body bytes received via artifact-put and served via artifact-get.
  size_t ArtifactBytesIn = 0;
  size_t ArtifactBytesOut = 0;
};

json::Value fabricStatsJson(const FabricServerStats &S);

} // namespace server
} // namespace marqsim

#endif // MARQSIM_SERVER_PROTOCOL_H
