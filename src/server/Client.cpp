//===- server/Client.cpp - Daemon client ----------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "shard/ShardCoordinator.h"
#include "shard/ShardManifest.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace marqsim {
namespace server {

std::optional<DaemonClient> DaemonClient::connectTo(const std::string &HostPort,
                                                    std::string *Error,
                                                    ConnectOptions Opts) {
  std::string Host;
  uint16_t Port = 0;
  if (!parseHostPort(HostPort, Host, Port, Error))
    return std::nullopt;
  const unsigned Attempts = std::max(1u, Opts.Attempts);
  unsigned Delay = std::max(1u, Opts.DelayMs);
  const unsigned MaxDelay = std::max(Opts.MaxDelayMs, Delay);
  for (unsigned Attempt = 1;; ++Attempt) {
    std::optional<Socket> Sock = Socket::connectTo(Host, Port, Error);
    if (Sock)
      return DaemonClient(std::move(*Sock));
    if (Attempt >= Attempts)
      return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    Delay = std::min(Delay * 2, MaxDelay);
  }
}

std::optional<Frame>
DaemonClient::roundTrip(const std::string &FrameLine,
                        const std::string &WantType, std::string *Error,
                        const std::function<void(const Frame &)> &OnOther) {
  if (!Sock.sendAll(FrameLine, Error))
    return std::nullopt;
  std::string Line;
  for (;;) {
    Socket::ReadStatus Status =
        Sock.readLine(Line, MaxResponseFrameBytes, Error);
    if (Status != Socket::ReadStatus::Line) {
      detail::fail(Error, Status == Socket::ReadStatus::Eof ||
                                  Status == Socket::ReadStatus::Truncated
                              ? "daemon closed the connection"
                              : "transport error reading from daemon");
      return std::nullopt;
    }
    std::string Code, Message;
    std::optional<Frame> F = decodeFrame(Line, &Code, &Message);
    if (!F) {
      detail::fail(Error, "bad frame from daemon: " + Message);
      return std::nullopt;
    }
    if (F->Type == "error") {
      const json::Value *C = F->Body.find("code");
      const json::Value *M = F->Body.find("message");
      detail::fail(Error, "daemon error [" +
                              (C && C->isString() ? C->asString()
                                                  : std::string("?")) +
                              "]: " +
                              (M && M->isString() ? M->asString()
                                                  : std::string("")));
      return std::nullopt;
    }
    if (F->Type == WantType)
      return F;
    if (OnOther)
      OnOther(*F);
    // Unexpected interleaved frames (e.g. streamed shots) are consumed.
  }
}

std::optional<RemoteRunResult> DaemonClient::runTask(const TaskSpec &Spec,
                                                     std::string *Error,
                                                     bool Stream,
                                                     uint64_t DeadlineMs,
                                                     ShotProgress OnShot) {
  // Resolve the operator locally *now*: the submit carries it inline, and
  // its fingerprint — computed here, on the client's own resolution —
  // is what the returned manifest must match.
  std::optional<json::Value> SpecJson = Spec.toJson(Error);
  if (!SpecJson)
    return std::nullopt;
  bool Canonical = Spec.Method == TaskMethod::Sampling;
  std::optional<Hamiltonian> H =
      SimulationService::resolveHamiltonian(Spec.Source, Error, Canonical);
  if (!H)
    return std::nullopt;
  const uint64_t ExpectedFingerprint = H->fingerprint();

  json::Value Submit = json::Value::object();
  Submit.set("spec", std::move(*SpecJson));
  if (Stream)
    Submit.set("stream", true);
  if (DeadlineMs)
    Submit.set("deadline_ms", static_cast<int64_t>(DeadlineMs));

  auto OnOther = [&](const Frame &F) {
    if (F.Type != "shot" || !OnShot)
      return;
    const json::Value *Begin = F.Body.find("begin");
    const json::Value *Count = F.Body.find("count");
    if (Begin && Count && Begin->kind() == json::Value::Kind::Int &&
        Count->kind() == json::Value::Kind::Int)
      OnShot(ShotRange{static_cast<size_t>(Begin->asInt()),
                       static_cast<size_t>(Count->asInt())},
             Spec.Shots);
  };
  // Shot frames may overtake the accepted frame on the wire (a fast
  // request can finish executing before the daemon's handler writes its
  // acceptance), so progress is forwarded from this round trip too.
  std::optional<Frame> Accepted = roundTrip(
      encodeFrame("submit", std::move(Submit)), "accepted", Error, OnOther);
  if (!Accepted)
    return std::nullopt;
  const json::Value *IdVal = Accepted->Body.find("id");
  if (!IdVal || IdVal->kind() != json::Value::Kind::Int ||
      IdVal->asInt() <= 0) {
    detail::fail(Error, "daemon accepted without a request id");
    return std::nullopt;
  }
  uint64_t Id = static_cast<uint64_t>(IdVal->asInt());
  std::optional<Frame> Result = roundTrip(
      encodeFrame("result",
                  json::Value::object().set("id", static_cast<int64_t>(Id))),
      "result", Error, OnOther);
  if (!Result)
    return std::nullopt;

  const json::Value *State = Result->Body.find("state");
  if (!State || !State->isString() || State->asString() != "done") {
    const json::Value *Message = Result->Body.find("error");
    detail::fail(Error,
                 "remote run " +
                     (State && State->isString() ? State->asString()
                                                 : std::string("failed")) +
                     (Message && Message->isString()
                          ? ": " + Message->asString()
                          : std::string()));
    return std::nullopt;
  }

  const json::Value *ManifestText = Result->Body.find("manifest");
  if (!ManifestText || !ManifestText->isString()) {
    detail::fail(Error, "result frame missing manifest");
    return std::nullopt;
  }
  std::optional<ShardManifest> Manifest =
      ShardManifest::parse(ManifestText->asString(), Error);
  if (!Manifest)
    return std::nullopt;

  // The merge re-validates everything — fingerprint, seed, contentKey,
  // coverage, range hash — and rebuilds the aggregates with the exact
  // sequential passes compileBatch runs. One full-range manifest is just
  // the K = 1 case of the sharded reconstruction.
  std::vector<ShardManifest> Manifests;
  Manifests.push_back(std::move(*Manifest));
  std::optional<TaskResult> Rebuilt = ShardCoordinator::merge(
      Spec, ExpectedFingerprint, std::move(Manifests), Error);
  if (!Rebuilt)
    return std::nullopt;

  RemoteRunResult Out;
  Out.Result = std::move(*Rebuilt);
  Out.RequestId = Id;
  if (const json::Value *Qasm = Result->Body.find("qasm");
      Qasm && Qasm->isString())
    Out.Qasm = Qasm->asString();
  if (const json::Value *Dot = Result->Body.find("dot");
      Dot && Dot->isString())
    Out.Dot = Dot->asString();
  if (const json::Value *Depth = Result->Body.find("depth");
      Depth && Depth->kind() == json::Value::Kind::Int)
    Out.Depth = static_cast<size_t>(Depth->asInt());
  if (const json::Value *Stats = Result->Body.find("stats"))
    Out.Stats = *Stats;
  return Out;
}

std::optional<json::Value> DaemonClient::serverStats(std::string *Error) {
  std::optional<Frame> F = roundTrip(encodeFrame("stats"), "stats", Error);
  if (!F)
    return std::nullopt;
  return std::move(F->Body);
}

bool DaemonClient::health(std::string *Error) {
  std::optional<Frame> F = roundTrip(encodeFrame("health"), "health", Error);
  if (!F)
    return false;
  const json::Value *Status = F->Body.find("status");
  return Status && Status->isString() && Status->asString() == "ok";
}

bool DaemonClient::shutdownServer(std::string *Error) {
  std::optional<Frame> F = roundTrip(encodeFrame("shutdown"), "ok", Error);
  return F.has_value();
}

//===----------------------------------------------------------------------===//
// Cross-host fabric
//===----------------------------------------------------------------------===//

std::optional<bool> DaemonClient::probeArtifact(const ArtifactKey &Key,
                                                std::string *Error) {
  json::Value Body = json::Value::object()
                         .set("atype", artifactTypeName(Key.Type))
                         .set("id", Key.Id)
                         .set("probe", true);
  std::optional<Frame> F =
      roundTrip(encodeFrame("artifact-get", std::move(Body)), "artifact",
                Error);
  if (!F)
    return std::nullopt;
  const json::Value *Found = F->Body.find("found");
  return Found && Found->asBool();
}

std::optional<std::string> DaemonClient::getArtifact(const ArtifactKey &Key,
                                                     std::string *Error) {
  json::Value Body = json::Value::object()
                         .set("atype", artifactTypeName(Key.Type))
                         .set("id", Key.Id);
  std::optional<Frame> F =
      roundTrip(encodeFrame("artifact-get", std::move(Body)), "artifact",
                Error);
  if (!F)
    return std::nullopt;
  const json::Value *BodyText = F->Body.find("body");
  if (!BodyText || !BodyText->isString()) {
    detail::fail(Error, "artifact frame missing body");
    return std::nullopt;
  }
  return BodyText->asString();
}

std::optional<bool> DaemonClient::putArtifact(const json::Value &SpecJson,
                                              const ArtifactKey &Key,
                                              const std::string &Body,
                                              std::string *Error) {
  json::Value Frame = json::Value::object()
                          .set("spec", SpecJson)
                          .set("atype", artifactTypeName(Key.Type))
                          .set("id", Key.Id)
                          .set("body", Body);
  std::optional<server::Frame> F =
      roundTrip(encodeFrame("artifact-put", std::move(Frame)), "ok", Error);
  if (!F)
    return std::nullopt;
  const json::Value *Stored = F->Body.find("stored");
  return Stored && Stored->asBool();
}

std::optional<std::string>
DaemonClient::runShardRange(const json::Value &SpecJson,
                            const ShotRange &Range, uint64_t DeadlineMs,
                            bool *TransportFailure, std::string *Error) {
  if (TransportFailure)
    *TransportFailure = false;
  json::Value Body = json::Value::object();
  Body.set("spec", SpecJson);
  Body.set("begin", static_cast<int64_t>(Range.Begin));
  Body.set("count", static_cast<int64_t>(Range.Count));
  if (DeadlineMs)
    Body.set("deadline_ms", static_cast<int64_t>(DeadlineMs));

  // Hand-rolled instead of roundTrip: the coordinator must distinguish a
  // dead worker (drop it, requeue the range for free) from a live worker
  // reporting failure (charge the range an attempt), and roundTrip folds
  // both into one failure path.
  if (!Sock.sendAll(encodeFrame("shard-submit", std::move(Body)), Error)) {
    if (TransportFailure)
      *TransportFailure = true;
    return std::nullopt;
  }
  std::string Line;
  for (;;) {
    Socket::ReadStatus Status =
        Sock.readLine(Line, MaxResponseFrameBytes, Error);
    if (Status != Socket::ReadStatus::Line) {
      if (TransportFailure)
        *TransportFailure = true;
      detail::fail(Error, Status == Socket::ReadStatus::Timeout
                              ? "worker timed out"
                              : "worker connection lost");
      return std::nullopt;
    }
    std::string Code, Message;
    std::optional<Frame> F = decodeFrame(Line, &Code, &Message);
    if (!F) {
      // The line framing held but the stream is garbled; it cannot be
      // resynchronized, so the worker is as good as dead.
      if (TransportFailure)
        *TransportFailure = true;
      detail::fail(Error, "bad frame from worker: " + Message);
      return std::nullopt;
    }
    if (F->Type == "error") {
      const json::Value *C = F->Body.find("code");
      const json::Value *M = F->Body.find("message");
      detail::fail(Error,
                   "worker error [" +
                       (C && C->isString() ? C->asString()
                                           : std::string("?")) +
                       "]: " +
                       (M && M->isString() ? M->asString()
                                           : std::string()));
      return std::nullopt;
    }
    if (F->Type == "accepted")
      continue;
    if (F->Type != "shard-result")
      continue; // unrelated interleaved frames are consumed
    const json::Value *State = F->Body.find("state");
    if (!State || !State->isString() || State->asString() != "done") {
      const json::Value *M = F->Body.find("error");
      detail::fail(Error,
                   "worker range " +
                       (State && State->isString() ? State->asString()
                                                   : std::string("failed")) +
                       (M && M->isString() ? ": " + M->asString()
                                           : std::string()));
      return std::nullopt;
    }
    const json::Value *Manifest = F->Body.find("manifest");
    if (!Manifest || !Manifest->isString()) {
      detail::fail(Error, "shard-result frame missing manifest");
      return std::nullopt;
    }
    return Manifest->asString();
  }
}

} // namespace server
} // namespace marqsim
