//===- server/Protocol.cpp - Daemon wire protocol -------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Serial.h"

namespace marqsim {
namespace server {

std::string encodeFrame(const std::string &Type, json::Value Body) {
  // Rebuild with "v"/"type" leading so every frame starts predictably —
  // handy for humans reading transcripts, irrelevant to the parser.
  json::Value Frame = json::Value::object();
  Frame.set("v", ProtocolVersion);
  Frame.set("type", Type);
  if (const auto *Members = Body.members())
    for (const json::Member &M : *Members)
      if (M.first != "v" && M.first != "type")
        Frame.set(M.first, M.second);
  return Frame.dump() + "\n";
}

std::optional<Frame> decodeFrame(const std::string &Line,
                                 std::string *ErrorCode,
                                 std::string *ErrorMessage) {
  auto Fail = [&](const char *Code, std::string Message) {
    if (ErrorCode)
      *ErrorCode = Code;
    if (ErrorMessage)
      *ErrorMessage = std::move(Message);
    return std::nullopt;
  };
  std::string ParseError;
  std::optional<json::Value> V = json::Value::parse(Line, &ParseError);
  if (!V)
    return Fail("bad-frame", "malformed frame: " + ParseError);
  if (!V->isObject())
    return Fail("bad-frame", "frame must be a JSON object");
  const json::Value *Ver = V->find("v");
  if (!Ver || Ver->kind() != json::Value::Kind::Int)
    return Fail("bad-frame", "frame missing integer 'v'");
  if (Ver->asInt() != ProtocolVersion)
    return Fail("version-mismatch",
                "protocol version " + std::to_string(Ver->asInt()) +
                    " unsupported (this side speaks " +
                    std::to_string(ProtocolVersion) + ")");
  const json::Value *Type = V->find("type");
  if (!Type || !Type->isString() || Type->asString().empty())
    return Fail("bad-frame", "frame missing string 'type'");
  Frame F;
  F.Type = Type->asString();
  F.Body = std::move(*V);
  return F;
}

std::string errorFrame(const std::string &Code, const std::string &Message,
                       uint64_t Id) {
  json::Value Body = json::Value::object();
  Body.set("code", Code);
  Body.set("message", Message);
  if (Id)
    Body.set("id", static_cast<int64_t>(Id));
  return encodeFrame("error", std::move(Body));
}

//===----------------------------------------------------------------------===//
// Stats serializers
//===----------------------------------------------------------------------===//

json::Value cacheStatsJson(const CacheStats &S) {
  return json::Value::object()
      .set("gc_hits", S.GCSolveHits)
      .set("gc_solves", S.GCSolveMisses)
      .set("rp_hits", S.RPSolveHits)
      .set("rp_solves", S.RPSolveMisses)
      .set("graph_hits", S.GraphHits)
      .set("graph_builds", S.GraphMisses)
      .set("evaluator_hits", S.EvaluatorHits)
      .set("evaluator_builds", S.EvaluatorMisses)
      .set("super_hits", S.SuperHits)
      .set("super_builds", S.SuperMisses)
      .set("disk_loads", S.DiskLoads);
}

json::Value storeStatsJson(const ArtifactStore::Stats &S, size_t LimitBytes) {
  return json::Value::object()
      .set("mem_hits", S.MemoryHits)
      .set("disk_hits", S.DiskHits)
      .set("computes", S.Computes)
      .set("evictions", S.Evictions)
      .set("evicted_bytes", S.EvictedBytes)
      .set("disk_writes", S.DiskWrites)
      .set("bytes", S.BytesInUse)
      .set("peak_bytes", S.PeakBytes)
      .set("limit_bytes", static_cast<int64_t>(LimitBytes));
}

json::Value kernelDispatchJson() {
  // Additive keys only: "tier" predates "detected"/"avx512_os", so
  // marqsim-stats-v1 consumers keep parsing unchanged.
  return json::Value::object()
      .set("tier", SimulationService::kernelName())
      .set("detected", SimulationService::detectedKernelName())
      .set("avx512_os", SimulationService::avx512OsEnabled());
}

json::Value kernelsJson(EvalPrecision Precision) {
  return kernelDispatchJson().set("precision", precisionName(Precision));
}

json::Value runStatsJson(const TaskSpec &Spec, const TaskResult &Result,
                         const ArtifactStore::Stats *Store,
                         size_t StoreLimitBytes) {
  json::Value V = json::Value::object();
  V.set("format", "marqsim-stats-v1");
  V.set("fingerprint", serial::hex16(Result.Fingerprint));

  const BatchResult &Batch = Result.Batch;
  V.set("batch", json::Value::object()
                     .set("shots", static_cast<int64_t>(Batch.NumShots))
                     .set("jobs", Batch.JobsUsed)
                     .set("seed", serial::hex16(Batch.Seed))
                     .set("hash", serial::hex16(Batch.batchHash()))
                     .set("strategy", Batch.StrategyName)
                     .set("wall_seconds", Batch.Seconds)
                     .set("eval_seconds", Batch.EvalSeconds));

  if (Result.HasShotZero) {
    const CompilationResult &R = Result.ShotZero;
    V.set("shot0", json::Value::object()
                       .set("samples", static_cast<int64_t>(R.NumSamples))
                       .set("cnots", static_cast<int64_t>(R.Counts.CNOTs))
                       .set("singles",
                            static_cast<int64_t>(R.Counts.SingleQubit))
                       .set("total", static_cast<int64_t>(R.Counts.total()))
                       .set("depth", static_cast<int64_t>(R.Circ.depth())));
  }

  if (Result.HasFidelity) {
    // The mean is informational; the per-shot hexes are the exact bits —
    // CI byte-diffs them between local and daemon runs.
    json::Value Hexes = json::Value::array();
    for (double F : Result.ShotFidelities)
      Hexes.push(serial::hex16(serial::doubleBits(F)));
    V.set("fidelity",
          json::Value::object()
              .set("columns",
                   static_cast<int64_t>(Spec.Evaluate.FidelityColumns))
              .set("mean", Result.Fidelity.Mean)
              .set("hex", std::move(Hexes)));
  }

  V.set("kernels", kernelsJson(Spec.Precision));
  // Always present so consumers need no existence probe; a noiseless run
  // reports channel "none".
  V.set("noise",
        json::Value::object()
            .set("channel", noiseChannelName(Spec.Noise.Kind))
            .set("mode", noiseModeName(Spec.Noise.Mode))
            .set("prob", Spec.Noise.Prob)
            .set("two_qubit_factor", Spec.Noise.TwoQubitFactor));
  V.set("cache", cacheStatsJson(Result.Stats));
  if (Store)
    V.set("store", storeStatsJson(*Store, StoreLimitBytes));
  return V;
}

json::Value fleetStatsJson(const FleetStats &S) {
  json::Value Workers = json::Value::array();
  size_t Dispatched = 0, Redispatched = 0, Hits = 0, Misses = 0, Bytes = 0;
  size_t Dead = 0;
  for (const FleetWorkerStats &W : S.Workers) {
    Dispatched += W.RangesDispatched;
    Redispatched += W.RangesRedispatched;
    Hits += W.FetchHits;
    Misses += W.FetchMisses;
    Bytes += W.ArtifactBytesServed;
    if (!W.Alive)
      ++Dead;
    Workers.push(json::Value::object()
                     .set("worker", W.HostPort)
                     .set("alive", W.Alive)
                     .set("ranges_dispatched", W.RangesDispatched)
                     .set("ranges_redispatched", W.RangesRedispatched)
                     .set("fetch_hits", W.FetchHits)
                     .set("fetch_misses", W.FetchMisses)
                     .set("artifact_bytes_served", W.ArtifactBytesServed)
                     .set("eval_seconds", W.EvalSeconds));
  }
  return json::Value::object()
      .set("workers", S.Workers.size())
      .set("dead_workers", Dead)
      .set("ranges_dispatched", Dispatched)
      .set("ranges_redispatched", Redispatched)
      .set("fetch_hits", Hits)
      .set("fetch_misses", Misses)
      .set("artifact_bytes_served", Bytes)
      .set("per_worker", std::move(Workers));
}

json::Value fabricStatsJson(const FabricServerStats &S) {
  return json::Value::object()
      .set("shard_submits", S.ShardSubmits)
      .set("shard_results", S.ShardResults)
      .set("artifact_gets", S.ArtifactGets)
      .set("artifact_puts", S.ArtifactPuts)
      .set("artifact_hits", S.ArtifactHits)
      .set("artifact_misses", S.ArtifactMisses)
      .set("artifact_bytes_in", S.ArtifactBytesIn)
      .set("artifact_bytes_out", S.ArtifactBytesOut);
}

} // namespace server
} // namespace marqsim
