//===- server/Scheduler.h - Request queue and batch scheduler ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission and dispatch layer between the daemon's connection
/// handlers and the SimulationService:
///
///   * bounded queue depth — a full queue rejects new submits ("queue-
///     full") instead of accumulating unbounded work;
///   * per-request deadlines — a request whose deadline passes while it
///     waits (or between streamed chunks) terminates Expired instead of
///     occupying an executor;
///   * fair-share dispatch — requests are drained round-robin across
///     client keys, so one chatty connection cannot starve the rest;
///   * executor concurrency capped at SchedulerOptions::Workers, with
///     the actual shot-level parallelism delegated to the shared
///     ThreadPool the service already fans batches across.
///
/// Identical Hamiltonians coalesce on one MCFP solve without any
/// scheduler-level keying: every execution starts with
/// SimulationService::prewarm, and the ArtifactStore underneath is
/// single-flight per content key — concurrent requests for one
/// Hamiltonian block on the same in-flight solve instead of duplicating
/// it.
///
/// Streaming: a submit may attach a ShotSink; the executor then runs the
/// batch as consecutive ranged sub-runs (the PR 3 determinism contract
/// makes the concatenation bit-identical to one full run) and hands each
/// chunk's summaries + fidelities to the sink as they complete, checking
/// cancellation and the deadline between chunks.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVER_SCHEDULER_H
#define MARQSIM_SERVER_SCHEDULER_H

#include "service/SimulationService.h"
#include "support/Json.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace marqsim {
namespace server {

struct SchedulerOptions {
  /// Maximum queued (admitted, not yet running) requests.
  size_t MaxQueueDepth = 64;

  /// Concurrently *executing* requests (each fans its shots across the
  /// shared ThreadPool via the service); 0 selects the hardware thread
  /// count.
  unsigned Workers = 1;

  /// Shots per streamed chunk for sink-attached submits.
  size_t StreamChunkShots = 1;

  /// Terminal results retained for later `result`/`status` frames; the
  /// oldest are forgotten beyond this (a late query answers "not-found").
  size_t ResultRetention = 256;
};

enum class RequestState { Queued, Running, Done, Failed, Cancelled, Expired };

/// Wire spelling of a state ("queued", "running", ...).
const char *stateName(RequestState S);

/// Why a submit was not admitted.
enum class SubmitReject { None, Invalid, QueueFull, Draining };

/// Receives one streamed chunk: the global shot range, its per-shot
/// summaries, and its per-shot fidelities (empty when the task computes
/// none). Called on the executor thread, strictly in range order,
/// strictly before the request turns terminal.
using ShotSink = std::function<void(const ShotRange &,
                                    const std::vector<ShotSummary> &,
                                    const std::vector<double> &)>;

/// Terminal outcome of a request.
struct RequestOutcome {
  RequestState State = RequestState::Failed;
  std::string Error;
  /// The complete result (Done only). Shared: the scheduler retains it
  /// for later `result` frames until retention evicts it.
  std::shared_ptr<const TaskResult> Result;
  /// The spec as executed (manifest/QASM building needs it).
  std::shared_ptr<const TaskSpec> Spec;
};

/// Cumulative scheduler accounting, exposed by the daemon's stats frame.
struct SchedulerStats {
  size_t Admitted = 0;
  size_t RejectedFull = 0;
  size_t RejectedInvalid = 0;
  size_t RejectedDraining = 0;
  size_t Completed = 0;
  size_t Failed = 0;
  size_t Cancelled = 0;
  size_t Expired = 0;
  size_t QueueDepth = 0;
  size_t PeakQueueDepth = 0;
  size_t Running = 0;
  /// Summed per-shot evaluation CPU-seconds across completed requests.
  double EvalSeconds = 0.0;

  /// Submit-to-terminal latency histogram: bucket i counts requests with
  /// latency in [2^i, 2^(i+1)) ms (bucket 0 includes < 1 ms; the last
  /// bucket is open-ended at ~35 minutes).
  static constexpr size_t NumLatencyBuckets = 22;
  size_t LatencyBuckets[NumLatencyBuckets] = {};
  size_t LatencyCount = 0;

  /// Upper edge (ms) of the bucket containing quantile \p Q in [0, 1] —
  /// a conservative histogram quantile, 0 when empty.
  double latencyQuantileMs(double Q) const;

  /// The "server" section of the stats frame: counters, queue gauges,
  /// and the histogram with derived p50/p90/p99.
  json::Value toJson() const;
};

/// Thread-safe bounded scheduler over one SimulationService.
class BatchScheduler {
public:
  BatchScheduler(SimulationService &Service, SchedulerOptions Opts = {});

  /// Drains: refuses new work, then blocks until every admitted request
  /// has reached a terminal state (executor tasks reference this object).
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler &) = delete;
  BatchScheduler &operator=(const BatchScheduler &) = delete;

  /// Admits one request. \p ClientKey buckets the fair-share round-robin
  /// (the daemon passes a per-connection key). \p DeadlineMs > 0 bounds
  /// the submit-to-completion time. \p Range restricts execution to a
  /// contiguous global shot sub-range (the fleet's shard-submit path);
  /// ranged requests ignore \p Sink (no streaming) and keep the PR 3
  /// global-index seeding, so concatenating a partition's results is
  /// bit-identical to the full batch. Returns the request id (> 0), or 0
  /// with \p Reject/\p Error describing the refusal.
  uint64_t submit(TaskSpec Spec, const std::string &ClientKey,
                  SubmitReject *Reject = nullptr, std::string *Error = nullptr,
                  ShotSink Sink = nullptr, uint64_t DeadlineMs = 0,
                  std::optional<ShotRange> Range = std::nullopt);

  /// Current state of a request; std::nullopt when unknown (never
  /// admitted, or evicted by retention).
  std::optional<RequestState> status(uint64_t Id) const;

  /// Blocks until \p Id is terminal and returns its outcome;
  /// std::nullopt for unknown ids.
  std::optional<RequestOutcome> wait(uint64_t Id);

  /// Cancels a queued request outright; flags a running one so streaming
  /// executions stop at the next chunk boundary (single-run executions
  /// complete — compiled shots are not abandoned mid-batch). False for
  /// unknown or already-terminal ids.
  bool cancel(uint64_t Id);

  /// Stops admission and blocks until all admitted work is terminal.
  /// Idempotent.
  void drain();

  bool draining() const;

  SchedulerStats stats() const;

  /// Test hook: while held, nothing dispatches (queued requests
  /// accumulate). Releasing dispatches as usual.
  void holdDispatch(bool Hold);

private:
  struct Request;

  void maybeDispatchLocked();
  void execute(const std::shared_ptr<Request> &R);
  void finishLocked(std::unique_lock<std::mutex> &Lock,
                    const std::shared_ptr<Request> &R, RequestState Terminal,
                    std::string Error,
                    std::shared_ptr<const TaskResult> Result);

  SimulationService &Service;
  const SchedulerOptions Opts;
  const unsigned EffectiveWorkers;

  mutable std::mutex Mutex;
  std::condition_variable TerminalCV;

  std::map<uint64_t, std::shared_ptr<Request>> Requests;
  /// Round-robin ring of client keys with queued work; per-client FIFOs
  /// live in ClientQueues.
  std::deque<std::string> ClientRing;
  std::map<std::string, std::deque<std::shared_ptr<Request>>> ClientQueues;
  /// Terminal ids in completion order, for retention eviction.
  std::deque<uint64_t> Retired;

  uint64_t NextId = 1;
  size_t QueuedCount = 0;
  size_t RunningCount = 0;
  bool Draining = false;
  bool HoldForTesting = false;
  SchedulerStats Counters;
};

} // namespace server
} // namespace marqsim

#endif // MARQSIM_SERVER_SCHEDULER_H
