//===- server/Client.h - Daemon client ---------------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the daemon protocol, used by `marqsim-cli
/// --connect host:port`. A remote run resolves the Hamiltonian locally,
/// ships the spec as bit-exact JSON, and rebuilds the TaskResult from
/// the returned manifest through ShardCoordinator::merge — the same path
/// that makes sharded runs bit-identical to local ones, now across a
/// socket.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVER_CLIENT_H
#define MARQSIM_SERVER_CLIENT_H

#include "server/Protocol.h"
#include "support/Socket.h"

#include <functional>
#include <optional>
#include <string>

namespace marqsim {
namespace server {

/// Everything a remote run returns. TaskResult::HasShotZero is false —
/// shot 0 travels as rendered text instead (Qasm/Dot/Depth).
struct RemoteRunResult {
  TaskResult Result;
  std::string Qasm;
  std::string Dot;
  size_t Depth = 0;
  uint64_t RequestId = 0;
  /// The daemon-side "marqsim-stats-v1" object for this run (its cache
  /// accounting is the daemon's, which is what a cache-hit check wants).
  json::Value Stats;
};

/// Streamed-progress callback: (chunk range, total shots).
using ShotProgress = std::function<void(const ShotRange &, size_t)>;

/// One connection to a resident daemon. Not thread-safe; one in-flight
/// request at a time.
class DaemonClient {
public:
  /// Connects to "host:port". Returns std::nullopt with \p Error on
  /// malformed specs or refused connections.
  static std::optional<DaemonClient> connectTo(const std::string &HostPort,
                                               std::string *Error = nullptr);

  /// Submits \p Spec, waits for the result, and reconstructs a
  /// bit-identical TaskResult from the returned manifest. \p Stream asks
  /// the daemon for per-chunk shot frames (reported via \p OnShot).
  std::optional<RemoteRunResult> runTask(const TaskSpec &Spec,
                                         std::string *Error = nullptr,
                                         bool Stream = false,
                                         uint64_t DeadlineMs = 0,
                                         ShotProgress OnShot = nullptr);

  /// Fetches the daemon's stats-frame body.
  std::optional<json::Value> serverStats(std::string *Error = nullptr);

  /// health frame round trip; true when the daemon answers "ok".
  bool health(std::string *Error = nullptr);

  /// Asks the daemon to drain and exit.
  bool shutdownServer(std::string *Error = nullptr);

private:
  explicit DaemonClient(Socket Sock) : Sock(std::move(Sock)) {}

  /// Sends one frame and reads response frames until \p WantType (or an
  /// error frame / transport failure, which fail).
  std::optional<Frame> roundTrip(const std::string &FrameLine,
                                 const std::string &WantType,
                                 std::string *Error,
                                 const std::function<void(const Frame &)>
                                     &OnOther = nullptr);

  Socket Sock;
};

} // namespace server
} // namespace marqsim

#endif // MARQSIM_SERVER_CLIENT_H
