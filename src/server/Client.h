//===- server/Client.h - Daemon client ---------------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the daemon protocol, used by `marqsim-cli
/// --connect host:port`. A remote run resolves the Hamiltonian locally,
/// ships the spec as bit-exact JSON, and rebuilds the TaskResult from
/// the returned manifest through ShardCoordinator::merge — the same path
/// that makes sharded runs bit-identical to local ones, now across a
/// socket.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVER_CLIENT_H
#define MARQSIM_SERVER_CLIENT_H

#include "server/Protocol.h"
#include "support/Socket.h"

#include <functional>
#include <optional>
#include <string>

namespace marqsim {
namespace server {

/// Everything a remote run returns. TaskResult::HasShotZero is false —
/// shot 0 travels as rendered text instead (Qasm/Dot/Depth).
struct RemoteRunResult {
  TaskResult Result;
  std::string Qasm;
  std::string Dot;
  size_t Depth = 0;
  uint64_t RequestId = 0;
  /// The daemon-side "marqsim-stats-v1" object for this run (its cache
  /// accounting is the daemon's, which is what a cache-hit check wants).
  json::Value Stats;
};

/// Streamed-progress callback: (chunk range, total shots).
using ShotProgress = std::function<void(const ShotRange &, size_t)>;

/// Bounded connect retry: \p Attempts tries total, sleeping \p DelayMs
/// before the second and doubling per retry up to \p MaxDelayMs. The
/// defaults are the single-attempt behavior connectTo always had; fleet
/// coordinators and CI smoke tests raise Attempts to absorb daemons
/// still binding their port.
struct ConnectOptions {
  unsigned Attempts = 1;
  unsigned DelayMs = 100;
  unsigned MaxDelayMs = 2000;
};

/// One connection to a resident daemon. Not thread-safe; one in-flight
/// request at a time.
class DaemonClient {
public:
  /// Connects to "host:port", retrying per \p Opts. Returns std::nullopt
  /// with \p Error on malformed addresses or when every attempt is
  /// refused.
  static std::optional<DaemonClient> connectTo(const std::string &HostPort,
                                               std::string *Error = nullptr,
                                               ConnectOptions Opts = {});

  /// Submits \p Spec, waits for the result, and reconstructs a
  /// bit-identical TaskResult from the returned manifest. \p Stream asks
  /// the daemon for per-chunk shot frames (reported via \p OnShot).
  std::optional<RemoteRunResult> runTask(const TaskSpec &Spec,
                                         std::string *Error = nullptr,
                                         bool Stream = false,
                                         uint64_t DeadlineMs = 0,
                                         ShotProgress OnShot = nullptr);

  /// Fetches the daemon's stats-frame body.
  std::optional<json::Value> serverStats(std::string *Error = nullptr);

  /// health frame round trip; true when the daemon answers "ok".
  bool health(std::string *Error = nullptr);

  /// Asks the daemon to drain and exit.
  bool shutdownServer(std::string *Error = nullptr);

  //===--------------------------------------------------------------------===//
  // Cross-host fabric (fleet coordinator side)
  //===--------------------------------------------------------------------===//

  /// Receive timeout between response frames; 0 disables. The fleet
  /// coordinator sets this to FleetTimeoutMs so a hung worker turns into
  /// a transport failure instead of blocking the batch forever.
  void setRecvTimeout(unsigned Ms) { Sock.setRecvTimeout(Ms); }

  /// artifact-get probe: does the daemon hold \p Key? std::nullopt on
  /// transport or protocol failures.
  std::optional<bool> probeArtifact(const ArtifactKey &Key,
                                    std::string *Error = nullptr);

  /// artifact-get: the daemon's encoded body for \p Key. std::nullopt
  /// when the daemon answers "not-found" or on transport failures.
  std::optional<std::string> getArtifact(const ArtifactKey &Key,
                                         std::string *Error = nullptr);

  /// artifact-put: injects \p Body under \p Key, with \p SpecJson as the
  /// daemon's decode context. Returns whether the daemon stored it (false
  /// = it already held the key); std::nullopt when the daemon rejected
  /// the body or on transport failures.
  std::optional<bool> putArtifact(const json::Value &SpecJson,
                                  const ArtifactKey &Key,
                                  const std::string &Body,
                                  std::string *Error = nullptr);

  /// shard-submit round trip: dispatches [Range.Begin, Range.end()) of
  /// the spec in \p SpecJson and blocks for the shard-result frame.
  /// Returns the manifest text (validation is the coordinator's job).
  /// On failure \p TransportFailure distinguishes a dead/hung worker
  /// (connection lost, receive timeout, garbled stream — the range was
  /// never charged an attempt) from a live worker reporting a failed
  /// range (error frame or non-done shard-result).
  std::optional<std::string> runShardRange(const json::Value &SpecJson,
                                           const ShotRange &Range,
                                           uint64_t DeadlineMs = 0,
                                           bool *TransportFailure = nullptr,
                                           std::string *Error = nullptr);

private:
  explicit DaemonClient(Socket Sock) : Sock(std::move(Sock)) {}

  /// Sends one frame and reads response frames until \p WantType (or an
  /// error frame / transport failure, which fail).
  std::optional<Frame> roundTrip(const std::string &FrameLine,
                                 const std::string &WantType,
                                 std::string *Error,
                                 const std::function<void(const Frame &)>
                                     &OnOther = nullptr);

  Socket Sock;
};

} // namespace server
} // namespace marqsim

#endif // MARQSIM_SERVER_CLIENT_H
