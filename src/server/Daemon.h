//===- server/Daemon.h - Resident simulation daemon -------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accept loop of the resident simulation service: a TCP listener,
/// one handler thread per connection speaking the line-delimited JSON
/// protocol (server/Protocol.h), a BatchScheduler dispatching admitted
/// TaskSpecs onto the shared ThreadPool, and a graceful drain:
///
///   SIGTERM/SIGINT -> notifyShutdown() (async-signal-safe: one byte
///   down a pipe) -> the accept loop stops admitting connections -> the
///   scheduler finishes every admitted request -> idle connections are
///   unblocked via read-side shutdown -> handler threads join -> serve()
///   returns 0.
///
/// Result transport is the PR 3 artifact path: a result frame carries
/// the run as a serialized ShardManifest plus the QASM text, so clients
/// rebuild a bit-identical TaskResult through ShardCoordinator::merge.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVER_DAEMON_H
#define MARQSIM_SERVER_DAEMON_H

#include "server/Scheduler.h"
#include "support/Socket.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace marqsim {
namespace server {

struct DaemonOptions {
  /// Bind address (numeric IPv4 or "localhost").
  std::string Host = "127.0.0.1";

  /// Bind port; 0 picks an ephemeral port (read it back via port()).
  uint16_t Port = 0;

  /// Concurrent connections; further accepts are answered with a "busy"
  /// error frame and closed.
  size_t MaxConnections = 64;

  /// Per-connection receive timeout between frames; an idle connection
  /// past this is closed. 0 disables (connections may idle forever).
  unsigned IdleTimeoutMs = 0;

  /// Reported in stats frames (the store's configured memory budget —
  /// the daemon cannot read it back out of the service).
  size_t StoreLimitBytes = 0;

  SchedulerOptions Scheduler;
};

/// The resident daemon. Owns the listener, the connection threads, and
/// the scheduler; borrows the SimulationService (whose caches are the
/// entire point of staying resident).
class Daemon {
public:
  Daemon(SimulationService &Service, DaemonOptions Opts = {});
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds, listens, and starts the accept thread. Returns false with
  /// \p Error on bind failures.
  bool start(std::string *Error = nullptr);

  /// The bound port (after start); useful with Port = 0.
  uint16_t port() const;

  /// Requests shutdown. Async-signal-safe: callable directly from a
  /// SIGTERM/SIGINT handler.
  void notifyShutdown();

  /// Blocks until shutdown is requested, then drains: joins the
  /// acceptor, lets the scheduler finish every admitted request, closes
  /// idle connections, joins handlers. Returns 0 on a clean drain.
  int serve();

  /// start() + serve() convenience used by the binary.
  int run(std::string *Error = nullptr);

  /// stats-frame body ("server" + "cache" + "store" + "kernels").
  json::Value statsJson() const;

private:
  struct Connection;

  /// Cross-host fabric accounting (serialized by Protocol.h's
  /// fabricStatsJson into the stats frame's "fabric" section). Atomics:
  /// every connection handler bumps these concurrently.
  struct FabricCounters {
    std::atomic<size_t> ShardSubmits{0};
    std::atomic<size_t> ShardResults{0};
    std::atomic<size_t> ArtifactGets{0};
    std::atomic<size_t> ArtifactPuts{0};
    std::atomic<size_t> ArtifactHits{0};
    std::atomic<size_t> ArtifactMisses{0};
    std::atomic<size_t> ArtifactBytesIn{0};
    std::atomic<size_t> ArtifactBytesOut{0};
  };

  void acceptLoop();
  void handleConnection(const std::shared_ptr<Connection> &Conn);
  void reapFinishedLocked();

  SimulationService &Service;
  const DaemonOptions Opts;
  BatchScheduler Sched;

  ListenSocket Listener;
  std::thread Acceptor;
  int WakePipe[2] = {-1, -1};
  std::atomic<bool> ShutdownRequested{false};
  std::atomic<bool> DrainingFlag{false};

  mutable std::mutex ConnMutex;
  std::vector<std::shared_ptr<Connection>> Connections;
  uint64_t NextConnId = 1;

  FabricCounters Fabric;
};

} // namespace server
} // namespace marqsim

#endif // MARQSIM_SERVER_DAEMON_H
