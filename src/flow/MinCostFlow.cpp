//===- flow/MinCostFlow.cpp - Minimum-cost flow solver ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "flow/MinCostFlow.h"

#include <cassert>
#include <limits>
#include <queue>

using namespace marqsim;

static constexpr int64_t kInfDist = std::numeric_limits<int64_t>::max() / 4;

MinCostFlow::MinCostFlow(size_t NumNodes) : NumNodes(NumNodes) {
  Adj.resize(NumNodes);
}

size_t MinCostFlow::addEdge(size_t From, size_t To, int64_t Capacity,
                            int64_t Cost) {
  assert(From < NumNodes && To < NumNodes && "edge endpoint out of range");
  assert(Capacity >= 0 && "negative capacity");
  assert(!Solved && "network already solved");
  size_t Id = Edges.size() / 2;
  Adj[From].push_back(static_cast<uint32_t>(Edges.size()));
  Edges.push_back({static_cast<uint32_t>(To), Capacity, Cost});
  Adj[To].push_back(static_cast<uint32_t>(Edges.size()));
  Edges.push_back({static_cast<uint32_t>(From), 0, -Cost});
  OriginalCapacity.push_back(Capacity);
  return Id;
}

bool MinCostFlow::dijkstra(size_t Source, size_t Sink) {
  Dist.assign(NumNodes, kInfDist);
  Dist[Source] = 0;
  using Item = std::pair<int64_t, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> Queue;
  Queue.push({0, static_cast<uint32_t>(Source)});
  while (!Queue.empty()) {
    auto [D, V] = Queue.top();
    Queue.pop();
    if (D > Dist[V])
      continue;
    for (uint32_t EId : Adj[V]) {
      const Edge &E = Edges[EId];
      if (E.Residual <= 0)
        continue;
      int64_t Reduced = E.Cost + Potential[V] - Potential[E.To];
      assert(Reduced >= 0 && "negative reduced cost in Dijkstra");
      int64_t Cand = D + Reduced;
      if (Cand < Dist[E.To]) {
        Dist[E.To] = Cand;
        Queue.push({Cand, E.To});
      }
    }
  }
  if (Dist[Sink] >= kInfDist)
    return false;
  // Fold distances into the potentials; unreachable nodes move by the sink
  // distance so future reduced costs stay non-negative.
  for (size_t V = 0; V < NumNodes; ++V)
    Potential[V] += Dist[V] < kInfDist ? Dist[V] : Dist[Sink];
  return true;
}

int64_t MinCostFlow::dfsPush(size_t V, size_t Sink, int64_t Limit) {
  if (V == Sink || Limit == 0)
    return Limit;
  int64_t Pushed = 0;
  for (uint32_t &Cursor = CurrentArc[V]; Cursor < Adj[V].size(); ++Cursor) {
    uint32_t EId = Adj[V][Cursor];
    Edge &E = Edges[EId];
    if (E.Residual <= 0 || Level[E.To] != Level[V] + 1)
      continue;
    if (E.Cost + Potential[V] - Potential[E.To] != 0)
      continue;
    int64_t Sub = dfsPush(E.To, Sink, std::min(Limit - Pushed, E.Residual));
    if (Sub > 0) {
      E.Residual -= Sub;
      Edges[EId ^ 1].Residual += Sub;
      Pushed += Sub;
      if (Pushed == Limit)
        return Pushed;
    }
  }
  // Dead end: prevent revisiting this vertex within the phase.
  Level[V] = -1;
  return Pushed;
}

int64_t MinCostFlow::blockingFlow(size_t Source, size_t Sink, int64_t Limit) {
  // BFS levels restricted to the admissible (zero-reduced-cost) subgraph,
  // which prevents the DFS from walking zero-cost residual cycles.
  Level.assign(NumNodes, -1);
  std::queue<uint32_t> Queue;
  Level[Source] = 0;
  Queue.push(static_cast<uint32_t>(Source));
  while (!Queue.empty()) {
    uint32_t V = Queue.front();
    Queue.pop();
    for (uint32_t EId : Adj[V]) {
      const Edge &E = Edges[EId];
      if (E.Residual <= 0 || Level[E.To] >= 0)
        continue;
      if (E.Cost + Potential[V] - Potential[E.To] != 0)
        continue;
      Level[E.To] = Level[V] + 1;
      Queue.push(E.To);
    }
  }
  if (Level[Sink] < 0)
    return 0;
  CurrentArc.assign(NumNodes, 0);
  return dfsPush(Source, Sink, Limit);
}

MinCostFlow::Result MinCostFlow::solve(size_t Source, size_t Sink,
                                       int64_t Amount) {
  assert(Source < NumNodes && Sink < NumNodes && "terminal out of range");
  assert(Source != Sink && "source equals sink");
  assert(Amount >= 0 && "negative flow request");
  assert(!Solved && "network already solved");
  Solved = true;

  Potential.assign(NumNodes, 0);
  // Bellman-Ford initialization is only needed when negative costs exist.
  bool HasNegative = false;
  for (size_t K = 0; K < Edges.size(); K += 2)
    if (Edges[K].Cost < 0 && Edges[K].Residual > 0)
      HasNegative = true;
  if (HasNegative) {
    for (size_t Iter = 0; Iter + 1 < NumNodes; ++Iter) {
      bool Any = false;
      for (size_t V = 0; V < NumNodes; ++V) {
        if (Potential[V] >= kInfDist)
          continue;
        for (uint32_t EId : Adj[V]) {
          const Edge &E = Edges[EId];
          if (E.Residual <= 0)
            continue;
          if (Potential[V] + E.Cost < Potential[E.To]) {
            Potential[E.To] = Potential[V] + E.Cost;
            Any = true;
          }
        }
      }
      if (!Any)
        break;
    }
  }

  Result R;
  while (R.FlowSent < Amount) {
    if (!dijkstra(Source, Sink))
      break;
    int64_t Pushed = blockingFlow(Source, Sink, Amount - R.FlowSent);
    if (Pushed == 0)
      break;
    R.FlowSent += Pushed;
  }
  R.Feasible = R.FlowSent == Amount;

  // Total cost from the flow on the forward edges.
  for (size_t Id = 0; Id < OriginalCapacity.size(); ++Id)
    R.TotalCost += flowOnEdge(Id) * Edges[2 * Id].Cost;
  return R;
}

int64_t MinCostFlow::flowOnEdge(size_t EdgeId) const {
  assert(EdgeId < OriginalCapacity.size() && "edge id out of range");
  return OriginalCapacity[EdgeId] - Edges[2 * EdgeId].Residual;
}
