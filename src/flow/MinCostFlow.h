//===- flow/MinCostFlow.h - Minimum-cost flow solver ------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact minimum-cost flow solver over integer capacities and costs.
///
/// MarQSim turns transition-matrix tuning into a Min-Cost Flow Problem
/// (paper Section 5); this solver is the engine behind Algorithm 2. The
/// algorithm is primal-dual: repeated Dijkstra with Johnson potentials
/// finds the current shortest-path distance, then a Dinic-style blocking
/// flow saturates the entire zero-reduced-cost admissible subgraph at once.
/// For the paper's transportation-shaped networks (complete bipartite with
/// small integer costs) the number of phases is bounded by the number of
/// distinct cost values, which keeps 1000-term instances fast.
///
/// Capacities and costs are int64; callers quantize probabilities
/// (see core/TransitionBuilders) so feasibility and optimality are exact.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_FLOW_MINCOSTFLOW_H
#define MARQSIM_FLOW_MINCOSTFLOW_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace marqsim {

/// A directed flow network with integer capacities and costs.
class MinCostFlow {
public:
  /// Effectively unbounded capacity for edges without a cap.
  static constexpr int64_t kInfiniteCapacity = int64_t(1) << 60;

  explicit MinCostFlow(size_t NumNodes);

  size_t numNodes() const { return NumNodes; }
  size_t numEdges() const { return Edges.size() / 2; }

  /// Adds a directed edge and returns its id (for flowOnEdge).
  /// Requires Capacity >= 0.
  size_t addEdge(size_t From, size_t To, int64_t Capacity, int64_t Cost);

  /// Outcome of a solve() call.
  struct Result {
    /// Amount of flow actually routed (== requested iff Feasible).
    int64_t FlowSent = 0;
    /// Total cost sum f(e) * w(e) of the routed flow.
    int64_t TotalCost = 0;
    /// True if the full requested amount was routed.
    bool Feasible = false;
  };

  /// Routes up to \p Amount units from \p Source to \p Sink at minimum
  /// cost. May be called once per network instance.
  Result solve(size_t Source, size_t Sink, int64_t Amount);

  /// Flow routed through edge \p EdgeId (valid after solve()).
  int64_t flowOnEdge(size_t EdgeId) const;

private:
  struct Edge {
    uint32_t To;
    int64_t Residual;
    int64_t Cost;
  };

  bool dijkstra(size_t Source, size_t Sink);
  int64_t blockingFlow(size_t Source, size_t Sink, int64_t Limit);
  int64_t dfsPush(size_t V, size_t Sink, int64_t Limit);

  size_t NumNodes;
  std::vector<Edge> Edges;              // pairs: 2k forward, 2k+1 reverse
  std::vector<int64_t> OriginalCapacity; // per forward edge id
  std::vector<std::vector<uint32_t>> Adj;
  std::vector<int64_t> Potential;
  std::vector<int64_t> Dist;
  std::vector<int32_t> Level;
  std::vector<uint32_t> CurrentArc;
  bool Solved = false;
};

} // namespace marqsim

#endif // MARQSIM_FLOW_MINCOSTFLOW_H
