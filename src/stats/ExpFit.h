//===- stats/ExpFit.h - Exponential curve fitting ---------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nonlinear least-squares fit of the paper's data-processing model
///   y = a + exp(b * x + c)
/// (Section 6.1, Fig. 12), used to interpolate CNOT counts at matched
/// simulation accuracy. The optimizer is a small Levenberg-Marquardt loop
/// with an analytic Jacobian; initial values come from a log-linearized fit.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_STATS_EXPFIT_H
#define MARQSIM_STATS_EXPFIT_H

#include <vector>

namespace marqsim {

/// Parameters and quality of a fitted y = a + exp(b*x + c) curve.
struct ExpFitResult {
  double A = 0.0;
  double B = 0.0;
  double C = 0.0;
  /// Final sum of squared residuals.
  double SSE = 0.0;
  /// True if the optimizer converged (residual/step tolerance met).
  bool Converged = false;

  /// Evaluates the fitted curve at \p X.
  double eval(double X) const;
};

/// Fits y = a + exp(b*x + c) through the given points (needs >= 4 points
/// and at least 3 distinct x). Deterministic.
ExpFitResult expFit(const std::vector<double> &X,
                    const std::vector<double> &Y);

} // namespace marqsim

#endif // MARQSIM_STATS_EXPFIT_H
