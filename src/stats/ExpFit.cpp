//===- stats/ExpFit.cpp - Exponential curve fitting -------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/ExpFit.h"

#include "stats/Stats.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace marqsim;

double ExpFitResult::eval(double X) const { return A + std::exp(B * X + C); }

static double sse(const std::vector<double> &X, const std::vector<double> &Y,
                  double A, double B, double C) {
  double S = 0.0;
  for (size_t I = 0; I < X.size(); ++I) {
    double E = Y[I] - (A + std::exp(B * X[I] + C));
    S += E * E;
  }
  return S;
}

/// Solves the 3x3 system M d = R by Gaussian elimination with partial
/// pivoting. Returns false if (numerically) singular.
static bool solve3(double M[3][3], double R[3], double D[3]) {
  int Perm[3] = {0, 1, 2};
  for (int K = 0; K < 3; ++K) {
    int P = K;
    for (int I = K + 1; I < 3; ++I)
      if (std::fabs(M[Perm[I]][K]) > std::fabs(M[Perm[P]][K]))
        P = I;
    std::swap(Perm[K], Perm[P]);
    double Pivot = M[Perm[K]][K];
    if (std::fabs(Pivot) < 1e-300)
      return false;
    for (int I = K + 1; I < 3; ++I) {
      double F = M[Perm[I]][K] / Pivot;
      for (int J = K; J < 3; ++J)
        M[Perm[I]][J] -= F * M[Perm[K]][J];
      R[Perm[I]] -= F * R[Perm[K]];
    }
  }
  for (int K = 2; K >= 0; --K) {
    double Acc = R[Perm[K]];
    for (int J = K + 1; J < 3; ++J)
      Acc -= M[Perm[K]][J] * D[J];
    D[K] = Acc / M[Perm[K]][K];
  }
  return true;
}

ExpFitResult marqsim::expFit(const std::vector<double> &X,
                             const std::vector<double> &Y) {
  assert(X.size() == Y.size() && "expFit size mismatch");
  assert(X.size() >= 4 && "expFit needs at least four points");

  // Initialization: choose a below min(y) and log-linearize
  // log(y - a) = b*x + c.
  double YMin = Y[0], YMax = Y[0];
  for (double V : Y) {
    YMin = std::min(YMin, V);
    YMax = std::max(YMax, V);
  }
  double Span = std::max(YMax - YMin, 1e-9);
  double A = YMin - 0.05 * Span;
  std::vector<double> LogY(Y.size());
  for (size_t I = 0; I < Y.size(); ++I)
    LogY[I] = std::log(std::max(Y[I] - A, 1e-12));
  LinearFitResult Line = linearFit(X, LogY);
  double B = Line.Slope;
  double C = Line.Intercept;

  ExpFitResult Best;
  Best.A = A;
  Best.B = B;
  Best.C = C;
  Best.SSE = sse(X, Y, A, B, C);

  // Levenberg-Marquardt with analytic Jacobian:
  //   df/da = 1, df/db = x * e^{bx+c}, df/dc = e^{bx+c}.
  double Mu = 1e-3;
  for (int Iter = 0; Iter < 200; ++Iter) {
    double JtJ[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    double JtR[3] = {0, 0, 0};
    for (size_t I = 0; I < X.size(); ++I) {
      double E = std::exp(Best.B * X[I] + Best.C);
      double J[3] = {1.0, X[I] * E, E};
      double R = Y[I] - (Best.A + E);
      for (int P = 0; P < 3; ++P) {
        JtR[P] += J[P] * R;
        for (int Q = 0; Q < 3; ++Q)
          JtJ[P][Q] += J[P] * J[Q];
      }
    }
    double M[3][3];
    for (int P = 0; P < 3; ++P)
      for (int Q = 0; Q < 3; ++Q)
        M[P][Q] = JtJ[P][Q] + (P == Q ? Mu * (1.0 + JtJ[P][P]) : 0.0);
    double D[3];
    double RHS[3] = {JtR[0], JtR[1], JtR[2]};
    if (!solve3(M, RHS, D)) {
      Mu *= 10.0;
      continue;
    }
    double NewA = Best.A + D[0];
    double NewB = Best.B + D[1];
    double NewC = Best.C + D[2];
    double NewSSE = sse(X, Y, NewA, NewB, NewC);
    if (std::isfinite(NewSSE) && NewSSE < Best.SSE) {
      double Improvement = Best.SSE - NewSSE;
      Best.A = NewA;
      Best.B = NewB;
      Best.C = NewC;
      Best.SSE = NewSSE;
      Mu = std::max(Mu * 0.3, 1e-12);
      if (Improvement < 1e-12 * (1.0 + Best.SSE)) {
        Best.Converged = true;
        break;
      }
    } else {
      Mu *= 10.0;
      if (Mu > 1e12) {
        // Cannot improve further; accept the current optimum.
        Best.Converged = true;
        break;
      }
    }
  }
  return Best;
}
