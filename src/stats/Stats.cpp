//===- stats/Stats.cpp - Summary statistics ---------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Stats.h"

#include <cassert>
#include <cmath>

using namespace marqsim;

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFitResult marqsim::linearFit(const std::vector<double> &X,
                                   const std::vector<double> &Y) {
  assert(X.size() == Y.size() && "linearFit size mismatch");
  assert(X.size() >= 2 && "linearFit needs at least two points");
  const double N = static_cast<double>(X.size());
  double SX = 0, SY = 0, SXX = 0, SXY = 0, SYY = 0;
  for (size_t I = 0; I < X.size(); ++I) {
    SX += X[I];
    SY += Y[I];
    SXX += X[I] * X[I];
    SXY += X[I] * Y[I];
    SYY += Y[I] * Y[I];
  }
  double Denom = N * SXX - SX * SX;
  assert(Denom != 0.0 && "linearFit: all x values identical");
  LinearFitResult R;
  R.Slope = (N * SXY - SX * SY) / Denom;
  R.Intercept = (SY - R.Slope * SX) / N;
  double SSTot = SYY - SY * SY / N;
  double SSRes = 0.0;
  for (size_t I = 0; I < X.size(); ++I) {
    double E = Y[I] - (R.Slope * X[I] + R.Intercept);
    SSRes += E * E;
  }
  R.R2 = SSTot > 0.0 ? 1.0 - SSRes / SSTot : 1.0;
  return R;
}

double marqsim::mean(const std::vector<double> &V) {
  assert(!V.empty() && "mean of empty vector");
  double S = 0.0;
  for (double X : V)
    S += X;
  return S / static_cast<double>(V.size());
}

double marqsim::stddev(const std::vector<double> &V) {
  if (V.size() < 2)
    return 0.0;
  double M = mean(V);
  double S = 0.0;
  for (double X : V)
    S += (X - M) * (X - M);
  return std::sqrt(S / static_cast<double>(V.size() - 1));
}
