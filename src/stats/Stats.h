//===- stats/Stats.h - Summary statistics -----------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the experiment harnesses: numerically stable
/// streaming mean/variance (Welford) and ordinary least-squares linear
/// regression.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_STATS_STATS_H
#define MARQSIM_STATS_STATS_H

#include <cstddef>
#include <vector>

namespace marqsim {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStats {
public:
  /// Adds one observation.
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return Mean; }

  /// Sample variance (divides by N-1); zero for fewer than two samples.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  double min() const { return Min; }
  double max() const { return Max; }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Result of an ordinary least-squares line fit y = Slope * x + Intercept.
struct LinearFitResult {
  double Slope = 0.0;
  double Intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double R2 = 0.0;
};

/// Fits a line through (X[i], Y[i]) by least squares. Requires at least two
/// distinct x values.
LinearFitResult linearFit(const std::vector<double> &X,
                          const std::vector<double> &Y);

/// Mean of a vector (asserts non-empty).
double mean(const std::vector<double> &V);

/// Sample standard deviation of a vector (zero for fewer than two entries).
double stddev(const std::vector<double> &V);

} // namespace marqsim

#endif // MARQSIM_STATS_STATS_H
