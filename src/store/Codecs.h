//===- store/Codecs.h - Per-type artifact serialization ---------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disk codecs of the ArtifactStore, one per artifact type. Every body
/// serializes doubles as raw IEEE-754 bit patterns in fixed-width hex (via
/// support/Serial.h), so round trips are bit-exact, never merely close —
/// the precondition for a reloaded artifact reproducing a batch bit for
/// bit. Decoders validate dimensions against what the caller knows from
/// the Hamiltonian (a mismatch means a stale file under a colliding key)
/// and reject malformed hex and trailing garbage; the whole-file checksum
/// is the store's job, not the codecs'.
///
/// Formats (one line each, then payload):
///   marqsim-matrix-v2 N        N x N transition matrix (component solves;
///                              unchanged from the PR 2 store, so existing
///                              cache directories stay valid)
///   marqsim-alias-v1 N         the combined (channel-mixed) transition
///                              matrix an alias bundle is rebuilt from
///   marqsim-fid-v1 Q C D       Q qubits, C columns of dimension D = 2^Q;
///                              per column: basis index + D complex
///                              amplitudes
///   marqsim-super-v1 M         an M x M complex superoperator (M = 4^n),
///                              row-major, two hex doubles per entry
///
/// The alias bundle deliberately persists the combined matrix rather than
/// the alias tables themselves: table construction is a cheap
/// deterministic function of the matrix (identical bits in, identical
/// tables out), while the matrix is the part whose provenance chain (MCFP
/// solves + convex combination) is worth skipping.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_STORE_CODECS_H
#define MARQSIM_STORE_CODECS_H

#include "markov/TransitionMatrix.h"
#include "sim/Fidelity.h"

#include <optional>
#include <string>

namespace marqsim {
namespace store {

/// Magic of the component-matrix format (kept from the PR 2 store).
inline constexpr const char *MatrixMagic = "marqsim-matrix-v2";

/// Magic of the alias-bundle (combined matrix) format.
inline constexpr const char *AliasMagic = "marqsim-alias-v1";

/// Magic of the fidelity-columns format.
inline constexpr const char *FidelityMagic = "marqsim-fid-v1";

/// Serializes \p P under \p Magic.
std::string encodeMatrixBody(const char *Magic, const TransitionMatrix &P);

/// Parses a matrix body. Returns std::nullopt on a magic/dimension
/// mismatch (\p ExpectedN is known from the Hamiltonian, so a disagreement
/// means a stale or corrupt file), malformed hex, or trailing garbage.
std::optional<TransitionMatrix>
decodeMatrixBody(const char *Magic, size_t ExpectedN,
                 const std::string &Body);

/// In-memory footprint of \p P, for LRU accounting.
size_t matrixBytes(const TransitionMatrix &P);

/// Serializes the evaluator's chosen columns and exact targets.
std::string encodeFidelityBody(const FidelityEvaluator &E);

/// Parses a fidelity body into a rehydrated evaluator. \p ExpectedQubits
/// and \p ExpectedColumns come from the Hamiltonian and the task spec.
std::optional<FidelityEvaluator>
decodeFidelityBody(unsigned ExpectedQubits, size_t ExpectedColumns,
                   const std::string &Body);

/// In-memory footprint of \p E's targets, for LRU accounting.
size_t fidelityBytes(const FidelityEvaluator &E);

/// Magic of the superoperator format.
inline constexpr const char *SuperMagic = "marqsim-super-v1";

/// Serializes a composed superoperator (square complex matrix).
std::string encodeSuperBody(const Matrix &S);

/// Parses a superoperator body. \p ExpectedDim is 4^n, known from the
/// Hamiltonian; a disagreement means a stale or corrupt file.
std::optional<Matrix> decodeSuperBody(size_t ExpectedDim,
                                      const std::string &Body);

/// In-memory footprint of \p S, for LRU accounting.
size_t superBytes(const Matrix &S);

} // namespace store
} // namespace marqsim

#endif // MARQSIM_STORE_CODECS_H
