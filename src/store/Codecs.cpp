//===- store/Codecs.cpp - Per-type artifact serialization ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Codecs.h"

#include "support/Serial.h"

#include <sstream>

using namespace marqsim;
using namespace marqsim::serial;

//===----------------------------------------------------------------------===//
// Transition matrices (components and combined alias-bundle matrices)
//===----------------------------------------------------------------------===//

std::string store::encodeMatrixBody(const char *Magic,
                                    const TransitionMatrix &P) {
  std::ostringstream Body;
  Body << Magic << " " << P.size() << "\n";
  for (size_t I = 0; I < P.size(); ++I) {
    for (size_t J = 0; J < P.size(); ++J)
      Body << hex16(doubleBits(P.at(I, J)))
           << (J + 1 == P.size() ? "" : " ");
    Body << "\n";
  }
  return Body.str();
}

std::optional<TransitionMatrix>
store::decodeMatrixBody(const char *Magic, size_t ExpectedN,
                        const std::string &Body) {
  std::istringstream Rows(Body);
  std::string Word;
  size_t N = 0;
  if (!(Rows >> Word >> N) || Word != Magic || N != ExpectedN || N == 0)
    return std::nullopt;
  TransitionMatrix P(N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      uint64_t Bits = 0;
      if (!(Rows >> Word) || Word.size() != 16 || !parseHex64(Word, Bits))
        return std::nullopt;
      P.at(I, J) = bitsToDouble(Bits);
    }
  if (Rows >> Word)
    return std::nullopt; // trailing garbage
  return P;
}

size_t store::matrixBytes(const TransitionMatrix &P) {
  return P.size() * P.size() * sizeof(double);
}

//===----------------------------------------------------------------------===//
// Fidelity target columns
//===----------------------------------------------------------------------===//

std::string store::encodeFidelityBody(const FidelityEvaluator &E) {
  const size_t Dim = size_t(1) << E.numQubits();
  std::ostringstream Body;
  Body << FidelityMagic << " " << E.numQubits() << " " << E.numColumns()
       << " " << Dim << "\n";
  for (size_t C = 0; C < E.numColumns(); ++C) {
    Body << hex16(E.columns()[C]) << "\n";
    const CVector &Target = E.targets()[C];
    for (size_t I = 0; I < Target.size(); ++I)
      Body << hex16(doubleBits(Target[I].real())) << " "
           << hex16(doubleBits(Target[I].imag()))
           << (I + 1 == Target.size() ? "" : " ");
    Body << "\n";
  }
  return Body.str();
}

std::optional<FidelityEvaluator>
store::decodeFidelityBody(unsigned ExpectedQubits, size_t ExpectedColumns,
                          const std::string &Body) {
  std::istringstream In(Body);
  std::string Word;
  unsigned Qubits = 0;
  size_t NumColumns = 0, Dim = 0;
  if (!(In >> Word >> Qubits >> NumColumns >> Dim) ||
      Word != FidelityMagic || Qubits != ExpectedQubits ||
      NumColumns != ExpectedColumns || NumColumns == 0 ||
      Qubits >= 8 * sizeof(size_t) || Dim != (size_t(1) << Qubits) ||
      NumColumns > Dim)
    return std::nullopt;
  std::vector<uint64_t> Columns(NumColumns);
  std::vector<CVector> Targets(NumColumns);
  auto ReadHex = [&](uint64_t &Out) {
    return static_cast<bool>(In >> Word) && Word.size() == 16 &&
           parseHex64(Word, Out);
  };
  for (size_t C = 0; C < NumColumns; ++C) {
    if (!ReadHex(Columns[C]) || Columns[C] >= Dim)
      return std::nullopt;
    Targets[C].resize(Dim);
    for (size_t I = 0; I < Dim; ++I) {
      uint64_t Re = 0, Im = 0;
      if (!ReadHex(Re) || !ReadHex(Im))
        return std::nullopt;
      Targets[C][I] = Complex(bitsToDouble(Re), bitsToDouble(Im));
    }
  }
  if (In >> Word)
    return std::nullopt; // trailing garbage
  return FidelityEvaluator(Qubits, std::move(Columns), std::move(Targets));
}

size_t store::fidelityBytes(const FidelityEvaluator &E) {
  const size_t Dim = size_t(1) << E.numQubits();
  return E.numColumns() * (Dim * sizeof(Complex) + sizeof(uint64_t));
}

//===----------------------------------------------------------------------===//
// Noisy-schedule superoperators
//===----------------------------------------------------------------------===//

std::string store::encodeSuperBody(const Matrix &S) {
  std::ostringstream Body;
  Body << SuperMagic << " " << S.rows() << "\n";
  for (size_t I = 0; I < S.rows(); ++I) {
    for (size_t J = 0; J < S.cols(); ++J)
      Body << hex16(doubleBits(S.at(I, J).real())) << " "
           << hex16(doubleBits(S.at(I, J).imag()))
           << (J + 1 == S.cols() ? "" : " ");
    Body << "\n";
  }
  return Body.str();
}

std::optional<Matrix> store::decodeSuperBody(size_t ExpectedDim,
                                             const std::string &Body) {
  std::istringstream In(Body);
  std::string Word;
  size_t Dim = 0;
  if (!(In >> Word >> Dim) || Word != SuperMagic || Dim != ExpectedDim ||
      Dim == 0)
    return std::nullopt;
  Matrix S(Dim, Dim);
  for (size_t I = 0; I < Dim; ++I)
    for (size_t J = 0; J < Dim; ++J) {
      uint64_t Re = 0, Im = 0;
      if (!(In >> Word) || Word.size() != 16 || !parseHex64(Word, Re))
        return std::nullopt;
      if (!(In >> Word) || Word.size() != 16 || !parseHex64(Word, Im))
        return std::nullopt;
      S.at(I, J) = Complex(bitsToDouble(Re), bitsToDouble(Im));
    }
  if (In >> Word)
    return std::nullopt; // trailing garbage
  return S;
}

size_t store::superBytes(const Matrix &S) {
  return S.rows() * S.cols() * sizeof(Complex);
}
