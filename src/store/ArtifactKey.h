//===- store/ArtifactKey.h - Typed content-hash artifact keys ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The key vocabulary of the ArtifactStore. Every cacheable artifact in the
/// pipeline's deterministic prefix is a pure content function of the
/// Hamiltonian fingerprint plus the knobs that shape it, so its identity is
/// a typed key: an ArtifactType naming what the payload is, and an Id
/// string encoding the content hash (fingerprint and knobs as fixed-width
/// hex via support/Serial.h). Ids are file-name safe; the disk tier maps
/// each type to its own extension so a cache directory is inspectable at a
/// glance.
///
///   type              | keyed on
///   ------------------+----------------------------------------------------
///   ComponentMatrix   | gc: (fingerprint, MCFPOptions)
///                     | rp: (fingerprint, MCFPOptions, rounds, perturb seed)
///   AliasBundle       | (fingerprint, mix weights, MCFPOptions, rounds,
///                     |  perturb seed, sampler kind)
///   FidelityColumns   | (fingerprint, time, columns, column seed)
///   Superoperator     | (fingerprint, time, Trotter reps/order/term order,
///                     |  cross-cancellation, noise kind/prob/2q factor)
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_STORE_ARTIFACTKEY_H
#define MARQSIM_STORE_ARTIFACTKEY_H

#include "core/TransitionBuilders.h"
#include "support/Serial.h"

#include <optional>
#include <string>

namespace marqsim {

/// What kind of payload a key names. The type decides the disk codec and
/// file extension; the Id carries the content hash.
enum class ArtifactType {
  /// One MCFP component transition matrix (Pgc or Prp).
  ComponentMatrix,
  /// A combined transition matrix ready to back an HTT graph + sampling
  /// tables (the channel-mix combination of the components).
  AliasBundle,
  /// Precomputed exact fidelity target columns e^{iHt}|x>.
  FidelityColumns,
  /// A composed noisy-schedule superoperator (density-oracle tier).
  Superoperator,
};

/// File extension of \p Type in the disk tier.
inline const char *artifactExtension(ArtifactType Type) {
  switch (Type) {
  case ArtifactType::ComponentMatrix:
    return ".mat";
  case ArtifactType::AliasBundle:
    return ".alias";
  case ArtifactType::FidelityColumns:
    return ".fid";
  case ArtifactType::Superoperator:
    return ".super";
  }
  return ".artifact";
}

/// Wire spelling of \p Type — the "type" member of the daemon protocol's
/// artifact-get/artifact-put frames.
inline const char *artifactTypeName(ArtifactType Type) {
  switch (Type) {
  case ArtifactType::ComponentMatrix:
    return "component";
  case ArtifactType::AliasBundle:
    return "alias";
  case ArtifactType::FidelityColumns:
    return "fidelity";
  case ArtifactType::Superoperator:
    return "super";
  }
  return "component";
}

/// Inverse of artifactTypeName. std::nullopt for unknown spellings.
inline std::optional<ArtifactType>
artifactTypeFromName(const std::string &Name) {
  if (Name == "component")
    return ArtifactType::ComponentMatrix;
  if (Name == "alias")
    return ArtifactType::AliasBundle;
  if (Name == "fidelity")
    return ArtifactType::FidelityColumns;
  if (Name == "super")
    return ArtifactType::Superoperator;
  return std::nullopt;
}

/// A typed content-hash key. Ids are unique across types (each key builder
/// prefixes its own tag), so Id alone addresses the in-memory tier; the
/// type adds the disk-tier file extension.
struct ArtifactKey {
  ArtifactType Type = ArtifactType::ComponentMatrix;
  std::string Id;

  /// File name of this artifact in a cache directory.
  std::string fileName() const { return Id + artifactExtension(Type); }
};

namespace store {

inline void appendHex(std::string &S, uint64_t V) {
  S += '-';
  S += serial::hex16(V);
}

/// Key of the gate-cancellation MCFP solve.
inline ArtifactKey componentKeyGC(uint64_t Fingerprint,
                                  const MCFPOptions &Flow) {
  std::string Id = "gc";
  appendHex(Id, Fingerprint);
  appendHex(Id, static_cast<uint64_t>(Flow.ProbScale));
  appendHex(Id, static_cast<uint64_t>(Flow.CostScale));
  return {ArtifactType::ComponentMatrix, std::move(Id)};
}

/// Key of the random-perturbation MCFP solve.
inline ArtifactKey componentKeyRP(uint64_t Fingerprint,
                                  const MCFPOptions &Flow, unsigned Rounds,
                                  uint64_t PerturbSeed) {
  std::string Id = "rp";
  appendHex(Id, Fingerprint);
  appendHex(Id, static_cast<uint64_t>(Flow.ProbScale));
  appendHex(Id, static_cast<uint64_t>(Flow.CostScale));
  appendHex(Id, Rounds);
  appendHex(Id, PerturbSeed);
  return {ArtifactType::ComponentMatrix, std::move(Id)};
}

/// Key of a graph + alias-table bundle. Fields that cannot affect the
/// artifact (flow options under a pure-qDrift mix, perturbation knobs when
/// WRp == 0) are normalized to zero so irrelevant flag changes never force
/// a rebuild. Weights are passed as raw doubles so the store layer stays
/// below the service layer (ChannelMix lives in service/TaskSpec.h).
inline ArtifactKey aliasBundleKey(uint64_t Fingerprint, double WQd,
                                  double WGc, double WRp,
                                  const MCFPOptions &Flow, unsigned Rounds,
                                  uint64_t PerturbSeed, bool UseCDF) {
  bool NeedsFlow = WGc > 0.0 || WRp > 0.0;
  bool NeedsPerturb = WRp > 0.0;
  std::string Id = "graph";
  appendHex(Id, Fingerprint);
  appendHex(Id, serial::doubleBits(WQd));
  appendHex(Id, serial::doubleBits(WGc));
  appendHex(Id, serial::doubleBits(WRp));
  appendHex(Id, NeedsFlow ? static_cast<uint64_t>(Flow.ProbScale) : 0);
  appendHex(Id, NeedsFlow ? static_cast<uint64_t>(Flow.CostScale) : 0);
  appendHex(Id, NeedsPerturb ? Rounds : 0);
  appendHex(Id, NeedsPerturb ? PerturbSeed : 0);
  Id += UseCDF ? "-cdf" : "-alias";
  return {ArtifactType::AliasBundle, std::move(Id)};
}

/// Key of the exact fidelity target columns.
inline ArtifactKey fidelityColumnsKey(uint64_t Fingerprint, double T,
                                      size_t Columns, uint64_t ColumnSeed) {
  std::string Id = "eval";
  appendHex(Id, Fingerprint);
  appendHex(Id, serial::doubleBits(T));
  appendHex(Id, Columns);
  appendHex(Id, ColumnSeed);
  return {ArtifactType::FidelityColumns, std::move(Id)};
}

/// Key of a composed noisy-schedule superoperator. Only deterministic
/// (Trotter) schedules are cacheable — the schedule is then a pure
/// function of (fingerprint, time, reps, order, term order,
/// cross-cancellation), and the noise knobs complete the channel's
/// identity.
inline ArtifactKey superoperatorKey(uint64_t Fingerprint, double T,
                                    unsigned TrotterReps,
                                    unsigned TrotterOrder, uint64_t TermOrder,
                                    bool CrossCancellation,
                                    uint64_t NoiseKind, uint64_t ProbBits,
                                    uint64_t FactorBits) {
  std::string Id = "super";
  appendHex(Id, Fingerprint);
  appendHex(Id, serial::doubleBits(T));
  appendHex(Id, TrotterReps);
  appendHex(Id, TrotterOrder);
  appendHex(Id, TermOrder);
  appendHex(Id, CrossCancellation ? 1 : 0);
  appendHex(Id, NoiseKind);
  appendHex(Id, ProbBits);
  appendHex(Id, FactorBits);
  return {ArtifactType::Superoperator, std::move(Id)};
}

} // namespace store
} // namespace marqsim

#endif // MARQSIM_STORE_ARTIFACTKEY_H
