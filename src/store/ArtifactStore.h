//===- store/ArtifactStore.h - Tiered artifact cache ------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One coherent caching layer for every deterministic artifact in the
/// pipeline, replacing the three ad-hoc mechanisms that grew before it
/// (per-type call_once maps in SimulationService, a matrix-only disk
/// store, and the shard coordinator's bespoke pre-warm).
///
/// The store is tiered:
///
///   memory tier   size-accounted LRU over shared_ptr values. Every
///                 completed entry is charged its codec-reported byte
///                 size; when a limit is set, least-recently-used entries
///                 are evicted until the total fits (the entry being
///                 inserted is never evicted, so a single oversized
///                 artifact overshoots until the next insertion).
///                 Eviction never invalidates live references — holders
///                 keep their shared_ptr; only the cache forgets.
///
///   disk tier     optional directory of per-artifact files (one file per
///                 ArtifactKey, extension per type). Bodies are produced
///                 by per-type codecs that serialize doubles as raw
///                 IEEE-754 hex (exact round trips); the store frames
///                 every file with the whole-file FNV-1a checksum from
///                 support/Serial.h and writes via write-then-rename, so
///                 torn writes, truncation, and bit flips are detected
///                 and fall back to recompute (healing the file).
///
/// Lookups are single-flight: concurrent get() calls for one key block on
/// the in-flight computation instead of duplicating it, per entry (other
/// keys proceed independently). A miss resolves disk-then-compute; a
/// compute writes back to disk. Nested get() calls from inside a compute
/// callback are allowed (no lock is held while computing) — the service
/// resolves MCFP components from inside the alias-bundle computation this
/// way.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_STORE_ARTIFACTSTORE_H
#define MARQSIM_STORE_ARTIFACTSTORE_H

#include "store/ArtifactKey.h"

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace marqsim {

/// The serialization contract of one artifact type. All three callbacks
/// are optional: a null Encode/Decode disables the disk tier for the call
/// (memory-only artifacts), a null Size charges zero bytes (the entry then
/// never contributes to the LRU budget).
template <typename T> struct ArtifactCodec {
  /// Serializes the artifact to a text body (the store adds the checksum
  /// trailer). Returning an empty body skips persistence for this value.
  std::function<std::string(const T &)> Encode;

  /// Parses a body back. Returning std::nullopt (stale dimensions, bad
  /// hex, trailing garbage) falls back to compute, which overwrites the
  /// rejected file.
  std::function<std::optional<T>(const std::string &)> Decode;

  /// In-memory footprint in bytes, used for LRU accounting.
  std::function<size_t(const T &)> Size;
};

/// Tiered (memory LRU over disk) content-addressed artifact cache.
/// Thread-safe; see the file comment for the tier semantics.
class ArtifactStore {
public:
  struct Options {
    /// Disk-tier directory; empty keeps the store memory-only. Created on
    /// demand; IO failures degrade to compute (best-effort tier).
    std::string CacheDir;

    /// Memory-tier budget in bytes; 0 means unbounded (no eviction).
    size_t MemoryLimitBytes = 0;
  };

  /// How a get() was satisfied.
  enum class Outcome {
    MemoryHit, ///< served from the memory tier (or an in-flight compute)
    DiskHit,   ///< decoded from the disk tier
    Computed,  ///< computed (and written back to the disk tier)
  };

  /// What a put() did with an injected body.
  enum class PutOutcome {
    Inserted,       ///< decoded and inserted into the memory tier
    AlreadyPresent, ///< the key was already resolved (body discarded)
    Rejected,       ///< the body failed to decode (nothing changed)
  };

  /// Cumulative accounting across every get().
  struct Stats {
    size_t MemoryHits = 0;
    size_t DiskHits = 0;
    size_t Computes = 0;
    /// Entries evicted from the memory tier (their bytes in EvictedBytes).
    size_t Evictions = 0;
    size_t EvictedBytes = 0;
    /// Bodies written to the disk tier.
    size_t DiskWrites = 0;
    /// Current and high-water memory-tier charge.
    size_t BytesInUse = 0;
    size_t PeakBytes = 0;
  };

  explicit ArtifactStore(Options Opts);

  ArtifactStore(const ArtifactStore &) = delete;
  ArtifactStore &operator=(const ArtifactStore &) = delete;

  /// Up-front validation of a prospective cache directory: an empty path
  /// is valid (disk tier off); otherwise the directory is created on
  /// demand and probed for writability. Returns false with a message
  /// naming the path and the failure (exists-but-is-a-file, unwritable),
  /// so entry points can reject a bad --cache-dir / $MARQSIM_CACHE_DIR
  /// instead of silently running uncached.
  static bool validateCacheDir(const std::string &Dir,
                               std::string *Error = nullptr);

  /// Resolves \p Key through the tiers: memory, then disk (via
  /// \p Codec.Decode), then \p Compute (persisting via \p Codec.Encode).
  /// Single-flight per key; \p Out (if given) reports which tier served
  /// the winner — callers blocked on an in-flight computation observe
  /// MemoryHit, mirroring "reused a concurrent caller's work".
  template <typename T>
  std::shared_ptr<const T> get(const ArtifactKey &Key,
                               const ArtifactCodec<T> &Codec,
                               const std::function<T()> &Compute,
                               Outcome *Out = nullptr) {
    std::shared_ptr<Entry> E = acquire(Key.Id);
    Outcome How = Outcome::MemoryHit;
    std::call_once(E->Once, [&] {
      std::shared_ptr<const T> Value;
      if (Codec.Decode) {
        if (std::optional<std::string> Body = loadBody(Key)) {
          if (std::optional<T> Decoded = Codec.Decode(*Body)) {
            How = Outcome::DiskHit;
            Value = std::make_shared<const T>(std::move(*Decoded));
          }
        }
      }
      if (!Value) {
        How = Outcome::Computed;
        Value = std::make_shared<const T>(Compute());
        // Serializing is pure waste without a disk tier to write to.
        if (Codec.Encode && !Opts.CacheDir.empty()) {
          std::string Body = Codec.Encode(*Value);
          if (!Body.empty())
            storeBody(Key, Body);
        }
      }
      size_t Bytes = Codec.Size ? Codec.Size(*Value) : 0;
      E->Value = std::move(Value);
      commit(Key.Id, Bytes);
    });
    noteOutcome(How);
    if (Out)
      *Out = How;
    return std::static_pointer_cast<const T>(E->Value);
  }

  /// Injects an already-encoded \p Body for \p Key — the receiving half of
  /// the cross-host artifact fetch. The body is decoded through \p Codec
  /// exactly as a disk-tier hit would be (same validation, same rejection
  /// of stale dimensions or bad hex), inserted into the memory tier, and —
  /// when a disk tier is configured — persisted so later processes warm
  /// from it too. A key that is already resolved (or has an in-flight
  /// computation, which put() waits out) reports AlreadyPresent and keeps
  /// the existing value: content-addressed keys make the two bodies
  /// interchangeable, and the resident value may already have references.
  template <typename T>
  PutOutcome put(const ArtifactKey &Key, const ArtifactCodec<T> &Codec,
                 const std::string &Body) {
    if (!Codec.Decode)
      return PutOutcome::Rejected;
    // Decode before touching the entry: a corrupt body must not poison
    // the once_flag (the key stays computable by a later get()).
    std::optional<T> Decoded = Codec.Decode(Body);
    if (!Decoded)
      return PutOutcome::Rejected;
    std::shared_ptr<Entry> E = acquire(Key.Id);
    bool Inserted = false;
    std::call_once(E->Once, [&] {
      auto Value = std::make_shared<const T>(std::move(*Decoded));
      if (!Opts.CacheDir.empty())
        storeBody(Key, Body);
      size_t Bytes = Codec.Size ? Codec.Size(*Value) : 0;
      E->Value = std::move(Value);
      commit(Key.Id, Bytes);
      Inserted = true;
    });
    return Inserted ? PutOutcome::Inserted : PutOutcome::AlreadyPresent;
  }

  /// Whether \p Id is resolved in the memory tier (charged, not merely
  /// in flight). No LRU or stats effect — this is the probe half of the
  /// artifact-fetch protocol, not a lookup.
  bool hasValue(const std::string &Id) const;

  /// The resolved value of \p Id, or nullptr. Type-erased: callers cast
  /// per the key's type prefix exactly as get() does. No LRU or stats
  /// effect.
  std::shared_ptr<const void> peekValue(const std::string &Id) const;

  /// Reads and checksum-verifies the disk body of \p Key without decoding
  /// it — the serving half of the artifact fetch (a body read here is
  /// exactly what put() accepts on the far side). nullopt when the disk
  /// tier is off or the file is missing/corrupt.
  std::optional<std::string> peekDiskBody(const ArtifactKey &Key) const {
    return loadBody(Key);
  }

  Stats stats() const;

  /// Current memory-tier charge (also in stats()).
  size_t bytesInUse() const;

private:
  /// One cached artifact. The type behind Value is fixed by the key's
  /// builder (Ids are type-prefixed), so the erased pointer is safe to
  /// cast back in get().
  struct Entry {
    std::once_flag Once;
    std::shared_ptr<const void> Value;
    size_t Bytes = 0;
    /// True once commit() charged the entry (eviction skips in-flight
    /// entries, which are not charged yet).
    bool Charged = false;
    /// Position in the LRU list (front = most recently used).
    std::list<std::string>::iterator LruPos;
  };

  /// Finds or creates the entry of \p Id and marks it most recently used.
  std::shared_ptr<Entry> acquire(const std::string &Id);

  /// Charges \p Bytes to \p Id and evicts least-recently-used charged
  /// entries (never \p Id itself) until the budget fits.
  void commit(const std::string &Id, size_t Bytes);

  void noteOutcome(Outcome How);

  /// Reads and checksum-verifies the disk body of \p Key. nullopt when
  /// the disk tier is off, the file is missing, or the checksum fails.
  std::optional<std::string> loadBody(const ArtifactKey &Key) const;

  /// Frames \p Body with the checksum trailer and writes it under \p Key
  /// via write-then-rename. Best-effort: failures just mean a future
  /// process recomputes.
  void storeBody(const ArtifactKey &Key, const std::string &Body);

  Options Opts;

  mutable std::mutex Mutex;
  std::map<std::string, std::shared_ptr<Entry>> Entries;
  std::list<std::string> Lru;
  Stats Counters;
};

} // namespace marqsim

#endif // MARQSIM_STORE_ARTIFACTSTORE_H
