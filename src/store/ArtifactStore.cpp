//===- store/ArtifactStore.cpp - Tiered artifact cache ------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/ArtifactStore.h"

#include <cassert>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace marqsim;

ArtifactStore::ArtifactStore(Options O) : Opts(std::move(O)) {}

bool ArtifactStore::validateCacheDir(const std::string &Dir,
                                     std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = "cache directory '" + Dir + "': " + Message;
    return false;
  };
  if (Dir.empty())
    return true;
  std::error_code EC;
  std::filesystem::path Path(Dir);
  if (std::filesystem::exists(Path, EC)) {
    if (!std::filesystem::is_directory(Path, EC))
      return Fail("exists but is not a directory");
  } else {
    std::filesystem::create_directories(Path, EC);
    if (EC)
      return Fail("cannot create it (" + EC.message() + ")");
  }
  // Probe writability the portable way: actually create a file. access()
  // lies under fakeroot/ACLs, and std::filesystem has no permission probe.
  std::filesystem::path Probe =
      Path / (".marqsim-probe-" + std::to_string(::getpid()));
  {
    std::ofstream Out(Probe);
    if (!Out)
      return Fail("not writable");
  }
  std::filesystem::remove(Probe, EC);
  return true;
}

std::shared_ptr<ArtifactStore::Entry>
ArtifactStore::acquire(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::shared_ptr<Entry> &Ref = Entries[Id];
  if (!Ref) {
    Ref = std::make_shared<Entry>();
    Lru.push_front(Id);
    Ref->LruPos = Lru.begin();
  } else {
    Lru.splice(Lru.begin(), Lru, Ref->LruPos);
  }
  return Ref;
}

void ArtifactStore::commit(const std::string &Id, size_t Bytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Id);
  // Invariant: an in-flight entry is uncharged, eviction only removes
  // charged entries, and Charged is set only here — so the entry must
  // still be present at its own commit.
  assert(It != Entries.end() && "in-flight entry evicted before commit");
  if (It == Entries.end())
    return;
  Entry &E = *It->second;
  E.Bytes = Bytes;
  E.Charged = true;
  Counters.BytesInUse += Bytes;
  if (Counters.BytesInUse > Counters.PeakBytes)
    Counters.PeakBytes = Counters.BytesInUse;
  if (Opts.MemoryLimitBytes == 0)
    return;
  // Walk the LRU tail, evicting charged entries until the budget fits.
  // The entry just committed is exempt: evicting what the caller is about
  // to use would thrash, and a single over-budget artifact is better kept
  // (overshooting) than recomputed on every request.
  auto Pos = Lru.end();
  while (Counters.BytesInUse > Opts.MemoryLimitBytes && Pos != Lru.begin()) {
    --Pos;
    if (*Pos == Id)
      continue;
    auto Victim = Entries.find(*Pos);
    if (Victim == Entries.end() || !Victim->second->Charged)
      continue; // in-flight: not charged yet, nothing to reclaim
    Counters.BytesInUse -= Victim->second->Bytes;
    Counters.Evictions++;
    Counters.EvictedBytes += Victim->second->Bytes;
    Entries.erase(Victim);
    Pos = Lru.erase(Pos);
  }
}

void ArtifactStore::noteOutcome(Outcome How) {
  std::lock_guard<std::mutex> Lock(Mutex);
  switch (How) {
  case Outcome::MemoryHit:
    Counters.MemoryHits++;
    break;
  case Outcome::DiskHit:
    Counters.DiskHits++;
    break;
  case Outcome::Computed:
    Counters.Computes++;
    break;
  }
}

std::optional<std::string>
ArtifactStore::loadBody(const ArtifactKey &Key) const {
  if (Opts.CacheDir.empty())
    return std::nullopt;
  std::ifstream In(std::filesystem::path(Opts.CacheDir) / Key.fileName());
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  // Verify the whole-file checksum before handing any byte to a codec:
  // hex payloads would happily parse with a flipped bit, silently changing
  // the artifact and everything downstream of it.
  std::string Body;
  if (!serial::splitChecksummed(Buf.str(), Body))
    return std::nullopt;
  return Body;
}

void ArtifactStore::storeBody(const ArtifactKey &Key,
                              const std::string &Body) {
  if (Opts.CacheDir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Opts.CacheDir, EC);
  if (EC)
    return;
  // Write-then-rename keeps concurrent processes from reading torn files.
  std::filesystem::path Final =
      std::filesystem::path(Opts.CacheDir) / Key.fileName();
  std::filesystem::path Tmp = Final;
  Tmp += "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream Out(Tmp);
    if (!Out)
      return;
    Out << serial::withChecksum(Body);
    if (!Out)
      return;
  }
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return;
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.DiskWrites++;
}

bool ArtifactStore::hasValue(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Id);
  return It != Entries.end() && It->second->Charged;
}

std::shared_ptr<const void>
ArtifactStore::peekValue(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Id);
  if (It == Entries.end() || !It->second->Charged)
    return nullptr;
  return It->second->Value;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

size_t ArtifactStore::bytesInUse() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.BytesInUse;
}
