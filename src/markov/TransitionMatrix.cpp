//===- markov/TransitionMatrix.cpp - Markov transition matrices -------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "markov/TransitionMatrix.h"

#include "linalg/Eigen.h"

#include <cmath>

using namespace marqsim;

TransitionMatrix
TransitionMatrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  TransitionMatrix M(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I) {
    assert(Rows[I].size() == Rows.size() && "transition matrix not square");
    for (size_t J = 0; J < Rows.size(); ++J)
      M.at(I, J) = Rows[I][J];
  }
  return M;
}

TransitionMatrix
TransitionMatrix::fromStationary(const std::vector<double> &Pi) {
  TransitionMatrix M(Pi.size());
  for (size_t I = 0; I < Pi.size(); ++I)
    for (size_t J = 0; J < Pi.size(); ++J)
      M.at(I, J) = Pi[J];
  return M;
}

bool TransitionMatrix::isRowStochastic(double Tol) const {
  for (size_t I = 0; I < N; ++I) {
    double Sum = 0.0;
    for (size_t J = 0; J < N; ++J) {
      double V = at(I, J);
      if (V < -Tol || V > 1.0 + Tol)
        return false;
      Sum += V;
    }
    if (std::fabs(Sum - 1.0) > Tol)
      return false;
  }
  return true;
}

bool TransitionMatrix::preservesDistribution(const std::vector<double> &Pi,
                                             double Tol) const {
  assert(Pi.size() == N && "distribution size mismatch");
  std::vector<double> Next = leftApply(Pi);
  for (size_t J = 0; J < N; ++J)
    if (std::fabs(Next[J] - Pi[J]) > Tol)
      return false;
  return true;
}

std::vector<double>
TransitionMatrix::leftApply(const std::vector<double> &Pi) const {
  assert(Pi.size() == N && "distribution size mismatch");
  std::vector<double> Next(N, 0.0);
  for (size_t I = 0; I < N; ++I) {
    double PiI = Pi[I];
    if (PiI == 0.0)
      continue;
    const double *Row = row(I);
    for (size_t J = 0; J < N; ++J)
      Next[J] += PiI * Row[J];
  }
  return Next;
}

bool TransitionMatrix::isStronglyConnected(double EdgeTol) const {
  if (N == 0)
    return false;
  if (N == 1)
    return true;
  // A directed graph is strongly connected iff every vertex is reachable
  // from vertex 0 and vertex 0 is reachable from every vertex; check with a
  // forward and a backward traversal.
  auto Reaches = [&](bool Forward) {
    std::vector<char> Seen(N, 0);
    std::vector<size_t> Stack = {0};
    Seen[0] = 1;
    size_t Count = 1;
    while (!Stack.empty()) {
      size_t V = Stack.back();
      Stack.pop_back();
      for (size_t W = 0; W < N; ++W) {
        if (Seen[W])
          continue;
        double Edge = Forward ? at(V, W) : at(W, V);
        if (Edge > EdgeTol) {
          Seen[W] = 1;
          ++Count;
          Stack.push_back(W);
        }
      }
    }
    return Count == N;
  };
  return Reaches(true) && Reaches(false);
}

std::vector<double> TransitionMatrix::stationaryDistribution() const {
  assert(N > 0 && "stationary distribution of an empty chain");
  // Solve pi (P - I) = 0 together with sum(pi) = 1: build the N x N system
  // A x = b with A = (P - I)^T, then replace the last equation by the
  // normalization row. Plain Gaussian elimination with partial pivoting.
  std::vector<double> A(N * N);
  std::vector<double> B(N, 0.0);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      A[I * N + J] = at(J, I) - (I == J ? 1.0 : 0.0);
  for (size_t J = 0; J < N; ++J)
    A[(N - 1) * N + J] = 1.0;
  B[N - 1] = 1.0;

  std::vector<size_t> Perm(N);
  for (size_t I = 0; I < N; ++I)
    Perm[I] = I;
  for (size_t K = 0; K < N; ++K) {
    size_t Pivot = K;
    for (size_t I = K + 1; I < N; ++I)
      if (std::fabs(A[Perm[I] * N + K]) > std::fabs(A[Perm[Pivot] * N + K]))
        Pivot = I;
    std::swap(Perm[K], Perm[Pivot]);
    double Diag = A[Perm[K] * N + K];
    assert(std::fabs(Diag) > 1e-14 &&
           "singular system: chain has multiple recurrence classes");
    for (size_t I = K + 1; I < N; ++I) {
      double F = A[Perm[I] * N + K] / Diag;
      if (F == 0.0)
        continue;
      for (size_t J = K; J < N; ++J)
        A[Perm[I] * N + J] -= F * A[Perm[K] * N + J];
      B[Perm[I]] -= F * B[Perm[K]];
    }
  }
  std::vector<double> Pi(N);
  for (size_t K = N; K-- > 0;) {
    double Acc = B[Perm[K]];
    for (size_t J = K + 1; J < N; ++J)
      Acc -= A[Perm[K] * N + J] * Pi[J];
    Pi[K] = Acc / A[Perm[K] * N + K];
  }
  return Pi;
}

TransitionMatrix
TransitionMatrix::combine(const std::vector<const TransitionMatrix *> &Ms,
                          const std::vector<double> &Weights) {
  assert(!Ms.empty() && Ms.size() == Weights.size() &&
         "combine needs matching matrices and weights");
  double Sum = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "combination weights must be non-negative");
    Sum += W;
  }
  assert(std::fabs(Sum - 1.0) <= 1e-9 && "combination weights must sum to 1");
  const size_t N = Ms.front()->size();
  TransitionMatrix R(N);
  for (size_t K = 0; K < Ms.size(); ++K) {
    assert(Ms[K]->size() == N && "combining differently sized matrices");
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        R.at(I, J) += Weights[K] * Ms[K]->at(I, J);
  }
  return R;
}

std::vector<std::complex<double>> TransitionMatrix::spectrum() const {
  return realEigenvalues(P, N);
}

double TransitionMatrix::secondEigenvalueMagnitude() const {
  if (N < 2)
    return 0.0;
  std::vector<std::complex<double>> Eigs = spectrum();
  return std::abs(Eigs[1]);
}
