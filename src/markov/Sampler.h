//===- markov/Sampler.h - Discrete and Markov-chain sampling ----*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling machinery for Algorithm 1 of the paper ("Compilation As
/// Sampling from Markov Process").
///
/// Two discrete samplers are provided: Walker's alias method (O(1) per
/// draw after O(n) setup) and a binary-search CDF sampler (O(log n) per
/// draw, the complexity the paper's analysis assumes via
/// Bringmann-Panagiotou). MarkovChainSampler pre-builds one alias table per
/// row of the transition matrix and walks the chain.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_MARKOV_SAMPLER_H
#define MARQSIM_MARKOV_SAMPLER_H

#include "markov/TransitionMatrix.h"
#include "support/RNG.h"

namespace marqsim {

/// Walker/Vose alias sampler over a fixed discrete distribution.
class AliasSampler {
public:
  AliasSampler() = default;

  /// Builds the alias table from non-negative weights (need not be
  /// normalized; at least one must be positive).
  explicit AliasSampler(const std::vector<double> &Weights);

  /// Draws one index.
  size_t sample(RNG &Rng) const;

  size_t size() const { return Prob.size(); }

private:
  std::vector<double> Prob;
  std::vector<uint32_t> Alias;
};

/// Binary-search inverse-CDF sampler over a fixed discrete distribution.
class CDFSampler {
public:
  CDFSampler() = default;

  /// Builds cumulative sums from non-negative weights.
  explicit CDFSampler(const std::vector<double> &Weights);

  /// Draws one index in O(log n).
  size_t sample(RNG &Rng) const;

  /// Maps a quantile \p U (nominally in [0, 1)) to its index. Clamps draws
  /// that land at or past the final cumulative sum — floating-point
  /// accumulation can make Cumulative.back() smaller than the true total
  /// weight — to the last index with positive weight, so the result is
  /// always in range and in the support of the distribution.
  size_t indexForQuantile(double U) const;

  size_t size() const { return Cumulative.size(); }

private:
  std::vector<double> Cumulative;
};

/// Walks a homogeneous Markov chain: the first draw comes from the initial
/// distribution, subsequent draws from the row of the previous state
/// (Algorithm 1, lines 5-8).
class MarkovChainSampler {
public:
  /// Prepares alias tables for \p Initial and for every row of \p Matrix.
  MarkovChainSampler(const TransitionMatrix &Matrix,
                     const std::vector<double> &Initial);

  /// Draws the next state and advances the chain.
  size_t next(RNG &Rng);

  /// Stateless draw from the initial distribution. Thread-safe: batch
  /// compilation shares one sampler read-only across workers, each walking
  /// its own chain state.
  size_t initial(RNG &Rng) const { return InitialDist.sample(Rng); }

  /// Stateless draw from the row of \p State. Thread-safe (see initial()).
  size_t stepFrom(size_t State, RNG &Rng) const {
    assert(State < Rows.size() && "chain state out of range");
    return Rows[State].sample(Rng);
  }

  /// Resets to the pre-first-draw state (next draw uses the initial
  /// distribution again).
  void reset() { Current = kNoState; }

  /// Number of states in the chain.
  size_t numStates() const { return Rows.size(); }

private:
  static constexpr size_t kNoState = static_cast<size_t>(-1);
  AliasSampler InitialDist;
  std::vector<AliasSampler> Rows;
  size_t Current = kNoState;
};

} // namespace marqsim

#endif // MARQSIM_MARKOV_SAMPLER_H
