//===- markov/Sampler.cpp - Discrete and Markov-chain sampling --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "markov/Sampler.h"

#include <algorithm>
#include <cassert>

using namespace marqsim;

AliasSampler::AliasSampler(const std::vector<double> &Weights) {
  const size_t N = Weights.size();
  assert(N > 0 && "alias table over empty distribution");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight");
    Total += W;
  }
  assert(Total > 0.0 && "all-zero distribution");

  Prob.assign(N, 0.0);
  Alias.assign(N, 0);
  // Vose's stable construction: scale weights to mean 1, then pair each
  // under-full cell with an over-full donor.
  std::vector<double> Scaled(N);
  for (size_t I = 0; I < N; ++I)
    Scaled[I] = Weights[I] * static_cast<double>(N) / Total;

  std::vector<uint32_t> Small, Large;
  Small.reserve(N);
  Large.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    if (Scaled[I] < 1.0)
      Small.push_back(static_cast<uint32_t>(I));
    else
      Large.push_back(static_cast<uint32_t>(I));
  }
  while (!Small.empty() && !Large.empty()) {
    uint32_t S = Small.back();
    Small.pop_back();
    uint32_t L = Large.back();
    Large.pop_back();
    Prob[S] = Scaled[S];
    Alias[S] = L;
    Scaled[L] = (Scaled[L] + Scaled[S]) - 1.0;
    if (Scaled[L] < 1.0)
      Small.push_back(L);
    else
      Large.push_back(L);
  }
  // Leftovers are numerically 1.
  for (uint32_t I : Large)
    Prob[I] = 1.0;
  for (uint32_t I : Small)
    Prob[I] = 1.0;
}

size_t AliasSampler::sample(RNG &Rng) const {
  assert(!Prob.empty() && "sampling from an unbuilt alias table");
  size_t Cell = Rng.uniformInt(Prob.size());
  return Rng.uniform() < Prob[Cell] ? Cell : Alias[Cell];
}

CDFSampler::CDFSampler(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "CDF table over empty distribution");
  Cumulative.resize(Weights.size());
  double Acc = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    assert(Weights[I] >= 0.0 && "negative weight");
    Acc += Weights[I];
    Cumulative[I] = Acc;
  }
  assert(Acc > 0.0 && "all-zero distribution");
}

size_t CDFSampler::sample(RNG &Rng) const {
  assert(!Cumulative.empty() && "sampling from an unbuilt CDF table");
  return indexForQuantile(Rng.uniform());
}

size_t CDFSampler::indexForQuantile(double U) const {
  assert(!Cumulative.empty() && "querying an unbuilt CDF table");
  double X = U * Cumulative.back();
  auto It = std::upper_bound(Cumulative.begin(), Cumulative.end(), X);
  size_t I = static_cast<size_t>(It - Cumulative.begin());
  if (I >= Cumulative.size()) {
    // U * back rounded to (or past) the final cumulative sum. Clamp to the
    // last index with positive weight: trailing zero-weight entries share
    // the final cumulative value and must never be returned.
    I = Cumulative.size() - 1;
    while (I > 0 && Cumulative[I] <= Cumulative[I - 1])
      --I;
  }
  return I;
}

MarkovChainSampler::MarkovChainSampler(const TransitionMatrix &Matrix,
                                       const std::vector<double> &Initial)
    : InitialDist(Initial) {
  assert(Initial.size() == Matrix.size() &&
         "initial distribution size mismatch");
  const size_t N = Matrix.size();
  Rows.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    std::vector<double> Row(Matrix.row(I), Matrix.row(I) + N);
    Rows.emplace_back(Row);
  }
}

size_t MarkovChainSampler::next(RNG &Rng) {
  Current = Current == kNoState ? initial(Rng) : stepFrom(Current, Rng);
  return Current;
}
