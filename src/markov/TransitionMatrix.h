//===- markov/TransitionMatrix.h - Markov transition matrices ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Row-stochastic transition matrices of finite homogeneous Markov chains.
///
/// This is the tunable object at the heart of MarQSim: Theorem 4.1 accepts
/// any matrix that (1) induces a strongly connected state transition graph
/// and (2) preserves the stationary distribution pi_i = |h_i| / lambda.
/// The class provides exactly the checks, algebra (convex combination,
/// Theorem 5.2), and analysis (stationary solve, spectrum, Sections
/// 5.4-5.5) the compiler and the experiments need.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_MARKOV_TRANSITIONMATRIX_H
#define MARQSIM_MARKOV_TRANSITIONMATRIX_H

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace marqsim {

/// A dense row-stochastic matrix P where P(i,j) = Pr[next = j | current = i].
class TransitionMatrix {
public:
  TransitionMatrix() : N(0) {}

  /// Creates an N x N zero matrix (fill rows before use).
  explicit TransitionMatrix(size_t N) : N(N), P(N * N, 0.0) {}

  /// Builds from explicit row data (asserts squareness).
  static TransitionMatrix fromRows(
      const std::vector<std::vector<double>> &Rows);

  /// The rank-1 matrix whose every row is \p Pi — i.i.d. sampling from Pi.
  /// With Pi the stationary distribution this is exactly the qDrift matrix
  /// Pqd of Corollary 4.1.
  static TransitionMatrix fromStationary(const std::vector<double> &Pi);

  size_t size() const { return N; }

  double &at(size_t I, size_t J) {
    assert(I < N && J < N && "transition matrix index out of range");
    return P[I * N + J];
  }
  double at(size_t I, size_t J) const {
    assert(I < N && J < N && "transition matrix index out of range");
    return P[I * N + J];
  }

  /// Pointer to row \p I (N contiguous doubles).
  const double *row(size_t I) const {
    assert(I < N && "row index out of range");
    return &P[I * N];
  }

  /// Raw row-major data.
  const std::vector<double> &data() const { return P; }

  /// True if every entry is in [-Tol, 1+Tol] and every row sums to 1
  /// within Tol.
  bool isRowStochastic(double Tol = 1e-9) const;

  /// True if pi P == pi within Tol (Theorem 4.1 condition 2).
  bool preservesDistribution(const std::vector<double> &Pi,
                             double Tol = 1e-9) const;

  /// True if the state transition graph (edges where p_ij > EdgeTol) is
  /// strongly connected (Theorem 4.1 condition 1).
  bool isStronglyConnected(double EdgeTol = 0.0) const;

  /// Left action pi^T P.
  std::vector<double> leftApply(const std::vector<double> &Pi) const;

  /// Solves for the stationary distribution (unique when the chain is
  /// strongly connected) by direct linear solve of pi (P - I) = 0 with the
  /// normalization sum(pi) = 1.
  std::vector<double> stationaryDistribution() const;

  /// Convex combination sum_k Theta_k * P_k (Theorem 5.2). Weights must be
  /// non-negative and sum to 1 within 1e-9.
  static TransitionMatrix
  combine(const std::vector<const TransitionMatrix *> &Matrices,
          const std::vector<double> &Weights);

  /// All eigenvalues, sorted by descending magnitude. For a valid matrix
  /// the leading eigenvalue is 1.
  std::vector<std::complex<double>> spectrum() const;

  /// |lambda_2|: the magnitude of the second-largest eigenvalue, governing
  /// convergence speed (Section 5.4). Returns 0 for rank-1 matrices.
  double secondEigenvalueMagnitude() const;

private:
  size_t N;
  std::vector<double> P;
};

} // namespace marqsim

#endif // MARQSIM_MARKOV_TRANSITIONMATRIX_H
