//===- core/Emitter.h - Schedule-to-circuit lowering ------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a schedule of Pauli exponentials exp(i tau_k P_k) to gates with
/// cross-snippet gate cancellation (the "[22]-style" cancellation the paper
/// applies to every configuration, including the qDrift baseline).
///
/// Realized cancellations between consecutive snippets:
///   * basis-change pairs on every qubit where the two strings apply the
///     same non-identity operator (leave layer of k meets enter layer of
///     k+1 as exact inverses), and
///   * ladder CNOT pairs CNOT(q -> r) when both snippets share the root r,
///     the operator at r matches, and the operator at q matches.
/// Roots are chosen greedily: keep the previous root whenever the operator
/// on it matches; otherwise move into the matched set; otherwise default to
/// the highest support qubit. With root continuity the realized CNOTs
/// between two rotations equal cnotCountBetween(P_k, P_{k+1}) exactly.
///
/// Correctness does not depend on the cancellation decisions: skipped gate
/// pairs are operator-level inverses separated only by commuting gates (the
/// tests check emitted unitaries against analytic products).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_EMITTER_H
#define MARQSIM_CORE_EMITTER_H

#include "circuit/PauliEvolution.h"

namespace marqsim {

/// Options for schedule lowering.
struct EmitOptions {
  /// Apply cross-snippet cancellation while emitting. When false the
  /// snippets are synthesized independently (useful to measure how many
  /// gates cancellation saves).
  bool CrossCancellation = true;
};

/// Statistics accumulated during emission.
struct EmitStats {
  /// CNOT gates that were *not* emitted thanks to pairwise cancellation
  /// (counts both members of each pair).
  size_t CancelledCNOTs = 0;
  /// Single-qubit basis-change gates elided (both members counted).
  size_t CancelledSingles = 0;
};

/// Lowers \p Schedule over \p NumQubits qubits into a circuit.
/// Consecutive equal strings should already be merged (the compilers do
/// this); they are handled correctly regardless.
Circuit emitSchedule(const std::vector<ScheduledRotation> &Schedule,
                     unsigned NumQubits, const EmitOptions &Opts = {},
                     EmitStats *Stats = nullptr);

} // namespace marqsim

#endif // MARQSIM_CORE_EMITTER_H
