//===- core/HardwareCost.cpp - Topology-aware cost objectives ----------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/HardwareCost.h"

#include <queue>

using namespace marqsim;

DeviceTopology::DeviceTopology(
    unsigned NumQubits, std::vector<std::pair<unsigned, unsigned>> Edges)
    : N(NumQubits), Dist(size_t(NumQubits) * NumQubits, ~0u) {
  assert(N > 0 && "empty topology");
  std::vector<std::vector<unsigned>> Adj(N);
  for (auto [A, B] : Edges) {
    assert(A < N && B < N && A != B && "bad coupling edge");
    Adj[A].push_back(B);
    Adj[B].push_back(A);
  }
  // BFS from every qubit.
  for (unsigned S = 0; S < N; ++S) {
    unsigned *Row = &Dist[size_t(S) * N];
    Row[S] = 0;
    std::queue<unsigned> Queue;
    Queue.push(S);
    while (!Queue.empty()) {
      unsigned V = Queue.front();
      Queue.pop();
      for (unsigned W : Adj[V]) {
        if (Row[W] != ~0u)
          continue;
        Row[W] = Row[V] + 1;
        Queue.push(W);
      }
    }
    for (unsigned W = 0; W < N; ++W)
      assert(Row[W] != ~0u && "coupling graph must be connected");
  }
}

DeviceTopology DeviceTopology::fullyConnected(unsigned NumQubits) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned A = 0; A < NumQubits; ++A)
    for (unsigned B = A + 1; B < NumQubits; ++B)
      Edges.push_back({A, B});
  return DeviceTopology(NumQubits, std::move(Edges));
}

DeviceTopology DeviceTopology::line(unsigned NumQubits) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    Edges.push_back({Q, Q + 1});
  return DeviceTopology(NumQubits, std::move(Edges));
}

DeviceTopology DeviceTopology::ring(unsigned NumQubits) {
  assert(NumQubits >= 3 && "ring needs at least three qubits");
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    Edges.push_back({Q, (Q + 1) % NumQubits});
  return DeviceTopology(NumQubits, std::move(Edges));
}

DeviceTopology DeviceTopology::grid(unsigned Rows, unsigned Cols) {
  assert(Rows > 0 && Cols > 0 && "empty grid");
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C) {
      unsigned Q = R * Cols + C;
      if (C + 1 < Cols)
        Edges.push_back({Q, Q + 1});
      if (R + 1 < Rows)
        Edges.push_back({Q, Q + Cols});
    }
  return DeviceTopology(Rows * Cols, std::move(Edges));
}

/// Shared with the plain oracle: the matched mask and root placement of
/// cnotCountBetween, but each surviving CNOT priced by routing distance.
unsigned marqsim::hardwareCNOTCostBetween(const PauliString &Prev,
                                          const PauliString &Next,
                                          const DeviceTopology &Topo) {
  if (Prev == Next)
    return 0;
  uint64_t SameX = ~(Prev.xMask() ^ Next.xMask());
  uint64_t SameZ = ~(Prev.zMask() ^ Next.zMask());
  uint64_t Matched =
      SameX & SameZ & Prev.supportMask() & Next.supportMask();

  auto HighestBit = [](uint64_t Mask) -> unsigned {
    return 63 - __builtin_clzll(Mask);
  };
  auto SideCost = [&](const PauliString &P, unsigned Root,
                      uint64_t Cancelled) {
    unsigned Cost = 0;
    uint64_t Support = P.supportMask();
    for (unsigned Q = 0; Q < Topo.numQubits(); ++Q) {
      if (Q == Root || !((Support >> Q) & 1))
        continue;
      if ((Cancelled >> Q) & 1)
        continue;
      Cost += Topo.routedCNOTCost(Q, Root);
    }
    return Cost;
  };

  if (Matched == 0) {
    // No shared root possible; each snippet uses its own default root.
    unsigned RootPrev =
        Prev.isIdentity() ? 0 : HighestBit(Prev.supportMask());
    unsigned RootNext =
        Next.isIdentity() ? 0 : HighestBit(Next.supportMask());
    return SideCost(Prev, RootPrev, 0) + SideCost(Next, RootNext, 0);
  }
  unsigned Root = HighestBit(Matched);
  uint64_t CancelMask = Matched & ~(1ULL << Root);
  return SideCost(Prev, Root, CancelMask) + SideCost(Next, Root, CancelMask);
}

TransitionMatrix marqsim::buildHardwareAwareGC(const Hamiltonian &H,
                                               const DeviceTopology &Topo,
                                               const MCFPOptions &Opts) {
  assert(Topo.numQubits() >= H.numQubits() &&
         "topology smaller than the register");
  const size_t N = H.numTerms();
  std::vector<std::vector<int64_t>> Cost(N, std::vector<int64_t>(N, 0));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      Cost[I][J] = Opts.CostScale *
                   static_cast<int64_t>(hardwareCNOTCostBetween(
                       H.term(I).String, H.term(J).String, Topo));
  return buildFromCostTable(H, Cost, Opts);
}

double marqsim::expectedHardwareCNOTs(const Hamiltonian &H,
                                      const TransitionMatrix &P,
                                      const std::vector<double> &Pi,
                                      const DeviceTopology &Topo) {
  assert(P.size() == H.numTerms() && Pi.size() == H.numTerms() &&
         "size mismatch");
  double Acc = 0.0;
  for (size_t I = 0; I < P.size(); ++I) {
    if (Pi[I] == 0.0)
      continue;
    for (size_t J = 0; J < P.size(); ++J) {
      double PIJ = P.at(I, J);
      if (PIJ == 0.0)
        continue;
      Acc += Pi[I] * PIJ *
             hardwareCNOTCostBetween(H.term(I).String, H.term(J).String,
                                     Topo);
    }
  }
  return Acc;
}
