//===- core/Baselines.cpp - Deterministic & randomized Trotter ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The compile* entry points below are thin wrappers over the strategy
// classes in core/CompilerEngine.h; every family funnels through the same
// materializePlan backend, so gate-count comparisons isolate the ordering
// policy. The wrappers preserve the historical draw order of the randomized
// families bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "core/Baselines.h"

#include "core/CompilerEngine.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace marqsim;

std::vector<size_t> marqsim::orderTerms(const Hamiltonian &H,
                                        TermOrderKind Kind) {
  std::vector<size_t> Order(H.numTerms());
  std::iota(Order.begin(), Order.end(), 0);
  switch (Kind) {
  case TermOrderKind::Given:
    return Order;
  case TermOrderKind::Lexicographic:
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return H.term(A).String < H.term(B).String;
    });
    return Order;
  case TermOrderKind::MagnitudeDescending:
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return std::fabs(H.term(A).Coeff) > std::fabs(H.term(B).Coeff);
    });
    return Order;
  case TermOrderKind::GreedyMatched: {
    // Start at the heaviest term, then repeatedly append the unused term
    // with the most matched operators against the current one (ties broken
    // lexicographically for determinism).
    const size_t N = H.numTerms();
    std::vector<char> Used(N, 0);
    size_t Current = 0;
    for (size_t I = 1; I < N; ++I)
      if (std::fabs(H.term(I).Coeff) > std::fabs(H.term(Current).Coeff))
        Current = I;
    std::vector<size_t> Chain;
    Chain.reserve(N);
    Chain.push_back(Current);
    Used[Current] = 1;
    for (size_t Step = 1; Step < N; ++Step) {
      size_t Best = N;
      unsigned BestMatch = 0;
      for (size_t Cand = 0; Cand < N; ++Cand) {
        if (Used[Cand])
          continue;
        unsigned Match =
            H.term(Current).String.matchedOps(H.term(Cand).String);
        if (Best == N || Match > BestMatch ||
            (Match == BestMatch &&
             H.term(Cand).String < H.term(Best).String)) {
          Best = Cand;
          BestMatch = Match;
        }
      }
      Chain.push_back(Best);
      Used[Best] = 1;
      Current = Best;
    }
    return Chain;
  }
  }
  assert(false && "invalid TermOrderKind");
  return Order;
}

/// Materializes one shot of \p Strategy with the caller's RNG.
static CompilationResult runStrategy(const ScheduleStrategy &Strategy,
                                     RNG &Rng,
                                     const CompilationOptions &Opts) {
  ShotContext Ctx{0, Rng};
  return materializePlan(Strategy.hamiltonian(), Strategy.produce(Ctx),
                         Opts);
}

CompilationResult marqsim::compileTrotter1(const Hamiltonian &H, double T,
                                           unsigned Reps, TermOrderKind Kind,
                                           const CompilationOptions &Opts) {
  TrotterStrategy Strategy(H, T, Reps, Kind, /*Order=*/1);
  RNG Unused(0);
  return runStrategy(Strategy, Unused, Opts);
}

CompilationResult marqsim::compileTrotter2(const Hamiltonian &H, double T,
                                           unsigned Reps, TermOrderKind Kind,
                                           const CompilationOptions &Opts) {
  TrotterStrategy Strategy(H, T, Reps, Kind, /*Order=*/2);
  RNG Unused(0);
  return runStrategy(Strategy, Unused, Opts);
}

CompilationResult marqsim::compileSuzuki4(const Hamiltonian &H, double T,
                                          unsigned Reps, TermOrderKind Kind,
                                          const CompilationOptions &Opts) {
  TrotterStrategy Strategy(H, T, Reps, Kind, /*Order=*/4);
  RNG Unused(0);
  return runStrategy(Strategy, Unused, Opts);
}

CompilationResult marqsim::compileSparSto(const Hamiltonian &H, double T,
                                          unsigned Reps, double KeepScale,
                                          RNG &Rng,
                                          const CompilationOptions &Opts) {
  SparStoStrategy Strategy(H, T, Reps, KeepScale);
  return runStrategy(Strategy, Rng, Opts);
}

CompilationResult
marqsim::compileRandomOrderTrotter(const Hamiltonian &H, double T,
                                   unsigned Reps, RNG &Rng,
                                   const CompilationOptions &Opts) {
  RandomOrderTrotterStrategy Strategy(H, T, Reps);
  return runStrategy(Strategy, Rng, Opts);
}
