//===- core/Baselines.cpp - Deterministic & randomized Trotter ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace marqsim;

std::vector<size_t> marqsim::orderTerms(const Hamiltonian &H,
                                        TermOrderKind Kind) {
  std::vector<size_t> Order(H.numTerms());
  std::iota(Order.begin(), Order.end(), 0);
  switch (Kind) {
  case TermOrderKind::Given:
    return Order;
  case TermOrderKind::Lexicographic:
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return H.term(A).String < H.term(B).String;
    });
    return Order;
  case TermOrderKind::MagnitudeDescending:
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return std::fabs(H.term(A).Coeff) > std::fabs(H.term(B).Coeff);
    });
    return Order;
  case TermOrderKind::GreedyMatched: {
    // Start at the heaviest term, then repeatedly append the unused term
    // with the most matched operators against the current one (ties broken
    // lexicographically for determinism).
    const size_t N = H.numTerms();
    std::vector<char> Used(N, 0);
    size_t Current = 0;
    for (size_t I = 1; I < N; ++I)
      if (std::fabs(H.term(I).Coeff) > std::fabs(H.term(Current).Coeff))
        Current = I;
    std::vector<size_t> Chain;
    Chain.reserve(N);
    Chain.push_back(Current);
    Used[Current] = 1;
    for (size_t Step = 1; Step < N; ++Step) {
      size_t Best = N;
      unsigned BestMatch = 0;
      for (size_t Cand = 0; Cand < N; ++Cand) {
        if (Used[Cand])
          continue;
        unsigned Match =
            H.term(Current).String.matchedOps(H.term(Cand).String);
        if (Best == N || Match > BestMatch ||
            (Match == BestMatch &&
             H.term(Cand).String < H.term(Best).String)) {
          Best = Cand;
          BestMatch = Match;
        }
      }
      Chain.push_back(Best);
      Used[Best] = 1;
      Current = Best;
    }
    return Chain;
  }
  }
  assert(false && "invalid TermOrderKind");
  return Order;
}

/// Lowers a per-repetition index pattern with per-visit tau values.
static CompilationResult
materializeTrotter(const Hamiltonian &H, const std::vector<size_t> &Pattern,
                   const std::vector<double> &Taus, unsigned Reps,
                   const CompilationOptions &Opts) {
  assert(Pattern.size() == Taus.size() && "pattern/tau size mismatch");
  CompilationResult R;
  R.NumSamples = Pattern.size() * Reps;
  R.Lambda = H.lambda();
  R.Tau = 0.0; // not a single-step compiler

  R.Sequence.reserve(R.NumSamples);
  R.Schedule.reserve(R.NumSamples);
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    for (size_t K = 0; K < Pattern.size(); ++K) {
      size_t Index = Pattern[K];
      R.Sequence.push_back(Index);
      const PauliString &S = H.term(Index).String;
      if (!R.Schedule.empty() && R.Schedule.back().String == S)
        R.Schedule.back().Tau += Taus[K];
      else
        R.Schedule.emplace_back(S, Taus[K]);
    }
  }
  R.Circ = emitSchedule(R.Schedule, H.numQubits(), Opts.Emit, &R.Stats);
  R.Counts = R.Circ.counts();
  return R;
}

CompilationResult marqsim::compileTrotter1(const Hamiltonian &H, double T,
                                           unsigned Reps, TermOrderKind Kind,
                                           const CompilationOptions &Opts) {
  assert(Reps > 0 && "Trotter needs at least one repetition");
  std::vector<size_t> Order = orderTerms(H, Kind);
  std::vector<double> Taus(Order.size());
  const double Dt = T / static_cast<double>(Reps);
  for (size_t K = 0; K < Order.size(); ++K)
    Taus[K] = H.term(Order[K]).Coeff * Dt;
  return materializeTrotter(H, Order, Taus, Reps, Opts);
}

CompilationResult marqsim::compileTrotter2(const Hamiltonian &H, double T,
                                           unsigned Reps, TermOrderKind Kind,
                                           const CompilationOptions &Opts) {
  assert(Reps > 0 && "Trotter needs at least one repetition");
  std::vector<size_t> Order = orderTerms(H, Kind);
  const double Dt = T / static_cast<double>(Reps);
  std::vector<size_t> Pattern;
  std::vector<double> Taus;
  Pattern.reserve(2 * Order.size());
  Taus.reserve(2 * Order.size());
  for (size_t Index : Order) {
    Pattern.push_back(Index);
    Taus.push_back(H.term(Index).Coeff * Dt * 0.5);
  }
  for (size_t K = Order.size(); K-- > 0;) {
    Pattern.push_back(Order[K]);
    Taus.push_back(H.term(Order[K]).Coeff * Dt * 0.5);
  }
  return materializeTrotter(H, Pattern, Taus, Reps, Opts);
}

CompilationResult marqsim::compileSuzuki4(const Hamiltonian &H, double T,
                                          unsigned Reps, TermOrderKind Kind,
                                          const CompilationOptions &Opts) {
  assert(Reps > 0 && "Trotter needs at least one repetition");
  std::vector<size_t> Order = orderTerms(H, Kind);
  const double Dt = T / static_cast<double>(Reps);
  const double P4 = 1.0 / (4.0 - std::pow(4.0, 1.0 / 3.0));

  std::vector<size_t> Pattern;
  std::vector<double> Taus;
  // One symmetric second-order block S2(scale * dt).
  auto AppendS2 = [&](double Scale) {
    for (size_t Index : Order) {
      Pattern.push_back(Index);
      Taus.push_back(H.term(Index).Coeff * Dt * Scale * 0.5);
    }
    for (size_t K = Order.size(); K-- > 0;) {
      Pattern.push_back(Order[K]);
      Taus.push_back(H.term(Order[K]).Coeff * Dt * Scale * 0.5);
    }
  };
  AppendS2(P4);
  AppendS2(P4);
  AppendS2(1.0 - 4.0 * P4);
  AppendS2(P4);
  AppendS2(P4);
  return materializeTrotter(H, Pattern, Taus, Reps, Opts);
}

CompilationResult marqsim::compileSparSto(const Hamiltonian &H, double T,
                                          unsigned Reps, double KeepScale,
                                          RNG &Rng,
                                          const CompilationOptions &Opts) {
  assert(Reps > 0 && "SparSto needs at least one repetition");
  assert(KeepScale > 0.0 && "keep scale must be positive");
  const size_t NumTerms = H.numTerms();
  const double Dt = T / static_cast<double>(Reps);
  double MaxMag = 0.0;
  for (const PauliTerm &Term : H.terms())
    MaxMag = std::max(MaxMag, std::fabs(Term.Coeff));
  assert(MaxMag > 0.0 && "empty Hamiltonian");

  CompilationResult R;
  R.Lambda = H.lambda();
  R.Tau = 0.0;

  std::vector<size_t> Kept;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    // Independent keep decisions with unbiased 1/q_j rescaling.
    Kept.clear();
    std::vector<double> Taus;
    for (size_t J = 0; J < NumTerms; ++J) {
      double Q = std::min(1.0, KeepScale * std::fabs(H.term(J).Coeff) /
                                   MaxMag);
      if (!Rng.bernoulli(Q))
        continue;
      Kept.push_back(J);
      Taus.push_back(H.term(J).Coeff * Dt / Q);
    }
    // Random order within the sparsified step.
    for (size_t I = Kept.size(); I-- > 1;) {
      size_t J = Rng.uniformInt(I + 1);
      std::swap(Kept[I], Kept[J]);
      std::swap(Taus[I], Taus[J]);
    }
    for (size_t K = 0; K < Kept.size(); ++K) {
      R.Sequence.push_back(Kept[K]);
      const PauliString &S = H.term(Kept[K]).String;
      if (!R.Schedule.empty() && R.Schedule.back().String == S)
        R.Schedule.back().Tau += Taus[K];
      else
        R.Schedule.emplace_back(S, Taus[K]);
    }
  }
  R.NumSamples = R.Sequence.size();
  R.Circ = emitSchedule(R.Schedule, H.numQubits(), Opts.Emit, &R.Stats);
  R.Counts = R.Circ.counts();
  return R;
}

CompilationResult
marqsim::compileRandomOrderTrotter(const Hamiltonian &H, double T,
                                   unsigned Reps, RNG &Rng,
                                   const CompilationOptions &Opts) {
  assert(Reps > 0 && "Trotter needs at least one repetition");
  const size_t N = H.numTerms();
  const double Dt = T / static_cast<double>(Reps);

  CompilationResult R;
  R.NumSamples = N * Reps;
  R.Lambda = H.lambda();
  R.Tau = 0.0;
  R.Sequence.reserve(R.NumSamples);
  R.Schedule.reserve(R.NumSamples);

  std::vector<size_t> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0);
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    // Fisher-Yates with the project RNG for reproducibility.
    for (size_t I = N; I-- > 1;) {
      size_t J = Rng.uniformInt(I + 1);
      std::swap(Perm[I], Perm[J]);
    }
    for (size_t Index : Perm) {
      R.Sequence.push_back(Index);
      const PauliTerm &Term = H.term(Index);
      double Tau = Term.Coeff * Dt;
      if (!R.Schedule.empty() && R.Schedule.back().String == Term.String)
        R.Schedule.back().Tau += Tau;
      else
        R.Schedule.emplace_back(Term.String, Tau);
    }
  }
  R.Circ = emitSchedule(R.Schedule, H.numQubits(), Opts.Emit, &R.Stats);
  R.Counts = R.Circ.counts();
  return R;
}
