//===- core/HardwareCost.h - Topology-aware cost objectives -----*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware-aware extension of the MCFP objective (paper Section 7:
/// "... or even further optimized by taking the underlying hardware
/// architecture into consideration").
///
/// Real devices restrict CNOTs to coupled qubit pairs; a logical CNOT
/// between qubits at routing distance d costs 3(d-1) + 1 physical CNOTs
/// under the standard SWAP-insertion model. DeviceTopology provides
/// all-pairs distances for common layouts; hardwareCNOTCostBetween prices
/// a snippet transition by the routed cost of its surviving ladder CNOTs,
/// and buildHardwareAwareGC drops that price into the Algorithm 2 flow
/// network — producing a transition matrix biased toward successors whose
/// cancellations save the most *physical* gates.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_HARDWARECOST_H
#define MARQSIM_CORE_HARDWARECOST_H

#include "core/TransitionBuilders.h"

namespace marqsim {

/// An undirected device coupling graph with precomputed all-pairs
/// shortest-path distances.
class DeviceTopology {
public:
  /// Fully connected device (distance 1 everywhere): the paper's implicit
  /// model, under which hardware-aware costs reduce to plain CNOT counts.
  static DeviceTopology fullyConnected(unsigned NumQubits);

  /// 1-D nearest-neighbour line q0 - q1 - ... - q(n-1).
  static DeviceTopology line(unsigned NumQubits);

  /// Ring: the line plus the closing edge.
  static DeviceTopology ring(unsigned NumQubits);

  /// Rows x Cols nearest-neighbour grid (qubit index = row * Cols + col).
  static DeviceTopology grid(unsigned Rows, unsigned Cols);

  unsigned numQubits() const { return N; }

  /// Shortest-path distance in coupling-graph hops (0 for Q == R).
  unsigned distance(unsigned Q, unsigned R) const {
    assert(Q < N && R < N && "qubit out of range");
    return Dist[Q * N + R];
  }

  /// Physical CNOTs for one logical CNOT between \p Q and \p R:
  /// 3 * (distance - 1) + 1 (SWAP chains in, one CNOT, SWAPs are free to
  /// leave since the next ladder CNOT re-uses the position in the best
  /// case; the constant model keeps the objective linear).
  unsigned routedCNOTCost(unsigned Q, unsigned R) const {
    unsigned D = distance(Q, R);
    assert(D > 0 && "CNOT between a qubit and itself");
    return 3 * (D - 1) + 1;
  }

private:
  DeviceTopology(unsigned N, std::vector<std::pair<unsigned, unsigned>> Edges);

  unsigned N = 0;
  std::vector<unsigned> Dist;
};

/// Routed cost of the ladder CNOTs surviving between the Rz of \p Prev and
/// the Rz of \p Next (same cancellation model as cnotCountBetween; each
/// surviving CNOT(q -> root) priced by routedCNOTCost). On a fully
/// connected topology this equals cnotCountBetween exactly.
unsigned hardwareCNOTCostBetween(const PauliString &Prev,
                                 const PauliString &Next,
                                 const DeviceTopology &Topo);

/// Algorithm 2 with the hardware-aware objective. Preserves the stationary
/// distribution like every flow-built matrix; combine with Pqd for strong
/// connectivity as usual.
TransitionMatrix buildHardwareAwareGC(const Hamiltonian &H,
                                      const DeviceTopology &Topo,
                                      const MCFPOptions &Opts = {});

/// Expected routed CNOT cost per transition under matrix \p P at
/// distribution \p Pi (the hardware analogue of expectedTransitionCNOTs).
double expectedHardwareCNOTs(const Hamiltonian &H, const TransitionMatrix &P,
                             const std::vector<double> &Pi,
                             const DeviceTopology &Topo);

} // namespace marqsim

#endif // MARQSIM_CORE_HARDWARECOST_H
