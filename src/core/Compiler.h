//===- core/Compiler.h - Compilation as Markov-chain sampling ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: "Compilation As Sampling from Markov Process".
///
/// Given the HTT graph (Hamiltonian + transition matrix), the compiler draws
/// N = ceil(2 lambda^2 t^2 / epsilon) states; the first draw follows the
/// stationary distribution pi, later draws follow the row of the previous
/// state. Each drawn term H_i contributes exp(i sgn(h_i) lambda t / N * H_i)
/// to the schedule; runs of equal terms merge into one rotation. The
/// schedule lowers to gates through the cancellation-aware emitter.
///
/// Theorem 4.1 guarantees the result approximates e^{iHt} with the qDrift
/// error bound whenever the matrix is strongly connected and stationary-
/// preserving — including every matrix produced by core/TransitionBuilders
/// combined with a positive Pqd share.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_COMPILER_H
#define MARQSIM_CORE_COMPILER_H

#include "core/Emitter.h"
#include "core/HTTGraph.h"
#include "markov/Sampler.h"
#include "support/RNG.h"

namespace marqsim {

/// Knobs of the sampling compiler.
struct CompilationOptions {
  EmitOptions Emit;

  /// Use the O(log n) CDF sampler instead of the O(1) alias sampler
  /// (ablation; identical distribution, different draws).
  bool UseCDFSampler = false;
};

/// Everything a compilation run produces.
struct CompilationResult {
  /// Raw sampled term indices (length = sample count N).
  std::vector<size_t> Sequence;

  /// Merged schedule: runs of equal consecutive terms folded together.
  std::vector<ScheduledRotation> Schedule;

  /// The lowered circuit.
  Circuit Circ;

  /// Gate statistics of Circ.
  GateCounts Counts;

  /// Cancellation accounting from the emitter.
  EmitStats Stats;

  /// N, lambda, and tau = lambda * t / N of this run.
  size_t NumSamples = 0;
  double Lambda = 0.0;
  double Tau = 0.0;
};

/// The term-visit plan of one compilation shot, before lowering: what a
/// ScheduleStrategy produces and the deterministic backend consumes.
struct ShotPlan {
  /// Term indices in visit order.
  std::vector<size_t> Sequence;

  /// Per-visit rotation angles. Empty selects the sampling-compiler rule
  /// tau_k = sgn(h_{i_k}) * TauStep; otherwise Taus.size() must equal
  /// Sequence.size() (the Trotter-family rule).
  std::vector<double> Taus;

  /// Uniform step magnitude for the empty-Taus rule; recorded in
  /// CompilationResult::Tau either way.
  double TauStep = 0.0;
};

/// N = ceil(2 lambda^2 t^2 / epsilon), at least 1 (Algorithm 1, line 2).
size_t qdriftSampleCount(double Lambda, double T, double Epsilon);

/// Runs Algorithm 1 on \p Graph for evolution time \p T and target
/// precision \p Epsilon.
CompilationResult compileBySampling(const HTTGraph &Graph, double T,
                                    double Epsilon, RNG &Rng,
                                    const CompilationOptions &Opts = {});

/// Deterministic back end shared by all compilers and strategies: merges
/// runs of equal consecutive terms into single rotations and lowers the
/// schedule through the cancellation-aware emitter.
CompilationResult materializePlan(const Hamiltonian &H, ShotPlan Plan,
                                  const CompilationOptions &Opts = {});

/// Convenience form of materializePlan for the sampling compilers
/// (tau_i = sgn(h_i) * TauStep per occurrence).
CompilationResult materializeSequence(const Hamiltonian &H,
                                      std::vector<size_t> Sequence,
                                      double TauStep,
                                      const CompilationOptions &Opts = {});

/// Convenience: vanilla qDrift (Corollary 4.1) + cancellation-aware
/// emission. This is the paper's Baseline configuration.
CompilationResult compileQDrift(const Hamiltonian &H, double T,
                                double Epsilon, RNG &Rng,
                                const CompilationOptions &Opts = {});

} // namespace marqsim

#endif // MARQSIM_CORE_COMPILER_H
