//===- core/HTTGraph.cpp - Hamiltonian Term Transition Graph IR --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/HTTGraph.h"

#include "support/Table.h"

using namespace marqsim;

HTTGraph::HTTGraph(Hamiltonian H, TransitionMatrix Matrix)
    : Ham(std::move(H)), P(std::move(Matrix)) {
  assert(P.size() == Ham.numTerms() &&
         "transition matrix size must match the term count");
  Pi = Ham.stationaryDistribution();
}

HTTGraph HTTGraph::withQDriftMatrix(Hamiltonian H) {
  std::vector<double> Pi = H.stationaryDistribution();
  return HTTGraph(std::move(H), TransitionMatrix::fromStationary(Pi));
}

void HTTGraph::setTransitionMatrix(TransitionMatrix NewP) {
  assert(NewP.size() == Ham.numTerms() &&
         "transition matrix size must match the term count");
  P = std::move(NewP);
}

size_t HTTGraph::numEdges(double EdgeTol) const {
  size_t Count = 0;
  for (size_t I = 0; I < P.size(); ++I)
    for (size_t J = 0; J < P.size(); ++J)
      if (P.at(I, J) > EdgeTol)
        ++Count;
  return Count;
}

std::string HTTGraph::toDot(double EdgeTol) const {
  std::string Dot = "digraph HTT {\n  rankdir=LR;\n";
  for (size_t I = 0; I < numStates(); ++I) {
    Dot += "  n" + std::to_string(I) + " [label=\"" +
           Ham.term(I).String.str(Ham.numQubits()) + "\\npi=" +
           formatDouble(Pi[I], 3) + "\"];\n";
  }
  for (size_t I = 0; I < numStates(); ++I)
    for (size_t J = 0; J < numStates(); ++J) {
      double Weight = P.at(I, J);
      if (Weight <= EdgeTol)
        continue;
      Dot += "  n" + std::to_string(I) + " -> n" + std::to_string(J) +
             " [label=\"" + formatDouble(Weight, 2) + "\"];\n";
    }
  Dot += "}\n";
  return Dot;
}
