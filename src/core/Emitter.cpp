//===- core/Emitter.cpp - Schedule-to-circuit lowering -----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Emitter.h"

using namespace marqsim;

/// Mask of qubits where \p A and \p B carry the same non-identity operator.
static uint64_t matchedMask(const PauliString &A, const PauliString &B) {
  uint64_t SameX = ~(A.xMask() ^ B.xMask());
  uint64_t SameZ = ~(A.zMask() ^ B.zMask());
  return SameX & SameZ & A.supportMask() & B.supportMask();
}

/// Number of basis-change gates for operator \p K (H costs 1, the Y pair
/// costs 2, Z/I cost 0) — used only for cancellation statistics.
static unsigned basisGateCount(PauliOpKind K) {
  switch (K) {
  case PauliOpKind::I:
  case PauliOpKind::Z:
    return 0;
  case PauliOpKind::X:
    return 1;
  case PauliOpKind::Y:
    return 2;
  }
  return 0;
}

static unsigned highestBit(uint64_t Mask) {
  assert(Mask != 0 && "highestBit of zero mask");
  return 63 - __builtin_clzll(Mask);
}

Circuit marqsim::emitSchedule(const std::vector<ScheduledRotation> &Schedule,
                              unsigned NumQubits, const EmitOptions &Opts,
                              EmitStats *Stats) {
  Circuit C(NumQubits);
  if (Stats)
    *Stats = EmitStats();

  // Normalize: drop identity strings (global phase only) and fold runs of
  // equal strings into one rotation (paper Section 5.2: CNOT_count(i,i)=0).
  std::vector<ScheduledRotation> Steps;
  Steps.reserve(Schedule.size());
  for (const ScheduledRotation &Step : Schedule) {
    if (Step.String.isIdentity())
      continue;
    if (!Steps.empty() && Steps.back().String == Step.String)
      Steps.back().Tau += Step.Tau;
    else
      Steps.push_back(Step);
  }

  PauliString Prev;
  unsigned PrevRoot = 0;

  // Emits the trailing half of the previous snippet (ladder + leave layer),
  // skipping the gates cancelled against the incoming string.
  auto FlushPrevTail = [&](uint64_t SkipCNOTMask, uint64_t SkipBasisMask) {
    uint64_t Support = Prev.supportMask();
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      if (Q == PrevRoot || !((Support >> Q) & 1))
        continue;
      if ((SkipCNOTMask >> Q) & 1)
        continue;
      C.cnot(Q, PrevRoot);
    }
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      if (!((Support >> Q) & 1) || ((SkipBasisMask >> Q) & 1))
        continue;
      appendBasisChange(C, Prev.op(Q), Q, /*Inverse=*/true);
    }
  };

  for (size_t K = 0; K < Steps.size(); ++K) {
    const PauliString &P = Steps[K].String;
    const uint64_t Support = P.supportMask();

    // Root selection with one step of lookahead. Priorities:
    //  1. keep the previous root when the operator on it matches — that is
    //     what unlocks ladder CNOT cancellation at this boundary;
    //  2. otherwise move the root into the set matched with the *next*
    //     string, so the following boundary can cancel;
    //  3. otherwise any qubit matched with the previous string;
    //  4. otherwise the highest support qubit.
    uint64_t MPrev = 0, MNext = 0;
    if (Opts.CrossCancellation) {
      if (K > 0)
        MPrev = matchedMask(Prev, P);
      if (K + 1 < Steps.size())
        MNext = matchedMask(P, Steps[K + 1].String);
    }
    unsigned Root;
    uint64_t CancelCNOTs = 0;
    if (K > 0 && ((MPrev >> PrevRoot) & 1)) {
      Root = PrevRoot;
      CancelCNOTs = MPrev & ~(1ULL << Root);
    } else if (MNext != 0) {
      uint64_t Both = MNext & MPrev;
      Root = highestBit(Both != 0 ? Both : MNext);
    } else if (MPrev != 0) {
      Root = highestBit(MPrev);
    } else {
      Root = highestBit(Support);
    }

    if (K > 0) {
      FlushPrevTail(CancelCNOTs, MPrev);
      if (Stats && Opts.CrossCancellation) {
        Stats->CancelledCNOTs += 2 * __builtin_popcountll(CancelCNOTs);
        for (unsigned Q = 0; Q < NumQubits; ++Q)
          if ((MPrev >> Q) & 1)
            Stats->CancelledSingles += 2 * basisGateCount(P.op(Q));
      }
    }

    // Enter layer for qubits whose basis change was not cancelled.
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      if (!((Support >> Q) & 1))
        continue;
      if ((MPrev >> Q) & 1)
        continue;
      appendBasisChange(C, P.op(Q), Q, /*Inverse=*/false);
    }
    // Leading ladder minus cancelled pairs.
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      if (Q == Root || !((Support >> Q) & 1))
        continue;
      if ((CancelCNOTs >> Q) & 1)
        continue;
      C.cnot(Q, Root);
    }
    // Rz(-2 tau) realizes exp(i tau P) (Rz(phi) = e^{-i phi Z / 2}).
    C.rz(Root, -2.0 * Steps[K].Tau);

    Prev = P;
    PrevRoot = Root;
  }

  if (!Steps.empty())
    FlushPrevTail(/*SkipCNOTMask=*/0, /*SkipBasisMask=*/0);
  return C;
}
