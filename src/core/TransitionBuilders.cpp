//===- core/TransitionBuilders.cpp - Transition matrix construction ----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/TransitionBuilders.h"

#include "core/CNOTCountOracle.h"
#include "flow/MinCostFlow.h"

#include <algorithm>
#include <cmath>
#include <functional>

using namespace marqsim;

TransitionMatrix marqsim::buildQDrift(const Hamiltonian &H) {
  return TransitionMatrix::fromStationary(H.stationaryDistribution());
}

/// Quantizes \p Pi to integers summing exactly to \p Scale using the
/// largest-remainder method.
static std::vector<int64_t> quantize(const std::vector<double> &Pi,
                                     int64_t Scale) {
  const size_t N = Pi.size();
  std::vector<int64_t> Units(N);
  std::vector<std::pair<double, size_t>> Remainders(N);
  int64_t Total = 0;
  for (size_t I = 0; I < N; ++I) {
    double Exact = Pi[I] * static_cast<double>(Scale);
    Units[I] = static_cast<int64_t>(std::floor(Exact));
    Remainders[I] = {Exact - std::floor(Exact), I};
    Total += Units[I];
  }
  int64_t Missing = Scale - Total;
  assert(Missing >= 0 && Missing <= static_cast<int64_t>(N) &&
         "quantization drift");
  std::sort(Remainders.begin(), Remainders.end(),
            std::greater<std::pair<double, size_t>>());
  for (int64_t K = 0; K < Missing; ++K)
    ++Units[Remainders[static_cast<size_t>(K)].second];
  return Units;
}

/// Shared MCFP skeleton of Algorithm 2: builds the bipartite Prev -> Next
/// network with stationary capacities, costs from \p CostFn (diagonal edges
/// omitted), solves it, and extracts the transition matrix
/// p_ij = f_ij / pi_i.
static TransitionMatrix
solveFlowMatrix(const Hamiltonian &H, const MCFPOptions &Opts,
                const std::function<int64_t(size_t, size_t)> &CostFn) {
  const size_t N = H.numTerms();
  assert(N >= 2 && "the flow model needs at least two terms");
  std::vector<double> Pi = H.stationaryDistribution();
  for ([[maybe_unused]] double P : Pi)
    assert(P <= 0.5 + 1e-12 &&
           "pi_i > 0.5: split the Hamiltonian first (Theorem 5.1)");
  std::vector<int64_t> Units = quantize(Pi, Opts.ProbScale);

  // Node layout: 0 = S, 1..N = Prev, N+1..2N = Next, 2N+1 = T.
  const size_t S = 0, T = 2 * N + 1;
  auto PrevNode = [](size_t I) { return 1 + I; };
  auto NextNode = [N](size_t J) { return 1 + N + J; };

  MinCostFlow Net(2 * N + 2);
  std::vector<size_t> SourceEdges(N);
  for (size_t I = 0; I < N; ++I)
    SourceEdges[I] = Net.addEdge(S, PrevNode(I), Units[I], 0);

  // Dense middle edges; ids laid out row-major for extraction.
  std::vector<std::vector<size_t>> MiddleEdge(N,
                                              std::vector<size_t>(N, ~0ULL));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      if (I == J)
        continue; // excluded to rule out the trivial identity matrix
      MiddleEdge[I][J] = Net.addEdge(PrevNode(I), NextNode(J),
                                     MinCostFlow::kInfiniteCapacity,
                                     CostFn(I, J));
    }
  for (size_t J = 0; J < N; ++J)
    Net.addEdge(NextNode(J), T, Units[J], 0);

  MinCostFlow::Result Result = Net.solve(S, T, Opts.ProbScale);
  assert(Result.Feasible && "MCFP infeasible: stationary capacities violate "
                            "the pi_i <= 0.5 precondition");
  (void)Result;

  TransitionMatrix P(N);
  for (size_t I = 0; I < N; ++I) {
    if (Units[I] == 0) {
      // A term whose stationary weight quantized to zero carries no flow;
      // give it the qDrift row (it is (almost) never visited anyway).
      for (size_t J = 0; J < N; ++J)
        P.at(I, J) = Pi[J];
      continue;
    }
    for (size_t J = 0; J < N; ++J) {
      if (I == J)
        continue;
      P.at(I, J) = static_cast<double>(Net.flowOnEdge(MiddleEdge[I][J])) /
                   static_cast<double>(Units[I]);
    }
  }
  return P;
}

TransitionMatrix
marqsim::buildGateCancellation(const Hamiltonian &H, const MCFPOptions &Opts) {
  std::vector<std::vector<unsigned>> Cost = cnotCostTable(H);
  return solveFlowMatrix(H, Opts, [&](size_t I, size_t J) {
    return Opts.CostScale * static_cast<int64_t>(Cost[I][J]);
  });
}

TransitionMatrix
marqsim::buildFromCostTable(const Hamiltonian &H,
                            const std::vector<std::vector<int64_t>> &Cost,
                            const MCFPOptions &Opts) {
  assert(Cost.size() == H.numTerms() && "cost table size mismatch");
  return solveFlowMatrix(
      H, Opts, [&](size_t I, size_t J) { return Cost[I][J]; });
}

TransitionMatrix marqsim::buildRandomPerturbation(const Hamiltonian &H,
                                                  unsigned Rounds, RNG &Rng,
                                                  const MCFPOptions &Opts) {
  assert(Rounds > 0 && "perturbation averaging needs at least one round");
  std::vector<std::vector<unsigned>> Cost = cnotCostTable(H);
  const size_t N = H.numTerms();

  TransitionMatrix Sum(N);
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    // Independent epsilon per edge: +1 CNOT with probability 1/2
    // (the paper's perturbation configuration, Section 6.1).
    std::vector<std::vector<int64_t>> Perturbed(N, std::vector<int64_t>(N));
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        Perturbed[I][J] =
            Opts.CostScale * static_cast<int64_t>(Cost[I][J]) +
            (Rng.bernoulli(0.5) ? Opts.CostScale : 0);
    TransitionMatrix P = solveFlowMatrix(
        H, Opts, [&](size_t I, size_t J) { return Perturbed[I][J]; });
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        Sum.at(I, J) += P.at(I, J);
  }
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      Sum.at(I, J) /= Rounds;
  return Sum;
}

TransitionMatrix
marqsim::buildCommutationGrouping(const Hamiltonian &H,
                                  const MCFPOptions &Opts) {
  return solveFlowMatrix(H, Opts, [&](size_t I, size_t J) {
    bool Commute =
        H.term(I).String.commutesWith(H.term(J).String);
    return Commute ? 0 : Opts.CostScale;
  });
}

TransitionMatrix marqsim::combineWithQDrift(const Hamiltonian &H,
                                            const TransitionMatrix &P,
                                            double Theta) {
  assert(Theta > 0.0 && Theta <= 1.0 && "qDrift weight must be in (0, 1]");
  TransitionMatrix Pqd = buildQDrift(H);
  return TransitionMatrix::combine({&Pqd, &P}, {Theta, 1.0 - Theta});
}

TransitionMatrix marqsim::makeConfigMatrix(const Hamiltonian &H, double WQd,
                                           double WGc, double WRp,
                                           unsigned PerturbationRounds,
                                           uint64_t Seed,
                                           const MCFPOptions &Opts) {
  assert(std::fabs(WQd + WGc + WRp - 1.0) <= 1e-9 &&
         "configuration weights must sum to 1");
  std::vector<const TransitionMatrix *> Parts;
  std::vector<double> Weights;
  TransitionMatrix Pqd, Pgc, Prp;
  if (WQd > 0.0) {
    Pqd = buildQDrift(H);
    Parts.push_back(&Pqd);
    Weights.push_back(WQd);
  }
  if (WGc > 0.0) {
    Pgc = buildGateCancellation(H, Opts);
    Parts.push_back(&Pgc);
    Weights.push_back(WGc);
  }
  if (WRp > 0.0) {
    RNG Rng(Seed);
    Prp = buildRandomPerturbation(H, PerturbationRounds, Rng, Opts);
    Parts.push_back(&Prp);
    Weights.push_back(WRp);
  }
  assert(!Parts.empty() && "all configuration weights are zero");
  return TransitionMatrix::combine(Parts, Weights);
}
