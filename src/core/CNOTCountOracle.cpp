//===- core/CNOTCountOracle.cpp - Pairwise CNOT cost oracle ------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CNOTCountOracle.h"

using namespace marqsim;

unsigned marqsim::cnotCountBetween(const PauliString &Prev,
                                   const PauliString &Next) {
  if (Prev == Next)
    return 0; // identical terms merge their rotation angles
  unsigned KPrev = Prev.weight();
  unsigned KNext = Next.weight();
  unsigned Ladder = (KPrev ? KPrev - 1 : 0) + (KNext ? KNext - 1 : 0);
  unsigned Matched = Prev.matchedOps(Next);
  if (Matched == 0)
    return Ladder;
  assert(2 * (Matched - 1) <= Ladder && "oracle cancellation exceeds supply");
  return Ladder - 2 * (Matched - 1);
}

std::vector<std::vector<unsigned>>
marqsim::cnotCostTable(const Hamiltonian &H) {
  const size_t N = H.numTerms();
  std::vector<std::vector<unsigned>> Table(N, std::vector<unsigned>(N, 0));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      Table[I][J] = cnotCountBetween(H.term(I).String, H.term(J).String);
  return Table;
}

double marqsim::expectedTransitionCNOTs(const Hamiltonian &H,
                                        const TransitionMatrix &P,
                                        const std::vector<double> &Pi) {
  assert(P.size() == H.numTerms() && Pi.size() == H.numTerms() &&
         "size mismatch in expected-cost computation");
  double Acc = 0.0;
  for (size_t I = 0; I < P.size(); ++I) {
    if (Pi[I] == 0.0)
      continue;
    for (size_t J = 0; J < P.size(); ++J) {
      double PIJ = P.at(I, J);
      if (PIJ == 0.0)
        continue;
      Acc += Pi[I] * PIJ *
             cnotCountBetween(H.term(I).String, H.term(J).String);
    }
  }
  return Acc;
}
