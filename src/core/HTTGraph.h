//===- core/HTTGraph.h - Hamiltonian Term Transition Graph IR ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Hamiltonian Term Transition Graph (HTT graph), MarQSim's intermediate
/// representation (paper Definition 4.1).
///
/// The IR binds a decomposed Hamiltonian H = sum_j h_j H_j to the state
/// transition graph of a homogeneous Markov chain: one vertex per term,
/// directed edges weighted by the transition probabilities p_ij. Sampling
/// this chain *is* compilation (Algorithm 1); tuning the edge weights within
/// the correctness envelope of Theorem 4.1 *is* optimization (Section 5).
///
/// The class stores the term list, the target stationary distribution
/// pi_i = |h_i| / lambda, and the transition matrix, and implements the
/// Theorem 4.1 validity checks.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_HTTGRAPH_H
#define MARQSIM_CORE_HTTGRAPH_H

#include "markov/TransitionMatrix.h"
#include "pauli/Hamiltonian.h"

namespace marqsim {

/// MarQSim's IR: a Hamiltonian whose terms are the states of a tunable
/// Markov chain.
class HTTGraph {
public:
  /// Builds the IR for \p H with the given transition matrix (the matrix
  /// size must equal the number of terms).
  HTTGraph(Hamiltonian H, TransitionMatrix P);

  /// Builds the IR with the qDrift matrix Pqd (Corollary 4.1): every row is
  /// the stationary distribution itself.
  static HTTGraph withQDriftMatrix(Hamiltonian H);

  const Hamiltonian &hamiltonian() const { return Ham; }
  const TransitionMatrix &transitionMatrix() const { return P; }
  const std::vector<double> &stationary() const { return Pi; }

  size_t numStates() const { return Ham.numTerms(); }

  /// Replaces the transition matrix (e.g. after re-tuning).
  void setTransitionMatrix(TransitionMatrix NewP);

  /// Theorem 4.1 condition (1): the state transition graph is strongly
  /// connected.
  bool isStronglyConnected(double EdgeTol = 0.0) const {
    return P.isStronglyConnected(EdgeTol);
  }

  /// Theorem 4.1 condition (2): pi P = pi for pi_i = |h_i| / lambda.
  bool preservesStationary(double Tol = 1e-6) const {
    return P.preservesDistribution(Pi, Tol);
  }

  /// Both Theorem 4.1 conditions plus row-stochasticity.
  bool isValidForCompilation(double Tol = 1e-6) const {
    return P.isRowStochastic(Tol) && isStronglyConnected() &&
           preservesStationary(Tol);
  }

  /// Number of directed edges with p_ij > EdgeTol (self-edges included).
  size_t numEdges(double EdgeTol = 0.0) const;

  /// Graphviz DOT rendering of the state transition graph: one node per
  /// Hamiltonian term (labelled with its Pauli string and stationary
  /// weight), one edge per transition probability above \p EdgeTol.
  /// Intended for inspecting small IRs.
  std::string toDot(double EdgeTol = 1e-3) const;

private:
  Hamiltonian Ham;
  TransitionMatrix P;
  std::vector<double> Pi;
};

} // namespace marqsim

#endif // MARQSIM_CORE_HTTGRAPH_H
