//===- core/Compiler.cpp - Compilation as Markov-chain sampling --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"

#include <cmath>
#include <memory>

using namespace marqsim;

size_t marqsim::qdriftSampleCount(double Lambda, double T, double Epsilon) {
  assert(Lambda > 0.0 && "lambda must be positive");
  assert(Epsilon > 0.0 && "target precision must be positive");
  double N = std::ceil(2.0 * Lambda * Lambda * T * T / Epsilon);
  return std::max<size_t>(1, static_cast<size_t>(N));
}

CompilationResult marqsim::materializePlan(const Hamiltonian &H,
                                           ShotPlan Plan,
                                           const CompilationOptions &Opts) {
  assert((Plan.Taus.empty() || Plan.Taus.size() == Plan.Sequence.size()) &&
         "per-visit tau vector must match the sequence length");
  CompilationResult R;
  R.NumSamples = Plan.Sequence.size();
  R.Lambda = H.lambda();
  R.Tau = Plan.TauStep;

  // Merge runs of identical samples: exp(i tau P) exp(i tau P) folds into a
  // single rotation with doubled time parameter (paper Section 5.2).
  R.Schedule.reserve(Plan.Sequence.size());
  for (size_t K = 0; K < Plan.Sequence.size(); ++K) {
    size_t Index = Plan.Sequence[K];
    assert(Index < H.numTerms() && "sampled index out of range");
    const PauliTerm &Term = H.term(Index);
    double Tau = Plan.Taus.empty()
                     ? (Term.Coeff >= 0.0 ? Plan.TauStep : -Plan.TauStep)
                     : Plan.Taus[K];
    if (!R.Schedule.empty() && R.Schedule.back().String == Term.String)
      R.Schedule.back().Tau += Tau;
    else
      R.Schedule.emplace_back(Term.String, Tau);
  }
  R.Sequence = std::move(Plan.Sequence);

  R.Circ = emitSchedule(R.Schedule, H.numQubits(), Opts.Emit, &R.Stats);
  R.Counts = R.Circ.counts();
  return R;
}

CompilationResult marqsim::materializeSequence(const Hamiltonian &H,
                                               std::vector<size_t> Sequence,
                                               double TauStep,
                                               const CompilationOptions &Opts) {
  ShotPlan Plan;
  Plan.Sequence = std::move(Sequence);
  Plan.TauStep = TauStep;
  return materializePlan(H, std::move(Plan), Opts);
}

CompilationResult marqsim::compileBySampling(const HTTGraph &Graph, double T,
                                             double Epsilon, RNG &Rng,
                                             const CompilationOptions &Opts) {
  // Non-owning view: the strategy only lives for this call.
  std::shared_ptr<const HTTGraph> View(std::shared_ptr<const HTTGraph>(),
                                       &Graph);
  SamplingStrategy Strategy(View, T, Epsilon, Opts.UseCDFSampler);
  ShotContext Ctx{0, Rng};
  return materializePlan(Graph.hamiltonian(), Strategy.produce(Ctx), Opts);
}

CompilationResult marqsim::compileQDrift(const Hamiltonian &H, double T,
                                         double Epsilon, RNG &Rng,
                                         const CompilationOptions &Opts) {
  HTTGraph Graph = HTTGraph::withQDriftMatrix(H);
  return compileBySampling(Graph, T, Epsilon, Rng, Opts);
}
