//===- core/Compiler.cpp - Compilation as Markov-chain sampling --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/TransitionBuilders.h"

#include <cmath>

using namespace marqsim;

size_t marqsim::qdriftSampleCount(double Lambda, double T, double Epsilon) {
  assert(Lambda > 0.0 && "lambda must be positive");
  assert(Epsilon > 0.0 && "target precision must be positive");
  double N = std::ceil(2.0 * Lambda * Lambda * T * T / Epsilon);
  return std::max<size_t>(1, static_cast<size_t>(N));
}

CompilationResult marqsim::materializeSequence(const Hamiltonian &H,
                                               std::vector<size_t> Sequence,
                                               double TauStep,
                                               const CompilationOptions &Opts) {
  CompilationResult R;
  R.NumSamples = Sequence.size();
  R.Lambda = H.lambda();
  R.Tau = TauStep;

  // Merge runs of identical samples: exp(i tau P) exp(i tau P) folds into a
  // single rotation with doubled time parameter (paper Section 5.2).
  R.Schedule.reserve(Sequence.size());
  for (size_t Index : Sequence) {
    assert(Index < H.numTerms() && "sampled index out of range");
    const PauliTerm &Term = H.term(Index);
    double Tau = Term.Coeff >= 0.0 ? TauStep : -TauStep;
    if (!R.Schedule.empty() && R.Schedule.back().String == Term.String)
      R.Schedule.back().Tau += Tau;
    else
      R.Schedule.emplace_back(Term.String, Tau);
  }
  R.Sequence = std::move(Sequence);

  R.Circ = emitSchedule(R.Schedule, H.numQubits(), Opts.Emit, &R.Stats);
  R.Counts = R.Circ.counts();
  return R;
}

CompilationResult marqsim::compileBySampling(const HTTGraph &Graph, double T,
                                             double Epsilon, RNG &Rng,
                                             const CompilationOptions &Opts) {
  const Hamiltonian &H = Graph.hamiltonian();
  assert(!H.empty() && "cannot compile an empty Hamiltonian");
  const double Lambda = H.lambda();
  const size_t N = qdriftSampleCount(Lambda, T, Epsilon);
  const double TauStep = Lambda * T / static_cast<double>(N);

  std::vector<size_t> Sequence(N);
  if (Opts.UseCDFSampler) {
    // CDF-based walk (ablation): same chain, O(log n) draws.
    std::vector<CDFSampler> Rows;
    Rows.reserve(Graph.numStates());
    for (size_t I = 0; I < Graph.numStates(); ++I) {
      std::vector<double> Row(Graph.transitionMatrix().row(I),
                              Graph.transitionMatrix().row(I) +
                                  Graph.numStates());
      Rows.emplace_back(Row);
    }
    CDFSampler Initial(Graph.stationary());
    size_t State = Initial.sample(Rng);
    Sequence[0] = State;
    for (size_t K = 1; K < N; ++K) {
      State = Rows[State].sample(Rng);
      Sequence[K] = State;
    }
  } else {
    MarkovChainSampler Sampler(Graph.transitionMatrix(), Graph.stationary());
    for (size_t K = 0; K < N; ++K)
      Sequence[K] = Sampler.next(Rng);
  }

  return materializeSequence(H, std::move(Sequence), TauStep, Opts);
}

CompilationResult marqsim::compileQDrift(const Hamiltonian &H, double T,
                                         double Epsilon, RNG &Rng,
                                         const CompilationOptions &Opts) {
  HTTGraph Graph = HTTGraph::withQDriftMatrix(H);
  return compileBySampling(Graph, T, Epsilon, Rng, Opts);
}
