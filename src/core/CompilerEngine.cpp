//===- core/CompilerEngine.cpp - Strategy-based compilation engine -----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEngine.h"

#include "stats/Stats.h"
#include "support/Serial.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace marqsim;

//===----------------------------------------------------------------------===//
// SamplingStrategy
//===----------------------------------------------------------------------===//

SamplingStrategy::SamplingStrategy(std::shared_ptr<const HTTGraph> G,
                                   double T, double Epsilon, bool CDF)
    : Graph(std::move(G)), UseCDF(CDF) {
  assert(Graph && "sampling strategy needs a graph");
  const Hamiltonian &H = Graph->hamiltonian();
  assert(!H.empty() && "cannot compile an empty Hamiltonian");
  NumSamples = qdriftSampleCount(H.lambda(), T, Epsilon);
  TauStep = H.lambda() * T / static_cast<double>(NumSamples);

  if (UseCDF) {
    // CDF-based walk (ablation): same chain, O(log n) draws.
    auto Rows = std::make_shared<std::vector<CDFSampler>>();
    Rows->reserve(Graph->numStates());
    for (size_t I = 0; I < Graph->numStates(); ++I) {
      std::vector<double> Row(Graph->transitionMatrix().row(I),
                              Graph->transitionMatrix().row(I) +
                                  Graph->numStates());
      Rows->emplace_back(Row);
    }
    CDFRows = std::move(Rows);
    CDFInitial = std::make_shared<const CDFSampler>(Graph->stationary());
  } else {
    Chain = std::make_shared<const MarkovChainSampler>(
        Graph->transitionMatrix(), Graph->stationary());
  }
}

SamplingStrategy::SamplingStrategy(const SamplingStrategy &Other, double T,
                                   double Epsilon)
    : Graph(Other.Graph), Chain(Other.Chain), CDFInitial(Other.CDFInitial),
      CDFRows(Other.CDFRows), UseCDF(Other.UseCDF) {
  const Hamiltonian &H = Graph->hamiltonian();
  NumSamples = qdriftSampleCount(H.lambda(), T, Epsilon);
  TauStep = H.lambda() * T / static_cast<double>(NumSamples);
}

std::string SamplingStrategy::name() const {
  return UseCDF ? "sampling(cdf)" : "sampling";
}

ShotPlan SamplingStrategy::produce(ShotContext &Ctx) const {
  ShotPlan Plan;
  Plan.TauStep = TauStep;
  Plan.Sequence.resize(NumSamples);
  if (UseCDF) {
    size_t State = CDFInitial->sample(Ctx.Rng);
    Plan.Sequence[0] = State;
    for (size_t K = 1; K < NumSamples; ++K) {
      State = (*CDFRows)[State].sample(Ctx.Rng);
      Plan.Sequence[K] = State;
    }
  } else {
    size_t State = Chain->initial(Ctx.Rng);
    Plan.Sequence[0] = State;
    for (size_t K = 1; K < NumSamples; ++K) {
      State = Chain->stepFrom(State, Ctx.Rng);
      Plan.Sequence[K] = State;
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// TrotterStrategy
//===----------------------------------------------------------------------===//

TrotterStrategy::TrotterStrategy(Hamiltonian H, double T, unsigned R,
                                 TermOrderKind Kind, unsigned O)
    : Ham(std::move(H)), Reps(R), Order(O) {
  assert(Reps > 0 && "Trotter needs at least one repetition");
  assert((Order == 1 || Order == 2 || Order == 4) &&
         "supported product-formula orders: 1, 2, 4");
  std::vector<size_t> TermOrder = orderTerms(Ham, Kind);
  const double Dt = T / static_cast<double>(Reps);

  // One symmetric second-order block S2(Scale * Dt).
  auto AppendS2 = [&](double Scale) {
    for (size_t Index : TermOrder) {
      Pattern.push_back(Index);
      PatternTaus.push_back(Ham.term(Index).Coeff * Dt * Scale * 0.5);
    }
    for (size_t K = TermOrder.size(); K-- > 0;) {
      Pattern.push_back(TermOrder[K]);
      PatternTaus.push_back(Ham.term(TermOrder[K]).Coeff * Dt * Scale * 0.5);
    }
  };

  switch (Order) {
  case 1:
    for (size_t Index : TermOrder) {
      Pattern.push_back(Index);
      PatternTaus.push_back(Ham.term(Index).Coeff * Dt);
    }
    break;
  case 2:
    AppendS2(1.0);
    break;
  case 4: {
    // S4(dt) = S2(p dt)^2 S2((1-4p) dt) S2(p dt)^2, p = 1/(4 - 4^{1/3}).
    const double P4 = 1.0 / (4.0 - std::pow(4.0, 1.0 / 3.0));
    AppendS2(P4);
    AppendS2(P4);
    AppendS2(1.0 - 4.0 * P4);
    AppendS2(P4);
    AppendS2(P4);
    break;
  }
  }
}

std::string TrotterStrategy::name() const {
  switch (Order) {
  case 1:
    return "trotter1";
  case 2:
    return "trotter2";
  default:
    return "suzuki4";
  }
}

ShotPlan TrotterStrategy::produce(ShotContext &Ctx) const {
  (void)Ctx; // deterministic: the RNG is never consulted
  ShotPlan Plan;
  Plan.Sequence.reserve(Pattern.size() * Reps);
  Plan.Taus.reserve(Pattern.size() * Reps);
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    Plan.Sequence.insert(Plan.Sequence.end(), Pattern.begin(),
                         Pattern.end());
    Plan.Taus.insert(Plan.Taus.end(), PatternTaus.begin(),
                     PatternTaus.end());
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// RandomOrderTrotterStrategy
//===----------------------------------------------------------------------===//

RandomOrderTrotterStrategy::RandomOrderTrotterStrategy(Hamiltonian H,
                                                       double T, unsigned R)
    : Ham(std::move(H)), Dt(T / static_cast<double>(R)), Reps(R) {
  assert(Reps > 0 && "Trotter needs at least one repetition");
}

ShotPlan RandomOrderTrotterStrategy::produce(ShotContext &Ctx) const {
  const size_t N = Ham.numTerms();
  ShotPlan Plan;
  Plan.Sequence.reserve(N * Reps);
  Plan.Taus.reserve(N * Reps);
  std::vector<size_t> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0);
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    // Fisher-Yates with the project RNG for reproducibility.
    for (size_t I = N; I-- > 1;) {
      size_t J = Ctx.Rng.uniformInt(I + 1);
      std::swap(Perm[I], Perm[J]);
    }
    for (size_t Index : Perm) {
      Plan.Sequence.push_back(Index);
      Plan.Taus.push_back(Ham.term(Index).Coeff * Dt);
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// SparStoStrategy
//===----------------------------------------------------------------------===//

SparStoStrategy::SparStoStrategy(Hamiltonian H, double T, unsigned R,
                                 double Scale)
    : Ham(std::move(H)), Dt(T / static_cast<double>(R)), KeepScale(Scale),
      Reps(R) {
  assert(Reps > 0 && "SparSto needs at least one repetition");
  assert(KeepScale > 0.0 && "keep scale must be positive");
  MaxMag = 0.0;
  for (const PauliTerm &Term : Ham.terms())
    MaxMag = std::max(MaxMag, std::fabs(Term.Coeff));
  assert(MaxMag > 0.0 && "empty Hamiltonian");
}

ShotPlan SparStoStrategy::produce(ShotContext &Ctx) const {
  const size_t NumTerms = Ham.numTerms();
  ShotPlan Plan;
  std::vector<size_t> Kept;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    // Independent keep decisions with unbiased 1/q_j rescaling.
    Kept.clear();
    std::vector<double> Taus;
    for (size_t J = 0; J < NumTerms; ++J) {
      double Q = std::min(1.0, KeepScale * std::fabs(Ham.term(J).Coeff) /
                                   MaxMag);
      if (!Ctx.Rng.bernoulli(Q))
        continue;
      Kept.push_back(J);
      Taus.push_back(Ham.term(J).Coeff * Dt / Q);
    }
    // Random order within the sparsified step.
    for (size_t I = Kept.size(); I-- > 1;) {
      size_t J = Ctx.Rng.uniformInt(I + 1);
      std::swap(Kept[I], Kept[J]);
      std::swap(Taus[I], Taus[J]);
    }
    Plan.Sequence.insert(Plan.Sequence.end(), Kept.begin(), Kept.end());
    Plan.Taus.insert(Plan.Taus.end(), Taus.begin(), Taus.end());
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// CompilerEngine
//===----------------------------------------------------------------------===//

/// FNV-1a over the byte representation of the index sequence.
static uint64_t hashSequence(const std::vector<size_t> &Sequence) {
  uint64_t H = serial::FNVOffset;
  for (size_t Value : Sequence)
    H = serial::fnv1aWord(static_cast<uint64_t>(Value), H);
  return H;
}

static ShotSummary summarizeShot(const CompilationResult &R) {
  ShotSummary S;
  S.NumSamples = R.NumSamples;
  S.Counts = R.Counts;
  S.Stats = R.Stats;
  S.SequenceHash = hashSequence(R.Sequence);
  return S;
}

static SummaryStat toSummary(const RunningStats &Stats) {
  SummaryStat S;
  S.Mean = Stats.mean();
  S.Std = Stats.stddev();
  S.Min = Stats.min();
  S.Max = Stats.max();
  return S;
}

uint64_t marqsim::hashShotSummaries(const std::vector<ShotSummary> &Shots) {
  uint64_t H = serial::FNVOffset;
  for (const ShotSummary &S : Shots)
    H = serial::fnv1aMixWord(H, S.SequenceHash);
  return H;
}

uint64_t BatchResult::batchHash() const { return hashShotSummaries(Shots); }

void BatchResult::recomputeAggregates() {
  TotalCancelledCNOTs = 0;
  TotalCancelledSingles = 0;
  RunningStats CNOTStats, SingleStats, TotalStats, SampleStats;
  for (const ShotSummary &S : Shots) {
    CNOTStats.add(static_cast<double>(S.Counts.CNOTs));
    SingleStats.add(static_cast<double>(S.Counts.SingleQubit));
    TotalStats.add(static_cast<double>(S.Counts.total()));
    SampleStats.add(static_cast<double>(S.NumSamples));
    TotalCancelledCNOTs += S.Stats.CancelledCNOTs;
    TotalCancelledSingles += S.Stats.CancelledSingles;
  }
  CNOTs = toSummary(CNOTStats);
  Singles = toSummary(SingleStats);
  Totals = toSummary(TotalStats);
  Samples = toSummary(SampleStats);
}

CompilationResult
CompilerEngine::compileOne(const ScheduleStrategy &Strategy, uint64_t Seed,
                           const CompilationOptions &Opts) const {
  RNG Rng = RNG::forShot(Seed, 0);
  ShotContext Ctx{0, Rng};
  return materializePlan(Strategy.hamiltonian(), Strategy.produce(Ctx),
                         Opts);
}

BatchResult CompilerEngine::compileBatch(const BatchRequest &Req) const {
  assert(Req.Strategy && "batch request without a strategy");
  assert(Req.NumShots > 0 && "batch needs at least one shot");
  const ScheduleStrategy &Strategy = *Req.Strategy;

  BatchResult B;
  B.StrategyName = Strategy.name();
  B.NumShots = Req.NumShots;
  B.Seed = Req.Seed;
  B.Shots.resize(Req.NumShots);
  if (Req.KeepResults)
    B.Results.resize(Req.NumShots);

  unsigned Jobs = Req.Jobs == 0 ? ThreadPool::hardwareWorkers() : Req.Jobs;
  Jobs = static_cast<unsigned>(
      std::min<size_t>(Jobs, Req.NumShots));

  auto RunShot = [&](size_t Shot) {
    RNG Rng = RNG::forShot(Req.Seed, Req.FirstShot + Shot);
    ShotContext Ctx{Shot, Rng};
    CompilationResult R = materializePlan(Strategy.hamiltonian(),
                                          Strategy.produce(Ctx), Req.Opts);
    B.Shots[Shot] = summarizeShot(R);
    if (Req.PerShot)
      Req.PerShot(Shot, R);
    if (Req.KeepResults)
      B.Results[Shot] = std::move(R);
  };

  Timer Clock;
  if (Strategy.isDeterministic()) {
    // Every shot is identical: compile once, replicate. (The RNG is never
    // consulted, so the offset is cosmetic; it keeps the derivation rule
    // uniform.)
    RNG Rng = RNG::forShot(Req.Seed, Req.FirstShot);
    ShotContext Ctx{0, Rng};
    CompilationResult R = materializePlan(Strategy.hamiltonian(),
                                          Strategy.produce(Ctx), Req.Opts);
    B.Shots[0] = summarizeShot(R);
    for (size_t Shot = 1; Shot < Req.NumShots; ++Shot)
      B.Shots[Shot] = B.Shots[0];
    if (Req.PerShot)
      for (size_t Shot = 0; Shot < Req.NumShots; ++Shot)
        Req.PerShot(Shot, R);
    if (Req.KeepResults) {
      for (size_t Shot = 1; Shot < Req.NumShots; ++Shot)
        B.Results[Shot] = R;
      B.Results[0] = std::move(R);
    }
    B.JobsUsed = 1;
  } else {
    parallelFor(Req.NumShots, Jobs, RunShot);
    B.JobsUsed = Jobs;
  }
  B.Seconds = Clock.seconds();

  B.recomputeAggregates();
  return B;
}
