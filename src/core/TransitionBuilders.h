//===- core/TransitionBuilders.h - Transition matrix construction *- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the transition matrices of the paper:
///
///   * Pqd  — vanilla qDrift (Corollary 4.1): rank-1, rows = pi.
///   * Pgc  — the CNOT-gate-cancellation matrix of Algorithm 2, obtained by
///            solving a Min-Cost Flow Problem on the bipartite Prev -> Next
///            network whose hard capacities encode the stationary
///            distribution (Theorem 5.1) and whose edge costs are
///            CNOT_count(i, j). Diagonal edges are omitted so the trivial
///            identity solution is excluded (Section 5.2).
///   * Prp  — the random-perturbation matrix of Section 5.5: the average of
///            several Pgc-style solutions whose costs were independently
///            perturbed (+1 with probability 1/2), flattening the spectrum.
///   * Pcg  — an extension from the paper's discussion (Section 7): costs
///            favour successors that commute with the current term.
///
/// All builders return matrices that preserve the stationary distribution;
/// strong connectivity is restored by convex combination with Pqd
/// (Theorem 5.2), done by combineWithQDrift / makeConfigMatrix.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_TRANSITIONBUILDERS_H
#define MARQSIM_CORE_TRANSITIONBUILDERS_H

#include "markov/TransitionMatrix.h"
#include "pauli/Hamiltonian.h"
#include "support/RNG.h"

namespace marqsim {

/// Options for the MCFP-based builders.
struct MCFPOptions {
  /// Probability quantum: capacities are round(pi_i * ProbScale) with a
  /// largest-remainder correction so they sum exactly to ProbScale.
  int64_t ProbScale = 1'000'000'000;

  /// Cost multiplier (costs are integers; the multiplier leaves headroom
  /// for the +1 random perturbations without precision loss).
  int64_t CostScale = 2;
};

/// Pqd of Corollary 4.1. Valid on its own (complete graph, stationary).
TransitionMatrix buildQDrift(const Hamiltonian &H);

/// Pgc of Algorithm 2. Requires every pi_i <= 0.5 (apply
/// Hamiltonian::splitLargeTerms first; the compiler driver does this
/// automatically). Deterministic.
TransitionMatrix buildGateCancellation(const Hamiltonian &H,
                                       const MCFPOptions &Opts = {});

/// The generic Algorithm 2 skeleton behind every MCFP builder: the
/// bipartite stationary-capacity flow network with an arbitrary
/// non-negative cost table (diagonal entries ignored — those edges are
/// excluded). Exposed so new objectives (e.g. hardware-aware costs) can
/// plug in without reimplementing the flow encoding.
TransitionMatrix
buildFromCostTable(const Hamiltonian &H,
                   const std::vector<std::vector<int64_t>> &Cost,
                   const MCFPOptions &Opts = {});

/// Prp of Section 5.5: averages \p Rounds solutions of the gate-
/// cancellation MCFP whose costs receive independent +1 perturbations with
/// probability 1/2 (the paper's configuration; it uses 100 rounds).
TransitionMatrix buildRandomPerturbation(const Hamiltonian &H,
                                         unsigned Rounds, RNG &Rng,
                                         const MCFPOptions &Opts = {});

/// Extension (paper Section 7): MCFP matrix whose costs are 0 for
/// mutually commuting term pairs and 1 otherwise, biasing the chain toward
/// runs of commuting terms.
TransitionMatrix buildCommutationGrouping(const Hamiltonian &H,
                                          const MCFPOptions &Opts = {});

/// Theta * Pqd + (1 - Theta) * P — the strong-connectivity-restoring
/// combination (Theorem 5.2 discussion). Requires Theta in (0, 1].
TransitionMatrix combineWithQDrift(const Hamiltonian &H,
                                   const TransitionMatrix &P, double Theta);

/// The paper's experimental configurations: returns
///   WQd * Pqd + WGc * Pgc + WRp * Prp
/// with weights summing to 1 (WRp == 0 skips the perturbation solves).
TransitionMatrix makeConfigMatrix(const Hamiltonian &H, double WQd,
                                  double WGc, double WRp,
                                  unsigned PerturbationRounds = 16,
                                  uint64_t Seed = 1234,
                                  const MCFPOptions &Opts = {});

} // namespace marqsim

#endif // MARQSIM_CORE_TRANSITIONBUILDERS_H
