//===- core/CompilerEngine.h - Strategy-based compilation engine -*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One engine for every compiler in the repository.
///
/// The paper's experiments (Figs. 11-16, Tables 1-2) all aggregate many
/// independent compilation shots of the same Hamiltonian under different
/// schedule-producing policies. This header reifies that structure:
///
///   * ScheduleStrategy — a pluggable policy that turns one shot's RNG
///     substream into a ShotPlan (term-visit sequence + rotation angles).
///     Concrete strategies wrap Markov-chain sampling (qDrift / GC / GC+RP
///     via the HTT graph), the deterministic Trotter/Suzuki orderings, the
///     randomized-order Trotter of Childs et al., and SparSto.
///   * CompilerEngine — compiles single shots or whole batches. All shots
///     funnel through the materializePlan deterministic backend, so
///     gate-count comparisons isolate the scheduling policy.
///
/// Batch compilation amortizes setup (HTT graph, transition matrix, and
/// per-row alias tables are built once and shared read-only) and fans shots
/// across a ThreadPool. Shot k draws from RNG::forShot(Seed, k), a
/// counter-based substream independent of scheduling order, so a batch is
/// bit-identical for every worker count.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_COMPILERENGINE_H
#define MARQSIM_CORE_COMPILERENGINE_H

#include "core/Baselines.h"
#include "core/Compiler.h"
#include "core/HTTGraph.h"
#include "markov/Sampler.h"

#include <functional>
#include <memory>
#include <string>

namespace marqsim {

/// Everything a strategy may consult while producing one shot.
struct ShotContext {
  /// Index of this shot within its batch (0 for single compilations).
  size_t Shot = 0;

  /// The shot's private RNG substream. Strategies must draw randomness
  /// only from here; the engine derives it via RNG::forShot.
  RNG &Rng;
};

/// A schedule-producing policy. Implementations must be immutable after
/// construction: produce() is called concurrently from batch workers.
class ScheduleStrategy {
public:
  virtual ~ScheduleStrategy() = default;

  /// Human-readable policy name for tables and logs.
  virtual std::string name() const = 0;

  /// True when produce() ignores the RNG (every shot is identical); the
  /// engine then compiles one shot and replicates it across the batch.
  virtual bool isDeterministic() const { return false; }

  /// The Hamiltonian the plans index into.
  virtual const Hamiltonian &hamiltonian() const = 0;

  /// Produces the term-visit plan of one shot. Must be thread-safe.
  virtual ShotPlan produce(ShotContext &Ctx) const = 0;
};

/// Algorithm 1: walk the HTT graph's Markov chain for
/// N = ceil(2 lambda^2 t^2 / eps) steps. The alias tables (or CDF rows for
/// the ablation sampler) are built once at construction and shared
/// read-only by every shot.
class SamplingStrategy : public ScheduleStrategy {
public:
  SamplingStrategy(std::shared_ptr<const HTTGraph> Graph, double T,
                   double Epsilon, bool UseCDF = false);

  /// Re-targets \p Other to a new (T, Epsilon) budget, sharing its
  /// prebuilt sampling tables (useful for epsilon sweeps over one graph).
  SamplingStrategy(const SamplingStrategy &Other, double T, double Epsilon);

  /// Shared-ownership form of the re-targeting constructor, for sweep
  /// loops that hold strategies by shared_ptr.
  std::shared_ptr<const SamplingStrategy> retargeted(double T,
                                                     double Epsilon) const {
    return std::make_shared<const SamplingStrategy>(*this, T, Epsilon);
  }

  std::string name() const override;
  const Hamiltonian &hamiltonian() const override {
    return Graph->hamiltonian();
  }
  ShotPlan produce(ShotContext &Ctx) const override;

  size_t sampleCount() const { return NumSamples; }
  double tauStep() const { return TauStep; }
  const HTTGraph &graph() const { return *Graph; }

private:
  std::shared_ptr<const HTTGraph> Graph;
  /// Alias-method walk tables (default sampler).
  std::shared_ptr<const MarkovChainSampler> Chain;
  /// Binary-search tables (UseCDF ablation).
  std::shared_ptr<const CDFSampler> CDFInitial;
  std::shared_ptr<const std::vector<CDFSampler>> CDFRows;
  size_t NumSamples = 0;
  double TauStep = 0.0;
  bool UseCDF = false;
};

/// Deterministic product formulas: first-order Trotter (Order 1), the
/// symmetrized second-order formula (Order 2), and fourth-order Suzuki
/// (Order 4), each over a fixed term ordering repeated Reps times.
class TrotterStrategy : public ScheduleStrategy {
public:
  TrotterStrategy(Hamiltonian H, double T, unsigned Reps, TermOrderKind Kind,
                  unsigned Order = 1);

  std::string name() const override;
  bool isDeterministic() const override { return true; }
  const Hamiltonian &hamiltonian() const override { return Ham; }
  ShotPlan produce(ShotContext &Ctx) const override;

private:
  Hamiltonian Ham;
  /// One repetition's visit pattern and angles, replicated Reps times.
  std::vector<size_t> Pattern;
  std::vector<double> PatternTaus;
  unsigned Reps;
  unsigned Order;
};

/// Randomized-order Trotter [Childs et al.]: an independent uniform
/// permutation of the terms per repetition.
class RandomOrderTrotterStrategy : public ScheduleStrategy {
public:
  RandomOrderTrotterStrategy(Hamiltonian H, double T, unsigned Reps);

  std::string name() const override { return "random-order-trotter"; }
  const Hamiltonian &hamiltonian() const override { return Ham; }
  ShotPlan produce(ShotContext &Ctx) const override;

private:
  Hamiltonian Ham;
  double Dt;
  unsigned Reps;
};

/// SparSto-style stochastic sparsification: per repetition each term is
/// kept with probability min(1, KeepScale * |h_j| / max|h|), rescaled by
/// 1/q_j, and the survivors are randomly ordered.
class SparStoStrategy : public ScheduleStrategy {
public:
  SparStoStrategy(Hamiltonian H, double T, unsigned Reps, double KeepScale);

  std::string name() const override { return "sparsto"; }
  const Hamiltonian &hamiltonian() const override { return Ham; }
  ShotPlan produce(ShotContext &Ctx) const override;

private:
  Hamiltonian Ham;
  double Dt;
  double MaxMag;
  double KeepScale;
  unsigned Reps;
};

/// A batch of independent compilation shots of one strategy.
struct BatchRequest {
  /// The scheduling policy; shared read-only by all workers.
  std::shared_ptr<const ScheduleStrategy> Strategy;

  /// Number of independent shots.
  size_t NumShots = 1;

  /// Worker threads; 0 selects the hardware thread count. The result is
  /// bit-identical for every value.
  unsigned Jobs = 1;

  /// Worker threads granted to each shot's *evaluation* stage: hook
  /// owners fan per-shot work that is independent of the sequential
  /// Markov walk — fidelity column blocks, chiefly — across this many
  /// workers (FidelityEvaluator::fidelity's EvalJobs argument). 0 selects
  /// the hardware thread count. Evaluation partitions and reductions are
  /// fixed-order, so results are bit-identical for every value; this knob
  /// only moves wall-clock, exactly like Jobs.
  unsigned EvalJobs = 1;

  /// Base seed; shot k draws from RNG::forShot(Seed, FirstShot + k).
  uint64_t Seed = 1;

  /// Global index of the batch's first shot. Shot substreams are derived
  /// from global indices, so compiling [FirstShot, FirstShot + NumShots)
  /// here and the complementary ranges elsewhere reproduces one large
  /// batch bit for bit — the foundation of cross-process sharding.
  size_t FirstShot = 0;

  /// Lowering options applied to every shot.
  CompilationOptions Opts;

  /// Retain the full CompilationResult (circuit, schedule, sequence) of
  /// every shot in BatchResult::Results. Off by default: large batches
  /// only need the per-shot summaries.
  bool KeepResults = false;

  /// Optional per-shot hook, invoked with (shot index, result) on the
  /// worker thread that compiled the shot. Lets callers consume each
  /// result (fidelity evaluation, exporting one circuit) without retaining
  /// the whole batch via KeepResults. Invocations are concurrent across
  /// workers, so the hook must be thread-safe; the result reference is
  /// only valid for the duration of the call. For deterministic strategies
  /// the hook still fires once per shot, every time with the single
  /// compiled result.
  std::function<void(size_t, const CompilationResult &)> PerShot;
};

/// Mean / stddev / extrema of one per-shot quantity.
struct SummaryStat {
  double Mean = 0.0;
  double Std = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// The cheap always-retained record of one shot.
struct ShotSummary {
  size_t NumSamples = 0;
  GateCounts Counts;
  EmitStats Stats;
  /// FNV-1a hash of the term-visit sequence; lets callers check
  /// bit-identical scheduling without retaining the sequence itself.
  uint64_t SequenceHash = 0;
};

/// Order-sensitive hash chain over per-shot sequence hashes. The one
/// implementation behind BatchResult::batchHash and the shard manifests'
/// range hash — they must stay bit-identical for merged manifests to
/// validate, so they share this helper instead of a sync-by-comment.
uint64_t hashShotSummaries(const std::vector<ShotSummary> &Shots);

/// Everything a batch produces.
struct BatchResult {
  std::string StrategyName;
  size_t NumShots = 0;
  unsigned JobsUsed = 0;
  uint64_t Seed = 0;

  /// One summary per shot, in shot order.
  std::vector<ShotSummary> Shots;

  /// Full per-shot results; only populated under BatchRequest::KeepResults.
  std::vector<CompilationResult> Results;

  /// Aggregates over the shots.
  SummaryStat CNOTs;
  SummaryStat Singles;
  SummaryStat Totals;
  SummaryStat Samples;
  size_t TotalCancelledCNOTs = 0;
  size_t TotalCancelledSingles = 0;

  /// Wall-clock seconds spent compiling the shots (setup excluded — that
  /// happens once, at strategy construction).
  double Seconds = 0.0;

  /// Seconds spent in per-shot *evaluation*, summed over shots. The
  /// engine leaves it 0; the hook owner fills it in (SimulationService
  /// times exactly its fidelity calls, so artifact copies in the hook
  /// never masquerade as evaluation). Under Jobs > 1 the hooks run
  /// concurrently, so this is a CPU-seconds figure that can exceed the
  /// wall-clock Seconds; with Jobs = 1 it is the exact evaluation share
  /// of the batch, and Seconds - EvalSeconds is the walk/emission share.
  /// The shard merge sums it across manifests.
  double EvalSeconds = 0.0;

  /// Order-sensitive combination of the per-shot sequence hashes; equal
  /// batches (same strategy, seed, shot count) have equal hashes no matter
  /// how many workers ran them.
  uint64_t batchHash() const;

  /// Recomputes the aggregate summaries (CNOTs/Singles/Totals/Samples and
  /// the cancelled-gate totals) from Shots. compileBatch and the shard
  /// merge both run this exact sequential pass, which is what makes a
  /// merged K-shard batch bit-identical to the single-process one down to
  /// the floating-point statistics.
  void recomputeAggregates();
};

/// Compiles single shots and deterministic parallel batches. Stateless;
/// cheap to construct wherever needed.
class CompilerEngine {
public:
  /// Compiles one shot with the substream RNG::forShot(Seed, 0) —
  /// identical to shot 0 of a batch with the same seed.
  CompilationResult compileOne(const ScheduleStrategy &Strategy,
                               uint64_t Seed,
                               const CompilationOptions &Opts = {}) const;

  /// Compiles Req.NumShots independent shots across Req.Jobs workers.
  BatchResult compileBatch(const BatchRequest &Req) const;
};

} // namespace marqsim

#endif // MARQSIM_CORE_COMPILERENGINE_H
