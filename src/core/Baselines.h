//===- core/Baselines.h - Deterministic & randomized Trotter ----*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation families MarQSim is positioned against (paper Section 3):
///
///   * First-order Trotter with a fixed term order per step, repeated
///     t/Delta-t times (Section 3.1) — orders include the input order,
///     lexicographic, magnitude-descending, and the greedy max-matching
///     order in the spirit of Gui et al. [22].
///   * Second-order (symmetrized) Trotter.
///   * Randomized-order Trotter (Childs et al. [9]): a fresh random
///     permutation per step (Section 3.2).
///
/// All of them produce schedules lowered by the same cancellation-aware
/// emitter, so gate-count comparisons isolate the *ordering* effect.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_BASELINES_H
#define MARQSIM_CORE_BASELINES_H

#include "core/Compiler.h"

namespace marqsim {

/// Term orderings for deterministic Trotter compilation.
enum class TermOrderKind {
  /// Order as listed in the Hamiltonian.
  Given,
  /// Sort by Pauli string (lexical ordering of [26]/[22] flavour).
  Lexicographic,
  /// Sort by descending |h_j|.
  MagnitudeDescending,
  /// Greedy chain maximizing matched operators between neighbours
  /// (travelling-salesperson-style heuristic of [22]).
  GreedyMatched,
};

/// Computes the term visiting order for \p Kind.
std::vector<size_t> orderTerms(const Hamiltonian &H, TermOrderKind Kind);

/// First-order Trotter: \p Reps repetitions of the fixed order; each visit
/// of term j applies exp(i h_j (T / Reps) H_j).
CompilationResult compileTrotter1(const Hamiltonian &H, double T,
                                  unsigned Reps, TermOrderKind Kind,
                                  const CompilationOptions &Opts = {});

/// Second-order Trotter: per repetition, the order at half angles followed
/// by its reverse at half angles.
CompilationResult compileTrotter2(const Hamiltonian &H, double T,
                                  unsigned Reps, TermOrderKind Kind,
                                  const CompilationOptions &Opts = {});

/// Fourth-order Suzuki-Trotter [Suzuki 1990]: the recursive composition
///   S4(dt) = S2(p dt)^2 S2((1-4p) dt) S2(p dt)^2,  p = 1/(4 - 4^{1/3}),
/// of second-order steps. The paper positions qDrift against high-order
/// product formulas; this is the standard representative.
CompilationResult compileSuzuki4(const Hamiltonian &H, double T,
                                 unsigned Reps, TermOrderKind Kind,
                                 const CompilationOptions &Opts = {});

/// Randomized-order Trotter [9]: an independent uniform permutation per
/// repetition.
CompilationResult compileRandomOrderTrotter(const Hamiltonian &H, double T,
                                            unsigned Reps, RNG &Rng,
                                            const CompilationOptions &Opts =
                                                {});

/// SparSto-style stochastic sparsification [51] (Section 3.2): per
/// repetition, each term is kept independently with probability
///   q_j = min(1, KeepScale * |h_j| / max|h|),
/// its coefficient rescaled by 1/q_j to keep the step unbiased, and the
/// surviving terms are randomly ordered. KeepScale = 1 keeps only the
/// heaviest term surely; larger values sparsify less.
CompilationResult compileSparSto(const Hamiltonian &H, double T,
                                 unsigned Reps, double KeepScale, RNG &Rng,
                                 const CompilationOptions &Opts = {});

} // namespace marqsim

#endif // MARQSIM_CORE_BASELINES_H
