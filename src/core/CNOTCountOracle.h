//===- core/CNOTCountOracle.h - Pairwise CNOT cost oracle -------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical oracle CNOT_count(H_i, H_j) of Algorithm 2: the number of
/// CNOT gates remaining between the Rz of snippet i and the Rz of snippet j
/// after cross-snippet gate cancellation in the style of Gui et al. [22].
///
/// Model (documented in DESIGN.md and validated against the emitter and the
/// generic peephole pass in the tests): each snippet of weight k carries
/// k - 1 ladder CNOTs on each side of its Rz. Let M be the set of qubits on
/// which both strings apply the *same* non-identity operator. If M is
/// non-empty, the shared root can be placed inside M; the basis-change
/// layers of all matched qubits cancel, and the ladder CNOTs of the other
/// |M| - 1 matched qubits annihilate pairwise:
///
///   CNOT_count(i, j) = (k_i - 1) + (k_j - 1) - 2 * max(|M| - 1, 0)
///
/// Identical strings merge their rotations outright (cost 0, paper
/// Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CORE_CNOTCOUNTORACLE_H
#define MARQSIM_CORE_CNOTCOUNTORACLE_H

#include "markov/TransitionMatrix.h"
#include "pauli/Hamiltonian.h"

namespace marqsim {

/// CNOT gates between the Rz of \p Prev and the Rz of \p Next after
/// pairwise cancellation.
unsigned cnotCountBetween(const PauliString &Prev, const PauliString &Next);

/// Dense n x n cost table C(i,j) = cnotCountBetween(term_i, term_j).
std::vector<std::vector<unsigned>> cnotCostTable(const Hamiltonian &H);

/// Expected per-transition CNOT cost of sampling with matrix \p P at its
/// stationary distribution \p Pi:  sum_ij pi_i p_ij CNOT_count(i, j).
/// By Proposition 5.1 this equals the optimal MCFP objective when P = Pgc.
double expectedTransitionCNOTs(const Hamiltonian &H,
                               const TransitionMatrix &P,
                               const std::vector<double> &Pi);

} // namespace marqsim

#endif // MARQSIM_CORE_CNOTCOUNTORACLE_H
