//===- service/TaskSpec.h - Declarative simulation task specs ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative front-end of the SimulationService: callers describe
/// *what* they want — which Hamiltonian (file, registry model, or inline),
/// which channel mix (qDrift / gate-cancellation / random-perturbation
/// weights), which precision budget or Trotter schedule, how many shots on
/// how many workers, and what to evaluate (fidelity columns, QASM export,
/// DOT dump) — and the service decides *how*: every deterministic artifact
/// on the way (MCFP solutions, HTT graphs, alias tables, fidelity targets)
/// is resolved through content-hash-keyed caches.
///
/// TaskSpec replaces the hand-assembled five-stage pipeline (prepare ->
/// makeConfigMatrix -> HTTGraph -> strategy -> BatchRequest) that every
/// entry point used to repeat.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVICE_TASKSPEC_H
#define MARQSIM_SERVICE_TASKSPEC_H

#include "core/Baselines.h"
#include "core/Compiler.h"
#include "core/TransitionBuilders.h"
#include "pauli/Hamiltonian.h"
#include "sim/NoiseModel.h"
#include "sim/Precision.h"
#include "support/CommandLine.h"
#include "support/Json.h"

#include <optional>
#include <string>

namespace marqsim {

namespace detail {
/// Shared error-reporting shape of the service layer: fills the optional
/// out-parameter and returns false so call sites read
/// `return detail::fail(Error, "...")`.
inline bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}
} // namespace detail

/// The convex combination of transition channels (paper Section 6.1):
/// WQd * Pqd + WGc * Pgc + WRp * Prp. This is the one shared home of the
/// preset table and the normalization rule that used to be copy-pasted
/// between marqsim-cli and BenchCommon.
struct ChannelMix {
  double WQd = 0.4;
  double WGc = 0.6;
  double WRp = 0.0;

  /// The named presets: "baseline" (pure qDrift), "gc" (0.4/0.6),
  /// "gc-rp" (0.4/0.3/0.3). Returns std::nullopt for unknown names.
  static std::optional<ChannelMix> preset(const std::string &Name);

  double sum() const { return WQd + WGc + WRp; }

  /// Scales the weights to sum to 1. Returns false (leaving the mix
  /// untouched) when the weights are negative or sum to <= 0.
  bool normalize();
};

/// Applies the CLI channel-mix convention shared by the tools and the
/// bench harnesses: --config=NAME selects a preset, and any of
/// --qd/--gc/--rp overrides the weights (renormalized). Returns
/// std::nullopt and fills \p Error on unknown presets or non-positive
/// override sums.
std::optional<ChannelMix> parseChannelMix(const CommandLine &CL,
                                          std::string *Error = nullptr);

/// Where a task's Hamiltonian comes from.
struct HamiltonianSource {
  enum class Kind { File, Model, Inline };
  Kind SourceKind = Kind::Inline;

  /// Text-format file path (Kind::File).
  std::string Path;

  /// Registry benchmark name, e.g. "Na+" (Kind::Model).
  std::string Model;

  /// The operator itself (Kind::Inline).
  Hamiltonian Ham;

  static HamiltonianSource fromFile(std::string Path) {
    HamiltonianSource S;
    S.SourceKind = Kind::File;
    S.Path = std::move(Path);
    return S;
  }
  static HamiltonianSource fromModel(std::string Name) {
    HamiltonianSource S;
    S.SourceKind = Kind::Model;
    S.Model = std::move(Name);
    return S;
  }
  static HamiltonianSource fromHamiltonian(Hamiltonian H) {
    HamiltonianSource S;
    S.SourceKind = Kind::Inline;
    S.Ham = std::move(H);
    return S;
  }
};

/// A contiguous sub-range of a batch's global shot indices
/// [Begin, Begin + Count). Shot seeding is global (shot k always draws
/// from RNG::forShot(Seed, k)), so compiling a range in one process and
/// the complement elsewhere reproduces the full batch bit for bit.
struct ShotRange {
  size_t Begin = 0;
  size_t Count = 0;

  size_t end() const { return Begin + Count; }
  bool contains(size_t Shot) const { return Shot >= Begin && Shot < end(); }
};

/// Which schedule-producing policy compiles the task.
enum class TaskMethod {
  /// Algorithm 1: Markov-chain sampling over the HTT graph with the
  /// channel mix; budget N = ceil(2 lambda^2 t^2 / epsilon).
  Sampling,
  /// Deterministic product formula (orders 1/2/4) over TrotterReps steps.
  Trotter,
  /// Randomized-order Trotter [Childs et al.].
  RandomOrderTrotter,
  /// SparSto stochastic sparsification.
  SparSto,
};

/// What to compute alongside the batch itself.
struct EvaluateSpec {
  /// Fidelity estimation columns; 0 disables fidelity. When > 0 the
  /// service resolves a FidelityEvaluator through its cache and evaluates
  /// every shot *inside the batch workers* (the PerShot hook), so --jobs
  /// parallelism covers fidelity too.
  size_t FidelityColumns = 0;

  /// Column-choice seed of the fidelity evaluator (part of its cache key).
  uint64_t ColumnSeed = 7;

  /// Retain shot 0's full CompilationResult in TaskResult::ShotZero
  /// (QASM export, observable evolution, schedule inspection).
  bool ExportShotZero = false;

  /// Render the HTT graph as Graphviz DOT into TaskResult::GraphDot
  /// (sampling tasks only).
  bool DumpDot = false;

  /// Retain every shot's CompilationResult (BatchResult::Results).
  bool KeepResults = false;
};

/// A complete declarative description of one simulation workload.
struct TaskSpec {
  HamiltonianSource Source;

  /// Channel mix for TaskMethod::Sampling.
  ChannelMix Mix;

  /// Prp perturbation rounds (used only when Mix.WRp > 0).
  unsigned PerturbRounds = 8;

  /// Seed of the Prp cost perturbations. Deliberately decoupled from the
  /// sampling Seed so sweeping shot seeds never invalidates cached
  /// matrices.
  uint64_t PerturbSeed = 0x5EED;

  /// MCFP encoding options (part of every matrix cache key).
  MCFPOptions Flow;

  TaskMethod Method = TaskMethod::Sampling;

  /// Evolution time (all methods).
  double Time = 1.0;

  /// Target precision (TaskMethod::Sampling).
  double Epsilon = 0.05;

  /// Use the O(log n) CDF sampler instead of alias tables (ablation).
  bool UseCDF = false;

  /// Trotter-family parameters.
  unsigned TrotterReps = 4;
  unsigned TrotterOrder = 1;
  TermOrderKind Order = TermOrderKind::Given;

  /// SparSto keep-probability scale.
  double SparStoKeepScale = 1.5;

  /// Batch shape.
  size_t Shots = 1;
  unsigned Jobs = 1;
  uint64_t Seed = 1;

  /// Within-shot evaluation workers: each shot's fidelity evaluation fans
  /// its fixed-width column blocks across this many threads (0 = all
  /// cores). Complements Jobs — cross-shot parallelism saturates first,
  /// EvalJobs soaks up the rest when shots are few and columns are many.
  /// Like Jobs it never changes a bit of output, so it is excluded from
  /// contentKey.
  unsigned EvalJobs = 1;

  /// Which panel tier evaluates fidelity. FP64 (the default) is the
  /// bit-exact contract; FP32 is the opt-in throughput tier, rejected
  /// wherever a bit-exact artifact is demanded (shard runs) and mixed
  /// into contentKey only when selected, so every existing FP64 cache
  /// key is untouched.
  EvalPrecision Precision = EvalPrecision::FP64;

  /// Per-gate noise channel (sim/NoiseModel.h). Default-inert: a disabled
  /// spec leaves contentKey, manifests, and JSON frames exactly as they
  /// were before the noisy tier existed. Noise only affects fidelity
  /// evaluation (the compiled circuit is the noiseless program; noise
  /// models its execution), so an enabled spec requires FidelityColumns.
  NoiseSpec Noise;

  /// Lowering options applied to every shot.
  CompilationOptions Lowering;

  EvaluateSpec Evaluate;

  /// Structural validation (positive time/epsilon/shots, normalizable
  /// mix, supported Trotter order). Returns false and fills \p Error on
  /// violations. run() validates implicitly.
  bool validate(std::string *Error = nullptr) const;

  /// Content hash of every knob that shapes the compiled bits beyond the
  /// Hamiltonian itself: method, mix weights, flow options, perturbation
  /// rounds/seed, time, epsilon, sampler kind, Trotter parameters,
  /// lowering, and fidelity evaluation. Excludes the source (the
  /// Hamiltonian fingerprint covers it), Shots and Seed (shard manifests
  /// check those explicitly), and Jobs (no effect on results). Two specs
  /// with equal fingerprint, seed, shot count, and contentKey produce
  /// bit-identical batches.
  uint64_t contentKey() const;

  /// Parses the common CLI surface into a spec: positional Hamiltonian
  /// file or --model=NAME, --time/--epsilon, --config + --qd/--gc/--rp,
  /// --rounds/--perturb-seed, --seed/--shots/--jobs/--eval-jobs,
  /// --columns (fidelity), --precision (fp64/fp32),
  /// --noise/--noise-prob/--noise-2q-factor/--noise-mode, --cdf. Rejects
  /// negative counts/seeds, non-positive or non-finite time/epsilon,
  /// out-of-range noise probabilities, and unknown precision/channel/mode
  /// names.
  static std::optional<TaskSpec> fromCommandLine(const CommandLine &CL,
                                                 std::string *Error = nullptr);

  /// Serializes the spec as a self-contained "marqsim-spec-v1" JSON
  /// object: the Hamiltonian source is resolved *here* (file read, model
  /// lookup) and shipped as raw inline terms, so the receiving side needs
  /// no filesystem or registry access and both sides canonicalize the
  /// identical operator at run time. Every double and 64-bit seed travels
  /// as a 16-digit IEEE-754/word hex string (support/Serial.h), so
  /// fingerprint() and contentKey() survive transport bit for bit.
  /// Returns std::nullopt and fills \p Error when the source cannot be
  /// resolved (missing file, unknown model).
  std::optional<json::Value> toJson(std::string *Error = nullptr) const;

  /// Inverse of toJson. Strict: unknown versions, missing fields, bad hex
  /// widths, and malformed Pauli strings are rejected with \p Error. The
  /// round trip preserves contentKey() and the resolved Hamiltonian's
  /// fingerprint() exactly.
  static std::optional<TaskSpec> fromJson(const json::Value &V,
                                          std::string *Error = nullptr);
};

} // namespace marqsim

#endif // MARQSIM_SERVICE_TASKSPEC_H
