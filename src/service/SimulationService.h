//===- service/SimulationService.h - Cached simulation front-end *- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public front door of the repository: SimulationService turns a
/// declarative TaskSpec into a TaskResult, resolving every expensive
/// deterministic artifact through content-hash-keyed caches.
///
/// MarQSim's pipeline separates cleanly into a deterministic prefix
/// (Hamiltonian canonicalization, the gate-cancellation and perturbation
/// MCFP solves, the HTT graph and its alias tables, the exact fidelity
/// target columns) and a randomized suffix (the per-shot Markov walks).
/// Everything in the prefix is a pure function of its inputs, so the
/// service keys it by Hamiltonian::fingerprint() plus the relevant knobs:
///
///   artifact            | key
///   --------------------+--------------------------------------------------
///   Pgc  (MCFP solve)   | (fingerprint, MCFPOptions)
///   Prp  (MCFP rounds)  | (fingerprint, MCFPOptions, rounds, perturb seed)
///   graph+alias tables  | (fingerprint, mix weights, rounds, perturb seed,
///                       |  MCFPOptions, sampler kind)
///   FidelityEvaluator   | (fingerprint, time, columns, column seed)
///
/// A ratio sweep over N channel mixes therefore performs exactly one
/// gate-cancellation MCFP solve per (Hamiltonian, MCFPOptions) — the
/// combination step is the only per-mix work. Every artifact type —
/// component matrices, combined alias-bundle matrices, and fidelity target
/// columns — can additionally persist to a directory
/// (ServiceOptions::CacheDir), so the amortization carries across CLI
/// invocations and processes.
///
/// All caching goes through one tiered ArtifactStore (store/ArtifactStore.h):
/// a size-accounted in-memory LRU (ServiceOptions::CacheLimitBytes) over
/// the optional disk tier, with store-level single-flight — the service
/// itself holds no per-type cache maps.
///
/// Fidelity is evaluated inside the batch workers through the PerShot
/// hook: the evaluator is immutable after construction, so TaskSpec::Jobs
/// parallelism covers evaluation too, and per-shot fidelities stay
/// bit-identical for every job count.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SERVICE_SIMULATIONSERVICE_H
#define MARQSIM_SERVICE_SIMULATIONSERVICE_H

#include "core/CompilerEngine.h"
#include "service/TaskSpec.h"
#include "sim/Fidelity.h"
#include "store/ArtifactStore.h"

#include <memory>
#include <optional>
#include <string>

namespace marqsim {

/// Hit/miss accounting of the service caches. "Hits" include entries
/// computed once and reused by a concurrent caller (the second caller
/// blocks on the in-flight computation instead of duplicating it) and
/// artifacts loaded from the on-disk store. A disk-loaded alias bundle
/// also counts as a hit for the MCFP components it transitively avoids
/// resolving — the solve was skipped thanks to the cache either way.
struct CacheStats {
  /// Gate-cancellation MCFP solves avoided / performed.
  size_t GCSolveHits = 0;
  size_t GCSolveMisses = 0;

  /// Random-perturbation MCFP rounds avoided / performed.
  size_t RPSolveHits = 0;
  size_t RPSolveMisses = 0;

  /// HTT graph + alias-table bundles reused / built.
  size_t GraphHits = 0;
  size_t GraphMisses = 0;

  /// Fidelity evaluators reused / built.
  size_t EvaluatorHits = 0;
  size_t EvaluatorMisses = 0;

  /// Noisy-schedule superoperators reused / composed (density oracle).
  size_t SuperHits = 0;
  size_t SuperMisses = 0;

  /// Artifacts satisfied from the on-disk store (also counted in the
  /// corresponding *Hits above).
  size_t DiskLoads = 0;

  /// Total MCFP-level accounting (the ROADMAP's "cache min-cost-flow
  /// solutions" item).
  size_t matrixHits() const { return GCSolveHits + RPSolveHits; }
  size_t matrixMisses() const { return GCSolveMisses + RPSolveMisses; }

  CacheStats &operator+=(const CacheStats &O);
};

/// Everything a task produces: the batch itself, the in-worker fidelity
/// summary, optional retained artifacts, and the run's cache accounting.
struct TaskResult {
  /// Content hash of the canonicalized Hamiltonian the task compiled.
  uint64_t Fingerprint = 0;

  /// Per-shot sampling budget N (TaskMethod::Sampling; 0 otherwise).
  size_t NumSamples = 0;

  BatchResult Batch;

  /// Per-shot fidelities in shot order (Evaluate.FidelityColumns > 0).
  bool HasFidelity = false;
  std::vector<double> ShotFidelities;
  SummaryStat Fidelity;

  /// Shot 0's full result (Evaluate.ExportShotZero).
  bool HasShotZero = false;
  CompilationResult ShotZero;

  /// Graphviz rendering of the HTT graph (Evaluate.DumpDot, sampling).
  std::string GraphDot;

  /// Cache hits/misses incurred by this task alone.
  CacheStats Stats;
};

/// Service-level configuration.
struct ServiceOptions {
  /// Directory for the persistent artifact store (component matrices,
  /// alias bundles, fidelity columns); empty keeps caching in-memory
  /// only. Created on demand. Entry points should pre-validate with
  /// ArtifactStore::validateCacheDir so a bad path fails loudly instead
  /// of silently running uncached.
  std::string CacheDir;

  /// In-memory cache budget in bytes; 0 means unbounded. Artifacts are
  /// charged their actual footprint and evicted least-recently-used;
  /// eviction never changes results (artifacts are pure content
  /// functions, recomputed or disk-reloaded bit-identically).
  size_t CacheLimitBytes = 0;
};

/// One deterministic artifact in transport form: its content-hash key and
/// the codec-encoded text body (exact IEEE-754 hex, the same bytes the
/// disk tier frames with a checksum). This is what travels in the fleet
/// protocol's artifact-put frames.
struct TaskArtifact {
  ArtifactKey Key;
  std::string Body;
};

/// What importArtifact did with a received body.
enum class ArtifactImport {
  Inserted, ///< decoded, validated, and cached
  Present,  ///< the store already had the key (a fetch hit)
};

/// The declarative, cached front-end over CompilerEngine. Thread-safe:
/// concurrent run() calls share the caches without duplicating solves
/// (a key being computed blocks other requesters for that key only).
class SimulationService {
public:
  explicit SimulationService(ServiceOptions Opts = {});
  ~SimulationService();

  SimulationService(const SimulationService &) = delete;
  SimulationService &operator=(const SimulationService &) = delete;

  /// Runs one task. Returns std::nullopt and fills \p Error on invalid
  /// specs, unreadable sources, or transition matrices that fail the
  /// Theorem 4.1 validation.
  std::optional<TaskResult> run(const TaskSpec &Spec,
                                std::string *Error = nullptr);

  /// Runs the contiguous shot sub-range [Range.Begin, Range.end()) of
  /// \p Spec's batch. Shots keep their *global* indices — shot k draws
  /// from RNG::forShot(Seed, k) no matter which range compiles it — so
  /// concatenating the results of a partition of [0, Shots) reproduces
  /// run(Spec) bit for bit. This is the worker-side entry point of the
  /// cross-process sharding layer (shard/ShardCoordinator). The range
  /// must be non-empty and end within Spec.Shots; Evaluate.ExportShotZero
  /// is honored only by the range containing global shot 0, and
  /// TaskResult vectors (ShotFidelities, Batch.Shots) are indexed
  /// relative to Range.Begin.
  std::optional<TaskResult> run(const TaskSpec &Spec, const ShotRange &Range,
                                std::string *Error = nullptr);

  /// Resolves just the HTT graph of a sampling spec through the caches
  /// (spectrum inspection, DOT dumps) without compiling anything.
  std::shared_ptr<const HTTGraph> graphFor(const TaskSpec &Spec,
                                           std::string *Error = nullptr);

  /// Canonicalizes a Hamiltonian exactly as run() does before compiling:
  /// merge duplicate terms (sorting into canonical order) and split
  /// oversized stationary weights. Callers cross-checking service output
  /// against direct engine/evaluator calls must use this form.
  static Hamiltonian prepare(const Hamiltonian &Raw);

  /// Resolves a source to the Hamiltonian run() compiles. Sampling tasks
  /// use the canonical form (\p Canonicalize, the default); the Trotter
  /// family compiles the operator exactly as given, preserving
  /// TermOrderKind::Given semantics (the canonical merge/split exists
  /// only to satisfy the sampling path's MCFP precondition). Static: the
  /// resolution is a pure function of the source, no caches involved.
  static std::optional<Hamiltonian>
  resolveHamiltonian(const HamiltonianSource &S, std::string *Error = nullptr,
                     bool Canonicalize = true);

  /// Resolves every deterministic artifact of \p Spec through the store
  /// without compiling any shot: the alias bundle (with its MCFP
  /// components) for sampling specs, and the fidelity target columns when
  /// Evaluate.FidelityColumns > 0. With a CacheDir configured this
  /// persists all artifact types, so e.g. a shard coordinator can warm
  /// the store once and have every worker hit disk instead of solving.
  /// Returns false on invalid specs or Theorem 4.1 validation failures.
  bool prewarm(const TaskSpec &Spec, std::string *Error = nullptr);

  /// Resolves and encodes every transportable deterministic artifact of
  /// \p Spec: the alias bundle of a flow-backed sampling mix (which
  /// short-circuits the MCFP component solves on the receiving side) and
  /// the fidelity target columns when Evaluate.FidelityColumns > 0.
  /// Artifacts the spec does not need — or that are cheaper to rebuild
  /// than to ship (pure-qDrift matrices) — are simply absent from the
  /// list. Resolution goes through the normal caches, so a prewarmed
  /// service exports without recomputing anything. Returns std::nullopt
  /// on invalid specs or Theorem 4.1 validation failures.
  std::optional<std::vector<TaskArtifact>>
  exportArtifacts(const TaskSpec &Spec, std::string *Error = nullptr);

  /// Encodes the already-resolved artifact of \p Key, or std::nullopt
  /// when this service holds nothing for it (never computes — the serving
  /// side of artifact-get answers "not-found" instead of doing work a
  /// client could farm out for free). Checks the memory tier first, then
  /// the disk tier's raw body.
  std::optional<std::string> exportArtifactBody(const ArtifactKey &Key);

  /// Decodes \p Body and injects it under \p Key — the receiving side of
  /// artifact-put. \p Spec supplies the decode context (Hamiltonian
  /// dimensions, column counts) and is also the authorization: a key that
  /// is not one \p Spec would itself resolve is rejected, so a client
  /// cannot seed the cache with mismatched contexts. Returns std::nullopt
  /// with \p Error on unknown keys or undecodable bodies.
  std::optional<ArtifactImport> importArtifact(const TaskSpec &Spec,
                                               const ArtifactKey &Key,
                                               const std::string &Body,
                                               std::string *Error = nullptr);

  /// Cumulative cache accounting across every task this service ran.
  CacheStats stats() const;

  /// Store-level accounting: tier hits, evictions, byte charges.
  ArtifactStore::Stats storeStats() const;

  /// The kernel tier the evaluation substrate dispatched to ("avx512",
  /// "avx2-fma", "neon", or "scalar") — the self-describing sibling of
  /// storeStats, reported alongside the precision tier by the CLI's
  /// --stats.
  static const char *kernelName();

  /// The best tier the CPU supports, ignoring MARQSIM_KERNEL_TIER /
  /// MARQSIM_FORCE_SCALAR — reported next to kernelName so a pinned
  /// process is visible in every stats surface.
  static const char *detectedKernelName();

  /// Whether the OS exposes the full AVX-512 register state (always false
  /// off x86-64); distinguishes "CPU lacks AVX-512" from "OS state off"
  /// in the dispatch report.
  static bool avx512OsEnabled();

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

} // namespace marqsim

#endif // MARQSIM_SERVICE_SIMULATIONSERVICE_H
