//===- service/TaskSpec.cpp - Declarative simulation task specs --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/TaskSpec.h"

#include "support/Serial.h"

using namespace marqsim;

//===----------------------------------------------------------------------===//
// ChannelMix
//===----------------------------------------------------------------------===//

std::optional<ChannelMix> ChannelMix::preset(const std::string &Name) {
  if (Name == "baseline")
    return ChannelMix{1.0, 0.0, 0.0};
  if (Name == "gc")
    return ChannelMix{0.4, 0.6, 0.0};
  if (Name == "gc-rp")
    return ChannelMix{0.4, 0.3, 0.3};
  return std::nullopt;
}

bool ChannelMix::normalize() {
  if (WQd < 0.0 || WGc < 0.0 || WRp < 0.0)
    return false;
  double Sum = sum();
  if (Sum <= 0.0)
    return false;
  WQd /= Sum;
  WGc /= Sum;
  WRp /= Sum;
  return true;
}

std::optional<ChannelMix>
marqsim::parseChannelMix(const CommandLine &CL, std::string *Error) {
  std::string Name = CL.getString("config", "gc");
  std::optional<ChannelMix> Mix = ChannelMix::preset(Name);
  if (!Mix) {
    detail::fail(Error, "unknown config '" + Name + "'");
    return std::nullopt;
  }
  if (CL.has("qd") || CL.has("gc") || CL.has("rp")) {
    Mix->WQd = CL.getDouble("qd", 0.0);
    Mix->WGc = CL.getDouble("gc", 0.0);
    Mix->WRp = CL.getDouble("rp", 0.0);
    if (!Mix->normalize()) {
      detail::fail(Error, "configuration weights must be non-negative with a "
                  "positive sum");
      return std::nullopt;
    }
  }
  return Mix;
}

//===----------------------------------------------------------------------===//
// TaskSpec
//===----------------------------------------------------------------------===//

bool TaskSpec::validate(std::string *Error) const {
  if (Shots < 1)
    return detail::fail(Error, "a task needs at least one shot");
  if (Time <= 0.0)
    return detail::fail(Error, "evolution time must be positive");
  switch (Method) {
  case TaskMethod::Sampling: {
    if (Epsilon <= 0.0)
      return detail::fail(Error, "target precision epsilon must be positive");
    ChannelMix Copy = Mix;
    if (!Copy.normalize())
      return detail::fail(Error, "channel weights must be non-negative with a "
                         "positive sum");
    if (Copy.WRp > 0.0 && PerturbRounds < 1)
      return detail::fail(Error, "a positive Prp weight needs at least one "
                         "perturbation round");
    break;
  }
  case TaskMethod::Trotter:
    if (TrotterOrder != 1 && TrotterOrder != 2 && TrotterOrder != 4)
      return detail::fail(Error, "supported Trotter orders: 1, 2, 4");
    [[fallthrough]];
  case TaskMethod::RandomOrderTrotter:
  case TaskMethod::SparSto:
    if (TrotterReps < 1)
      return detail::fail(Error, "Trotter-family methods need at least one "
                         "repetition");
    if (Method == TaskMethod::SparSto && SparStoKeepScale <= 0.0)
      return detail::fail(Error, "SparSto keep scale must be positive");
    break;
  }
  return true;
}

uint64_t TaskSpec::contentKey() const {
  using namespace serial;
  uint64_t H = FNVOffset;
  H = fnv1aWord(static_cast<uint64_t>(Method), H);
  H = fnv1aWord(doubleBits(Time), H);
  H = fnv1aWord(Lowering.Emit.CrossCancellation ? 1 : 0, H);
  H = fnv1aWord(Lowering.UseCDFSampler ? 1 : 0, H);
  H = fnv1aWord(Evaluate.FidelityColumns, H);
  H = fnv1aWord(Evaluate.ColumnSeed, H);
  // The precision tier participates only when it deviates from the FP64
  // default: fp32 fidelities are different bits, but folding a constant
  // for fp64 would shift every cache key minted before the tier existed.
  if (Precision != EvalPrecision::FP64)
    H = fnv1aWord(static_cast<uint64_t>(Precision), H);
  // Only the active method's knobs participate: an unused TrotterReps on
  // a sampling task cannot change its bits, so it must not change its key.
  switch (Method) {
  case TaskMethod::Sampling:
    H = fnv1aWord(doubleBits(Mix.WQd), H);
    H = fnv1aWord(doubleBits(Mix.WGc), H);
    H = fnv1aWord(doubleBits(Mix.WRp), H);
    H = fnv1aWord(PerturbRounds, H);
    H = fnv1aWord(PerturbSeed, H);
    H = fnv1aWord(static_cast<uint64_t>(Flow.ProbScale), H);
    H = fnv1aWord(static_cast<uint64_t>(Flow.CostScale), H);
    H = fnv1aWord(doubleBits(Epsilon), H);
    H = fnv1aWord(UseCDF ? 1 : 0, H);
    break;
  case TaskMethod::Trotter:
    H = fnv1aWord(TrotterReps, H);
    H = fnv1aWord(TrotterOrder, H);
    H = fnv1aWord(static_cast<uint64_t>(Order), H);
    break;
  case TaskMethod::RandomOrderTrotter:
    H = fnv1aWord(TrotterReps, H);
    break;
  case TaskMethod::SparSto:
    H = fnv1aWord(TrotterReps, H);
    H = fnv1aWord(doubleBits(SparStoKeepScale), H);
    break;
  }
  return H;
}

std::optional<TaskSpec> TaskSpec::fromCommandLine(const CommandLine &CL,
                                                  std::string *Error) {
  TaskSpec Spec;

  // Hamiltonian source: one positional file path or --model=NAME.
  if (CL.has("model")) {
    if (!CL.positionals().empty()) {
      detail::fail(Error, "give either a Hamiltonian file or --model, not both");
      return std::nullopt;
    }
    Spec.Source = HamiltonianSource::fromModel(CL.getString("model"));
  } else if (CL.positionals().size() == 1) {
    Spec.Source = HamiltonianSource::fromFile(CL.positionals()[0]);
  } else {
    detail::fail(Error, "expected exactly one Hamiltonian file (or --model=NAME)");
    return std::nullopt;
  }

  std::optional<ChannelMix> Mix = parseChannelMix(CL, Error);
  if (!Mix)
    return std::nullopt;
  Spec.Mix = *Mix;

  Spec.Time = CL.getDouble("time", Spec.Time);
  if (Spec.Time <= 0.0) {
    detail::fail(Error, "--time must be positive");
    return std::nullopt;
  }
  Spec.Epsilon = CL.getDouble("epsilon", Spec.Epsilon);
  if (Spec.Epsilon <= 0.0) {
    detail::fail(Error, "--epsilon must be positive");
    return std::nullopt;
  }

  // Integer flags: every count/seed is parsed signed and range-checked
  // before the unsigned narrowing (a bare cast would turn --rounds=-3
  // into ~4 billion perturbation rounds).
  int64_t Rounds = CL.getInt("rounds", Spec.PerturbRounds);
  if (Rounds < 0) {
    detail::fail(Error, "--rounds must be non-negative");
    return std::nullopt;
  }
  Spec.PerturbRounds = static_cast<unsigned>(Rounds);

  int64_t Seed = CL.getInt("seed", static_cast<int64_t>(Spec.Seed));
  if (Seed < 0) {
    detail::fail(Error, "--seed must be non-negative");
    return std::nullopt;
  }
  Spec.Seed = static_cast<uint64_t>(Seed);

  int64_t PerturbSeed =
      CL.getInt("perturb-seed", static_cast<int64_t>(Spec.PerturbSeed));
  if (PerturbSeed < 0) {
    detail::fail(Error, "--perturb-seed must be non-negative");
    return std::nullopt;
  }
  Spec.PerturbSeed = static_cast<uint64_t>(PerturbSeed);

  int64_t Shots = CL.getInt("shots", 1);
  if (Shots < 1) {
    detail::fail(Error, "--shots must be at least 1");
    return std::nullopt;
  }
  Spec.Shots = static_cast<size_t>(Shots);

  int64_t Jobs = CL.getInt("jobs", 1);
  if (Jobs < 0) {
    detail::fail(Error, "--jobs must be non-negative (0 = all cores)");
    return std::nullopt;
  }
  Spec.Jobs = static_cast<unsigned>(Jobs);

  int64_t EvalJobs = CL.getInt("eval-jobs", 1);
  if (EvalJobs < 0) {
    detail::fail(Error, "--eval-jobs must be non-negative (0 = all cores)");
    return std::nullopt;
  }
  Spec.EvalJobs = static_cast<unsigned>(EvalJobs);

  int64_t Columns = CL.getInt("columns", 0);
  if (Columns < 0) {
    detail::fail(Error, "--columns must be non-negative");
    return std::nullopt;
  }
  Spec.Evaluate.FidelityColumns = static_cast<size_t>(Columns);

  const std::string PrecName = CL.getString("precision", "fp64");
  std::optional<EvalPrecision> Prec = parsePrecision(PrecName);
  if (!Prec) {
    detail::fail(Error, "--precision must be fp64 or fp32 (got '" + PrecName +
                            "')");
    return std::nullopt;
  }
  Spec.Precision = *Prec;

  Spec.UseCDF = CL.getBool("cdf");
  return Spec;
}
