//===- service/TaskSpec.cpp - Declarative simulation task specs --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/TaskSpec.h"

#include "service/SimulationService.h"
#include "support/Serial.h"

#include <cmath>

using namespace marqsim;

//===----------------------------------------------------------------------===//
// ChannelMix
//===----------------------------------------------------------------------===//

std::optional<ChannelMix> ChannelMix::preset(const std::string &Name) {
  if (Name == "baseline")
    return ChannelMix{1.0, 0.0, 0.0};
  if (Name == "gc")
    return ChannelMix{0.4, 0.6, 0.0};
  if (Name == "gc-rp")
    return ChannelMix{0.4, 0.3, 0.3};
  return std::nullopt;
}

bool ChannelMix::normalize() {
  // The negated comparisons also reject NaN weights (NaN < 0.0 is false,
  // so the old form waved them straight through to the samplers).
  if (!(WQd >= 0.0) || !(WGc >= 0.0) || !(WRp >= 0.0))
    return false;
  double Sum = sum();
  if (!(Sum > 0.0) || !std::isfinite(Sum))
    return false;
  WQd /= Sum;
  WGc /= Sum;
  WRp /= Sum;
  return true;
}

std::optional<ChannelMix>
marqsim::parseChannelMix(const CommandLine &CL, std::string *Error) {
  std::string Name = CL.getString("config", "gc");
  std::optional<ChannelMix> Mix = ChannelMix::preset(Name);
  if (!Mix) {
    detail::fail(Error, "unknown config '" + Name + "'");
    return std::nullopt;
  }
  if (CL.has("qd") || CL.has("gc") || CL.has("rp")) {
    Mix->WQd = CL.getDouble("qd", 0.0);
    Mix->WGc = CL.getDouble("gc", 0.0);
    Mix->WRp = CL.getDouble("rp", 0.0);
    // Diagnose the exact violation instead of renormalizing nonsense:
    // a negative (or NaN) weight is not a distribution, and an all-zero
    // override selects nothing.
    const struct {
      const char *Flag;
      double W;
    } Weights[] = {{"--qd", Mix->WQd}, {"--gc", Mix->WGc}, {"--rp", Mix->WRp}};
    for (const auto &Entry : Weights)
      if (!(Entry.W >= 0.0) || !std::isfinite(Entry.W)) {
        detail::fail(Error, std::string(Entry.Flag) +
                                " must be a non-negative finite weight");
        return std::nullopt;
      }
    if (!(Mix->sum() > 0.0)) {
      detail::fail(Error, "channel weights --qd/--gc/--rp are all zero; at "
                          "least one must be positive");
      return std::nullopt;
    }
    Mix->normalize();
  }
  return Mix;
}

//===----------------------------------------------------------------------===//
// TaskSpec
//===----------------------------------------------------------------------===//

bool TaskSpec::validate(std::string *Error) const {
  if (Shots < 1)
    return detail::fail(Error, "a task needs at least one shot");
  // !(x > 0) instead of x <= 0: NaN fails every comparison, so the old
  // form accepted --time=nan.
  if (!(Time > 0.0) || !std::isfinite(Time))
    return detail::fail(Error, "evolution time must be positive and finite");
  if (Noise.Kind != NoiseChannelKind::None) {
    if (!(Noise.Prob >= 0.0) || !(Noise.Prob <= 1.0))
      return detail::fail(Error,
                          "noise probability must be in [0, 1]");
    if (!(Noise.TwoQubitFactor > 0.0) || !std::isfinite(Noise.TwoQubitFactor))
      return detail::fail(Error,
                          "noise 2-qubit factor must be positive and finite");
    if (Noise.enabled() && Evaluate.FidelityColumns == 0)
      return detail::fail(Error,
                          "noise only affects fidelity evaluation; enable it "
                          "with --columns=N");
    if (Noise.enabled() && Noise.Mode == NoiseMode::Density &&
        Precision != EvalPrecision::FP64)
      return detail::fail(Error,
                          "the density-matrix noise oracle evaluates in "
                          "double precision; use --precision=fp64");
  }
  switch (Method) {
  case TaskMethod::Sampling: {
    if (!(Epsilon > 0.0) || !std::isfinite(Epsilon))
      return detail::fail(Error,
                          "target precision epsilon must be positive and "
                          "finite");
    ChannelMix Copy = Mix;
    if (!Copy.normalize())
      return detail::fail(Error, "channel weights must be non-negative with a "
                         "positive sum");
    if (Copy.WRp > 0.0 && PerturbRounds < 1)
      return detail::fail(Error, "a positive Prp weight needs at least one "
                         "perturbation round");
    break;
  }
  case TaskMethod::Trotter:
    if (TrotterOrder != 1 && TrotterOrder != 2 && TrotterOrder != 4)
      return detail::fail(Error, "supported Trotter orders: 1, 2, 4");
    [[fallthrough]];
  case TaskMethod::RandomOrderTrotter:
  case TaskMethod::SparSto:
    if (TrotterReps < 1)
      return detail::fail(Error, "Trotter-family methods need at least one "
                         "repetition");
    if (Method == TaskMethod::SparSto && SparStoKeepScale <= 0.0)
      return detail::fail(Error, "SparSto keep scale must be positive");
    break;
  }
  return true;
}

uint64_t TaskSpec::contentKey() const {
  using namespace serial;
  uint64_t H = FNVOffset;
  H = fnv1aWord(static_cast<uint64_t>(Method), H);
  H = fnv1aWord(doubleBits(Time), H);
  H = fnv1aWord(Lowering.Emit.CrossCancellation ? 1 : 0, H);
  H = fnv1aWord(Lowering.UseCDFSampler ? 1 : 0, H);
  H = fnv1aWord(Evaluate.FidelityColumns, H);
  H = fnv1aWord(Evaluate.ColumnSeed, H);
  // The precision tier participates only when it deviates from the FP64
  // default: fp32 fidelities are different bits, but folding a constant
  // for fp64 would shift every cache key minted before the tier existed.
  if (Precision != EvalPrecision::FP64)
    H = fnv1aWord(static_cast<uint64_t>(Precision), H);
  // Noise follows the same rule: it participates only when enabled, so
  // every noiseless key (goldens, manifests, cache files) minted before
  // the noisy tier existed stays valid.
  if (Noise.enabled()) {
    H = fnv1aWord(static_cast<uint64_t>(Noise.Kind), H);
    H = fnv1aWord(doubleBits(Noise.Prob), H);
    H = fnv1aWord(doubleBits(Noise.TwoQubitFactor), H);
    H = fnv1aWord(static_cast<uint64_t>(Noise.Mode), H);
  }
  // Only the active method's knobs participate: an unused TrotterReps on
  // a sampling task cannot change its bits, so it must not change its key.
  switch (Method) {
  case TaskMethod::Sampling:
    H = fnv1aWord(doubleBits(Mix.WQd), H);
    H = fnv1aWord(doubleBits(Mix.WGc), H);
    H = fnv1aWord(doubleBits(Mix.WRp), H);
    H = fnv1aWord(PerturbRounds, H);
    H = fnv1aWord(PerturbSeed, H);
    H = fnv1aWord(static_cast<uint64_t>(Flow.ProbScale), H);
    H = fnv1aWord(static_cast<uint64_t>(Flow.CostScale), H);
    H = fnv1aWord(doubleBits(Epsilon), H);
    H = fnv1aWord(UseCDF ? 1 : 0, H);
    break;
  case TaskMethod::Trotter:
    H = fnv1aWord(TrotterReps, H);
    H = fnv1aWord(TrotterOrder, H);
    H = fnv1aWord(static_cast<uint64_t>(Order), H);
    break;
  case TaskMethod::RandomOrderTrotter:
    H = fnv1aWord(TrotterReps, H);
    break;
  case TaskMethod::SparSto:
    H = fnv1aWord(TrotterReps, H);
    H = fnv1aWord(doubleBits(SparStoKeepScale), H);
    break;
  }
  return H;
}

std::optional<TaskSpec> TaskSpec::fromCommandLine(const CommandLine &CL,
                                                  std::string *Error) {
  TaskSpec Spec;

  // Hamiltonian source: one positional file path or --model=NAME.
  if (CL.has("model")) {
    if (!CL.positionals().empty()) {
      detail::fail(Error, "give either a Hamiltonian file or --model, not both");
      return std::nullopt;
    }
    Spec.Source = HamiltonianSource::fromModel(CL.getString("model"));
  } else if (CL.positionals().size() == 1) {
    Spec.Source = HamiltonianSource::fromFile(CL.positionals()[0]);
  } else {
    detail::fail(Error, "expected exactly one Hamiltonian file (or --model=NAME)");
    return std::nullopt;
  }

  std::optional<ChannelMix> Mix = parseChannelMix(CL, Error);
  if (!Mix)
    return std::nullopt;
  Spec.Mix = *Mix;

  Spec.Time = CL.getDouble("time", Spec.Time);
  if (!(Spec.Time > 0.0) || !std::isfinite(Spec.Time)) {
    detail::fail(Error, "--time must be positive and finite");
    return std::nullopt;
  }
  Spec.Epsilon = CL.getDouble("epsilon", Spec.Epsilon);
  if (!(Spec.Epsilon > 0.0) || !std::isfinite(Spec.Epsilon)) {
    detail::fail(Error, "--epsilon must be positive and finite");
    return std::nullopt;
  }

  // Integer flags: every count/seed is parsed signed and range-checked
  // before the unsigned narrowing (a bare cast would turn --rounds=-3
  // into ~4 billion perturbation rounds).
  int64_t Rounds = CL.getInt("rounds", Spec.PerturbRounds);
  if (Rounds < 0) {
    detail::fail(Error, "--rounds must be non-negative");
    return std::nullopt;
  }
  Spec.PerturbRounds = static_cast<unsigned>(Rounds);

  int64_t Seed = CL.getInt("seed", static_cast<int64_t>(Spec.Seed));
  if (Seed < 0) {
    detail::fail(Error, "--seed must be non-negative");
    return std::nullopt;
  }
  Spec.Seed = static_cast<uint64_t>(Seed);

  int64_t PerturbSeed =
      CL.getInt("perturb-seed", static_cast<int64_t>(Spec.PerturbSeed));
  if (PerturbSeed < 0) {
    detail::fail(Error, "--perturb-seed must be non-negative");
    return std::nullopt;
  }
  Spec.PerturbSeed = static_cast<uint64_t>(PerturbSeed);

  int64_t Shots = CL.getInt("shots", 1);
  if (Shots < 1) {
    detail::fail(Error, "--shots must be at least 1");
    return std::nullopt;
  }
  Spec.Shots = static_cast<size_t>(Shots);

  int64_t Jobs = CL.getInt("jobs", 1);
  if (Jobs < 0) {
    detail::fail(Error, "--jobs must be non-negative (0 = all cores)");
    return std::nullopt;
  }
  Spec.Jobs = static_cast<unsigned>(Jobs);

  int64_t EvalJobs = CL.getInt("eval-jobs", 1);
  if (EvalJobs < 0) {
    detail::fail(Error, "--eval-jobs must be non-negative (0 = all cores)");
    return std::nullopt;
  }
  Spec.EvalJobs = static_cast<unsigned>(EvalJobs);

  int64_t Columns = CL.getInt("columns", 0);
  if (Columns < 0) {
    detail::fail(Error, "--columns must be non-negative");
    return std::nullopt;
  }
  Spec.Evaluate.FidelityColumns = static_cast<size_t>(Columns);

  const std::string PrecName = CL.getString("precision", "fp64");
  std::optional<EvalPrecision> Prec = parsePrecision(PrecName);
  if (!Prec) {
    detail::fail(Error, "--precision must be fp64 or fp32 (got '" + PrecName +
                            "')");
    return std::nullopt;
  }
  Spec.Precision = *Prec;

  const std::string NoiseName = CL.getString("noise", "none");
  std::optional<NoiseChannelKind> Channel = parseNoiseChannel(NoiseName);
  if (!Channel) {
    detail::fail(Error, "--noise must be none, depolarizing, phase-flip, or "
                        "amplitude-damping (got '" +
                            NoiseName + "')");
    return std::nullopt;
  }
  Spec.Noise.Kind = *Channel;
  if (Spec.Noise.Kind == NoiseChannelKind::None &&
      (CL.has("noise-prob") || CL.has("noise-2q-factor") ||
       CL.has("noise-mode"))) {
    detail::fail(Error, "--noise-prob/--noise-2q-factor/--noise-mode have no "
                        "effect without --noise=MODEL");
    return std::nullopt;
  }
  Spec.Noise.Prob = CL.getDouble("noise-prob", Spec.Noise.Prob);
  if (!(Spec.Noise.Prob >= 0.0) || !(Spec.Noise.Prob <= 1.0)) {
    detail::fail(Error, "--noise-prob must be a probability in [0, 1]");
    return std::nullopt;
  }
  Spec.Noise.TwoQubitFactor =
      CL.getDouble("noise-2q-factor", Spec.Noise.TwoQubitFactor);
  if (!(Spec.Noise.TwoQubitFactor > 0.0) ||
      !std::isfinite(Spec.Noise.TwoQubitFactor)) {
    detail::fail(Error, "--noise-2q-factor must be positive and finite");
    return std::nullopt;
  }
  const std::string ModeName = CL.getString("noise-mode", "stochastic");
  std::optional<NoiseMode> Mode = parseNoiseMode(ModeName);
  if (!Mode) {
    detail::fail(Error, "--noise-mode must be stochastic or density (got '" +
                            ModeName + "')");
    return std::nullopt;
  }
  Spec.Noise.Mode = *Mode;

  Spec.UseCDF = CL.getBool("cdf");
  return Spec;
}

//===----------------------------------------------------------------------===//
// JSON transport
//===----------------------------------------------------------------------===//
//
// The spec travels as "marqsim-spec-v1". The design rule mirrors the
// shard manifests: anything whose *bits* matter downstream — doubles that
// feed contentKey/fingerprint, 64-bit seeds — is a hex16 string, never a
// JSON number. Human-scale counts (shots, reps, columns) are plain ints.

namespace {

const char *methodName(TaskMethod M) {
  switch (M) {
  case TaskMethod::Sampling:
    return "sampling";
  case TaskMethod::Trotter:
    return "trotter";
  case TaskMethod::RandomOrderTrotter:
    return "random-order-trotter";
  case TaskMethod::SparSto:
    return "sparsto";
  }
  return "sampling";
}

std::optional<TaskMethod> parseMethodName(const std::string &Name) {
  if (Name == "sampling")
    return TaskMethod::Sampling;
  if (Name == "trotter")
    return TaskMethod::Trotter;
  if (Name == "random-order-trotter")
    return TaskMethod::RandomOrderTrotter;
  if (Name == "sparsto")
    return TaskMethod::SparSto;
  return std::nullopt;
}

const char *orderName(TermOrderKind K) {
  switch (K) {
  case TermOrderKind::Given:
    return "given";
  case TermOrderKind::Lexicographic:
    return "lexicographic";
  case TermOrderKind::MagnitudeDescending:
    return "magnitude-descending";
  case TermOrderKind::GreedyMatched:
    return "greedy-matched";
  }
  return "given";
}

std::optional<TermOrderKind> parseOrderName(const std::string &Name) {
  if (Name == "given")
    return TermOrderKind::Given;
  if (Name == "lexicographic")
    return TermOrderKind::Lexicographic;
  if (Name == "magnitude-descending")
    return TermOrderKind::MagnitudeDescending;
  if (Name == "greedy-matched")
    return TermOrderKind::GreedyMatched;
  return std::nullopt;
}

json::Value hexDouble(double D) { return serial::hex16(serial::doubleBits(D)); }
json::Value hexWord(uint64_t W) { return serial::hex16(W); }

/// Reads a hex16-encoded word member. False + Error on absence or
/// malformed hex (missing members are never defaulted: a frame that lost
/// a field must fail loudly, not run a subtly different task).
bool readHexWord(const json::Value &Obj, const char *Key, uint64_t &Out,
                 std::string *Error) {
  const json::Value *V = Obj.find(Key);
  if (!V || !V->isString())
    return detail::fail(Error, std::string("spec json: missing or non-string '") +
                                   Key + "'");
  if (V->asString().size() != 16 || !serial::parseHex64(V->asString(), Out))
    return detail::fail(Error, std::string("spec json: bad hex16 in '") + Key +
                                   "'");
  return true;
}

bool readHexDouble(const json::Value &Obj, const char *Key, double &Out,
                   std::string *Error) {
  uint64_t Bits = 0;
  if (!readHexWord(Obj, Key, Bits, Error))
    return false;
  Out = serial::bitsToDouble(Bits);
  return true;
}

bool readInt(const json::Value &Obj, const char *Key, int64_t Min,
             int64_t &Out, std::string *Error) {
  const json::Value *V = Obj.find(Key);
  if (!V || V->kind() != json::Value::Kind::Int)
    return detail::fail(Error, std::string("spec json: missing or non-integer '") +
                                   Key + "'");
  if (V->asInt() < Min)
    return detail::fail(Error, std::string("spec json: '") + Key +
                                   "' below minimum");
  Out = V->asInt();
  return true;
}

bool readBool(const json::Value &Obj, const char *Key, bool &Out,
              std::string *Error) {
  const json::Value *V = Obj.find(Key);
  if (!V || V->kind() != json::Value::Kind::Bool)
    return detail::fail(Error, std::string("spec json: missing or non-bool '") +
                                   Key + "'");
  Out = V->asBool();
  return true;
}

bool readString(const json::Value &Obj, const char *Key, std::string &Out,
                std::string *Error) {
  const json::Value *V = Obj.find(Key);
  if (!V || !V->isString())
    return detail::fail(Error, std::string("spec json: missing or non-string '") +
                                   Key + "'");
  Out = V->asString();
  return true;
}

} // namespace

std::optional<json::Value> TaskSpec::toJson(std::string *Error) const {
  // Resolve the source now, uncanonicalized: files and registry models
  // become inline terms the receiver can use without touching any
  // filesystem, and the raw term order is preserved so the Trotter
  // family's TermOrderKind::Given keeps its meaning. Both sides then
  // canonicalize (or not) identically inside SimulationService::run.
  std::optional<Hamiltonian> H =
      SimulationService::resolveHamiltonian(Source, Error,
                                            /*Canonicalize=*/false);
  if (!H)
    return std::nullopt;

  json::Value Ham = json::Value::object();
  Ham.set("qubits", H->numQubits());
  json::Value Terms = json::Value::array();
  for (const PauliTerm &T : H->terms()) {
    json::Value Term = json::Value::array();
    Term.push(hexDouble(T.Coeff));
    Term.push(T.String.str(H->numQubits()));
    Terms.push(std::move(Term));
  }
  Ham.set("terms", std::move(Terms));

  json::Value V = json::Value::object();
  V.set("format", "marqsim-spec-v1");
  V.set("hamiltonian", std::move(Ham));
  V.set("method", methodName(Method));
  V.set("time", hexDouble(Time));
  V.set("epsilon", hexDouble(Epsilon));
  V.set("mix", json::Value::object()
                   .set("qd", hexDouble(Mix.WQd))
                   .set("gc", hexDouble(Mix.WGc))
                   .set("rp", hexDouble(Mix.WRp)));
  V.set("perturb_rounds", PerturbRounds);
  V.set("perturb_seed", hexWord(PerturbSeed));
  V.set("flow", json::Value::object()
                    .set("prob_scale", Flow.ProbScale)
                    .set("cost_scale", Flow.CostScale));
  V.set("use_cdf", UseCDF);
  V.set("trotter_reps", TrotterReps);
  V.set("trotter_order", TrotterOrder);
  V.set("term_order", orderName(Order));
  V.set("sparsto_keep_scale", hexDouble(SparStoKeepScale));
  V.set("shots", static_cast<int64_t>(Shots));
  V.set("jobs", Jobs);
  V.set("eval_jobs", EvalJobs);
  V.set("seed", hexWord(Seed));
  V.set("precision", precisionName(Precision));
  V.set("noise", json::Value::object()
                     .set("channel", noiseChannelName(Noise.Kind))
                     .set("mode", noiseModeName(Noise.Mode))
                     .set("prob", hexDouble(Noise.Prob))
                     .set("two_qubit_factor",
                          hexDouble(Noise.TwoQubitFactor)));
  V.set("lowering", json::Value::object()
                        .set("cross_cancellation",
                             Lowering.Emit.CrossCancellation)
                        .set("use_cdf_sampler", Lowering.UseCDFSampler));
  V.set("evaluate",
        json::Value::object()
            .set("fidelity_columns",
                 static_cast<int64_t>(Evaluate.FidelityColumns))
            .set("column_seed", hexWord(Evaluate.ColumnSeed))
            .set("export_shot_zero", Evaluate.ExportShotZero)
            .set("dump_dot", Evaluate.DumpDot)
            .set("keep_results", Evaluate.KeepResults));
  return V;
}

std::optional<TaskSpec> TaskSpec::fromJson(const json::Value &V,
                                           std::string *Error) {
  if (!V.isObject()) {
    detail::fail(Error, "spec json: expected an object");
    return std::nullopt;
  }
  std::string Format;
  if (!readString(V, "format", Format, Error))
    return std::nullopt;
  if (Format != "marqsim-spec-v1") {
    detail::fail(Error, "spec json: unsupported format '" + Format + "'");
    return std::nullopt;
  }

  TaskSpec Spec;

  const json::Value *Ham = V.find("hamiltonian");
  if (!Ham || !Ham->isObject()) {
    detail::fail(Error, "spec json: missing 'hamiltonian' object");
    return std::nullopt;
  }
  int64_t Qubits = 0;
  if (!readInt(*Ham, "qubits", 1, Qubits, Error))
    return std::nullopt;
  if (Qubits > 64) {
    detail::fail(Error, "spec json: qubit count above 64");
    return std::nullopt;
  }
  const json::Value *Terms = Ham->find("terms");
  if (!Terms || !Terms->isArray() || Terms->size() == 0) {
    detail::fail(Error, "spec json: missing or empty 'hamiltonian.terms'");
    return std::nullopt;
  }
  Hamiltonian H(static_cast<unsigned>(Qubits));
  for (size_t I = 0; I < Terms->size(); ++I) {
    const json::Value &Term = Terms->at(I);
    if (!Term.isArray() || Term.size() != 2 || !Term.at(0).isString() ||
        !Term.at(1).isString()) {
      detail::fail(Error, "spec json: each term must be [coeff-hex, paulis]");
      return std::nullopt;
    }
    uint64_t Bits = 0;
    if (Term.at(0).asString().size() != 16 ||
        !serial::parseHex64(Term.at(0).asString(), Bits)) {
      detail::fail(Error, "spec json: bad coefficient hex in term");
      return std::nullopt;
    }
    const std::string &Text = Term.at(1).asString();
    std::optional<PauliString> P = PauliString::parse(Text);
    if (!P || Text.size() != static_cast<size_t>(Qubits)) {
      detail::fail(Error, "spec json: malformed Pauli string '" + Text + "'");
      return std::nullopt;
    }
    H.addTerm(serial::bitsToDouble(Bits), *P);
  }
  if (H.empty()) {
    detail::fail(Error, "spec json: Hamiltonian has no nonzero terms");
    return std::nullopt;
  }
  Spec.Source = HamiltonianSource::fromHamiltonian(std::move(H));

  std::string MethodText;
  if (!readString(V, "method", MethodText, Error))
    return std::nullopt;
  std::optional<TaskMethod> M = parseMethodName(MethodText);
  if (!M) {
    detail::fail(Error, "spec json: unknown method '" + MethodText + "'");
    return std::nullopt;
  }
  Spec.Method = *M;

  if (!readHexDouble(V, "time", Spec.Time, Error) ||
      !readHexDouble(V, "epsilon", Spec.Epsilon, Error))
    return std::nullopt;

  const json::Value *MixObj = V.find("mix");
  if (!MixObj || !MixObj->isObject()) {
    detail::fail(Error, "spec json: missing 'mix' object");
    return std::nullopt;
  }
  if (!readHexDouble(*MixObj, "qd", Spec.Mix.WQd, Error) ||
      !readHexDouble(*MixObj, "gc", Spec.Mix.WGc, Error) ||
      !readHexDouble(*MixObj, "rp", Spec.Mix.WRp, Error))
    return std::nullopt;

  int64_t Tmp = 0;
  if (!readInt(V, "perturb_rounds", 0, Tmp, Error))
    return std::nullopt;
  Spec.PerturbRounds = static_cast<unsigned>(Tmp);
  if (!readHexWord(V, "perturb_seed", Spec.PerturbSeed, Error))
    return std::nullopt;

  const json::Value *Flow = V.find("flow");
  if (!Flow || !Flow->isObject()) {
    detail::fail(Error, "spec json: missing 'flow' object");
    return std::nullopt;
  }
  if (!readInt(*Flow, "prob_scale", 1, Spec.Flow.ProbScale, Error) ||
      !readInt(*Flow, "cost_scale", 1, Spec.Flow.CostScale, Error))
    return std::nullopt;

  if (!readBool(V, "use_cdf", Spec.UseCDF, Error))
    return std::nullopt;
  if (!readInt(V, "trotter_reps", 0, Tmp, Error))
    return std::nullopt;
  Spec.TrotterReps = static_cast<unsigned>(Tmp);
  if (!readInt(V, "trotter_order", 0, Tmp, Error))
    return std::nullopt;
  Spec.TrotterOrder = static_cast<unsigned>(Tmp);

  std::string OrderText;
  if (!readString(V, "term_order", OrderText, Error))
    return std::nullopt;
  std::optional<TermOrderKind> Order = parseOrderName(OrderText);
  if (!Order) {
    detail::fail(Error, "spec json: unknown term order '" + OrderText + "'");
    return std::nullopt;
  }
  Spec.Order = *Order;

  if (!readHexDouble(V, "sparsto_keep_scale", Spec.SparStoKeepScale, Error))
    return std::nullopt;

  if (!readInt(V, "shots", 1, Tmp, Error))
    return std::nullopt;
  Spec.Shots = static_cast<size_t>(Tmp);
  if (!readInt(V, "jobs", 0, Tmp, Error))
    return std::nullopt;
  Spec.Jobs = static_cast<unsigned>(Tmp);
  if (!readInt(V, "eval_jobs", 0, Tmp, Error))
    return std::nullopt;
  Spec.EvalJobs = static_cast<unsigned>(Tmp);
  if (!readHexWord(V, "seed", Spec.Seed, Error))
    return std::nullopt;

  std::string PrecText;
  if (!readString(V, "precision", PrecText, Error))
    return std::nullopt;
  std::optional<EvalPrecision> Prec = parsePrecision(PrecText);
  if (!Prec) {
    detail::fail(Error, "spec json: unknown precision '" + PrecText + "'");
    return std::nullopt;
  }
  Spec.Precision = *Prec;

  // "noise" is optional: v1 frames minted before the noisy tier carry no
  // noise object, and its absence means exactly what the default spec
  // means — noiseless. When present, every field is required.
  if (const json::Value *Noise = V.find("noise")) {
    if (!Noise->isObject()) {
      detail::fail(Error, "spec json: 'noise' must be an object");
      return std::nullopt;
    }
    std::string ChannelText, ModeText;
    if (!readString(*Noise, "channel", ChannelText, Error) ||
        !readString(*Noise, "mode", ModeText, Error))
      return std::nullopt;
    std::optional<NoiseChannelKind> Channel = parseNoiseChannel(ChannelText);
    if (!Channel) {
      detail::fail(Error,
                   "spec json: unknown noise channel '" + ChannelText + "'");
      return std::nullopt;
    }
    Spec.Noise.Kind = *Channel;
    std::optional<NoiseMode> Mode = parseNoiseMode(ModeText);
    if (!Mode) {
      detail::fail(Error, "spec json: unknown noise mode '" + ModeText + "'");
      return std::nullopt;
    }
    Spec.Noise.Mode = *Mode;
    if (!readHexDouble(*Noise, "prob", Spec.Noise.Prob, Error) ||
        !readHexDouble(*Noise, "two_qubit_factor", Spec.Noise.TwoQubitFactor,
                       Error))
      return std::nullopt;
  }

  const json::Value *Lowering = V.find("lowering");
  if (!Lowering || !Lowering->isObject()) {
    detail::fail(Error, "spec json: missing 'lowering' object");
    return std::nullopt;
  }
  if (!readBool(*Lowering, "cross_cancellation",
                Spec.Lowering.Emit.CrossCancellation, Error) ||
      !readBool(*Lowering, "use_cdf_sampler", Spec.Lowering.UseCDFSampler,
                Error))
    return std::nullopt;

  const json::Value *Eval = V.find("evaluate");
  if (!Eval || !Eval->isObject()) {
    detail::fail(Error, "spec json: missing 'evaluate' object");
    return std::nullopt;
  }
  if (!readInt(*Eval, "fidelity_columns", 0, Tmp, Error))
    return std::nullopt;
  Spec.Evaluate.FidelityColumns = static_cast<size_t>(Tmp);
  if (!readHexWord(*Eval, "column_seed", Spec.Evaluate.ColumnSeed, Error))
    return std::nullopt;
  if (!readBool(*Eval, "export_shot_zero", Spec.Evaluate.ExportShotZero,
                Error) ||
      !readBool(*Eval, "dump_dot", Spec.Evaluate.DumpDot, Error) ||
      !readBool(*Eval, "keep_results", Spec.Evaluate.KeepResults, Error))
    return std::nullopt;

  if (!Spec.validate(Error))
    return std::nullopt;
  return Spec;
}
