//===- service/SimulationService.cpp - Cached simulation front-end -----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SimulationService.h"

#include "hamgen/Registry.h"
#include "pauli/HamiltonianIO.h"
#include "stats/Stats.h"
#include "support/Serial.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

using namespace marqsim;

//===----------------------------------------------------------------------===//
// CacheStats
//===----------------------------------------------------------------------===//

CacheStats &CacheStats::operator+=(const CacheStats &O) {
  GCSolveHits += O.GCSolveHits;
  GCSolveMisses += O.GCSolveMisses;
  RPSolveHits += O.RPSolveHits;
  RPSolveMisses += O.RPSolveMisses;
  GraphHits += O.GraphHits;
  GraphMisses += O.GraphMisses;
  EvaluatorHits += O.EvaluatorHits;
  EvaluatorMisses += O.EvaluatorMisses;
  DiskLoads += O.DiskLoads;
  return *this;
}

//===----------------------------------------------------------------------===//
// Key formatting
//===----------------------------------------------------------------------===//

namespace {

using serial::doubleBits;

void appendHex(std::string &S, uint64_t V) {
  S += '-';
  S += serial::hex16(V);
}

/// File-name-safe content key of the gate-cancellation solve.
std::string gcKey(uint64_t Fingerprint, const MCFPOptions &Flow) {
  std::string Key = "gc";
  appendHex(Key, Fingerprint);
  appendHex(Key, static_cast<uint64_t>(Flow.ProbScale));
  appendHex(Key, static_cast<uint64_t>(Flow.CostScale));
  return Key;
}

/// Content key of the random-perturbation solve.
std::string rpKey(uint64_t Fingerprint, const MCFPOptions &Flow,
                  unsigned Rounds, uint64_t PerturbSeed) {
  std::string Key = "rp";
  appendHex(Key, Fingerprint);
  appendHex(Key, static_cast<uint64_t>(Flow.ProbScale));
  appendHex(Key, static_cast<uint64_t>(Flow.CostScale));
  appendHex(Key, Rounds);
  appendHex(Key, PerturbSeed);
  return Key;
}

/// Content key of a graph + alias-table bundle. Fields that cannot affect
/// the artifact (flow options under a pure-qDrift mix, perturbation knobs
/// when WRp == 0) are normalized to zero so irrelevant flag changes never
/// force a rebuild.
std::string graphKey(uint64_t Fingerprint, const ChannelMix &Mix,
                     const MCFPOptions &Flow, unsigned Rounds,
                     uint64_t PerturbSeed, bool UseCDF) {
  bool NeedsFlow = Mix.WGc > 0.0 || Mix.WRp > 0.0;
  bool NeedsPerturb = Mix.WRp > 0.0;
  std::string Key = "graph";
  appendHex(Key, Fingerprint);
  appendHex(Key, doubleBits(Mix.WQd));
  appendHex(Key, doubleBits(Mix.WGc));
  appendHex(Key, doubleBits(Mix.WRp));
  appendHex(Key, NeedsFlow ? static_cast<uint64_t>(Flow.ProbScale) : 0);
  appendHex(Key, NeedsFlow ? static_cast<uint64_t>(Flow.CostScale) : 0);
  appendHex(Key, NeedsPerturb ? Rounds : 0);
  appendHex(Key, NeedsPerturb ? PerturbSeed : 0);
  Key += UseCDF ? "-cdf" : "-alias";
  return Key;
}

std::string evalKey(uint64_t Fingerprint, double T, size_t Columns,
                    uint64_t ColumnSeed) {
  std::string Key = "eval";
  appendHex(Key, Fingerprint);
  appendHex(Key, doubleBits(T));
  appendHex(Key, Columns);
  appendHex(Key, ColumnSeed);
  return Key;
}

} // namespace

//===----------------------------------------------------------------------===//
// SimulationService::Impl
//===----------------------------------------------------------------------===//

namespace {

/// One cached artifact: computed at most once per service, concurrent
/// requesters of the same key block on the in-flight computation.
template <typename T> struct Slot {
  std::once_flag Once;
  std::shared_ptr<const T> Value;
};

/// An HTT graph plus the sampling tables built over it. The base strategy
/// carries the alias (or CDF) tables; tasks re-target it to their own
/// (time, epsilon) budget, sharing the tables.
struct GraphBundle {
  std::shared_ptr<const HTTGraph> Graph;
  std::shared_ptr<const SamplingStrategy> Base;
  bool Valid = false; // Theorem 4.1 validation, checked once at build
};

template <typename T>
using SlotMap = std::map<std::string, std::shared_ptr<Slot<T>>>;

template <typename T, typename ComputeFn>
std::shared_ptr<const T> getOrCompute(SlotMap<T> &Map, std::mutex &MapMutex,
                                      const std::string &Key,
                                      ComputeFn Compute, bool &WasComputed) {
  std::shared_ptr<Slot<T>> S;
  {
    std::lock_guard<std::mutex> Lock(MapMutex);
    std::shared_ptr<Slot<T>> &Ref = Map[Key];
    if (!Ref)
      Ref = std::make_shared<Slot<T>>();
    S = Ref;
  }
  WasComputed = false;
  std::call_once(S->Once, [&] {
    S->Value = Compute();
    WasComputed = true;
  });
  return S->Value;
}

} // namespace

struct SimulationService::Impl {
  ServiceOptions Options;

  std::mutex MatrixMutex;
  SlotMap<TransitionMatrix> Matrices;

  std::mutex GraphMutex;
  SlotMap<GraphBundle> Graphs;

  std::mutex EvalMutex;
  SlotMap<FidelityEvaluator> Evaluators;

  mutable std::mutex StatsMutex;
  CacheStats Total;

  void note(const CacheStats &Delta, CacheStats *Local) {
    if (Local)
      *Local += Delta;
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Total += Delta;
  }

  //===--------------------------------------------------------------------===//
  // Persistent component store
  //===--------------------------------------------------------------------===//

  std::filesystem::path diskPath(const std::string &Key) const {
    return std::filesystem::path(Options.CacheDir) / (Key + ".mat");
  }

  /// Loads a matrix stored by storeMatrix. The entries are raw IEEE-754
  /// bit patterns in hex, so the round trip is exact. Any anomaly — a
  /// checksum that does not match the payload (truncation, bit flips), a
  /// dimension that disagrees with \p ExpectedN (the term count is known
  /// from the Hamiltonian, so a mismatch means a stale or corrupt file),
  /// malformed hex, trailing garbage — returns nullopt and the caller
  /// re-solves, overwriting the bad artifact.
  std::optional<TransitionMatrix> loadMatrix(const std::string &Key,
                                             size_t ExpectedN) const {
    if (Options.CacheDir.empty())
      return std::nullopt;
    std::ifstream In(diskPath(Key));
    if (!In)
      return std::nullopt;
    std::ostringstream Buf;
    Buf << In.rdbuf();

    // Verify the trailing checksum before trusting any entry: the hex
    // payload would happily parse with a flipped bit, silently changing
    // the transition matrix and everything downstream of it.
    std::string Body;
    if (!serial::splitChecksummed(Buf.str(), Body))
      return std::nullopt;

    std::istringstream Rows(Body);
    std::string Magic;
    size_t N = 0;
    if (!(Rows >> Magic >> N) || Magic != "marqsim-matrix-v2" ||
        N != ExpectedN || N == 0)
      return std::nullopt;
    TransitionMatrix P(N);
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J) {
        std::string Word;
        uint64_t Bits = 0;
        if (!(Rows >> Word) || Word.size() != 16 ||
            !serial::parseHex64(Word, Bits))
          return std::nullopt;
        P.at(I, J) = serial::bitsToDouble(Bits);
      }
    std::string Trailing;
    if (Rows >> Trailing)
      return std::nullopt;
    return P;
  }

  void storeMatrix(const std::string &Key, const TransitionMatrix &P) const {
    if (Options.CacheDir.empty())
      return;
    std::error_code EC;
    std::filesystem::create_directories(Options.CacheDir, EC);
    if (EC)
      return;
    std::ostringstream Body;
    Body << "marqsim-matrix-v2 " << P.size() << "\n";
    for (size_t I = 0; I < P.size(); ++I) {
      for (size_t J = 0; J < P.size(); ++J)
        Body << serial::hex16(doubleBits(P.at(I, J)))
             << (J + 1 == P.size() ? "" : " ");
      Body << "\n";
    }
    // Write-then-rename keeps concurrent processes from reading torn
    // files; the store is best-effort (failures just mean a re-solve).
    std::filesystem::path Final = diskPath(Key);
    std::filesystem::path Tmp = Final;
    Tmp += "." + std::to_string(::getpid()) + ".tmp";
    {
      std::ofstream Out(Tmp);
      if (!Out)
        return;
      Out << serial::withChecksum(Body.str());
      if (!Out)
        return;
    }
    std::filesystem::rename(Tmp, Final, EC);
    if (EC)
      std::filesystem::remove(Tmp, EC);
  }

  //===--------------------------------------------------------------------===//
  // Cached resolution
  //===--------------------------------------------------------------------===//

  /// Resolves one MCFP component (Pgc or Prp) through the in-memory and
  /// on-disk stores. \p Solve runs at most once per key per process, and
  /// not at all when the disk store has the artifact.
  std::shared_ptr<const TransitionMatrix>
  component(const std::string &Key, size_t ExpectedN, bool IsGC,
            const std::function<TransitionMatrix()> &Solve,
            CacheStats *Local) {
    CacheStats Delta;
    bool Computed = false;
    auto Value = getOrCompute<TransitionMatrix>(
        Matrices, MatrixMutex, Key, [&]() {
          if (std::optional<TransitionMatrix> Disk =
                  loadMatrix(Key, ExpectedN)) {
            Delta.DiskLoads++;
            (IsGC ? Delta.GCSolveHits : Delta.RPSolveHits)++;
            return std::make_shared<const TransitionMatrix>(
                std::move(*Disk));
          }
          (IsGC ? Delta.GCSolveMisses : Delta.RPSolveMisses)++;
          auto P = std::make_shared<const TransitionMatrix>(Solve());
          storeMatrix(Key, *P);
          return P;
        },
        Computed);
    if (!Computed)
      (IsGC ? Delta.GCSolveHits : Delta.RPSolveHits)++;
    note(Delta, Local);
    return Value;
  }

  /// Builds the combined transition matrix of \p Mix for the prepared
  /// Hamiltonian, going through the component caches for the MCFP parts.
  TransitionMatrix combinedMatrix(const Hamiltonian &H, uint64_t Fingerprint,
                                  const TaskSpec &Spec, const ChannelMix &Mix,
                                  CacheStats *Local) {
    // Single-term Hamiltonians (and pure-qDrift mixes) skip the flow
    // machinery entirely; Pqd itself is O(n^2) to form and not worth
    // persisting.
    if (H.numTerms() < 2 || (Mix.WGc <= 0.0 && Mix.WRp <= 0.0))
      return buildQDrift(H);

    TransitionMatrix Pqd;
    std::vector<const TransitionMatrix *> Parts;
    std::vector<double> Weights;
    std::shared_ptr<const TransitionMatrix> GC, RP;
    if (Mix.WQd > 0.0) {
      Pqd = buildQDrift(H);
      Parts.push_back(&Pqd);
      Weights.push_back(Mix.WQd);
    }
    if (Mix.WGc > 0.0) {
      GC = component(gcKey(Fingerprint, Spec.Flow), H.numTerms(),
                     /*IsGC=*/true,
                     [&] { return buildGateCancellation(H, Spec.Flow); },
                     Local);
      Parts.push_back(GC.get());
      Weights.push_back(Mix.WGc);
    }
    if (Mix.WRp > 0.0) {
      RP = component(
          rpKey(Fingerprint, Spec.Flow, Spec.PerturbRounds, Spec.PerturbSeed),
          H.numTerms(), /*IsGC=*/false,
          [&] {
            RNG PerturbRng(Spec.PerturbSeed);
            return buildRandomPerturbation(H, Spec.PerturbRounds, PerturbRng,
                                           Spec.Flow);
          },
          Local);
      Parts.push_back(RP.get());
      Weights.push_back(Mix.WRp);
    }
    if (Parts.size() == 1)
      return *Parts.front();
    return TransitionMatrix::combine(Parts, Weights);
  }

  /// Resolves the graph + sampling-table bundle of a sampling spec.
  std::shared_ptr<const GraphBundle> bundle(const Hamiltonian &H,
                                            uint64_t Fingerprint,
                                            const TaskSpec &Spec,
                                            const ChannelMix &Mix,
                                            CacheStats *Local) {
    std::string Key = graphKey(Fingerprint, Mix, Spec.Flow,
                               Spec.PerturbRounds, Spec.PerturbSeed,
                               Spec.UseCDF);
    CacheStats Delta;
    bool Computed = false;
    auto Value = getOrCompute<GraphBundle>(
        Graphs, GraphMutex, Key, [&]() {
          auto B = std::make_shared<GraphBundle>();
          TransitionMatrix P =
              combinedMatrix(H, Fingerprint, Spec, Mix, Local);
          B->Graph = std::make_shared<const HTTGraph>(H, std::move(P));
          B->Valid = B->Graph->isValidForCompilation();
          if (B->Valid)
            B->Base = std::make_shared<const SamplingStrategy>(
                B->Graph, Spec.Time, Spec.Epsilon, Spec.UseCDF);
          return B;
        },
        Computed);
    (Computed ? Delta.GraphMisses : Delta.GraphHits)++;
    note(Delta, Local);
    return Value;
  }

  std::shared_ptr<const FidelityEvaluator>
  evaluator(const Hamiltonian &H, uint64_t Fingerprint, const TaskSpec &Spec,
            CacheStats *Local) {
    std::string Key =
        evalKey(Fingerprint, Spec.Time, Spec.Evaluate.FidelityColumns,
                Spec.Evaluate.ColumnSeed);
    CacheStats Delta;
    bool Computed = false;
    auto Value = getOrCompute<FidelityEvaluator>(
        Evaluators, EvalMutex, Key, [&]() {
          return std::make_shared<const FidelityEvaluator>(
              H, Spec.Time, Spec.Evaluate.FidelityColumns,
              Spec.Evaluate.ColumnSeed);
        },
        Computed);
    (Computed ? Delta.EvaluatorMisses : Delta.EvaluatorHits)++;
    note(Delta, Local);
    return Value;
  }
};

//===----------------------------------------------------------------------===//
// SimulationService
//===----------------------------------------------------------------------===//

SimulationService::SimulationService(ServiceOptions Opts)
    : M(std::make_unique<Impl>()) {
  M->Options = std::move(Opts);
}

SimulationService::~SimulationService() = default;

Hamiltonian SimulationService::prepare(const Hamiltonian &Raw) {
  // merged() canonicalizes the term order, making the downstream MCFP and
  // sampling artifacts a pure function of the operator content; the split
  // re-establishes the pi_i <= 0.5 flow-feasibility precondition.
  return Raw.merged().splitLargeTerms();
}

std::optional<Hamiltonian>
SimulationService::resolveHamiltonian(const HamiltonianSource &S,
                                      std::string *Error,
                                      bool Canonicalize) {
  std::optional<Hamiltonian> H;
  switch (S.SourceKind) {
  case HamiltonianSource::Kind::File:
    H = readHamiltonianFile(S.Path, Error);
    if (!H)
      return std::nullopt;
    break;
  case HamiltonianSource::Kind::Model: {
    std::optional<BenchmarkSpec> Spec = findBenchmark(S.Model);
    if (!Spec) {
      detail::fail(Error, "unknown benchmark model '" + S.Model + "'");
      return std::nullopt;
    }
    H = makeBenchmark(*Spec);
    break;
  }
  case HamiltonianSource::Kind::Inline:
    if (S.Ham.empty()) {
      detail::fail(Error, "inline Hamiltonian source is empty");
      return std::nullopt;
    }
    H = S.Ham;
    break;
  }
  if (!H) {
    detail::fail(Error, "unreachable Hamiltonian source kind");
    return std::nullopt;
  }
  return Canonicalize ? prepare(*H) : std::move(*H);
}

std::shared_ptr<const HTTGraph>
SimulationService::graphFor(const TaskSpec &Spec, std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    detail::fail(Error, Validation);
    return nullptr;
  }
  std::optional<Hamiltonian> H = resolveHamiltonian(Spec.Source, Error);
  if (!H)
    return nullptr;
  ChannelMix Mix = Spec.Mix;
  Mix.normalize();
  auto Bundle = M->bundle(*H, H->fingerprint(), Spec, Mix, nullptr);
  if (!Bundle->Valid) {
    detail::fail(Error, "transition matrix failed Theorem 4.1 validation");
    return nullptr;
  }
  return Bundle->Graph;
}

std::optional<TaskResult> SimulationService::run(const TaskSpec &Spec,
                                                 std::string *Error) {
  return run(Spec, ShotRange{0, Spec.Shots}, Error);
}

std::optional<TaskResult> SimulationService::run(const TaskSpec &Spec,
                                                 const ShotRange &Range,
                                                 std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    detail::fail(Error, Validation);
    return std::nullopt;
  }
  if (Range.Count < 1 || Range.end() > Spec.Shots) {
    detail::fail(Error, "shot range [" + std::to_string(Range.Begin) + ", " +
                            std::to_string(Range.end()) +
                            ") is empty or exceeds the task's " +
                            std::to_string(Spec.Shots) + " shots");
    return std::nullopt;
  }
  // Only the sampling path canonicalizes (its caches and MCFP need it);
  // Trotter-family tasks compile the operator exactly as given so
  // TermOrderKind::Given keeps its meaning. fingerprint() merges
  // internally, so both forms share one content hash (and hence one
  // cached fidelity evaluator — the operator is identical either way).
  bool Canonical = Spec.Method == TaskMethod::Sampling;
  std::optional<Hamiltonian> Resolved =
      resolveHamiltonian(Spec.Source, Error, Canonical);
  if (!Resolved)
    return std::nullopt;
  const Hamiltonian &H = *Resolved;

  TaskResult Result;
  Result.Fingerprint = H.fingerprint();

  // Schedule strategy: sampling goes through the artifact caches, the
  // Trotter family is cheap enough to construct per task.
  std::shared_ptr<const ScheduleStrategy> Strategy;
  switch (Spec.Method) {
  case TaskMethod::Sampling: {
    ChannelMix Mix = Spec.Mix;
    Mix.normalize();
    auto Bundle =
        M->bundle(H, Result.Fingerprint, Spec, Mix, &Result.Stats);
    if (!Bundle->Valid) {
      detail::fail(Error, "transition matrix failed Theorem 4.1 validation");
      return std::nullopt;
    }
    // Re-target the cached tables to this task's (time, epsilon) budget;
    // the alias/CDF rows are shared, only N and tau are recomputed.
    std::shared_ptr<const SamplingStrategy> Sampling =
        Bundle->Base->retargeted(Spec.Time, Spec.Epsilon);
    Result.NumSamples = Sampling->sampleCount();
    if (Spec.Evaluate.DumpDot)
      Result.GraphDot = Bundle->Graph->toDot();
    Strategy = std::move(Sampling);
    break;
  }
  case TaskMethod::Trotter:
    Strategy = std::make_shared<const TrotterStrategy>(
        H, Spec.Time, Spec.TrotterReps, Spec.Order, Spec.TrotterOrder);
    break;
  case TaskMethod::RandomOrderTrotter:
    Strategy = std::make_shared<const RandomOrderTrotterStrategy>(
        H, Spec.Time, Spec.TrotterReps);
    break;
  case TaskMethod::SparSto:
    Strategy = std::make_shared<const SparStoStrategy>(
        H, Spec.Time, Spec.TrotterReps, Spec.SparStoKeepScale);
    break;
  }

  std::shared_ptr<const FidelityEvaluator> Eval;
  if (Spec.Evaluate.FidelityColumns > 0) {
    Eval = M->evaluator(H, Result.Fingerprint, Spec, &Result.Stats);
    Result.HasFidelity = true;
    Result.ShotFidelities.assign(Range.Count, 0.0);
  }

  // Shot zero is a global notion: only the range that contains it can
  // export it.
  bool WantShotZero = Spec.Evaluate.ExportShotZero && Range.Begin == 0;

  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = Range.Count;
  Req.FirstShot = Range.Begin;
  Req.Jobs = Spec.Jobs;
  Req.Seed = Spec.Seed;
  Req.Opts = Spec.Lowering;
  Req.KeepResults = Spec.Evaluate.KeepResults;
  if (Eval || WantShotZero) {
    // In-worker evaluation: each shot's fidelity is computed on the
    // worker that compiled it (the evaluator is immutable, the fidelity
    // a pure function of the schedule), writing to the shot's own slot.
    // The hook's index is range-relative, matching the result vectors.
    Req.PerShot = [&](size_t Shot, const CompilationResult &R) {
      if (Eval)
        Result.ShotFidelities[Shot] = Eval->fidelity(R.Schedule);
      if (WantShotZero && Shot == 0)
        Result.ShotZero = R; // single writer: shot 0's worker only
    };
  }

  CompilerEngine Engine;
  Result.Batch = Engine.compileBatch(Req);
  Result.HasShotZero = WantShotZero;

  if (Eval) {
    RunningStats Fids;
    for (double F : Result.ShotFidelities)
      Fids.add(F);
    Result.Fidelity.Mean = Fids.mean();
    Result.Fidelity.Std = Fids.stddev();
    Result.Fidelity.Min = Fids.min();
    Result.Fidelity.Max = Fids.max();
  }
  return Result;
}

CacheStats SimulationService::stats() const {
  std::lock_guard<std::mutex> Lock(M->StatsMutex);
  return M->Total;
}
