//===- service/SimulationService.cpp - Cached simulation front-end -----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SimulationService.h"

#include "hamgen/Registry.h"
#include "pauli/HamiltonianIO.h"
#include "sim/Kernels.h"
#include "sim/NoiseModel.h"
#include "support/CpuFeatures.h"
#include "stats/Stats.h"
#include "store/Codecs.h"
#include "support/Serial.h"
#include "support/Timer.h"

#include <algorithm>
#include <functional>
#include <mutex>

using namespace marqsim;

//===----------------------------------------------------------------------===//
// CacheStats
//===----------------------------------------------------------------------===//

CacheStats &CacheStats::operator+=(const CacheStats &O) {
  GCSolveHits += O.GCSolveHits;
  GCSolveMisses += O.GCSolveMisses;
  RPSolveHits += O.RPSolveHits;
  RPSolveMisses += O.RPSolveMisses;
  GraphHits += O.GraphHits;
  GraphMisses += O.GraphMisses;
  EvaluatorHits += O.EvaluatorHits;
  EvaluatorMisses += O.EvaluatorMisses;
  SuperHits += O.SuperHits;
  SuperMisses += O.SuperMisses;
  DiskLoads += O.DiskLoads;
  return *this;
}

//===----------------------------------------------------------------------===//
// SimulationService::Impl
//===----------------------------------------------------------------------===//

namespace {

/// Caps of the density-oracle paths. Direct dense evolution is O(4^n)
/// per schedule step; the composed superoperator holds 16^n complex
/// entries, so it is cached only where that is a few megabytes at most.
constexpr unsigned DensityOracleMaxQubits = 6;
constexpr unsigned SuperoperatorMaxQubits = 4;

/// An HTT graph plus the sampling tables built over it. The base strategy
/// carries the alias (or CDF) tables; tasks re-target it to their own
/// (time, epsilon) budget, sharing the tables.
struct GraphBundle {
  std::shared_ptr<const HTTGraph> Graph;
  std::shared_ptr<const SamplingStrategy> Base;
  bool Valid = false; // Theorem 4.1 validation, checked once at build
};

/// Builds a bundle over \p P — the one construction path shared by the
/// compute and disk-decode tiers, so a reloaded matrix reproduces the
/// computed bundle exactly (alias-table construction is a deterministic
/// function of the matrix bits).
GraphBundle makeBundle(const Hamiltonian &H, TransitionMatrix P,
                       const TaskSpec &Spec) {
  GraphBundle B;
  B.Graph = std::make_shared<const HTTGraph>(H, std::move(P));
  B.Valid = B.Graph->isValidForCompilation();
  if (B.Valid)
    B.Base = std::make_shared<const SamplingStrategy>(
        B.Graph, Spec.Time, Spec.Epsilon, Spec.UseCDF);
  return B;
}

/// LRU charge of a bundle: the combined matrix (8 bytes/entry) plus the
/// alias or CDF row tables (~12 bytes/entry) plus per-state vectors.
size_t bundleBytes(const GraphBundle &B) {
  size_t N = B.Graph->numStates();
  return N * N * 20 + N * 32;
}

} // namespace

struct SimulationService::Impl {
  ServiceOptions Options;

  /// The one cache of the service: every artifact type resolves through
  /// this tiered store (no per-type maps).
  ArtifactStore Store;

  mutable std::mutex StatsMutex;
  CacheStats Total;

  explicit Impl(ServiceOptions O)
      : Options(std::move(O)),
        Store(ArtifactStore::Options{Options.CacheDir,
                                     Options.CacheLimitBytes}) {}

  void note(const CacheStats &Delta, CacheStats *Local) {
    if (Local)
      *Local += Delta;
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Total += Delta;
  }

  //===--------------------------------------------------------------------===//
  // Cached resolution
  //===--------------------------------------------------------------------===//

  /// Resolves one MCFP component (Pgc or Prp) through the store. \p Solve
  /// runs at most once per key per process, and not at all when the disk
  /// tier has the artifact.
  std::shared_ptr<const TransitionMatrix>
  component(const ArtifactKey &Key, size_t ExpectedN, bool IsGC,
            const std::function<TransitionMatrix()> &Solve,
            CacheStats *Local) {
    ArtifactCodec<TransitionMatrix> Codec;
    Codec.Encode = [](const TransitionMatrix &P) {
      return store::encodeMatrixBody(store::MatrixMagic, P);
    };
    Codec.Decode = [ExpectedN](const std::string &Body) {
      return store::decodeMatrixBody(store::MatrixMagic, ExpectedN, Body);
    };
    Codec.Size = store::matrixBytes;
    ArtifactStore::Outcome Out;
    auto Value = Store.get<TransitionMatrix>(Key, Codec, Solve, &Out);
    CacheStats Delta;
    switch (Out) {
    case ArtifactStore::Outcome::Computed:
      (IsGC ? Delta.GCSolveMisses : Delta.RPSolveMisses)++;
      break;
    case ArtifactStore::Outcome::DiskHit:
      Delta.DiskLoads++;
      [[fallthrough]];
    case ArtifactStore::Outcome::MemoryHit:
      (IsGC ? Delta.GCSolveHits : Delta.RPSolveHits)++;
      break;
    }
    note(Delta, Local);
    return Value;
  }

  /// Builds the combined transition matrix of \p Mix for the prepared
  /// Hamiltonian, going through the component caches for the MCFP parts.
  TransitionMatrix combinedMatrix(const Hamiltonian &H, uint64_t Fingerprint,
                                  const TaskSpec &Spec, const ChannelMix &Mix,
                                  CacheStats *Local) {
    // Single-term Hamiltonians (and pure-qDrift mixes) skip the flow
    // machinery entirely; Pqd itself is O(n^2) to form and not worth
    // persisting.
    if (H.numTerms() < 2 || (Mix.WGc <= 0.0 && Mix.WRp <= 0.0))
      return buildQDrift(H);

    TransitionMatrix Pqd;
    std::vector<const TransitionMatrix *> Parts;
    std::vector<double> Weights;
    std::shared_ptr<const TransitionMatrix> GC, RP;
    if (Mix.WQd > 0.0) {
      Pqd = buildQDrift(H);
      Parts.push_back(&Pqd);
      Weights.push_back(Mix.WQd);
    }
    if (Mix.WGc > 0.0) {
      GC = component(store::componentKeyGC(Fingerprint, Spec.Flow),
                     H.numTerms(), /*IsGC=*/true,
                     [&] { return buildGateCancellation(H, Spec.Flow); },
                     Local);
      Parts.push_back(GC.get());
      Weights.push_back(Mix.WGc);
    }
    if (Mix.WRp > 0.0) {
      RP = component(
          store::componentKeyRP(Fingerprint, Spec.Flow, Spec.PerturbRounds,
                                Spec.PerturbSeed),
          H.numTerms(), /*IsGC=*/false,
          [&] {
            RNG PerturbRng(Spec.PerturbSeed);
            return buildRandomPerturbation(H, Spec.PerturbRounds, PerturbRng,
                                           Spec.Flow);
          },
          Local);
      Parts.push_back(RP.get());
      Weights.push_back(Mix.WRp);
    }
    if (Parts.size() == 1)
      return *Parts.front();
    return TransitionMatrix::combine(Parts, Weights);
  }

  /// Resolves the graph + sampling-table bundle of a sampling spec. The
  /// disk tier persists the combined matrix, so a warm store skips the
  /// whole provenance chain (component solves + convex combination); a
  /// disk hit therefore also credits the component hits it made
  /// unnecessary.
  std::shared_ptr<const GraphBundle> bundle(const Hamiltonian &H,
                                            uint64_t Fingerprint,
                                            const TaskSpec &Spec,
                                            const ChannelMix &Mix,
                                            CacheStats *Local) {
    ArtifactKey Key = store::aliasBundleKey(
        Fingerprint, Mix.WQd, Mix.WGc, Mix.WRp, Spec.Flow,
        Spec.PerturbRounds, Spec.PerturbSeed, Spec.UseCDF);
    // Only flow-backed bundles are worth a disk file: a pure-qDrift
    // matrix rebuilds in O(n^2) with no solve to skip.
    const bool FlowBacked =
        H.numTerms() >= 2 && (Mix.WGc > 0.0 || Mix.WRp > 0.0);
    ArtifactCodec<GraphBundle> Codec;
    Codec.Size = bundleBytes;
    if (FlowBacked) {
      Codec.Encode = [](const GraphBundle &B) {
        // Never persist a matrix that failed Theorem 4.1: a warm store
        // must only ever skip work, not launder invalid artifacts.
        if (!B.Valid)
          return std::string();
        return store::encodeMatrixBody(store::AliasMagic,
                                       B.Graph->transitionMatrix());
      };
      Codec.Decode =
          [&H, &Spec](const std::string &Body) -> std::optional<GraphBundle> {
        std::optional<TransitionMatrix> P = store::decodeMatrixBody(
            store::AliasMagic, H.numTerms(), Body);
        if (!P)
          return std::nullopt;
        return makeBundle(H, std::move(*P), Spec);
      };
    }
    ArtifactStore::Outcome Out;
    auto Value = Store.get<GraphBundle>(
        Key, Codec,
        [&] {
          return makeBundle(
              H, combinedMatrix(H, Fingerprint, Spec, Mix, Local), Spec);
        },
        &Out);
    CacheStats Delta;
    switch (Out) {
    case ArtifactStore::Outcome::Computed:
      Delta.GraphMisses++;
      break;
    case ArtifactStore::Outcome::DiskHit:
      Delta.GraphHits++;
      Delta.DiskLoads++;
      // The components never had to be resolved: credit the avoided
      // solves so "hits" keeps meaning "solves the cache saved us".
      if (Mix.WGc > 0.0)
        Delta.GCSolveHits++;
      if (Mix.WRp > 0.0)
        Delta.RPSolveHits++;
      break;
    case ArtifactStore::Outcome::MemoryHit:
      Delta.GraphHits++;
      break;
    }
    note(Delta, Local);
    return Value;
  }

  std::shared_ptr<const FidelityEvaluator>
  evaluator(const Hamiltonian &H, uint64_t Fingerprint, const TaskSpec &Spec,
            CacheStats *Local) {
    ArtifactKey Key = store::fidelityColumnsKey(
        Fingerprint, Spec.Time, Spec.Evaluate.FidelityColumns,
        Spec.Evaluate.ColumnSeed);
    // The computing constructor clamps to "all columns" past 2^n; the
    // stored artifact holds the clamped count.
    const size_t Dim = size_t(1) << H.numQubits();
    const size_t ExpectedColumns =
        std::min(Spec.Evaluate.FidelityColumns, Dim);
    ArtifactCodec<FidelityEvaluator> Codec;
    Codec.Encode = store::encodeFidelityBody;
    Codec.Decode = [NQubits = H.numQubits(),
                    ExpectedColumns](const std::string &Body) {
      return store::decodeFidelityBody(NQubits, ExpectedColumns, Body);
    };
    Codec.Size = store::fidelityBytes;
    ArtifactStore::Outcome Out;
    auto Value = Store.get<FidelityEvaluator>(
        Key, Codec,
        [&] {
          return FidelityEvaluator(H, Spec.Time,
                                   Spec.Evaluate.FidelityColumns,
                                   Spec.Evaluate.ColumnSeed);
        },
        &Out);
    CacheStats Delta;
    switch (Out) {
    case ArtifactStore::Outcome::Computed:
      Delta.EvaluatorMisses++;
      break;
    case ArtifactStore::Outcome::DiskHit:
      Delta.DiskLoads++;
      [[fallthrough]];
    case ArtifactStore::Outcome::MemoryHit:
      Delta.EvaluatorHits++;
      break;
    }
    note(Delta, Local);
    return Value;
  }

  /// Resolves a composed noisy-schedule superoperator. \p Build runs at
  /// most once per key per process (single-flight), and not at all when
  /// the disk tier has the artifact; a corrupt or stale file falls back
  /// to recomposition like every other type.
  std::shared_ptr<const Matrix>
  superoperator(const ArtifactKey &Key, size_t ExpectedDim,
                const std::function<Matrix()> &Build, CacheStats *Local) {
    ArtifactCodec<Matrix> Codec;
    Codec.Encode = [](const Matrix &S) { return store::encodeSuperBody(S); };
    Codec.Decode = [ExpectedDim](const std::string &Body) {
      return store::decodeSuperBody(ExpectedDim, Body);
    };
    Codec.Size = store::superBytes;
    ArtifactStore::Outcome Out;
    auto Value = Store.get<Matrix>(Key, Codec, Build, &Out);
    CacheStats Delta;
    switch (Out) {
    case ArtifactStore::Outcome::Computed:
      Delta.SuperMisses++;
      break;
    case ArtifactStore::Outcome::DiskHit:
      Delta.DiskLoads++;
      [[fallthrough]];
    case ArtifactStore::Outcome::MemoryHit:
      Delta.SuperHits++;
      break;
    }
    note(Delta, Local);
    return Value;
  }
};

//===----------------------------------------------------------------------===//
// SimulationService
//===----------------------------------------------------------------------===//

SimulationService::SimulationService(ServiceOptions Opts)
    : M(std::make_unique<Impl>(std::move(Opts))) {}

SimulationService::~SimulationService() = default;

Hamiltonian SimulationService::prepare(const Hamiltonian &Raw) {
  // merged() canonicalizes the term order, making the downstream MCFP and
  // sampling artifacts a pure function of the operator content; the split
  // re-establishes the pi_i <= 0.5 flow-feasibility precondition.
  return Raw.merged().splitLargeTerms();
}

std::optional<Hamiltonian>
SimulationService::resolveHamiltonian(const HamiltonianSource &S,
                                      std::string *Error,
                                      bool Canonicalize) {
  std::optional<Hamiltonian> H;
  switch (S.SourceKind) {
  case HamiltonianSource::Kind::File:
    H = readHamiltonianFile(S.Path, Error);
    if (!H)
      return std::nullopt;
    break;
  case HamiltonianSource::Kind::Model: {
    std::optional<BenchmarkSpec> Spec = findBenchmark(S.Model);
    if (!Spec) {
      detail::fail(Error, "unknown benchmark model '" + S.Model + "'");
      return std::nullopt;
    }
    H = makeBenchmark(*Spec);
    break;
  }
  case HamiltonianSource::Kind::Inline:
    if (S.Ham.empty()) {
      detail::fail(Error, "inline Hamiltonian source is empty");
      return std::nullopt;
    }
    H = S.Ham;
    break;
  }
  if (!H) {
    detail::fail(Error, "unreachable Hamiltonian source kind");
    return std::nullopt;
  }
  return Canonicalize ? prepare(*H) : std::move(*H);
}

std::shared_ptr<const HTTGraph>
SimulationService::graphFor(const TaskSpec &Spec, std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    detail::fail(Error, Validation);
    return nullptr;
  }
  std::optional<Hamiltonian> H = resolveHamiltonian(Spec.Source, Error);
  if (!H)
    return nullptr;
  ChannelMix Mix = Spec.Mix;
  Mix.normalize();
  auto Bundle = M->bundle(*H, H->fingerprint(), Spec, Mix, nullptr);
  if (!Bundle->Valid) {
    detail::fail(Error, "transition matrix failed Theorem 4.1 validation");
    return nullptr;
  }
  return Bundle->Graph;
}

bool SimulationService::prewarm(const TaskSpec &Spec, std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation))
    return detail::fail(Error, Validation);
  // Resolve exactly as run() would (sampling canonicalizes, the Trotter
  // family does not), so the warmed keys are the keys the run will ask
  // for.
  bool Canonical = Spec.Method == TaskMethod::Sampling;
  std::optional<Hamiltonian> H =
      resolveHamiltonian(Spec.Source, Error, Canonical);
  if (!H)
    return false;
  const uint64_t Fingerprint = H->fingerprint();
  if (Spec.Method == TaskMethod::Sampling) {
    ChannelMix Mix = Spec.Mix;
    Mix.normalize();
    auto Bundle = M->bundle(*H, Fingerprint, Spec, Mix, nullptr);
    if (!Bundle->Valid)
      return detail::fail(Error,
                          "transition matrix failed Theorem 4.1 validation");
  }
  if (Spec.Evaluate.FidelityColumns > 0)
    M->evaluator(*H, Fingerprint, Spec, nullptr);
  return true;
}

std::optional<TaskResult> SimulationService::run(const TaskSpec &Spec,
                                                 std::string *Error) {
  return run(Spec, ShotRange{0, Spec.Shots}, Error);
}

std::optional<TaskResult> SimulationService::run(const TaskSpec &Spec,
                                                 const ShotRange &Range,
                                                 std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    detail::fail(Error, Validation);
    return std::nullopt;
  }
  // Overflow-safe: Range.end() could wrap for adversarial Begin/Count.
  if (Range.Count < 1 || Range.Begin > Spec.Shots ||
      Range.Count > Spec.Shots - Range.Begin) {
    detail::fail(Error, "shot range [" + std::to_string(Range.Begin) + ", " +
                            std::to_string(Range.end()) +
                            ") is empty or exceeds the task's " +
                            std::to_string(Spec.Shots) + " shots");
    return std::nullopt;
  }
  // Only the sampling path canonicalizes (its caches and MCFP need it);
  // Trotter-family tasks compile the operator exactly as given so
  // TermOrderKind::Given keeps its meaning. fingerprint() merges
  // internally, so both forms share one content hash (and hence one
  // cached fidelity evaluator — the operator is identical either way).
  bool Canonical = Spec.Method == TaskMethod::Sampling;
  std::optional<Hamiltonian> Resolved =
      resolveHamiltonian(Spec.Source, Error, Canonical);
  if (!Resolved)
    return std::nullopt;
  const Hamiltonian &H = *Resolved;

  TaskResult Result;
  Result.Fingerprint = H.fingerprint();

  // Schedule strategy: sampling goes through the artifact caches, the
  // Trotter family is cheap enough to construct per task.
  std::shared_ptr<const ScheduleStrategy> Strategy;
  switch (Spec.Method) {
  case TaskMethod::Sampling: {
    ChannelMix Mix = Spec.Mix;
    Mix.normalize();
    auto Bundle =
        M->bundle(H, Result.Fingerprint, Spec, Mix, &Result.Stats);
    if (!Bundle->Valid) {
      detail::fail(Error, "transition matrix failed Theorem 4.1 validation");
      return std::nullopt;
    }
    // Re-target the cached tables to this task's (time, epsilon) budget;
    // the alias/CDF rows are shared, only N and tau are recomputed.
    std::shared_ptr<const SamplingStrategy> Sampling =
        Bundle->Base->retargeted(Spec.Time, Spec.Epsilon);
    Result.NumSamples = Sampling->sampleCount();
    if (Spec.Evaluate.DumpDot)
      Result.GraphDot = Bundle->Graph->toDot();
    Strategy = std::move(Sampling);
    break;
  }
  case TaskMethod::Trotter:
    Strategy = std::make_shared<const TrotterStrategy>(
        H, Spec.Time, Spec.TrotterReps, Spec.Order, Spec.TrotterOrder);
    break;
  case TaskMethod::RandomOrderTrotter:
    Strategy = std::make_shared<const RandomOrderTrotterStrategy>(
        H, Spec.Time, Spec.TrotterReps);
    break;
  case TaskMethod::SparSto:
    Strategy = std::make_shared<const SparStoStrategy>(
        H, Spec.Time, Spec.TrotterReps, Spec.SparStoKeepScale);
    break;
  }

  std::shared_ptr<const FidelityEvaluator> Eval;
  if (Spec.Evaluate.FidelityColumns > 0) {
    Eval = M->evaluator(H, Result.Fingerprint, Spec, &Result.Stats);
    Result.HasFidelity = true;
    Result.ShotFidelities.assign(Range.Count, 0.0);
  }

  // Noise setup. The stochastic tier works at any size; the density
  // oracle is dense 2^n x 2^n evolution, capped at small n, and the
  // cacheable superoperator form (D^4 entries) at smaller n still. Both
  // caps are pure functions of (spec, qubit count) — never of cache
  // state or worker count — so every jobs/shard split takes the same
  // path and the bit-identity contract holds.
  std::optional<NoiseModel> Noise;
  if (Spec.Noise.enabled() && Eval) {
    if (Spec.Noise.Mode == NoiseMode::Density &&
        H.numQubits() > DensityOracleMaxQubits) {
      detail::fail(Error, "the density-matrix noise oracle is capped at " +
                              std::to_string(DensityOracleMaxQubits) +
                              " qubits (task has " +
                              std::to_string(H.numQubits()) +
                              "); use --noise-mode=stochastic");
      return std::nullopt;
    }
    Noise.emplace(Spec.Noise);
  }
  const bool StochasticNoise =
      Noise && Spec.Noise.Mode == NoiseMode::Stochastic;

  // Shot zero is a global notion: only the range that contains it can
  // export it.
  bool WantShotZero = Spec.Evaluate.ExportShotZero && Range.Begin == 0;

  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = Range.Count;
  Req.FirstShot = Range.Begin;
  Req.Jobs = Spec.Jobs;
  Req.EvalJobs = Spec.EvalJobs;
  Req.Seed = Spec.Seed;
  Req.Opts = Spec.Lowering;
  Req.KeepResults = Spec.Evaluate.KeepResults;
  // Deterministic strategies replicate one compiled shot across the
  // batch, so their fidelity is evaluated once and replicated too — not
  // recomputed per shot on the identical schedule. Stochastic noise is
  // the exception: every shot draws its own errors from its own
  // substream, so the identical schedule still evaluates differently.
  // (The density oracle is itself deterministic, so it keeps the fold.)
  const bool EvalOnce =
      Eval && Strategy->isDeterministic() && !StochasticNoise;
  // Per-shot evaluation seconds: each worker writes its own slot, the sum
  // lands in BatchResult::EvalSeconds after the batch (timing is a
  // diagnostic, never a golden). Only the fidelity call is timed — the
  // shot-0 artifact copy below is walk/emission bookkeeping, not
  // evaluation.
  std::vector<double> EvalSecs(Eval ? Range.Count : 0, 0.0);
  if (Eval || WantShotZero) {
    // In-worker evaluation: each shot's fidelity is computed on the
    // worker that compiled it (the evaluator is immutable, the fidelity
    // a pure function of the schedule), writing to the shot's own slot.
    // Within the shot, the evaluator fans its column blocks across
    // Req.EvalJobs workers — the fixed block partition keeps every value
    // bit-identical. The hook's index is range-relative, matching the
    // result vectors.
    // The noisy fidelity of a shot is a pure function of (schedule,
    // spec seed, global shot index): stochastic draws come from the
    // counter-based noise substream at the *global* index (the hook's is
    // range-relative), so a sharded range reproduces the single-process
    // values bit for bit.
    const bool UseSuper = Noise && !StochasticNoise &&
                          Strategy->isDeterministic() &&
                          H.numQubits() <= SuperoperatorMaxQubits;
    Req.PerShot = [&, EvalJobs = Req.EvalJobs,
                   Precision = Spec.Precision](size_t Shot,
                                               const CompilationResult &R) {
      if (Eval && (!EvalOnce || Shot == 0)) {
        Timer EvalClock;
        if (StochasticNoise) {
          RNG NoiseRng = RNG::forShot(
              NoiseModel::noiseStreamSeed(Spec.Seed), Range.Begin + Shot);
          Result.ShotFidelities[Shot] = Eval->stateFidelity(
              Noise->injectErrors(R.Schedule, NoiseRng), EvalJobs, Precision);
        } else if (Noise && UseSuper) {
          const size_t SuperDim = (size_t(1) << H.numQubits()) *
                                  (size_t(1) << H.numQubits());
          auto Super = M->superoperator(
              store::superoperatorKey(
                  Result.Fingerprint, Spec.Time, Spec.TrotterReps,
                  Spec.TrotterOrder, static_cast<uint64_t>(Spec.Order),
                  Spec.Lowering.Emit.CrossCancellation,
                  static_cast<uint64_t>(Spec.Noise.Kind),
                  serial::doubleBits(Spec.Noise.Prob),
                  serial::doubleBits(Spec.Noise.TwoQubitFactor)),
              SuperDim,
              [&] {
                return Noise->buildSuperoperator(R.Schedule, H.numQubits());
              },
              &Result.Stats);
          Result.ShotFidelities[Shot] =
              Noise->densityFidelityFromSuper(*Super, *Eval);
        } else if (Noise) {
          Result.ShotFidelities[Shot] =
              Noise->densityFidelity(R.Schedule, H.numQubits(), *Eval);
        } else {
          Result.ShotFidelities[Shot] =
              Eval->fidelity(R.Schedule, EvalJobs, Precision);
        }
        EvalSecs[Shot] = EvalClock.seconds();
      }
      if (WantShotZero && Shot == 0)
        Result.ShotZero = R; // single writer: shot 0's worker only
    };
  }

  CompilerEngine Engine;
  Result.Batch = Engine.compileBatch(Req);
  for (double S : EvalSecs)
    Result.Batch.EvalSeconds += S;
  Result.HasShotZero = WantShotZero;
  if (EvalOnce)
    std::fill(Result.ShotFidelities.begin() + 1, Result.ShotFidelities.end(),
              Result.ShotFidelities.front());

  if (Eval) {
    RunningStats Fids;
    for (double F : Result.ShotFidelities)
      Fids.add(F);
    Result.Fidelity.Mean = Fids.mean();
    Result.Fidelity.Std = Fids.stddev();
    Result.Fidelity.Min = Fids.min();
    Result.Fidelity.Max = Fids.max();
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Artifact transport (the cross-host fabric's content-addressed fetch)
//===----------------------------------------------------------------------===//

namespace {

/// Encoded alias-bundle body, or empty for bundles that must not travel
/// (invalid matrices, which the store's own Encode refuses too).
std::string encodeBundleBody(const GraphBundle &B) {
  if (!B.Valid)
    return std::string();
  return store::encodeMatrixBody(store::AliasMagic,
                                 B.Graph->transitionMatrix());
}

} // namespace

std::optional<std::vector<TaskArtifact>>
SimulationService::exportArtifacts(const TaskSpec &Spec, std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    detail::fail(Error, Validation);
    return std::nullopt;
  }
  bool Canonical = Spec.Method == TaskMethod::Sampling;
  std::optional<Hamiltonian> H =
      resolveHamiltonian(Spec.Source, Error, Canonical);
  if (!H)
    return std::nullopt;
  const uint64_t Fingerprint = H->fingerprint();

  std::vector<TaskArtifact> Out;
  if (Spec.Method == TaskMethod::Sampling) {
    ChannelMix Mix = Spec.Mix;
    Mix.normalize();
    // Only flow-backed bundles are worth shipping: a pure-qDrift matrix
    // rebuilds in O(n^2) on the worker with no solve to skip (mirroring
    // the disk tier's persistence policy).
    if (H->numTerms() >= 2 && (Mix.WGc > 0.0 || Mix.WRp > 0.0)) {
      auto Bundle = M->bundle(*H, Fingerprint, Spec, Mix, nullptr);
      if (!Bundle->Valid) {
        detail::fail(Error,
                     "transition matrix failed Theorem 4.1 validation");
        return std::nullopt;
      }
      TaskArtifact A;
      A.Key = store::aliasBundleKey(Fingerprint, Mix.WQd, Mix.WGc, Mix.WRp,
                                    Spec.Flow, Spec.PerturbRounds,
                                    Spec.PerturbSeed, Spec.UseCDF);
      A.Body = encodeBundleBody(*Bundle);
      if (!A.Body.empty())
        Out.push_back(std::move(A));
    }
  }
  if (Spec.Evaluate.FidelityColumns > 0) {
    auto Eval = M->evaluator(*H, Fingerprint, Spec, nullptr);
    TaskArtifact A;
    A.Key = store::fidelityColumnsKey(Fingerprint, Spec.Time,
                                      Spec.Evaluate.FidelityColumns,
                                      Spec.Evaluate.ColumnSeed);
    A.Body = store::encodeFidelityBody(*Eval);
    Out.push_back(std::move(A));
  }
  return Out;
}

std::optional<std::string>
SimulationService::exportArtifactBody(const ArtifactKey &Key) {
  // The memory tier holds decoded values; the encoders are context-free,
  // so the key's type alone picks the right cast.
  if (std::shared_ptr<const void> V = M->Store.peekValue(Key.Id)) {
    switch (Key.Type) {
    case ArtifactType::ComponentMatrix:
      return store::encodeMatrixBody(
          store::MatrixMagic,
          *std::static_pointer_cast<const TransitionMatrix>(V));
    case ArtifactType::AliasBundle: {
      std::string Body =
          encodeBundleBody(*std::static_pointer_cast<const GraphBundle>(V));
      if (Body.empty())
        return std::nullopt;
      return Body;
    }
    case ArtifactType::FidelityColumns:
      return store::encodeFidelityBody(
          *std::static_pointer_cast<const FidelityEvaluator>(V));
    case ArtifactType::Superoperator:
      return store::encodeSuperBody(
          *std::static_pointer_cast<const Matrix>(V));
    }
  }
  // The disk tier already holds the encoded body verbatim.
  return M->Store.peekDiskBody(Key);
}

std::optional<ArtifactImport>
SimulationService::importArtifact(const TaskSpec &Spec,
                                  const ArtifactKey &Key,
                                  const std::string &Body,
                                  std::string *Error) {
  std::string Validation;
  if (!Spec.validate(&Validation)) {
    detail::fail(Error, Validation);
    return std::nullopt;
  }
  bool Canonical = Spec.Method == TaskMethod::Sampling;
  std::optional<Hamiltonian> Resolved =
      resolveHamiltonian(Spec.Source, Error, Canonical);
  if (!Resolved)
    return std::nullopt;
  const Hamiltonian &H = *Resolved;
  const uint64_t Fingerprint = H.fingerprint();

  // The spec is the authorization: only keys the spec itself would
  // resolve are accepted, with the spec supplying the decode context.
  // Anything else — including a syntactically fine key with the wrong
  // fingerprint — is rejected, so a client cannot seed mismatched
  // artifacts under colliding ids.
  ArtifactStore::PutOutcome Put = ArtifactStore::PutOutcome::Rejected;
  bool Known = false;
  if (Spec.Method == TaskMethod::Sampling) {
    ChannelMix Mix = Spec.Mix;
    Mix.normalize();
    ArtifactKey BundleKey = store::aliasBundleKey(
        Fingerprint, Mix.WQd, Mix.WGc, Mix.WRp, Spec.Flow,
        Spec.PerturbRounds, Spec.PerturbSeed, Spec.UseCDF);
    if (Key.Id == BundleKey.Id) {
      Known = true;
      ArtifactCodec<GraphBundle> Codec;
      Codec.Size = bundleBytes;
      Codec.Encode = encodeBundleBody;
      Codec.Decode =
          [&H, &Spec](const std::string &B) -> std::optional<GraphBundle> {
        std::optional<TransitionMatrix> P =
            store::decodeMatrixBody(store::AliasMagic, H.numTerms(), B);
        if (!P)
          return std::nullopt;
        GraphBundle Bundle = makeBundle(H, std::move(*P), Spec);
        // Never admit a matrix that fails Theorem 4.1: a poisoned cache
        // entry would turn every later run of this spec into a failure.
        if (!Bundle.Valid)
          return std::nullopt;
        return Bundle;
      };
      Put = M->Store.put(BundleKey, Codec, Body);
    }
    if (!Known) {
      // Component solves are accepted too (symmetric with what a shared
      // cache directory would hold), though the fleet push normally ships
      // only the combined bundle.
      ArtifactKey GC = store::componentKeyGC(Fingerprint, Spec.Flow);
      ArtifactKey RP = store::componentKeyRP(
          Fingerprint, Spec.Flow, Spec.PerturbRounds, Spec.PerturbSeed);
      if (Key.Id == GC.Id || Key.Id == RP.Id) {
        Known = true;
        ArtifactCodec<TransitionMatrix> Codec;
        Codec.Size = store::matrixBytes;
        Codec.Encode = [](const TransitionMatrix &P) {
          return store::encodeMatrixBody(store::MatrixMagic, P);
        };
        Codec.Decode = [N = H.numTerms()](const std::string &B) {
          return store::decodeMatrixBody(store::MatrixMagic, N, B);
        };
        Put = M->Store.put(Key.Id == GC.Id ? GC : RP, Codec, Body);
      }
    }
  }
  if (!Known && Spec.Evaluate.FidelityColumns > 0) {
    ArtifactKey FidKey = store::fidelityColumnsKey(
        Fingerprint, Spec.Time, Spec.Evaluate.FidelityColumns,
        Spec.Evaluate.ColumnSeed);
    if (Key.Id == FidKey.Id) {
      Known = true;
      const size_t Dim = size_t(1) << H.numQubits();
      ArtifactCodec<FidelityEvaluator> Codec;
      Codec.Size = store::fidelityBytes;
      Codec.Encode = store::encodeFidelityBody;
      Codec.Decode = [NQubits = H.numQubits(),
                      Columns = std::min(Spec.Evaluate.FidelityColumns,
                                         Dim)](const std::string &B) {
        return store::decodeFidelityBody(NQubits, Columns, B);
      };
      Put = M->Store.put(FidKey, Codec, Body);
    }
  }

  if (!Known) {
    detail::fail(Error, "artifact key '" + Key.Id +
                            "' does not belong to this task");
    return std::nullopt;
  }
  switch (Put) {
  case ArtifactStore::PutOutcome::Inserted:
    return ArtifactImport::Inserted;
  case ArtifactStore::PutOutcome::AlreadyPresent:
    return ArtifactImport::Present;
  case ArtifactStore::PutOutcome::Rejected:
    break;
  }
  detail::fail(Error, "artifact body for '" + Key.Id +
                          "' failed to decode (corrupt or stale)");
  return std::nullopt;
}

CacheStats SimulationService::stats() const {
  std::lock_guard<std::mutex> Lock(M->StatsMutex);
  return M->Total;
}

ArtifactStore::Stats SimulationService::storeStats() const {
  return M->Store.stats();
}

const char *SimulationService::kernelName() { return kernels::activeName(); }

const char *SimulationService::detectedKernelName() {
  return kernels::detectedName();
}

bool SimulationService::avx512OsEnabled() { return cpuFeatures().AVX512OS; }
