//===- fermion/JordanWigner.h - Fermion-to-qubit mapping --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Jordan-Wigner fermion-to-qubit transformation [Jordan & Wigner 1928],
/// which the paper uses (via Qiskit Nature) to turn second-quantized
/// electronic-structure Hamiltonians into Pauli-string sums, plus Majorana
/// operators for the SYK benchmarks.
///
/// Conventions: spin-orbital p maps to qubit p; the annihilation operator is
///   a_p = Z_{p-1} ... Z_0 (x) (X_p + i Y_p)/2,
/// and Majorana modes are
///   chi_{2p}   = a_p + a_p^dag  = Z...Z X_p,
///   chi_{2p+1} = -i (a_p - a_p^dag) = Z...Z Y_p.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_FERMION_JORDANWIGNER_H
#define MARQSIM_FERMION_JORDANWIGNER_H

#include "pauli/PauliSum.h"

namespace marqsim {

/// Jordan-Wigner image of the annihilation operator a_p.
PauliSum jwAnnihilation(unsigned P);

/// Jordan-Wigner image of the creation operator a_p^dag.
PauliSum jwCreation(unsigned P);

/// Jordan-Wigner image of the number operator n_p = a_p^dag a_p
/// (equals (I - Z_p)/2).
PauliSum jwNumber(unsigned P);

/// Jordan-Wigner image of the Majorana mode chi_k, k in [0, 2*modes).
PauliSum jwMajorana(unsigned K);

/// Hermitian one-body excitation a_p^dag a_q + a_q^dag a_p (p != q), or
/// the number operator when p == q, scaled by \p Coeff.
PauliSum jwOneBody(double Coeff, unsigned P, unsigned Q);

/// Hermitian two-body term
///   Coeff * (a_p^dag a_q^dag a_r a_s + a_s^dag a_r^dag a_q a_p).
/// Returns the zero operator when the monomial annihilates itself
/// (e.g. p == q or r == s, by Pauli exclusion).
PauliSum jwTwoBody(double Coeff, unsigned P, unsigned Q, unsigned R,
                   unsigned S);

} // namespace marqsim

#endif // MARQSIM_FERMION_JORDANWIGNER_H
