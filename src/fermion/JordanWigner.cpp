//===- fermion/JordanWigner.cpp - Fermion-to-qubit mapping ------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fermion/JordanWigner.h"

using namespace marqsim;

/// Mask with Z on all qubits below \p P (the Jordan-Wigner parity string).
static uint64_t parityMask(unsigned P) { return (1ULL << P) - 1; }

PauliSum marqsim::jwAnnihilation(unsigned P) {
  assert(P < 64 && "mode index out of range");
  uint64_t Bit = 1ULL << P;
  uint64_t Parity = parityMask(P);
  PauliSum S;
  // a_p = (X + iY)/2 on qubit p, times the Z parity chain.
  S.add(Complex(0.5, 0.0), PauliString(Bit, Parity));
  S.add(Complex(0.0, 0.5), PauliString(Bit, Parity | Bit));
  return S;
}

PauliSum marqsim::jwCreation(unsigned P) {
  return jwAnnihilation(P).adjoint();
}

PauliSum marqsim::jwNumber(unsigned P) {
  assert(P < 64 && "mode index out of range");
  PauliSum S;
  S.add(Complex(0.5, 0.0), PauliString());
  S.add(Complex(-0.5, 0.0), PauliString(0, 1ULL << P));
  return S;
}

PauliSum marqsim::jwMajorana(unsigned K) {
  assert(K < 128 && "Majorana index out of range");
  unsigned P = K / 2;
  uint64_t Bit = 1ULL << P;
  uint64_t Parity = parityMask(P);
  PauliSum S;
  if (K % 2 == 0)
    S.add(Complex(1.0, 0.0), PauliString(Bit, Parity)); // Z...Z X_p
  else
    S.add(Complex(1.0, 0.0), PauliString(Bit, Parity | Bit)); // Z...Z Y_p
  return S;
}

PauliSum marqsim::jwOneBody(double Coeff, unsigned P, unsigned Q) {
  if (P == Q)
    return jwNumber(P) * Complex(Coeff, 0.0);
  PauliSum Hop = jwCreation(P) * jwAnnihilation(Q);
  PauliSum Term = (Hop + Hop.adjoint()) * Complex(Coeff, 0.0);
  Term.prune();
  return Term;
}

PauliSum marqsim::jwTwoBody(double Coeff, unsigned P, unsigned Q, unsigned R,
                            unsigned S) {
  PauliSum Mono = jwCreation(P) * jwCreation(Q) * jwAnnihilation(R) *
                  jwAnnihilation(S);
  PauliSum Term = (Mono + Mono.adjoint()) * Complex(Coeff, 0.0);
  Term.prune();
  return Term;
}
