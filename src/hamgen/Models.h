//===- hamgen/Models.h - Physical model Hamiltonians ------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hamiltonian generators for the physical models exercised by the paper's
/// evaluation and examples: SYK quantum-field models (via our Majorana /
/// Jordan-Wigner machinery), spin-lattice models (transverse-field Ising,
/// Heisenberg XXZ) for the domain examples, and random Pauli Hamiltonians
/// for the Table 2 scalability study.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_HAMGEN_MODELS_H
#define MARQSIM_HAMGEN_MODELS_H

#include "pauli/Hamiltonian.h"
#include "support/RNG.h"

namespace marqsim {

/// Transverse-field Ising chain: H = -J sum Z_i Z_{i+1} - G sum X_i.
Hamiltonian makeTransverseFieldIsing(unsigned NumQubits, double J, double G,
                                     bool Periodic = false);

/// Heisenberg XXZ chain with optional longitudinal field:
/// H = sum_i (Jx X_i X_{i+1} + Jy Y_i Y_{i+1} + Jz Z_i Z_{i+1})
///     + Hz sum_i Z_i.
Hamiltonian makeHeisenbergXXZ(unsigned NumQubits, double Jx, double Jy,
                              double Jz, double Hz, bool Periodic = false);

/// SYK-4 model on 2*NumQubits Majorana modes mapped by Jordan-Wigner:
/// H = sum_{i<j<k<l} J_{ijkl} chi_i chi_j chi_k chi_l with Gaussian
/// couplings of variance 3! J^2 / (2n)^3. \p NumTerms distinct quadruples
/// are drawn uniformly (all of them when NumTerms >= C(2n, 4)), matching
/// how the paper's SYK benchmarks downsample to 210 strings.
Hamiltonian makeSYK(unsigned NumQubits, size_t NumTerms, double J, RNG &Rng);

/// Random Hamiltonian of \p NumTerms distinct uniformly drawn Pauli strings
/// with coefficients uniform in [0.2, 1.0] (Table 2's scalability inputs).
Hamiltonian makeRandomHamiltonian(unsigned NumQubits, size_t NumTerms,
                                  RNG &Rng);

} // namespace marqsim

#endif // MARQSIM_HAMGEN_MODELS_H
