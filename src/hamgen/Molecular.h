//===- hamgen/Molecular.h - Synthetic molecular Hamiltonians ----*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic second-quantized electronic-structure Hamiltonians.
///
/// The paper generates its molecular benchmarks (Na+, Cl-, Ar, OH-, HF,
/// LiH, BeH2, H2O) with PySCF + Qiskit Nature, which are unavailable here.
/// Substitution (see DESIGN.md): we synthesize Hermitian one- and two-body
/// integrals with molecular-like structure — dominant diagonal orbital
/// energies, exponentially decaying off-diagonal hopping, dense
/// density-density (Coulomb/exchange-like) pairs, and a randomized set of
/// double excitations — and map them through our own Jordan-Wigner
/// transform. The generator then trims to an exact target Pauli-string
/// count (keeping the largest-|h| terms, the "freeze core" spirit), so the
/// workload sizes match Table 1 exactly. What MarQSim actually consumes —
/// the weight distribution and the operator-overlap structure between
/// Z-chain ladder strings — is faithfully reproduced.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_HAMGEN_MOLECULAR_H
#define MARQSIM_HAMGEN_MOLECULAR_H

#include "pauli/Hamiltonian.h"

#include <cstdint>

namespace marqsim {

/// Generates a molecular-like Hamiltonian over \p NumQubits spin-orbitals
/// with exactly \p TargetStrings Pauli terms (assert-checked), seeded
/// deterministically.
Hamiltonian makeMolecularLike(unsigned NumQubits, size_t TargetStrings,
                              uint64_t Seed);

} // namespace marqsim

#endif // MARQSIM_HAMGEN_MOLECULAR_H
