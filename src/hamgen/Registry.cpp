//===- hamgen/Registry.cpp - Paper benchmark registry ------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Registry.h"

#include "hamgen/Models.h"
#include "hamgen/Molecular.h"

#include <cmath>

using namespace marqsim;

const std::vector<BenchmarkSpec> &marqsim::paperBenchmarks() {
  static const double Pi4 = M_PI / 4.0;
  // Table 1 of the paper. Seeds are arbitrary but fixed so each benchmark
  // is a stable, reproducible workload.
  static const std::vector<BenchmarkSpec> Specs = {
      {"Na+", 8, 60, Pi4, BenchmarkKind::Molecular, 11},
      {"Cl-", 8, 60, Pi4, BenchmarkKind::Molecular, 17},
      {"Ar", 8, 60, Pi4, BenchmarkKind::Molecular, 18},
      {"OH-", 10, 275, Pi4, BenchmarkKind::Molecular, 8},
      {"HF", 10, 275, Pi4, BenchmarkKind::Molecular, 9},
      {"LiH-froze", 10, 275, Pi4, BenchmarkKind::Molecular, 3},
      {"BeH2-froze", 12, 661, Pi4, BenchmarkKind::Molecular, 4},
      {"LiH", 12, 614, Pi4, BenchmarkKind::Molecular, 31},
      {"H2O", 12, 550, Pi4, BenchmarkKind::Molecular, 101},
      {"SYK-1", 8, 210, 0.15, BenchmarkKind::SYK, 21},
      {"SYK-2", 10, 210, 0.15, BenchmarkKind::SYK, 22},
      {"BeH2", 14, 661, 0.15, BenchmarkKind::Molecular, 41},
  };
  return Specs;
}

std::optional<BenchmarkSpec>
marqsim::findBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &Spec : paperBenchmarks())
    if (Spec.Name == Name)
      return Spec;
  return std::nullopt;
}

Hamiltonian marqsim::makeBenchmark(const BenchmarkSpec &Spec) {
  // Normalize lambda so that N = ceil(2 lambda^2 t^2 / eps) lands in the
  // paper's sampling regime (units of synthetic integrals are arbitrary;
  // the stationary distribution is unaffected). Molecular workloads grow
  // with the term count like real electronic-structure Hamiltonians do.
  switch (Spec.Kind) {
  case BenchmarkKind::Molecular: {
    Hamiltonian H = makeMolecularLike(Spec.Qubits, Spec.Strings, Spec.Seed);
    return H.rescaledToLambda(1.6 *
                              std::sqrt(static_cast<double>(Spec.Strings)));
  }
  case BenchmarkKind::SYK: {
    RNG Rng(Spec.Seed ^ 0x53594bULL); // "SYK" tag
    Hamiltonian H = makeSYK(Spec.Qubits, Spec.Strings, /*J=*/1.0, Rng);
    return H.rescaledToLambda(25.0);
  }
  }
  assert(false && "invalid BenchmarkKind");
  return Hamiltonian();
}
