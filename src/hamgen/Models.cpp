//===- hamgen/Models.cpp - Physical model Hamiltonians -----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"

#include "fermion/JordanWigner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

using namespace marqsim;

Hamiltonian marqsim::makeTransverseFieldIsing(unsigned NumQubits, double J,
                                              double G, bool Periodic) {
  assert(NumQubits >= 2 && "Ising chain needs at least two sites");
  Hamiltonian H(NumQubits);
  unsigned Bonds = Periodic ? NumQubits : NumQubits - 1;
  for (unsigned I = 0; I < Bonds; ++I) {
    unsigned A = I, B = (I + 1) % NumQubits;
    H.addTerm(-J, PauliString(0, (1ULL << A) | (1ULL << B)));
  }
  for (unsigned I = 0; I < NumQubits; ++I)
    H.addTerm(-G, PauliString(1ULL << I, 0));
  return H;
}

Hamiltonian marqsim::makeHeisenbergXXZ(unsigned NumQubits, double Jx,
                                       double Jy, double Jz, double Hz,
                                       bool Periodic) {
  assert(NumQubits >= 2 && "Heisenberg chain needs at least two sites");
  Hamiltonian H(NumQubits);
  unsigned Bonds = Periodic ? NumQubits : NumQubits - 1;
  for (unsigned I = 0; I < Bonds; ++I) {
    uint64_t A = 1ULL << I, B = 1ULL << ((I + 1) % NumQubits);
    if (Jx != 0.0)
      H.addTerm(Jx, PauliString(A | B, 0));
    if (Jy != 0.0)
      H.addTerm(Jy, PauliString(A | B, A | B));
    if (Jz != 0.0)
      H.addTerm(Jz, PauliString(0, A | B));
  }
  if (Hz != 0.0)
    for (unsigned I = 0; I < NumQubits; ++I)
      H.addTerm(Hz, PauliString(0, 1ULL << I));
  return H;
}

Hamiltonian marqsim::makeSYK(unsigned NumQubits, size_t NumTerms, double J,
                             RNG &Rng) {
  assert(NumQubits >= 2 && NumQubits <= 32 && "SYK size out of range");
  const unsigned Modes = 2 * NumQubits; // Majorana modes
  // Total number of quadruples i<j<k<l.
  auto Choose4 = [](unsigned M) -> size_t {
    return static_cast<size_t>(M) * (M - 1) * (M - 2) * (M - 3) / 24;
  };
  const size_t All = Choose4(Modes);
  NumTerms = std::min(NumTerms, All);
  assert(NumTerms > 0 && "SYK needs at least one term");

  // Draw distinct quadruples.
  std::set<std::array<unsigned, 4>> Quads;
  while (Quads.size() < NumTerms) {
    std::array<unsigned, 4> Q;
    std::set<unsigned> Distinct;
    while (Distinct.size() < 4)
      Distinct.insert(static_cast<unsigned>(Rng.uniformInt(Modes)));
    std::copy(Distinct.begin(), Distinct.end(), Q.begin());
    Quads.insert(Q);
  }

  // Standard SYK-4 coupling variance: 3! J^2 / Modes^3.
  const double Sigma =
      std::sqrt(6.0 * J * J /
                (static_cast<double>(Modes) * Modes * Modes));

  PauliSum Sum;
  for (const auto &Q : Quads) {
    double Coupling = Rng.gaussian(0.0, Sigma);
    // A product of four distinct Majorana modes is Hermitian: reversing the
    // four anticommuting Hermitian factors contributes (-1)^6 = +1. Its
    // Pauli image is therefore a single string with a real +/-1 sign.
    PauliSum Mono = jwMajorana(Q[0]) * jwMajorana(Q[1]) * jwMajorana(Q[2]) *
                    jwMajorana(Q[3]);
    assert(Mono.isHermitian() && "Majorana quadruple must be Hermitian");
    Sum += Mono * Complex(Coupling, 0.0);
  }
  Sum.prune();
  assert(Sum.isHermitian() && "SYK Hamiltonian must be Hermitian");
  return Sum.toHamiltonian(NumQubits);
}

Hamiltonian marqsim::makeRandomHamiltonian(unsigned NumQubits,
                                           size_t NumTerms, RNG &Rng) {
  assert(NumQubits >= 1 && NumQubits <= 64 && "qubit count out of range");
  Hamiltonian H(NumQubits);
  std::set<PauliString> Seen;
  while (Seen.size() < NumTerms) {
    PauliString P;
    for (unsigned Q = 0; Q < NumQubits; ++Q)
      P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
    if (P.isIdentity() || !Seen.insert(P).second)
      continue;
    H.addTerm(Rng.uniform(0.2, 1.0), P);
  }
  return H;
}
