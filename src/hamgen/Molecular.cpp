//===- hamgen/Molecular.cpp - Synthetic molecular Hamiltonians ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Molecular.h"

#include "fermion/JordanWigner.h"
#include "support/RNG.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace marqsim;

Hamiltonian marqsim::makeMolecularLike(unsigned NumQubits,
                                       size_t TargetStrings, uint64_t Seed) {
  assert(NumQubits >= 4 && NumQubits <= 24 && "unsupported register size");
  RNG Rng(Seed ^ 0x6d6f6c6563756cULL); // "molecul" tag decorrelates seeds
  PauliSum Sum;

  // One-body part. Diagonal orbital energies dominate; hopping decays
  // exponentially with orbital distance, as in localized molecular bases.
  for (unsigned P = 0; P < NumQubits; ++P) {
    double Energy = -(1.0 + 0.6 * Rng.uniform()) *
                    (1.0 + 0.15 * static_cast<double>(P));
    Sum += jwOneBody(Energy, P, P);
  }
  for (unsigned P = 0; P < NumQubits; ++P)
    for (unsigned Q = P + 1; Q < NumQubits; ++Q) {
      double Decay = std::exp(-0.8 * static_cast<double>(Q - P));
      double Hop = 0.4 * Decay * Rng.gaussian();
      if (std::fabs(Hop) > 1e-3)
        Sum += jwOneBody(Hop, P, Q);
    }

  // Density-density (Coulomb / exchange flavour): a_p^dag a_q^dag a_q a_p.
  for (unsigned P = 0; P < NumQubits; ++P)
    for (unsigned Q = P + 1; Q < NumQubits; ++Q) {
      double Coulomb = (0.12 + 0.2 * Rng.uniform()) /
                       (1.0 + 0.4 * static_cast<double>(Q - P));
      Sum += jwTwoBody(Coulomb, P, Q, Q, P);
    }

  // Double excitations a_p^dag a_q^dag a_r a_s, added until the merged
  // Pauli expansion comfortably exceeds the requested string count. Their
  // amplitudes are kept comparable to the Coulomb terms: in small
  // active-space molecular Hamiltonians the surviving double-excitation
  // integrals are of the same order as the density-density ones, and they
  // contribute the weight-4 X/Y strings whose matched-operator overlaps
  // gate cancellation feeds on.
  size_t Guard = 0;
  while (Guard < 4000) {
    ++Guard;
    unsigned P = static_cast<unsigned>(Rng.uniformInt(NumQubits));
    unsigned Q = static_cast<unsigned>(Rng.uniformInt(NumQubits));
    unsigned R = static_cast<unsigned>(Rng.uniformInt(NumQubits));
    unsigned S = static_cast<unsigned>(Rng.uniformInt(NumQubits));
    if (P == Q || R == S)
      continue; // annihilated by Pauli exclusion
    double Spread = static_cast<double>(std::max({P, Q, R, S}) -
                                        std::min({P, Q, R, S}));
    double Amp = 0.35 * std::exp(-0.12 * Spread) * Rng.gaussian();
    if (std::fabs(Amp) < 5e-3)
      continue;
    Sum += jwTwoBody(Amp, P, Q, R, S);
    if (Guard % 8 == 0) {
      Sum.prune(1e-9);
      Hamiltonian Probe = Sum.toHamiltonian(NumQubits);
      if (Probe.numTerms() >= TargetStrings + TargetStrings / 4)
        break;
    }
  }

  Sum.prune(1e-9);
  Hamiltonian Full = Sum.toHamiltonian(NumQubits).merged();
  assert(Full.numTerms() >= TargetStrings &&
         "generator could not reach the requested string count");

  // Active-space style trim: keep the largest-|h| strings so the final term
  // count matches the paper's Table 1 exactly.
  std::vector<PauliTerm> Terms(Full.terms().begin(), Full.terms().end());
  std::stable_sort(Terms.begin(), Terms.end(),
                   [](const PauliTerm &A, const PauliTerm &B) {
                     return std::fabs(A.Coeff) > std::fabs(B.Coeff);
                   });
  Terms.resize(TargetStrings);
  Hamiltonian Out(NumQubits);
  for (const PauliTerm &T : Terms)
    Out.addTerm(T.Coeff, T.String);
  assert(Out.numTerms() == TargetStrings && "trim failed");
  return Out;
}
