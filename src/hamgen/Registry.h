//===- hamgen/Registry.h - Paper benchmark registry -------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve benchmarks of the paper's Table 1, reproduced with matching
/// qubit counts, Pauli-string counts, and evolution times. Molecular
/// entries come from the synthetic electronic-structure generator; the SYK
/// entries from the Majorana/Jordan-Wigner generator (see DESIGN.md for the
/// substitution rationale). Generation is deterministic per benchmark name.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_HAMGEN_REGISTRY_H
#define MARQSIM_HAMGEN_REGISTRY_H

#include "pauli/Hamiltonian.h"

#include <optional>
#include <string>
#include <vector>

namespace marqsim {

/// Workload family of a registered benchmark.
enum class BenchmarkKind { Molecular, SYK };

/// One row of the paper's Table 1.
struct BenchmarkSpec {
  std::string Name;
  unsigned Qubits = 0;
  size_t Strings = 0;
  double Time = 0.0;
  BenchmarkKind Kind = BenchmarkKind::Molecular;
  uint64_t Seed = 0;
};

/// All twelve Table 1 benchmarks, in paper order.
const std::vector<BenchmarkSpec> &paperBenchmarks();

/// Finds a benchmark by (case-sensitive) name.
std::optional<BenchmarkSpec> findBenchmark(const std::string &Name);

/// Instantiates the Hamiltonian of a benchmark. Deterministic: repeated
/// calls return identical Hamiltonians.
Hamiltonian makeBenchmark(const BenchmarkSpec &Spec);

} // namespace marqsim

#endif // MARQSIM_HAMGEN_REGISTRY_H
