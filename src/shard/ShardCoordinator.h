//===- shard/ShardCoordinator.h - Cross-process batch sharding --*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-process scaling layer: split a TaskSpec's shot range over K
/// workers, run each range through SimulationService (in a re-exec'd
/// marqsim-cli or in-process), and merge the resulting ShardManifests back
/// into the TaskResult a single-process run of the same spec produces —
/// bit-identically, for any K.
///
/// The bit-identity argument is the same one that makes --jobs free of
/// scheduling noise: shot k always draws from the counter-based substream
/// RNG::forShot(Seed, k) of its *global* index, and every deterministic
/// artifact on the way (MCFP solutions, alias tables, fidelity targets) is
/// a pure content function. A shard is therefore just a window onto the
/// same shot stream, and concatenating windows in order reproduces the
/// batch exactly.
///
/// Workers sharing one ServiceOptions::CacheDir also share every
/// deterministic artifact through the on-disk tier of the ArtifactStore;
/// the coordinator pre-warms that store before launching
/// (SimulationService::prewarm), so a K-shard run performs exactly one
/// gate-cancellation solve per Hamiltonian and every worker loads the
/// alias bundle and fidelity target columns from disk instead of
/// rebuilding them.
///
/// Failure handling: manifests are validated (checksum, fingerprint, shot
/// range, range hash) before merging. A missing, corrupt, truncated, or
/// mismatched manifest is reported in ShardReport::Notes, its file is
/// discarded, and the range is re-run — up to ShardOptions::MaxAttempts
/// launch rounds. Valid manifests already present in the work directory
/// are reused, which doubles as crash recovery for interrupted sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SHARD_SHARDCOORDINATOR_H
#define MARQSIM_SHARD_SHARDCOORDINATOR_H

#include "shard/ShardManifest.h"
#include "shard/ShardPlan.h"

namespace marqsim {

/// How to run a sharded batch.
struct ShardOptions {
  /// Number of worker ranges (clamped to the shot count).
  unsigned ShardCount = 1;

  /// Directory for manifests and worker logs. Required; created on
  /// demand. Valid manifests found here are reused instead of re-run.
  std::string WorkDir;

  /// Shared persistent artifact store handed to every worker
  /// (--cache-dir). Empty disables cross-process artifact sharing: each
  /// worker then performs its own MCFP solves (correct but wasteful).
  /// Validated up front: an unwritable path fails the run instead of
  /// silently degrading to per-worker solves.
  std::string CacheDir;

  /// In-memory cache budget per process (coordinator and workers), in
  /// bytes; 0 means unbounded. Travels to re-exec'd workers as a hidden
  /// flag. Eviction never changes results, only recompute counts.
  size_t CacheLimitBytes = 0;

  /// The marqsim-cli binary to re-exec per shard. Empty runs every shard
  /// in-process through one shared service (library use and tests).
  std::string WorkerBinary;

  /// Launch rounds per range before giving up (>= 1). A range whose
  /// manifest fails validation is re-run in the next round.
  unsigned MaxAttempts = 2;

  /// Remote marqsim-daemon workers ("host:port"). Non-empty selects fleet
  /// mode: ranges travel as shard-submit frames over the JSON protocol,
  /// the coordinator warms each worker through artifact-put frames (one
  /// MCFP solve fleet-wide, no shared filesystem), and WorkerBinary is
  /// ignored. A worker that dies or times out is dropped and its in-flight
  /// range re-dispatched to the survivors.
  std::vector<std::string> Workers;

  /// Per-range result timeout in fleet mode; a worker that exceeds it is
  /// treated as dead. 0 waits forever (the in-flight range then rides on
  /// the TCP connection's fate).
  unsigned FleetTimeoutMs = 0;

  /// Connection retry budget per worker (fleet mode): attempts and the
  /// initial backoff delay (doubled per retry, capped internally). Absorbs
  /// daemons still binding their port when the batch starts.
  unsigned ConnectAttempts = 10;
  unsigned ConnectDelayMs = 100;

  /// Fleet mode: resolve the prewarm and artifact exports through this
  /// service instead of a coordinator-owned one (not owned; must outlive
  /// the run). The CLI passes its own service so the post-merge shot-0
  /// recompile hits the same in-memory store — keeping the whole
  /// invocation at one MCFP solve even without any cache directory.
  SimulationService *SharedService = nullptr;
};

/// Per-worker accounting of a fleet run.
struct FleetWorkerStats {
  std::string HostPort;

  /// Ranges sent to this worker, and the subset that had already been
  /// dispatched before (to anyone) and failed — the re-dispatch traffic.
  size_t RangesDispatched = 0;
  size_t RangesRedispatched = 0;

  /// Artifact-fetch accounting for this worker: bodies it already held
  /// (hits), bodies pushed over the wire (misses), and the pushed bytes.
  size_t FetchHits = 0;
  size_t FetchMisses = 0;
  size_t ArtifactBytesServed = 0;

  /// Evaluation CPU-seconds summed over this worker's accepted manifests.
  double EvalSeconds = 0.0;

  /// False once the coordinator declared the worker dead (connect
  /// failure, transport error, or FleetTimeoutMs exceeded).
  bool Alive = true;
};

/// Fleet-wide accounting, reported next to the run's cache stats.
struct FleetStats {
  /// True when fleet mode actually ran (ShardOptions::Workers non-empty).
  bool Used = false;
  std::vector<FleetWorkerStats> Workers;
};

/// What happened during a sharded run, beyond the merged result.
struct ShardReport {
  ShardPlan Plan;

  /// Ranges launched beyond the first round (failed validations).
  unsigned Retries = 0;

  /// Manifests reused from a previous run in the work directory.
  unsigned Reused = 0;

  /// Summed cache accounting of the accepted worker manifests.
  CacheStats WorkerStats;

  /// The coordinator's own service accounting (store pre-warm).
  CacheStats LocalStats;

  /// Fleet-mode accounting (Used only when ShardOptions::Workers was
  /// non-empty): per-worker dispatch and artifact-fetch counters.
  FleetStats Fleet;

  /// Human-readable diagnostics: every rejected manifest and failed
  /// worker, with the reason.
  std::vector<std::string> Notes;
};

/// Splits, launches, validates, and merges. One coordinator runs one task
/// at a time; construct per task or reuse freely (it holds only options).
class ShardCoordinator {
public:
  explicit ShardCoordinator(ShardOptions Opts) : Options(std::move(Opts)) {}

  /// Runs \p Spec as Options.ShardCount shards and merges the manifests.
  /// The result is bit-identical to SimulationService::run(Spec) — same
  /// batch hash, shot summaries, and fidelity samples — for any shard
  /// count. Specs requesting per-shot artifacts that cannot travel
  /// through a manifest (KeepResults, ExportShotZero, DumpDot) are
  /// rejected; compile those separately (a one-shot ranged run suffices
  /// for shot 0). Returns std::nullopt and fills \p Error when a range
  /// still has no valid manifest after MaxAttempts rounds.
  std::optional<TaskResult> run(const TaskSpec &Spec,
                                std::string *Error = nullptr,
                                ShardReport *Report = nullptr);

  /// Worker-side entry point: compiles shard \p Index of \p Count through
  /// \p Service (global shot indices, so seeding matches the full batch)
  /// and packages the manifest. marqsim-cli's hidden worker mode is a
  /// thin shell around this.
  static std::optional<ShardManifest> runShard(SimulationService &Service,
                                               const TaskSpec &Spec,
                                               unsigned Index,
                                               unsigned Count,
                                               std::string *Error = nullptr);

  /// Merges validated manifests (any order) into the single-process
  /// TaskResult. Rejects fingerprint mismatches against
  /// \p ExpectedFingerprint, gaps or overlaps in shot coverage, and
  /// manifests that disagree on seed, strategy, budget, or fidelity
  /// presence.
  static std::optional<TaskResult> merge(const TaskSpec &Spec,
                                         uint64_t ExpectedFingerprint,
                                         std::vector<ShardManifest> Manifests,
                                         std::string *Error = nullptr);

  /// The re-exec command line of one shard worker: the spec-defining
  /// flags (weights, time, and epsilon travel as IEEE-754 bit patterns so
  /// the worker's spec is bit-identical to \p Spec), the shard triple,
  /// the shared cache directory, and the in-memory cache budget
  /// (\p CacheLimitBytes, 0 = unbounded). Fails for specs a command line
  /// cannot express (inline Hamiltonians, non-sampling methods, custom
  /// lowering options).
  static std::optional<std::vector<std::string>>
  workerArgs(const std::string &Binary, const TaskSpec &Spec, unsigned Index,
             unsigned Count, const std::string &ManifestPath,
             const std::string &CacheDir, size_t CacheLimitBytes = 0,
             std::string *Error = nullptr);

  /// Manifest path of shard \p Index under \p WorkDir.
  static std::string manifestPath(const std::string &WorkDir,
                                  unsigned Index);

private:
  /// The networked dispatch loop behind run() when Options.Workers is
  /// non-empty: connect (with retry/backoff), warm each worker through
  /// artifact-get/artifact-put, dispatch ranges as shard-submit frames
  /// from a shared pending queue, validate every returned manifest, and
  /// re-dispatch ranges of dead or lying workers to the survivors.
  std::optional<TaskResult> runFleet(const TaskSpec &Spec,
                                     const Hamiltonian &H, ShardReport &R,
                                     std::string *Error);

  ShardOptions Options;
};

} // namespace marqsim

#endif // MARQSIM_SHARD_SHARDCOORDINATOR_H
