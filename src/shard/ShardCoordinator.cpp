//===- shard/ShardCoordinator.cpp - Cross-process batch sharding -------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"

#include "server/Client.h"
#include "stats/Stats.h"
#include "support/Serial.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

using namespace marqsim;

std::string ShardCoordinator::manifestPath(const std::string &WorkDir,
                                           unsigned Index) {
  return (std::filesystem::path(WorkDir) /
          ("shard-" + std::to_string(Index) + ".manifest"))
      .string();
}

//===----------------------------------------------------------------------===//
// Worker command line
//===----------------------------------------------------------------------===//

namespace {

std::string bitsFlag(const char *Name, double Value) {
  return std::string("--") + Name + "=" + serial::hex16(serial::doubleBits(Value));
}

std::string intFlag(const char *Name, uint64_t Value) {
  return std::string("--") + Name + "=" + std::to_string(Value);
}

} // namespace

std::optional<std::vector<std::string>> ShardCoordinator::workerArgs(
    const std::string &Binary, const TaskSpec &Spec, unsigned Index,
    unsigned Count, const std::string &ManifestPath,
    const std::string &CacheDir, size_t CacheLimitBytes,
    std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    detail::fail(Error, "shard worker: " + Message);
    return std::nullopt;
  };
  if (Spec.Method != TaskMethod::Sampling)
    return Fail("only sampling tasks can re-exec through marqsim-cli");
  if (Spec.Precision != EvalPrecision::FP64)
    return Fail("manifests are bit-exact artifacts and the fp32 tier is "
                "tolerance-defined; use --precision=fp64 for sharded runs");
  if (!Spec.Lowering.Emit.CrossCancellation || Spec.Lowering.UseCDFSampler)
    return Fail("custom lowering options cannot travel over the command "
                "line");
  // The CLI parses every count/seed as a signed 64-bit integer; a value
  // past INT64_MAX would wrap in the worker and silently change its key.
  const uint64_t SignedMax =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  if (Spec.Seed > SignedMax || Spec.PerturbSeed > SignedMax ||
      Spec.Evaluate.ColumnSeed > SignedMax)
    return Fail("seeds above INT64_MAX cannot travel over the command line");
  if (Spec.Flow.ProbScale < 0 || Spec.Flow.CostScale < 0)
    return Fail("negative MCFP scales cannot travel over the command line");

  std::vector<std::string> Argv;
  Argv.push_back(Binary);
  switch (Spec.Source.SourceKind) {
  case HamiltonianSource::Kind::File:
    Argv.push_back(Spec.Source.Path);
    break;
  case HamiltonianSource::Kind::Model:
    Argv.push_back("--model=" + Spec.Source.Model);
    break;
  case HamiltonianSource::Kind::Inline:
    return Fail("inline Hamiltonian sources cannot re-exec; write the "
                "operator to a file first");
  }
  // Weights, time, and epsilon travel as raw IEEE-754 bit patterns
  // (hidden worker flags): a decimal round trip could perturb the last
  // ulp, which would change cache keys and the transition matrix itself.
  Argv.push_back(bitsFlag("mix-qd-bits", Spec.Mix.WQd));
  Argv.push_back(bitsFlag("mix-gc-bits", Spec.Mix.WGc));
  Argv.push_back(bitsFlag("mix-rp-bits", Spec.Mix.WRp));
  Argv.push_back(bitsFlag("time-bits", Spec.Time));
  Argv.push_back(bitsFlag("epsilon-bits", Spec.Epsilon));
  Argv.push_back(intFlag("rounds", Spec.PerturbRounds));
  Argv.push_back(intFlag("perturb-seed", Spec.PerturbSeed));
  Argv.push_back(intFlag("prob-scale", static_cast<uint64_t>(Spec.Flow.ProbScale)));
  Argv.push_back(intFlag("cost-scale", static_cast<uint64_t>(Spec.Flow.CostScale)));
  Argv.push_back(intFlag("seed", Spec.Seed));
  Argv.push_back(intFlag("shots", Spec.Shots));
  Argv.push_back(intFlag("jobs", Spec.Jobs));
  Argv.push_back(intFlag("eval-jobs", Spec.EvalJobs));
  Argv.push_back(intFlag("columns", Spec.Evaluate.FidelityColumns));
  Argv.push_back(intFlag("column-seed", Spec.Evaluate.ColumnSeed));
  // The noise spec travels like time/epsilon: names in the clear, the
  // probability and factor as raw bit patterns (an ulp of drift would
  // change the contentKey and every noise draw).
  if (Spec.Noise.Kind != NoiseChannelKind::None) {
    Argv.push_back(std::string("--noise=") + noiseChannelName(Spec.Noise.Kind));
    Argv.push_back(std::string("--noise-mode=") +
                   noiseModeName(Spec.Noise.Mode));
    Argv.push_back(bitsFlag("noise-prob-bits", Spec.Noise.Prob));
    Argv.push_back(bitsFlag("noise-2q-factor-bits", Spec.Noise.TwoQubitFactor));
  }
  if (Spec.UseCDF)
    Argv.push_back("--cdf");
  if (!CacheDir.empty())
    Argv.push_back("--cache-dir=" + CacheDir);
  if (CacheLimitBytes > 0)
    Argv.push_back(intFlag("cache-limit-bytes", CacheLimitBytes));
  Argv.push_back(intFlag("shard-index", Index));
  Argv.push_back(intFlag("shard-count", Count));
  Argv.push_back("--shard-out=" + ManifestPath);
  return Argv;
}

//===----------------------------------------------------------------------===//
// Worker-side execution
//===----------------------------------------------------------------------===//

std::optional<ShardManifest> ShardCoordinator::runShard(
    SimulationService &Service, const TaskSpec &Spec, unsigned Index,
    unsigned Count, std::string *Error) {
  if (Spec.Precision != EvalPrecision::FP64) {
    detail::fail(Error,
                 "shard worker: manifests are bit-exact artifacts and the "
                 "fp32 tier is tolerance-defined; use --precision=fp64 for "
                 "sharded runs");
    return std::nullopt;
  }
  ShardPlan Plan = ShardPlan::split(Spec.Shots, Count);
  if (Index >= Plan.shardCount()) {
    detail::fail(Error, "shard index " + std::to_string(Index) +
                            " out of range: " + std::to_string(Spec.Shots) +
                            " shots split into " +
                            std::to_string(Plan.shardCount()) + " shards");
    return std::nullopt;
  }
  ShotRange Range = Plan.Ranges[Index];
  // Per-shot artifacts that cannot travel through a manifest are dropped
  // here, not rejected: the worker owes the coordinator summaries only.
  TaskSpec Ranged = Spec;
  Ranged.Evaluate.ExportShotZero = false;
  Ranged.Evaluate.DumpDot = false;
  Ranged.Evaluate.KeepResults = false;
  std::optional<TaskResult> Result = Service.run(Ranged, Range, Error);
  if (!Result)
    return std::nullopt;
  return ShardManifest::fromTaskResult(Spec, Range, *Result);
}

//===----------------------------------------------------------------------===//
// Merge
//===----------------------------------------------------------------------===//

std::optional<TaskResult>
ShardCoordinator::merge(const TaskSpec &Spec, uint64_t ExpectedFingerprint,
                        std::vector<ShardManifest> Manifests,
                        std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    detail::fail(Error, "shard merge: " + Message);
    return std::nullopt;
  };
  if (Manifests.empty())
    return Fail("no manifests");
  std::sort(Manifests.begin(), Manifests.end(),
            [](const ShardManifest &A, const ShardManifest &B) {
              return A.Range.Begin < B.Range.Begin;
            });

  const ShardManifest &First = Manifests.front();
  const uint64_t SpecKey = Spec.contentKey();
  bool WantFidelity = Spec.Evaluate.FidelityColumns > 0;
  size_t NextShot = 0;
  for (const ShardManifest &M : Manifests) {
    if (M.Fingerprint != ExpectedFingerprint)
      return Fail("fingerprint mismatch: manifest for range [" +
                  std::to_string(M.Range.Begin) + ", " +
                  std::to_string(M.Range.end()) +
                  ") was compiled from a different Hamiltonian");
    if (M.Seed != Spec.Seed)
      return Fail("seed mismatch");
    if (M.SpecKey != SpecKey)
      return Fail("task configuration mismatch: manifest for range [" +
                  std::to_string(M.Range.Begin) + ", " +
                  std::to_string(M.Range.end()) +
                  ") was compiled with different parameters");
    if (M.TotalShots != Spec.Shots)
      return Fail("batch size mismatch");
    if (M.StrategyName != First.StrategyName ||
        M.NumSamples != First.NumSamples)
      return Fail("manifests disagree on strategy or sampling budget");
    if (M.HasFidelity != WantFidelity)
      return Fail(WantFidelity ? "manifest is missing fidelity samples"
                               : "manifest has unexpected fidelity samples");
    if (M.Range.Begin != NextShot)
      return Fail("shot coverage has a gap or overlap at shot " +
                  std::to_string(NextShot));
    if (M.Shots.size() != M.Range.Count)
      return Fail("manifest shot count disagrees with its range");
    NextShot = M.Range.end();
  }
  if (NextShot != Spec.Shots)
    return Fail("shot coverage ends at " + std::to_string(NextShot) +
                ", expected " + std::to_string(Spec.Shots));

  TaskResult Result;
  Result.Fingerprint = ExpectedFingerprint;
  Result.NumSamples = First.NumSamples;
  BatchResult &B = Result.Batch;
  B.StrategyName = First.StrategyName;
  B.NumShots = Spec.Shots;
  B.Seed = Spec.Seed;
  B.Shots.reserve(Spec.Shots);
  Result.HasFidelity = WantFidelity;
  if (WantFidelity)
    Result.ShotFidelities.reserve(Spec.Shots);
  for (const ShardManifest &M : Manifests) {
    B.JobsUsed = std::max(B.JobsUsed, M.JobsUsed);
    B.EvalSeconds += M.EvalSeconds;
    B.Shots.insert(B.Shots.end(), M.Shots.begin(), M.Shots.end());
    if (WantFidelity)
      Result.ShotFidelities.insert(Result.ShotFidelities.end(),
                                   M.Fidelities.begin(), M.Fidelities.end());
    Result.Stats += M.Stats;
  }

  // The same sequential pass compileBatch runs, so the merged summaries
  // are bit-identical to the single-process run, not merely close.
  B.recomputeAggregates();

  if (WantFidelity) {
    RunningStats Fids;
    for (double F : Result.ShotFidelities)
      Fids.add(F);
    Result.Fidelity.Mean = Fids.mean();
    Result.Fidelity.Std = Fids.stddev();
    Result.Fidelity.Min = Fids.min();
    Result.Fidelity.Max = Fids.max();
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

std::optional<TaskResult> ShardCoordinator::run(const TaskSpec &Spec,
                                                std::string *Error,
                                                ShardReport *Report) {
  auto Fail = [&](const std::string &Message) {
    detail::fail(Error, "shard coordinator: " + Message);
    return std::nullopt;
  };
  std::string Validation;
  if (!Spec.validate(&Validation))
    return Fail(Validation);
  // Shard manifests carry bit-exact per-shot fidelity hex that the merge
  // re-checks; the fp32 tier only promises a tolerance, so it can never
  // travel through a manifest.
  if (Spec.Precision != EvalPrecision::FP64)
    return Fail("manifests are bit-exact artifacts and the fp32 tier is "
                "tolerance-defined; use --precision=fp64 for sharded runs");
  if (Spec.Evaluate.KeepResults || Spec.Evaluate.ExportShotZero ||
      Spec.Evaluate.DumpDot)
    return Fail("per-shot artifacts (KeepResults/ExportShotZero/DumpDot) "
                "cannot travel through manifests; compile them with a "
                "ranged single-process run instead");
  if (Options.WorkDir.empty())
    return Fail("a work directory is required");
  // A broken shared store must fail loudly: silently degrading to
  // per-worker MCFP solves would violate the one-solve contract without
  // any visible signal.
  std::string DirError;
  if (!ArtifactStore::validateCacheDir(Options.CacheDir, &DirError))
    return Fail(DirError);
  std::error_code EC;
  std::filesystem::create_directories(Options.WorkDir, EC);
  if (EC)
    return Fail("cannot create work directory '" + Options.WorkDir + "'");

  ShardReport LocalReport;
  ShardReport &R = Report ? *Report : LocalReport;
  R.Plan = ShardPlan::split(Spec.Shots, Options.ShardCount);
  const size_t K = R.Plan.shardCount();
  const bool InProcess = Options.WorkerBinary.empty();

  std::optional<Hamiltonian> H =
      SimulationService::resolveHamiltonian(Spec.Source, Error);
  if (!H)
    return std::nullopt;
  const uint64_t Fingerprint = H->fingerprint();
  const uint64_t SpecKey = Spec.contentKey();
  Timer Clock;

  if (!Options.Workers.empty()) {
    std::optional<TaskResult> Merged = runFleet(Spec, *H, R, Error);
    if (Merged)
      Merged->Batch.Seconds = Clock.seconds();
    return Merged;
  }

  ServiceOptions LocalOptions;
  LocalOptions.CacheDir = Options.CacheDir;
  LocalOptions.CacheLimitBytes = Options.CacheLimitBytes;
  SimulationService LocalService(LocalOptions);
  if (!InProcess) {
    // Reject inexpressible specs (non-sampling methods, inline sources,
    // oversized seeds) before spending any pre-warm work on them: the
    // fidelity-column evolution alone can dwarf the whole run.
    if (!workerArgs(Options.WorkerBinary, Spec, 0, static_cast<unsigned>(K),
                    manifestPath(Options.WorkDir, 0), Options.CacheDir,
                    Options.CacheLimitBytes, Error))
      return std::nullopt;
    if (Options.CacheDir.empty()) {
      R.Notes.push_back("no cache directory: every worker performs its own "
                        "MCFP solves");
    } else {
      // Pre-warm the shared store with every artifact type the workers
      // will ask for — the alias bundle (with its MCFP components) and
      // the fidelity target columns — so the whole sharded run costs one
      // solve per component and one column evolution total. This also
      // front-loads the Theorem 4.1 validation before any process is
      // spawned.
      if (!LocalService.prewarm(Spec, Error))
        return std::nullopt;
      R.LocalStats = LocalService.stats();
    }
  }

  std::vector<std::optional<ShardManifest>> Accepted(K);
  const unsigned MaxAttempts = std::max(1u, Options.MaxAttempts);
  unsigned LaunchRounds = 0;
  bool FirstCollection = true;
  while (true) {
    // Collect: validate whatever manifests exist for still-open ranges.
    for (size_t I = 0; I < K; ++I) {
      if (Accepted[I])
        continue;
      std::string Path = manifestPath(Options.WorkDir, I);
      if (!std::filesystem::exists(Path))
        continue;
      std::string ReadError;
      std::optional<ShardManifest> M =
          ShardManifest::readFile(Path, &ReadError);
      if (M) {
        if (M->Fingerprint != Fingerprint)
          ReadError = "fingerprint mismatch (different Hamiltonian)";
        else if (M->Seed != Spec.Seed || M->TotalShots != Spec.Shots)
          ReadError = "seed or batch size mismatch (stale manifest)";
        else if (M->SpecKey != SpecKey)
          ReadError = "task configuration mismatch (manifest from a run "
                      "with different parameters)";
        else if (M->Range.Begin != R.Plan.Ranges[I].Begin ||
                 M->Range.Count != R.Plan.Ranges[I].Count)
          ReadError = "shot range disagrees with the shard plan";
        else if (M->HasFidelity != (Spec.Evaluate.FidelityColumns > 0))
          ReadError = "fidelity presence disagrees with the task";
      }
      if (M && ReadError.empty()) {
        Accepted[I] = std::move(M);
        if (FirstCollection)
          ++R.Reused;
        continue;
      }
      R.Notes.push_back("shard " + std::to_string(I) + ": rejected '" +
                        Path + "': " + ReadError + "; re-running the range");
      std::filesystem::remove(Path, EC);
    }
    FirstCollection = false;

    std::vector<size_t> Missing;
    for (size_t I = 0; I < K; ++I)
      if (!Accepted[I])
        Missing.push_back(I);
    if (Missing.empty())
      break;
    if (LaunchRounds >= MaxAttempts) {
      std::string Message = "range still invalid after " +
                            std::to_string(MaxAttempts) + " attempts:";
      for (const std::string &Note : R.Notes)
        Message += "\n  " + Note;
      return Fail(Message);
    }
    if (LaunchRounds > 0)
      R.Retries += static_cast<unsigned>(Missing.size());

    if (InProcess) {
      for (size_t I : Missing) {
        std::string ShardError;
        std::optional<ShardManifest> M = runShard(
            LocalService, Spec, static_cast<unsigned>(I),
            static_cast<unsigned>(K), &ShardError);
        // Round-trip through the file even in-process: the on-disk
        // manifest is the interface under test, and it doubles as the
        // resume state a later coordinator can pick up.
        if (!M || !M->writeFile(manifestPath(Options.WorkDir, I),
                                &ShardError))
          R.Notes.push_back("shard " + std::to_string(I) + ": " +
                            ShardError);
      }
    } else {
      // Launch every missing range, then wait on all of them. Each child
      // is paired with its shard index: a failed spawn must not shift
      // which shard a later exit status is attributed to.
      std::vector<std::pair<size_t, Subprocess>> Children;
      Children.reserve(Missing.size());
      for (size_t I : Missing) {
        SubprocessSpec Child;
        std::optional<std::vector<std::string>> Argv = workerArgs(
            Options.WorkerBinary, Spec, static_cast<unsigned>(I),
            static_cast<unsigned>(K), manifestPath(Options.WorkDir, I),
            Options.CacheDir, Options.CacheLimitBytes, Error);
        if (!Argv)
          return std::nullopt; // inexpressible spec: no round can fix it
        Child.Argv = std::move(*Argv);
        Child.StdoutFile = (std::filesystem::path(Options.WorkDir) /
                            ("shard-" + std::to_string(I) + ".log"))
                               .string();
        Child.StderrFile = Child.StdoutFile;
        std::string SpawnError;
        Subprocess Proc;
        if (!Proc.spawn(Child, &SpawnError)) {
          R.Notes.push_back("shard " + std::to_string(I) + ": " +
                            SpawnError);
          continue;
        }
        Children.emplace_back(I, std::move(Proc));
      }
      for (auto &[Shard, Proc] : Children) {
        int Exit = Proc.wait();
        if (Exit != 0)
          R.Notes.push_back("shard " + std::to_string(Shard) +
                            ": worker exited with status " +
                            std::to_string(Exit));
      }
    }
    ++LaunchRounds;
  }

  std::vector<ShardManifest> Manifests;
  Manifests.reserve(K);
  for (std::optional<ShardManifest> &M : Accepted) {
    R.WorkerStats += M->Stats;
    Manifests.push_back(std::move(*M));
  }
  std::optional<TaskResult> Merged =
      merge(Spec, Fingerprint, std::move(Manifests), Error);
  if (Merged)
    // Wall clock of the whole sharded phase (launching, workers,
    // validation, merge) — the honest analogue of BatchResult::Seconds.
    Merged->Batch.Seconds = Clock.seconds();
  return Merged;
}

//===----------------------------------------------------------------------===//
// Fleet dispatch
//===----------------------------------------------------------------------===//

std::optional<TaskResult> ShardCoordinator::runFleet(const TaskSpec &Spec,
                                                     const Hamiltonian &H,
                                                     ShardReport &R,
                                                     std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    detail::fail(Error, "fleet coordinator: " + Message);
    return std::nullopt;
  };
  const uint64_t Fingerprint = H.fingerprint();
  const uint64_t SpecKey = Spec.contentKey();
  const size_t K = R.Plan.shardCount();
  const unsigned MaxAttempts = std::max(1u, Options.MaxAttempts);

  R.Fleet.Used = true;
  R.Fleet.Workers.clear();
  for (const std::string &HostPort : Options.Workers) {
    FleetWorkerStats WS;
    WS.HostPort = HostPort;
    R.Fleet.Workers.push_back(std::move(WS));
  }

  std::optional<json::Value> SpecJson = Spec.toJson(Error);
  if (!SpecJson)
    return std::nullopt;

  // The coordinator-side service is the fleet's artifact origin: this
  // prewarm is the single MCFP solve (and column evolution) of the whole
  // batch; every worker is then seeded over the wire from this store, no
  // shared filesystem involved. It also front-loads the Theorem 4.1
  // validation before any connection is opened.
  std::unique_ptr<SimulationService> Owned;
  SimulationService *LocalService = Options.SharedService;
  if (!LocalService) {
    ServiceOptions LocalOptions;
    LocalOptions.CacheDir = Options.CacheDir;
    LocalOptions.CacheLimitBytes = Options.CacheLimitBytes;
    Owned = std::make_unique<SimulationService>(LocalOptions);
    LocalService = Owned.get();
  }
  if (!LocalService->prewarm(Spec, Error))
    return std::nullopt;
  R.LocalStats = LocalService->stats();
  std::optional<std::vector<TaskArtifact>> Artifacts =
      LocalService->exportArtifacts(Spec, Error);
  if (!Artifacts)
    return std::nullopt;

  // The same acceptance gate the single-host collect pass applies; every
  // manifest — reused from disk or received over the wire — passes
  // through it before it can merge.
  auto RejectReason = [&](const ShardManifest &M, size_t I) -> std::string {
    if (M.Fingerprint != Fingerprint)
      return "fingerprint mismatch (different Hamiltonian)";
    if (M.Seed != Spec.Seed || M.TotalShots != Spec.Shots)
      return "seed or batch size mismatch (stale manifest)";
    if (M.SpecKey != SpecKey)
      return "task configuration mismatch (manifest from a run with "
             "different parameters)";
    if (M.Range.Begin != R.Plan.Ranges[I].Begin ||
        M.Range.Count != R.Plan.Ranges[I].Count)
      return "shot range disagrees with the shard plan";
    if (M.HasFidelity != (Spec.Evaluate.FidelityColumns > 0))
      return "fidelity presence disagrees with the task";
    if (M.Shots.size() != M.Range.Count)
      return "manifest shot count disagrees with its range";
    return {};
  };

  std::vector<std::optional<ShardManifest>> Accepted(K);
  std::error_code EC;
  for (size_t I = 0; I < K; ++I) {
    std::string Path = manifestPath(Options.WorkDir, I);
    if (!std::filesystem::exists(Path))
      continue;
    std::string ReadError;
    std::optional<ShardManifest> M = ShardManifest::readFile(Path, &ReadError);
    if (M)
      ReadError = RejectReason(*M, I);
    if (M && ReadError.empty()) {
      Accepted[I] = std::move(M);
      ++R.Reused;
      continue;
    }
    R.Notes.push_back("shard " + std::to_string(I) + ": rejected '" + Path +
                      "': " + ReadError + "; dispatching the range");
    std::filesystem::remove(Path, EC);
  }

  // Shared dispatch state. Pending holds shard indices awaiting (re-)
  // dispatch; Open counts ranges not yet accepted, whether queued or in
  // flight. A worker thread owns its FleetWorkerStats entry exclusively;
  // everything else mutates under Mutex.
  struct DispatchState {
    std::mutex Mutex;
    std::condition_variable CV;
    std::deque<size_t> Pending;
    size_t Open = 0;
    size_t Live = 0;
    bool Abort = false;
    std::string AbortReason;
  } State;
  std::vector<unsigned> FailedAttempts(K, 0);
  std::vector<char> EverDispatched(K, 0);
  for (size_t I = 0; I < K; ++I)
    if (!Accepted[I]) {
      State.Pending.push_back(I);
      ++State.Open;
    }
  State.Live = R.Fleet.Workers.size();

  // Declares worker Wi dead and, when a range was in flight on it,
  // requeues that range at the front — re-dispatch traffic preempts
  // fresh dispatches so a killed worker's range completes promptly.
  auto MarkDeadLocked = [&](size_t Wi, const std::string &Why,
                            std::optional<size_t> InFlight) {
    FleetWorkerStats &WS = R.Fleet.Workers[Wi];
    WS.Alive = false;
    --State.Live;
    std::string Note = "worker " + WS.HostPort + ": " + Why;
    if (InFlight) {
      State.Pending.push_front(*InFlight);
      Note += "; re-dispatching range [" +
              std::to_string(R.Plan.Ranges[*InFlight].Begin) + ", " +
              std::to_string(R.Plan.Ranges[*InFlight].end()) +
              ") to the survivors";
    }
    R.Notes.push_back(std::move(Note));
    if (State.Live == 0 && State.Open > 0 && !State.Abort) {
      State.Abort = true;
      State.AbortReason = "no live workers remain";
    }
    State.CV.notify_all();
  };

  auto WorkerLoop = [&](size_t Wi) {
    FleetWorkerStats &WS = R.Fleet.Workers[Wi];
    server::ConnectOptions CO;
    CO.Attempts = std::max(1u, Options.ConnectAttempts);
    CO.DelayMs = std::max(1u, Options.ConnectDelayMs);
    std::string ConnError;
    std::optional<server::DaemonClient> Client =
        server::DaemonClient::connectTo(WS.HostPort, &ConnError, CO);
    if (!Client) {
      std::lock_guard<std::mutex> Lock(State.Mutex);
      MarkDeadLocked(Wi, "connect failed: " + ConnError, std::nullopt);
      return;
    }
    if (Options.FleetTimeoutMs)
      Client->setRecvTimeout(Options.FleetTimeoutMs);

    // Warm the worker: probe, then push only what it lacks. An artifact
    // too large for a request frame is skipped — the worker recomputes
    // it, which changes cost, never results (and never the one-MCFP-
    // solve contract: flow artifacts are tiny, only fidelity columns
    // can grow past the cap).
    for (const TaskArtifact &A : *Artifacts) {
      if (A.Body.size() + 4096 > server::MaxRequestFrameBytes) {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        R.Notes.push_back("worker " + WS.HostPort + ": artifact '" +
                          A.Key.Id + "' exceeds the request frame cap; the "
                          "worker will recompute it");
        continue;
      }
      std::string FetchError;
      std::optional<bool> Present = Client->probeArtifact(A.Key, &FetchError);
      if (!Present) {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        MarkDeadLocked(Wi, "artifact probe failed: " + FetchError,
                       std::nullopt);
        return;
      }
      if (*Present) {
        ++WS.FetchHits;
        continue;
      }
      std::optional<bool> Stored =
          Client->putArtifact(*SpecJson, A.Key, A.Body, &FetchError);
      if (!Stored) {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        MarkDeadLocked(Wi, "artifact push failed: " + FetchError,
                       std::nullopt);
        return;
      }
      ++WS.FetchMisses;
      WS.ArtifactBytesServed += A.Body.size();
    }

    for (;;) {
      size_t I;
      bool Redispatch;
      {
        std::unique_lock<std::mutex> Lock(State.Mutex);
        State.CV.wait(Lock, [&] {
          return State.Abort || State.Open == 0 || !State.Pending.empty();
        });
        if (State.Abort || State.Open == 0)
          return;
        I = State.Pending.front();
        State.Pending.pop_front();
        Redispatch = EverDispatched[I] != 0;
        EverDispatched[I] = 1;
        if (Redispatch)
          ++R.Retries;
      }
      ++WS.RangesDispatched;
      if (Redispatch)
        ++WS.RangesRedispatched;

      bool Transport = false;
      std::string RangeError;
      std::optional<std::string> ManifestText = Client->runShardRange(
          *SpecJson, R.Plan.Ranges[I], 0, &Transport, &RangeError);

      std::optional<ShardManifest> M;
      if (ManifestText) {
        M = ShardManifest::parse(*ManifestText, &RangeError);
        if (M) {
          std::string Reject = RejectReason(*M, I);
          if (!Reject.empty()) {
            RangeError = Reject;
            M.reset();
          }
        }
      }

      if (M) {
        WS.EvalSeconds += M->EvalSeconds;
        // Persist for crash resume, exactly like the single-host path;
        // a write failure costs resumability, not correctness.
        std::string WriteError;
        if (!M->writeFile(manifestPath(Options.WorkDir, I), &WriteError)) {
          std::lock_guard<std::mutex> Lock(State.Mutex);
          R.Notes.push_back("shard " + std::to_string(I) +
                            ": cannot persist manifest: " + WriteError);
        }
        std::lock_guard<std::mutex> Lock(State.Mutex);
        Accepted[I] = std::move(M);
        --State.Open;
        State.CV.notify_all();
        continue;
      }

      if (Transport) {
        // Dead or hung worker: hand the range back for free (no attempt
        // charge — a dead worker cannot burn the retry budget) and exit.
        std::lock_guard<std::mutex> Lock(State.Mutex);
        MarkDeadLocked(Wi, RangeError, I);
        return;
      }

      // A live worker returned a failed, corrupt, or mismatched range:
      // that *does* consume an attempt, bounding how long a lying worker
      // can stall the batch.
      std::lock_guard<std::mutex> Lock(State.Mutex);
      R.Notes.push_back("shard " + std::to_string(I) + " on " + WS.HostPort +
                        ": " + RangeError + "; re-dispatching the range");
      if (++FailedAttempts[I] >= MaxAttempts) {
        State.Abort = true;
        State.AbortReason = "range [" +
                            std::to_string(R.Plan.Ranges[I].Begin) + ", " +
                            std::to_string(R.Plan.Ranges[I].end()) +
                            ") still invalid after " +
                            std::to_string(MaxAttempts) + " attempts";
        State.CV.notify_all();
        return;
      }
      State.Pending.push_back(I);
      State.CV.notify_all();
    }
  };

  if (State.Open > 0) {
    std::vector<std::thread> Threads;
    Threads.reserve(R.Fleet.Workers.size());
    for (size_t Wi = 0; Wi < R.Fleet.Workers.size(); ++Wi)
      Threads.emplace_back(WorkerLoop, Wi);
    for (std::thread &T : Threads)
      T.join();

    if (State.Abort || State.Open > 0) {
      std::string Message = State.AbortReason.empty()
                                ? std::string("dispatch ended with ") +
                                      std::to_string(State.Open) +
                                      " range(s) incomplete"
                                : State.AbortReason;
      for (const std::string &Note : R.Notes)
        Message += "\n  " + Note;
      return Fail(Message);
    }
  }

  std::vector<ShardManifest> Manifests;
  Manifests.reserve(K);
  for (std::optional<ShardManifest> &M : Accepted) {
    R.WorkerStats += M->Stats;
    Manifests.push_back(std::move(*M));
  }
  return merge(Spec, Fingerprint, std::move(Manifests), Error);
}
