//===- shard/ShardPlan.h - Splitting a batch into shot ranges ---*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic split of a TaskSpec's shot range over K workers.
///
/// Both the coordinator and every worker derive the same plan from
/// (TotalShots, ShardCount) alone, so a worker needs only its index — no
/// range needs to travel over the command line, and a re-run of shard i
/// always covers exactly the shots the failed attempt covered.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SHARD_SHARDPLAN_H
#define MARQSIM_SHARD_SHARDPLAN_H

#include "service/TaskSpec.h"

#include <vector>

namespace marqsim {

/// The contiguous per-shard shot ranges of one batch.
struct ShardPlan {
  size_t TotalShots = 0;

  /// One range per shard, in shard-index order; consecutive ranges are
  /// adjacent and together cover [0, TotalShots) exactly. Never empty:
  /// a shard count above the shot count is clamped, so every range holds
  /// at least one shot.
  std::vector<ShotRange> Ranges;

  size_t shardCount() const { return Ranges.size(); }

  /// Splits \p TotalShots shots over \p ShardCount near-even contiguous
  /// ranges: the first TotalShots % ShardCount shards take one extra shot.
  /// ShardCount of 0 behaves as 1; counts above TotalShots are clamped.
  static ShardPlan split(size_t TotalShots, unsigned ShardCount);
};

} // namespace marqsim

#endif // MARQSIM_SHARD_SHARDPLAN_H
