//===- shard/ShardPlan.cpp - Splitting a batch into shot ranges --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardPlan.h"

#include <algorithm>

using namespace marqsim;

ShardPlan ShardPlan::split(size_t TotalShots, unsigned ShardCount) {
  ShardPlan Plan;
  Plan.TotalShots = TotalShots;
  if (TotalShots == 0)
    return Plan;
  size_t K = std::max<size_t>(1, std::min<size_t>(ShardCount, TotalShots));
  size_t Base = TotalShots / K;
  size_t Extra = TotalShots % K;
  size_t Begin = 0;
  Plan.Ranges.reserve(K);
  for (size_t I = 0; I < K; ++I) {
    size_t Count = Base + (I < Extra ? 1 : 0);
    Plan.Ranges.push_back(ShotRange{Begin, Count});
    Begin += Count;
  }
  return Plan;
}
