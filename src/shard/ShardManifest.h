//===- shard/ShardManifest.h - Portable per-shard result files --*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result file a shard worker writes and the coordinator merges.
///
/// A manifest carries everything the merge needs to reconstruct the
/// worker's slice of the batch bit-exactly: the per-shot summaries (gate
/// counts, cancellation accounting, sequence hashes), the per-shot
/// fidelity samples as raw IEEE-754 hex (the component-store codec, so
/// doubles survive the file round trip exactly), plus the identity checks
/// the coordinator verifies before trusting it — the Hamiltonian
/// fingerprint, the shot range, an order-sensitive hash of the range's
/// sequence hashes, and a whole-file FNV-1a checksum that catches
/// truncation and bit flips.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SHARD_SHARDMANIFEST_H
#define MARQSIM_SHARD_SHARDMANIFEST_H

#include "service/SimulationService.h"

#include <optional>
#include <string>
#include <vector>

namespace marqsim {

/// One shard's results, in a form that survives a file round trip exactly.
struct ShardManifest {
  /// Content hash of the canonical Hamiltonian the shard compiled; the
  /// coordinator rejects manifests whose fingerprint disagrees with the
  /// task it is merging.
  uint64_t Fingerprint = 0;

  /// The batch-level seed (not a per-shard derivation: shot k of any
  /// shard draws RNG::forShot(Seed, k) with its global index).
  uint64_t Seed = 0;

  /// TaskSpec::contentKey() of the task the shard compiled: every knob
  /// beyond the Hamiltonian that shapes the bits (epsilon, time, mix,
  /// rounds, sampler, ...). Guards manifest *reuse*: a work directory
  /// left over from a sweep with different parameters must re-run, not
  /// merge stale results whose fingerprint and seed happen to match.
  uint64_t SpecKey = 0;

  std::string StrategyName;

  /// Shot count of the *whole* batch this shard belongs to.
  size_t TotalShots = 0;

  /// The global shot range this manifest covers.
  ShotRange Range;

  /// Per-shot sampling budget N (sampling tasks; 0 otherwise).
  size_t NumSamples = 0;

  /// Worker threads the shard ran with (informational).
  unsigned JobsUsed = 0;

  /// Seconds the shard spent in per-shot evaluation hooks, summed over
  /// its shots (BatchResult::EvalSeconds). Travels as IEEE-754 hex; the
  /// merge sums it so the coordinator can report the batch's
  /// walk/emission vs evaluation split.
  double EvalSeconds = 0.0;

  bool HasFidelity = false;

  /// The noise configuration the shard evaluated under. contentKey
  /// already covers it (so stale-noise manifests fail the SpecKey check);
  /// carrying it explicitly makes a work directory self-describing and
  /// lets the parser reject unknown channel/mode spellings early.
  NoiseSpec Noise;

  /// The worker's cache accounting; the coordinator sums these to report
  /// e.g. "one MCFP solve total" across a sharded sweep.
  CacheStats Stats;

  /// One summary per shot, in global shot order within Range.
  std::vector<ShotSummary> Shots;

  /// Per-shot fidelities, parallel to Shots (HasFidelity only).
  std::vector<double> Fidelities;

  /// Order-sensitive FNV over the per-shot sequence hashes — the same
  /// step BatchResult::batchHash applies, restricted to this range.
  uint64_t rangeHash() const;

  /// Renders the manifest, including its trailing checksum line.
  std::string serialize() const;

  /// Parses serialize() output. Any anomaly — bad magic, checksum or
  /// range-hash mismatch, truncation, malformed numbers, shot counts that
  /// disagree with the header — returns nullopt and fills \p Error.
  static std::optional<ShardManifest> parse(const std::string &Text,
                                            std::string *Error = nullptr);

  bool writeFile(const std::string &Path, std::string *Error = nullptr) const;
  static std::optional<ShardManifest> readFile(const std::string &Path,
                                               std::string *Error = nullptr);

  /// Builds the manifest of \p Range from a ranged service run of \p Spec.
  static ShardManifest fromTaskResult(const TaskSpec &Spec,
                                      const ShotRange &Range,
                                      const TaskResult &Result);
};

} // namespace marqsim

#endif // MARQSIM_SHARD_SHARDMANIFEST_H
