//===- shard/ShardManifest.cpp - Portable per-shard result files -------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardManifest.h"

#include "support/Serial.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace marqsim;
using namespace marqsim::serial;

namespace {

// v3 added the noise line and the superoperator cache counters (v2 had
// the eval-seconds phase accounting). Old-version manifests fail the
// magic check and their range is simply re-run — resume across format
// versions degrades to recompute, never to misparse.
constexpr const char *Magic = "marqsim-shard-v3";

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = "shard manifest: " + Message;
  return false;
}

} // namespace

uint64_t ShardManifest::rangeHash() const {
  // The same chain as BatchResult::batchHash, windowed to this range: a
  // full batch's hash is the concatenation of its ranges' chains.
  return hashShotSummaries(Shots);
}

std::string ShardManifest::serialize() const {
  std::ostringstream OS;
  OS << Magic << "\n";
  OS << "fingerprint " << hex16(Fingerprint) << "\n";
  OS << "seed " << hex16(Seed) << "\n";
  OS << "spec " << hex16(SpecKey) << "\n";
  OS << "strategy " << StrategyName << "\n";
  OS << "total-shots " << TotalShots << "\n";
  OS << "range " << Range.Begin << " " << Range.Count << "\n";
  OS << "num-samples " << NumSamples << "\n";
  OS << "jobs " << JobsUsed << "\n";
  OS << "eval-seconds " << hex16(doubleBits(EvalSeconds)) << "\n";
  OS << "noise " << noiseChannelName(Noise.Kind) << " "
     << noiseModeName(Noise.Mode) << " " << hex16(doubleBits(Noise.Prob))
     << " " << hex16(doubleBits(Noise.TwoQubitFactor)) << "\n";
  OS << "cache " << Stats.GCSolveHits << " " << Stats.GCSolveMisses << " "
     << Stats.RPSolveHits << " " << Stats.RPSolveMisses << " "
     << Stats.GraphHits << " " << Stats.GraphMisses << " "
     << Stats.EvaluatorHits << " " << Stats.EvaluatorMisses << " "
     << Stats.SuperHits << " " << Stats.SuperMisses << " "
     << Stats.DiskLoads << "\n";
  OS << "fidelity " << (HasFidelity ? 1 : 0) << "\n";
  OS << "shots " << Shots.size() << "\n";
  for (size_t I = 0; I < Shots.size(); ++I) {
    const ShotSummary &S = Shots[I];
    OS << S.NumSamples << " " << S.Counts.CNOTs << " "
       << S.Counts.SingleQubit << " " << S.Stats.CancelledCNOTs << " "
       << S.Stats.CancelledSingles << " " << hex16(S.SequenceHash);
    if (HasFidelity)
      OS << " " << hex16(doubleBits(Fidelities[I]));
    OS << "\n";
  }
  OS << "range-hash " << hex16(rangeHash()) << "\n";
  return withChecksum(OS.str());
}

std::optional<ShardManifest> ShardManifest::parse(const std::string &Text,
                                                  std::string *Error) {
  // Peel and verify the trailing checksum first: after this, any parse
  // failure means a malformed writer, not on-disk corruption.
  std::string Body;
  if (!splitChecksummed(Text, Body)) {
    fail(Error, "checksum mismatch (corrupted or truncated file)");
    return std::nullopt;
  }

  std::istringstream In(Body);
  std::string Word;
  if (!(In >> Word) || Word != Magic) {
    fail(Error, "bad magic");
    return std::nullopt;
  }

  ShardManifest M;
  auto ExpectLabel = [&](const char *Label) {
    return static_cast<bool>(In >> Word) && Word == Label;
  };
  auto ReadHex = [&](uint64_t &Out) {
    return static_cast<bool>(In >> Word) && parseHex64(Word, Out);
  };

  size_t FidelityFlag = 0, ShotCount = 0;
  uint64_t EvalSecondsBits = 0, NoiseProbBits = 0, NoiseFactorBits = 0;
  std::string NoiseChannelText, NoiseModeText;
  bool Ok = ExpectLabel("fingerprint") && ReadHex(M.Fingerprint) &&
            ExpectLabel("seed") && ReadHex(M.Seed) &&
            ExpectLabel("spec") && ReadHex(M.SpecKey) &&
            ExpectLabel("strategy") &&
            static_cast<bool>(In >> M.StrategyName) &&
            ExpectLabel("total-shots") &&
            static_cast<bool>(In >> M.TotalShots) && ExpectLabel("range") &&
            static_cast<bool>(In >> M.Range.Begin >> M.Range.Count) &&
            ExpectLabel("num-samples") &&
            static_cast<bool>(In >> M.NumSamples) && ExpectLabel("jobs") &&
            static_cast<bool>(In >> M.JobsUsed) &&
            ExpectLabel("eval-seconds") && ReadHex(EvalSecondsBits) &&
            ExpectLabel("noise") &&
            static_cast<bool>(In >> NoiseChannelText >> NoiseModeText) &&
            ReadHex(NoiseProbBits) && ReadHex(NoiseFactorBits) &&
            ExpectLabel("cache") &&
            static_cast<bool>(
                In >> M.Stats.GCSolveHits >> M.Stats.GCSolveMisses >>
                M.Stats.RPSolveHits >> M.Stats.RPSolveMisses >>
                M.Stats.GraphHits >> M.Stats.GraphMisses >>
                M.Stats.EvaluatorHits >> M.Stats.EvaluatorMisses >>
                M.Stats.SuperHits >> M.Stats.SuperMisses >>
                M.Stats.DiskLoads) &&
            ExpectLabel("fidelity") &&
            static_cast<bool>(In >> FidelityFlag) && ExpectLabel("shots") &&
            static_cast<bool>(In >> ShotCount);
  if (!Ok) {
    fail(Error, "malformed header");
    return std::nullopt;
  }
  std::optional<NoiseChannelKind> Channel = parseNoiseChannel(NoiseChannelText);
  std::optional<NoiseMode> Mode = parseNoiseMode(NoiseModeText);
  if (!Channel || !Mode) {
    fail(Error, "unknown noise channel or mode");
    return std::nullopt;
  }
  M.Noise.Kind = *Channel;
  M.Noise.Mode = *Mode;
  M.Noise.Prob = bitsToDouble(NoiseProbBits);
  M.Noise.TwoQubitFactor = bitsToDouble(NoiseFactorBits);
  M.EvalSeconds = bitsToDouble(EvalSecondsBits);
  M.HasFidelity = FidelityFlag != 0;
  if (ShotCount != M.Range.Count) {
    fail(Error, "shot count disagrees with the declared range");
    return std::nullopt;
  }

  M.Shots.resize(ShotCount);
  if (M.HasFidelity)
    M.Fidelities.resize(ShotCount);
  for (size_t I = 0; I < ShotCount; ++I) {
    ShotSummary &S = M.Shots[I];
    if (!(In >> S.NumSamples >> S.Counts.CNOTs >> S.Counts.SingleQubit >>
          S.Stats.CancelledCNOTs >> S.Stats.CancelledSingles) ||
        !ReadHex(S.SequenceHash)) {
      fail(Error, "malformed shot record");
      return std::nullopt;
    }
    if (M.HasFidelity) {
      uint64_t Bits = 0;
      if (!ReadHex(Bits)) {
        fail(Error, "malformed fidelity record");
        return std::nullopt;
      }
      M.Fidelities[I] = bitsToDouble(Bits);
    }
  }

  uint64_t StoredRangeHash = 0;
  if (!ExpectLabel("range-hash") || !ReadHex(StoredRangeHash)) {
    fail(Error, "missing range hash");
    return std::nullopt;
  }
  if (In >> Word) {
    fail(Error, "trailing garbage");
    return std::nullopt;
  }
  if (StoredRangeHash != M.rangeHash()) {
    fail(Error, "range hash mismatch");
    return std::nullopt;
  }
  return M;
}

bool ShardManifest::writeFile(const std::string &Path,
                              std::string *Error) const {
  // Write-then-rename so a coordinator polling the path never reads a
  // torn file (the same discipline as the component store).
  std::filesystem::path Final(Path);
  std::filesystem::path Tmp = Final;
  Tmp += "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream Out(Tmp);
    if (!Out)
      return fail(Error, "cannot open '" + Tmp.string() + "' for writing");
    Out << serialize();
    if (!Out)
      return fail(Error, "write to '" + Tmp.string() + "' failed");
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return fail(Error, "rename to '" + Path + "' failed");
  }
  return true;
}

std::optional<ShardManifest> ShardManifest::readFile(const std::string &Path,
                                                     std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    fail(Error, "cannot read '" + Path + "'");
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parse(Buf.str(), Error);
}

ShardManifest ShardManifest::fromTaskResult(const TaskSpec &Spec,
                                            const ShotRange &Range,
                                            const TaskResult &Result) {
  ShardManifest M;
  M.Fingerprint = Result.Fingerprint;
  M.Seed = Spec.Seed;
  M.SpecKey = Spec.contentKey();
  M.StrategyName = Result.Batch.StrategyName;
  M.TotalShots = Spec.Shots;
  M.Range = Range;
  M.NumSamples = Result.NumSamples;
  M.JobsUsed = Result.Batch.JobsUsed;
  M.EvalSeconds = Result.Batch.EvalSeconds;
  M.HasFidelity = Result.HasFidelity;
  M.Noise = Spec.Noise;
  M.Stats = Result.Stats;
  M.Shots = Result.Batch.Shots;
  if (Result.HasFidelity)
    M.Fidelities = Result.ShotFidelities;
  return M;
}
