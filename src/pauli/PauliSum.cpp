//===- pauli/PauliSum.cpp - Complex-weighted Pauli algebra ------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pauli/PauliSum.h"

#include <cmath>

using namespace marqsim;

PauliSum PauliSum::scalar(Complex C) {
  PauliSum S;
  S.add(C, PauliString());
  return S;
}

PauliSum PauliSum::term(Complex C, PauliString P) {
  PauliSum S;
  S.add(C, P);
  return S;
}

bool PauliSum::isZero(double Tol) const {
  for (const auto &[P, C] : Terms)
    if (std::abs(C) > Tol)
      return false;
  return true;
}

void PauliSum::add(Complex C, PauliString P) {
  if (C == Complex(0.0, 0.0))
    return;
  Terms[P] += C;
}

PauliSum PauliSum::operator+(const PauliSum &O) const {
  PauliSum R = *this;
  R += O;
  return R;
}

PauliSum &PauliSum::operator+=(const PauliSum &O) {
  for (const auto &[P, C] : O.Terms)
    Terms[P] += C;
  return *this;
}

PauliSum PauliSum::operator-(const PauliSum &O) const {
  PauliSum R = *this;
  for (const auto &[P, C] : O.Terms)
    R.Terms[P] -= C;
  return R;
}

PauliSum PauliSum::operator*(Complex C) const {
  PauliSum R;
  for (const auto &[P, Coeff] : Terms)
    R.add(Coeff * C, P);
  return R;
}

PauliSum PauliSum::operator*(const PauliSum &O) const {
  static const Complex IPow[4] = {
      {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
  PauliSum R;
  for (const auto &[PA, CA] : Terms)
    for (const auto &[PB, CB] : O.Terms) {
      int PhasePow = 0;
      PauliString Prod = PA.multiply(PB, PhasePow);
      R.add(CA * CB * IPow[PhasePow], Prod);
    }
  return R;
}

PauliSum PauliSum::adjoint() const {
  PauliSum R;
  for (const auto &[P, C] : Terms)
    R.add(std::conj(C), P);
  return R;
}

void PauliSum::prune(double Tol) {
  for (auto It = Terms.begin(); It != Terms.end();) {
    if (std::abs(It->second) <= Tol)
      It = Terms.erase(It);
    else
      ++It;
  }
}

bool PauliSum::isHermitian(double Tol) const {
  for (const auto &[P, C] : Terms)
    if (std::fabs(C.imag()) > Tol)
      return false;
  return true;
}

Hamiltonian PauliSum::toHamiltonian(unsigned NumQubits, bool DropIdentity,
                                    double Tol) const {
  assert(isHermitian() && "toHamiltonian requires a Hermitian operator");
  Hamiltonian H(NumQubits);
  for (const auto &[P, C] : Terms) {
    if (DropIdentity && P.isIdentity())
      continue;
    if (std::fabs(C.real()) > Tol)
      H.addTerm(C.real(), P);
  }
  return H;
}
