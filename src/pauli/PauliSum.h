//===- pauli/PauliSum.h - Complex-weighted Pauli algebra --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear combinations of Pauli strings with complex coefficients.
///
/// This is the working representation for operator algebra that is not yet a
/// Hermitian Hamiltonian: the Jordan-Wigner images of fermionic ladder
/// operators, their products, and Majorana monomials. Products use the
/// phase-tracked PauliString multiplication; terms are kept in a map keyed
/// by string so collection is automatic.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_PAULI_PAULISUM_H
#define MARQSIM_PAULI_PAULISUM_H

#include "pauli/Hamiltonian.h"

#include <map>

namespace marqsim {

/// A complex-weighted sum of Pauli strings.
class PauliSum {
public:
  PauliSum() = default;

  /// The zero operator.
  static PauliSum zero() { return PauliSum(); }

  /// The scalar operator c * Identity.
  static PauliSum scalar(Complex C);

  /// A single term c * P.
  static PauliSum term(Complex C, PauliString P);

  bool isZero(double Tol = 1e-14) const;
  size_t numTerms() const { return Terms.size(); }
  const std::map<PauliString, Complex> &terms() const { return Terms; }

  /// Adds c * P into the sum.
  void add(Complex C, PauliString P);

  PauliSum operator+(const PauliSum &O) const;
  PauliSum operator-(const PauliSum &O) const;
  PauliSum operator*(const PauliSum &O) const;
  PauliSum operator*(Complex C) const;
  PauliSum &operator+=(const PauliSum &O);

  /// Hermitian conjugate (conjugates coefficients; Pauli strings are
  /// self-adjoint).
  PauliSum adjoint() const;

  /// Removes terms with |coefficient| <= Tol.
  void prune(double Tol = 1e-12);

  /// True if every coefficient is real within Tol (i.e. the operator is
  /// Hermitian, since Pauli strings are Hermitian and independent).
  bool isHermitian(double Tol = 1e-10) const;

  /// Converts to a real-weighted Hamiltonian over \p NumQubits qubits.
  /// Requires isHermitian(); the identity component may optionally be
  /// dropped (it only shifts the global phase of the simulation).
  Hamiltonian toHamiltonian(unsigned NumQubits, bool DropIdentity = true,
                            double Tol = 1e-12) const;

private:
  std::map<PauliString, Complex> Terms;
};

} // namespace marqsim

#endif // MARQSIM_PAULI_PAULISUM_H
