//===- pauli/HamiltonianIO.h - Hamiltonian text format ----------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-text interchange format for decomposed Hamiltonians, so users
/// can bring their own (e.g. PySCF/Qiskit-Nature exports) instead of the
/// built-in generators:
///
///   # comment lines start with '#'
///   1.0   IIIZ
///   0.5   IIZZ
///   -0.4  XXYY
///
/// One term per line: real coefficient, whitespace, Pauli string (leftmost
/// character = highest qubit; all strings must have equal length).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_PAULI_HAMILTONIANIO_H
#define MARQSIM_PAULI_HAMILTONIANIO_H

#include "pauli/Hamiltonian.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace marqsim {

/// Parses the text format from \p IS. Returns std::nullopt and fills
/// \p Error (if non-null) on malformed input.
std::optional<Hamiltonian> readHamiltonian(std::istream &IS,
                                           std::string *Error = nullptr);

/// Parses a file by path.
std::optional<Hamiltonian> readHamiltonianFile(const std::string &Path,
                                               std::string *Error = nullptr);

/// Writes \p H in the text format (round-trips with readHamiltonian).
void writeHamiltonian(const Hamiltonian &H, std::ostream &OS);

} // namespace marqsim

#endif // MARQSIM_PAULI_HAMILTONIANIO_H
