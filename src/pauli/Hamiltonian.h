//===- pauli/Hamiltonian.h - Weighted Pauli-string Hamiltonians -*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decomposed Hamiltonian H = sum_j h_j H_j with real weights h_j and
/// Pauli-string terms H_j. This is the input of every compiler in the
/// project (Trotter, qDrift, MarQSim).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_PAULI_HAMILTONIAN_H
#define MARQSIM_PAULI_HAMILTONIAN_H

#include "pauli/PauliString.h"

#include <string>
#include <vector>

namespace marqsim {

/// One weighted term h_j * H_j of a decomposed Hamiltonian.
struct PauliTerm {
  double Coeff = 0.0;
  PauliString String;

  PauliTerm() = default;
  PauliTerm(double Coeff, PauliString String)
      : Coeff(Coeff), String(String) {}
};

/// A Hamiltonian decomposed into a weighted sum of Pauli strings.
class Hamiltonian {
public:
  Hamiltonian() = default;
  explicit Hamiltonian(unsigned NumQubits) : NQubits(NumQubits) {}

  /// Builds a Hamiltonian from (coefficient, text) pairs such as
  /// {1.0, "IIIZ"}. Asserts on malformed strings or inconsistent lengths.
  static Hamiltonian parse(
      const std::vector<std::pair<double, std::string>> &Terms);

  unsigned numQubits() const { return NQubits; }
  size_t numTerms() const { return Terms.size(); }
  bool empty() const { return Terms.empty(); }

  const PauliTerm &term(size_t I) const {
    assert(I < Terms.size() && "term index out of range");
    return Terms[I];
  }
  const std::vector<PauliTerm> &terms() const { return Terms; }

  /// Appends a term. Zero-coefficient terms are dropped (the stationary
  /// distribution pi_i = |h_i|/lambda requires strictly positive weights).
  void addTerm(double Coeff, PauliString String);

  /// lambda = sum_j |h_j| (paper notation).
  double lambda() const;

  /// The qDrift/MarQSim stationary distribution pi_i = |h_i| / lambda.
  std::vector<double> stationaryDistribution() const;

  /// Merges terms with identical Pauli strings (summing coefficients) and
  /// drops terms with |h| <= Tol. Returns the merged Hamiltonian. The
  /// result is in canonical term order (sorted by Pauli string), so two
  /// term-permuted descriptions of the same operator merge identically.
  Hamiltonian merged(double Tol = 1e-12) const;

  /// Content hash of the operator this Hamiltonian describes: an FNV-1a
  /// combination over the *merged* terms that is insensitive to the order
  /// (and duplication) of the input term list. Two Hamiltonians loaded
  /// from differently ordered sources fingerprint identically; any change
  /// to a coefficient, string, or the qubit count changes the hash. This
  /// is the content key of the SimulationService artifact caches.
  uint64_t fingerprint() const;

  /// Splits any term whose stationary weight pi_i exceeds \p MaxPi into
  /// equal halves, repeatedly, so that every resulting pi_i <= MaxPi.
  /// This implements the fix in the proof of Theorem 5.1 (a feasible flow
  /// with the diagonal removed requires pi_i <= 0.5).
  Hamiltonian splitLargeTerms(double MaxPi = 0.5) const;

  /// Returns the Hamiltonian with all coefficients scaled by the same
  /// factor so that lambda() == TargetLambda. The stationary distribution
  /// (and hence every transition matrix) is unchanged; only the sampling
  /// budget N = ceil(2 lambda^2 t^2 / eps) moves. The benchmark registry
  /// uses this to place synthetic workloads in the paper's N regime.
  Hamiltonian rescaledToLambda(double TargetLambda) const;

  /// Dense 2^n x 2^n matrix of the full Hamiltonian (small systems only).
  Matrix toMatrix() const;

  /// Multi-line human-readable listing.
  std::string str() const;

private:
  unsigned NQubits = 0;
  std::vector<PauliTerm> Terms;
};

} // namespace marqsim

#endif // MARQSIM_PAULI_HAMILTONIAN_H
