//===- pauli/Hamiltonian.cpp - Weighted Pauli-string Hamiltonians -----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pauli/Hamiltonian.h"

#include "support/Serial.h"
#include "support/Table.h"

#include <cmath>
#include <cstring>
#include <map>

using namespace marqsim;

Hamiltonian Hamiltonian::parse(
    const std::vector<std::pair<double, std::string>> &TermList) {
  assert(!TermList.empty() && "cannot parse an empty Hamiltonian");
  Hamiltonian H(static_cast<unsigned>(TermList.front().second.size()));
  for (const auto &[Coeff, Text] : TermList) {
    assert(Text.size() == H.NQubits && "inconsistent Pauli string length");
    std::optional<PauliString> P = PauliString::parse(Text);
    assert(P && "malformed Pauli string");
    H.addTerm(Coeff, *P);
  }
  return H;
}

void Hamiltonian::addTerm(double Coeff, PauliString String) {
  if (Coeff == 0.0)
    return;
  assert((String.supportMask() >> NQubits) == 0 &&
         "term acts outside the declared register");
  Terms.emplace_back(Coeff, String);
}

double Hamiltonian::lambda() const {
  double L = 0.0;
  for (const PauliTerm &T : Terms)
    L += std::fabs(T.Coeff);
  return L;
}

std::vector<double> Hamiltonian::stationaryDistribution() const {
  const double L = lambda();
  assert(L > 0.0 && "stationary distribution of an empty Hamiltonian");
  std::vector<double> Pi(Terms.size());
  for (size_t I = 0; I < Terms.size(); ++I)
    Pi[I] = std::fabs(Terms[I].Coeff) / L;
  return Pi;
}

Hamiltonian Hamiltonian::merged(double Tol) const {
  std::map<PauliString, double> Sums;
  for (const PauliTerm &T : Terms)
    Sums[T.String] += T.Coeff;
  Hamiltonian H(NQubits);
  for (const auto &[String, Coeff] : Sums)
    if (std::fabs(Coeff) > Tol)
      H.addTerm(Coeff, String);
  return H;
}

uint64_t Hamiltonian::fingerprint() const {
  // Hash the merged form: merged() sorts terms by Pauli string, so the
  // sequential FNV walk below is automatically insensitive to the input
  // term order and to split/duplicated terms that merge back together.
  uint64_t H = serial::FNVOffset;
  H = serial::fnv1aWord(NQubits, H);
  const Hamiltonian Canonical = merged();
  for (const PauliTerm &T : Canonical.Terms) {
    H = serial::fnv1aWord(serial::doubleBits(T.Coeff), H);
    H = serial::fnv1aWord(T.String.xMask(), H);
    H = serial::fnv1aWord(T.String.zMask(), H);
  }
  return H;
}

Hamiltonian Hamiltonian::splitLargeTerms(double MaxPi) const {
  assert(MaxPi > 0.0 && MaxPi <= 1.0 && "invalid stationary-weight cap");
  const double L = lambda();
  Hamiltonian H(NQubits);
  for (const PauliTerm &T : Terms) {
    double Pi = std::fabs(T.Coeff) / L;
    // Split into the smallest number of equal pieces that fit under MaxPi.
    // A strict bound is required by the flow-feasibility argument, so round
    // up when pi is exactly at the cap.
    unsigned Pieces = 1;
    while (Pi / Pieces > MaxPi)
      ++Pieces;
    for (unsigned K = 0; K < Pieces; ++K)
      H.addTerm(T.Coeff / Pieces, T.String);
  }
  return H;
}

Hamiltonian Hamiltonian::rescaledToLambda(double TargetLambda) const {
  assert(TargetLambda > 0.0 && "target lambda must be positive");
  const double L = lambda();
  assert(L > 0.0 && "cannot rescale an empty Hamiltonian");
  const double Factor = TargetLambda / L;
  Hamiltonian H(NQubits);
  for (const PauliTerm &T : Terms)
    H.addTerm(T.Coeff * Factor, T.String);
  return H;
}

Matrix Hamiltonian::toMatrix() const {
  assert(NQubits <= 14 && "dense Hamiltonian too large");
  const size_t Dim = size_t(1) << NQubits;
  Matrix M(Dim, Dim);
  // Each Pauli string is a (phase, permutation) pair: only 2^n nonzeros.
  for (const PauliTerm &T : Terms)
    for (uint64_t X = 0; X < Dim; ++X)
      M.at(X ^ T.String.xMask(), X) += T.Coeff * T.String.applyToBasis(X);
  return M;
}

std::string Hamiltonian::str() const {
  std::string S;
  for (const PauliTerm &T : Terms) {
    S += formatDouble(T.Coeff);
    S += " * ";
    S += T.String.str(NQubits);
    S += '\n';
  }
  return S;
}
