//===- pauli/PauliString.h - Pauli string algebra ---------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pauli strings in the symplectic (X-mask, Z-mask) representation.
///
/// An n-qubit Pauli string P = sigma_n (x) ... (x) sigma_1 with
/// sigma in {I, X, Y, Z} is stored as two 64-bit masks: bit q of XMask/ZMask
/// records whether the operator on qubit q contains an X/Z factor
/// (Y = iXZ sets both). This makes products, commutation tests, and
/// state application O(1) bit operations, which the compiler relies on for
/// its CNOT-count oracle and the simulator for fast Pauli rotations.
///
/// Convention: qubit 0 is the least significant bit of a computational basis
/// index; the textual form "XYZI" follows the paper (leftmost character is
/// the highest qubit).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_PAULI_PAULISTRING_H
#define MARQSIM_PAULI_PAULISTRING_H

#include "linalg/Matrix.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace marqsim {

/// Single-qubit Pauli operator kind.
enum class PauliOpKind : uint8_t { I = 0, X = 1, Z = 2, Y = 3 };

/// An n-qubit Pauli string (n <= 64), phase-free (the canonical operator
/// sigma_n (x) ... (x) sigma_1 itself; scalar phases live with callers).
class PauliString {
public:
  /// The identity string.
  PauliString() : XMask(0), ZMask(0) {}

  /// Builds a string directly from symplectic masks.
  PauliString(uint64_t XMask, uint64_t ZMask) : XMask(XMask), ZMask(ZMask) {}

  /// Parses text such as "XYZI" (leftmost char = highest qubit). Returns
  /// std::nullopt on characters outside {I,X,Y,Z} or length > 64.
  static std::optional<PauliString> parse(const std::string &Text);

  /// Returns the operator acting on qubit \p Q.
  PauliOpKind op(unsigned Q) const {
    assert(Q < 64 && "qubit index out of range");
    unsigned Bits = (unsigned)((XMask >> Q) & 1) |
                    ((unsigned)((ZMask >> Q) & 1) << 1);
    return static_cast<PauliOpKind>(Bits);
  }

  /// Sets the operator acting on qubit \p Q.
  void setOp(unsigned Q, PauliOpKind K);

  uint64_t xMask() const { return XMask; }
  uint64_t zMask() const { return ZMask; }

  /// Mask of qubits with a non-identity operator.
  uint64_t supportMask() const { return XMask | ZMask; }

  /// Number of non-identity positions.
  unsigned weight() const { return __builtin_popcountll(supportMask()); }

  /// True if this is the identity string.
  bool isIdentity() const { return supportMask() == 0; }

  /// True if the two strings commute (symplectic inner product is even).
  bool commutesWith(const PauliString &O) const {
    unsigned Sym = __builtin_popcountll(XMask & O.ZMask) +
                   __builtin_popcountll(ZMask & O.XMask);
    return (Sym % 2) == 0;
  }

  /// Number of qubits on which both strings act with the *same* non-identity
  /// operator. This is the "matched Pauli operators" count that drives the
  /// CNOT gate-cancellation oracle (paper Section 5.2).
  unsigned matchedOps(const PauliString &O) const {
    uint64_t SameX = ~(XMask ^ O.XMask);
    uint64_t SameZ = ~(ZMask ^ O.ZMask);
    return __builtin_popcountll(SameX & SameZ & supportMask() &
                                O.supportMask());
  }

  bool operator==(const PauliString &O) const {
    return XMask == O.XMask && ZMask == O.ZMask;
  }
  bool operator!=(const PauliString &O) const { return !(*this == O); }
  bool operator<(const PauliString &O) const {
    return XMask != O.XMask ? XMask < O.XMask : ZMask < O.ZMask;
  }

  /// Computes the operator product This * O. The product of two Pauli
  /// strings is always i^k times a third string; \p PhasePowOut receives
  /// k in {0,1,2,3} so that This*O == i^k * result.
  PauliString multiply(const PauliString &O, int &PhasePowOut) const;

  /// Applies the string to a computational basis state |X>:
  /// P|X> = phase * |X ^ XMask>. \returns the complex phase.
  Complex applyToBasis(uint64_t X) const;

  /// Renders the string over \p NumQubits characters, highest qubit first.
  std::string str(unsigned NumQubits) const;

  /// Dense 2^n x 2^n matrix; for testing and exact small-system evolution.
  Matrix toMatrix(unsigned NumQubits) const;

  /// A stable 64-bit hash for use in unordered containers.
  uint64_t hash() const {
    uint64_t H = XMask * 0x9e3779b97f4a7c15ULL;
    H ^= ZMask + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    return H;
  }

private:
  uint64_t XMask;
  uint64_t ZMask;
};

/// Hash functor for unordered containers keyed by PauliString.
struct PauliStringHash {
  size_t operator()(const PauliString &P) const {
    return static_cast<size_t>(P.hash());
  }
};

/// Renders a single Pauli operator kind as 'I', 'X', 'Y' or 'Z'.
char pauliOpChar(PauliOpKind K);

} // namespace marqsim

#endif // MARQSIM_PAULI_PAULISTRING_H
