//===- pauli/PauliString.cpp - Pauli string algebra -------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pauli/PauliString.h"

using namespace marqsim;

char marqsim::pauliOpChar(PauliOpKind K) {
  switch (K) {
  case PauliOpKind::I:
    return 'I';
  case PauliOpKind::X:
    return 'X';
  case PauliOpKind::Y:
    return 'Y';
  case PauliOpKind::Z:
    return 'Z';
  }
  assert(false && "invalid PauliOpKind");
  return '?';
}

std::optional<PauliString> PauliString::parse(const std::string &Text) {
  if (Text.size() > 64)
    return std::nullopt;
  PauliString P;
  const unsigned N = static_cast<unsigned>(Text.size());
  for (unsigned I = 0; I < N; ++I) {
    // Leftmost character acts on the highest qubit (paper convention).
    unsigned Q = N - 1 - I;
    switch (Text[I]) {
    case 'I':
    case 'i':
      break;
    case 'X':
    case 'x':
      P.XMask |= 1ULL << Q;
      break;
    case 'Y':
    case 'y':
      P.XMask |= 1ULL << Q;
      P.ZMask |= 1ULL << Q;
      break;
    case 'Z':
    case 'z':
      P.ZMask |= 1ULL << Q;
      break;
    default:
      return std::nullopt;
    }
  }
  return P;
}

void PauliString::setOp(unsigned Q, PauliOpKind K) {
  assert(Q < 64 && "qubit index out of range");
  uint64_t Bit = 1ULL << Q;
  XMask &= ~Bit;
  ZMask &= ~Bit;
  unsigned Bits = static_cast<unsigned>(K);
  if (Bits & 1)
    XMask |= Bit;
  if (Bits & 2)
    ZMask |= Bit;
}

PauliString PauliString::multiply(const PauliString &O,
                                  int &PhasePowOut) const {
  // Write each string canonically as i^{|X&Z|} X^A Z^B (Y = iXZ per qubit).
  // (i^{p1} X^{A1} Z^{B1}) (i^{p2} X^{A2} Z^{B2})
  //   = i^{p1+p2} (-1)^{|B1 & A2|} X^{A1^A2} Z^{B1^B2}.
  // The result string again carries its own canonical factor i^{|A&B|},
  // so the residual scalar phase is the difference.
  PauliString R(XMask ^ O.XMask, ZMask ^ O.ZMask);
  int P1 = __builtin_popcountll(XMask & ZMask);
  int P2 = __builtin_popcountll(O.XMask & O.ZMask);
  int Swap = __builtin_popcountll(ZMask & O.XMask);
  int PR = __builtin_popcountll(R.XMask & R.ZMask);
  PhasePowOut = ((P1 + P2 + 2 * Swap - PR) % 4 + 4) % 4;
  return R;
}

Complex PauliString::applyToBasis(uint64_t X) const {
  // P = i^{|A&B|} X^A Z^B. Z^B |x> = (-1)^{|B&x|} |x>; X^A flips the bits.
  static const Complex IPow[4] = {
      {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
  int Pow = __builtin_popcountll(XMask & ZMask) % 4;
  Complex Phase = IPow[Pow];
  if (__builtin_popcountll(ZMask & X) & 1)
    Phase = -Phase;
  return Phase;
}

std::string PauliString::str(unsigned NumQubits) const {
  assert(NumQubits <= 64 && "too many qubits");
  std::string S(NumQubits, 'I');
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    S[NumQubits - 1 - Q] = pauliOpChar(op(Q));
  return S;
}

Matrix PauliString::toMatrix(unsigned NumQubits) const {
  assert(NumQubits <= 20 && "dense Pauli matrix too large");
  const size_t Dim = size_t(1) << NumQubits;
  Matrix M(Dim, Dim);
  for (uint64_t X = 0; X < Dim; ++X) {
    uint64_t Target = X ^ XMask;
    assert(Target < Dim && "Pauli string acts outside the register");
    M.at(Target, X) = applyToBasis(X);
  }
  return M;
}
