//===- pauli/CommutingGroups.cpp - Commuting term partition -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pauli/CommutingGroups.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace marqsim;

std::vector<std::vector<size_t>>
marqsim::groupCommutingTerms(const Hamiltonian &H) {
  const size_t N = H.numTerms();
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return std::fabs(H.term(A).Coeff) > std::fabs(H.term(B).Coeff);
  });

  std::vector<std::vector<size_t>> Groups;
  for (size_t Index : Order) {
    const PauliString &S = H.term(Index).String;
    bool Placed = false;
    for (std::vector<size_t> &Group : Groups) {
      bool Fits = true;
      for (size_t Member : Group) {
        if (!S.commutesWith(H.term(Member).String)) {
          Fits = false;
          break;
        }
      }
      if (Fits) {
        Group.push_back(Index);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Groups.push_back({Index});
  }
  return Groups;
}

bool marqsim::isValidCommutingPartition(
    const Hamiltonian &H, const std::vector<std::vector<size_t>> &Groups) {
  std::vector<char> Seen(H.numTerms(), 0);
  for (const auto &Group : Groups)
    for (size_t I = 0; I < Group.size(); ++I) {
      if (Group[I] >= H.numTerms() || Seen[Group[I]])
        return false;
      Seen[Group[I]] = 1;
      for (size_t J = I + 1; J < Group.size(); ++J)
        if (!H.term(Group[I]).String.commutesWith(H.term(Group[J]).String))
          return false;
    }
  for (char S : Seen)
    if (!S)
      return false;
  return true;
}
