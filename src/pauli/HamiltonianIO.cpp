//===- pauli/HamiltonianIO.cpp - Hamiltonian text format ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pauli/HamiltonianIO.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

using namespace marqsim;

static void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

std::optional<Hamiltonian> marqsim::readHamiltonian(std::istream &IS,
                                                    std::string *Error) {
  std::vector<std::pair<double, std::string>> Terms;
  std::string Line;
  size_t LineNo = 0;
  size_t Width = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    // Strip comments and surrounding whitespace.
    auto Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream SS(Line);
    std::string CoeffText, StringText, Extra;
    if (!(SS >> CoeffText))
      continue; // blank line
    if (!(SS >> StringText)) {
      setError(Error, "line " + std::to_string(LineNo) +
                          ": expected 'coefficient pauli-string'");
      return std::nullopt;
    }
    if (SS >> Extra) {
      setError(Error, "line " + std::to_string(LineNo) +
                          ": trailing content '" + Extra + "'");
      return std::nullopt;
    }
    char *End = nullptr;
    double Coeff = std::strtod(CoeffText.c_str(), &End);
    if (End == CoeffText.c_str() || *End != '\0') {
      setError(Error, "line " + std::to_string(LineNo) +
                          ": malformed coefficient '" + CoeffText + "'");
      return std::nullopt;
    }
    if (!PauliString::parse(StringText)) {
      setError(Error, "line " + std::to_string(LineNo) +
                          ": malformed Pauli string '" + StringText + "'");
      return std::nullopt;
    }
    if (Width == 0)
      Width = StringText.size();
    if (StringText.size() != Width) {
      setError(Error, "line " + std::to_string(LineNo) +
                          ": inconsistent string length (expected " +
                          std::to_string(Width) + ")");
      return std::nullopt;
    }
    Terms.emplace_back(Coeff, StringText);
  }
  if (Terms.empty()) {
    setError(Error, "no terms found");
    return std::nullopt;
  }
  return Hamiltonian::parse(Terms);
}

std::optional<Hamiltonian>
marqsim::readHamiltonianFile(const std::string &Path, std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    setError(Error, "cannot open '" + Path + "'");
    return std::nullopt;
  }
  return readHamiltonian(IS, Error);
}

void marqsim::writeHamiltonian(const Hamiltonian &H, std::ostream &OS) {
  OS << "# " << H.numTerms() << " terms over " << H.numQubits()
     << " qubits\n";
  char Buf[48];
  for (const PauliTerm &T : H.terms()) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", T.Coeff);
    OS << Buf << " " << T.String.str(H.numQubits()) << "\n";
  }
}
