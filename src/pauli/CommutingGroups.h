//===- pauli/CommutingGroups.h - Commuting term partition -------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitioning a Hamiltonian's terms into mutually commuting groups —
/// the structure behind the grouping optimizations the paper discusses
/// ([22] error reduction, [11,12,66] simultaneous diagonalization, and the
/// Pcg transition-matrix extension).
///
/// The problem is graph coloring on the anticommutation graph; we use the
/// standard greedy sequential heuristic over a largest-|h|-first order,
/// which is what the cited compilers use in practice.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_PAULI_COMMUTINGGROUPS_H
#define MARQSIM_PAULI_COMMUTINGGROUPS_H

#include "pauli/Hamiltonian.h"

#include <vector>

namespace marqsim {

/// Partitions term indices of \p H into groups whose members mutually
/// commute. Greedy first-fit over a largest-|h|-first ordering; every term
/// appears in exactly one group; groups are returned largest-weight-first.
std::vector<std::vector<size_t>> groupCommutingTerms(const Hamiltonian &H);

/// True if every pair inside every group commutes (validation helper).
bool isValidCommutingPartition(
    const Hamiltonian &H, const std::vector<std::vector<size_t>> &Groups);

} // namespace marqsim

#endif // MARQSIM_PAULI_COMMUTINGGROUPS_H
