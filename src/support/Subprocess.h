//===- support/Subprocess.h - Child-process launching -----------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fork/exec wrapper for the cross-process sharding layer: launch a
/// worker binary with an explicit argv (no shell, so paths with spaces are
/// safe), optionally redirect its stdout/stderr to files, and wait for its
/// exit status. Several children may be in flight at once; the coordinator
/// spawns one per shard and waits on all of them.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_SUBPROCESS_H
#define MARQSIM_SUPPORT_SUBPROCESS_H

#include <string>
#include <vector>

namespace marqsim {

/// What to run and where to send its output.
struct SubprocessSpec {
  /// argv[0] is the executable path (executed directly, not via PATH when
  /// it contains a slash — the execvp rule).
  std::vector<std::string> Argv;

  /// Redirect targets; empty inherits the parent's stream.
  std::string StdoutFile;
  std::string StderrFile;
};

/// A launched child process. Move-only; the destructor of an un-waited
/// child waits for it (never leaks zombies).
class Subprocess {
public:
  Subprocess() = default;
  ~Subprocess();

  Subprocess(Subprocess &&O) noexcept;
  Subprocess &operator=(Subprocess &&O) noexcept;
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks and execs \p Spec. Returns false and fills \p Error when the
  /// fork fails or the spec is empty; exec failures inside the child
  /// surface as exit code 127 from wait().
  bool spawn(const SubprocessSpec &Spec, std::string *Error = nullptr);

  /// Blocks until the child exits. Returns its exit code, or 128 + signal
  /// number when it was killed by a signal, or -1 when nothing was
  /// spawned. Idempotent: later calls return the recorded status.
  int wait();

  /// Sends \p Signal to the child. False when nothing is running or the
  /// kill fails; the child is NOT reaped (call wait/terminate for that).
  bool signalChild(int Signal);

  /// Graceful stop: SIGTERM, then up to \p GraceMs of WNOHANG polling for
  /// the child to exit on its own, then SIGKILL. Returns the final wait()
  /// status (128 + SIGTERM for a child that honoured the signal). The
  /// two-phase shape is what lets a coordinator tear down workers without
  /// leaving half-written output behind: a worker that installs a SIGTERM
  /// handler gets \p GraceMs to finish its atomic rename or die cleanly.
  int terminate(unsigned GraceMs = 2000);

  bool running() const { return Pid > 0; }

  /// The child's pid, or -1 after wait()/terminate() or before spawn().
  long pid() const { return Pid; }

private:
  long Pid = -1;
  int Status = -1;
};

/// Absolute path of the current executable (/proc/self/exe), or \p
/// Fallback (typically argv[0]) when the link cannot be read.
std::string currentExecutablePath(const std::string &Fallback = "");

} // namespace marqsim

#endif // MARQSIM_SUPPORT_SUBPROCESS_H
