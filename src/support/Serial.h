//===- support/Serial.h - Exact text serialization helpers ------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared codec of every persistent artifact in the project: the
/// on-disk MCFP component store and the shard manifests both serialize
/// doubles as raw IEEE-754 bit patterns in fixed-width hex (so round trips
/// are exact, not merely close) and guard their payloads with an FNV-1a
/// checksum (so truncation and bit flips are detected instead of silently
/// corrupting downstream results).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_SERIAL_H
#define MARQSIM_SUPPORT_SERIAL_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace marqsim {
namespace serial {

/// The raw IEEE-754 bit pattern of \p D.
inline uint64_t doubleBits(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

/// Inverse of doubleBits.
inline double bitsToDouble(uint64_t U) {
  double D;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

/// \p V as exactly 16 lowercase hex digits.
inline std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return std::string(Buf, 16);
}

/// Parses a full-width (1..16 digit) hex token into \p Out. Returns false
/// on empty tokens, non-hex characters, or trailing garbage.
inline bool parseHex64(const std::string &Word, uint64_t &Out) {
  if (Word.empty() || Word.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : Word) {
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return false;
    V = (V << 4) | static_cast<uint64_t>(Digit);
  }
  Out = V;
  return true;
}

inline constexpr uint64_t FNVOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t FNVPrime = 0x100000001b3ULL;

/// One FNV-1a step over a single byte.
inline uint64_t fnv1aByte(uint64_t H, unsigned char Byte) {
  return (H ^ Byte) * FNVPrime;
}

/// FNV-1a over a byte string, continuing from \p H (chainable).
inline uint64_t fnv1a(const std::string &Bytes, uint64_t H = FNVOffset) {
  for (char C : Bytes)
    H = fnv1aByte(H, static_cast<unsigned char>(C));
  return H;
}

/// FNV-1a over the 8 little-endian bytes of \p V, continuing from \p H.
inline uint64_t fnv1aWord(uint64_t V, uint64_t H = FNVOffset) {
  for (unsigned Byte = 0; Byte < 8; ++Byte)
    H = fnv1aByte(H, static_cast<unsigned char>((V >> (8 * Byte)) & 0xFF));
  return H;
}

/// One coarse word-granularity FNV-1a-style step: folds the whole 64-bit
/// value in with a single xor-multiply. This is the combiner of the
/// order-sensitive hash chains built over values that are already hashes
/// (per-shot sequence hashes -> batch/range hashes); byte-granular mixing
/// (fnv1aWord) buys nothing there and costs 8x the multiplies.
inline uint64_t fnv1aMixWord(uint64_t H, uint64_t V) {
  return (H ^ V) * FNVPrime;
}

/// Appends the corruption-guard trailer ("checksum <hex16>\n") every
/// persistent artifact in the project carries.
inline std::string withChecksum(const std::string &Body) {
  return Body + "checksum " + hex16(fnv1a(Body)) + "\n";
}

/// Recovers the body of withChecksum output. Returns false — leaving
/// \p Body untouched — when the trailer is missing or malformed, or when
/// its value disagrees with the payload (truncation, bit flips, torn
/// writes). Callers treat false as "re-derive the artifact".
inline bool splitChecksummed(const std::string &Text, std::string &Body) {
  size_t Mark = Text.rfind("checksum ");
  if (Mark == std::string::npos || (Mark != 0 && Text[Mark - 1] != '\n'))
    return false;
  size_t Start = Mark + 9; // past "checksum "
  size_t End = Text.find_first_of(" \t\r\n", Start);
  uint64_t Stored = 0;
  if (!parseHex64(Text.substr(Start, End == std::string::npos
                                         ? std::string::npos
                                         : End - Start),
                  Stored))
    return false;
  if (fnv1a(Text.substr(0, Mark)) != Stored)
    return false;
  Body = Text.substr(0, Mark);
  return true;
}

} // namespace serial
} // namespace marqsim

#endif // MARQSIM_SUPPORT_SERIAL_H
