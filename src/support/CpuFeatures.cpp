//===- support/CpuFeatures.cpp - Runtime ISA feature probe -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CpuFeatures.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

using namespace marqsim;

namespace {

CpuFeatures probe() {
  CpuFeatures F;
#if defined(__x86_64__) || defined(__i386__)
  // cpuid via the compiler's cached probe; also checks OS XSAVE support,
  // so AVX2=true means the registers are actually usable.
  F.AVX2 = __builtin_cpu_supports("avx2");
  F.FMA = __builtin_cpu_supports("fma");
#elif defined(__aarch64__)
#if defined(__linux__)
  F.NEON = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  // AdvSIMD is architecturally mandatory on AArch64.
  F.NEON = true;
#endif
#endif
  return F;
}

} // namespace

const CpuFeatures &marqsim::cpuFeatures() {
  // Magic-static: probed exactly once, thread-safe since C++11.
  static const CpuFeatures F = probe();
  return F;
}
