//===- support/CpuFeatures.cpp - Runtime ISA feature probe -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CpuFeatures.h"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

using namespace marqsim;

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XGETBV(0): the XCR0 state-component bitmap. Only callable when CPUID
/// leaf 1 ECX bit 27 (OSXSAVE) is set. Emitted as raw bytes so the probe
/// compiles without -mxsave.
uint64_t readXCR0() {
  uint32_t Eax, Edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" // xgetbv
                   : "=a"(Eax), "=d"(Edx)
                   : "c"(0));
  return (static_cast<uint64_t>(Edx) << 32) | Eax;
}

/// SSE (1) + AVX (2) + opmask (5) + ZMM_Hi256 (6) + Hi16_ZMM (7): the
/// state components the OS must manage for 512-bit kernels to be safe.
constexpr uint64_t XCR0_AVX512_MASK = 0xE6;

#endif

CpuFeatures probe() {
  CpuFeatures F;
#if defined(__x86_64__) || defined(__i386__)
  // cpuid via the compiler's cached probe; also checks OS XSAVE support,
  // so AVX2=true means the registers are actually usable.
  F.AVX2 = __builtin_cpu_supports("avx2");
  F.FMA = __builtin_cpu_supports("fma");

  // AVX-512 feature bits from a raw leaf-7 query, decoupled from the OS
  // state so --stats can report "CPU has it, OS state off" distinctly.
  unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
  if (__get_cpuid_count(7, 0, &Eax, &Ebx, &Ecx, &Edx)) {
    F.AVX512F = (Ebx & (1u << 16)) != 0;
    F.AVX512DQ = (Ebx & (1u << 17)) != 0;
  }
  Eax = Ebx = Ecx = Edx = 0;
  if (__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx) && (Ecx & (1u << 27)))
    F.AVX512OS = (readXCR0() & XCR0_AVX512_MASK) == XCR0_AVX512_MASK;
#elif defined(__aarch64__)
#if defined(__linux__)
  F.NEON = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  // AdvSIMD is architecturally mandatory on AArch64.
  F.NEON = true;
#endif
#endif
  return F;
}

} // namespace

const CpuFeatures &marqsim::cpuFeatures() {
  // Magic-static: probed exactly once, thread-safe since C++11.
  static const CpuFeatures F = probe();
  return F;
}
