//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation for the whole project.
///
/// All randomized compilation passes, Hamiltonian generators, and benchmark
/// harnesses draw from this engine so that every experiment is reproducible
/// from a single 64-bit seed. The core generator is xoshiro256**, seeded via
/// SplitMix64 as recommended by its authors.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_RNG_H
#define MARQSIM_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace marqsim {

/// A small, fast, deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if ever needed, but the common draws used in
/// this project (uniform doubles, gaussians, bounded integers, discrete
/// distributions) are provided as members with stable, libstdc++-independent
/// behaviour.
class RNG {
public:
  using result_type = uint64_t;

  /// Creates a generator whose entire stream is determined by \p Seed.
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  uint64_t operator()() { return next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi) {
    assert(Lo <= Hi && "empty uniform range");
    return Lo + (Hi - Lo) * uniform();
  }

  /// Returns an integer uniformly distributed in [0, Bound).
  uint64_t uniformInt(uint64_t Bound);

  /// Returns a standard normal deviate (Box-Muller, cached pair).
  double gaussian();

  /// Returns a normal deviate with the given mean and standard deviation.
  double gaussian(double Mean, double Sigma) {
    return Mean + Sigma * gaussian();
  }

  /// Returns true with probability \p P.
  bool bernoulli(double P) { return uniform() < P; }

  /// Samples an index from an explicit (non-negative, not necessarily
  /// normalized) weight vector by inverse-CDF walk. O(n); use
  /// markov::AliasSampler for repeated draws from the same distribution.
  size_t sampleDiscrete(const std::vector<double> &Weights);

  /// Derives an independent child generator; useful to give each benchmark
  /// repetition its own stream without correlations.
  RNG split();

  /// Counter-based substream derivation: the generator for shot \p Shot of
  /// a batch seeded with \p Seed. Unlike split(), the result depends only
  /// on (Seed, Shot) — not on any generator state — so a batch compiled
  /// across any number of threads draws bit-identical streams per shot.
  static RNG forShot(uint64_t Seed, uint64_t Shot);

private:
  uint64_t State[4];
  double CachedGaussian = 0.0;
  bool HasCachedGaussian = false;
};

} // namespace marqsim

#endif // MARQSIM_SUPPORT_RNG_H
