//===- support/Json.h - Minimal ordered JSON value/codec --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the resident-daemon protocol and the CLI's
/// machine-readable stats: a small JSON DOM with a deterministic compact
/// writer and a strict recursive-descent parser.
///
/// Design points that matter to the protocol:
///   * Objects preserve insertion order, so dump() output is byte-stable
///     for a given construction sequence — diffable in CI and cacheable
///     by content hash.
///   * Numbers distinguish integers (exact int64 round trip) from
///     doubles. Values whose bits must survive transport exactly (seeds,
///     times, weights, fidelities) do NOT travel as JSON numbers at all:
///     the protocol encodes them as 16-digit IEEE-754 hex strings via
///     support/Serial.h, and this module never needs to promise exact
///     double round trips.
///   * The parser enforces a nesting-depth limit and rejects trailing
///     garbage, so adversarial frames fail cleanly instead of recursing
///     the stack away.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_JSON_H
#define MARQSIM_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace marqsim {
namespace json {

class Value;

/// One object member. Objects are vectors of these: insertion-ordered,
/// no hashing, linear lookup (protocol objects are small).
using Member = std::pair<std::string, Value>;

/// A JSON value. Cheap default construction (null); copyable.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool V) : K(Kind::Bool), B(V) {}
  Value(double V) : K(Kind::Double), D(V) {}
  Value(const char *V) : K(Kind::String), S(V) {}
  Value(std::string V) : K(Kind::String), S(std::move(V)) {}
  /// Any non-bool integral type maps onto the Int kind. Values above
  /// INT64_MAX would wrap — transport such values (seeds, hashes) as hex
  /// strings instead.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T V) : K(Kind::Int), I(static_cast<int64_t>(V)) {}

  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }
  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }

  /// Appends (or replaces) a member; asserts on non-objects. Returns
  /// *this so builders can chain.
  Value &set(const std::string &Key, Value V);

  /// Member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const;

  /// Appends an array element; asserts on non-arrays.
  void push(Value V);

  /// Array / object element count; 0 for scalars.
  size_t size() const;

  /// Array element access; asserts in range.
  const Value &at(size_t Index) const;

  const std::vector<Value> *items() const {
    return K == Kind::Array ? &Arr : nullptr;
  }
  const std::vector<Member> *members() const {
    return K == Kind::Object ? &Obj : nullptr;
  }

  /// Scalar accessors; return \p Default on kind mismatch. asInt accepts
  /// Int only (protocol counts are always written as Int); asDouble
  /// accepts Int or Double.
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    return K == Kind::Int ? I : Default;
  }
  double asDouble(double Default = 0.0) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asString() const;

  /// Compact deterministic rendering: no whitespace, members in
  /// insertion order, doubles as shortest-faithful %.17g, non-finite
  /// doubles as null (JSON has no representation for them).
  std::string dump() const;

  /// Strict parse of exactly one JSON value (surrounding whitespace
  /// allowed, trailing garbage rejected). Returns std::nullopt and fills
  /// \p Error (with a byte offset) on malformed text or nesting deeper
  /// than an internal limit.
  static std::optional<Value> parse(const std::string &Text,
                                    std::string *Error = nullptr);

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<Value> Arr;
  std::vector<Member> Obj;
};

} // namespace json
} // namespace marqsim

#endif // MARQSIM_SUPPORT_JSON_H
