//===- support/Socket.h - TCP stream and listener wrappers ------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the resident-daemon protocol: a RAII TCP stream
/// with line-framed, size-capped reads (the protocol is one JSON object
/// per '\n'-terminated line), and a listener whose accept loop can be
/// woken by a pipe byte so shutdown never races a blocking accept().
///
/// Every send uses MSG_NOSIGNAL — a client that disconnects mid-stream
/// surfaces as an error return, never as a process-killing SIGPIPE.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_SOCKET_H
#define MARQSIM_SUPPORT_SOCKET_H

#include <cstdint>
#include <optional>
#include <string>

namespace marqsim {

/// A connected TCP stream. Move-only; the destructor closes the fd.
class Socket {
public:
  Socket() = default;
  /// Adopts an already-connected fd (from ListenSocket::accept).
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket();

  Socket(Socket &&O) noexcept;
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Connects to a numeric IPv4 address ("127.0.0.1") or "localhost".
  static std::optional<Socket> connectTo(const std::string &Host,
                                         uint16_t Port,
                                         std::string *Error = nullptr);

  /// Receive timeout for readLine; 0 clears it (block forever).
  bool setRecvTimeout(unsigned Millis);

  /// Writes all of \p Bytes (handles short writes). Returns false and
  /// fills \p Error on a closed/abandoned peer.
  bool sendAll(const std::string &Bytes, std::string *Error = nullptr);

  enum class ReadStatus {
    Line,      ///< a complete line was returned (terminator stripped)
    Eof,       ///< orderly close with no buffered partial line
    Truncated, ///< peer closed mid-line (a partial frame was discarded)
    Timeout,   ///< recv timeout expired (see setRecvTimeout)
    Oversized, ///< more than MaxBytes arrived without a newline
    Error,     ///< socket error
  };

  /// Reads until '\n' (stripped, along with a preceding '\r'); bytes past
  /// the newline stay buffered for the next call. A line longer than
  /// \p MaxBytes returns Oversized — the caller should close, since the
  /// stream is mid-frame and cannot be resynchronized cheaply.
  ReadStatus readLine(std::string &Line, size_t MaxBytes,
                      std::string *Error = nullptr);

  /// Half-close the read side: a handler blocked in readLine observes
  /// Eof. The daemon's drain uses this to unblock idle connections.
  void shutdownRead();

  void close();

private:
  int Fd = -1;
  std::string Buffer;
};

/// A listening TCP socket bound to one address.
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  /// Binds and listens on a numeric IPv4 \p Host ("127.0.0.1",
  /// "localhost", or "0.0.0.0"). Port 0 picks an ephemeral port; port()
  /// reports the bound one either way.
  bool listenOn(const std::string &Host, uint16_t Port,
                std::string *Error = nullptr);

  uint16_t port() const { return BoundPort; }
  bool valid() const { return Fd >= 0; }

  /// Blocks until a connection arrives or a byte/close shows up on
  /// \p WakeFd (-1 disables the wake channel). Sets \p Woke and returns
  /// std::nullopt when the wake channel fired — the shutdown path.
  std::optional<Socket> accept(int WakeFd, bool *Woke,
                               std::string *Error = nullptr);

  void close();

private:
  int Fd = -1;
  uint16_t BoundPort = 0;
};

/// Splits "host:port" (numeric port, 1..65535). Returns false and fills
/// \p Error on malformed input.
bool parseHostPort(const std::string &Spec, std::string &Host,
                   uint16_t &Port, std::string *Error = nullptr);

} // namespace marqsim

#endif // MARQSIM_SUPPORT_SOCKET_H
