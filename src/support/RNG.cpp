//===- support/RNG.cpp - Deterministic random number generation ----------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"

#include <cmath>

using namespace marqsim;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void RNG::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  HasCachedGaussian = false;
}

uint64_t RNG::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double RNG::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t RNG::uniformInt(uint64_t Bound) {
  assert(Bound > 0 && "uniformInt bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = (~Bound + 1) % Bound; // == 2^64 mod Bound
  for (;;) {
    uint64_t X = next();
    if (X >= Threshold)
      return X % Bound;
  }
}

double RNG::gaussian() {
  if (HasCachedGaussian) {
    HasCachedGaussian = false;
    return CachedGaussian;
  }
  // Box-Muller; uniform() can return 0, so nudge into (0, 1].
  double U1 = 1.0 - uniform();
  double U2 = uniform();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  CachedGaussian = R * std::sin(Theta);
  HasCachedGaussian = true;
  return R * std::cos(Theta);
}

size_t RNG::sampleDiscrete(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "cannot sample from empty distribution");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight in discrete distribution");
    Total += W;
  }
  assert(Total > 0.0 && "all-zero discrete distribution");
  double X = uniform() * Total;
  double Acc = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (X < Acc)
      return I;
  }
  // Floating-point slack: fall back to the last positive-weight index.
  for (size_t I = Weights.size(); I-- > 0;)
    if (Weights[I] > 0.0)
      return I;
  return Weights.size() - 1;
}

RNG RNG::split() {
  RNG Child(next() ^ 0xa5a5a5a5deadbeefULL);
  return Child;
}

RNG RNG::forShot(uint64_t Seed, uint64_t Shot) {
  // Two SplitMix64 passes over a mix of seed and counter; SplitMix64 is a
  // bijection, so distinct (Seed, Shot) pairs keep distinct states before
  // the final xor decorrelates the two inputs.
  uint64_t A = Seed;
  uint64_t MixedSeed = splitMix64(A);
  uint64_t B = Shot ^ 0x94d049bb133111ebULL;
  uint64_t MixedShot = splitMix64(B);
  return RNG(MixedSeed ^ rotl(MixedShot, 23));
}
