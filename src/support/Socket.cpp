//===- support/Socket.cpp - TCP stream and listener wrappers --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace marqsim {

static void fillErrno(std::string *Error, const char *What) {
  if (Error)
    *Error = std::string(What) + ": " + std::strerror(errno);
}

/// "localhost" aside, hosts must be numeric IPv4 — the daemon is a
/// loopback/LAN service and we avoid getaddrinfo's blocking resolver.
static bool resolveIPv4(const std::string &Host, in_addr &Out,
                        std::string *Error) {
  std::string Name = Host.empty() || Host == "localhost" ? "127.0.0.1" : Host;
  if (inet_pton(AF_INET, Name.c_str(), &Out) == 1)
    return true;
  if (Error)
    *Error = "cannot resolve host '" + Host + "' (numeric IPv4 expected)";
  return false;
}

//===----------------------------------------------------------------------===//
// Socket
//===----------------------------------------------------------------------===//

Socket::~Socket() { close(); }

Socket::Socket(Socket &&O) noexcept
    : Fd(O.Fd), Buffer(std::move(O.Buffer)) {
  O.Fd = -1;
}

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Buffer = std::move(O.Buffer);
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

void Socket::shutdownRead() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RD);
}

std::optional<Socket> Socket::connectTo(const std::string &Host, uint16_t Port,
                                        std::string *Error) {
  in_addr Addr;
  if (!resolveIPv4(Host, Addr, Error))
    return std::nullopt;

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    fillErrno(Error, "socket");
    return std::nullopt;
  }

  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_port = htons(Port);
  Sin.sin_addr = Addr;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin)) != 0) {
    fillErrno(Error, "connect");
    ::close(Fd);
    return std::nullopt;
  }

  // Frames are small and latency-sensitive; don't batch them.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Socket(Fd);
}

bool Socket::setRecvTimeout(unsigned Millis) {
  if (Fd < 0)
    return false;
  timeval Tv{};
  Tv.tv_sec = Millis / 1000;
  Tv.tv_usec = static_cast<long>(Millis % 1000) * 1000;
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0;
}

bool Socket::sendAll(const std::string &Bytes, std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "send on closed socket";
    return false;
  }
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      fillErrno(Error, "send");
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

Socket::ReadStatus Socket::readLine(std::string &Line, size_t MaxBytes,
                                    std::string *Error) {
  Line.clear();
  for (;;) {
    // Check what is already buffered before touching the wire.
    size_t Pos = Buffer.find('\n');
    if (Pos != std::string::npos) {
      Line.assign(Buffer, 0, Pos);
      Buffer.erase(0, Pos + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.size() > MaxBytes)
        return ReadStatus::Oversized;
      return ReadStatus::Line;
    }
    if (Buffer.size() > MaxBytes)
      return ReadStatus::Oversized;

    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buffer.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      return Buffer.empty() ? ReadStatus::Eof : ReadStatus::Truncated;
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return ReadStatus::Timeout;
    fillErrno(Error, "recv");
    return ReadStatus::Error;
  }
}

//===----------------------------------------------------------------------===//
// ListenSocket
//===----------------------------------------------------------------------===//

ListenSocket::~ListenSocket() { close(); }

void ListenSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  BoundPort = 0;
}

bool ListenSocket::listenOn(const std::string &Host, uint16_t Port,
                            std::string *Error) {
  in_addr Addr;
  if (!resolveIPv4(Host, Addr, Error))
    return false;

  int NewFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (NewFd < 0) {
    fillErrno(Error, "socket");
    return false;
  }
  int One = 1;
  ::setsockopt(NewFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_port = htons(Port);
  Sin.sin_addr = Addr;
  if (::bind(NewFd, reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin)) != 0) {
    fillErrno(Error, "bind");
    ::close(NewFd);
    return false;
  }
  if (::listen(NewFd, 64) != 0) {
    fillErrno(Error, "listen");
    ::close(NewFd);
    return false;
  }

  // Recover the actual port for the ephemeral (Port == 0) case.
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(NewFd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0) {
    fillErrno(Error, "getsockname");
    ::close(NewFd);
    return false;
  }

  close();
  Fd = NewFd;
  BoundPort = ntohs(Bound.sin_port);
  return true;
}

std::optional<Socket> ListenSocket::accept(int WakeFd, bool *Woke,
                                           std::string *Error) {
  if (Woke)
    *Woke = false;
  for (;;) {
    pollfd Fds[2];
    Fds[0].fd = Fd;
    Fds[0].events = POLLIN;
    nfds_t Count = 1;
    if (WakeFd >= 0) {
      Fds[1].fd = WakeFd;
      Fds[1].events = POLLIN;
      Count = 2;
    }
    int Ready = ::poll(Fds, Count, -1);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      fillErrno(Error, "poll");
      return std::nullopt;
    }
    // Wake channel takes priority: drain wins over new admissions.
    if (Count == 2 && (Fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      if (Woke)
        *Woke = true;
      return std::nullopt;
    }
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      fillErrno(Error, "accept");
      return std::nullopt;
    }
    int One = 1;
    ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return Socket(Conn);
  }
}

//===----------------------------------------------------------------------===//
// parseHostPort
//===----------------------------------------------------------------------===//

bool parseHostPort(const std::string &Spec, std::string &Host, uint16_t &Port,
                   std::string *Error) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= Spec.size()) {
    if (Error)
      *Error = "expected host:port, got '" + Spec + "'";
    return false;
  }
  std::string PortText = Spec.substr(Colon + 1);
  unsigned long Value = 0;
  for (char C : PortText) {
    if (C < '0' || C > '9') {
      if (Error)
        *Error = "invalid port '" + PortText + "'";
      return false;
    }
    Value = Value * 10 + static_cast<unsigned long>(C - '0');
    if (Value > 65535) {
      if (Error)
        *Error = "port out of range: '" + PortText + "'";
      return false;
    }
  }
  if (Value == 0) {
    if (Error)
      *Error = "port out of range: '" + PortText + "'";
    return false;
  }
  Host = Spec.substr(0, Colon);
  Port = static_cast<uint16_t>(Value);
  return true;
}

} // namespace marqsim
