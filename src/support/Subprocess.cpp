//===- support/Subprocess.cpp - Child-process launching ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

using namespace marqsim;

Subprocess::~Subprocess() {
  if (Pid > 0)
    wait();
}

Subprocess::Subprocess(Subprocess &&O) noexcept
    : Pid(O.Pid), Status(O.Status) {
  O.Pid = -1;
}

Subprocess &Subprocess::operator=(Subprocess &&O) noexcept {
  if (this != &O) {
    if (Pid > 0)
      wait();
    Pid = O.Pid;
    Status = O.Status;
    O.Pid = -1;
  }
  return *this;
}

namespace {

/// In the child: point \p Fd at \p Path (created/truncated). Must stay
/// async-signal-safe — only open/dup2/close between fork and exec.
bool redirect(int Fd, const std::string &Path) {
  if (Path.empty())
    return true;
  int File = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (File < 0)
    return false;
  bool Ok = ::dup2(File, Fd) >= 0;
  ::close(File);
  return Ok;
}

} // namespace

bool Subprocess::spawn(const SubprocessSpec &Spec, std::string *Error) {
  if (Pid > 0) {
    if (Error)
      *Error = "subprocess already running";
    return false;
  }
  if (Spec.Argv.empty()) {
    if (Error)
      *Error = "subprocess spec has an empty argv";
    return false;
  }

  std::vector<char *> Argv;
  Argv.reserve(Spec.Argv.size() + 1);
  for (const std::string &Arg : Spec.Argv)
    Argv.push_back(const_cast<char *>(Arg.c_str()));
  Argv.push_back(nullptr);

  pid_t Child = ::fork();
  if (Child < 0) {
    if (Error)
      *Error = std::string("fork failed: ") + std::strerror(errno);
    return false;
  }
  if (Child == 0) {
    if (!redirect(STDOUT_FILENO, Spec.StdoutFile))
      ::_exit(127);
    // Same target for both streams: share one open file description, or
    // the two independent O_TRUNC offsets would overwrite each other.
    if (!Spec.StderrFile.empty() && Spec.StderrFile == Spec.StdoutFile) {
      if (::dup2(STDOUT_FILENO, STDERR_FILENO) < 0)
        ::_exit(127);
    } else if (!redirect(STDERR_FILENO, Spec.StderrFile)) {
      ::_exit(127);
    }
    ::execvp(Argv[0], Argv.data());
    ::_exit(127); // exec failed; 127 is the conventional "not runnable"
  }
  Pid = Child;
  Status = -1;
  return true;
}

int Subprocess::wait() {
  if (Pid <= 0)
    return Status;
  int Raw = 0;
  pid_t Waited;
  do {
    Waited = ::waitpid(static_cast<pid_t>(Pid), &Raw, 0);
  } while (Waited < 0 && errno == EINTR);
  Pid = -1;
  if (Waited < 0)
    Status = -1;
  else if (WIFEXITED(Raw))
    Status = WEXITSTATUS(Raw);
  else if (WIFSIGNALED(Raw))
    Status = 128 + WTERMSIG(Raw);
  else
    Status = -1;
  return Status;
}

bool Subprocess::signalChild(int Signal) {
  if (Pid <= 0)
    return false;
  return ::kill(static_cast<pid_t>(Pid), Signal) == 0;
}

int Subprocess::terminate(unsigned GraceMs) {
  if (Pid <= 0)
    return Status;
  ::kill(static_cast<pid_t>(Pid), SIGTERM);
  // Poll rather than block: a child that ignores SIGTERM (or is stopped)
  // must not hang the caller past the grace window.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(GraceMs);
  for (;;) {
    int Raw = 0;
    pid_t Waited = ::waitpid(static_cast<pid_t>(Pid), &Raw, WNOHANG);
    if (Waited > 0) {
      Pid = -1;
      if (WIFEXITED(Raw))
        Status = WEXITSTATUS(Raw);
      else if (WIFSIGNALED(Raw))
        Status = 128 + WTERMSIG(Raw);
      else
        Status = -1;
      return Status;
    }
    if (Waited < 0 && errno != EINTR) {
      Pid = -1;
      Status = -1;
      return Status;
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(static_cast<pid_t>(Pid), SIGKILL);
  return wait();
}

std::string marqsim::currentExecutablePath(const std::string &Fallback) {
  char Buf[4096];
  ssize_t Len = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (Len > 0) {
    Buf[Len] = '\0';
    return std::string(Buf);
  }
  return Fallback;
}
