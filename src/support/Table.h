//===- support/Table.h - Aligned text tables --------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table writer used by every benchmark harness to
/// print the rows of the paper's tables and the series of its figures.
///
/// Cells are accumulated as strings; printing right-pads each column to its
/// widest cell. A CSV emitter is provided for downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_TABLE_H
#define MARQSIM_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace marqsim {

/// Accumulates rows of string cells and prints them column-aligned.
class Table {
public:
  /// Creates a table with the given header row.
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; its size must match the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience: appends a row built from heterogeneous printable cells.
  template <typename... Ts> void row(const Ts &...Cells) {
    addRow({toCell(Cells)...});
  }

  /// Writes the table, column-aligned, with a rule under the header.
  void print(std::ostream &OS) const;

  /// Writes the table as comma-separated values (no alignment padding).
  void printCSV(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  static std::string toCell(const std::string &S) { return S; }
  static std::string toCell(const char *S) { return S; }
  static std::string toCell(double V);
  static std::string toCell(int V) { return std::to_string(V); }
  static std::string toCell(unsigned V) { return std::to_string(V); }
  static std::string toCell(long V) { return std::to_string(V); }
  static std::string toCell(unsigned long V) { return std::to_string(V); }
  static std::string toCell(long long V) { return std::to_string(V); }
  static std::string toCell(unsigned long long V) { return std::to_string(V); }

  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p V with \p Digits significant decimal digits (fixed notation for
/// moderate magnitudes, scientific otherwise). Keeps benchmark output stable
/// across platforms.
std::string formatDouble(double V, int Digits = 4);

/// Formats \p V as a percentage string such as "23.7%".
std::string formatPercent(double V, int Digits = 1);

} // namespace marqsim

#endif // MARQSIM_SUPPORT_TABLE_H
