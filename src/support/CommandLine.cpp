//===- support/CommandLine.cpp - Tiny flag parser --------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cstdlib>

using namespace marqsim;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positionals.push_back(Arg);
      continue;
    }
    Arg = Arg.substr(2);
    auto Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Flags[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
      continue;
    }
    // "--name value" form, unless the next token is another flag.
    if (I + 1 < Argc && std::string(Argv[I + 1]).rfind("--", 0) != 0) {
      Flags[Arg] = Argv[I + 1];
      ++I;
      continue;
    }
    Flags[Arg] = "";
  }
}

bool CommandLine::has(const std::string &Name) const {
  return Flags.count(Name) != 0;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

bool CommandLine::getBool(const std::string &Name, bool Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end())
    return Default;
  if (It->second.empty() || It->second == "1" || It->second == "true" ||
      It->second == "yes")
    return true;
  return false;
}

std::vector<std::string> CommandLine::flagNames() const {
  std::vector<std::string> Names;
  Names.reserve(Flags.size());
  for (const auto &KV : Flags)
    Names.push_back(KV.first);
  return Names;
}
