//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal command-line flag parsing for the benchmark harnesses.
///
/// Supports `--name=value`, `--name value`, and bare boolean `--name`.
/// Unknown flags are collected so a harness can reject typos. This keeps
/// every table/figure binary self-describing without an external dependency.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_COMMANDLINE_H
#define MARQSIM_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace marqsim {

/// Parsed command-line options for a benchmark or example binary.
class CommandLine {
public:
  /// Parses argv. Flags start with "--"; everything else is a positional.
  CommandLine(int Argc, const char *const *Argv);

  /// Returns true if the flag appeared at all.
  bool has(const std::string &Name) const;

  /// Returns the string value of a flag, or \p Default if absent.
  std::string getString(const std::string &Name,
                        const std::string &Default = "") const;

  /// Returns the integer value of a flag, or \p Default if absent.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns the double value of a flag, or \p Default if absent.
  double getDouble(const std::string &Name, double Default) const;

  /// Returns the boolean value: present without value means true.
  bool getBool(const std::string &Name, bool Default = false) const;

  const std::vector<std::string> &positionals() const { return Positionals; }

  /// Returns flags the caller never queried about; a harness may print them
  /// as a warning. (Populated lazily by markKnown/unknownFlags.)
  std::vector<std::string> flagNames() const;

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positionals;
};

} // namespace marqsim

#endif // MARQSIM_SUPPORT_COMMANDLINE_H
