//===- support/ThreadPool.h - Worker pool for batch compilation -*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by CompilerEngine::compileBatch to
/// fan independent compilation shots across threads.
///
/// Determinism contract: the pool never influences results. Work items must
/// write only to their own output slot and draw randomness only from their
/// own RNG substream (RNG::forShot); under that discipline the batch output
/// is bit-identical for any worker count, including the inline Jobs <= 1
/// path.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_THREADPOOL_H
#define MARQSIM_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace marqsim {

/// Fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p NumWorkers threads; 0 selects the hardware thread count.
  explicit ThreadPool(unsigned NumWorkers = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Grows the pool to at least \p NumWorkers threads (never shrinks).
  /// Safe to call concurrently with running work.
  void ensureWorkers(unsigned NumWorkers);

  /// The process-wide pool parallelFor drains through. Lazily created,
  /// grown on demand, and never destroyed, so hot callers pay an enqueue
  /// per fan-out instead of a thread spawn/join.
  static ThreadPool &shared();

  unsigned numWorkers() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareWorkers();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t InFlight = 0; // queued + currently executing
  bool ShuttingDown = false;
};

/// Runs Body(0) .. Body(Count - 1), spreading the indices over up to
/// \p Jobs workers (0 selects the hardware thread count). Jobs <= 1 or
/// Count <= 1 runs inline on the calling thread. Indices are claimed from
/// a shared counter, so per-index work may be arbitrarily unbalanced.
/// The calling thread participates in the work and up to Jobs - 1 helpers
/// come from the persistent ThreadPool::shared() pool — no per-call thread
/// spawn/join — and because the caller always drains its own counter,
/// nesting parallelFor inside a Body cannot deadlock. The first exception
/// thrown by any index is rethrown on the caller after every claimed index
/// has finished.
void parallelFor(size_t Count, unsigned Jobs,
                 const std::function<void(size_t)> &Body);

} // namespace marqsim

#endif // MARQSIM_SUPPORT_THREADPOOL_H
