//===- support/CpuFeatures.h - Runtime ISA feature probe --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-shot runtime probe of the SIMD capabilities of the host CPU, used
/// by the evaluation-kernel dispatcher (sim/Kernels.h) to pick the widest
/// implementation the hardware supports.
///
/// On x86-64 the probe goes through cpuid (__builtin_cpu_supports); on
/// AArch64 through the HWCAP auxiliary vector. The result is immutable
/// after the first call — dispatch decisions made from it are stable for
/// the lifetime of the process.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_CPUFEATURES_H
#define MARQSIM_SUPPORT_CPUFEATURES_H

namespace marqsim {

/// The ISA extensions the kernel layer can dispatch on.
struct CpuFeatures {
  /// x86-64 AVX2 (256-bit integer + FP vectors).
  bool AVX2 = false;

  /// x86-64 FMA3. Dispatch requires AVX2 *and* FMA — the pair is what the
  /// "avx2-fma" kernel tier is compiled for — even though the kernels
  /// never emit fused multiply-adds in value-producing arithmetic (FMA
  /// contraction would change rounding and break the bit-identity
  /// contract with the scalar reference).
  bool FMA = false;

  /// AArch64 Advanced SIMD (NEON with 2-lane double support).
  bool NEON = false;
};

/// The host CPU's features, probed once on first use (thread-safe).
const CpuFeatures &cpuFeatures();

} // namespace marqsim

#endif // MARQSIM_SUPPORT_CPUFEATURES_H
