//===- support/CpuFeatures.h - Runtime ISA feature probe --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-shot runtime probe of the SIMD capabilities of the host CPU, used
/// by the evaluation-kernel dispatcher (sim/Kernels.h) to pick the widest
/// implementation the hardware supports.
///
/// On x86-64 the probe goes through cpuid (__builtin_cpu_supports plus a
/// raw leaf-7 query for the AVX-512 bits) and through XGETBV for the OS
/// XSAVE state: AVX-512 dispatch requires not just the CPUID feature bits
/// but an OS that saves/restores the ZMM and opmask register state, so
/// both are probed and reported separately. On AArch64 the probe reads the
/// HWCAP auxiliary vector. The result is immutable after the first call —
/// dispatch decisions made from it are stable for the lifetime of the
/// process.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_CPUFEATURES_H
#define MARQSIM_SUPPORT_CPUFEATURES_H

namespace marqsim {

/// The ISA extensions the kernel layer can dispatch on.
struct CpuFeatures {
  /// x86-64 AVX2 (256-bit integer + FP vectors).
  bool AVX2 = false;

  /// x86-64 FMA3. Dispatch requires AVX2 *and* FMA — the pair is what the
  /// "avx2-fma" kernel tier is compiled for — even though the kernels
  /// never emit fused multiply-adds in value-producing arithmetic (FMA
  /// contraction would change rounding and break the bit-identity
  /// contract with the scalar reference).
  bool FMA = false;

  /// x86-64 AVX-512 Foundation (CPUID leaf 7 EBX bit 16): 512-bit FP
  /// vectors and opmask registers.
  bool AVX512F = false;

  /// x86-64 AVX-512DQ (CPUID leaf 7 EBX bit 17). The "avx512" tier is
  /// compiled with -mavx512f -mavx512dq and dispatch requires both bits.
  bool AVX512DQ = false;

  /// True when the OS has enabled the full AVX-512 register state: CPUID
  /// leaf 1 ECX bit 27 (OSXSAVE) set and XGETBV(XCR0) reporting the SSE,
  /// AVX, opmask, ZMM_Hi256, and Hi16_ZMM state components (mask 0xE6)
  /// all enabled. Without this the ZMM registers are not preserved across
  /// context switches and the avx512 tier must not be selected even when
  /// the CPUID feature bits are present.
  bool AVX512OS = false;

  /// AArch64 Advanced SIMD (NEON with 2-lane double support).
  bool NEON = false;
};

/// The host CPU's features, probed once on first use (thread-safe).
const CpuFeatures &cpuFeatures();

} // namespace marqsim

#endif // MARQSIM_SUPPORT_CPUFEATURES_H
