//===- support/AlignedAlloc.h - Over-aligned vector storage -----*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal std::allocator replacement that over-aligns every allocation
/// to a cache-line (64-byte) boundary. Amplitude storage — statevectors,
/// panel planes, fidelity targets — allocates through it so vector loads
/// never straddle cache lines and the SIMD kernels can use full-width
/// aligned accesses on the panel planes. The allocator changes only where
/// bytes land, never what they hold, so it is invisible to every
/// determinism contract.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_ALIGNEDALLOC_H
#define MARQSIM_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <new>

namespace marqsim {

/// std-compatible allocator handing out \p Alignment-aligned blocks via
/// C++17 aligned operator new. Stateless: all instances are equal.
template <typename T, std::size_t Alignment = 64> struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator &,
                         const AlignedAllocator &) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &,
                         const AlignedAllocator &) noexcept {
    return false;
  }
};

} // namespace marqsim

#endif // MARQSIM_SUPPORT_ALIGNEDALLOC_H
