//===- support/Json.cpp - Minimal ordered JSON value/codec -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace marqsim;
using namespace marqsim::json;

//===----------------------------------------------------------------------===//
// Value accessors
//===----------------------------------------------------------------------===//

Value &Value::set(const std::string &Key, Value V) {
  assert(K == Kind::Object && "set() on a non-object");
  for (Member &M : Obj)
    if (M.first == Key) {
      M.second = std::move(V);
      return *this;
    }
  Obj.emplace_back(Key, std::move(V));
  return *this;
}

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const Member &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

void Value::push(Value V) {
  assert(K == Kind::Array && "push() on a non-array");
  Arr.push_back(std::move(V));
}

size_t Value::size() const {
  if (K == Kind::Array)
    return Arr.size();
  if (K == Kind::Object)
    return Obj.size();
  return 0;
}

const Value &Value::at(size_t Index) const {
  assert(K == Kind::Array && Index < Arr.size() && "at() out of range");
  return Arr[Index];
}

const std::string &Value::asString() const {
  static const std::string Empty;
  return K == Kind::String ? S : Empty;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void dumpString(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (U < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
        Out += Buf;
      } else {
        Out += C; // UTF-8 bytes pass through untouched
      }
    }
  }
  Out += '"';
}

void dumpValue(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    break;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Value::Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V.asInt()));
    Out += Buf;
    break;
  }
  case Value::Kind::Double: {
    double D = V.asDouble();
    if (!std::isfinite(D)) {
      Out += "null";
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case Value::Kind::String:
    dumpString(V.asString(), Out);
    break;
  case Value::Kind::Array: {
    Out += '[';
    const std::vector<Value> &Arr = *V.items();
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ',';
      dumpValue(Arr[I], Out);
    }
    Out += ']';
    break;
  }
  case Value::Kind::Object: {
    Out += '{';
    const std::vector<Member> &Obj = *V.members();
    for (size_t I = 0; I < Obj.size(); ++I) {
      if (I)
        Out += ',';
      dumpString(Obj[I].first, Out);
      Out += ':';
      dumpValue(Obj[I].second, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string Value::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Maximum nesting depth: adversarial frames must fail, not smash the
/// stack (each level costs two small frames of recursion).
constexpr unsigned MaxDepth = 96;

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  /// Appends the UTF-8 encoding of \p Code.
  static void appendUtf8(uint32_t Code, std::string &Out) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool hex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    uint32_t V = 0;
    for (unsigned I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      uint32_t Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
      V = (V << 4) | Digit;
    }
    Pos += 4;
    Out = V;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Code;
        if (!hex4(Code))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (!(Pos + 1 < Text.size() && Text[Pos] == '\\' &&
                Text[Pos + 1] == 'u'))
            return fail("lone high surrogate");
          Pos += 2;
          uint32_t Low;
          if (!hex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("bad low surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("lone low surrogate");
        }
        appendUtf8(Code, Out);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("malformed number");
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("malformed fraction");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("malformed exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Token = Text.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Token.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = Value(static_cast<int64_t>(V));
        return true;
      }
      // Out-of-int64-range integers degrade to double.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Token.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = Value(D);
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{': {
      ++Pos;
      Out = Value::object();
      skipSpace();
      if (consume('}'))
        return true;
      while (true) {
        skipSpace();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (!consume(':'))
          return fail("expected ':'");
        Value V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.set(Key, std::move(V));
        skipSpace();
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      ++Pos;
      Out = Value::array();
      skipSpace();
      if (consume(']'))
        return true;
      while (true) {
        Value V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.push(std::move(V));
        skipSpace();
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        return fail("expected ',' or ']'");
      }
    }
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = Value(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value(nullptr);
      return true;
    default:
      return parseNumber(Out);
    }
  }
};

} // namespace

std::optional<Value> Value::parse(const std::string &Text,
                                  std::string *Error) {
  Parser P(Text);
  Value Out;
  if (!P.parseValue(Out, 0)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipSpace();
  if (P.Pos != Text.size()) {
    P.fail("trailing garbage");
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  return Out;
}
