//===- support/ThreadPool.cpp - Worker pool for batch compilation ------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <exception>

using namespace marqsim;

unsigned ThreadPool::hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = hardwareWorkers();
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "submitting an empty task");
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "submit after shutdown");
    Queue.push_back(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}

void marqsim::parallelFor(size_t Count, unsigned Jobs,
                          const std::function<void(size_t)> &Body) {
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareWorkers();
  if (Count == 0)
    return;
  if (Jobs <= 1 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }

  unsigned Effective =
      static_cast<unsigned>(std::min<size_t>(Jobs, Count));
  std::atomic<size_t> NextIndex{0};
  std::exception_ptr FirstError;
  std::mutex ErrorMutex;

  {
    ThreadPool Pool(Effective);
    for (unsigned W = 0; W < Effective; ++W) {
      Pool.submit([&] {
        for (;;) {
          size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
          if (I >= Count)
            return;
          try {
            Body(I);
          } catch (...) {
            std::unique_lock<std::mutex> Lock(ErrorMutex);
            if (!FirstError)
              FirstError = std::current_exception();
            NextIndex.store(Count, std::memory_order_relaxed); // stop early
          }
        }
      });
    }
    Pool.wait();
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}
