//===- support/ThreadPool.cpp - Worker pool for batch compilation ------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <memory>

using namespace marqsim;

unsigned ThreadPool::hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = hardwareWorkers();
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "submitting an empty task");
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "submit after shutdown");
    Queue.push_back(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}

void ThreadPool::ensureWorkers(unsigned NumWorkers) {
  std::unique_lock<std::mutex> Lock(Mutex);
  assert(!ShuttingDown && "growing a pool after shutdown");
  while (Workers.size() < NumWorkers)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool &ThreadPool::shared() {
  // Intentionally leaked: helper stubs may still sit queued at static
  // destruction time, and the workers hold no resources beyond threads
  // the OS reclaims at exit.
  static ThreadPool *Pool = new ThreadPool(1);
  return *Pool;
}

namespace {

/// The state of one parallelFor call. Helper stubs on the shared pool hold
/// it by shared_ptr, so a stub that only gets scheduled after the call
/// finished (all indices claimed) finds an exhausted counter and returns
/// without touching the caller's Body.
struct ParallelCall {
  ParallelCall(size_t Count, const std::function<void(size_t)> &Body)
      : Count(Count), Body(&Body) {}

  const size_t Count;
  const std::function<void(size_t)> *Body; // alive until awaitCompletion ends
  std::mutex M;
  std::condition_variable Changed;
  size_t Next = 0;    // first unclaimed index
  size_t Running = 0; // bodies currently executing
  std::exception_ptr FirstError;

  /// Claims and runs indices until none are left. A thrown Body records the
  /// first error and stops further claims; already-claimed indices finish.
  void drain() {
    std::unique_lock<std::mutex> Lock(M);
    while (Next < Count) {
      const size_t I = Next++;
      ++Running;
      Lock.unlock();
      std::exception_ptr Error;
      try {
        (*Body)(I);
      } catch (...) {
        Error = std::current_exception();
      }
      Lock.lock();
      --Running;
      if (Error) {
        if (!FirstError)
          FirstError = Error;
        Next = Count; // stop early
      }
    }
    Changed.notify_all();
  }

  /// Blocks until every claimed index has finished, then rethrows the
  /// first recorded error, if any.
  void awaitCompletion() {
    std::unique_lock<std::mutex> Lock(M);
    Changed.wait(Lock, [this] { return Next >= Count && Running == 0; });
    if (FirstError)
      std::rethrow_exception(FirstError);
  }
};

} // namespace

void marqsim::parallelFor(size_t Count, unsigned Jobs,
                          const std::function<void(size_t)> &Body) {
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareWorkers();
  if (Count == 0)
    return;
  if (Jobs <= 1 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }

  const unsigned Effective =
      static_cast<unsigned>(std::min<size_t>(Jobs, Count));
  auto Call = std::make_shared<ParallelCall>(Count, Body);
  // The caller participates as one worker, so Effective - 1 helper stubs
  // suffice. The pool is process-wide and lazily grown: a hot caller —
  // per-shot fidelity evaluation, say — pays an enqueue per call, never a
  // thread spawn/join. The caller draining its own counter also makes
  // nested parallelFor deadlock-free: a call progresses on its own thread
  // even when every pool worker is busy with (or blocked on) other calls,
  // and in-flight bodies always belong to an actively executing thread.
  ThreadPool &Pool = ThreadPool::shared();
  Pool.ensureWorkers(Effective - 1);
  for (unsigned W = 1; W < Effective; ++W)
    Pool.submit([Call] { Call->drain(); });
  Call->drain();
  Call->awaitCompletion();
}
