//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the compilation-time benchmarks
/// (Table 2 of the paper) and by progress reporting in the harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SUPPORT_TIMER_H
#define MARQSIM_SUPPORT_TIMER_H

#include <chrono>

namespace marqsim {

/// Measures elapsed wall-clock time from construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns milliseconds elapsed since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace marqsim

#endif // MARQSIM_SUPPORT_TIMER_H
