//===- support/Table.cpp - Aligned text tables ----------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace marqsim;

Table::Table(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {
  assert(!Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Row));
}

std::string Table::toCell(double V) { return formatDouble(V); }

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 == Row.size())
        break;
      for (size_t Pad = Row[C].size(); Pad < Widths[C] + 2; ++Pad)
        OS << ' ';
    }
    OS << '\n';
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  for (size_t I = 0; I + 2 < Total; ++I)
    OS << '-';
  OS << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void Table::printCSV(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      if (C)
        OS << ',';
      OS << Row[C];
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string marqsim::formatDouble(double V, int Digits) {
  char Buf[64];
  double Mag = std::fabs(V);
  if (V == 0.0) {
    std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, 0.0);
  } else if (Mag >= 1e-4 && Mag < 1e7) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Digits + 2, V);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.*e", Digits, V);
  }
  return Buf;
}

std::string marqsim::formatPercent(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Digits, V * 100.0);
  return Buf;
}
