//===- circuit/Optimizer.cpp - Peephole gate cancellation -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Optimizer.h"

#include <cmath>

using namespace marqsim;

/// Single-qubit gates diagonal in the Z basis.
static bool isDiagonalKind(GateKind K) {
  return K == GateKind::Z || K == GateKind::S || K == GateKind::Sdg ||
         K == GateKind::Rz;
}

/// Single-qubit gates diagonal in the X basis.
static bool isXAxisKind(GateKind K) {
  return K == GateKind::X || K == GateKind::Rx;
}

static bool isYAxisKind(GateKind K) {
  return K == GateKind::Y || K == GateKind::Ry;
}

bool marqsim::gatesCommute(const Gate &A, const Gate &B) {
  if (!A.overlaps(B))
    return true;
  const bool ACx = A.isCNOT(), BCx = B.isCNOT();
  if (!ACx && !BCx) {
    // Same qubit (they overlap): commute iff both are rotations about the
    // same axis (diagonal, X-type, or Y-type families).
    if (isDiagonalKind(A.Kind) && isDiagonalKind(B.Kind))
      return true;
    if (isXAxisKind(A.Kind) && isXAxisKind(B.Kind))
      return true;
    if (isYAxisKind(A.Kind) && isYAxisKind(B.Kind))
      return true;
    return A.Kind == B.Kind && A.Angle == B.Angle;
  }
  if (ACx && BCx) {
    // Overlapping CNOTs: sharing only the control or only the target
    // commutes; a control of one on a target of the other does not.
    if (A.Qubit0 == B.Qubit0 && A.Qubit1 == B.Qubit1)
      return true;
    if (A.Qubit0 == B.Qubit1 || A.Qubit1 == B.Qubit0)
      return false;
    return true; // share exactly one of {control,control} or {target,target}
  }
  // One CNOT, one single-qubit gate.
  const Gate &Cx = ACx ? A : B;
  const Gate &Single = ACx ? B : A;
  if (Single.Qubit0 == Cx.Qubit0) // on the control
    return isDiagonalKind(Single.Kind);
  // On the target.
  return isXAxisKind(Single.Kind);
}

bool marqsim::isInversePair(const Gate &A, const Gate &B) {
  if (A.isCNOT() || B.isCNOT())
    return A.isCNOT() && B.isCNOT() && A.Qubit0 == B.Qubit0 &&
           A.Qubit1 == B.Qubit1;
  if (A.Qubit0 != B.Qubit0)
    return false;
  switch (A.Kind) {
  case GateKind::H:
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
    return B.Kind == A.Kind; // self-inverse
  case GateKind::S:
    return B.Kind == GateKind::Sdg;
  case GateKind::Sdg:
    return B.Kind == GateKind::S;
  case GateKind::Rx:
  case GateKind::Ry:
  case GateKind::Rz:
    // Exact opposite angles; near-zero merges are handled separately.
    return B.Kind == A.Kind && A.Angle == -B.Angle;
  case GateKind::CNOT:
    break;
  }
  return false;
}

/// True if \p A and \p B are equal-kind rotations on the same qubit, whose
/// angles can be summed into one gate.
static bool isMergeablePair(const Gate &A, const Gate &B) {
  return isRotationGate(A.Kind) && A.Kind == B.Kind && A.Qubit0 == B.Qubit0;
}

static Circuit runOnePass(const Circuit &In, const OptimizerOptions &Opts,
                          bool &Changed) {
  std::vector<Gate> Out;
  Out.reserve(In.size());

  for (const Gate &Incoming : In.gates()) {
    Gate Cur = Incoming;
    // Drop no-op rotations immediately.
    if (isRotationGate(Cur.Kind) &&
        std::fabs(Cur.Angle) <= Opts.AngleTolerance) {
      Changed = true;
      continue;
    }
    bool Consumed = false;
    size_t Scan = Out.size();
    while (Scan > 0) {
      Gate &Prev = Out[Scan - 1];
      if (!Prev.overlaps(Cur)) {
        --Scan;
        continue;
      }
      if (isInversePair(Prev, Cur)) {
        Out.erase(Out.begin() + static_cast<long>(Scan) - 1);
        Consumed = true;
        Changed = true;
        break;
      }
      if (isMergeablePair(Prev, Cur)) {
        Prev.Angle += Cur.Angle;
        if (std::fabs(Prev.Angle) <= Opts.AngleTolerance)
          Out.erase(Out.begin() + static_cast<long>(Scan) - 1);
        Consumed = true;
        Changed = true;
        break;
      }
      if (Opts.UseCommutation && gatesCommute(Prev, Cur)) {
        --Scan;
        continue;
      }
      break;
    }
    if (!Consumed)
      Out.push_back(Cur);
  }

  Circuit Result(In.numQubits());
  for (const Gate &G : Out)
    Result.append(G);
  return Result;
}

Circuit marqsim::optimizeCircuit(const Circuit &In,
                                 const OptimizerOptions &Opts) {
  Circuit Current = In;
  for (unsigned Pass = 0; Pass < Opts.MaxPasses; ++Pass) {
    bool Changed = false;
    Current = runOnePass(Current, Opts, Changed);
    if (!Changed)
      break;
  }
  return Current;
}
