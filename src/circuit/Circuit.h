//===- circuit/Circuit.h - Quantum circuit IR -------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gate-level quantum circuit intermediate representation: a flat list
/// of single-qubit gates and CNOTs over an n-qubit register. Gates are
/// applied left to right (so the circuit unitary is the right-to-left
/// operator product). This is the output language of all the compilers in
/// the project and the input of the simulator and the peephole optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CIRCUIT_CIRCUIT_H
#define MARQSIM_CIRCUIT_CIRCUIT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace marqsim {

/// Gate alphabet. The project emits {H, S, Sdg, Rz, CNOT}; the remaining
/// single-qubit gates exist for tests and user circuits.
enum class GateKind : uint8_t {
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  Rx,
  Ry,
  Rz,
  CNOT,
};

/// Returns a printable mnemonic such as "cx" or "rz".
const char *gateKindName(GateKind K);

/// True for the parameterized rotation gates Rx/Ry/Rz.
bool isRotationGate(GateKind K);

/// One gate instance. For single-qubit gates Qubit1 is unused; for CNOT,
/// Qubit0 is the control and Qubit1 the target.
struct Gate {
  GateKind Kind = GateKind::H;
  unsigned Qubit0 = 0;
  unsigned Qubit1 = 0;
  double Angle = 0.0;

  Gate() = default;
  Gate(GateKind Kind, unsigned Q, double Angle = 0.0)
      : Kind(Kind), Qubit0(Q), Angle(Angle) {
    assert(Kind != GateKind::CNOT && "CNOT needs two qubits");
  }
  Gate(GateKind Kind, unsigned Control, unsigned Target, double Angle)
      : Kind(Kind), Qubit0(Control), Qubit1(Target), Angle(Angle) {}

  static Gate cnot(unsigned Control, unsigned Target) {
    assert(Control != Target && "CNOT control equals target");
    return Gate(GateKind::CNOT, Control, Target, 0.0);
  }

  bool isCNOT() const { return Kind == GateKind::CNOT; }

  /// True if the gate touches qubit \p Q.
  bool actsOn(unsigned Q) const {
    return Qubit0 == Q || (isCNOT() && Qubit1 == Q);
  }

  /// True if the two gates share at least one qubit.
  bool overlaps(const Gate &O) const;

  bool operator==(const Gate &O) const {
    return Kind == O.Kind && Qubit0 == O.Qubit0 &&
           (!isCNOT() || Qubit1 == O.Qubit1) && Angle == O.Angle;
  }
};

/// Aggregate gate statistics (the paper's metrics: CNOT count is the primary
/// objective, single-qubit and total counts are also reported).
struct GateCounts {
  size_t CNOTs = 0;
  size_t SingleQubit = 0;

  size_t total() const { return CNOTs + SingleQubit; }

  GateCounts &operator+=(const GateCounts &O) {
    CNOTs += O.CNOTs;
    SingleQubit += O.SingleQubit;
    return *this;
  }
};

/// A flat quantum circuit over a fixed-size register.
class Circuit {
public:
  Circuit() = default;
  explicit Circuit(unsigned NumQubits) : NQubits(NumQubits) {}

  unsigned numQubits() const { return NQubits; }
  size_t size() const { return Gates.size(); }
  bool empty() const { return Gates.empty(); }

  const Gate &gate(size_t I) const {
    assert(I < Gates.size() && "gate index out of range");
    return Gates[I];
  }
  Gate &mutableGate(size_t I) {
    assert(I < Gates.size() && "gate index out of range");
    return Gates[I];
  }
  const std::vector<Gate> &gates() const { return Gates; }

  /// Appends a gate; asserts that its qubits are inside the register.
  void append(const Gate &G);

  /// Appends all gates of \p Other (registers must have equal width).
  void append(const Circuit &Other);

  void h(unsigned Q) { append(Gate(GateKind::H, Q)); }
  void x(unsigned Q) { append(Gate(GateKind::X, Q)); }
  void y(unsigned Q) { append(Gate(GateKind::Y, Q)); }
  void z(unsigned Q) { append(Gate(GateKind::Z, Q)); }
  void s(unsigned Q) { append(Gate(GateKind::S, Q)); }
  void sdg(unsigned Q) { append(Gate(GateKind::Sdg, Q)); }
  void rx(unsigned Q, double Angle) { append(Gate(GateKind::Rx, Q, Angle)); }
  void ry(unsigned Q, double Angle) { append(Gate(GateKind::Ry, Q, Angle)); }
  void rz(unsigned Q, double Angle) { append(Gate(GateKind::Rz, Q, Angle)); }
  void cnot(unsigned Control, unsigned Target) {
    append(Gate::cnot(Control, Target));
  }

  /// Counts CNOT and single-qubit gates.
  GateCounts counts() const;

  /// Circuit depth: the length of the longest dependency chain, with each
  /// gate occupying one layer on every qubit it touches (the depth metric
  /// Paulihedral-style compilers optimize; reported by the benches).
  size_t depth() const;

  /// Multi-line textual listing (one gate per line, OpenQASM-like).
  std::string str() const;

private:
  unsigned NQubits = 0;
  std::vector<Gate> Gates;
};

} // namespace marqsim

#endif // MARQSIM_CIRCUIT_CIRCUIT_H
