//===- circuit/PauliEvolution.h - Pauli rotation synthesis ------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesis of exp(i * theta/2 * P) for a Pauli string P into basic gates,
/// following Fig. 3 of the paper: identical single-qubit basis-change layers
/// at both ends (H for X, the Clifford pair diagonalizing Y for Y), a CNOT
/// ladder funnelling the parity of the support into a chosen root qubit,
/// and a single Rz rotation on the root.
///
/// Because all ladder CNOTs share the root as their target they mutually
/// commute, so the ladder order is free; the emitter in `core` exploits this
/// to line up cancellations across consecutive snippets.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CIRCUIT_PAULIEVOLUTION_H
#define MARQSIM_CIRCUIT_PAULIEVOLUTION_H

#include "circuit/Circuit.h"
#include "pauli/PauliString.h"

#include <vector>

namespace marqsim {

/// One step exp(i * Tau * P) of a compiled simulation schedule.
///
/// Compilers produce schedules (term sequence with merged repeat runs);
/// the emitter lowers them to gates and the simulator can evaluate them
/// analytically — both views realize exactly the same unitary.
struct ScheduledRotation {
  PauliString String;
  double Tau = 0.0;

  ScheduledRotation() = default;
  ScheduledRotation(PauliString String, double Tau)
      : String(String), Tau(Tau) {}
};

/// Options controlling snippet synthesis.
struct PauliSynthesisOptions {
  /// Root qubit carrying the Rz; must be in the support of the string.
  /// -1 selects the highest support qubit.
  int Root = -1;

  /// Ladder order for the leading CNOT block (qubit indices, all support
  /// qubits except the root). Empty selects ascending order. The trailing
  /// block always mirrors the leading block.
  std::vector<unsigned> LadderOrder;
};

/// Appends the circuit for exp(i * Theta/2 * P) to \p C.
///
/// An identity string contributes only a global phase and appends nothing.
/// Asserts that a non-default Root lies in the support of \p P.
void appendPauliRotation(Circuit &C, const PauliString &P, double Theta,
                         const PauliSynthesisOptions &Options = {});

/// Number of CNOTs a standalone snippet for \p P uses: 2 * (weight - 1).
unsigned pauliRotationCNOTs(const PauliString &P);

/// Appends the basis-change layer entering (\p Inverse = false) or leaving
/// (\p Inverse = true) the Z basis for qubit \p Q of string \p P.
/// X -> H; Y -> Sdg,H entering and H,S leaving; Z/I -> nothing.
void appendBasisChange(Circuit &C, PauliOpKind Op, unsigned Q, bool Inverse);

} // namespace marqsim

#endif // MARQSIM_CIRCUIT_PAULIEVOLUTION_H
