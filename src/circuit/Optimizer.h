//===- circuit/Optimizer.h - Peephole gate cancellation ---------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A peephole gate-cancellation pass over the circuit IR.
///
/// The pass repeatedly eliminates inverse pairs (H-H, CNOT-CNOT, S-Sdg, ...)
/// and merges consecutive rotations of equal kind on the same qubit, looking
/// through gates that commute with the candidate (diagonal gates slide over
/// CNOT controls, X-type gates over CNOT targets, ladder CNOTs over each
/// other, ...). It serves two roles in the reproduction:
///   * the baseline configuration "qDrift + gate cancellation [22]" applies
///     exactly this pass to the randomly ordered snippet stream, and
///   * it independently validates the emitter's cancellation accounting
///     (the emitter never emits pairs this pass could remove).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CIRCUIT_OPTIMIZER_H
#define MARQSIM_CIRCUIT_OPTIMIZER_H

#include "circuit/Circuit.h"

namespace marqsim {

/// Options for the peephole pass.
struct OptimizerOptions {
  /// Slide candidates over commuting gates; disabling restricts
  /// cancellation to literally adjacent pairs.
  bool UseCommutation = true;

  /// Rotations with |angle| below this are deleted outright.
  double AngleTolerance = 1e-12;

  /// Upper bound on fixpoint sweeps (the pass converges in 2-3 in practice).
  unsigned MaxPasses = 8;
};

/// Returns true if gates \p A and \p B commute as operators. Exact for the
/// gate alphabet of this IR (conservative never returns a false positive).
bool gatesCommute(const Gate &A, const Gate &B);

/// Returns true if \p A followed by \p B is the identity.
bool isInversePair(const Gate &A, const Gate &B);

/// Runs the peephole cancellation pass and returns the optimized circuit.
Circuit optimizeCircuit(const Circuit &In, const OptimizerOptions &Opts = {});

} // namespace marqsim

#endif // MARQSIM_CIRCUIT_OPTIMIZER_H
