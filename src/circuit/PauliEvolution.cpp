//===- circuit/PauliEvolution.cpp - Pauli rotation synthesis ----------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/PauliEvolution.h"

using namespace marqsim;

void marqsim::appendBasisChange(Circuit &C, PauliOpKind Op, unsigned Q,
                                bool Inverse) {
  switch (Op) {
  case PauliOpKind::I:
  case PauliOpKind::Z:
    return;
  case PauliOpKind::X:
    C.h(Q);
    return;
  case PauliOpKind::Y:
    // W = H * Sdg diagonalizes Y: W Y W^dag = Z. Entering the Z basis
    // applies W (circuit order Sdg then H); leaving applies W^dag = S * H
    // (circuit order H then S).
    if (!Inverse) {
      C.sdg(Q);
      C.h(Q);
    } else {
      C.h(Q);
      C.s(Q);
    }
    return;
  }
  assert(false && "invalid PauliOpKind");
}

void marqsim::appendPauliRotation(Circuit &C, const PauliString &P,
                                  double Theta,
                                  const PauliSynthesisOptions &Options) {
  uint64_t Support = P.supportMask();
  if (Support == 0)
    return; // exp(i theta/2 I) is a global phase

  unsigned Root;
  if (Options.Root >= 0) {
    Root = static_cast<unsigned>(Options.Root);
    assert(((Support >> Root) & 1) && "root outside the string support");
  } else {
    Root = 63 - __builtin_clzll(Support);
  }

  // The ladder covers every support qubit except the root.
  std::vector<unsigned> Ladder;
  if (!Options.LadderOrder.empty()) {
    Ladder = Options.LadderOrder;
    assert(Ladder.size() == static_cast<size_t>(P.weight()) - 1 &&
           "ladder order must list all non-root support qubits");
  } else {
    for (unsigned Q = 0; Q < 64; ++Q)
      if (((Support >> Q) & 1) && Q != Root)
        Ladder.push_back(Q);
  }

  // Entering basis-change layer.
  for (unsigned Q = 0; Q < 64; ++Q)
    if ((Support >> Q) & 1)
      appendBasisChange(C, P.op(Q), Q, /*Inverse=*/false);

  // Leading CNOT block: accumulate the support parity into the root.
  for (unsigned Q : Ladder)
    C.cnot(Q, Root);

  // Rz(-Theta) realizes exp(i Theta/2 Z) on the accumulated parity, since
  // Rz(phi) = exp(-i phi/2 Z).
  C.rz(Root, -Theta);

  // Trailing CNOT block mirrors the leading one (reversed order per Fig. 3;
  // ladder CNOTs commute, so this is a presentation choice).
  for (size_t I = Ladder.size(); I-- > 0;)
    C.cnot(Ladder[I], Root);

  // Leaving basis-change layer.
  for (unsigned Q = 0; Q < 64; ++Q)
    if ((Support >> Q) & 1)
      appendBasisChange(C, P.op(Q), Q, /*Inverse=*/true);
}

unsigned marqsim::pauliRotationCNOTs(const PauliString &P) {
  unsigned W = P.weight();
  return W == 0 ? 0 : 2 * (W - 1);
}
