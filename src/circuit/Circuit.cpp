//===- circuit/Circuit.cpp - Quantum circuit IR -----------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Circuit.h"

#include "support/Table.h"

#include <algorithm>

using namespace marqsim;

const char *marqsim::gateKindName(GateKind K) {
  switch (K) {
  case GateKind::H:
    return "h";
  case GateKind::X:
    return "x";
  case GateKind::Y:
    return "y";
  case GateKind::Z:
    return "z";
  case GateKind::S:
    return "s";
  case GateKind::Sdg:
    return "sdg";
  case GateKind::Rx:
    return "rx";
  case GateKind::Ry:
    return "ry";
  case GateKind::Rz:
    return "rz";
  case GateKind::CNOT:
    return "cx";
  }
  assert(false && "invalid GateKind");
  return "?";
}

bool marqsim::isRotationGate(GateKind K) {
  return K == GateKind::Rx || K == GateKind::Ry || K == GateKind::Rz;
}

bool Gate::overlaps(const Gate &O) const {
  if (O.actsOn(Qubit0))
    return true;
  return isCNOT() && O.actsOn(Qubit1);
}

void Circuit::append(const Gate &G) {
  assert(G.Qubit0 < NQubits && "gate qubit outside register");
  assert((!G.isCNOT() || G.Qubit1 < NQubits) &&
         "CNOT target outside register");
  Gates.push_back(G);
}

void Circuit::append(const Circuit &Other) {
  assert(Other.NQubits <= NQubits && "appending a wider circuit");
  for (const Gate &G : Other.Gates)
    append(G);
}

GateCounts Circuit::counts() const {
  GateCounts C;
  for (const Gate &G : Gates) {
    if (G.isCNOT())
      ++C.CNOTs;
    else
      ++C.SingleQubit;
  }
  return C;
}

size_t Circuit::depth() const {
  std::vector<size_t> QubitDepth(NQubits, 0);
  for (const Gate &G : Gates) {
    size_t Layer = QubitDepth[G.Qubit0];
    if (G.isCNOT())
      Layer = std::max(Layer, QubitDepth[G.Qubit1]);
    ++Layer;
    QubitDepth[G.Qubit0] = Layer;
    if (G.isCNOT())
      QubitDepth[G.Qubit1] = Layer;
  }
  size_t Depth = 0;
  for (size_t D : QubitDepth)
    Depth = std::max(Depth, D);
  return Depth;
}

std::string Circuit::str() const {
  std::string S;
  for (const Gate &G : Gates) {
    S += gateKindName(G.Kind);
    if (isRotationGate(G.Kind)) {
      S += '(';
      S += formatDouble(G.Angle);
      S += ')';
    }
    S += " q";
    S += std::to_string(G.Qubit0);
    if (G.isCNOT()) {
      S += ", q";
      S += std::to_string(G.Qubit1);
    }
    S += '\n';
  }
  return S;
}
