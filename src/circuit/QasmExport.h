//===- circuit/QasmExport.h - OpenQASM 2.0 export ---------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes circuits as OpenQASM 2.0, the interchange format of the
/// quantum toolchains the paper builds on (Qiskit et al.), so compiled
/// simulation circuits can be consumed by external stacks.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_CIRCUIT_QASMEXPORT_H
#define MARQSIM_CIRCUIT_QASMEXPORT_H

#include "circuit/Circuit.h"

#include <iosfwd>
#include <string>

namespace marqsim {

/// Writes \p C as an OpenQASM 2.0 program to \p OS (header, one register
/// named "q", one instruction per line).
void exportQasm(const Circuit &C, std::ostream &OS);

/// Convenience overload returning the program text.
std::string toQasm(const Circuit &C);

} // namespace marqsim

#endif // MARQSIM_CIRCUIT_QASMEXPORT_H
