//===- circuit/QasmExport.cpp - OpenQASM 2.0 export ---------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/QasmExport.h"

#include <cstdio>
#include <ostream>
#include <sstream>

using namespace marqsim;

/// OpenQASM spells rotation angles in full precision decimal.
static std::string angleText(double Angle) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Angle);
  return Buf;
}

void marqsim::exportQasm(const Circuit &C, std::ostream &OS) {
  OS << "OPENQASM 2.0;\n";
  OS << "include \"qelib1.inc\";\n";
  OS << "qreg q[" << C.numQubits() << "];\n";
  for (const Gate &G : C.gates()) {
    switch (G.Kind) {
    case GateKind::H:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::S:
      OS << gateKindName(G.Kind) << " q[" << G.Qubit0 << "];\n";
      break;
    case GateKind::Sdg:
      OS << "sdg q[" << G.Qubit0 << "];\n";
      break;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
      OS << gateKindName(G.Kind) << "(" << angleText(G.Angle) << ") q["
         << G.Qubit0 << "];\n";
      break;
    case GateKind::CNOT:
      OS << "cx q[" << G.Qubit0 << "],q[" << G.Qubit1 << "];\n";
      break;
    }
  }
}

std::string marqsim::toQasm(const Circuit &C) {
  std::ostringstream OS;
  exportQasm(C, OS);
  return OS.str();
}
