//===- linalg/Expm.cpp - Matrix exponential ---------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/Expm.h"

#include "linalg/LU.h"

#include <cmath>

using namespace marqsim;

Matrix marqsim::expm(const Matrix &A) {
  assert(A.isSquare() && "expm of non-square matrix");
  const size_t N = A.rows();

  // Pade(13) coefficients (Higham, "The scaling and squaring method for the
  // matrix exponential revisited", 2005).
  static const double B[] = {
      64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
      1187353796428800.0,  129060195264000.0,   10559470521600.0,
      670442572800.0,      33522128640.0,       1323241920.0,
      40840800.0,          960960.0,            16380.0,
      182.0,               1.0};
  const double Theta13 = 5.371920351148152;

  // Scale A by 2^-s so that ||A/2^s||_1 <= theta13.
  int S = 0;
  double Norm = A.oneNorm();
  if (Norm > Theta13)
    S = static_cast<int>(std::ceil(std::log2(Norm / Theta13)));
  Matrix As = A * Complex(std::ldexp(1.0, -S), 0.0);

  Matrix I = Matrix::identity(N);
  Matrix A2 = As * As;
  Matrix A4 = A2 * A2;
  Matrix A6 = A2 * A4;

  // U = A * (A6*(b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  Matrix U = A6 * (A6 * B[13] + A4 * B[11] + A2 * B[9]);
  U += A6 * B[7] + A4 * B[5] + A2 * B[3] + I * B[1];
  U = As * U;
  // V = A6*(b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  Matrix V = A6 * (A6 * B[12] + A4 * B[10] + A2 * B[8]);
  V += A6 * B[6] + A4 * B[4] + A2 * B[2] + I * B[0];

  // r13(A) = (V - U)^-1 (V + U)
  LU Denominator(V - U);
  assert(!Denominator.isSingular() && "Pade denominator singular");
  Matrix R = Denominator.solve(V + U);

  // Undo the scaling by repeated squaring.
  for (int K = 0; K < S; ++K)
    R = R * R;
  return R;
}
