//===- linalg/Eigen.h - Eigenvalues of real matrices ------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eigenvalues of general (nonsymmetric) real square matrices.
///
/// The algorithm is the classic pair used by EISPACK: reduction to upper
/// Hessenberg form by stabilized elementary similarity transformations,
/// followed by the Francis double-shift QR iteration with aggressive
/// deflation. This powers the transition-matrix spectra analysis of
/// MarQSim Sections 5.4-5.5 (Figures 11 and 15 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_LINALG_EIGEN_H
#define MARQSIM_LINALG_EIGEN_H

#include <complex>
#include <cstddef>
#include <vector>

namespace marqsim {

/// Computes all eigenvalues of the N x N real matrix \p A (row-major).
///
/// \returns eigenvalues sorted by descending magnitude (ties broken by real
/// part, then imaginary part, so output is deterministic).
/// Asserts on convergence failure (more than 60 QR sweeps for one
/// eigenvalue), which does not occur for the well-conditioned stochastic
/// matrices this project feeds in.
std::vector<std::complex<double>>
realEigenvalues(const std::vector<double> &A, size_t N);

/// Returns |lambda_i| for all eigenvalues, sorted descending. For a valid
/// transition matrix the leading value is 1 (the stationary eigenvalue).
std::vector<double> eigenvalueMagnitudes(const std::vector<double> &A,
                                         size_t N);

} // namespace marqsim

#endif // MARQSIM_LINALG_EIGEN_H
