//===- linalg/Matrix.cpp - Dense complex matrices --------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"

#include <cmath>

using namespace marqsim;

Matrix Matrix::identity(size_t N) {
  Matrix I(N, N);
  for (size_t K = 0; K < N; ++K)
    I.at(K, K) = 1.0;
  return I;
}

Matrix Matrix::fromRows(const std::vector<CVector> &Rows) {
  assert(!Rows.empty() && "fromRows needs at least one row");
  Matrix M(Rows.size(), Rows.front().size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.cols() && "ragged row list");
    for (size_t C = 0; C < M.cols(); ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::operator+(const Matrix &B) const {
  assert(NRows == B.NRows && NCols == B.NCols && "shape mismatch in +");
  Matrix R = *this;
  R += B;
  return R;
}

Matrix Matrix::operator-(const Matrix &B) const {
  assert(NRows == B.NRows && NCols == B.NCols && "shape mismatch in -");
  Matrix R = *this;
  R -= B;
  return R;
}

Matrix &Matrix::operator+=(const Matrix &B) {
  assert(NRows == B.NRows && NCols == B.NCols && "shape mismatch in +=");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += B.Data[I];
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &B) {
  assert(NRows == B.NRows && NCols == B.NCols && "shape mismatch in -=");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] -= B.Data[I];
  return *this;
}

Matrix &Matrix::operator*=(Complex S) {
  for (Complex &X : Data)
    X *= S;
  return *this;
}

Matrix Matrix::operator*(Complex S) const {
  Matrix R = *this;
  R *= S;
  return R;
}

Matrix Matrix::operator*(const Matrix &B) const {
  assert(NCols == B.NRows && "shape mismatch in matrix product");
  Matrix R(NRows, B.NCols);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (size_t I = 0; I < NRows; ++I) {
    const Complex *ARow = &Data[I * NCols];
    Complex *RRow = &R.Data[I * B.NCols];
    for (size_t K = 0; K < NCols; ++K) {
      Complex AIK = ARow[K];
      if (AIK == Complex(0.0, 0.0))
        continue;
      const Complex *BRow = &B.Data[K * B.NCols];
      for (size_t J = 0; J < B.NCols; ++J)
        RRow[J] += AIK * BRow[J];
    }
  }
  return R;
}

CVector Matrix::operator*(const CVector &V) const {
  assert(NCols == V.size() && "shape mismatch in matrix-vector product");
  CVector R(NRows);
  for (size_t I = 0; I < NRows; ++I) {
    const Complex *Row = &Data[I * NCols];
    Complex Acc = 0.0;
    for (size_t J = 0; J < NCols; ++J)
      Acc += Row[J] * V[J];
    R[I] = Acc;
  }
  return R;
}

Matrix Matrix::adjoint() const {
  Matrix R(NCols, NRows);
  for (size_t I = 0; I < NRows; ++I)
    for (size_t J = 0; J < NCols; ++J)
      R.at(J, I) = std::conj(at(I, J));
  return R;
}

Matrix Matrix::transpose() const {
  Matrix R(NCols, NRows);
  for (size_t I = 0; I < NRows; ++I)
    for (size_t J = 0; J < NCols; ++J)
      R.at(J, I) = at(I, J);
  return R;
}

Complex Matrix::trace() const {
  assert(isSquare() && "trace of non-square matrix");
  Complex T = 0.0;
  for (size_t I = 0; I < NRows; ++I)
    T += at(I, I);
  return T;
}

double Matrix::frobeniusNorm() const {
  double S = 0.0;
  for (const Complex &X : Data)
    S += std::norm(X);
  return std::sqrt(S);
}

double Matrix::oneNorm() const {
  double Best = 0.0;
  for (size_t J = 0; J < NCols; ++J) {
    double Sum = 0.0;
    for (size_t I = 0; I < NRows; ++I)
      Sum += std::abs(at(I, J));
    if (Sum > Best)
      Best = Sum;
  }
  return Best;
}

double Matrix::maxAbsDiff(const Matrix &B) const {
  assert(NRows == B.NRows && NCols == B.NCols && "shape mismatch in diff");
  double Best = 0.0;
  for (size_t I = 0; I < Data.size(); ++I)
    Best = std::max(Best, std::abs(Data[I] - B.Data[I]));
  return Best;
}

Matrix Matrix::kron(const Matrix &A, const Matrix &B) {
  Matrix R(A.rows() * B.rows(), A.cols() * B.cols());
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < A.cols(); ++J) {
      Complex AIJ = A.at(I, J);
      if (AIJ == Complex(0.0, 0.0))
        continue;
      for (size_t K = 0; K < B.rows(); ++K)
        for (size_t L = 0; L < B.cols(); ++L)
          R.at(I * B.rows() + K, J * B.cols() + L) = AIJ * B.at(K, L);
    }
  return R;
}

bool Matrix::isUnitary(double Tol) const {
  if (!isSquare())
    return false;
  Matrix Prod = *this * adjoint();
  return Prod.maxAbsDiff(identity(NRows)) <= Tol;
}

Complex marqsim::innerProduct(const CVector &A, const CVector &B) {
  assert(A.size() == B.size() && "inner product size mismatch");
  Complex S = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    S += std::conj(A[I]) * B[I];
  return S;
}

double marqsim::vectorNorm(const CVector &V) {
  double S = 0.0;
  for (const Complex &X : V)
    S += std::norm(X);
  return std::sqrt(S);
}
