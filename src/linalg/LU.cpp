//===- linalg/LU.cpp - LU factorization ------------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/LU.h"

#include <cmath>

using namespace marqsim;

LU::LU(const Matrix &A) : Factors(A) {
  assert(A.isSquare() && "LU of non-square matrix");
  const size_t N = A.rows();
  Perm.resize(N);
  for (size_t I = 0; I < N; ++I)
    Perm[I] = I;

  for (size_t K = 0; K < N; ++K) {
    // Partial pivoting: pick the largest |a_ik| at or below the diagonal.
    size_t Pivot = K;
    double Best = std::abs(Factors.at(K, K));
    for (size_t I = K + 1; I < N; ++I) {
      double Mag = std::abs(Factors.at(I, K));
      if (Mag > Best) {
        Best = Mag;
        Pivot = I;
      }
    }
    if (Best == 0.0) {
      Singular = true;
      continue;
    }
    if (Pivot != K) {
      for (size_t J = 0; J < N; ++J)
        std::swap(Factors.at(K, J), Factors.at(Pivot, J));
      std::swap(Perm[K], Perm[Pivot]);
      PermSign = -PermSign;
    }
    const Complex Diag = Factors.at(K, K);
    for (size_t I = K + 1; I < N; ++I) {
      Complex Mult = Factors.at(I, K) / Diag;
      Factors.at(I, K) = Mult;
      if (Mult == Complex(0.0, 0.0))
        continue;
      for (size_t J = K + 1; J < N; ++J)
        Factors.at(I, J) -= Mult * Factors.at(K, J);
    }
  }
}

CVector LU::solve(const CVector &B) const {
  assert(!Singular && "solving with a singular factorization");
  const size_t N = Factors.rows();
  assert(B.size() == N && "rhs size mismatch");

  // Forward substitution with the permuted rhs (L has unit diagonal).
  CVector Y(N);
  for (size_t I = 0; I < N; ++I) {
    Complex Acc = B[Perm[I]];
    for (size_t J = 0; J < I; ++J)
      Acc -= Factors.at(I, J) * Y[J];
    Y[I] = Acc;
  }
  // Back substitution.
  CVector X(N);
  for (size_t I = N; I-- > 0;) {
    Complex Acc = Y[I];
    for (size_t J = I + 1; J < N; ++J)
      Acc -= Factors.at(I, J) * X[J];
    X[I] = Acc / Factors.at(I, I);
  }
  return X;
}

Matrix LU::solve(const Matrix &B) const {
  assert(!Singular && "solving with a singular factorization");
  const size_t N = Factors.rows();
  assert(B.rows() == N && "rhs rows mismatch");
  Matrix X(N, B.cols());
  CVector Col(N);
  for (size_t C = 0; C < B.cols(); ++C) {
    for (size_t R = 0; R < N; ++R)
      Col[R] = B.at(R, C);
    CVector Sol = solve(Col);
    for (size_t R = 0; R < N; ++R)
      X.at(R, C) = Sol[R];
  }
  return X;
}

Complex LU::determinant() const {
  if (Singular)
    return 0.0;
  Complex D = static_cast<double>(PermSign);
  for (size_t I = 0; I < Factors.rows(); ++I)
    D *= Factors.at(I, I);
  return D;
}
