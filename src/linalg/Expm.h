//===- linalg/Expm.h - Matrix exponential -----------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense matrix exponential via Pade(13) approximation with scaling and
/// squaring (Higham 2005). This is the exact-evolution oracle: the target
/// unitary of a Hamiltonian simulation experiment is `expm(i*t*H)` and the
/// compiled circuits are compared against it.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_LINALG_EXPM_H
#define MARQSIM_LINALG_EXPM_H

#include "linalg/Matrix.h"

namespace marqsim {

/// Computes e^A for a square complex matrix.
Matrix expm(const Matrix &A);

} // namespace marqsim

#endif // MARQSIM_LINALG_EXPM_H
