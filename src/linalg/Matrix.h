//===- linalg/Matrix.h - Dense complex matrices -----------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense complex matrix/vector arithmetic used throughout the simulator and
/// spectra-analysis code.
///
/// Row-major storage; element type is std::complex<double>. The class covers
/// exactly the operations the project needs (products, adjoints, traces,
/// norms, Kronecker products) rather than being a general BLAS replacement.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_LINALG_MATRIX_H
#define MARQSIM_LINALG_MATRIX_H

#include "support/AlignedAlloc.h"

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace marqsim {

using Complex = std::complex<double>;

/// Amplitude vectors allocate cache-line aligned so the statevector
/// kernels' vector loads never split cache lines (SIMD paths additionally
/// rely on the alignment for full-width aligned panel accesses).
using CVector = std::vector<Complex, AlignedAllocator<Complex, 64>>;

/// A dense row-major complex matrix.
class Matrix {
public:
  Matrix() : NRows(0), NCols(0) {}

  /// Creates an NRows x NCols zero matrix.
  Matrix(size_t NRows, size_t NCols)
      : NRows(NRows), NCols(NCols), Data(NRows * NCols) {}

  /// Returns the N x N identity.
  static Matrix identity(size_t N);

  /// Builds a matrix from a nested initializer-style row list.
  static Matrix fromRows(const std::vector<CVector> &Rows);

  size_t rows() const { return NRows; }
  size_t cols() const { return NCols; }
  bool isSquare() const { return NRows == NCols; }

  Complex &at(size_t R, size_t C) {
    assert(R < NRows && C < NCols && "matrix index out of range");
    return Data[R * NCols + C];
  }
  const Complex &at(size_t R, size_t C) const {
    assert(R < NRows && C < NCols && "matrix index out of range");
    return Data[R * NCols + C];
  }
  Complex &operator()(size_t R, size_t C) { return at(R, C); }
  const Complex &operator()(size_t R, size_t C) const { return at(R, C); }

  /// Raw row-major storage (used by performance-sensitive kernels).
  Complex *data() { return Data.data(); }
  const Complex *data() const { return Data.data(); }

  Matrix operator+(const Matrix &B) const;
  Matrix operator-(const Matrix &B) const;
  Matrix operator*(const Matrix &B) const;
  Matrix operator*(Complex S) const;
  Matrix &operator+=(const Matrix &B);
  Matrix &operator-=(const Matrix &B);
  Matrix &operator*=(Complex S);

  /// Matrix-vector product.
  CVector operator*(const CVector &V) const;

  /// Conjugate transpose.
  Matrix adjoint() const;

  /// Plain transpose (no conjugation).
  Matrix transpose() const;

  /// Sum of diagonal entries; requires a square matrix.
  Complex trace() const;

  /// Frobenius norm.
  double frobeniusNorm() const;

  /// Maximum absolute column sum (the 1-norm); used by expm scaling.
  double oneNorm() const;

  /// Largest |a_ij - b_ij| over all entries.
  double maxAbsDiff(const Matrix &B) const;

  /// Kronecker product A (x) B.
  static Matrix kron(const Matrix &A, const Matrix &B);

  /// Returns true if `A * A^dagger` is within \p Tol of the identity.
  bool isUnitary(double Tol = 1e-9) const;

private:
  size_t NRows, NCols;
  CVector Data;
};

/// Inner product <A, B> = sum conj(a_i) * b_i.
Complex innerProduct(const CVector &A, const CVector &B);

/// Euclidean norm of a complex vector.
double vectorNorm(const CVector &V);

} // namespace marqsim

#endif // MARQSIM_LINALG_MATRIX_H
