//===- linalg/Eigen.cpp - Eigenvalues of real matrices ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eigen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace marqsim;

namespace {

/// Work buffer addressing an N x N row-major double array.
class Mat {
public:
  Mat(std::vector<double> Data, size_t N) : Data(std::move(Data)), N(N) {}
  double &at(size_t R, size_t C) { return Data[R * N + C]; }
  double at(size_t R, size_t C) const { return Data[R * N + C]; }
  size_t size() const { return N; }

private:
  std::vector<double> Data;
  size_t N;
};

} // namespace

/// Reduces A to upper Hessenberg form by stabilized elementary similarity
/// transformations (EISPACK elmhes), then clears the multiplier storage
/// below the subdiagonal.
static void toHessenberg(Mat &A) {
  const size_t N = A.size();
  for (size_t M = 1; M + 1 < N; ++M) {
    // Find the pivot: largest |a(j, m-1)| for j >= m.
    double X = 0.0;
    size_t I = M;
    for (size_t J = M; J < N; ++J) {
      if (std::fabs(A.at(J, M - 1)) > std::fabs(X)) {
        X = A.at(J, M - 1);
        I = J;
      }
    }
    if (I != M) {
      // Similarity interchange of rows/columns i and m.
      for (size_t J = M - 1; J < N; ++J)
        std::swap(A.at(I, J), A.at(M, J));
      for (size_t J = 0; J < N; ++J)
        std::swap(A.at(J, I), A.at(J, M));
    }
    if (X == 0.0)
      continue;
    for (size_t R = M + 1; R < N; ++R) {
      double Y = A.at(R, M - 1);
      if (Y == 0.0)
        continue;
      Y /= X;
      A.at(R, M - 1) = Y;
      for (size_t J = M; J < N; ++J)
        A.at(R, J) -= Y * A.at(M, J);
      for (size_t J = 0; J < N; ++J)
        A.at(J, M) += Y * A.at(J, R);
    }
  }
  // The algorithm leaves multipliers below the subdiagonal; zero them so the
  // QR stage sees a clean Hessenberg matrix.
  for (size_t R = 2; R < N; ++R)
    for (size_t C = 0; C + 1 < R; ++C)
      A.at(R, C) = 0.0;
}

static double signedMag(double Mag, double SignSource) {
  return SignSource >= 0.0 ? std::fabs(Mag) : -std::fabs(Mag);
}

/// Francis double-shift QR on an upper Hessenberg matrix (EISPACK hqr).
/// Eigenvalues are appended to \p WR / \p WI.
static void hessenbergQR(Mat &A, std::vector<double> &WR,
                         std::vector<double> &WI) {
  const size_t N = A.size();
  WR.assign(N, 0.0);
  WI.assign(N, 0.0);
  if (N == 0)
    return;
  const double Eps = std::numeric_limits<double>::epsilon();

  // Overall norm used when a deflation test hits a zero row scale.
  double ANorm = 0.0;
  for (size_t I = 0; I < N; ++I)
    for (size_t J = (I == 0 ? 0 : I - 1); J < N; ++J)
      ANorm += std::fabs(A.at(I, J));
  if (ANorm == 0.0)
    return; // the zero matrix: all eigenvalues are zero

  long NN = static_cast<long>(N) - 1;
  double T = 0.0;
  double P = 0, Q = 0, R = 0, X = 0, Y = 0, Z = 0, W = 0, S = 0;

  while (NN >= 0) {
    int Its = 0;
    long L;
    do {
      // Look for a single small subdiagonal element.
      for (L = NN; L >= 1; --L) {
        S = std::fabs(A.at(L - 1, L - 1)) + std::fabs(A.at(L, L));
        if (S == 0.0)
          S = ANorm;
        if (std::fabs(A.at(L, L - 1)) <= Eps * S) {
          A.at(L, L - 1) = 0.0;
          break;
        }
      }
      if (L < 0)
        L = 0;
      X = A.at(NN, NN);
      if (L == NN) {
        // One real root found.
        WR[NN] = X + T;
        WI[NN] = 0.0;
        --NN;
      } else {
        Y = A.at(NN - 1, NN - 1);
        W = A.at(NN, NN - 1) * A.at(NN - 1, NN);
        if (L == NN - 1) {
          // A 2x2 block: two roots found.
          P = 0.5 * (Y - X);
          Q = P * P + W;
          Z = std::sqrt(std::fabs(Q));
          X += T;
          if (Q >= 0.0) {
            Z = P + signedMag(Z, P);
            WR[NN - 1] = WR[NN] = X + Z;
            if (Z != 0.0)
              WR[NN] = X - W / Z;
            WI[NN - 1] = WI[NN] = 0.0;
          } else {
            WR[NN - 1] = WR[NN] = X + P;
            WI[NN] = Z;
            WI[NN - 1] = -Z;
          }
          NN -= 2;
        } else {
          // No root yet: perform a double QR sweep.
          assert(Its < 60 && "hqr: too many QR iterations");
          if (Its == 10 || Its == 20 || Its == 30 || Its == 40 || Its == 50) {
            // Exceptional shift to break (near-)cycles.
            T += X;
            for (long I = 0; I <= NN; ++I)
              A.at(I, I) -= X;
            S = std::fabs(A.at(NN, NN - 1)) + std::fabs(A.at(NN - 1, NN - 2));
            Y = X = 0.75 * S;
            W = -0.4375 * S * S;
          }
          ++Its;
          // Find two consecutive small subdiagonal elements.
          long M;
          for (M = NN - 2; M >= L; --M) {
            Z = A.at(M, M);
            R = X - Z;
            S = Y - Z;
            P = (R * S - W) / A.at(M + 1, M) + A.at(M, M + 1);
            Q = A.at(M + 1, M + 1) - Z - R - S;
            R = A.at(M + 2, M + 1);
            S = std::fabs(P) + std::fabs(Q) + std::fabs(R);
            P /= S;
            Q /= S;
            R /= S;
            if (M == L)
              break;
            double U = std::fabs(A.at(M, M - 1)) *
                       (std::fabs(Q) + std::fabs(R));
            double V = std::fabs(P) * (std::fabs(A.at(M - 1, M - 1)) +
                                       std::fabs(Z) +
                                       std::fabs(A.at(M + 1, M + 1)));
            if (U <= Eps * V)
              break;
          }
          for (long I = M + 2; I <= NN; ++I) {
            A.at(I, I - 2) = 0.0;
            if (I != M + 2)
              A.at(I, I - 3) = 0.0;
          }
          // Double QR step on rows l..nn and columns m..nn.
          for (long K = M; K <= NN - 1; ++K) {
            if (K != M) {
              P = A.at(K, K - 1);
              Q = A.at(K + 1, K - 1);
              R = 0.0;
              if (K != NN - 1)
                R = A.at(K + 2, K - 1);
              X = std::fabs(P) + std::fabs(Q) + std::fabs(R);
              if (X != 0.0) {
                P /= X;
                Q /= X;
                R /= X;
              }
            }
            S = signedMag(std::sqrt(P * P + Q * Q + R * R), P);
            if (S == 0.0)
              continue;
            if (K == M) {
              if (L != M)
                A.at(K, K - 1) = -A.at(K, K - 1);
            } else {
              A.at(K, K - 1) = -S * X;
            }
            P += S;
            X = P / S;
            Y = Q / S;
            Z = R / S;
            Q /= P;
            R /= P;
            // Row modification.
            for (long J = K; J <= NN; ++J) {
              P = A.at(K, J) + Q * A.at(K + 1, J);
              if (K != NN - 1) {
                P += R * A.at(K + 2, J);
                A.at(K + 2, J) -= P * Z;
              }
              A.at(K + 1, J) -= P * Y;
              A.at(K, J) -= P * X;
            }
            long MMin = NN < K + 3 ? NN : K + 3;
            // Column modification.
            for (long I = L; I <= MMin; ++I) {
              P = X * A.at(I, K) + Y * A.at(I, K + 1);
              if (K != NN - 1) {
                P += Z * A.at(I, K + 2);
                A.at(I, K + 2) -= P * R;
              }
              A.at(I, K + 1) -= P * Q;
              A.at(I, K) -= P;
            }
          }
        }
      }
    } while (L < NN - 1);
  }
}

std::vector<std::complex<double>>
marqsim::realEigenvalues(const std::vector<double> &AData, size_t N) {
  assert(AData.size() == N * N && "matrix data size mismatch");
  Mat A(AData, N);
  toHessenberg(A);
  std::vector<double> WR, WI;
  hessenbergQR(A, WR, WI);

  std::vector<std::complex<double>> Eigs(N);
  for (size_t I = 0; I < N; ++I)
    Eigs[I] = {WR[I], WI[I]};
  std::sort(Eigs.begin(), Eigs.end(), [](const std::complex<double> &L,
                                         const std::complex<double> &R) {
    double ML = std::abs(L), MR = std::abs(R);
    if (ML != MR)
      return ML > MR;
    if (L.real() != R.real())
      return L.real() > R.real();
    return L.imag() > R.imag();
  });
  return Eigs;
}

std::vector<double>
marqsim::eigenvalueMagnitudes(const std::vector<double> &A, size_t N) {
  std::vector<std::complex<double>> Eigs = realEigenvalues(A, N);
  std::vector<double> Mags(Eigs.size());
  for (size_t I = 0; I < Eigs.size(); ++I)
    Mags[I] = std::abs(Eigs[I]);
  return Mags;
}
