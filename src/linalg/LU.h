//===- linalg/LU.h - LU factorization ---------------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LU decomposition with partial pivoting for complex matrices.
///
/// Used by the Pade matrix exponential (denominator solve) and available as
/// a general linear-system solver for the stationary-distribution utilities.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_LINALG_LU_H
#define MARQSIM_LINALG_LU_H

#include "linalg/Matrix.h"

namespace marqsim {

/// PA = LU factorization of a square complex matrix.
class LU {
public:
  /// Factorizes \p A. Check isSingular() before solving.
  explicit LU(const Matrix &A);

  /// Returns true if a (numerically) zero pivot was encountered.
  bool isSingular() const { return Singular; }

  /// Solves A x = b. Requires !isSingular().
  CVector solve(const CVector &B) const;

  /// Solves A X = B column-by-column. Requires !isSingular().
  Matrix solve(const Matrix &B) const;

  /// Determinant of A (product of pivots with permutation sign).
  Complex determinant() const;

private:
  Matrix Factors;          // combined L (unit diagonal) and U
  std::vector<size_t> Perm; // row permutation: factorized row i is A[Perm[i]]
  int PermSign = 1;
  bool Singular = false;
};

} // namespace marqsim

#endif // MARQSIM_LINALG_LU_H
