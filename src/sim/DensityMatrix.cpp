//===- sim/DensityMatrix.cpp - Mixed states and channels ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/DensityMatrix.h"

#include "linalg/Eigen.h"

#include <cmath>
#include <stdexcept>

using namespace marqsim;

DensityMatrix::DensityMatrix(unsigned NumQubits, uint64_t Basis)
    : NQubits(NumQubits),
      Rho(size_t(1) << NumQubits, size_t(1) << NumQubits) {
  assert(NumQubits <= 10 && "density matrix too large");
  assert(Basis < (uint64_t(1) << NumQubits) && "basis state out of range");
  Rho.at(Basis, Basis) = 1.0;
}

DensityMatrix::DensityMatrix(const StateVector &Psi)
    : NQubits(Psi.numQubits()), Rho(Psi.dim(), Psi.dim()) {
  assert(NQubits <= 10 && "density matrix too large");
  const CVector &A = Psi.amplitudes();
  for (size_t I = 0; I < A.size(); ++I)
    for (size_t J = 0; J < A.size(); ++J)
      Rho.at(I, J) = A[I] * std::conj(A[J]);
}

DensityMatrix DensityMatrix::maximallyMixed(unsigned NumQubits) {
  assert(NumQubits <= 10 && "density matrix too large");
  const size_t Dim = size_t(1) << NumQubits;
  Matrix M = Matrix::identity(Dim);
  M *= Complex(1.0 / static_cast<double>(Dim), 0.0);
  return DensityMatrix(NumQubits, std::move(M));
}

void DensityMatrix::applyUnitary(const Matrix &U) {
  assert(U.rows() == Rho.rows() && "unitary dimension mismatch");
  Rho = U * Rho * U.adjoint();
}

void DensityMatrix::applyPauliExp(const PauliString &P, double Theta) {
  // e^{i Theta P} rho e^{-i Theta P} expanded with P rho, rho P, P rho P:
  //   cos^2 rho + i sin cos (P rho - rho P) + sin^2 P rho P.
  const size_t Dim = Rho.rows();
  const uint64_t XM = P.xMask();
  const double C = std::cos(Theta), S = std::sin(Theta);
  // With P|x> = phi_x |x ^ XM> and P Hermitian, the matrix elements are
  //   (P rho)_{ij}   = conj(phi_i) rho_{i^XM, j}
  //   (rho P)_{ij}   = rho_{i, j^XM} phi_j
  //   (P rho P)_{ij} = conj(phi_i) rho_{i^XM, j^XM} phi_j.
  Matrix Out(Dim, Dim);
  for (uint64_t I = 0; I < Dim; ++I) {
    Complex PhiIc = std::conj(P.applyToBasis(I));
    for (uint64_t J = 0; J < Dim; ++J) {
      Complex PhiJ = P.applyToBasis(J);
      Complex Term = C * C * Rho.at(I, J);
      Term += Complex(0, S * C) * (PhiIc * Rho.at(I ^ XM, J) -
                                   Rho.at(I, J ^ XM) * PhiJ);
      Term += S * S * PhiIc * Rho.at(I ^ XM, J ^ XM) * PhiJ;
      Out.at(I, J) = Term;
    }
  }
  Rho = std::move(Out);
}

void DensityMatrix::applySamplingChannel(const Hamiltonian &H,
                                         const std::vector<double> &Pi,
                                         double Tau) {
  // A real error, not an assert: in release builds a mismatched
  // distribution would silently read out of bounds below.
  if (Pi.size() != H.numTerms())
    throw std::invalid_argument(
        "applySamplingChannel: distribution has " +
        std::to_string(Pi.size()) + " probabilities for " +
        std::to_string(H.numTerms()) + " Hamiltonian terms");
  const size_t Dim = Rho.rows();
  Matrix Mixture(Dim, Dim);
  DensityMatrix Scratch(NQubits, Matrix(Dim, Dim));
  for (size_t J = 0; J < H.numTerms(); ++J) {
    if (Pi[J] == 0.0)
      continue;
    Scratch.Rho = Rho;
    double Theta = H.term(J).Coeff >= 0.0 ? Tau : -Tau;
    Scratch.applyPauliExp(H.term(J).String, Theta);
    Scratch.Rho *= Complex(Pi[J], 0.0);
    Mixture += Scratch.Rho;
  }
  Rho = std::move(Mixture);
}

void DensityMatrix::applyChannel(const std::vector<Matrix> &Kraus,
                                 unsigned Qubit) {
  if (Kraus.empty())
    throw std::invalid_argument("applyChannel: empty Kraus set");
  for (const Matrix &K : Kraus)
    if (K.rows() != 2 || K.cols() != 2)
      throw std::invalid_argument(
          "applyChannel: Kraus operators must be 2x2 single-qubit matrices");
  if (Qubit >= NQubits)
    throw std::invalid_argument("applyChannel: qubit " +
                                std::to_string(Qubit) + " out of range for " +
                                std::to_string(NQubits) + " qubits");
  const double TraceBefore = trace();
  Matrix Out(Rho.rows(), Rho.cols());
  for (const Matrix &K : Kraus) {
    Matrix Full = embedSingleQubit(K, Qubit, NQubits);
    Out += Full * Rho * Full.adjoint();
  }
  Rho = std::move(Out);
  // Trace drift means the set was not a channel (sum K_i^dag K_i != I);
  // failing here beats producing a quietly sub-normalized state.
  if (std::abs(trace() - TraceBefore) >
      1e-9 * std::max(1.0, std::abs(TraceBefore)))
    throw std::runtime_error(
        "applyChannel: Kraus set is not trace-preserving (trace drifted "
        "from " +
        std::to_string(TraceBefore) + " to " + std::to_string(trace()) + ")");
}

double DensityMatrix::traceDistance(const DensityMatrix &Other) const {
  if (Rho.rows() != Other.Rho.rows())
    throw std::invalid_argument(
        "traceDistance: dimension mismatch (" + std::to_string(Rho.rows()) +
        " vs " + std::to_string(Other.Rho.rows()) + ")");
  // D = (rho - sigma) is Hermitian; ||D||_1 = sum |eigenvalues|. The
  // eigenvalues of a Hermitian complex matrix equal those of the real
  // symmetric embedding [[Re, -Im], [Im, Re]], each doubled.
  Matrix D = Rho - Other.Rho;
  const size_t N = D.rows();
  std::vector<double> Embed(4 * N * N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      double Re = D.at(I, J).real(), Im = D.at(I, J).imag();
      Embed[I * 2 * N + J] = Re;
      Embed[I * 2 * N + (J + N)] = -Im;
      Embed[(I + N) * 2 * N + J] = Im;
      Embed[(I + N) * 2 * N + (J + N)] = Re;
    }
  std::vector<std::complex<double>> Eigs = realEigenvalues(Embed, 2 * N);
  double Sum = 0.0;
  for (const auto &E : Eigs)
    Sum += std::abs(E.real());
  return 0.25 * Sum; // (1/2) * ||D||_1, halving the doubled spectrum
}

Matrix marqsim::embedSingleQubit(const Matrix &Op, unsigned Qubit,
                                 unsigned NumQubits) {
  assert(Op.rows() == 2 && Op.cols() == 2 && "expected a 2x2 operator");
  assert(Qubit < NumQubits && "qubit out of range");
  const size_t Dim = size_t(1) << NumQubits;
  const uint64_t Bit = uint64_t(1) << Qubit;
  Matrix Full(Dim, Dim);
  for (uint64_t I = 0; I < Dim; ++I) {
    const size_t RI = (I & Bit) ? 1 : 0;
    Full.at(I, I & ~Bit) = Op.at(RI, 0);
    Full.at(I, I | Bit) = Op.at(RI, 1);
  }
  return Full;
}

double DensityMatrix::overlap(const StateVector &Psi) const {
  assert(Psi.dim() == Rho.rows() && "dimension mismatch");
  const CVector &A = Psi.amplitudes();
  Complex Acc = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    for (size_t J = 0; J < A.size(); ++J)
      Acc += std::conj(A[I]) * Rho.at(I, J) * A[J];
  return Acc.real();
}
