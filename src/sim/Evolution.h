//===- sim/Evolution.h - Exact Hamiltonian evolution ------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact time evolution e^{iHt} for Pauli-sum Hamiltonians.
///
/// Two paths: a dense unitary through the Pade matrix exponential (small
/// systems, used for ground truth in tests) and a matrix-free per-column
/// evolution using a scaled, truncated Taylor series, which applies H
/// term-by-term in O(#terms * 2^n) per matrix-vector product. The
/// experiment harnesses use the column path so exact reference states are
/// affordable at 12-14 qubits.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_EVOLUTION_H
#define MARQSIM_SIM_EVOLUTION_H

#include "linalg/Matrix.h"
#include "pauli/Hamiltonian.h"

namespace marqsim {

/// y = H x for a Pauli-sum Hamiltonian (matrix-free).
CVector applyHamiltonian(const Hamiltonian &H, const CVector &X);

/// Computes e^{i T H} |In> by a scaled, truncated Taylor expansion.
/// Accurate to ~1e-12 for the lambda*t ranges of the experiments.
CVector evolveExact(const Hamiltonian &H, double T, const CVector &In);

/// Dense e^{i T H} via the Pade exponential (<= 10 qubits recommended).
Matrix exactUnitary(const Hamiltonian &H, double T);

} // namespace marqsim

#endif // MARQSIM_SIM_EVOLUTION_H
