//===- sim/StatePanel.h - Multi-column statevector panel --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A panel of C statevectors evolved in lockstep under one gate stream.
///
/// Fidelity evaluation replays the same compiled schedule against many
/// target columns; doing that one column at a time re-derives every
/// per-rotation quantity (masks, cos/sin, the +/- i^k phase constants) C
/// times and re-reads the schedule C times. StatePanel stores the C
/// statevectors column-major (each column contiguous, column c at
/// Data[c * 2^n]) and applies each rotation to all columns in one sweep:
/// the per-rotation setup happens once, and each butterfly pair's phase
/// pair is selected once and reused across the columns.
///
/// Determinism contract: every column of the panel evolves with exactly
/// the per-element arithmetic of a standalone StateVector — the kernels
/// share the phase-selection helper and gate matrices — so a panel of C
/// columns is bit-identical to C serial single-state replays for every
/// panel width. SimTest pins this across widths and fast paths.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_STATEPANEL_H
#define MARQSIM_SIM_STATEPANEL_H

#include "sim/StateVector.h"

#include <cstdint>
#include <vector>

namespace marqsim {

/// A cache-blocked, column-major panel of statevectors (one per requested
/// basis column) evolved together. n <= 26 as for StateVector; callers
/// bound the width (see PreferredWidth) to keep the working set in cache.
class StatePanel {
public:
  /// The default column-block width of panel consumers: wide enough to
  /// amortize per-rotation setup, narrow enough that a block of 2^n
  /// columns stays cache-resident at the experiment sizes. Fixed —
  /// never derived from worker counts — so chunked evaluation partitions
  /// identically for every EvalJobs value.
  static constexpr size_t PreferredWidth = 8;

  /// Initializes column k to the basis state |Basis[k]>.
  StatePanel(unsigned NumQubits, const uint64_t *Basis, size_t NumColumns);
  StatePanel(unsigned NumQubits, const std::vector<uint64_t> &Basis);

  unsigned numQubits() const { return NQubits; }
  size_t dim() const { return Dim; }
  size_t numColumns() const { return Cols; }

  Complex *column(size_t Col) { return Data.data() + Col * Dim; }
  const Complex *column(size_t Col) const { return Data.data() + Col * Dim; }

  /// Applies exp(i * Theta * P) to every column in one schedule sweep.
  /// Diagonal (Z-only) strings take the per-element phase fast path.
  void applyPauliExpAll(const PauliString &P, double Theta);

  /// Applies one gate to every column.
  void applyAll(const Gate &G);

  /// Applies all gates of a circuit in order to every column.
  void applyAll(const Circuit &C);

  /// <Target | column Col>, accumulated in ascending basis order — the
  /// same chain as innerProduct over a standalone statevector.
  Complex overlapWith(const CVector &Target, size_t Col) const;

private:
  unsigned NQubits;
  size_t Dim;
  size_t Cols;
  std::vector<Complex> Data;
};

} // namespace marqsim

#endif // MARQSIM_SIM_STATEPANEL_H
