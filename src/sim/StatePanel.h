//===- sim/StatePanel.h - Multi-column statevector panel --------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A panel of C statevectors evolved in lockstep under one gate stream.
///
/// Fidelity evaluation replays the same compiled schedule against many
/// target columns; doing that one column at a time re-derives every
/// per-rotation quantity (masks, cos/sin, the +/- i^k phase constants) C
/// times and re-reads the schedule C times. The panel stores the C
/// statevectors as split real/imag planes, row-major by basis index:
/// element (X, column) of a plane lives at [X * Stride + column], with
/// Stride rounded up to one full 64-byte vector (8 doubles / 16 floats)
/// and both planes allocated 64-byte aligned. A rotation's sweep over one
/// basis row is therefore a
/// run of contiguous, aligned, full-width vector lanes — the layout the
/// dispatched SIMD kernels (sim/Kernels.h) consume directly, with the
/// padding lanes held at zero and processed inertly alongside the live
/// columns. Per-rotation setup happens once per sweep and each butterfly
/// pair's phase pair is selected once and broadcast across the columns.
///
/// Determinism contract (FP64): every column of the panel evolves with
/// exactly the per-element arithmetic of a standalone StateVector — the
/// kernels share the phase-selection helper and gate matrices — so a
/// panel of C columns is bit-identical to C serial single-state replays
/// for every panel width and every kernel dispatch. SimTest pins this
/// across widths and fast paths. The float instantiation (StatePanelF32)
/// is the opt-in throughput tier: per-rotation constants are computed in
/// double and narrowed once, amplitudes evolve in float, and overlaps
/// still accumulate in double; its results are tolerance-defined against
/// FP64, never bit-exact (sim/Precision.h).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_STATEPANEL_H
#define MARQSIM_SIM_STATEPANEL_H

#include "sim/StateVector.h"
#include "support/AlignedAlloc.h"

#include <cstdint>
#include <vector>

namespace marqsim {

/// A block of fidelity targets packed into the panel-plane layout for the
/// fused evolve+overlap kernels: double real plane plus a pre-negated
/// imaginary plane (TImNeg = -imag, an exact sign flip), element
/// (X, column) at [X * Stride + column], padding lanes zero, both planes
/// 64-byte aligned. With the negated plane, conj(Target) * Amp expands to
/// the discretely-rounded lane arithmetic the kernels run — see
/// kernels::Ops::PanelExpOverlapF64. Targets are packed once and reused
/// across schedule replays; planes stay double for both precision tiers.
class TargetPanel {
public:
  /// Packs \p Count target statevectors (each of the same dimension) at
  /// row stride \p Stride, which must match the evolving panel's
  /// laneStride() and be a multiple of the panel's LaneMultiple.
  TargetPanel(const CVector *Targets, size_t Count, size_t Stride);

  size_t dim() const { return Dim; }
  size_t numColumns() const { return Cols; }
  size_t laneStride() const { return Stride; }
  const double *realPlane() const { return TRe.data(); }
  const double *negImagPlane() const { return TImNeg.data(); }

private:
  size_t Dim;
  size_t Cols;
  size_t Stride;
  std::vector<double, AlignedAllocator<double, 64>> TRe, TImNeg;
};

/// A cache-blocked panel of statevectors (one per requested basis column)
/// evolved together over split real/imag planes. n <= 26 as for
/// StateVector; callers bound the width (see PreferredWidth) to keep the
/// working set in cache.
template <typename Real> class BasicStatePanel {
public:
  using RealType = Real;

  /// The default column-block width of panel consumers: wide enough to
  /// amortize per-rotation setup, narrow enough that a block of 2^n
  /// columns stays cache-resident at the experiment sizes. Fixed —
  /// never derived from worker counts — so chunked evaluation partitions
  /// identically for every EvalJobs value.
  static constexpr size_t PreferredWidth = 8;

  /// Lane stride rounding: rows start every LaneMultiple elements — one
  /// full 64-byte vector (8 doubles / 16 floats) — so 512-bit loads stay
  /// aligned for every instantiation and rows begin on cache lines.
  static constexpr size_t LaneMultiple = 64 / sizeof(Real);

  /// Initializes column k to the basis state |Basis[k]>.
  BasicStatePanel(unsigned NumQubits, const uint64_t *Basis,
                  size_t NumColumns);
  BasicStatePanel(unsigned NumQubits, const std::vector<uint64_t> &Basis);

  unsigned numQubits() const { return NQubits; }
  size_t dim() const { return Dim; }
  size_t numColumns() const { return Cols; }

  /// Elements per plane row (numColumns rounded up to LaneMultiple);
  /// element (X, Col) of a plane lives at [X * laneStride() + Col].
  size_t laneStride() const { return Stride; }

  Real *realPlane() { return Re.data(); }
  Real *imagPlane() { return Im.data(); }
  const Real *realPlane() const { return Re.data(); }
  const Real *imagPlane() const { return Im.data(); }

  /// Amplitude of basis state \p X in column \p Col, widened to double.
  Complex at(size_t Col, uint64_t X) const {
    const size_t I = size_t(X) * Stride + Col;
    return Complex(static_cast<double>(Re[I]), static_cast<double>(Im[I]));
  }

  /// Materializes column \p Col as one contiguous statevector (the panel
  /// itself stores columns strided across rows).
  CVector column(size_t Col) const;

  /// Applies exp(i * Theta * P) to every column in one schedule sweep.
  /// Diagonal (Z-only) strings take the per-element phase fast path.
  /// Dispatches to the active kernel tier (scalar/AVX2/NEON).
  void applyPauliExpAll(const PauliString &P, double Theta);

  /// Applies one gate to every column.
  void applyAll(const Gate &G);

  /// Applies all gates of a circuit in order to every column.
  void applyAll(const Circuit &C);

  /// <Target | column Col>, accumulated in double in ascending basis
  /// order — the same chain as innerProduct over a standalone
  /// statevector (bit-identical for the double instantiation).
  Complex overlapWith(const CVector &Target, size_t Col) const;

  /// The fused tail of fidelity evaluation: applies exp(i * Theta * P) to
  /// every column exactly like applyPauliExpAll, then accumulates
  /// Out[Col] = <Target col | column Col> against the packed \p Targets in
  /// the same pass through memory instead of one strided overlapWith
  /// re-read per column. Each column's overlap runs its own ascending-
  /// basis lane chain — the exact chain overlapWith runs — so the fused
  /// path is bit-identical to applyPauliExpAll followed by overlapWith,
  /// for both precision tiers and every kernel dispatch. \p Targets must
  /// be packed at this panel's laneStride(). \p Out receives
  /// numColumns() overlaps.
  void applyPauliExpAllFused(const PauliString &P, double Theta,
                             const TargetPanel &Targets, Complex *Out);

private:
  unsigned NQubits;
  size_t Dim;
  size_t Cols;
  size_t Stride;
  std::vector<Real, AlignedAllocator<Real, 64>> Re, Im;
};

extern template class BasicStatePanel<double>;
extern template class BasicStatePanel<float>;

/// The bit-exact FP64 panel every default path evaluates on.
using StatePanel = BasicStatePanel<double>;

/// The opt-in FP32 throughput tier (tolerance-defined; see Precision.h).
using StatePanelF32 = BasicStatePanel<float>;

} // namespace marqsim

#endif // MARQSIM_SIM_STATEPANEL_H
