//===- sim/Kernels.cpp - Scalar reference kernels and dispatch ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The scalar tier is the semantic definition of every kernel: the SIMD
// tiers must reproduce its per-element arithmetic bit for bit (FP64) or
// lane for lane in float (FP32). The statevector bodies are the original
// fused loops of StateVector::applyPauliExp, moved here verbatim; the
// panel bodies are the SoA restatement of StatePanel::applyPauliExpAll
// with identical per-element expressions.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernels.h"

#include "support/CpuFeatures.h"

#include <atomic>
#include <cstdlib>
#include <string>

using namespace marqsim;
using marqsim::detail::PauliPhases;
using marqsim::detail::PauliPhasesF32;

namespace {

//===----------------------------------------------------------------------===//
// Scalar statevector kernels (interleaved std::complex<double>)
//===----------------------------------------------------------------------===//

void scalarExpButterflyF64(Complex *Amp, size_t Dim, uint64_t XM, Complex CosT,
                           Complex ISinT, const PauliPhases &Phases) {
  // Fused butterfly: each {X, X ^ XM} pair is visited once and updated in
  // place with the same per-element arithmetic as the two-pass scratch
  // formulation (cos * psi + i sin * P psi), so results are bit-identical.
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const Complex A0 = Amp[X];
    const Complex A1 = Amp[Y];
    Amp[X] = CosT * A0 + ISinT * (Phases.at(Y) * A1);
    Amp[Y] = CosT * A1 + ISinT * (Phases.at(X) * A0);
  }
}

void scalarExpDiagonalF64(Complex *Amp, size_t Dim, Complex CosT,
                          Complex ISinT, const PauliPhases &Phases) {
  // Diagonal fast path: P|X> = (+/-1)|X>, so each element only needs its
  // own slot. The update keeps the literal two-product expression (rather
  // than one fused factor cos +/- i sin) because a single multiply flips
  // the sign of exact-zero amplitudes when cos(Theta) < 0; this form is
  // bit-identical to the reference kernel including zero signs.
  for (uint64_t X = 0; X < Dim; ++X) {
    const Complex A = Amp[X];
    Amp[X] = CosT * A + ISinT * (Phases.at(X) * A);
  }
}

//===----------------------------------------------------------------------===//
// Scalar panel kernels (split real/imag planes, row X at [X * Stride])
//===----------------------------------------------------------------------===//

// The sweeps cover the full Stride of every row, padding lanes included —
// padding holds zeros and the updates are elementwise, so the dead lanes
// stay zero (times cos/sin factors) and never leak into live columns.
// This matches the SIMD tiers, which process whole vectors per row.

template <typename Real, typename Phases>
void panelExpButterfly(Real *Re, Real *Im, size_t Dim, size_t Stride,
                       uint64_t XM, std::complex<Real> CosT,
                       std::complex<Real> ISinT, const Phases &Ph) {
  using C = std::complex<Real>;
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const C PhX = Ph.at(X);
    const C PhY = Ph.at(Y);
    Real *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    Real *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; ++L) {
      const C A0(ReX[L], ImX[L]);
      const C A1(ReY[L], ImY[L]);
      const C N0 = CosT * A0 + ISinT * (PhY * A1);
      const C N1 = CosT * A1 + ISinT * (PhX * A0);
      ReX[L] = N0.real();
      ImX[L] = N0.imag();
      ReY[L] = N1.real();
      ImY[L] = N1.imag();
    }
  }
}

template <typename Real, typename Phases>
void panelExpDiagonal(Real *Re, Real *Im, size_t Dim, size_t Stride,
                      std::complex<Real> CosT, std::complex<Real> ISinT,
                      const Phases &Ph) {
  using C = std::complex<Real>;
  for (uint64_t X = 0; X < Dim; ++X) {
    const C PhX = Ph.at(X);
    Real *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; ++L) {
      const C A(ReX[L], ImX[L]);
      const C N = CosT * A + ISinT * (PhX * A);
      ReX[L] = N.real();
      ImX[L] = N.imag();
    }
  }
}

void scalarPanelExpButterflyF64(double *Re, double *Im, size_t Dim,
                                size_t Stride, uint64_t XM, Complex CosT,
                                Complex ISinT, const PauliPhases &Ph) {
  panelExpButterfly<double>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
}

void scalarPanelExpDiagonalF64(double *Re, double *Im, size_t Dim,
                               size_t Stride, Complex CosT, Complex ISinT,
                               const PauliPhases &Ph) {
  panelExpDiagonal<double>(Re, Im, Dim, Stride, CosT, ISinT, Ph);
}

void scalarPanelExpButterflyF32(float *Re, float *Im, size_t Dim,
                                size_t Stride, uint64_t XM,
                                kernels::ComplexF CosT, kernels::ComplexF ISinT,
                                const PauliPhasesF32 &Ph) {
  panelExpButterfly<float>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
}

void scalarPanelExpDiagonalF32(float *Re, float *Im, size_t Dim, size_t Stride,
                               kernels::ComplexF CosT, kernels::ComplexF ISinT,
                               const PauliPhasesF32 &Ph) {
  panelExpDiagonal<float>(Re, Im, Dim, Stride, CosT, ISinT, Ph);
}

const kernels::Ops ScalarOps = {
    "scalar",
    scalarExpButterflyF64,
    scalarExpDiagonalF64,
    scalarPanelExpButterflyF64,
    scalarPanelExpDiagonalF64,
    scalarPanelExpButterflyF32,
    scalarPanelExpDiagonalF32,
};

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

const kernels::Ops *selectOps(bool ForceScalar) {
  if (!ForceScalar) {
    if (const kernels::Ops *V = kernels::detail::avx2Ops())
      return V;
    if (const kernels::Ops *V = kernels::detail::neonOps())
      return V;
  }
  return &ScalarOps;
}

// The cached selection. Null until the first active() call (or an explicit
// select*); stores are release so the pointed-to table is visible to
// acquire loads on other threads.
std::atomic<const kernels::Ops *> Active{nullptr};

} // namespace

bool kernels::forcedScalarByEnv() {
  const char *E = std::getenv("MARQSIM_FORCE_SCALAR");
  return E && *E && std::string(E) != "0";
}

const kernels::Ops &kernels::active() {
  const Ops *K = Active.load(std::memory_order_acquire);
  if (K)
    return *K;
  // First use: apply the default policy. Racing threads compute the same
  // answer, so a benign double-store is fine.
  K = selectOps(forcedScalarByEnv());
  Active.store(K, std::memory_order_release);
  return *K;
}

const char *kernels::activeName() { return active().Name; }

const kernels::Ops &kernels::scalarOps() { return ScalarOps; }

void kernels::selectForTesting(bool ForceScalar) {
  Active.store(selectOps(ForceScalar), std::memory_order_release);
}

void kernels::selectAuto() {
  Active.store(selectOps(forcedScalarByEnv()), std::memory_order_release);
}
