//===- sim/Kernels.cpp - Scalar reference kernels and dispatch ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The scalar tier is the semantic definition of every kernel: the SIMD
// tiers must reproduce its per-element arithmetic bit for bit (FP64) or
// lane for lane in float (FP32). The statevector bodies are the original
// fused loops of StateVector::applyPauliExp, moved here verbatim; the
// panel bodies are the SoA restatement of StatePanel::applyPauliExpAll
// with identical per-element expressions; the fused overlap bodies chain
// the rotation sweep with the ascending-basis accumulation loop of
// StatePanel::overlapWith, one lane chain per column.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernels.h"

#include "support/CpuFeatures.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace marqsim;
using marqsim::detail::PauliPhases;
using marqsim::detail::PauliPhasesF32;

namespace {

//===----------------------------------------------------------------------===//
// Scalar statevector kernels (interleaved complex amplitudes)
//===----------------------------------------------------------------------===//

template <typename Real, typename Phases>
void expButterfly(std::complex<Real> *Amp, size_t Dim, uint64_t XM,
                  std::complex<Real> CosT, std::complex<Real> ISinT,
                  const Phases &Ph) {
  using C = std::complex<Real>;
  // Fused butterfly: each {X, X ^ XM} pair is visited once and updated in
  // place with the same per-element arithmetic as the two-pass scratch
  // formulation (cos * psi + i sin * P psi), so results are bit-identical.
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const C A0 = Amp[X];
    const C A1 = Amp[Y];
    Amp[X] = CosT * A0 + ISinT * (Ph.at(Y) * A1);
    Amp[Y] = CosT * A1 + ISinT * (Ph.at(X) * A0);
  }
}

template <typename Real, typename Phases>
void expDiagonal(std::complex<Real> *Amp, size_t Dim,
                 std::complex<Real> CosT, std::complex<Real> ISinT,
                 const Phases &Ph) {
  using C = std::complex<Real>;
  // Diagonal fast path: P|X> = (+/-1)|X>, so each element only needs its
  // own slot. The update keeps the literal two-product expression (rather
  // than one fused factor cos +/- i sin) because a single multiply flips
  // the sign of exact-zero amplitudes when cos(Theta) < 0; this form is
  // bit-identical to the reference kernel including zero signs.
  for (uint64_t X = 0; X < Dim; ++X) {
    const C A = Amp[X];
    Amp[X] = CosT * A + ISinT * (Ph.at(X) * A);
  }
}

void scalarExpButterflyF64(Complex *Amp, size_t Dim, uint64_t XM, Complex CosT,
                           Complex ISinT, const PauliPhases &Phases) {
  expButterfly<double>(Amp, Dim, XM, CosT, ISinT, Phases);
}

void scalarExpDiagonalF64(Complex *Amp, size_t Dim, Complex CosT,
                          Complex ISinT, const PauliPhases &Phases) {
  expDiagonal<double>(Amp, Dim, CosT, ISinT, Phases);
}

void scalarExpButterflyF32(kernels::ComplexF *Amp, size_t Dim, uint64_t XM,
                           kernels::ComplexF CosT, kernels::ComplexF ISinT,
                           const PauliPhasesF32 &Phases) {
  expButterfly<float>(Amp, Dim, XM, CosT, ISinT, Phases);
}

void scalarExpDiagonalF32(kernels::ComplexF *Amp, size_t Dim,
                          kernels::ComplexF CosT, kernels::ComplexF ISinT,
                          const PauliPhasesF32 &Phases) {
  expDiagonal<float>(Amp, Dim, CosT, ISinT, Phases);
}

//===----------------------------------------------------------------------===//
// Scalar panel kernels (split real/imag planes, row X at [X * Stride])
//===----------------------------------------------------------------------===//

// The sweeps cover the full Stride of every row, padding lanes included —
// padding holds zeros and the updates are elementwise, so the dead lanes
// stay zero (times cos/sin factors) and never leak into live columns.
// This matches the SIMD tiers, which process whole vectors per row.

template <typename Real, typename Phases>
void panelExpButterfly(Real *Re, Real *Im, size_t Dim, size_t Stride,
                       uint64_t XM, std::complex<Real> CosT,
                       std::complex<Real> ISinT, const Phases &Ph) {
  using C = std::complex<Real>;
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const C PhX = Ph.at(X);
    const C PhY = Ph.at(Y);
    Real *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    Real *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; ++L) {
      const C A0(ReX[L], ImX[L]);
      const C A1(ReY[L], ImY[L]);
      const C N0 = CosT * A0 + ISinT * (PhY * A1);
      const C N1 = CosT * A1 + ISinT * (PhX * A0);
      ReX[L] = N0.real();
      ImX[L] = N0.imag();
      ReY[L] = N1.real();
      ImY[L] = N1.imag();
    }
  }
}

template <typename Real, typename Phases>
void panelExpDiagonal(Real *Re, Real *Im, size_t Dim, size_t Stride,
                      std::complex<Real> CosT, std::complex<Real> ISinT,
                      const Phases &Ph) {
  using C = std::complex<Real>;
  for (uint64_t X = 0; X < Dim; ++X) {
    const C PhX = Ph.at(X);
    Real *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; ++L) {
      const C A(ReX[L], ImX[L]);
      const C N = CosT * A + ISinT * (PhX * A);
      ReX[L] = N.real();
      ImX[L] = N.imag();
    }
  }
}

// The overlap accumulation: lane L of AccRe/AccIm runs column L's chain
// S += conj(Target[X]) * at(Col, X) in ascending basis order. With the
// target's imaginary plane pre-negated (TImNeg = -imag, an exact sign
// flip), conj(T) * A expands to exactly
//   re: TRe*ar - TImNeg*ai ; im: TRe*ai + TImNeg*ar
// with each multiply, the subtract/add, and the accumulate add rounded
// individually — operation for operation the std::complex chain of
// StatePanel::overlapWith. FP32 amplitudes widen to double first (exact),
// matching at()'s widening.
template <typename Real>
void panelOverlapAccum(const Real *Re, const Real *Im, size_t Dim,
                       size_t Stride, const double *TRe, const double *TImNeg,
                       double *AccRe, double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const Real *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WR = TRe + X * Stride, *WI = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; ++L) {
      const double Ar = static_cast<double>(ReX[L]);
      const double Ai = static_cast<double>(ImX[L]);
      AccRe[L] += WR[L] * Ar - WI[L] * Ai;
      AccIm[L] += WR[L] * Ai + WI[L] * Ar;
    }
  }
}

template <typename Real, typename Phases>
void panelExpOverlap(Real *Re, Real *Im, size_t Dim, size_t Stride,
                     uint64_t XM, std::complex<Real> CosT,
                     std::complex<Real> ISinT, const Phases &Ph,
                     const double *TRe, const double *TImNeg, double *AccRe,
                     double *AccIm) {
  // Rotation sweep first, then one streaming accumulation pass: the
  // butterfly visits rows in pair order, so accumulating inside it would
  // reorder the per-column chains. Two passes inside one kernel call is
  // still one panel re-read instead of one strided re-read per column.
  if (XM == 0)
    panelExpDiagonal<Real>(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    panelExpButterfly<Real>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  panelOverlapAccum<Real>(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

void scalarPanelExpButterflyF64(double *Re, double *Im, size_t Dim,
                                size_t Stride, uint64_t XM, Complex CosT,
                                Complex ISinT, const PauliPhases &Ph) {
  panelExpButterfly<double>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
}

void scalarPanelExpDiagonalF64(double *Re, double *Im, size_t Dim,
                               size_t Stride, Complex CosT, Complex ISinT,
                               const PauliPhases &Ph) {
  panelExpDiagonal<double>(Re, Im, Dim, Stride, CosT, ISinT, Ph);
}

void scalarPanelExpButterflyF32(float *Re, float *Im, size_t Dim,
                                size_t Stride, uint64_t XM,
                                kernels::ComplexF CosT, kernels::ComplexF ISinT,
                                const PauliPhasesF32 &Ph) {
  panelExpButterfly<float>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
}

void scalarPanelExpDiagonalF32(float *Re, float *Im, size_t Dim, size_t Stride,
                               kernels::ComplexF CosT, kernels::ComplexF ISinT,
                               const PauliPhasesF32 &Ph) {
  panelExpDiagonal<float>(Re, Im, Dim, Stride, CosT, ISinT, Ph);
}

void scalarPanelExpOverlapF64(double *Re, double *Im, size_t Dim,
                              size_t Stride, uint64_t XM, Complex CosT,
                              Complex ISinT, const PauliPhases &Ph,
                              const double *TRe, const double *TImNeg,
                              double *AccRe, double *AccIm) {
  panelExpOverlap<double>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph, TRe,
                          TImNeg, AccRe, AccIm);
}

void scalarPanelExpOverlapF32(float *Re, float *Im, size_t Dim, size_t Stride,
                              uint64_t XM, kernels::ComplexF CosT,
                              kernels::ComplexF ISinT,
                              const PauliPhasesF32 &Ph, const double *TRe,
                              const double *TImNeg, double *AccRe,
                              double *AccIm) {
  panelExpOverlap<float>(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph, TRe,
                         TImNeg, AccRe, AccIm);
}

const kernels::Ops ScalarOps = {
    "scalar",
    scalarExpButterflyF64,
    scalarExpDiagonalF64,
    scalarPanelExpButterflyF64,
    scalarPanelExpDiagonalF64,
    scalarPanelExpButterflyF32,
    scalarPanelExpDiagonalF32,
    scalarExpButterflyF32,
    scalarExpDiagonalF32,
    scalarPanelExpOverlapF64,
    scalarPanelExpOverlapF32,
};

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

const kernels::Ops *bestOpsForHost() {
  if (const kernels::Ops *V = kernels::detail::avx512Ops())
    return V;
  if (const kernels::Ops *V = kernels::detail::avx2Ops())
    return V;
  if (const kernels::Ops *V = kernels::detail::neonOps())
    return V;
  return &ScalarOps;
}

[[noreturn]] void failUnknownTier(const std::string &Requested) {
  const CpuFeatures &F = cpuFeatures();
  std::string Have;
  for (const kernels::Ops *T : kernels::availableOps()) {
    if (!Have.empty())
      Have += ", ";
    Have += T->Name;
  }
  std::fprintf(stderr,
               "marqsim: MARQSIM_KERNEL_TIER=%s is not runnable on this host "
               "(available tiers: %s; detected features: avx2=%d fma=%d "
               "avx512f=%d avx512dq=%d avx512-os=%d neon=%d)\n",
               Requested.c_str(), Have.c_str(), F.AVX2, F.FMA, F.AVX512F,
               F.AVX512DQ, F.AVX512OS, F.NEON);
  std::exit(1);
}

/// The default policy: the environment pin when present (fail fast on a
/// tier this host cannot run), else the best tier the CPU supports.
const kernels::Ops *selectFromPolicy() {
  const std::string Pinned = kernels::tierOverrideFromEnv();
  if (!Pinned.empty()) {
    if (const kernels::Ops *T = kernels::findTier(Pinned))
      return T;
    failUnknownTier(Pinned);
  }
  return bestOpsForHost();
}

// The cached selection. Null until the first active() call (or an explicit
// select*); stores are release so the pointed-to table is visible to
// acquire loads on other threads.
std::atomic<const kernels::Ops *> Active{nullptr};

} // namespace

bool kernels::forcedScalarByEnv() {
  const char *E = std::getenv("MARQSIM_FORCE_SCALAR");
  return E && *E && std::string(E) != "0";
}

std::string kernels::tierOverrideFromEnv() {
  if (const char *E = std::getenv("MARQSIM_KERNEL_TIER"); E && *E)
    return E;
  return forcedScalarByEnv() ? "scalar" : "";
}

std::vector<const kernels::Ops *> kernels::availableOps() {
  std::vector<const Ops *> Tiers;
  if (const Ops *V = detail::avx512Ops())
    Tiers.push_back(V);
  if (const Ops *V = detail::avx2Ops())
    Tiers.push_back(V);
  if (const Ops *V = detail::neonOps())
    Tiers.push_back(V);
  Tiers.push_back(&ScalarOps);
  return Tiers;
}

const kernels::Ops *kernels::findTier(const std::string &Name) {
  for (const Ops *T : availableOps())
    if (Name == T->Name)
      return T;
  return nullptr;
}

const kernels::Ops &kernels::active() {
  const Ops *K = Active.load(std::memory_order_acquire);
  if (K)
    return *K;
  // First use: apply the default policy. Racing threads compute the same
  // answer, so a benign double-store is fine.
  K = selectFromPolicy();
  Active.store(K, std::memory_order_release);
  return *K;
}

const char *kernels::activeName() { return active().Name; }

const char *kernels::detectedName() { return bestOpsForHost()->Name; }

const kernels::Ops &kernels::scalarOps() { return ScalarOps; }

void kernels::selectForTesting(bool ForceScalar) {
  Active.store(ForceScalar ? &ScalarOps : bestOpsForHost(),
               std::memory_order_release);
}

void kernels::selectTierForTesting(const Ops &Tier) {
  Active.store(&Tier, std::memory_order_release);
}

void kernels::selectAuto() {
  Active.store(selectFromPolicy(), std::memory_order_release);
}
