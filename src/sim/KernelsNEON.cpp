//===- sim/KernelsNEON.cpp - NEON kernel tier --------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// AArch64 AdvSIMD implementations of the dispatched kernels: 2 double
// lanes / 4 float lanes per vector. AdvSIMD is baseline on AArch64, so no
// per-file flags are needed; on other architectures only the null stub is
// compiled.
//
// Bit-identity: only discrete vmul/vadd/vsub intrinsics (no vfma), each
// lane evaluating the scalar reference's exact expression. a - b is
// realized as a + (-b) where the sign flip is an exact XOR — IEEE-754
// defines subtraction as addition of the negated operand, so the lane
// results match scalar bit for bit, zero signs included. The project-wide
// -ffp-contract=off keeps the scalar tier free of fused contractions on
// AArch64 too, so both tiers round identically.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernels.h"

#if defined(__aarch64__)

#include "support/CpuFeatures.h"

#include <arm_neon.h>

using namespace marqsim;
using marqsim::detail::PauliPhases;
using marqsim::detail::PauliPhasesF32;

namespace {

//===----------------------------------------------------------------------===//
// Interleaved complex helpers (one complex per float64x2_t: [re, im])
//===----------------------------------------------------------------------===//

// w * a with scalar semantics re = wr*ar - wi*ai, im = wr*ai + wi*ar.
// t1 = [wr*ar, wr*ai]; t2 = [wi*ai, wi*ar]; negate t2's even lane via an
// exact sign-bit XOR, then one rounded add per lane.
inline float64x2_t cmul1(float64x2_t WrDup, float64x2_t WiDup, float64x2_t A) {
  const float64x2_t T1 = vmulq_f64(WrDup, A);
  const float64x2_t ASwap = vextq_f64(A, A, 1); // [ai, ar]
  const float64x2_t T2 = vmulq_f64(WiDup, ASwap);
  const uint64x2_t SignEven = {0x8000000000000000ULL, 0};
  const float64x2_t T2Adj = vreinterpretq_f64_u64(
      veorq_u64(vreinterpretq_u64_f64(T2), SignEven));
  return vaddq_f64(T1, T2Adj);
}

void neonExpButterflyF64(Complex *AmpC, size_t Dim, uint64_t XM, Complex CosT,
                         Complex ISinT, const PauliPhases &Ph) {
  double *Amp = reinterpret_cast<double *>(AmpC);
  const float64x2_t CDup = vdupq_n_f64(CosT.real());
  const float64x2_t SDup = vdupq_n_f64(ISinT.imag());
  const float64x2_t Zero = vdupq_n_f64(0.0);
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const float64x2_t A0 = vld1q_f64(Amp + 2 * X);
    const float64x2_t A1 = vld1q_f64(Amp + 2 * Y);
    const float64x2_t PhX =
        vld1q_f64(reinterpret_cast<const double *>(&Ph.at(X)));
    const float64x2_t PhY =
        vld1q_f64(reinterpret_cast<const double *>(&Ph.at(Y)));
    // new0 = CosT*A0 + ISinT*(PhY*A1); CosT = (c,0), ISinT = (0,s).
    const float64x2_t U0 =
        cmul1(Zero, SDup, cmul1(vdupq_laneq_f64(PhY, 0),
                                vdupq_laneq_f64(PhY, 1), A1));
    const float64x2_t U1 =
        cmul1(Zero, SDup, cmul1(vdupq_laneq_f64(PhX, 0),
                                vdupq_laneq_f64(PhX, 1), A0));
    vst1q_f64(Amp + 2 * X, vaddq_f64(cmul1(CDup, Zero, A0), U0));
    vst1q_f64(Amp + 2 * Y, vaddq_f64(cmul1(CDup, Zero, A1), U1));
  }
}

void neonExpDiagonalF64(Complex *AmpC, size_t Dim, Complex CosT, Complex ISinT,
                        const PauliPhases &Ph) {
  double *Amp = reinterpret_cast<double *>(AmpC);
  const float64x2_t CDup = vdupq_n_f64(CosT.real());
  const float64x2_t SDup = vdupq_n_f64(ISinT.imag());
  const float64x2_t Zero = vdupq_n_f64(0.0);
  for (uint64_t X = 0; X < Dim; ++X) {
    const float64x2_t A = vld1q_f64(Amp + 2 * X);
    const float64x2_t PhX =
        vld1q_f64(reinterpret_cast<const double *>(&Ph.at(X)));
    const float64x2_t U = cmul1(
        Zero, SDup,
        cmul1(vdupq_laneq_f64(PhX, 0), vdupq_laneq_f64(PhX, 1), A));
    vst1q_f64(Amp + 2 * X, vaddq_f64(cmul1(CDup, Zero, A), U));
  }
}

//===----------------------------------------------------------------------===//
// Panel kernels (split planes; a row is Stride contiguous lanes)
//===----------------------------------------------------------------------===//

inline float64x2_t mulRe(float64x2_t Wr, float64x2_t Wi, float64x2_t Ar,
                         float64x2_t Ai) {
  return vsubq_f64(vmulq_f64(Wr, Ar), vmulq_f64(Wi, Ai));
}
inline float64x2_t mulIm(float64x2_t Wr, float64x2_t Wi, float64x2_t Ar,
                         float64x2_t Ai) {
  return vaddq_f64(vmulq_f64(Wr, Ai), vmulq_f64(Wi, Ar));
}
inline float32x4_t mulRe(float32x4_t Wr, float32x4_t Wi, float32x4_t Ar,
                         float32x4_t Ai) {
  return vsubq_f32(vmulq_f32(Wr, Ar), vmulq_f32(Wi, Ai));
}
inline float32x4_t mulIm(float32x4_t Wr, float32x4_t Wi, float32x4_t Ar,
                         float32x4_t Ai) {
  return vaddq_f32(vmulq_f32(Wr, Ai), vmulq_f32(Wi, Ar));
}
inline float64x2_t addv(float64x2_t A, float64x2_t B) {
  return vaddq_f64(A, B);
}
inline float32x4_t addv(float32x4_t A, float32x4_t B) {
  return vaddq_f32(A, B);
}

// One panel element update over one row chunk: N = CosT*A + ISinT*(P*A2).
#define MARQSIM_PANEL_UPDATE(VEC, Ar, Ai, Pr, Pi, A2r, A2i, NrOut, NiOut)      \
  do {                                                                         \
    const VEC Ur = mulRe(Pr, Pi, A2r, A2i);                                    \
    const VEC Ui = mulIm(Pr, Pi, A2r, A2i);                                    \
    const VEC T2r = mulRe(Zero, SDup, Ur, Ui);                                 \
    const VEC T2i = mulIm(Zero, SDup, Ur, Ui);                                 \
    const VEC T1r = mulRe(CDup, Zero, Ar, Ai);                                 \
    const VEC T1i = mulIm(CDup, Zero, Ar, Ai);                                 \
    NrOut = addv(T1r, T2r);                                                    \
    NiOut = addv(T1i, T2i);                                                    \
  } while (0)

void neonPanelExpButterflyF64(double *Re, double *Im, size_t Dim,
                              size_t Stride, uint64_t XM, Complex CosT,
                              Complex ISinT, const PauliPhases &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  const float64x2_t CDup = vdupq_n_f64(CosT.real());
  const float64x2_t SDup = vdupq_n_f64(ISinT.imag());
  const float64x2_t Zero = vdupq_n_f64(0.0);
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const Complex PhX = Ph.at(X);
    const Complex PhY = Ph.at(Y);
    const float64x2_t PXr = vdupq_n_f64(PhX.real());
    const float64x2_t PXi = vdupq_n_f64(PhX.imag());
    const float64x2_t PYr = vdupq_n_f64(PhY.real());
    const float64x2_t PYi = vdupq_n_f64(PhY.imag());
    double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    double *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; L += 2) {
      const float64x2_t A0r = vld1q_f64(ReX + L);
      const float64x2_t A0i = vld1q_f64(ImX + L);
      const float64x2_t A1r = vld1q_f64(ReY + L);
      const float64x2_t A1i = vld1q_f64(ImY + L);
      float64x2_t N0r, N0i, N1r, N1i;
      MARQSIM_PANEL_UPDATE(float64x2_t, A0r, A0i, PYr, PYi, A1r, A1i, N0r,
                           N0i);
      MARQSIM_PANEL_UPDATE(float64x2_t, A1r, A1i, PXr, PXi, A0r, A0i, N1r,
                           N1i);
      vst1q_f64(ReX + L, N0r);
      vst1q_f64(ImX + L, N0i);
      vst1q_f64(ReY + L, N1r);
      vst1q_f64(ImY + L, N1i);
    }
  }
}

void neonPanelExpDiagonalF64(double *Re, double *Im, size_t Dim, size_t Stride,
                             Complex CosT, Complex ISinT,
                             const PauliPhases &Ph) {
  const float64x2_t CDup = vdupq_n_f64(CosT.real());
  const float64x2_t SDup = vdupq_n_f64(ISinT.imag());
  const float64x2_t Zero = vdupq_n_f64(0.0);
  for (uint64_t X = 0; X < Dim; ++X) {
    const Complex PhX = Ph.at(X);
    const float64x2_t Pr = vdupq_n_f64(PhX.real());
    const float64x2_t Pi = vdupq_n_f64(PhX.imag());
    double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; L += 2) {
      const float64x2_t Ar = vld1q_f64(ReX + L);
      const float64x2_t Ai = vld1q_f64(ImX + L);
      float64x2_t Nr, Ni;
      MARQSIM_PANEL_UPDATE(float64x2_t, Ar, Ai, Pr, Pi, Ar, Ai, Nr, Ni);
      vst1q_f64(ReX + L, Nr);
      vst1q_f64(ImX + L, Ni);
    }
  }
}

void neonPanelExpButterflyF32(float *Re, float *Im, size_t Dim, size_t Stride,
                              uint64_t XM, kernels::ComplexF CosT,
                              kernels::ComplexF ISinT,
                              const PauliPhasesF32 &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  const float32x4_t CDup = vdupq_n_f32(CosT.real());
  const float32x4_t SDup = vdupq_n_f32(ISinT.imag());
  const float32x4_t Zero = vdupq_n_f32(0.0f);
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const kernels::ComplexF PhX = Ph.at(X);
    const kernels::ComplexF PhY = Ph.at(Y);
    const float32x4_t PXr = vdupq_n_f32(PhX.real());
    const float32x4_t PXi = vdupq_n_f32(PhX.imag());
    const float32x4_t PYr = vdupq_n_f32(PhY.real());
    const float32x4_t PYi = vdupq_n_f32(PhY.imag());
    float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    float *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; L += 4) {
      const float32x4_t A0r = vld1q_f32(ReX + L);
      const float32x4_t A0i = vld1q_f32(ImX + L);
      const float32x4_t A1r = vld1q_f32(ReY + L);
      const float32x4_t A1i = vld1q_f32(ImY + L);
      float32x4_t N0r, N0i, N1r, N1i;
      MARQSIM_PANEL_UPDATE(float32x4_t, A0r, A0i, PYr, PYi, A1r, A1i, N0r,
                           N0i);
      MARQSIM_PANEL_UPDATE(float32x4_t, A1r, A1i, PXr, PXi, A0r, A0i, N1r,
                           N1i);
      vst1q_f32(ReX + L, N0r);
      vst1q_f32(ImX + L, N0i);
      vst1q_f32(ReY + L, N1r);
      vst1q_f32(ImY + L, N1i);
    }
  }
}

void neonPanelExpDiagonalF32(float *Re, float *Im, size_t Dim, size_t Stride,
                             kernels::ComplexF CosT, kernels::ComplexF ISinT,
                             const PauliPhasesF32 &Ph) {
  const float32x4_t CDup = vdupq_n_f32(CosT.real());
  const float32x4_t SDup = vdupq_n_f32(ISinT.imag());
  const float32x4_t Zero = vdupq_n_f32(0.0f);
  for (uint64_t X = 0; X < Dim; ++X) {
    const kernels::ComplexF PhX = Ph.at(X);
    const float32x4_t Pr = vdupq_n_f32(PhX.real());
    const float32x4_t Pi = vdupq_n_f32(PhX.imag());
    float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; L += 4) {
      const float32x4_t Ar = vld1q_f32(ReX + L);
      const float32x4_t Ai = vld1q_f32(ImX + L);
      float32x4_t Nr, Ni;
      MARQSIM_PANEL_UPDATE(float32x4_t, Ar, Ai, Pr, Pi, Ar, Ai, Nr, Ni);
      vst1q_f32(ReX + L, Nr);
      vst1q_f32(ImX + L, Ni);
    }
  }
}

//===----------------------------------------------------------------------===//
// Interleaved FP32 statevector kernels
//===----------------------------------------------------------------------===//

// The interleaved FP32 walk currently defers to the scalar reference on
// this tier: a 128-bit vector holds only two float complexes, so short
// pivot runs dominate and an AdvSIMD version is remaining headroom rather
// than a measured win. Dispatch semantics (and bit-identity with scalar)
// are preserved trivially.
void neonExpButterflyF32(kernels::ComplexF *Amp, size_t Dim, uint64_t XM,
                         kernels::ComplexF CosT, kernels::ComplexF ISinT,
                         const PauliPhasesF32 &Ph) {
  kernels::scalarOps().ExpButterflyF32(Amp, Dim, XM, CosT, ISinT, Ph);
}

void neonExpDiagonalF32(kernels::ComplexF *Amp, size_t Dim,
                        kernels::ComplexF CosT, kernels::ComplexF ISinT,
                        const PauliPhasesF32 &Ph) {
  kernels::scalarOps().ExpDiagonalF32(Amp, Dim, CosT, ISinT, Ph);
}

//===----------------------------------------------------------------------===//
// Fused final-rotation + overlap kernels
//===----------------------------------------------------------------------===//

// Streaming accumulation pass: row X lands on every lane's chain before
// row X+1, the ascending-basis order of StatePanel::overlapWith. Targets
// carry a pre-negated imaginary plane, so each lane is the discretely
// rounded conj(Target) * Amp expansion.
void neonPanelOverlapAccumF64(const double *Re, const double *Im, size_t Dim,
                              size_t Stride, const double *TRe,
                              const double *TImNeg, double *AccRe,
                              double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WrX = TRe + X * Stride, *WiX = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; L += 2) {
      const float64x2_t Ar = vld1q_f64(ReX + L);
      const float64x2_t Ai = vld1q_f64(ImX + L);
      const float64x2_t Wr = vld1q_f64(WrX + L);
      const float64x2_t Wi = vld1q_f64(WiX + L);
      vst1q_f64(AccRe + L,
                vaddq_f64(vld1q_f64(AccRe + L), mulRe(Wr, Wi, Ar, Ai)));
      vst1q_f64(AccIm + L,
                vaddq_f64(vld1q_f64(AccIm + L), mulIm(Wr, Wi, Ar, Ai)));
    }
  }
}

// FP32 amplitudes widen to double (exact) before the double
// multiply-accumulate, matching StatePanel::at's widening.
void neonPanelOverlapAccumF32(const float *Re, const float *Im, size_t Dim,
                              size_t Stride, const double *TRe,
                              const double *TImNeg, double *AccRe,
                              double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WrX = TRe + X * Stride, *WiX = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; L += 2) {
      const float64x2_t Ar = vcvt_f64_f32(vld1_f32(ReX + L));
      const float64x2_t Ai = vcvt_f64_f32(vld1_f32(ImX + L));
      const float64x2_t Wr = vld1q_f64(WrX + L);
      const float64x2_t Wi = vld1q_f64(WiX + L);
      vst1q_f64(AccRe + L,
                vaddq_f64(vld1q_f64(AccRe + L), mulRe(Wr, Wi, Ar, Ai)));
      vst1q_f64(AccIm + L,
                vaddq_f64(vld1q_f64(AccIm + L), mulIm(Wr, Wi, Ar, Ai)));
    }
  }
}

void neonPanelExpOverlapF64(double *Re, double *Im, size_t Dim, size_t Stride,
                            uint64_t XM, Complex CosT, Complex ISinT,
                            const PauliPhases &Ph, const double *TRe,
                            const double *TImNeg, double *AccRe,
                            double *AccIm) {
  if (XM == 0)
    neonPanelExpDiagonalF64(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    neonPanelExpButterflyF64(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  neonPanelOverlapAccumF64(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

void neonPanelExpOverlapF32(float *Re, float *Im, size_t Dim, size_t Stride,
                            uint64_t XM, kernels::ComplexF CosT,
                            kernels::ComplexF ISinT, const PauliPhasesF32 &Ph,
                            const double *TRe, const double *TImNeg,
                            double *AccRe, double *AccIm) {
  if (XM == 0)
    neonPanelExpDiagonalF32(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    neonPanelExpButterflyF32(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  neonPanelOverlapAccumF32(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

const kernels::Ops NEONOps = {
    "neon",
    neonExpButterflyF64,
    neonExpDiagonalF64,
    neonPanelExpButterflyF64,
    neonPanelExpDiagonalF64,
    neonPanelExpButterflyF32,
    neonPanelExpDiagonalF32,
    neonExpButterflyF32,
    neonExpDiagonalF32,
    neonPanelExpOverlapF64,
    neonPanelExpOverlapF32,
};

} // namespace

const kernels::Ops *kernels::detail::neonOps() {
  return cpuFeatures().NEON ? &NEONOps : nullptr;
}

#else // !__aarch64__

const marqsim::kernels::Ops *marqsim::kernels::detail::neonOps() {
  return nullptr;
}

#endif
