//===- sim/Fidelity.cpp - Unitary fidelity estimation -------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Fidelity.h"

#include "sim/Evolution.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>

using namespace marqsim;

/// Packed target panels, built lazily the first time a block is evaluated
/// fused at a given stride and reused across every subsequent schedule
/// replay. Keyed by (block index, stride) — the FP64 and FP32 tiers pack
/// at different strides and coexist in one cache.
struct marqsim::detail::TargetPanelCache {
  std::mutex M;
  std::map<std::pair<size_t, size_t>, std::unique_ptr<TargetPanel>> Panels;
};

double marqsim::unitaryFidelity(const Matrix &UApp, const Matrix &UExact) {
  assert(UApp.rows() == UExact.rows() && UApp.cols() == UExact.cols() &&
         "fidelity shape mismatch");
  // tr(A B^dag) = sum_ij A_ij conj(B_ij).
  Complex Tr = 0.0;
  for (size_t I = 0; I < UApp.rows(); ++I)
    for (size_t J = 0; J < UApp.cols(); ++J)
      Tr += UApp.at(I, J) * std::conj(UExact.at(I, J));
  return std::abs(Tr) / static_cast<double>(UApp.rows());
}

FidelityEvaluator::FidelityEvaluator(const Hamiltonian &H, double T,
                                     size_t NumColumns, uint64_t Seed)
    : NQubits(H.numQubits()),
      PanelCache(std::make_shared<detail::TargetPanelCache>()) {
  const size_t Dim = size_t(1) << NQubits;
  if (NumColumns >= Dim) {
    Columns.resize(Dim);
    for (size_t X = 0; X < Dim; ++X)
      Columns[X] = X;
  } else {
    // Deterministic distinct random columns (partial Fisher-Yates).
    std::vector<uint64_t> All(Dim);
    for (size_t X = 0; X < Dim; ++X)
      All[X] = X;
    RNG Rng(Seed);
    for (size_t I = 0; I < NumColumns; ++I) {
      size_t J = I + Rng.uniformInt(Dim - I);
      std::swap(All[I], All[J]);
    }
    Columns.assign(All.begin(), All.begin() + NumColumns);
    std::sort(Columns.begin(), Columns.end());
  }

  Targets.reserve(Columns.size());
  for (uint64_t X : Columns) {
    CVector Basis(Dim, Complex(0.0, 0.0));
    Basis[X] = 1.0;
    Targets.push_back(evolveExact(H, T, Basis));
  }
}

FidelityEvaluator::FidelityEvaluator(unsigned NQubits,
                                     std::vector<uint64_t> Columns,
                                     std::vector<CVector> Targets)
    : NQubits(NQubits), Columns(std::move(Columns)),
      Targets(std::move(Targets)),
      PanelCache(std::make_shared<detail::TargetPanelCache>()) {
  assert(this->Columns.size() == this->Targets.size() &&
         "one target per column");
}

const TargetPanel &FidelityEvaluator::targetPanelFor(size_t Block,
                                                     size_t Begin,
                                                     size_t Count,
                                                     size_t Stride) const {
  std::lock_guard<std::mutex> Lock(PanelCache->M);
  std::unique_ptr<TargetPanel> &Slot = PanelCache->Panels[{Block, Stride}];
  if (!Slot)
    Slot = std::make_unique<TargetPanel>(Targets.data() + Begin, Count, Stride);
  return *Slot;
}

template <typename PanelT, typename EvolveFn>
std::vector<Complex>
FidelityEvaluator::collectOverlaps(unsigned EvalJobs, const EvolveFn &Evolve,
                                   const ScheduledRotation *FusedTail) const {
  using Real = typename PanelT::RealType;
  const size_t NumCols = Columns.size();
  // The block partition is a fixed function of the column count — never
  // of EvalJobs — so every worker count computes the same blocks and the
  // fixed-order reductions over the result yield the same bits.
  constexpr size_t Width = PanelT::PreferredWidth;
  const size_t Blocks = (NumCols + Width - 1) / Width;
  std::vector<Complex> Overlaps(NumCols);
  const unsigned Jobs =
      EvalJobs == 0 ? ThreadPool::hardwareWorkers() : EvalJobs;
  parallelFor(Blocks, Jobs, [&](size_t Block) {
    const size_t Begin = Block * Width;
    const size_t End = std::min(Begin + Width, NumCols);
    if (End - Begin == 1) {
      // A width-1 tail block walks one interleaved statevector instead of
      // a panel padded to a full vector of lanes — less wasted work, the
      // same per-element arithmetic (bit-identical for FP64), and the
      // home of the FP32 interleaved walk kernels. The fused tail, when
      // split off, is applied here before the single overlap — for one
      // column, rotate-then-overlap is literally the same operation
      // sequence either way.
      BasicStateVector<Real> Walk(NQubits, Columns[Begin]);
      Evolve(Walk);
      if (FusedTail)
        Walk.applyPauliExpAll(FusedTail->String, FusedTail->Tau);
      Overlaps[Begin] = Walk.overlapWithTarget(Targets[Begin]);
      return;
    }
    PanelT Panel(NQubits, Columns.data() + Begin, End - Begin);
    Evolve(Panel);
    if (FusedTail) {
      const TargetPanel &Packed =
          targetPanelFor(Block, Begin, End - Begin, Panel.laneStride());
      Panel.applyPauliExpAllFused(FusedTail->String, FusedTail->Tau, Packed,
                                  Overlaps.data() + Begin);
      return;
    }
    for (size_t C = Begin; C < End; ++C)
      Overlaps[C] = Panel.overlapWith(Targets[C], C - Begin);
  });
  return Overlaps;
}

template <typename PanelT, typename EvolveFn>
double FidelityEvaluator::evaluatePanels(
    unsigned EvalJobs, const EvolveFn &Evolve,
    const ScheduledRotation *FusedTail) const {
  std::vector<Complex> Overlaps =
      collectOverlaps<PanelT>(EvalJobs, Evolve, FusedTail);
  // Per-column overlaps are pure functions of their column, so this
  // serial chain over ascending columns reproduces the single-state
  // evaluation loop bit for bit no matter how the blocks were scheduled.
  // (FP32 panels widen their overlaps to double before this chain, so
  // only the panel evolution itself runs in float.)
  Complex Acc = 0.0;
  for (const Complex &O : Overlaps)
    Acc += O;
  return std::abs(Acc) / static_cast<double>(Overlaps.size());
}

double
FidelityEvaluator::fidelity(const std::vector<ScheduledRotation> &Schedule,
                            unsigned EvalJobs,
                            EvalPrecision Precision) const {
  // The final rotation runs fused with the overlap accumulation; the
  // replay lambda stops one step short of it.
  const ScheduledRotation *Tail = Schedule.empty() ? nullptr : &Schedule.back();
  const size_t ReplaySteps = Schedule.size() - (Tail ? 1 : 0);
  const auto Replay = [&](auto &State) {
    for (size_t I = 0; I < ReplaySteps; ++I)
      State.applyPauliExpAll(Schedule[I].String, Schedule[I].Tau);
  };
  if (Precision == EvalPrecision::FP32)
    return evaluatePanels<StatePanelF32>(EvalJobs, Replay, Tail);
  return evaluatePanels<StatePanel>(EvalJobs, Replay, Tail);
}

double FidelityEvaluator::stateFidelity(
    const std::vector<ScheduledRotation> &Schedule, unsigned EvalJobs,
    EvalPrecision Precision) const {
  const ScheduledRotation *Tail = Schedule.empty() ? nullptr : &Schedule.back();
  const size_t ReplaySteps = Schedule.size() - (Tail ? 1 : 0);
  const auto Replay = [&](auto &State) {
    for (size_t I = 0; I < ReplaySteps; ++I)
      State.applyPauliExpAll(Schedule[I].String, Schedule[I].Tau);
  };
  const auto Reduce = [](const std::vector<Complex> &Overlaps) {
    double Acc = 0.0;
    for (const Complex &O : Overlaps)
      Acc += std::norm(O);
    return Acc / static_cast<double>(Overlaps.size());
  };
  if (Precision == EvalPrecision::FP32)
    return Reduce(collectOverlaps<StatePanelF32>(EvalJobs, Replay, Tail));
  return Reduce(collectOverlaps<StatePanel>(EvalJobs, Replay, Tail));
}

double FidelityEvaluator::fidelityOfCircuit(const Circuit &C,
                                            unsigned EvalJobs) const {
  assert(C.numQubits() == NQubits && "circuit width mismatch");
  return evaluatePanels<StatePanel>(
      EvalJobs, [&](auto &State) { State.applyAll(C); });
}
