//===- sim/Kernels.h - Dispatched statevector kernels -----------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-dispatched SIMD layer under StateVector and StatePanel.
///
/// Every hot evaluation loop — the fused Pauli-exponential butterfly, the
/// Z-diagonal fast path, and the panel applyPauliExpAll sweeps — resolves
/// through one table of kernel entry points (Ops). The table is selected
/// once per process from the CPU probe (support/CpuFeatures.h): AVX2+FMA
/// hosts get 256-bit kernels, AArch64 gets NEON, everything else — and any
/// process started with MARQSIM_FORCE_SCALAR=1 — gets the scalar reference
/// implementations, which are always compiled in.
///
/// Determinism contract: the FP64 vector kernels perform, lane for lane,
/// exactly the per-element arithmetic of the scalar reference — the same
/// complex-multiply expansion std::complex<double> uses, each operation
/// individually rounded, no fused multiply-adds in value-producing
/// arithmetic (the whole project builds with -ffp-contract=off, and the
/// SIMD translation units use discrete mul/add/sub intrinsics only).
/// Amplitude updates are elementwise-independent maps, so lane order never
/// matters, and every dispatch choice emits bit-identical amplitudes; the
/// frozen fidelity goldens hold on every ISA. The FP32 panel kernels keep
/// the same scalar-vs-SIMD bit-identity among themselves but are only
/// tolerance-comparable to FP64 (sim/Precision.h).
///
/// Panel-plane layout contract (BasicStatePanel): split real/imag planes,
/// row-major by basis index — element (X, column) of a plane lives at
/// [X * Stride + column] — with Stride a multiple of 8 elements and both
/// plane bases 64-byte aligned. Rows therefore start on cache lines and a
/// column sweep is a run of contiguous full-width vector lanes; kernels
/// process the zero-filled padding lanes along with the live ones (lanes
/// never interact, so padding stays inert).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_KERNELS_H
#define MARQSIM_SIM_KERNELS_H

#include "linalg/Matrix.h"
#include "pauli/PauliString.h"

#include <complex>
#include <cstdint>

namespace marqsim {

namespace detail {
/// The per-rotation phase table of one Pauli string. applyToBasis(X) is
/// always +/- i^{|xMask & zMask|} with the sign given by the parity of
/// zMask & X, so a kernel can precompute the two constants once per
/// rotation and select per element — the selected value is bit-identical
/// to what PauliString::applyToBasis returns, at a fraction of the cost.
struct PauliPhases {
  Complex Pos, Neg;
  uint64_t ZMask;

  explicit PauliPhases(const PauliString &P) : ZMask(P.zMask()) {
    static const Complex IPow[4] = {
        {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
    Pos = IPow[__builtin_popcountll(P.xMask() & P.zMask()) % 4];
    Neg = -Pos; // the same unary negation applyToBasis applies
  }

  const Complex &at(uint64_t X) const {
    return (__builtin_popcountll(ZMask & X) & 1) ? Neg : Pos;
  }
};

/// The FP32 tier's phase table: the same +/- i^k constants narrowed once.
/// The constants are 0/±1 valued, so the narrowing is exact.
struct PauliPhasesF32 {
  std::complex<float> Pos, Neg;
  uint64_t ZMask;

  explicit PauliPhasesF32(const PauliPhases &P)
      : Pos(static_cast<float>(P.Pos.real()),
            static_cast<float>(P.Pos.imag())),
        Neg(-Pos), ZMask(P.ZMask) {}

  const std::complex<float> &at(uint64_t X) const {
    return (__builtin_popcountll(ZMask & X) & 1) ? Neg : Pos;
  }
};
} // namespace detail

namespace kernels {

using ComplexF = std::complex<float>;

/// One implementation tier of every dispatched kernel. CosT carries
/// (cos Theta, 0) and ISinT (0, sin Theta) — the exact constants the
/// scalar expressions use, so the 0-component products (and their
/// sign-of-zero effects) are reproduced verbatim.
struct Ops {
  /// Tier name as reported by --stats and the bench CSVs:
  /// "avx2-fma", "neon", or "scalar".
  const char *Name;

  /// exp(i Theta P) on one interleaved std::complex<double> statevector,
  /// xMask != 0: the fused in-place butterfly over {X, X ^ xMask} pairs.
  void (*ExpButterflyF64)(Complex *Amp, size_t Dim, uint64_t XM,
                          Complex CosT, Complex ISinT,
                          const detail::PauliPhases &Ph);

  /// exp(i Theta P) for Z-only strings (xMask == 0): the per-element
  /// diagonal fast path on an interleaved statevector.
  void (*ExpDiagonalF64)(Complex *Amp, size_t Dim, Complex CosT,
                         Complex ISinT, const detail::PauliPhases &Ph);

  /// The panel butterfly sweep over SoA planes (layout contract above).
  void (*PanelExpButterflyF64)(double *Re, double *Im, size_t Dim,
                               size_t Stride, uint64_t XM, Complex CosT,
                               Complex ISinT, const detail::PauliPhases &Ph);

  /// The panel Z-diagonal sweep over SoA planes.
  void (*PanelExpDiagonalF64)(double *Re, double *Im, size_t Dim,
                              size_t Stride, Complex CosT, Complex ISinT,
                              const detail::PauliPhases &Ph);

  /// FP32 panel butterfly: identical structure, float planes, twice the
  /// lanes per vector.
  void (*PanelExpButterflyF32)(float *Re, float *Im, size_t Dim,
                               size_t Stride, uint64_t XM, ComplexF CosT,
                               ComplexF ISinT,
                               const detail::PauliPhasesF32 &Ph);

  /// FP32 panel Z-diagonal sweep.
  void (*PanelExpDiagonalF32)(float *Re, float *Im, size_t Dim,
                              size_t Stride, ComplexF CosT, ComplexF ISinT,
                              const detail::PauliPhasesF32 &Ph);
};

/// The dispatched table: selected on first use from the CPU probe and the
/// MARQSIM_FORCE_SCALAR environment variable, then cached. Thread-safe.
const Ops &active();

/// Name of the dispatched tier ("avx2-fma" / "neon" / "scalar").
const char *activeName();

/// The always-available scalar reference tier.
const Ops &scalarOps();

/// True when MARQSIM_FORCE_SCALAR is set (non-empty, not "0") in the
/// process environment.
bool forcedScalarByEnv();

/// Test/bench hook: pin dispatch to the scalar tier (true) or to the best
/// tier the CPU supports regardless of the environment (false). Production
/// code never calls this; use selectAuto() to restore the default policy.
void selectForTesting(bool ForceScalar);

/// Restores the default dispatch policy (CPU probe + environment).
void selectAuto();

namespace detail {
/// Per-ISA tables; null when the binary was built without the ISA or the
/// host CPU lacks it. Defined in KernelsAVX2.cpp / KernelsNEON.cpp so the
/// stubs exist on every platform.
const Ops *avx2Ops();
const Ops *neonOps();
} // namespace detail

} // namespace kernels
} // namespace marqsim

#endif // MARQSIM_SIM_KERNELS_H
