//===- sim/Kernels.h - Dispatched statevector kernels -----------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-dispatched SIMD layer under StateVector and StatePanel.
///
/// Every hot evaluation loop — the fused Pauli-exponential butterfly, the
/// Z-diagonal fast path, the panel applyPauliExpAll sweeps, and the fused
/// final-rotation + target-overlap sweep — resolves through one table of
/// kernel entry points (Ops). The table is selected once per process from
/// the CPU probe (support/CpuFeatures.h), best tier first: AVX-512F/DQ
/// hosts whose OS enables the ZMM state get 512-bit kernels ("avx512"),
/// AVX2+FMA hosts get 256-bit kernels ("avx2-fma"), AArch64 gets NEON,
/// and everything else the scalar reference implementations, which are
/// always compiled in. MARQSIM_KERNEL_TIER pins a specific tier by name
/// (the legacy MARQSIM_FORCE_SCALAR=1 is an alias for "scalar"); pinning
/// a tier the host cannot run aborts the process with a message naming
/// the detected features, never a silent fallback.
///
/// Determinism contract: the FP64 vector kernels perform, lane for lane,
/// exactly the per-element arithmetic of the scalar reference — the same
/// complex-multiply expansion std::complex<double> uses, each operation
/// individually rounded, no fused multiply-adds in value-producing
/// arithmetic (the whole project builds with -ffp-contract=off, and the
/// SIMD translation units use discrete mul/add/sub intrinsics only).
/// Amplitude updates are elementwise-independent maps, so lane order never
/// matters, and every dispatch choice emits bit-identical amplitudes; the
/// frozen fidelity goldens hold on every ISA. The fused overlap kernels
/// accumulate each column's overlap as its own lane chain in ascending
/// basis order — the exact chain StatePanel::overlapWith runs — so fusing
/// never changes a single bit either. The FP32 kernels keep the same
/// scalar-vs-SIMD bit-identity among themselves but are only
/// tolerance-comparable to FP64 (sim/Precision.h).
///
/// Panel-plane layout contract (BasicStatePanel): split real/imag planes,
/// row-major by basis index — element (X, column) of a plane lives at
/// [X * Stride + column] — with Stride a multiple of one 64-byte vector
/// (8 doubles / 16 floats) and both plane bases 64-byte aligned. Rows
/// therefore start on cache lines and a column sweep is a run of
/// contiguous full-width vector lanes; kernels process the zero-filled
/// padding lanes along with the live ones (lanes never interact, so
/// padding stays inert).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_KERNELS_H
#define MARQSIM_SIM_KERNELS_H

#include "linalg/Matrix.h"
#include "pauli/PauliString.h"

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace marqsim {

namespace detail {
/// The per-rotation phase table of one Pauli string. applyToBasis(X) is
/// always +/- i^{|xMask & zMask|} with the sign given by the parity of
/// zMask & X, so a kernel can precompute the two constants once per
/// rotation and select per element — the selected value is bit-identical
/// to what PauliString::applyToBasis returns, at a fraction of the cost.
struct PauliPhases {
  Complex Pos, Neg;
  uint64_t ZMask;

  explicit PauliPhases(const PauliString &P) : ZMask(P.zMask()) {
    static const Complex IPow[4] = {
        {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
    Pos = IPow[__builtin_popcountll(P.xMask() & P.zMask()) % 4];
    Neg = -Pos; // the same unary negation applyToBasis applies
  }

  const Complex &at(uint64_t X) const {
    return (__builtin_popcountll(ZMask & X) & 1) ? Neg : Pos;
  }
};

/// The FP32 tier's phase table: the same +/- i^k constants narrowed once.
/// The constants are 0/±1 valued, so the narrowing is exact.
struct PauliPhasesF32 {
  std::complex<float> Pos, Neg;
  uint64_t ZMask;

  explicit PauliPhasesF32(const PauliPhases &P)
      : Pos(static_cast<float>(P.Pos.real()),
            static_cast<float>(P.Pos.imag())),
        Neg(-Pos), ZMask(P.ZMask) {}

  const std::complex<float> &at(uint64_t X) const {
    return (__builtin_popcountll(ZMask & X) & 1) ? Neg : Pos;
  }
};
} // namespace detail

namespace kernels {

using ComplexF = std::complex<float>;

/// One implementation tier of every dispatched kernel. CosT carries
/// (cos Theta, 0) and ISinT (0, sin Theta) — the exact constants the
/// scalar expressions use, so the 0-component products (and their
/// sign-of-zero effects) are reproduced verbatim.
struct Ops {
  /// Tier name as reported by --stats and the bench CSVs:
  /// "avx512", "avx2-fma", "neon", or "scalar".
  const char *Name;

  /// exp(i Theta P) on one interleaved std::complex<double> statevector,
  /// xMask != 0: the fused in-place butterfly over {X, X ^ xMask} pairs.
  void (*ExpButterflyF64)(Complex *Amp, size_t Dim, uint64_t XM,
                          Complex CosT, Complex ISinT,
                          const detail::PauliPhases &Ph);

  /// exp(i Theta P) for Z-only strings (xMask == 0): the per-element
  /// diagonal fast path on an interleaved statevector.
  void (*ExpDiagonalF64)(Complex *Amp, size_t Dim, Complex CosT,
                         Complex ISinT, const detail::PauliPhases &Ph);

  /// The panel butterfly sweep over SoA planes (layout contract above).
  void (*PanelExpButterflyF64)(double *Re, double *Im, size_t Dim,
                               size_t Stride, uint64_t XM, Complex CosT,
                               Complex ISinT, const detail::PauliPhases &Ph);

  /// The panel Z-diagonal sweep over SoA planes.
  void (*PanelExpDiagonalF64)(double *Re, double *Im, size_t Dim,
                              size_t Stride, Complex CosT, Complex ISinT,
                              const detail::PauliPhases &Ph);

  /// FP32 panel butterfly: identical structure, float planes, twice the
  /// lanes per vector.
  void (*PanelExpButterflyF32)(float *Re, float *Im, size_t Dim,
                               size_t Stride, uint64_t XM, ComplexF CosT,
                               ComplexF ISinT,
                               const detail::PauliPhasesF32 &Ph);

  /// FP32 panel Z-diagonal sweep.
  void (*PanelExpDiagonalF32)(float *Re, float *Im, size_t Dim,
                              size_t Stride, ComplexF CosT, ComplexF ISinT,
                              const detail::PauliPhasesF32 &Ph);

  /// exp(i Theta P) on one interleaved std::complex<float> statevector —
  /// the FP32 walk tier behind BasicStateVector<float> (xMask != 0).
  void (*ExpButterflyF32)(ComplexF *Amp, size_t Dim, uint64_t XM,
                          ComplexF CosT, ComplexF ISinT,
                          const detail::PauliPhasesF32 &Ph);

  /// The interleaved FP32 Z-diagonal fast path (xMask == 0).
  void (*ExpDiagonalF32)(ComplexF *Amp, size_t Dim, ComplexF CosT,
                         ComplexF ISinT, const detail::PauliPhasesF32 &Ph);

  /// Fused final-rotation + overlap sweep over an FP64 panel: applies
  /// exp(i Theta P) to the planes exactly like PanelExp{Butterfly,
  /// Diagonal}F64 (XM == 0 selects the diagonal path), then accumulates
  /// per-lane overlaps against a packed conjugated target panel in one
  /// streaming pass instead of one strided re-read per column.
  ///
  /// TRe / TImNeg hold the targets at the same [X * Stride + column]
  /// layout with the imaginary plane already negated (exact, sign flip
  /// only), so each lane's update is AccRe += TRe*ar - TImNeg*ai and
  /// AccIm += TRe*ai + TImNeg*ar — operation for operation the chain
  /// S += conj(Target[X]) * at(Col, X) runs in overlapWith. AccRe/AccIm
  /// are Stride doubles each, zeroed by the caller; lane L's final value
  /// is column L's overlap, accumulated in ascending basis order, so
  /// fused and unfused evaluation are bit-identical.
  void (*PanelExpOverlapF64)(double *Re, double *Im, size_t Dim,
                             size_t Stride, uint64_t XM, Complex CosT,
                             Complex ISinT, const detail::PauliPhases &Ph,
                             const double *TRe, const double *TImNeg,
                             double *AccRe, double *AccIm);

  /// The FP32 panel's fused final-rotation + overlap sweep: amplitudes
  /// rotate in float, then widen to double (exact) before the overlap
  /// multiply-accumulate — the same widening StatePanel::at performs, so
  /// fused FP32 overlaps equal the unfused FP32 overlaps bit for bit.
  /// Targets and accumulators stay double.
  void (*PanelExpOverlapF32)(float *Re, float *Im, size_t Dim,
                             size_t Stride, uint64_t XM, ComplexF CosT,
                             ComplexF ISinT,
                             const detail::PauliPhasesF32 &Ph,
                             const double *TRe, const double *TImNeg,
                             double *AccRe, double *AccIm);
};

/// The dispatched table: selected on first use from the CPU probe and the
/// MARQSIM_KERNEL_TIER / MARQSIM_FORCE_SCALAR environment overrides, then
/// cached. Thread-safe. Aborts the process (exit 1, message on stderr)
/// when the environment pins a tier this host cannot run.
const Ops &active();

/// Name of the dispatched tier ("avx512" / "avx2-fma" / "neon" /
/// "scalar").
const char *activeName();

/// Name of the best tier the CPU supports, ignoring every environment
/// override — what dispatch *would* pick on a clean environment. Stats
/// report detected vs selected so a pinned process is visible.
const char *detectedName();

/// The always-available scalar reference tier.
const Ops &scalarOps();

/// Every tier this host can run, best first; scalar is always last. The
/// list depends only on the CPU probe (never on the environment), so
/// test sweeps and bench tables are stable across pinned runs.
std::vector<const Ops *> availableOps();

/// Tier lookup by name. Returns null when the name is unknown or the
/// tier is not runnable on this host.
const Ops *findTier(const std::string &Name);

/// The environment's tier pin: MARQSIM_KERNEL_TIER verbatim, or "scalar"
/// when only the legacy MARQSIM_FORCE_SCALAR=1 alias is set; empty when
/// neither is set.
std::string tierOverrideFromEnv();

/// True when MARQSIM_FORCE_SCALAR is set (non-empty, not "0") in the
/// process environment.
bool forcedScalarByEnv();

/// Test/bench hook: pin dispatch to the scalar tier (true) or to the best
/// tier the CPU supports regardless of the environment (false). Production
/// code never calls this; use selectAuto() to restore the default policy.
void selectForTesting(bool ForceScalar);

/// Test/bench hook: pin dispatch to an explicit tier (one of
/// availableOps()). Restore with selectAuto().
void selectTierForTesting(const Ops &Tier);

/// Restores the default dispatch policy (CPU probe + environment).
void selectAuto();

namespace detail {
/// Per-ISA tables; null when the binary was built without the ISA or the
/// host CPU (or, for AVX-512, the OS XSAVE state) lacks it. Defined in
/// KernelsAVX512.cpp / KernelsAVX2.cpp / KernelsNEON.cpp so the stubs
/// exist on every platform.
const Ops *avx512Ops();
const Ops *avx2Ops();
const Ops *neonOps();
} // namespace detail

} // namespace kernels
} // namespace marqsim

#endif // MARQSIM_SIM_KERNELS_H
