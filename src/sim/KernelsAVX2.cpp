//===- sim/KernelsAVX2.cpp - AVX2 kernel tier --------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// 256-bit implementations of the dispatched kernels. This translation unit
// is compiled with -mavx2 -mfma (CMake sets the flags per file on x86-64
// hosts whose compiler accepts them); everywhere else the #if below leaves
// only the null stub, so the file builds on every platform.
//
// Bit-identity: every arithmetic intrinsic here is a discrete mul/add/sub
// (or addsub) — never an FMA — and each lane performs exactly the scalar
// reference's expression with the same operand values. IEEE-754 addition
// and multiplication round each operation independently of its neighbours,
// so lanes match the scalar results bit for bit, including zero signs
// (the 0-component products of CosT/ISinT are materialized, not elided).
// The FMA feature bit is still required for dispatch ("avx2-fma") so the
// tier name pins the microarchitecture class benchmarks report.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernels.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include "support/CpuFeatures.h"

#include <immintrin.h>

using namespace marqsim;
using marqsim::detail::PauliPhases;
using marqsim::detail::PauliPhasesF32;

namespace {

//===----------------------------------------------------------------------===//
// Interleaved complex helpers (statevector layout: [re, im] pairs)
//===----------------------------------------------------------------------===//

// w * a for two interleaved complexes per vector, with wr/wi already
// duplicated per lane pair. Scalar semantics per element:
//   re = wr*ar - wi*ai ; im = wr*ai + wi*ar
// t1 = [wr*ar, wr*ai], t2 = [wi*ai, wi*ar]; addsub subtracts in even
// lanes and adds in odd lanes — each lane one rounding, like scalar.
inline __m256d cmulDup(__m256d WrDup, __m256d WiDup, __m256d A) {
  const __m256d T1 = _mm256_mul_pd(WrDup, A);
  const __m256d ASwap = _mm256_permute_pd(A, 0x5); // [ai, ar] per complex
  const __m256d T2 = _mm256_mul_pd(WiDup, ASwap);
  return _mm256_addsub_pd(T1, T2);
}

// Same with a per-complex phase vector [pr0, pi0, pr1, pi1].
inline __m256d cmulVec(__m256d Ph, __m256d A) {
  const __m256d WrDup = _mm256_movedup_pd(Ph);        // [pr0,pr0,pr1,pr1]
  const __m256d WiDup = _mm256_permute_pd(Ph, 0xF);   // [pi0,pi0,pi1,pi1]
  return cmulDup(WrDup, WiDup, A);
}

// Loads the phases of two consecutive basis indices as one vector.
inline __m256d loadPhases(const PauliPhases &Ph, uint64_t X) {
  const __m128d P0 =
      _mm_loadu_pd(reinterpret_cast<const double *>(&Ph.at(X)));
  const __m128d P1 =
      _mm_loadu_pd(reinterpret_cast<const double *>(&Ph.at(X + 1)));
  return _mm256_set_m128d(P1, P0);
}

void avx2ExpButterflyF64(Complex *AmpC, size_t Dim, uint64_t XM, Complex CosT,
                         Complex ISinT, const PauliPhases &Ph) {
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  if (Pivot < 2) {
    // Pivot-0 pairs alternate element by element; the contiguous-run
    // layout below needs runs of at least two complexes, so defer to the
    // (bit-identical) scalar reference.
    kernels::scalarOps().ExpButterflyF64(AmpC, Dim, XM, CosT, ISinT, Ph);
    return;
  }
  double *Amp = reinterpret_cast<double *>(AmpC);
  const __m256d CDup = _mm256_set1_pd(CosT.real());
  const __m256d SDup = _mm256_set1_pd(ISinT.imag());
  const __m256d Zero = _mm256_setzero_pd();
  // X indices without the pivot bit form runs of Pivot consecutive values
  // every 2*Pivot; their partners Y = X ^ XM are consecutive too (XM has
  // no bits below the pivot), so both sides load as whole vectors.
  for (uint64_t Base = 0; Base < Dim; Base += 2 * Pivot) {
    for (uint64_t Off = 0; Off < Pivot; Off += 2) {
      const uint64_t X = Base + Off;
      const uint64_t Y = X ^ XM;
      double *PX = Amp + 2 * X;
      double *PY = Amp + 2 * Y;
      const __m256d A0 = _mm256_load_pd(PX);
      const __m256d A1 = _mm256_load_pd(PY);
      const __m256d PhX = loadPhases(Ph, X);
      const __m256d PhY = loadPhases(Ph, Y);
      // new0 = CosT*A0 + ISinT*(PhY*A1); CosT = (c,0), ISinT = (0,s).
      const __m256d T0 = cmulDup(CDup, Zero, A0);
      const __m256d U0 = cmulDup(Zero, SDup, cmulVec(PhY, A1));
      const __m256d T1 = cmulDup(CDup, Zero, A1);
      const __m256d U1 = cmulDup(Zero, SDup, cmulVec(PhX, A0));
      _mm256_store_pd(PX, _mm256_add_pd(T0, U0));
      _mm256_store_pd(PY, _mm256_add_pd(T1, U1));
    }
  }
}

void avx2ExpDiagonalF64(Complex *AmpC, size_t Dim, Complex CosT, Complex ISinT,
                        const PauliPhases &Ph) {
  if (Dim < 2) {
    kernels::scalarOps().ExpDiagonalF64(AmpC, Dim, CosT, ISinT, Ph);
    return;
  }
  double *Amp = reinterpret_cast<double *>(AmpC);
  const __m256d CDup = _mm256_set1_pd(CosT.real());
  const __m256d SDup = _mm256_set1_pd(ISinT.imag());
  const __m256d Zero = _mm256_setzero_pd();
  for (uint64_t X = 0; X < Dim; X += 2) {
    double *P = Amp + 2 * X;
    const __m256d A = _mm256_load_pd(P);
    const __m256d T = cmulDup(CDup, Zero, A);
    const __m256d U = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A));
    _mm256_store_pd(P, _mm256_add_pd(T, U));
  }
}

//===----------------------------------------------------------------------===//
// Interleaved FP32 statevector kernels (4 complexes per __m256)
//===----------------------------------------------------------------------===//

inline __m256 cmulDup(__m256 WrDup, __m256 WiDup, __m256 A) {
  const __m256 T1 = _mm256_mul_ps(WrDup, A);
  const __m256 ASwap = _mm256_permute_ps(A, 0xB1); // [ai, ar] per complex
  const __m256 T2 = _mm256_mul_ps(WiDup, ASwap);
  return _mm256_addsub_ps(T1, T2);
}

inline __m256 cmulVec(__m256 Ph, __m256 A) {
  return cmulDup(_mm256_moveldup_ps(Ph), _mm256_movehdup_ps(Ph), A);
}

// Loads the phases of four consecutive basis indices as one vector.
inline __m256 loadPhases(const PauliPhasesF32 &Ph, uint64_t X) {
  const kernels::ComplexF P0 = Ph.at(X);
  const kernels::ComplexF P1 = Ph.at(X + 1);
  const kernels::ComplexF P2 = Ph.at(X + 2);
  const kernels::ComplexF P3 = Ph.at(X + 3);
  return _mm256_set_ps(P3.imag(), P3.real(), P2.imag(), P2.real(), P1.imag(),
                       P1.real(), P0.imag(), P0.real());
}

void avx2ExpButterflyF32(kernels::ComplexF *AmpC, size_t Dim, uint64_t XM,
                         kernels::ComplexF CosT, kernels::ComplexF ISinT,
                         const PauliPhasesF32 &Ph) {
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  if (Pivot < 4) {
    // A float vector holds four complexes; shorter pivot runs cannot load
    // contiguously, so defer to the (lane-identical) scalar reference.
    kernels::scalarOps().ExpButterflyF32(AmpC, Dim, XM, CosT, ISinT, Ph);
    return;
  }
  float *Amp = reinterpret_cast<float *>(AmpC);
  const __m256 CDup = _mm256_set1_ps(CosT.real());
  const __m256 SDup = _mm256_set1_ps(ISinT.imag());
  const __m256 Zero = _mm256_setzero_ps();
  for (uint64_t Base = 0; Base < Dim; Base += 2 * Pivot) {
    for (uint64_t Off = 0; Off < Pivot; Off += 4) {
      const uint64_t X = Base + Off;
      const uint64_t Y = X ^ XM;
      float *PX = Amp + 2 * X;
      float *PY = Amp + 2 * Y;
      const __m256 A0 = _mm256_load_ps(PX);
      const __m256 A1 = _mm256_load_ps(PY);
      const __m256 T0 = cmulDup(CDup, Zero, A0);
      const __m256 U0 = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, Y), A1));
      const __m256 T1 = cmulDup(CDup, Zero, A1);
      const __m256 U1 = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A0));
      _mm256_store_ps(PX, _mm256_add_ps(T0, U0));
      _mm256_store_ps(PY, _mm256_add_ps(T1, U1));
    }
  }
}

void avx2ExpDiagonalF32(kernels::ComplexF *AmpC, size_t Dim,
                        kernels::ComplexF CosT, kernels::ComplexF ISinT,
                        const PauliPhasesF32 &Ph) {
  if (Dim < 4) {
    kernels::scalarOps().ExpDiagonalF32(AmpC, Dim, CosT, ISinT, Ph);
    return;
  }
  float *Amp = reinterpret_cast<float *>(AmpC);
  const __m256 CDup = _mm256_set1_ps(CosT.real());
  const __m256 SDup = _mm256_set1_ps(ISinT.imag());
  const __m256 Zero = _mm256_setzero_ps();
  for (uint64_t X = 0; X < Dim; X += 4) {
    float *P = Amp + 2 * X;
    const __m256 A = _mm256_load_ps(P);
    const __m256 T = cmulDup(CDup, Zero, A);
    const __m256 U = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A));
    _mm256_store_ps(P, _mm256_add_ps(T, U));
  }
}

//===----------------------------------------------------------------------===//
// Panel kernels (split planes; a row is Stride contiguous lanes)
//===----------------------------------------------------------------------===//

// SoA complex product pieces, scalar semantics per lane:
//   (w * a).re = wr*ar - wi*ai ; (w * a).im = wr*ai + wi*ar
inline __m256d mulRe(__m256d Wr, __m256d Wi, __m256d Ar, __m256d Ai) {
  return _mm256_sub_pd(_mm256_mul_pd(Wr, Ar), _mm256_mul_pd(Wi, Ai));
}
inline __m256d mulIm(__m256d Wr, __m256d Wi, __m256d Ar, __m256d Ai) {
  return _mm256_add_pd(_mm256_mul_pd(Wr, Ai), _mm256_mul_pd(Wi, Ar));
}
inline __m256 mulRe(__m256 Wr, __m256 Wi, __m256 Ar, __m256 Ai) {
  return _mm256_sub_ps(_mm256_mul_ps(Wr, Ar), _mm256_mul_ps(Wi, Ai));
}
inline __m256 mulIm(__m256 Wr, __m256 Wi, __m256 Ar, __m256 Ai) {
  return _mm256_add_ps(_mm256_mul_ps(Wr, Ai), _mm256_mul_ps(Wi, Ar));
}

// One panel element update, all lanes of one row chunk:
//   N = CosT * A + ISinT * (PhW * A2)
// where A2 is the partner row (or A itself on the diagonal path).
#define MARQSIM_PANEL_UPDATE(VEC, Ar, Ai, Pr, Pi, A2r, A2i, NrOut, NiOut)      \
  do {                                                                         \
    const VEC Ur = mulRe(Pr, Pi, A2r, A2i);                                    \
    const VEC Ui = mulIm(Pr, Pi, A2r, A2i);                                    \
    const VEC T2r = mulRe(Zero, SDup, Ur, Ui);                                 \
    const VEC T2i = mulIm(Zero, SDup, Ur, Ui);                                 \
    const VEC T1r = mulRe(CDup, Zero, Ar, Ai);                                 \
    const VEC T1i = mulIm(CDup, Zero, Ar, Ai);                                 \
    NrOut = addv(T1r, T2r);                                                    \
    NiOut = addv(T1i, T2i);                                                    \
  } while (0)

inline __m256d addv(__m256d A, __m256d B) { return _mm256_add_pd(A, B); }
inline __m256 addv(__m256 A, __m256 B) { return _mm256_add_ps(A, B); }

void avx2PanelExpButterflyF64(double *Re, double *Im, size_t Dim,
                              size_t Stride, uint64_t XM, Complex CosT,
                              Complex ISinT, const PauliPhases &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  const __m256d CDup = _mm256_set1_pd(CosT.real());
  const __m256d SDup = _mm256_set1_pd(ISinT.imag());
  const __m256d Zero = _mm256_setzero_pd();
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const Complex PhX = Ph.at(X);
    const Complex PhY = Ph.at(Y);
    const __m256d PXr = _mm256_set1_pd(PhX.real());
    const __m256d PXi = _mm256_set1_pd(PhX.imag());
    const __m256d PYr = _mm256_set1_pd(PhY.real());
    const __m256d PYi = _mm256_set1_pd(PhY.imag());
    double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    double *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; L += 4) {
      const __m256d A0r = _mm256_load_pd(ReX + L);
      const __m256d A0i = _mm256_load_pd(ImX + L);
      const __m256d A1r = _mm256_load_pd(ReY + L);
      const __m256d A1i = _mm256_load_pd(ImY + L);
      __m256d N0r, N0i, N1r, N1i;
      MARQSIM_PANEL_UPDATE(__m256d, A0r, A0i, PYr, PYi, A1r, A1i, N0r, N0i);
      MARQSIM_PANEL_UPDATE(__m256d, A1r, A1i, PXr, PXi, A0r, A0i, N1r, N1i);
      _mm256_store_pd(ReX + L, N0r);
      _mm256_store_pd(ImX + L, N0i);
      _mm256_store_pd(ReY + L, N1r);
      _mm256_store_pd(ImY + L, N1i);
    }
  }
}

void avx2PanelExpDiagonalF64(double *Re, double *Im, size_t Dim, size_t Stride,
                             Complex CosT, Complex ISinT,
                             const PauliPhases &Ph) {
  const __m256d CDup = _mm256_set1_pd(CosT.real());
  const __m256d SDup = _mm256_set1_pd(ISinT.imag());
  const __m256d Zero = _mm256_setzero_pd();
  for (uint64_t X = 0; X < Dim; ++X) {
    const Complex PhX = Ph.at(X);
    const __m256d Pr = _mm256_set1_pd(PhX.real());
    const __m256d Pi = _mm256_set1_pd(PhX.imag());
    double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; L += 4) {
      const __m256d Ar = _mm256_load_pd(ReX + L);
      const __m256d Ai = _mm256_load_pd(ImX + L);
      __m256d Nr, Ni;
      MARQSIM_PANEL_UPDATE(__m256d, Ar, Ai, Pr, Pi, Ar, Ai, Nr, Ni);
      _mm256_store_pd(ReX + L, Nr);
      _mm256_store_pd(ImX + L, Ni);
    }
  }
}

void avx2PanelExpButterflyF32(float *Re, float *Im, size_t Dim, size_t Stride,
                              uint64_t XM, kernels::ComplexF CosT,
                              kernels::ComplexF ISinT,
                              const PauliPhasesF32 &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  const __m256 CDup = _mm256_set1_ps(CosT.real());
  const __m256 SDup = _mm256_set1_ps(ISinT.imag());
  const __m256 Zero = _mm256_setzero_ps();
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const kernels::ComplexF PhX = Ph.at(X);
    const kernels::ComplexF PhY = Ph.at(Y);
    const __m256 PXr = _mm256_set1_ps(PhX.real());
    const __m256 PXi = _mm256_set1_ps(PhX.imag());
    const __m256 PYr = _mm256_set1_ps(PhY.real());
    const __m256 PYi = _mm256_set1_ps(PhY.imag());
    float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    float *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; L += 8) {
      const __m256 A0r = _mm256_load_ps(ReX + L);
      const __m256 A0i = _mm256_load_ps(ImX + L);
      const __m256 A1r = _mm256_load_ps(ReY + L);
      const __m256 A1i = _mm256_load_ps(ImY + L);
      __m256 N0r, N0i, N1r, N1i;
      MARQSIM_PANEL_UPDATE(__m256, A0r, A0i, PYr, PYi, A1r, A1i, N0r, N0i);
      MARQSIM_PANEL_UPDATE(__m256, A1r, A1i, PXr, PXi, A0r, A0i, N1r, N1i);
      _mm256_store_ps(ReX + L, N0r);
      _mm256_store_ps(ImX + L, N0i);
      _mm256_store_ps(ReY + L, N1r);
      _mm256_store_ps(ImY + L, N1i);
    }
  }
}

void avx2PanelExpDiagonalF32(float *Re, float *Im, size_t Dim, size_t Stride,
                             kernels::ComplexF CosT, kernels::ComplexF ISinT,
                             const PauliPhasesF32 &Ph) {
  const __m256 CDup = _mm256_set1_ps(CosT.real());
  const __m256 SDup = _mm256_set1_ps(ISinT.imag());
  const __m256 Zero = _mm256_setzero_ps();
  for (uint64_t X = 0; X < Dim; ++X) {
    const kernels::ComplexF PhX = Ph.at(X);
    const __m256 Pr = _mm256_set1_ps(PhX.real());
    const __m256 Pi = _mm256_set1_ps(PhX.imag());
    float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; L += 8) {
      const __m256 Ar = _mm256_load_ps(ReX + L);
      const __m256 Ai = _mm256_load_ps(ImX + L);
      __m256 Nr, Ni;
      MARQSIM_PANEL_UPDATE(__m256, Ar, Ai, Pr, Pi, Ar, Ai, Nr, Ni);
      _mm256_store_ps(ReX + L, Nr);
      _mm256_store_ps(ImX + L, Ni);
    }
  }
}

//===----------------------------------------------------------------------===//
// Fused final-rotation + overlap kernels
//===----------------------------------------------------------------------===//

// The streaming accumulation pass shared by both fused kernels: row X's
// contribution lands on every lane's chain before row X+1's, exactly the
// ascending-basis order of StatePanel::overlapWith. Each mulRe/mulIm is
// the discretely-rounded expansion of conj(Target) * Amp with the target
// imaginary plane pre-negated.
void avx2PanelOverlapAccumF64(const double *Re, const double *Im, size_t Dim,
                              size_t Stride, const double *TRe,
                              const double *TImNeg, double *AccRe,
                              double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WrX = TRe + X * Stride, *WiX = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; L += 4) {
      const __m256d Ar = _mm256_load_pd(ReX + L);
      const __m256d Ai = _mm256_load_pd(ImX + L);
      const __m256d Wr = _mm256_load_pd(WrX + L);
      const __m256d Wi = _mm256_load_pd(WiX + L);
      const __m256d SumR =
          _mm256_add_pd(_mm256_load_pd(AccRe + L), mulRe(Wr, Wi, Ar, Ai));
      const __m256d SumI =
          _mm256_add_pd(_mm256_load_pd(AccIm + L), mulIm(Wr, Wi, Ar, Ai));
      _mm256_store_pd(AccRe + L, SumR);
      _mm256_store_pd(AccIm + L, SumI);
    }
  }
}

// FP32 amplitudes widen to double (exact) before the double
// multiply-accumulate, matching StatePanel::at's widening.
void avx2PanelOverlapAccumF32(const float *Re, const float *Im, size_t Dim,
                              size_t Stride, const double *TRe,
                              const double *TImNeg, double *AccRe,
                              double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WrX = TRe + X * Stride, *WiX = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; L += 4) {
      const __m256d Ar = _mm256_cvtps_pd(_mm_load_ps(ReX + L));
      const __m256d Ai = _mm256_cvtps_pd(_mm_load_ps(ImX + L));
      const __m256d Wr = _mm256_load_pd(WrX + L);
      const __m256d Wi = _mm256_load_pd(WiX + L);
      const __m256d SumR =
          _mm256_add_pd(_mm256_load_pd(AccRe + L), mulRe(Wr, Wi, Ar, Ai));
      const __m256d SumI =
          _mm256_add_pd(_mm256_load_pd(AccIm + L), mulIm(Wr, Wi, Ar, Ai));
      _mm256_store_pd(AccRe + L, SumR);
      _mm256_store_pd(AccIm + L, SumI);
    }
  }
}

void avx2PanelExpOverlapF64(double *Re, double *Im, size_t Dim, size_t Stride,
                            uint64_t XM, Complex CosT, Complex ISinT,
                            const PauliPhases &Ph, const double *TRe,
                            const double *TImNeg, double *AccRe,
                            double *AccIm) {
  if (XM == 0)
    avx2PanelExpDiagonalF64(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    avx2PanelExpButterflyF64(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  avx2PanelOverlapAccumF64(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

void avx2PanelExpOverlapF32(float *Re, float *Im, size_t Dim, size_t Stride,
                            uint64_t XM, kernels::ComplexF CosT,
                            kernels::ComplexF ISinT, const PauliPhasesF32 &Ph,
                            const double *TRe, const double *TImNeg,
                            double *AccRe, double *AccIm) {
  if (XM == 0)
    avx2PanelExpDiagonalF32(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    avx2PanelExpButterflyF32(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  avx2PanelOverlapAccumF32(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

const kernels::Ops AVX2Ops = {
    "avx2-fma",
    avx2ExpButterflyF64,
    avx2ExpDiagonalF64,
    avx2PanelExpButterflyF64,
    avx2PanelExpDiagonalF64,
    avx2PanelExpButterflyF32,
    avx2PanelExpDiagonalF32,
    avx2ExpButterflyF32,
    avx2ExpDiagonalF32,
    avx2PanelExpOverlapF64,
    avx2PanelExpOverlapF32,
};

} // namespace

const kernels::Ops *kernels::detail::avx2Ops() {
  const CpuFeatures &F = cpuFeatures();
  return (F.AVX2 && F.FMA) ? &AVX2Ops : nullptr;
}

#else // !(x86-64 with AVX2+FMA codegen)

const marqsim::kernels::Ops *marqsim::kernels::detail::avx2Ops() {
  return nullptr;
}

#endif
