//===- sim/Precision.h - Evaluation precision tiers -------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The precision tiers of the fidelity-evaluation substrate.
///
/// FP64 is the default and the determinism contract: bit-identical results
/// for every kernel dispatch, worker count, and shard split, pinned by
/// frozen goldens. FP32 is an opt-in throughput tier for ratio sweeps —
/// panel columns evolve in single precision (twice the SIMD lanes, half
/// the memory traffic), per-rotation constants are rounded to float once,
/// and overlaps accumulate in double. FP32 results are defined only to a
/// tolerance of the FP64 value (see README "Evaluation kernels"), so every
/// bit-exact artifact path — shard manifests, frozen goldens — rejects it.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_PRECISION_H
#define MARQSIM_SIM_PRECISION_H

#include <optional>
#include <string>

namespace marqsim {

/// Which floating-point tier evaluates fidelity columns.
enum class EvalPrecision {
  FP64, ///< double everywhere; the bit-exact default
  FP32, ///< float panel amplitudes; tolerance-defined, opt-in
};

/// CLI/stats spelling of a tier ("fp64" / "fp32").
inline const char *precisionName(EvalPrecision P) {
  return P == EvalPrecision::FP32 ? "fp32" : "fp64";
}

/// Inverse of precisionName. std::nullopt for unknown spellings.
inline std::optional<EvalPrecision> parsePrecision(const std::string &Name) {
  if (Name == "fp64")
    return EvalPrecision::FP64;
  if (Name == "fp32")
    return EvalPrecision::FP32;
  return std::nullopt;
}

} // namespace marqsim

#endif // MARQSIM_SIM_PRECISION_H
