//===- sim/KernelsAVX512.cpp - AVX-512 kernel tier ---------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// 512-bit implementations of the dispatched kernels: 8 double lanes / 16
// float lanes per vector. The translation unit is compiled with -mavx512f
// -mavx512dq (CMake sets the flags per file on x86-64 hosts whose compiler
// accepts them); everywhere else the #if below leaves only the null stub.
// Dispatch additionally requires the OS XSAVE state (CpuFeatures::AVX512OS)
// so ZMM registers are actually preserved across context switches.
//
// Bit-identity: AVX-512 has no addsub instruction, so the interleaved
// kernels realize the subtract-in-even-lanes step as an exact sign-bit XOR
// followed by one rounded add — IEEE-754 defines a - b as a + (-b), so
// this matches _mm256_addsub_pd and the scalar expression bit for bit.
// Every other arithmetic intrinsic is a discrete mul/add/sub, never an
// FMA, each lane evaluating the scalar reference's exact expression on the
// same operand values, zero signs included.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernels.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512DQ__)

#include "support/CpuFeatures.h"

#include <immintrin.h>

using namespace marqsim;
using marqsim::detail::PauliPhases;
using marqsim::detail::PauliPhasesF32;

namespace {

/// Short-run and tiny-dim fallback: the next tier down the precedence
/// chain, which keeps its own fallbacks — every path ends at the scalar
/// reference, and every hop is bit-identical.
const kernels::Ops &fallbackOps() {
  if (const kernels::Ops *V = kernels::detail::avx2Ops())
    return *V;
  return kernels::scalarOps();
}

//===----------------------------------------------------------------------===//
// Interleaved complex helpers (statevector layout: [re, im] pairs)
//===----------------------------------------------------------------------===//

// addsub emulation: flip the sign of the even (real-slot) lanes with an
// exact XOR, then add — subtract in even lanes, add in odd lanes, one
// rounding per lane, exactly _mm256_addsub_pd's semantics.
inline __m512d addsub(__m512d A, __m512d B) {
  constexpr long long SignBit = static_cast<long long>(0x8000000000000000ULL);
  const __m512d SignEven = _mm512_castsi512_pd(
      _mm512_set_epi64(0, SignBit, 0, SignBit, 0, SignBit, 0, SignBit));
  return _mm512_add_pd(A, _mm512_xor_pd(B, SignEven));
}

inline __m512 addsub(__m512 A, __m512 B) {
  // Each 64-bit chunk is one complex: sign bit in the low (real) dword.
  const __m512 SignEven =
      _mm512_castsi512_ps(_mm512_set1_epi64(0x0000000080000000LL));
  return _mm512_add_ps(A, _mm512_xor_ps(B, SignEven));
}

// w * a for four interleaved complexes, wr/wi duplicated per lane pair:
//   re = wr*ar - wi*ai ; im = wr*ai + wi*ar
inline __m512d cmulDup(__m512d WrDup, __m512d WiDup, __m512d A) {
  const __m512d T1 = _mm512_mul_pd(WrDup, A);
  const __m512d ASwap = _mm512_permute_pd(A, 0x55); // [ai, ar] per complex
  const __m512d T2 = _mm512_mul_pd(WiDup, ASwap);
  return addsub(T1, T2);
}

inline __m512 cmulDup(__m512 WrDup, __m512 WiDup, __m512 A) {
  const __m512 T1 = _mm512_mul_ps(WrDup, A);
  const __m512 ASwap = _mm512_permute_ps(A, 0xB1); // [ai, ar] per complex
  const __m512 T2 = _mm512_mul_ps(WiDup, ASwap);
  return addsub(T1, T2);
}

// Same with a per-complex phase vector [pr0, pi0, pr1, pi1, ...].
inline __m512d cmulVec(__m512d Ph, __m512d A) {
  return cmulDup(_mm512_movedup_pd(Ph), _mm512_permute_pd(Ph, 0xFF), A);
}

inline __m512 cmulVec(__m512 Ph, __m512 A) {
  return cmulDup(_mm512_moveldup_ps(Ph), _mm512_movehdup_ps(Ph), A);
}

// Loads the phases of four consecutive basis indices as one vector.
inline __m512d loadPhases(const PauliPhases &Ph, uint64_t X) {
  alignas(64) double Buf[8];
  for (int I = 0; I < 4; ++I) {
    const Complex &P = Ph.at(X + I);
    Buf[2 * I] = P.real();
    Buf[2 * I + 1] = P.imag();
  }
  return _mm512_load_pd(Buf);
}

// Loads the phases of eight consecutive basis indices as one vector.
inline __m512 loadPhases(const PauliPhasesF32 &Ph, uint64_t X) {
  alignas(64) float Buf[16];
  for (int I = 0; I < 8; ++I) {
    const kernels::ComplexF P = Ph.at(X + I);
    Buf[2 * I] = P.real();
    Buf[2 * I + 1] = P.imag();
  }
  return _mm512_load_ps(Buf);
}

void avx512ExpButterflyF64(Complex *AmpC, size_t Dim, uint64_t XM,
                           Complex CosT, Complex ISinT,
                           const PauliPhases &Ph) {
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  if (Pivot < 4) {
    // A 512-bit vector holds four double complexes; shorter pivot runs
    // cannot load contiguously, so defer down the (bit-identical) chain.
    fallbackOps().ExpButterflyF64(AmpC, Dim, XM, CosT, ISinT, Ph);
    return;
  }
  double *Amp = reinterpret_cast<double *>(AmpC);
  const __m512d CDup = _mm512_set1_pd(CosT.real());
  const __m512d SDup = _mm512_set1_pd(ISinT.imag());
  const __m512d Zero = _mm512_setzero_pd();
  // X indices without the pivot bit form runs of Pivot consecutive values
  // every 2*Pivot; their partners Y = X ^ XM are consecutive too.
  for (uint64_t Base = 0; Base < Dim; Base += 2 * Pivot) {
    for (uint64_t Off = 0; Off < Pivot; Off += 4) {
      const uint64_t X = Base + Off;
      const uint64_t Y = X ^ XM;
      double *PX = Amp + 2 * X;
      double *PY = Amp + 2 * Y;
      const __m512d A0 = _mm512_load_pd(PX);
      const __m512d A1 = _mm512_load_pd(PY);
      // new0 = CosT*A0 + ISinT*(PhY*A1); CosT = (c,0), ISinT = (0,s).
      const __m512d T0 = cmulDup(CDup, Zero, A0);
      const __m512d U0 = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, Y), A1));
      const __m512d T1 = cmulDup(CDup, Zero, A1);
      const __m512d U1 = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A0));
      _mm512_store_pd(PX, _mm512_add_pd(T0, U0));
      _mm512_store_pd(PY, _mm512_add_pd(T1, U1));
    }
  }
}

void avx512ExpDiagonalF64(Complex *AmpC, size_t Dim, Complex CosT,
                          Complex ISinT, const PauliPhases &Ph) {
  if (Dim < 4) {
    fallbackOps().ExpDiagonalF64(AmpC, Dim, CosT, ISinT, Ph);
    return;
  }
  double *Amp = reinterpret_cast<double *>(AmpC);
  const __m512d CDup = _mm512_set1_pd(CosT.real());
  const __m512d SDup = _mm512_set1_pd(ISinT.imag());
  const __m512d Zero = _mm512_setzero_pd();
  for (uint64_t X = 0; X < Dim; X += 4) {
    double *P = Amp + 2 * X;
    const __m512d A = _mm512_load_pd(P);
    const __m512d T = cmulDup(CDup, Zero, A);
    const __m512d U = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A));
    _mm512_store_pd(P, _mm512_add_pd(T, U));
  }
}

void avx512ExpButterflyF32(kernels::ComplexF *AmpC, size_t Dim, uint64_t XM,
                           kernels::ComplexF CosT, kernels::ComplexF ISinT,
                           const PauliPhasesF32 &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  if (Pivot < 8) {
    // Eight float complexes per vector; the AVX2 tier covers runs of 4+.
    fallbackOps().ExpButterflyF32(AmpC, Dim, XM, CosT, ISinT, Ph);
    return;
  }
  float *Amp = reinterpret_cast<float *>(AmpC);
  const __m512 CDup = _mm512_set1_ps(CosT.real());
  const __m512 SDup = _mm512_set1_ps(ISinT.imag());
  const __m512 Zero = _mm512_setzero_ps();
  for (uint64_t Base = 0; Base < Dim; Base += 2 * Pivot) {
    for (uint64_t Off = 0; Off < Pivot; Off += 8) {
      const uint64_t X = Base + Off;
      const uint64_t Y = X ^ XM;
      float *PX = Amp + 2 * X;
      float *PY = Amp + 2 * Y;
      const __m512 A0 = _mm512_load_ps(PX);
      const __m512 A1 = _mm512_load_ps(PY);
      const __m512 T0 = cmulDup(CDup, Zero, A0);
      const __m512 U0 = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, Y), A1));
      const __m512 T1 = cmulDup(CDup, Zero, A1);
      const __m512 U1 = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A0));
      _mm512_store_ps(PX, _mm512_add_ps(T0, U0));
      _mm512_store_ps(PY, _mm512_add_ps(T1, U1));
    }
  }
}

void avx512ExpDiagonalF32(kernels::ComplexF *AmpC, size_t Dim,
                          kernels::ComplexF CosT, kernels::ComplexF ISinT,
                          const PauliPhasesF32 &Ph) {
  if (Dim < 8) {
    fallbackOps().ExpDiagonalF32(AmpC, Dim, CosT, ISinT, Ph);
    return;
  }
  float *Amp = reinterpret_cast<float *>(AmpC);
  const __m512 CDup = _mm512_set1_ps(CosT.real());
  const __m512 SDup = _mm512_set1_ps(ISinT.imag());
  const __m512 Zero = _mm512_setzero_ps();
  for (uint64_t X = 0; X < Dim; X += 8) {
    float *P = Amp + 2 * X;
    const __m512 A = _mm512_load_ps(P);
    const __m512 T = cmulDup(CDup, Zero, A);
    const __m512 U = cmulDup(Zero, SDup, cmulVec(loadPhases(Ph, X), A));
    _mm512_store_ps(P, _mm512_add_ps(T, U));
  }
}

//===----------------------------------------------------------------------===//
// Panel kernels (split planes; a row is Stride contiguous lanes)
//===----------------------------------------------------------------------===//

// SoA complex product pieces, scalar semantics per lane:
//   (w * a).re = wr*ar - wi*ai ; (w * a).im = wr*ai + wi*ar
inline __m512d mulRe(__m512d Wr, __m512d Wi, __m512d Ar, __m512d Ai) {
  return _mm512_sub_pd(_mm512_mul_pd(Wr, Ar), _mm512_mul_pd(Wi, Ai));
}
inline __m512d mulIm(__m512d Wr, __m512d Wi, __m512d Ar, __m512d Ai) {
  return _mm512_add_pd(_mm512_mul_pd(Wr, Ai), _mm512_mul_pd(Wi, Ar));
}
inline __m512 mulRe(__m512 Wr, __m512 Wi, __m512 Ar, __m512 Ai) {
  return _mm512_sub_ps(_mm512_mul_ps(Wr, Ar), _mm512_mul_ps(Wi, Ai));
}
inline __m512 mulIm(__m512 Wr, __m512 Wi, __m512 Ar, __m512 Ai) {
  return _mm512_add_ps(_mm512_mul_ps(Wr, Ai), _mm512_mul_ps(Wi, Ar));
}
inline __m512d addv(__m512d A, __m512d B) { return _mm512_add_pd(A, B); }
inline __m512 addv(__m512 A, __m512 B) { return _mm512_add_ps(A, B); }

// One panel element update over one row chunk: N = CosT*A + ISinT*(P*A2).
#define MARQSIM_PANEL_UPDATE(VEC, Ar, Ai, Pr, Pi, A2r, A2i, NrOut, NiOut)      \
  do {                                                                         \
    const VEC Ur = mulRe(Pr, Pi, A2r, A2i);                                    \
    const VEC Ui = mulIm(Pr, Pi, A2r, A2i);                                    \
    const VEC T2r = mulRe(Zero, SDup, Ur, Ui);                                 \
    const VEC T2i = mulIm(Zero, SDup, Ur, Ui);                                 \
    const VEC T1r = mulRe(CDup, Zero, Ar, Ai);                                 \
    const VEC T1i = mulIm(CDup, Zero, Ar, Ai);                                 \
    NrOut = addv(T1r, T2r);                                                    \
    NiOut = addv(T1i, T2i);                                                    \
  } while (0)

void avx512PanelExpButterflyF64(double *Re, double *Im, size_t Dim,
                                size_t Stride, uint64_t XM, Complex CosT,
                                Complex ISinT, const PauliPhases &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  const __m512d CDup = _mm512_set1_pd(CosT.real());
  const __m512d SDup = _mm512_set1_pd(ISinT.imag());
  const __m512d Zero = _mm512_setzero_pd();
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const Complex PhX = Ph.at(X);
    const Complex PhY = Ph.at(Y);
    const __m512d PXr = _mm512_set1_pd(PhX.real());
    const __m512d PXi = _mm512_set1_pd(PhX.imag());
    const __m512d PYr = _mm512_set1_pd(PhY.real());
    const __m512d PYi = _mm512_set1_pd(PhY.imag());
    double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    double *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; L += 8) {
      const __m512d A0r = _mm512_load_pd(ReX + L);
      const __m512d A0i = _mm512_load_pd(ImX + L);
      const __m512d A1r = _mm512_load_pd(ReY + L);
      const __m512d A1i = _mm512_load_pd(ImY + L);
      __m512d N0r, N0i, N1r, N1i;
      MARQSIM_PANEL_UPDATE(__m512d, A0r, A0i, PYr, PYi, A1r, A1i, N0r, N0i);
      MARQSIM_PANEL_UPDATE(__m512d, A1r, A1i, PXr, PXi, A0r, A0i, N1r, N1i);
      _mm512_store_pd(ReX + L, N0r);
      _mm512_store_pd(ImX + L, N0i);
      _mm512_store_pd(ReY + L, N1r);
      _mm512_store_pd(ImY + L, N1i);
    }
  }
}

void avx512PanelExpDiagonalF64(double *Re, double *Im, size_t Dim,
                               size_t Stride, Complex CosT, Complex ISinT,
                               const PauliPhases &Ph) {
  const __m512d CDup = _mm512_set1_pd(CosT.real());
  const __m512d SDup = _mm512_set1_pd(ISinT.imag());
  const __m512d Zero = _mm512_setzero_pd();
  for (uint64_t X = 0; X < Dim; ++X) {
    const Complex PhX = Ph.at(X);
    const __m512d Pr = _mm512_set1_pd(PhX.real());
    const __m512d Pi = _mm512_set1_pd(PhX.imag());
    double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; L += 8) {
      const __m512d Ar = _mm512_load_pd(ReX + L);
      const __m512d Ai = _mm512_load_pd(ImX + L);
      __m512d Nr, Ni;
      MARQSIM_PANEL_UPDATE(__m512d, Ar, Ai, Pr, Pi, Ar, Ai, Nr, Ni);
      _mm512_store_pd(ReX + L, Nr);
      _mm512_store_pd(ImX + L, Ni);
    }
  }
}

void avx512PanelExpButterflyF32(float *Re, float *Im, size_t Dim,
                                size_t Stride, uint64_t XM,
                                kernels::ComplexF CosT,
                                kernels::ComplexF ISinT,
                                const PauliPhasesF32 &Ph) {
  const uint64_t Pivot = XM & (~XM + 1);
  const __m512 CDup = _mm512_set1_ps(CosT.real());
  const __m512 SDup = _mm512_set1_ps(ISinT.imag());
  const __m512 Zero = _mm512_setzero_ps();
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const kernels::ComplexF PhX = Ph.at(X);
    const kernels::ComplexF PhY = Ph.at(Y);
    const __m512 PXr = _mm512_set1_ps(PhX.real());
    const __m512 PXi = _mm512_set1_ps(PhX.imag());
    const __m512 PYr = _mm512_set1_ps(PhY.real());
    const __m512 PYi = _mm512_set1_ps(PhY.imag());
    float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    float *ReY = Re + Y * Stride, *ImY = Im + Y * Stride;
    for (size_t L = 0; L < Stride; L += 16) {
      const __m512 A0r = _mm512_load_ps(ReX + L);
      const __m512 A0i = _mm512_load_ps(ImX + L);
      const __m512 A1r = _mm512_load_ps(ReY + L);
      const __m512 A1i = _mm512_load_ps(ImY + L);
      __m512 N0r, N0i, N1r, N1i;
      MARQSIM_PANEL_UPDATE(__m512, A0r, A0i, PYr, PYi, A1r, A1i, N0r, N0i);
      MARQSIM_PANEL_UPDATE(__m512, A1r, A1i, PXr, PXi, A0r, A0i, N1r, N1i);
      _mm512_store_ps(ReX + L, N0r);
      _mm512_store_ps(ImX + L, N0i);
      _mm512_store_ps(ReY + L, N1r);
      _mm512_store_ps(ImY + L, N1i);
    }
  }
}

void avx512PanelExpDiagonalF32(float *Re, float *Im, size_t Dim, size_t Stride,
                               kernels::ComplexF CosT, kernels::ComplexF ISinT,
                               const PauliPhasesF32 &Ph) {
  const __m512 CDup = _mm512_set1_ps(CosT.real());
  const __m512 SDup = _mm512_set1_ps(ISinT.imag());
  const __m512 Zero = _mm512_setzero_ps();
  for (uint64_t X = 0; X < Dim; ++X) {
    const kernels::ComplexF PhX = Ph.at(X);
    const __m512 Pr = _mm512_set1_ps(PhX.real());
    const __m512 Pi = _mm512_set1_ps(PhX.imag());
    float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    for (size_t L = 0; L < Stride; L += 16) {
      const __m512 Ar = _mm512_load_ps(ReX + L);
      const __m512 Ai = _mm512_load_ps(ImX + L);
      __m512 Nr, Ni;
      MARQSIM_PANEL_UPDATE(__m512, Ar, Ai, Pr, Pi, Ar, Ai, Nr, Ni);
      _mm512_store_ps(ReX + L, Nr);
      _mm512_store_ps(ImX + L, Ni);
    }
  }
}

//===----------------------------------------------------------------------===//
// Fused final-rotation + overlap kernels
//===----------------------------------------------------------------------===//

// Streaming accumulation pass: row X's contribution lands on every lane's
// chain before row X+1's — the ascending-basis order of overlapWith. The
// target imaginary plane is pre-negated, so each lane is the discretely
// rounded conj(Target) * Amp expansion.
void avx512PanelOverlapAccumF64(const double *Re, const double *Im, size_t Dim,
                                size_t Stride, const double *TRe,
                                const double *TImNeg, double *AccRe,
                                double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const double *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WrX = TRe + X * Stride, *WiX = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; L += 8) {
      const __m512d Ar = _mm512_load_pd(ReX + L);
      const __m512d Ai = _mm512_load_pd(ImX + L);
      const __m512d Wr = _mm512_load_pd(WrX + L);
      const __m512d Wi = _mm512_load_pd(WiX + L);
      _mm512_store_pd(AccRe + L, _mm512_add_pd(_mm512_load_pd(AccRe + L),
                                               mulRe(Wr, Wi, Ar, Ai)));
      _mm512_store_pd(AccIm + L, _mm512_add_pd(_mm512_load_pd(AccIm + L),
                                               mulIm(Wr, Wi, Ar, Ai)));
    }
  }
}

// FP32 amplitudes widen to double (exact) before the double
// multiply-accumulate, matching StatePanel::at's widening.
void avx512PanelOverlapAccumF32(const float *Re, const float *Im, size_t Dim,
                                size_t Stride, const double *TRe,
                                const double *TImNeg, double *AccRe,
                                double *AccIm) {
  for (uint64_t X = 0; X < Dim; ++X) {
    const float *ReX = Re + X * Stride, *ImX = Im + X * Stride;
    const double *WrX = TRe + X * Stride, *WiX = TImNeg + X * Stride;
    for (size_t L = 0; L < Stride; L += 16) {
      const __m512 Fr = _mm512_load_ps(ReX + L);
      const __m512 Fi = _mm512_load_ps(ImX + L);
      const __m512d ArLo = _mm512_cvtps_pd(_mm512_castps512_ps256(Fr));
      const __m512d ArHi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(Fr, 1));
      const __m512d AiLo = _mm512_cvtps_pd(_mm512_castps512_ps256(Fi));
      const __m512d AiHi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(Fi, 1));
      const __m512d WrLo = _mm512_load_pd(WrX + L);
      const __m512d WrHi = _mm512_load_pd(WrX + L + 8);
      const __m512d WiLo = _mm512_load_pd(WiX + L);
      const __m512d WiHi = _mm512_load_pd(WiX + L + 8);
      _mm512_store_pd(AccRe + L, _mm512_add_pd(_mm512_load_pd(AccRe + L),
                                               mulRe(WrLo, WiLo, ArLo, AiLo)));
      _mm512_store_pd(AccIm + L, _mm512_add_pd(_mm512_load_pd(AccIm + L),
                                               mulIm(WrLo, WiLo, ArLo, AiLo)));
      _mm512_store_pd(AccRe + L + 8,
                      _mm512_add_pd(_mm512_load_pd(AccRe + L + 8),
                                    mulRe(WrHi, WiHi, ArHi, AiHi)));
      _mm512_store_pd(AccIm + L + 8,
                      _mm512_add_pd(_mm512_load_pd(AccIm + L + 8),
                                    mulIm(WrHi, WiHi, ArHi, AiHi)));
    }
  }
}

void avx512PanelExpOverlapF64(double *Re, double *Im, size_t Dim,
                              size_t Stride, uint64_t XM, Complex CosT,
                              Complex ISinT, const PauliPhases &Ph,
                              const double *TRe, const double *TImNeg,
                              double *AccRe, double *AccIm) {
  if (XM == 0)
    avx512PanelExpDiagonalF64(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    avx512PanelExpButterflyF64(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  avx512PanelOverlapAccumF64(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

void avx512PanelExpOverlapF32(float *Re, float *Im, size_t Dim, size_t Stride,
                              uint64_t XM, kernels::ComplexF CosT,
                              kernels::ComplexF ISinT,
                              const PauliPhasesF32 &Ph, const double *TRe,
                              const double *TImNeg, double *AccRe,
                              double *AccIm) {
  if (XM == 0)
    avx512PanelExpDiagonalF32(Re, Im, Dim, Stride, CosT, ISinT, Ph);
  else
    avx512PanelExpButterflyF32(Re, Im, Dim, Stride, XM, CosT, ISinT, Ph);
  avx512PanelOverlapAccumF32(Re, Im, Dim, Stride, TRe, TImNeg, AccRe, AccIm);
}

const kernels::Ops AVX512Ops = {
    "avx512",
    avx512ExpButterflyF64,
    avx512ExpDiagonalF64,
    avx512PanelExpButterflyF64,
    avx512PanelExpDiagonalF64,
    avx512PanelExpButterflyF32,
    avx512PanelExpDiagonalF32,
    avx512ExpButterflyF32,
    avx512ExpDiagonalF32,
    avx512PanelExpOverlapF64,
    avx512PanelExpOverlapF32,
};

} // namespace

const kernels::Ops *kernels::detail::avx512Ops() {
  const CpuFeatures &F = cpuFeatures();
  return (F.AVX512F && F.AVX512DQ && F.AVX512OS) ? &AVX512Ops : nullptr;
}

#else // !(x86-64 with AVX-512F/DQ codegen)

const marqsim::kernels::Ops *marqsim::kernels::detail::avx512Ops() {
  return nullptr;
}

#endif
