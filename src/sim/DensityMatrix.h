//===- sim/DensityMatrix.h - Mixed states and channels ----------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Density-matrix simulation of the *channel* the correctness proof of
/// Theorem 4.1 actually bounds.
///
/// The proof (Appendix A.2) shows that when the chain starts from its
/// stationary distribution, every sampling step applies the same mixed
/// channel
///   E(rho) = sum_j pi_j e^{i tau H_j} rho e^{-i tau H_j},
/// and that E^N differs from the exact evolution by at most ~2 lambda^2
/// t^2 / N. This module implements density matrices, unitary conjugation,
/// the qDrift/MarQSim step channel, and trace distance, so the tests can
/// check the bound directly rather than only sampling circuits.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_DENSITYMATRIX_H
#define MARQSIM_SIM_DENSITYMATRIX_H

#include "pauli/Hamiltonian.h"
#include "sim/StateVector.h"

namespace marqsim {

/// A mixed state over n qubits (dense 2^n x 2^n; small systems only).
class DensityMatrix {
public:
  /// The pure basis state |Basis><Basis|.
  explicit DensityMatrix(unsigned NumQubits, uint64_t Basis = 0);

  /// |Psi><Psi| for a pure state.
  explicit DensityMatrix(const StateVector &Psi);

  /// The maximally mixed state I / 2^n.
  static DensityMatrix maximallyMixed(unsigned NumQubits);

  unsigned numQubits() const { return NQubits; }
  const Matrix &matrix() const { return Rho; }

  /// tr(rho); 1 for a normalized state.
  double trace() const { return Rho.trace().real(); }

  /// rho -> U rho U^dag.
  void applyUnitary(const Matrix &U);

  /// rho -> e^{i Theta P} rho e^{-i Theta P} (analytic, O(4^n)).
  void applyPauliExp(const PauliString &P, double Theta);

  /// One step of the stationary sampling channel:
  ///   rho -> sum_j pi_j e^{i sgn(h_j) Tau H_j} rho e^{-i sgn(h_j) Tau H_j}
  /// — the channel E of Theorem 4.1's proof. \p Tau is lambda*t/N.
  /// Throws std::invalid_argument when \p Pi does not have one probability
  /// per Hamiltonian term (a mismatched distribution would read out of
  /// bounds in release builds).
  void applySamplingChannel(const Hamiltonian &H,
                            const std::vector<double> &Pi, double Tau);

  /// Applies a single-qubit Kraus channel at \p Qubit:
  ///   rho -> sum_i K_i rho K_i^dag
  /// with each \p Kraus operator a 2x2 matrix embedded at the qubit.
  /// Throws std::invalid_argument on an empty set, non-2x2 operators, or
  /// an out-of-range qubit, and std::runtime_error when the applied map
  /// drifts the trace (i.e. the Kraus set was not trace-preserving).
  void applyChannel(const std::vector<Matrix> &Kraus, unsigned Qubit);

  /// Trace distance (1/2) * ||rho - sigma||_1, computed via the singular
  /// values of the (Hermitian) difference. In [0, 1]. Throws
  /// std::invalid_argument on a dimension mismatch.
  double traceDistance(const DensityMatrix &Other) const;

  /// Fidelity-like overlap with a pure target: <psi| rho |psi>.
  double overlap(const StateVector &Psi) const;

private:
  explicit DensityMatrix(unsigned NumQubits, Matrix Rho)
      : NQubits(NumQubits), Rho(std::move(Rho)) {}

  unsigned NQubits;
  Matrix Rho;
};

/// Embeds a 2x2 single-qubit operator at \p Qubit into the full
/// 2^NumQubits space (identity on every other qubit). Basis-index bit q
/// is qubit q, matching PauliString::applyToBasis.
Matrix embedSingleQubit(const Matrix &Op, unsigned Qubit, unsigned NumQubits);

} // namespace marqsim

#endif // MARQSIM_SIM_DENSITYMATRIX_H
