//===- sim/StateVector.h - Statevector simulator ----------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A full-statevector quantum simulator over the circuit IR.
///
/// Amplitudes are indexed by computational basis states with qubit 0 as the
/// least significant bit. Gate application is the usual strided two-amplitude
/// update; circuits build unitaries column by column. The simulator both
/// validates the Pauli-rotation synthesis (circuit unitary vs dense
/// exponential) and evaluates compiled circuits in the experiment harnesses.
///
/// The Pauli kernels are fused single-pass updates: exp(i theta P) visits
/// each {X, X^xMask} butterfly pair exactly once and updates it in place
/// (no scratch round trip), and Z-only strings take a diagonal fast path
/// that touches each element's own slot only — half the memory traffic
/// again. Both paths perform bit-for-bit the arithmetic of the textbook
/// two-pass formulation (including the signs of zeros), so fidelities and
/// golden schedules are unchanged — see detail::PauliPhases in
/// sim/Kernels.h for the phase-selection helper (shared with StatePanel)
/// and SimTest's reference-kernel equivalence tests for the pinning. The
/// loops themselves live behind the runtime-dispatched kernel table of
/// sim/Kernels.h, which picks AVX-512/AVX2/NEON variants that are
/// bit-identical to the scalar reference.
///
/// The class is a template over the amplitude precision. The double
/// instantiation (the StateVector alias) is the bit-exact default every
/// golden value is frozen against. The float instantiation
/// (StateVectorF32) is the opt-in walk tier behind --precision=fp32:
/// per-rotation constants are computed in double and narrowed once,
/// amplitudes evolve in float through the interleaved FP32 kernels, and
/// overlaps/norms still accumulate in double. Its results are
/// tolerance-defined against FP64, never bit-exact (sim/Precision.h).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_STATEVECTOR_H
#define MARQSIM_SIM_STATEVECTOR_H

#include "circuit/Circuit.h"
#include "linalg/Matrix.h"
#include "pauli/PauliString.h"
#include "support/AlignedAlloc.h"

#include <cstdint>

namespace marqsim {

namespace detail {
/// Fills \p M with the 2x2 unitary of a single-qubit gate. Returns false
/// for CNOT (the only two-qubit gate; callers special-case the controlled
/// flip). One home for the gate constants so the single-state and panel
/// simulators apply bit-identical matrices.
bool singleQubitMatrix(const Gate &G, Complex M[2][2]);
} // namespace detail

/// An n-qubit pure state (n <= 26 to keep memory bounded).
template <typename Real> class BasicStateVector {
public:
  using RealType = Real;

  /// Amplitude storage: cache-line aligned so the dispatched kernels'
  /// full-width vector loads are always aligned. For the double
  /// instantiation this is exactly CVector.
  using AmpVector =
      std::vector<std::complex<Real>, AlignedAllocator<std::complex<Real>, 64>>;

  /// Initializes to the basis state |Basis> over \p NumQubits qubits.
  explicit BasicStateVector(unsigned NumQubits, uint64_t Basis = 0);

  /// Wraps an existing amplitude vector (size must be a power of two).
  BasicStateVector(unsigned NumQubits, AmpVector Amplitudes);

  unsigned numQubits() const { return NQubits; }
  size_t dim() const { return Amp.size(); }
  const AmpVector &amplitudes() const { return Amp; }
  AmpVector &amplitudes() { return Amp; }

  /// Applies one gate. Matrix entries are derived in double and narrowed
  /// once per gate (a no-op for the double instantiation).
  void apply(const Gate &G);

  /// Applies all gates of a circuit in order.
  void apply(const Circuit &C);

  /// Applies a bare Pauli string (phase-tracked permutation), in place.
  void applyPauli(const PauliString &P);

  /// Applies exp(i * Theta * P) analytically:
  /// cos(Theta) |psi> + i sin(Theta) P|psi>.
  /// One fused pass: each butterfly pair is loaded and stored exactly once.
  void applyPauliExp(const PauliString &P, double Theta);

  /// <this | Other>, accumulated in double in ascending basis order for
  /// every instantiation (FP32 amplitudes widen exactly before the
  /// multiply).
  Complex overlap(const BasicStateVector &Other) const;

  /// <Target | this> against a double-precision target, accumulated in
  /// double in ascending basis order — for the double instantiation this
  /// is bit-identical to innerProduct(Target, amplitudes()) and to
  /// StatePanel::overlapWith on a same-state column.
  Complex overlapWithTarget(const CVector &Target) const;

  /// Euclidean norm (1 for a valid state), accumulated in double.
  double norm() const;

  /// Panel-compatible spellings, so one generic evolve lambda can drive
  /// both a StatePanel block and a single-state walk (the width-1 block
  /// path of fidelity evaluation).
  void applyPauliExpAll(const PauliString &P, double Theta) {
    applyPauliExp(P, Theta);
  }
  void applyAll(const Gate &G) { apply(G); }
  void applyAll(const Circuit &C) { apply(C); }

private:
  void applySingleQubit(unsigned Q, const Complex M[2][2]);

  unsigned NQubits;
  AmpVector Amp;
};

extern template class BasicStateVector<double>;
extern template class BasicStateVector<float>;

/// The bit-exact FP64 simulator every default path and golden runs on.
using StateVector = BasicStateVector<double>;

/// The opt-in FP32 walk tier (tolerance-defined; see Precision.h).
using StateVectorF32 = BasicStateVector<float>;

/// Builds the full 2^n x 2^n unitary of a circuit by applying it to panels
/// of basis columns (intended for tests and small systems).
Matrix circuitUnitary(const Circuit &C);

} // namespace marqsim

#endif // MARQSIM_SIM_STATEVECTOR_H
