//===- sim/StateVector.h - Statevector simulator ----------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A full-statevector quantum simulator over the circuit IR.
///
/// Amplitudes are indexed by computational basis states with qubit 0 as the
/// least significant bit. Gate application is the usual strided two-amplitude
/// update; circuits build unitaries column by column. The simulator both
/// validates the Pauli-rotation synthesis (circuit unitary vs dense
/// exponential) and evaluates compiled circuits in the experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_STATEVECTOR_H
#define MARQSIM_SIM_STATEVECTOR_H

#include "circuit/Circuit.h"
#include "linalg/Matrix.h"
#include "pauli/PauliString.h"

namespace marqsim {

/// An n-qubit pure state (n <= 26 to keep memory bounded).
class StateVector {
public:
  /// Initializes to the basis state |Basis> over \p NumQubits qubits.
  explicit StateVector(unsigned NumQubits, uint64_t Basis = 0);

  /// Wraps an existing amplitude vector (size must be a power of two).
  StateVector(unsigned NumQubits, CVector Amplitudes);

  unsigned numQubits() const { return NQubits; }
  size_t dim() const { return Amp.size(); }
  const CVector &amplitudes() const { return Amp; }
  CVector &amplitudes() { return Amp; }

  /// Applies one gate.
  void apply(const Gate &G);

  /// Applies all gates of a circuit in order.
  void apply(const Circuit &C);

  /// Applies a bare Pauli string (phase-tracked permutation).
  void applyPauli(const PauliString &P);

  /// Applies exp(i * Theta * P) analytically:
  /// cos(Theta) |psi> + i sin(Theta) P|psi>.
  void applyPauliExp(const PauliString &P, double Theta);

  /// <this | Other>.
  Complex overlap(const StateVector &Other) const;

  /// Euclidean norm (1 for a valid state).
  double norm() const;

private:
  void applySingleQubit(unsigned Q, const Complex M[2][2]);

  unsigned NQubits;
  CVector Amp;
  CVector Scratch;
};

/// Builds the full 2^n x 2^n unitary of a circuit by applying it to every
/// basis column (intended for tests and small systems).
Matrix circuitUnitary(const Circuit &C);

} // namespace marqsim

#endif // MARQSIM_SIM_STATEVECTOR_H
