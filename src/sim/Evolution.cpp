//===- sim/Evolution.cpp - Exact Hamiltonian evolution -----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Evolution.h"

#include "linalg/Expm.h"

#include <cmath>

using namespace marqsim;

CVector marqsim::applyHamiltonian(const Hamiltonian &H, const CVector &X) {
  assert(X.size() == size_t(1) << H.numQubits() && "state size mismatch");
  CVector Y(X.size(), Complex(0.0, 0.0));
  for (const PauliTerm &T : H.terms()) {
    const uint64_t XM = T.String.xMask();
    for (uint64_t B = 0; B < X.size(); ++B)
      Y[B ^ XM] += T.Coeff * T.String.applyToBasis(B) * X[B];
  }
  return Y;
}

CVector marqsim::evolveExact(const Hamiltonian &H, double T,
                             const CVector &In) {
  assert(In.size() == size_t(1) << H.numQubits() && "state size mismatch");
  // Split T into slices with lambda * |slice| <= 0.5 so the Taylor series
  // converges in a handful of terms; lambda bounds the spectral norm of H.
  const double Lambda = H.lambda();
  const double Horizon = Lambda * std::fabs(T);
  const unsigned Slices =
      std::max(1u, static_cast<unsigned>(std::ceil(Horizon / 0.5)));
  const double Dt = T / Slices;

  CVector State = In;
  for (unsigned S = 0; S < Slices; ++S) {
    // State <- sum_k (i Dt H)^k / k! State.
    CVector Acc = State;
    CVector Term = State;
    for (unsigned K = 1; K <= 40; ++K) {
      CVector HTerm = applyHamiltonian(H, Term);
      const Complex Factor = Complex(0.0, Dt) / static_cast<double>(K);
      for (size_t I = 0; I < HTerm.size(); ++I)
        Term[I] = Factor * HTerm[I];
      double TermNorm = 0.0;
      for (const Complex &V : Term)
        TermNorm += std::norm(V);
      for (size_t I = 0; I < Acc.size(); ++I)
        Acc[I] += Term[I];
      if (std::sqrt(TermNorm) < 1e-14)
        break;
    }
    State.swap(Acc);
  }
  return State;
}

Matrix marqsim::exactUnitary(const Hamiltonian &H, double T) {
  assert(H.numQubits() <= 12 && "dense exact unitary too large");
  Matrix HM = H.toMatrix();
  return expm(HM * Complex(0.0, T));
}
