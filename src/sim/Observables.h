//===- sim/Observables.h - Expectation values -------------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expectation values of Pauli observables and Hamiltonians on simulator
/// states — the quantities the domain examples report (orbital
/// occupations, magnetizations, energies).
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_OBSERVABLES_H
#define MARQSIM_SIM_OBSERVABLES_H

#include "pauli/Hamiltonian.h"
#include "sim/StateVector.h"

namespace marqsim {

/// <psi| P |psi>. Real because Pauli strings are Hermitian; the tiny
/// imaginary part from rounding is discarded.
double expectation(const StateVector &Psi, const PauliString &P);

/// <psi| H |psi> = sum_j h_j <psi| H_j |psi>.
double expectation(const StateVector &Psi, const Hamiltonian &H);

/// Occupation <n_q> = (1 - <Z_q>) / 2 of qubit/spin-orbital \p Q
/// (Jordan-Wigner picture).
double occupation(const StateVector &Psi, unsigned Q);

/// Spin-z expectation <S^z_q> = <Z_q> / 2 of site \p Q.
double spinZ(const StateVector &Psi, unsigned Q);

} // namespace marqsim

#endif // MARQSIM_SIM_OBSERVABLES_H
