//===- sim/StateVector.cpp - Statevector simulator ---------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StateVector.h"

#include <cmath>

using namespace marqsim;

StateVector::StateVector(unsigned NumQubits, uint64_t Basis)
    : NQubits(NumQubits), Amp(size_t(1) << NumQubits, Complex(0.0, 0.0)) {
  assert(NumQubits <= 26 && "statevector too large");
  assert(Basis < Amp.size() && "basis state out of range");
  Amp[Basis] = 1.0;
}

StateVector::StateVector(unsigned NumQubits, CVector Amplitudes)
    : NQubits(NumQubits), Amp(std::move(Amplitudes)) {
  assert(Amp.size() == size_t(1) << NumQubits &&
         "amplitude vector size mismatch");
}

void StateVector::applySingleQubit(unsigned Q, const Complex M[2][2]) {
  assert(Q < NQubits && "qubit out of range");
  const uint64_t Bit = 1ULL << Q;
  const size_t Dim = Amp.size();
  for (uint64_t Base = 0; Base < Dim; ++Base) {
    if (Base & Bit)
      continue;
    Complex A0 = Amp[Base];
    Complex A1 = Amp[Base | Bit];
    Amp[Base] = M[0][0] * A0 + M[0][1] * A1;
    Amp[Base | Bit] = M[1][0] * A0 + M[1][1] * A1;
  }
}

void StateVector::apply(const Gate &G) {
  const Complex I(0.0, 1.0);
  switch (G.Kind) {
  case GateKind::H: {
    const double S = 1.0 / std::sqrt(2.0);
    const Complex M[2][2] = {{S, S}, {S, -S}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::X: {
    const Complex M[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::Y: {
    const Complex M[2][2] = {{0.0, -I}, {I, 0.0}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::Z: {
    const Complex M[2][2] = {{1.0, 0.0}, {0.0, -1.0}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::S: {
    const Complex M[2][2] = {{1.0, 0.0}, {0.0, I}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::Sdg: {
    const Complex M[2][2] = {{1.0, 0.0}, {0.0, -I}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::Rx: {
    double C = std::cos(G.Angle / 2), Sn = std::sin(G.Angle / 2);
    const Complex M[2][2] = {{C, -I * Sn}, {-I * Sn, C}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::Ry: {
    double C = std::cos(G.Angle / 2), Sn = std::sin(G.Angle / 2);
    const Complex M[2][2] = {{C, -Sn}, {Sn, C}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::Rz: {
    Complex E0 = std::exp(-I * (G.Angle / 2));
    Complex E1 = std::exp(I * (G.Angle / 2));
    const Complex M[2][2] = {{E0, 0.0}, {0.0, E1}};
    applySingleQubit(G.Qubit0, M);
    return;
  }
  case GateKind::CNOT: {
    const uint64_t CBit = 1ULL << G.Qubit0;
    const uint64_t TBit = 1ULL << G.Qubit1;
    const size_t Dim = Amp.size();
    for (uint64_t X = 0; X < Dim; ++X)
      if ((X & CBit) && !(X & TBit))
        std::swap(Amp[X], Amp[X | TBit]);
    return;
  }
  }
  assert(false && "invalid GateKind");
}

void StateVector::apply(const Circuit &C) {
  assert(C.numQubits() <= NQubits && "circuit wider than state");
  for (const Gate &G : C.gates())
    apply(G);
}

void StateVector::applyPauli(const PauliString &P) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  if (Scratch.size() != Amp.size())
    Scratch.resize(Amp.size());
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  Amp.swap(Scratch);
}

void StateVector::applyPauliExp(const PauliString &P, double Theta) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    // exp(i Theta I) is the global phase cos + i sin.
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Amp)
      A *= Phase;
    return;
  }
  if (Scratch.size() != Amp.size())
    Scratch.resize(Amp.size());
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  for (size_t X = 0; X < Amp.size(); ++X)
    Amp[X] = CosT * Amp[X] + ISinT * Scratch[X];
}

Complex StateVector::overlap(const StateVector &Other) const {
  return innerProduct(Amp, Other.Amp);
}

double StateVector::norm() const { return vectorNorm(Amp); }

Matrix marqsim::circuitUnitary(const Circuit &C) {
  assert(C.numQubits() <= 12 && "circuit unitary too large");
  const size_t Dim = size_t(1) << C.numQubits();
  Matrix U(Dim, Dim);
  for (uint64_t Col = 0; Col < Dim; ++Col) {
    StateVector SV(C.numQubits(), Col);
    SV.apply(C);
    for (size_t Row = 0; Row < Dim; ++Row)
      U.at(Row, Col) = SV.amplitudes()[Row];
  }
  return U;
}
