//===- sim/StateVector.cpp - Statevector simulator ---------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StateVector.h"

#include "sim/Kernels.h"
#include "sim/StatePanel.h"

#include <cmath>
#include <type_traits>

using namespace marqsim;

template <typename Real>
BasicStateVector<Real>::BasicStateVector(unsigned NumQubits, uint64_t Basis)
    : NQubits(NumQubits),
      Amp(size_t(1) << NumQubits, std::complex<Real>(0, 0)) {
  assert(NumQubits <= 26 && "statevector too large");
  assert(Basis < Amp.size() && "basis state out of range");
  Amp[Basis] = std::complex<Real>(1, 0);
}

template <typename Real>
BasicStateVector<Real>::BasicStateVector(unsigned NumQubits,
                                         AmpVector Amplitudes)
    : NQubits(NumQubits), Amp(std::move(Amplitudes)) {
  assert(Amp.size() == size_t(1) << NumQubits &&
         "amplitude vector size mismatch");
}

bool marqsim::detail::singleQubitMatrix(const Gate &G, Complex M[2][2]) {
  const Complex I(0.0, 1.0);
  switch (G.Kind) {
  case GateKind::H: {
    const double S = 1.0 / std::sqrt(2.0);
    M[0][0] = S;
    M[0][1] = S;
    M[1][0] = S;
    M[1][1] = -S;
    return true;
  }
  case GateKind::X:
    M[0][0] = 0.0;
    M[0][1] = 1.0;
    M[1][0] = 1.0;
    M[1][1] = 0.0;
    return true;
  case GateKind::Y:
    M[0][0] = 0.0;
    M[0][1] = -I;
    M[1][0] = I;
    M[1][1] = 0.0;
    return true;
  case GateKind::Z:
    M[0][0] = 1.0;
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = -1.0;
    return true;
  case GateKind::S:
    M[0][0] = 1.0;
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = I;
    return true;
  case GateKind::Sdg:
    M[0][0] = 1.0;
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = -I;
    return true;
  case GateKind::Rx: {
    double C = std::cos(G.Angle / 2), Sn = std::sin(G.Angle / 2);
    M[0][0] = C;
    M[0][1] = -I * Sn;
    M[1][0] = -I * Sn;
    M[1][1] = C;
    return true;
  }
  case GateKind::Ry: {
    double C = std::cos(G.Angle / 2), Sn = std::sin(G.Angle / 2);
    M[0][0] = C;
    M[0][1] = -Sn;
    M[1][0] = Sn;
    M[1][1] = C;
    return true;
  }
  case GateKind::Rz:
    M[0][0] = std::exp(-I * (G.Angle / 2));
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = std::exp(I * (G.Angle / 2));
    return true;
  case GateKind::CNOT:
    return false;
  }
  assert(false && "invalid GateKind");
  return false;
}

template <typename Real>
void BasicStateVector<Real>::applySingleQubit(unsigned Q,
                                              const Complex M[2][2]) {
  assert(Q < NQubits && "qubit out of range");
  using C = std::complex<Real>;
  // Entries narrow once per gate; the double instantiation applies the
  // identical matrix this class always has.
  const C M00(M[0][0]), M01(M[0][1]), M10(M[1][0]), M11(M[1][1]);
  const uint64_t Bit = 1ULL << Q;
  const size_t Dim = Amp.size();
  for (uint64_t Base = 0; Base < Dim; ++Base) {
    if (Base & Bit)
      continue;
    const C A0 = Amp[Base];
    const C A1 = Amp[Base | Bit];
    Amp[Base] = M00 * A0 + M01 * A1;
    Amp[Base | Bit] = M10 * A0 + M11 * A1;
  }
}

template <typename Real> void BasicStateVector<Real>::apply(const Gate &G) {
  Complex M[2][2];
  if (detail::singleQubitMatrix(G, M)) {
    applySingleQubit(G.Qubit0, M);
    return;
  }
  assert(G.Kind == GateKind::CNOT && "invalid GateKind");
  if (G.Kind != GateKind::CNOT)
    return; // release builds: an invalid kind stays a no-op
  const uint64_t CBit = 1ULL << G.Qubit0;
  const uint64_t TBit = 1ULL << G.Qubit1;
  const size_t Dim = Amp.size();
  for (uint64_t X = 0; X < Dim; ++X)
    if ((X & CBit) && !(X & TBit))
      std::swap(Amp[X], Amp[X | TBit]);
}

template <typename Real> void BasicStateVector<Real>::apply(const Circuit &C) {
  assert(C.numQubits() <= NQubits && "circuit wider than state");
  for (const Gate &G : C.gates())
    apply(G);
}

template <typename Real>
void BasicStateVector<Real>::applyPauli(const PauliString &P) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases64(P);
  // The +/- i^k constants are 0/±1 valued; the FP32 narrowing is exact.
  const auto phase = [&](uint64_t X) {
    if constexpr (std::is_same_v<Real, double>)
      return Phases64.at(X);
    else
      return std::complex<Real>(
          static_cast<Real>(Phases64.at(X).real()),
          static_cast<Real>(Phases64.at(X).imag()));
  };
  if (XM == 0) {
    // Diagonal: a pure per-element phase, in place.
    for (uint64_t X = 0; X < Amp.size(); ++X)
      Amp[X] = phase(X) * Amp[X];
    return;
  }
  // One in-place pass over the {X, X ^ XM} pairs: P|psi>[X] is the
  // partner amplitude times its phase, exactly the value the old scratch
  // pass stored.
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const std::complex<Real> A0 = Amp[X];
    const std::complex<Real> A1 = Amp[Y];
    Amp[X] = phase(Y) * A1;
    Amp[Y] = phase(X) * A0;
  }
}

template <typename Real>
void BasicStateVector<Real>::applyPauliExp(const PauliString &P,
                                           double Theta) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  using C = std::complex<Real>;
  // Trig in double for every instantiation; the FP32 tier narrows the
  // per-rotation constants exactly once.
  const C CosT(Real(std::cos(Theta)), Real(0));
  const C ISinT(Real(0), Real(std::sin(Theta)));
  if (P.isIdentity()) {
    // exp(i Theta I) is the global phase cos + i sin.
    const C Phase = CosT + ISinT;
    for (C &A : Amp)
      A *= Phase;
    return;
  }
  // The diagonal fast path and the fused butterfly both live behind the
  // kernel dispatch: scalar reference or a bit-identical SIMD variant.
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases(P);
  const kernels::Ops &K = kernels::active();
  if constexpr (std::is_same_v<Real, double>) {
    if (XM == 0)
      K.ExpDiagonalF64(Amp.data(), Amp.size(), CosT, ISinT, Phases);
    else
      K.ExpButterflyF64(Amp.data(), Amp.size(), XM, CosT, ISinT, Phases);
  } else {
    const detail::PauliPhasesF32 PhasesF(Phases);
    if (XM == 0)
      K.ExpDiagonalF32(Amp.data(), Amp.size(), CosT, ISinT, PhasesF);
    else
      K.ExpButterflyF32(Amp.data(), Amp.size(), XM, CosT, ISinT, PhasesF);
  }
}

template <typename Real>
Complex BasicStateVector<Real>::overlap(const BasicStateVector &Other) const {
  assert(Amp.size() == Other.Amp.size() && "overlap size mismatch");
  if constexpr (std::is_same_v<Real, double>) {
    return innerProduct(Amp, Other.Amp);
  } else {
    // The same ascending-index double chain as innerProduct, with the
    // FP32 amplitudes widened exactly first.
    Complex S = 0.0;
    for (uint64_t X = 0; X < Amp.size(); ++X) {
      const Complex A(static_cast<double>(Amp[X].real()),
                      static_cast<double>(Amp[X].imag()));
      const Complex B(static_cast<double>(Other.Amp[X].real()),
                      static_cast<double>(Other.Amp[X].imag()));
      S += std::conj(A) * B;
    }
    return S;
  }
}

template <typename Real>
Complex
BasicStateVector<Real>::overlapWithTarget(const CVector &Target) const {
  assert(Target.size() == Amp.size() && "overlap size mismatch");
  Complex S = 0.0;
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    const Complex A(static_cast<double>(Amp[X].real()),
                    static_cast<double>(Amp[X].imag()));
    S += std::conj(Target[X]) * A;
  }
  return S;
}

template <typename Real> double BasicStateVector<Real>::norm() const {
  if constexpr (std::is_same_v<Real, double>) {
    return vectorNorm(Amp);
  } else {
    // Per-element |a|^2 accumulated in double after an exact widening.
    double S = 0.0;
    for (const std::complex<Real> &A : Amp) {
      const double R = static_cast<double>(A.real());
      const double I = static_cast<double>(A.imag());
      S += R * R + I * I;
    }
    return std::sqrt(S);
  }
}

template class marqsim::BasicStateVector<double>;
template class marqsim::BasicStateVector<float>;

Matrix marqsim::circuitUnitary(const Circuit &C) {
  assert(C.numQubits() <= 12 && "circuit unitary too large");
  const size_t Dim = size_t(1) << C.numQubits();
  Matrix U(Dim, Dim);
  // Panels of basis columns share each gate's setup; every column still
  // sees the exact per-element arithmetic of a standalone StateVector.
  for (uint64_t Base = 0; Base < Dim; Base += StatePanel::PreferredWidth) {
    const size_t Count =
        std::min<size_t>(StatePanel::PreferredWidth, Dim - Base);
    std::vector<uint64_t> Cols(Count);
    for (size_t L = 0; L < Count; ++L)
      Cols[L] = Base + L;
    StatePanel Panel(C.numQubits(), Cols);
    Panel.applyAll(C);
    for (size_t L = 0; L < Count; ++L)
      for (size_t Row = 0; Row < Dim; ++Row)
        U.at(Row, Base + L) = Panel.at(L, Row);
  }
  return U;
}
