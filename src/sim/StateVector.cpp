//===- sim/StateVector.cpp - Statevector simulator ---------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StateVector.h"

#include "sim/Kernels.h"
#include "sim/StatePanel.h"

#include <cmath>

using namespace marqsim;

StateVector::StateVector(unsigned NumQubits, uint64_t Basis)
    : NQubits(NumQubits), Amp(size_t(1) << NumQubits, Complex(0.0, 0.0)) {
  assert(NumQubits <= 26 && "statevector too large");
  assert(Basis < Amp.size() && "basis state out of range");
  Amp[Basis] = 1.0;
}

StateVector::StateVector(unsigned NumQubits, CVector Amplitudes)
    : NQubits(NumQubits), Amp(std::move(Amplitudes)) {
  assert(Amp.size() == size_t(1) << NumQubits &&
         "amplitude vector size mismatch");
}

bool marqsim::detail::singleQubitMatrix(const Gate &G, Complex M[2][2]) {
  const Complex I(0.0, 1.0);
  switch (G.Kind) {
  case GateKind::H: {
    const double S = 1.0 / std::sqrt(2.0);
    M[0][0] = S;
    M[0][1] = S;
    M[1][0] = S;
    M[1][1] = -S;
    return true;
  }
  case GateKind::X:
    M[0][0] = 0.0;
    M[0][1] = 1.0;
    M[1][0] = 1.0;
    M[1][1] = 0.0;
    return true;
  case GateKind::Y:
    M[0][0] = 0.0;
    M[0][1] = -I;
    M[1][0] = I;
    M[1][1] = 0.0;
    return true;
  case GateKind::Z:
    M[0][0] = 1.0;
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = -1.0;
    return true;
  case GateKind::S:
    M[0][0] = 1.0;
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = I;
    return true;
  case GateKind::Sdg:
    M[0][0] = 1.0;
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = -I;
    return true;
  case GateKind::Rx: {
    double C = std::cos(G.Angle / 2), Sn = std::sin(G.Angle / 2);
    M[0][0] = C;
    M[0][1] = -I * Sn;
    M[1][0] = -I * Sn;
    M[1][1] = C;
    return true;
  }
  case GateKind::Ry: {
    double C = std::cos(G.Angle / 2), Sn = std::sin(G.Angle / 2);
    M[0][0] = C;
    M[0][1] = -Sn;
    M[1][0] = Sn;
    M[1][1] = C;
    return true;
  }
  case GateKind::Rz:
    M[0][0] = std::exp(-I * (G.Angle / 2));
    M[0][1] = 0.0;
    M[1][0] = 0.0;
    M[1][1] = std::exp(I * (G.Angle / 2));
    return true;
  case GateKind::CNOT:
    return false;
  }
  assert(false && "invalid GateKind");
  return false;
}

void StateVector::applySingleQubit(unsigned Q, const Complex M[2][2]) {
  assert(Q < NQubits && "qubit out of range");
  const uint64_t Bit = 1ULL << Q;
  const size_t Dim = Amp.size();
  for (uint64_t Base = 0; Base < Dim; ++Base) {
    if (Base & Bit)
      continue;
    Complex A0 = Amp[Base];
    Complex A1 = Amp[Base | Bit];
    Amp[Base] = M[0][0] * A0 + M[0][1] * A1;
    Amp[Base | Bit] = M[1][0] * A0 + M[1][1] * A1;
  }
}

void StateVector::apply(const Gate &G) {
  Complex M[2][2];
  if (detail::singleQubitMatrix(G, M)) {
    applySingleQubit(G.Qubit0, M);
    return;
  }
  assert(G.Kind == GateKind::CNOT && "invalid GateKind");
  if (G.Kind != GateKind::CNOT)
    return; // release builds: an invalid kind stays a no-op
  const uint64_t CBit = 1ULL << G.Qubit0;
  const uint64_t TBit = 1ULL << G.Qubit1;
  const size_t Dim = Amp.size();
  for (uint64_t X = 0; X < Dim; ++X)
    if ((X & CBit) && !(X & TBit))
      std::swap(Amp[X], Amp[X | TBit]);
}

void StateVector::apply(const Circuit &C) {
  assert(C.numQubits() <= NQubits && "circuit wider than state");
  for (const Gate &G : C.gates())
    apply(G);
}

void StateVector::applyPauli(const PauliString &P) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases(P);
  if (XM == 0) {
    // Diagonal: a pure per-element phase, in place.
    for (uint64_t X = 0; X < Amp.size(); ++X)
      Amp[X] = Phases.at(X) * Amp[X];
    return;
  }
  // One in-place pass over the {X, X ^ XM} pairs: P|psi>[X] is the
  // partner amplitude times its phase, exactly the value the old scratch
  // pass stored.
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const Complex A0 = Amp[X];
    const Complex A1 = Amp[Y];
    Amp[X] = Phases.at(Y) * A1;
    Amp[Y] = Phases.at(X) * A0;
  }
}

void StateVector::applyPauliExp(const PauliString &P, double Theta) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    // exp(i Theta I) is the global phase cos + i sin.
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Amp)
      A *= Phase;
    return;
  }
  // The diagonal fast path and the fused butterfly both live behind the
  // kernel dispatch: scalar reference or a bit-identical SIMD variant.
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases(P);
  const kernels::Ops &K = kernels::active();
  if (XM == 0)
    K.ExpDiagonalF64(Amp.data(), Amp.size(), CosT, ISinT, Phases);
  else
    K.ExpButterflyF64(Amp.data(), Amp.size(), XM, CosT, ISinT, Phases);
}

Complex StateVector::overlap(const StateVector &Other) const {
  return innerProduct(Amp, Other.Amp);
}

double StateVector::norm() const { return vectorNorm(Amp); }

Matrix marqsim::circuitUnitary(const Circuit &C) {
  assert(C.numQubits() <= 12 && "circuit unitary too large");
  const size_t Dim = size_t(1) << C.numQubits();
  Matrix U(Dim, Dim);
  // Panels of basis columns share each gate's setup; every column still
  // sees the exact per-element arithmetic of a standalone StateVector.
  for (uint64_t Base = 0; Base < Dim; Base += StatePanel::PreferredWidth) {
    const size_t Count =
        std::min<size_t>(StatePanel::PreferredWidth, Dim - Base);
    std::vector<uint64_t> Cols(Count);
    for (size_t L = 0; L < Count; ++L)
      Cols[L] = Base + L;
    StatePanel Panel(C.numQubits(), Cols);
    Panel.applyAll(C);
    for (size_t L = 0; L < Count; ++L)
      for (size_t Row = 0; Row < Dim; ++Row)
        U.at(Row, Base + L) = Panel.at(L, Row);
  }
  return U;
}
