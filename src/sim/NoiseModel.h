//===- sim/NoiseModel.h - Per-gate noise channels ---------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-gate noise channels for the noisy-simulation workload tier:
/// amplitude damping, phase flip, and depolarizing, each with a base
/// per-gate probability and a multi-qubit factor (multi-qubit rotations
/// are noisier on real devices), following the shape of ddsim's
/// DeterministicNoiseSimulator.
///
/// Each channel is exposed two ways:
///
///  - **Stochastic tier** (any n): the channel's Pauli twirl — a discrete
///    {I, X, Y, Z} error distribution per touched qubit — is sampled from
///    a counter-based RNG substream decoupled from the sampling stream,
///    and the drawn errors are injected into the compiled schedule as
///    extra pi/2 Pauli rotations (e^{i pi/2 P} = i P up to global phase,
///    which the per-column |overlap|^2 metric cancels). Because the draws
///    depend only on (seed, global shot index), a noisy batch is
///    bit-identical for any --jobs/--eval-jobs/--shards split.
///
///  - **Deterministic oracle** (small n): the same twirled channel applied
///    as an exact Kraus map to a density matrix (DensityMatrix::applyChannel)
///    or composed into a whole-schedule superoperator. Its column fidelity
///    is the exact expectation of the stochastic tier's, so the oracle
///    validates the sampled tier within statistical tolerance. For
///    depolarizing and phase flip the twirl *is* the exact channel;
///    amplitude damping additionally exposes its exact (non-Pauli) Kraus
///    pair for channel-level tests.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_NOISEMODEL_H
#define MARQSIM_SIM_NOISEMODEL_H

#include "circuit/PauliEvolution.h"
#include "linalg/Matrix.h"
#include "support/RNG.h"

#include <optional>
#include <string>
#include <vector>

namespace marqsim {

class FidelityEvaluator;

/// Which single-qubit channel acts after every scheduled rotation.
enum class NoiseChannelKind {
  None,             ///< noiseless (the default; spec stays inert)
  Depolarizing,     ///< rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z)
  PhaseFlip,        ///< rho -> (1-p) rho + p Z rho Z
  AmplitudeDamping, ///< K0 = diag(1, sqrt(1-g)), K1 = sqrt(g) |0><1|
};

/// How the channel is evaluated.
enum class NoiseMode {
  Stochastic, ///< per-shot Pauli-twirl injection (any n)
  Density,    ///< deterministic density-matrix / superoperator oracle
};

/// CLI/stats spelling of a channel ("none", "depolarizing", ...).
const char *noiseChannelName(NoiseChannelKind K);

/// Inverse of noiseChannelName. std::nullopt for unknown spellings.
std::optional<NoiseChannelKind> parseNoiseChannel(const std::string &Name);

/// CLI/stats spelling of a mode ("stochastic" / "density").
const char *noiseModeName(NoiseMode M);

/// Inverse of noiseModeName. std::nullopt for unknown spellings.
std::optional<NoiseMode> parseNoiseMode(const std::string &Name);

/// The declarative noise configuration of a task. The default state is
/// inert: enabled() is false and every consumer (contentKey, manifests,
/// JSON frames) treats it as "field absent", so noiseless specs keep the
/// keys they had before the tier existed.
struct NoiseSpec {
  NoiseChannelKind Kind = NoiseChannelKind::None;

  /// Per-gate error probability (damping parameter gamma for
  /// AmplitudeDamping) of a single-qubit rotation. In [0, 1].
  double Prob = 0.0;

  /// Multiplier on Prob for rotations touching >= 2 qubits (capped at
  /// probability 1). Must be positive.
  double TwoQubitFactor = 1.0;

  NoiseMode Mode = NoiseMode::Stochastic;

  /// True when the channel actually does anything.
  bool enabled() const { return Kind != NoiseChannelKind::None && Prob > 0.0; }
};

/// The probabilities of the Pauli-twirled channel: X, Y, and Z error
/// weights (identity takes the remainder 1 - total()).
struct PauliTwirlWeights {
  double PX = 0.0;
  double PY = 0.0;
  double PZ = 0.0;

  double total() const { return PX + PY + PZ; }
};

/// A configured noise channel: the pure functions that both tiers share.
class NoiseModel {
public:
  explicit NoiseModel(const NoiseSpec &Spec) : Spec(Spec) {}

  const NoiseSpec &spec() const { return Spec; }

  /// The error probability a rotation of Pauli weight \p Weight sees:
  /// Prob scaled by TwoQubitFactor for multi-qubit rotations, capped at 1.
  double effectiveProb(unsigned Weight) const;

  /// Pauli-twirl weights of the channel at probability \p P.
  /// Depolarizing: p/3 each. Phase flip: PZ = p. Amplitude damping
  /// (gamma = p): PX = PY = gamma/4, PZ = (2 - gamma - 2 sqrt(1-gamma))/4.
  PauliTwirlWeights twirlWeights(double P) const;

  /// Exact 2x2 Kraus operators of the channel at probability \p P
  /// (sum K_i^dag K_i = I). For depolarizing and phase flip this equals
  /// the twirled set below.
  std::vector<Matrix> krausOperators(double P) const;

  /// Kraus operators of the Pauli twirl at probability \p P:
  /// {sqrt(1-pt) I, sqrt(pX) X, sqrt(pY) Y, sqrt(pZ) Z}, zero-weight
  /// operators omitted. This is the channel both tiers evaluate.
  std::vector<Matrix> twirledKraus(double P) const;

  /// The stochastic tier's injection: after each rotation of \p Schedule,
  /// draws one twirl outcome per support qubit (ascending qubit order)
  /// from \p Rng and appends the drawn errors as pi/2 Pauli rotations.
  /// Deterministic in the RNG stream; the noiseless schedule is a prefix
  /// pattern, never reordered.
  std::vector<ScheduledRotation>
  injectErrors(const std::vector<ScheduledRotation> &Schedule,
               RNG &Rng) const;

  /// Density oracle, direct form: mean over the evaluator's columns x of
  /// <psi_x| Lambda(|x><x|) |psi_x>, where Lambda replays \p Schedule with
  /// the twirled channel applied to every support qubit after each
  /// rotation. Exactly the expectation of the stochastic tier's per-shot
  /// state fidelity over its noise draws. \p NumQubits <= 6.
  double densityFidelity(const std::vector<ScheduledRotation> &Schedule,
                         unsigned NumQubits,
                         const FidelityEvaluator &Eval) const;

  /// Density oracle, composed form: the whole-schedule superoperator
  /// S = prod_k (N_k (x) gates), acting on row-major vec(rho). Cacheable
  /// (the ArtifactStore's Superoperator type); D^4 entries, so small n
  /// only. densityFidelityFromSuper reads the per-column fidelities
  /// straight out of S's columns (vec(|x><x|) = e_{x D + x}).
  Matrix buildSuperoperator(const std::vector<ScheduledRotation> &Schedule,
                            unsigned NumQubits) const;
  double densityFidelityFromSuper(const Matrix &Super,
                                  const FidelityEvaluator &Eval) const;

  /// The salt-decoupled seed of the noise substream: noise draws for shot
  /// k come from RNG::forShot(noiseStreamSeed(Seed), k), so they never
  /// perturb the sampling stream (a noisy run walks the same Markov paths
  /// as its noiseless twin).
  static uint64_t noiseStreamSeed(uint64_t Seed);

private:
  NoiseSpec Spec;
};

} // namespace marqsim

#endif // MARQSIM_SIM_NOISEMODEL_H
