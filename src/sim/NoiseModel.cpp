//===- sim/NoiseModel.cpp - Per-gate noise channels ---------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/NoiseModel.h"

#include "sim/DensityMatrix.h"
#include "sim/Fidelity.h"

#include <algorithm>
#include <cmath>

using namespace marqsim;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *marqsim::noiseChannelName(NoiseChannelKind K) {
  switch (K) {
  case NoiseChannelKind::None:
    return "none";
  case NoiseChannelKind::Depolarizing:
    return "depolarizing";
  case NoiseChannelKind::PhaseFlip:
    return "phase-flip";
  case NoiseChannelKind::AmplitudeDamping:
    return "amplitude-damping";
  }
  return "none";
}

std::optional<NoiseChannelKind>
marqsim::parseNoiseChannel(const std::string &Name) {
  if (Name == "none")
    return NoiseChannelKind::None;
  if (Name == "depolarizing")
    return NoiseChannelKind::Depolarizing;
  if (Name == "phase-flip")
    return NoiseChannelKind::PhaseFlip;
  if (Name == "amplitude-damping")
    return NoiseChannelKind::AmplitudeDamping;
  return std::nullopt;
}

const char *marqsim::noiseModeName(NoiseMode M) {
  return M == NoiseMode::Density ? "density" : "stochastic";
}

std::optional<NoiseMode> marqsim::parseNoiseMode(const std::string &Name) {
  if (Name == "stochastic")
    return NoiseMode::Stochastic;
  if (Name == "density")
    return NoiseMode::Density;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Channel algebra
//===----------------------------------------------------------------------===//

double NoiseModel::effectiveProb(unsigned Weight) const {
  if (Weight == 0 || !Spec.enabled())
    return 0.0;
  double P = Spec.Prob;
  if (Weight >= 2)
    P *= Spec.TwoQubitFactor;
  return std::min(P, 1.0);
}

PauliTwirlWeights NoiseModel::twirlWeights(double P) const {
  PauliTwirlWeights W;
  switch (Spec.Kind) {
  case NoiseChannelKind::None:
    break;
  case NoiseChannelKind::Depolarizing:
    W.PX = W.PY = W.PZ = P / 3.0;
    break;
  case NoiseChannelKind::PhaseFlip:
    W.PZ = P;
    break;
  case NoiseChannelKind::AmplitudeDamping:
    // Twirling K0 = diag(1, sqrt(1-g)), K1 = sqrt(g)|0><1| over the Pauli
    // group: pX = pY = g/4, pZ = (2 - g - 2 sqrt(1-g))/4.
    W.PX = W.PY = P / 4.0;
    W.PZ = (2.0 - P - 2.0 * std::sqrt(1.0 - P)) / 4.0;
    break;
  }
  return W;
}

namespace {

Matrix pauli2x2(PauliOpKind K) {
  Matrix M(2, 2);
  switch (K) {
  case PauliOpKind::I:
    M.at(0, 0) = M.at(1, 1) = 1.0;
    break;
  case PauliOpKind::X:
    M.at(0, 1) = M.at(1, 0) = 1.0;
    break;
  case PauliOpKind::Y:
    M.at(0, 1) = Complex(0.0, -1.0);
    M.at(1, 0) = Complex(0.0, 1.0);
    break;
  case PauliOpKind::Z:
    M.at(0, 0) = 1.0;
    M.at(1, 1) = -1.0;
    break;
  }
  return M;
}

/// Entry-wise complex conjugate (A-bar, not the adjoint).
Matrix conjugated(const Matrix &A) {
  Matrix Out(A.rows(), A.cols());
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < A.cols(); ++J)
      Out.at(I, J) = std::conj(A.at(I, J));
  return Out;
}

} // namespace

std::vector<Matrix> NoiseModel::krausOperators(double P) const {
  if (Spec.Kind == NoiseChannelKind::AmplitudeDamping) {
    Matrix K0(2, 2), K1(2, 2);
    K0.at(0, 0) = 1.0;
    K0.at(1, 1) = std::sqrt(1.0 - P);
    K1.at(0, 1) = std::sqrt(P);
    return {std::move(K0), std::move(K1)};
  }
  return twirledKraus(P);
}

std::vector<Matrix> NoiseModel::twirledKraus(double P) const {
  PauliTwirlWeights W = twirlWeights(P);
  std::vector<Matrix> Kraus;
  Kraus.push_back(pauli2x2(PauliOpKind::I) *
                  Complex(std::sqrt(1.0 - W.total()), 0.0));
  if (W.PX > 0.0)
    Kraus.push_back(pauli2x2(PauliOpKind::X) * Complex(std::sqrt(W.PX), 0.0));
  if (W.PY > 0.0)
    Kraus.push_back(pauli2x2(PauliOpKind::Y) * Complex(std::sqrt(W.PY), 0.0));
  if (W.PZ > 0.0)
    Kraus.push_back(pauli2x2(PauliOpKind::Z) * Complex(std::sqrt(W.PZ), 0.0));
  return Kraus;
}

//===----------------------------------------------------------------------===//
// Stochastic tier
//===----------------------------------------------------------------------===//

std::vector<ScheduledRotation>
NoiseModel::injectErrors(const std::vector<ScheduledRotation> &Schedule,
                         RNG &Rng) const {
  // e^{i pi/2 P} = i P: the injected rotation applies the drawn Pauli
  // exactly, up to a global phase the |overlap|^2 metric cancels.
  constexpr double HalfPi = 1.5707963267948966;
  std::vector<ScheduledRotation> Noisy;
  Noisy.reserve(Schedule.size() * 2);
  for (const ScheduledRotation &Step : Schedule) {
    Noisy.push_back(Step);
    PauliTwirlWeights W = twirlWeights(effectiveProb(Step.String.weight()));
    if (W.total() <= 0.0)
      continue;
    // One draw per support qubit, in ascending qubit order — a fixed
    // iteration order is part of the determinism contract.
    uint64_t Support = Step.String.supportMask();
    for (unsigned Q = 0; Support != 0; ++Q, Support >>= 1) {
      if (!(Support & 1))
        continue;
      double U = Rng.uniform();
      PauliOpKind Err;
      if (U < W.PX)
        Err = PauliOpKind::X;
      else if (U < W.PX + W.PY)
        Err = PauliOpKind::Y;
      else if (U < W.total())
        Err = PauliOpKind::Z;
      else
        continue;
      PauliString P;
      P.setOp(Q, Err);
      Noisy.emplace_back(P, HalfPi);
    }
  }
  return Noisy;
}

uint64_t NoiseModel::noiseStreamSeed(uint64_t Seed) {
  // Salt-decoupled like PerturbSeed: the noise stream never consumes from
  // (or perturbs) the sampling stream, so a noisy batch walks the exact
  // Markov paths of its noiseless twin.
  return Seed ^ 0x6e6f6973655eedULL;
}

//===----------------------------------------------------------------------===//
// Density oracle
//===----------------------------------------------------------------------===//

double
NoiseModel::densityFidelity(const std::vector<ScheduledRotation> &Schedule,
                            unsigned NumQubits,
                            const FidelityEvaluator &Eval) const {
  double Acc = 0.0;
  const size_t NumCols = Eval.numColumns();
  for (size_t C = 0; C < NumCols; ++C) {
    DensityMatrix Rho(NumQubits, Eval.columns()[C]);
    for (const ScheduledRotation &Step : Schedule) {
      Rho.applyPauliExp(Step.String, Step.Tau);
      std::vector<Matrix> Kraus =
          twirledKraus(effectiveProb(Step.String.weight()));
      uint64_t Support = Step.String.supportMask();
      for (unsigned Q = 0; Support != 0; ++Q, Support >>= 1)
        if (Support & 1)
          Rho.applyChannel(Kraus, Q);
    }
    Acc += Rho.overlap(StateVector(NumQubits, Eval.targets()[C]));
  }
  return Acc / static_cast<double>(NumCols);
}

Matrix
NoiseModel::buildSuperoperator(const std::vector<ScheduledRotation> &Schedule,
                               unsigned NumQubits) const {
  const size_t Dim = size_t(1) << NumQubits;
  // Row-major vec: vec(rho)_{i D + j} = rho_ij, so a conjugation
  // rho -> A rho B^dag becomes (A (x) B-bar) vec(rho).
  Matrix Super = Matrix::identity(Dim * Dim);
  for (const ScheduledRotation &Step : Schedule) {
    // The gate e^{i tau P} = cos(tau) I + i sin(tau) P.
    Matrix U = Matrix::identity(Dim) * Complex(std::cos(Step.Tau), 0.0);
    U += Step.String.toMatrix(NumQubits) *
         Complex(0.0, std::sin(Step.Tau));
    Super = Matrix::kron(U, conjugated(U)) * Super;
    std::vector<Matrix> Kraus =
        twirledKraus(effectiveProb(Step.String.weight()));
    uint64_t Support = Step.String.supportMask();
    for (unsigned Q = 0; Support != 0; ++Q, Support >>= 1) {
      if (!(Support & 1))
        continue;
      Matrix Channel(Dim * Dim, Dim * Dim);
      for (const Matrix &K : Kraus) {
        Matrix Full = embedSingleQubit(K, Q, NumQubits);
        Channel += Matrix::kron(Full, conjugated(Full));
      }
      Super = Channel * Super;
    }
  }
  return Super;
}

double NoiseModel::densityFidelityFromSuper(const Matrix &Super,
                                            const FidelityEvaluator &Eval) const {
  const size_t Dim = size_t(1) << Eval.numQubits();
  if (Super.rows() != Dim * Dim || Super.cols() != Dim * Dim)
    throw std::invalid_argument("superoperator dimension mismatch");
  double Acc = 0.0;
  const size_t NumCols = Eval.numColumns();
  for (size_t C = 0; C < NumCols; ++C) {
    // vec(|x><x|) = e_{x D + x}: the evolved state is column x D + x of
    // the superoperator, read as a D x D density matrix.
    const uint64_t X = Eval.columns()[C];
    const CVector &Psi = Eval.targets()[C];
    Complex F = 0.0;
    for (size_t I = 0; I < Dim; ++I)
      for (size_t J = 0; J < Dim; ++J)
        F += std::conj(Psi[I]) * Super.at(I * Dim + J, X * Dim + X) * Psi[J];
    Acc += F.real();
  }
  return Acc / static_cast<double>(NumCols);
}
