//===- sim/Fidelity.h - Unitary fidelity estimation -------------*- C++ -*-===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's algorithmic-accuracy metric: the unitary fidelity
///   F = |tr(U_app * U^dag)| / 2^n
/// between the compiled circuit's unitary U_app and the exact evolution
/// U = e^{iHt} (Section 6.1 "Metrics"; the magnitude makes the metric
/// global-phase invariant).
///
/// The trace is an average of per-column overlaps <x|U^dag U_app|x>, so it
/// can be computed exactly (all 2^n columns) or estimated without bias from
/// a random column subset. FidelityEvaluator precomputes the exact target
/// columns once per (H, t) and reuses them across every configuration,
/// epsilon, and repetition — mirroring how the paper amortizes its GPU
/// evaluation.
///
/// Evaluation runs on StatePanel: columns are partitioned into fixed-width
/// panel blocks (StatePanel::PreferredWidth, independent of any worker
/// count), each block replays the schedule once for all its columns, and
/// the per-column overlaps are reduced in ascending column order. The
/// blocks are independent, so an EvalJobs argument fans them across
/// ThreadPool workers — the within-shot parallelism the schedule's
/// sequential Markov walk cannot offer — while the fixed partition and
/// fixed-order reduction keep the result bit-identical to the serial
/// evaluation for every EvalJobs value.
///
/// Two kernel-level refinements keep the same bits while cutting memory
/// traffic: a schedule's final rotation is fused with the overlap
/// accumulation (StatePanel::applyPauliExpAllFused — one streaming pass
/// instead of a rotation sweep plus one strided overlapWith re-read per
/// column; targets are packed once per block and cached), and width-1
/// tail blocks evolve a single interleaved BasicStateVector walk instead
/// of a padded panel — which is also where the FP32 tier's interleaved
/// walk kernels earn their keep. Both refinements preserve each column's
/// ascending-basis overlap chain, so FP64 results are bit-identical to
/// the unfused panel-only evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef MARQSIM_SIM_FIDELITY_H
#define MARQSIM_SIM_FIDELITY_H

#include "circuit/PauliEvolution.h"
#include "pauli/Hamiltonian.h"
#include "sim/Precision.h"
#include "sim/StatePanel.h"
#include "sim/StateVector.h"
#include "support/RNG.h"

#include <memory>

namespace marqsim {

namespace detail {
/// Lazily packed per-block TargetPanels (Fidelity.cpp). Held behind a
/// shared_ptr so FidelityEvaluator stays movable/copyable — the targets
/// are immutable, so sharing the cache across copies is safe.
struct TargetPanelCache;
} // namespace detail

/// Exact |tr(A * B^dag)| / dim for two equal-size square matrices.
double unitaryFidelity(const Matrix &UApp, const Matrix &UExact);

/// Evaluates compiled schedules against the exact evolution e^{iHt}.
class FidelityEvaluator {
public:
  /// Precomputes target columns e^{iHt}|x> for \p NumColumns basis states
  /// (all columns if NumColumns >= 2^n, making the estimate exact).
  /// Column choice is deterministic in \p Seed.
  FidelityEvaluator(const Hamiltonian &H, double T, size_t NumColumns,
                    uint64_t Seed = 7);

  /// Rehydrates an evaluator from previously computed targets (the
  /// ArtifactStore's disk tier). \p Targets must be the exact columns the
  /// computing constructor produced for the same (H, T, columns, seed) —
  /// the store guarantees this by content-hash keying plus checksums.
  FidelityEvaluator(unsigned NQubits, std::vector<uint64_t> Columns,
                    std::vector<CVector> Targets);

  /// Fidelity of a schedule of analytic Pauli exponentials. \p EvalJobs
  /// fans the fixed-width column blocks across that many workers (0 = all
  /// cores); the result is bit-identical for every value. \p Precision
  /// selects the panel tier: FP64 (the bit-exact default) or the opt-in
  /// FP32 throughput tier, whose result only tracks FP64 to a tolerance.
  double fidelity(const std::vector<ScheduledRotation> &Schedule,
                  unsigned EvalJobs = 1,
                  EvalPrecision Precision = EvalPrecision::FP64) const;

  /// Mean column *state* fidelity (1/C) sum_x |<psi_x| V |x>|^2 of a
  /// schedule — the noisy tier's metric. Unlike fidelity()'s |trace|
  /// average, the per-column magnitude makes each column phase-invariant
  /// on its own, so the expectation over stochastic Pauli-error draws
  /// equals the density-matrix oracle's value exactly. Same panel
  /// harness, same bit-identity contract for every EvalJobs.
  double stateFidelity(const std::vector<ScheduledRotation> &Schedule,
                       unsigned EvalJobs = 1,
                       EvalPrecision Precision = EvalPrecision::FP64) const;

  /// Fidelity of an explicit gate-level circuit (slower; for validation).
  double fidelityOfCircuit(const Circuit &C, unsigned EvalJobs = 1) const;

  unsigned numQubits() const { return NQubits; }
  size_t numColumns() const { return Columns.size(); }
  bool isExact() const { return Columns.size() == (size_t(1) << NQubits); }

  /// The chosen basis indices and their exact targets e^{iHt}|x>, in
  /// matching order (serialization surface of the artifact store).
  const std::vector<uint64_t> &columns() const { return Columns; }
  const std::vector<CVector> &targets() const { return Targets; }

private:
  /// Shared evaluation harness: partitions the columns into fixed-width
  /// panel blocks, lets \p Evolve drive each block's state (a PanelT for
  /// multi-column blocks, a BasicStateVector walk of the same precision
  /// for width-1 blocks), and returns the per-column overlaps in column
  /// order. When \p FusedTail is non-null, \p Evolve must leave that
  /// final rotation unapplied: panel blocks then run it fused with the
  /// overlap accumulation against a cached TargetPanel, and walk blocks
  /// apply it before their (single) overlap — both orders bit-identical
  /// to evolving everything and overlapping afterwards. Both metrics
  /// reduce the returned vector in fixed order.
  template <typename PanelT, typename EvolveFn>
  std::vector<Complex>
  collectOverlaps(unsigned EvalJobs, const EvolveFn &Evolve,
                  const ScheduledRotation *FusedTail = nullptr) const;

  /// collectOverlaps reduced to |sum|/C (the unitary-fidelity metric).
  template <typename PanelT, typename EvolveFn>
  double evaluatePanels(unsigned EvalJobs, const EvolveFn &Evolve,
                        const ScheduledRotation *FusedTail = nullptr) const;

  /// The packed targets of one block at one stride, built on first use.
  const TargetPanel &targetPanelFor(size_t Block, size_t Begin, size_t Count,
                                    size_t Stride) const;

  unsigned NQubits;
  std::vector<uint64_t> Columns;  // basis indices
  std::vector<CVector> Targets;   // e^{iHt}|x> per column
  std::shared_ptr<detail::TargetPanelCache> PanelCache;
};

} // namespace marqsim

#endif // MARQSIM_SIM_FIDELITY_H
