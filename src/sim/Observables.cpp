//===- sim/Observables.cpp - Expectation values -------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Observables.h"

using namespace marqsim;

double marqsim::expectation(const StateVector &Psi, const PauliString &P) {
  assert((P.supportMask() >> Psi.numQubits()) == 0 &&
         "observable acts outside the register");
  const CVector &Amp = Psi.amplitudes();
  const uint64_t XM = P.xMask();
  Complex Acc = 0.0;
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Acc += std::conj(Amp[X ^ XM]) * P.applyToBasis(X) * Amp[X];
  return Acc.real();
}

double marqsim::expectation(const StateVector &Psi, const Hamiltonian &H) {
  double E = 0.0;
  for (const PauliTerm &T : H.terms())
    E += T.Coeff * expectation(Psi, T.String);
  return E;
}

double marqsim::occupation(const StateVector &Psi, unsigned Q) {
  return 0.5 * (1.0 - expectation(Psi, PauliString(0, 1ULL << Q)));
}

double marqsim::spinZ(const StateVector &Psi, unsigned Q) {
  return 0.5 * expectation(Psi, PauliString(0, 1ULL << Q));
}
