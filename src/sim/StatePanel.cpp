//===- sim/StatePanel.cpp - Multi-column statevector panel -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StatePanel.h"

#include <cmath>

using namespace marqsim;

StatePanel::StatePanel(unsigned NumQubits, const uint64_t *Basis,
                       size_t NumColumns)
    : NQubits(NumQubits), Dim(size_t(1) << NumQubits), Cols(NumColumns),
      Data(Dim * NumColumns, Complex(0.0, 0.0)) {
  assert(NumQubits <= 26 && "statevector too large");
  for (size_t Col = 0; Col < Cols; ++Col) {
    assert(Basis[Col] < Dim && "basis state out of range");
    Data[Col * Dim + Basis[Col]] = 1.0;
  }
}

StatePanel::StatePanel(unsigned NumQubits, const std::vector<uint64_t> &Basis)
    : StatePanel(NumQubits, Basis.data(), Basis.size()) {}

void StatePanel::applyPauliExpAll(const PauliString &P, double Theta) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  // Per-rotation setup — masks, trig, the +/- i^k phase constants — done
  // once here and amortized over every column below.
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Data)
      A *= Phase;
    return;
  }
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases(P);
  if (XM == 0) {
    // Diagonal fast path, swept index-outer: the phase for basis index X
    // is selected once and applied to X's slot in every column. Same
    // two-product expression as StateVector's diagonal path (a fused
    // cos +/- i sin factor would flip zero signs when cos(Theta) < 0).
    for (uint64_t X = 0; X < Dim; ++X) {
      const Complex Ph = Phases.at(X);
      Complex *Slot = Data.data() + X;
      for (size_t Col = 0; Col < Cols; ++Col, Slot += Dim) {
        const Complex A = *Slot;
        *Slot = CosT * A + ISinT * (Ph * A);
      }
    }
    return;
  }
  // Fused butterflies, pair-outer / column-inner: each pair's phase pair
  // is selected once per sweep instead of once per column. The per-element
  // arithmetic matches StateVector::applyPauliExp exactly.
  const uint64_t Pivot = XM & (~XM + 1); // lowest set bit of XM
  for (uint64_t X = 0; X < Dim; ++X) {
    if (X & Pivot)
      continue;
    const uint64_t Y = X ^ XM;
    const Complex PhX = Phases.at(X);
    const Complex PhY = Phases.at(Y);
    Complex *SlotX = Data.data() + X;
    Complex *SlotY = Data.data() + Y;
    for (size_t Col = 0; Col < Cols; ++Col, SlotX += Dim, SlotY += Dim) {
      const Complex A0 = *SlotX;
      const Complex A1 = *SlotY;
      *SlotX = CosT * A0 + ISinT * (PhY * A1);
      *SlotY = CosT * A1 + ISinT * (PhX * A0);
    }
  }
}

void StatePanel::applyAll(const Gate &G) {
  Complex M[2][2];
  if (detail::singleQubitMatrix(G, M)) {
    assert(G.Qubit0 < NQubits && "qubit out of range");
    const uint64_t Bit = 1ULL << G.Qubit0;
    for (size_t Col = 0; Col < Cols; ++Col) {
      Complex *Amp = column(Col);
      for (uint64_t Base = 0; Base < Dim; ++Base) {
        if (Base & Bit)
          continue;
        Complex A0 = Amp[Base];
        Complex A1 = Amp[Base | Bit];
        Amp[Base] = M[0][0] * A0 + M[0][1] * A1;
        Amp[Base | Bit] = M[1][0] * A0 + M[1][1] * A1;
      }
    }
    return;
  }
  assert(G.Kind == GateKind::CNOT && "invalid GateKind");
  if (G.Kind != GateKind::CNOT)
    return; // release builds: an invalid kind stays a no-op
  const uint64_t CBit = 1ULL << G.Qubit0;
  const uint64_t TBit = 1ULL << G.Qubit1;
  for (size_t Col = 0; Col < Cols; ++Col) {
    Complex *Amp = column(Col);
    for (uint64_t X = 0; X < Dim; ++X)
      if ((X & CBit) && !(X & TBit))
        std::swap(Amp[X], Amp[X | TBit]);
  }
}

void StatePanel::applyAll(const Circuit &C) {
  assert(C.numQubits() <= NQubits && "circuit wider than panel");
  for (const Gate &G : C.gates())
    applyAll(G);
}

Complex StatePanel::overlapWith(const CVector &Target, size_t Col) const {
  assert(Target.size() == Dim && "overlap size mismatch");
  const Complex *Amp = column(Col);
  Complex S = 0.0;
  for (size_t I = 0; I < Dim; ++I)
    S += std::conj(Target[I]) * Amp[I];
  return S;
}
