//===- sim/StatePanel.cpp - Multi-column statevector panel -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StatePanel.h"

#include "sim/Kernels.h"

#include <cmath>
#include <type_traits>

using namespace marqsim;

TargetPanel::TargetPanel(const CVector *Targets, size_t Count, size_t Stride)
    : Dim(Count ? Targets[0].size() : 0), Cols(Count), Stride(Stride),
      TRe(Dim * Stride, 0.0), TImNeg(Dim * Stride, 0.0) {
  assert(Count > 0 && Stride >= Count && "bad target panel shape");
  for (size_t Col = 0; Col < Cols; ++Col) {
    assert(Targets[Col].size() == Dim && "target size mismatch");
    for (uint64_t X = 0; X < Dim; ++X) {
      const Complex &T = Targets[Col][X];
      TRe[size_t(X) * Stride + Col] = T.real();
      TImNeg[size_t(X) * Stride + Col] = -T.imag(); // exact sign flip
    }
  }
}

template <typename Real>
BasicStatePanel<Real>::BasicStatePanel(unsigned NumQubits,
                                       const uint64_t *Basis,
                                       size_t NumColumns)
    : NQubits(NumQubits), Dim(size_t(1) << NumQubits), Cols(NumColumns),
      Stride((NumColumns + LaneMultiple - 1) & ~(LaneMultiple - 1)),
      Re(Dim * Stride, Real(0)), Im(Dim * Stride, Real(0)) {
  assert(NumQubits <= 26 && "statevector too large");
  for (size_t Col = 0; Col < Cols; ++Col) {
    assert(Basis[Col] < Dim && "basis state out of range");
    Re[size_t(Basis[Col]) * Stride + Col] = Real(1);
  }
}

template <typename Real>
BasicStatePanel<Real>::BasicStatePanel(unsigned NumQubits,
                                       const std::vector<uint64_t> &Basis)
    : BasicStatePanel(NumQubits, Basis.data(), Basis.size()) {}

template <typename Real>
CVector BasicStatePanel<Real>::column(size_t Col) const {
  assert(Col < Cols && "column out of range");
  CVector Out(Dim);
  for (uint64_t X = 0; X < Dim; ++X)
    Out[X] = at(Col, X);
  return Out;
}

template <typename Real>
void BasicStatePanel<Real>::applyPauliExpAll(const PauliString &P,
                                             double Theta) {
  assert((P.supportMask() >> NQubits) == 0 &&
         "Pauli string acts outside the register");
  using C = std::complex<Real>;
  // Per-rotation setup — masks, trig, the +/- i^k phase constants — done
  // once here and amortized over every column below. The trig runs in
  // double for every instantiation; the FP32 tier narrows the constants
  // exactly once per rotation.
  const C CosT(Real(std::cos(Theta)), Real(0));
  const C ISinT(Real(0), Real(std::sin(Theta)));
  if (P.isIdentity()) {
    // exp(i Theta I) is the global phase cos + i sin; elementwise over
    // the planes, padding lanes included (they stay zero).
    const C Phase = CosT + ISinT;
    for (size_t I = 0, E = Re.size(); I < E; ++I) {
      const C A(Re[I], Im[I]);
      const C N = A * Phase;
      Re[I] = N.real();
      Im[I] = N.imag();
    }
    return;
  }
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases(P);
  const kernels::Ops &K = kernels::active();
  if constexpr (std::is_same_v<Real, double>) {
    if (XM == 0)
      K.PanelExpDiagonalF64(Re.data(), Im.data(), Dim, Stride, CosT, ISinT,
                            Phases);
    else
      K.PanelExpButterflyF64(Re.data(), Im.data(), Dim, Stride, XM, CosT,
                             ISinT, Phases);
  } else {
    const detail::PauliPhasesF32 PhasesF(Phases);
    if (XM == 0)
      K.PanelExpDiagonalF32(Re.data(), Im.data(), Dim, Stride, CosT, ISinT,
                            PhasesF);
    else
      K.PanelExpButterflyF32(Re.data(), Im.data(), Dim, Stride, XM, CosT,
                             ISinT, PhasesF);
  }
}

template <typename Real> void BasicStatePanel<Real>::applyAll(const Gate &G) {
  using C = std::complex<Real>;
  Complex M64[2][2];
  if (detail::singleQubitMatrix(G, M64)) {
    assert(G.Qubit0 < NQubits && "qubit out of range");
    // Matrix entries narrow once per gate; for the double panel this is
    // the identical matrix a standalone StateVector applies.
    const C M00(M64[0][0]), M01(M64[0][1]), M10(M64[1][0]), M11(M64[1][1]);
    const uint64_t Bit = 1ULL << G.Qubit0;
    for (uint64_t Base = 0; Base < Dim; ++Base) {
      if (Base & Bit)
        continue;
      Real *Re0 = Re.data() + Base * Stride;
      Real *Im0 = Im.data() + Base * Stride;
      Real *Re1 = Re.data() + (Base | Bit) * Stride;
      Real *Im1 = Im.data() + (Base | Bit) * Stride;
      for (size_t L = 0; L < Stride; ++L) {
        const C A0(Re0[L], Im0[L]);
        const C A1(Re1[L], Im1[L]);
        const C N0 = M00 * A0 + M01 * A1;
        const C N1 = M10 * A0 + M11 * A1;
        Re0[L] = N0.real();
        Im0[L] = N0.imag();
        Re1[L] = N1.real();
        Im1[L] = N1.imag();
      }
    }
    return;
  }
  assert(G.Kind == GateKind::CNOT && "invalid GateKind");
  if (G.Kind != GateKind::CNOT)
    return; // release builds: an invalid kind stays a no-op
  const uint64_t CBit = 1ULL << G.Qubit0;
  const uint64_t TBit = 1ULL << G.Qubit1;
  for (uint64_t X = 0; X < Dim; ++X) {
    if (!(X & CBit) || (X & TBit))
      continue;
    Real *Re0 = Re.data() + X * Stride;
    Real *Im0 = Im.data() + X * Stride;
    Real *Re1 = Re.data() + (X | TBit) * Stride;
    Real *Im1 = Im.data() + (X | TBit) * Stride;
    for (size_t L = 0; L < Stride; ++L) {
      std::swap(Re0[L], Re1[L]);
      std::swap(Im0[L], Im1[L]);
    }
  }
}

template <typename Real>
void BasicStatePanel<Real>::applyAll(const Circuit &C) {
  assert(C.numQubits() <= NQubits && "circuit wider than panel");
  for (const Gate &G : C.gates())
    applyAll(G);
}

template <typename Real>
void BasicStatePanel<Real>::applyPauliExpAllFused(const PauliString &P,
                                                  double Theta,
                                                  const TargetPanel &Targets,
                                                  Complex *Out) {
  assert(Targets.laneStride() == Stride && Targets.dim() == Dim &&
         Targets.numColumns() == Cols && "target panel shape mismatch");
  using C = std::complex<Real>;
  const C CosT(Real(std::cos(Theta)), Real(0));
  const C ISinT(Real(0), Real(std::sin(Theta)));
  const double *WR = Targets.realPlane();
  const double *WI = Targets.negImagPlane();
  if (P.isIdentity()) {
    // The kernels have no identity path; rotate via the global-phase loop
    // and accumulate here with the same per-lane ascending-basis chain
    // the fused kernels run (each op individually rounded), so this path
    // is bit-identical to applyPauliExpAll + overlapWith too.
    applyPauliExpAll(P, Theta);
    for (size_t Col = 0; Col < Cols; ++Col) {
      double AccRe = 0.0, AccIm = 0.0;
      for (uint64_t X = 0; X < Dim; ++X) {
        const size_t I = size_t(X) * Stride + Col;
        const double Ar = static_cast<double>(Re[I]);
        const double Ai = static_cast<double>(Im[I]);
        AccRe += WR[I] * Ar - WI[I] * Ai;
        AccIm += WR[I] * Ai + WI[I] * Ar;
      }
      Out[Col] = Complex(AccRe, AccIm);
    }
    return;
  }
  const uint64_t XM = P.xMask();
  const detail::PauliPhases Phases(P);
  const kernels::Ops &K = kernels::active();
  // Lane L of the accumulator planes carries column L's overlap chain;
  // padding lanes accumulate zeros against zero targets and are dropped.
  std::vector<double, AlignedAllocator<double, 64>> AccRe(Stride, 0.0);
  std::vector<double, AlignedAllocator<double, 64>> AccIm(Stride, 0.0);
  if constexpr (std::is_same_v<Real, double>) {
    K.PanelExpOverlapF64(Re.data(), Im.data(), Dim, Stride, XM, CosT, ISinT,
                         Phases, WR, WI, AccRe.data(), AccIm.data());
  } else {
    const detail::PauliPhasesF32 PhasesF(Phases);
    K.PanelExpOverlapF32(Re.data(), Im.data(), Dim, Stride, XM, CosT, ISinT,
                         PhasesF, WR, WI, AccRe.data(), AccIm.data());
  }
  for (size_t Col = 0; Col < Cols; ++Col)
    Out[Col] = Complex(AccRe[Col], AccIm[Col]);
}

template <typename Real>
Complex BasicStatePanel<Real>::overlapWith(const CVector &Target,
                                           size_t Col) const {
  assert(Target.size() == Dim && "overlap size mismatch");
  assert(Col < Cols && "column out of range");
  Complex S = 0.0;
  for (uint64_t X = 0; X < Dim; ++X)
    S += std::conj(Target[X]) * at(Col, X);
  return S;
}

template class marqsim::BasicStatePanel<double>;
template class marqsim::BasicStatePanel<float>;
