//===- examples/molecule_dynamics.cpp - Molecular simulation workload --------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The workload class the paper's introduction motivates: simulating the
// electronic structure of a small molecule. This example takes the Na+-like
// benchmark from the registry, compiles it with all three paper
// configurations at several precision targets, and reports the gate-count /
// accuracy trade-off plus a physical observable (electron-number dynamics
// of a reference orbital) computed from the compiled circuit.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"
#include "hamgen/Registry.h"
#include "sim/Evolution.h"
#include "sim/Fidelity.h"
#include "sim/StateVector.h"
#include "stats/Stats.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>
#include <memory>

using namespace marqsim;

namespace {

/// <psi| n_orbital |psi> under Jordan-Wigner: (1 - <Z_orbital>) / 2.
double orbitalOccupation(const StateVector &SV, unsigned Orbital) {
  double ExpectZ = 0.0;
  const CVector &Amp = SV.amplitudes();
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    double P = std::norm(Amp[X]);
    ExpectZ += ((X >> Orbital) & 1) ? -P : P;
  }
  return 0.5 * (1.0 - ExpectZ);
}

} // namespace

int main() {
  auto Spec = *findBenchmark("Na+");
  Hamiltonian H = makeBenchmark(Spec).splitLargeTerms();
  std::cout << "Molecular dynamics on " << Spec.Name << " (" << Spec.Qubits
            << " qubits, " << H.numTerms() << " Pauli strings, lambda="
            << formatDouble(H.lambda()) << ")\n\n";

  FidelityEvaluator Eval(H, Spec.Time, /*NumColumns=*/16);

  struct Config {
    const char *Name;
    double WQd, WGc, WRp;
  };
  const Config Configs[] = {{"Baseline", 1.0, 0.0, 0.0},
                            {"MarQSim-GC", 0.4, 0.6, 0.0},
                            {"MarQSim-GC-RP", 0.4, 0.3, 0.3}};

  // Each (config, epsilon) cell is a 4-shot batch: the matrix, graph, and
  // alias tables are built once per config and shared by every shot.
  CompilerEngine Engine;
  const size_t ShotsPerCell = 4;
  Table T({"config", "eps", "N", "CNOT(mean)", "total(mean)", "fid(mean)",
           "fid(std)"});
  std::vector<ScheduledRotation> BestSchedule;
  for (const Config &C : Configs) {
    TransitionMatrix P = makeConfigMatrix(H, C.WQd, C.WGc, C.WRp, 8);
    auto G = std::make_shared<const HTTGraph>(H, std::move(P));
    std::shared_ptr<const SamplingStrategy> First;
    for (double Eps : {0.1, 0.05}) {
      std::shared_ptr<const SamplingStrategy> Strategy =
          First ? First->retargeted(Spec.Time, Eps)
                : (First = std::make_shared<const SamplingStrategy>(
                       G, Spec.Time, Eps));
      BatchRequest Req;
      Req.Strategy = Strategy;
      Req.NumShots = ShotsPerCell;
      Req.Seed = 7;
      Req.KeepResults = true; // fidelity + observable need the schedules
      BatchResult Batch = Engine.compileBatch(Req);

      RunningStats Fids;
      for (const CompilationResult &R : Batch.Results)
        Fids.add(Eval.fidelity(R.Schedule));
      T.addRow({C.Name, formatDouble(Eps),
                std::to_string(Strategy->sampleCount()),
                formatDouble(Batch.CNOTs.Mean),
                formatDouble(Batch.Totals.Mean),
                formatDouble(Fids.mean(), 5),
                formatDouble(Fids.stddev(), 5)});
      if (Eps == 0.05 && std::string(C.Name) == "MarQSim-GC-RP")
        BestSchedule = Batch.Results.front().Schedule;
    }
  }
  T.print(std::cout);

  // Physics check: evolve the Hartree-Fock-like reference |00001111> and
  // follow the occupation of the highest occupied orbital, comparing the
  // compiled circuit against exact evolution.
  std::cout << "\nOrbital-3 occupation after evolution from |00001111>:\n";
  const uint64_t Reference = 0xF;
  StateVector Compiled(Spec.Qubits, Reference);
  for (const ScheduledRotation &Step : BestSchedule)
    Compiled.applyPauliExp(Step.String, Step.Tau);

  CVector Basis(size_t(1) << Spec.Qubits, Complex(0, 0));
  Basis[Reference] = 1.0;
  StateVector Exact(Spec.Qubits, evolveExact(H, Spec.Time, Basis));

  Table Occ({"state", "occupation(orbital 3)"});
  StateVector Ref(Spec.Qubits, Reference);
  Occ.addRow({"initial", formatDouble(orbitalOccupation(Ref, 3), 5)});
  Occ.addRow({"compiled", formatDouble(orbitalOccupation(Compiled, 3), 5)});
  Occ.addRow({"exact", formatDouble(orbitalOccupation(Exact, 3), 5)});
  Occ.print(std::cout);
  return 0;
}
