//===- examples/molecule_dynamics.cpp - Molecular simulation workload --------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The workload class the paper's introduction motivates: simulating the
// electronic structure of a small molecule. This example takes the Na+-like
// benchmark from the registry, compiles it with all three paper
// configurations at several precision targets, and reports the gate-count /
// accuracy trade-off plus a physical observable (electron-number dynamics
// of a reference orbital) computed from the compiled circuit.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Registry.h"
#include "service/SimulationService.h"
#include "sim/Evolution.h"
#include "sim/StateVector.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>

using namespace marqsim;

namespace {

/// <psi| n_orbital |psi> under Jordan-Wigner: (1 - <Z_orbital>) / 2.
double orbitalOccupation(const StateVector &SV, unsigned Orbital) {
  double ExpectZ = 0.0;
  const CVector &Amp = SV.amplitudes();
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    double P = std::norm(Amp[X]);
    ExpectZ += ((X >> Orbital) & 1) ? -P : P;
  }
  return 0.5 * (1.0 - ExpectZ);
}

} // namespace

int main() {
  auto Spec = *findBenchmark("Na+");
  Hamiltonian H = makeBenchmark(Spec);
  std::cout << "Molecular dynamics on " << Spec.Name << " (" << Spec.Qubits
            << " qubits, " << H.numTerms() << " Pauli strings, lambda="
            << formatDouble(H.lambda()) << ")\n\n";

  struct Config {
    const char *Name;
    ChannelMix Mix;
  };
  const Config Configs[] = {{"Baseline", *ChannelMix::preset("baseline")},
                            {"MarQSim-GC", *ChannelMix::preset("gc")},
                            {"MarQSim-GC-RP", *ChannelMix::preset("gc-rp")}};

  // Each (config, epsilon) cell is one declarative 4-shot task. The
  // service caches the MCFP solves, graph, and alias tables per config
  // (shared by both epsilons) and the fidelity evaluator across every
  // cell; per-shot fidelity runs on the batch workers.
  SimulationService Service;
  Table T({"config", "eps", "N", "CNOT(mean)", "total(mean)", "fid(mean)",
           "fid(std)"});
  std::vector<ScheduledRotation> BestSchedule;
  for (const Config &C : Configs) {
    for (double Eps : {0.1, 0.05}) {
      TaskSpec Cell;
      Cell.Source = HamiltonianSource::fromHamiltonian(H);
      Cell.Mix = C.Mix;
      Cell.PerturbRounds = 8;
      Cell.Time = Spec.Time;
      Cell.Epsilon = Eps;
      Cell.Shots = 4;
      Cell.Seed = 7;
      Cell.Evaluate.FidelityColumns = 16;
      Cell.Evaluate.ExportShotZero = true; // observable needs a schedule
      std::optional<TaskResult> Task = Service.run(Cell);
      if (!Task)
        return 1;

      T.addRow({C.Name, formatDouble(Eps),
                std::to_string(Task->NumSamples),
                formatDouble(Task->Batch.CNOTs.Mean),
                formatDouble(Task->Batch.Totals.Mean),
                formatDouble(Task->Fidelity.Mean, 5),
                formatDouble(Task->Fidelity.Std, 5)});
      if (Eps == 0.05 && std::string(C.Name) == "MarQSim-GC-RP")
        BestSchedule = Task->ShotZero.Schedule;
    }
  }
  T.print(std::cout);
  CacheStats S = Service.stats();
  std::cout << "cache accounting: MCFP solves=" << S.matrixMisses()
            << " reused=" << S.matrixHits() << ", evaluators built="
            << S.EvaluatorMisses << " reused=" << S.EvaluatorHits << "\n";

  // Physics check: evolve the Hartree-Fock-like reference |00001111> and
  // follow the occupation of the highest occupied orbital, comparing the
  // compiled circuit against exact evolution.
  std::cout << "\nOrbital-3 occupation after evolution from |00001111>:\n";
  const uint64_t Reference = 0xF;
  StateVector Compiled(Spec.Qubits, Reference);
  for (const ScheduledRotation &Step : BestSchedule)
    Compiled.applyPauliExp(Step.String, Step.Tau);

  CVector Basis(size_t(1) << Spec.Qubits, Complex(0, 0));
  Basis[Reference] = 1.0;
  StateVector Exact(Spec.Qubits, evolveExact(H, Spec.Time, Basis));

  Table Occ({"state", "occupation(orbital 3)"});
  StateVector Ref(Spec.Qubits, Reference);
  Occ.addRow({"initial", formatDouble(orbitalOccupation(Ref, 3), 5)});
  Occ.addRow({"compiled", formatDouble(orbitalOccupation(Compiled, 3), 5)});
  Occ.addRow({"exact", formatDouble(orbitalOccupation(Exact, 3), 5)});
  Occ.print(std::cout);
  return 0;
}
