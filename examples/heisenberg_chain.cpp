//===- examples/heisenberg_chain.cpp - Spin-lattice simulation ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A condensed-matter workload: Heisenberg XXZ spin chain dynamics. This
// example compares every compiler in the repository — deterministic Trotter
// (first/second order, several term orders), randomized-order Trotter, the
// qDrift baseline, and MarQSim — at a matched gate budget, reporting gate
// counts and fidelity, plus staggered-magnetization dynamics from the best
// compiled circuit. Every row is one declarative TaskSpec run by a shared
// SimulationService: the fidelity evaluator is built once and cached for
// all eight rows, and the MarQSim rows share one MCFP solve.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "service/SimulationService.h"
#include "sim/Evolution.h"
#include "sim/StateVector.h"
#include "support/Table.h"

#include <cmath>
#include <cstdlib>
#include <iostream>

using namespace marqsim;

namespace {

double staggeredMagnetization(const StateVector &SV) {
  const CVector &Amp = SV.amplitudes();
  unsigned N = SV.numQubits();
  double M = 0.0;
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    double P = std::norm(Amp[X]);
    double Sz = 0.0;
    for (unsigned Q = 0; Q < N; ++Q) {
      double Z = ((X >> Q) & 1) ? -0.5 : 0.5;
      Sz += (Q % 2 ? -Z : Z);
    }
    M += P * Sz;
  }
  return M / N;
}

} // namespace

int main() {
  const unsigned N = 6;
  Hamiltonian H = makeHeisenbergXXZ(N, 1.0, 1.0, 0.7, 0.25);
  const double T = 1.0;
  std::cout << "Heisenberg XXZ chain, " << N << " sites, " << H.numTerms()
            << " terms, t=" << T << "\n\n";

  SimulationService Service;
  Table Out({"compiler", "steps", "CNOTs", "total", "fidelity"});

  // The shared part of every row: same Hamiltonian, time, and fidelity
  // evaluation (the evaluator is cached after the first row).
  TaskSpec Base;
  Base.Source = HamiltonianSource::fromHamiltonian(H);
  Base.Time = T;
  Base.Evaluate.FidelityColumns = 16;
  Base.Evaluate.ExportShotZero = true;

  auto Report = [&](const std::string &Name, const TaskSpec &Spec) {
    std::string Error;
    std::optional<TaskResult> Task = Service.run(Spec, &Error);
    if (!Task) {
      std::cerr << "error: " << Error << "\n";
      std::exit(1);
    }
    const CompilationResult &R = Task->ShotZero;
    Out.addRow({Name, std::to_string(R.NumSamples),
                std::to_string(R.Counts.CNOTs),
                std::to_string(R.Counts.total()),
                formatDouble(Task->ShotFidelities[0], 5)});
  };

  const unsigned Reps = 24;
  auto Trotter = [&](TermOrderKind Kind, unsigned Order, unsigned R,
                     uint64_t Seed) {
    TaskSpec Spec = Base;
    Spec.Method = TaskMethod::Trotter;
    Spec.Order = Kind;
    Spec.TrotterOrder = Order;
    Spec.TrotterReps = R;
    Spec.Seed = Seed;
    return Spec;
  };
  Report("Trotter1 (given order)",
         Trotter(TermOrderKind::Given, 1, Reps, 0));
  Report("Trotter1 (lexicographic)",
         Trotter(TermOrderKind::Lexicographic, 1, Reps, 0));
  Report("Trotter1 (greedy matched)",
         Trotter(TermOrderKind::GreedyMatched, 1, Reps, 0));
  Report("Trotter2 (given order)",
         Trotter(TermOrderKind::Given, 2, Reps / 2, 0));
  TaskSpec RandomOrder = Base;
  RandomOrder.Method = TaskMethod::RandomOrderTrotter;
  RandomOrder.TrotterReps = Reps;
  RandomOrder.Seed = 5;
  Report("Random-order Trotter", RandomOrder);

  // Randomized compilers at a matched sampling budget.
  size_t Budget = Reps * H.numTerms();
  double Eps = 2.0 * H.lambda() * H.lambda() * T * T /
               static_cast<double>(Budget);
  TaskSpec QDrift = Base;
  QDrift.Mix = *ChannelMix::preset("baseline");
  QDrift.Epsilon = Eps;
  QDrift.Seed = 6;
  Report("qDrift baseline", QDrift);
  TaskSpec MarQ = Base;
  MarQ.Mix = *ChannelMix::preset("gc");
  MarQ.Epsilon = Eps;
  MarQ.Seed = 6;
  Report("MarQSim-GC", MarQ);
  Out.print(std::cout);

  // Staggered magnetization from the Neel state under a tight-precision
  // compiled schedule vs exact evolution. The tight task hits the cached
  // graph and alias tables; only the sampling budget changes.
  std::cout << "\nStaggered magnetization from the Neel state |010101>\n"
               "(MarQSim-GC at eps=0.005):\n";
  TaskSpec TightSpec = MarQ;
  TightSpec.Epsilon = 0.005;
  TightSpec.Seed = 8;
  TightSpec.Evaluate.FidelityColumns = 0; // observable run, no fidelity
  std::optional<TaskResult> Tight = Service.run(TightSpec);
  if (!Tight)
    return 1;
  uint64_t Neel = 0b010101 & ((1ULL << N) - 1);
  StateVector Compiled(N, Neel);
  for (const ScheduledRotation &Step : Tight->ShotZero.Schedule)
    Compiled.applyPauliExp(Step.String, Step.Tau);
  CVector Basis(size_t(1) << N, Complex(0, 0));
  Basis[Neel] = 1.0;
  StateVector Exact(N, evolveExact(H, T, Basis));
  StateVector Initial(N, Neel);

  Table Mag({"state", "m_staggered"});
  Mag.addRow({"initial", formatDouble(staggeredMagnetization(Initial), 5)});
  Mag.addRow({"compiled(t)", formatDouble(staggeredMagnetization(Compiled),
                                          5)});
  Mag.addRow({"exact(t)", formatDouble(staggeredMagnetization(Exact), 5)});
  Mag.print(std::cout);

  CacheStats S = Service.stats();
  std::cout << "\ncache accounting: evaluator built " << S.EvaluatorMisses
            << "x, reused " << S.EvaluatorHits << "x; MCFP solves="
            << S.matrixMisses() << " reused=" << S.matrixHits() << "\n";
  return 0;
}
