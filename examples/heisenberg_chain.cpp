//===- examples/heisenberg_chain.cpp - Spin-lattice simulation ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A condensed-matter workload: Heisenberg XXZ spin chain dynamics. This
// example compares every compiler in the repository — deterministic Trotter
// (first/second order, several term orders), randomized-order Trotter, the
// qDrift baseline, and MarQSim — at a matched gate budget, reporting gate
// counts and fidelity, plus staggered-magnetization dynamics from the best
// compiled circuit.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"
#include "hamgen/Models.h"
#include "sim/Evolution.h"
#include "sim/Fidelity.h"
#include "sim/StateVector.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>
#include <memory>

using namespace marqsim;

namespace {

double staggeredMagnetization(const StateVector &SV) {
  const CVector &Amp = SV.amplitudes();
  unsigned N = SV.numQubits();
  double M = 0.0;
  for (uint64_t X = 0; X < Amp.size(); ++X) {
    double P = std::norm(Amp[X]);
    double Sz = 0.0;
    for (unsigned Q = 0; Q < N; ++Q) {
      double Z = ((X >> Q) & 1) ? -0.5 : 0.5;
      Sz += (Q % 2 ? -Z : Z);
    }
    M += P * Sz;
  }
  return M / N;
}

} // namespace

int main() {
  const unsigned N = 6;
  Hamiltonian H = makeHeisenbergXXZ(N, 1.0, 1.0, 0.7, 0.25);
  const double T = 1.0;
  std::cout << "Heisenberg XXZ chain, " << N << " sites, " << H.numTerms()
            << " terms, t=" << T << "\n\n";

  FidelityEvaluator Eval(H, T, 16);
  Table Out({"compiler", "steps", "CNOTs", "total", "fidelity"});

  // Every compiler is a ScheduleStrategy run by the same engine; the gate
  // counts differ only through the scheduling policy.
  CompilerEngine Engine;
  auto Report = [&](const std::string &Name,
                    const ScheduleStrategy &Strategy, uint64_t Seed) {
    CompilationResult R = Engine.compileOne(Strategy, Seed);
    Out.addRow({Name, std::to_string(R.NumSamples),
                std::to_string(R.Counts.CNOTs),
                std::to_string(R.Counts.total()),
                formatDouble(Eval.fidelity(R.Schedule), 5)});
  };

  const unsigned Reps = 24;
  Report("Trotter1 (given order)",
         TrotterStrategy(H, T, Reps, TermOrderKind::Given), 0);
  Report("Trotter1 (lexicographic)",
         TrotterStrategy(H, T, Reps, TermOrderKind::Lexicographic), 0);
  Report("Trotter1 (greedy matched)",
         TrotterStrategy(H, T, Reps, TermOrderKind::GreedyMatched), 0);
  Report("Trotter2 (given order)",
         TrotterStrategy(H, T, Reps / 2, TermOrderKind::Given, 2), 0);
  Report("Random-order Trotter", RandomOrderTrotterStrategy(H, T, Reps), 5);

  // Randomized compilers at a matched sampling budget.
  size_t Budget = Reps * H.numTerms();
  double Eps = 2.0 * H.lambda() * H.lambda() * T * T /
               static_cast<double>(Budget);
  auto QDriftGraph = std::make_shared<const HTTGraph>(
      HTTGraph::withQDriftMatrix(H.splitLargeTerms()));
  Report("qDrift baseline", SamplingStrategy(QDriftGraph, T, Eps), 6);
  TransitionMatrix P = makeConfigMatrix(H.splitLargeTerms(), 0.4, 0.6, 0.0);
  auto G = std::make_shared<const HTTGraph>(H.splitLargeTerms(),
                                            std::move(P));
  SamplingStrategy MarQStrategy(G, T, Eps);
  Report("MarQSim-GC", MarQStrategy, 6);
  Out.print(std::cout);

  // Staggered magnetization from the Neel state under a tight-precision
  // compiled schedule vs exact evolution. (The budget-matched run above
  // uses a loose epsilon; per-circuit observables need a tighter one.)
  std::cout << "\nStaggered magnetization from the Neel state |010101>\n"
               "(MarQSim-GC at eps=0.005):\n";
  // Re-target the MarQSim strategy to the tighter budget; the alias
  // tables built above are shared, not rebuilt.
  SamplingStrategy TightStrategy(MarQStrategy, T, 0.005);
  CompilationResult Tight = Engine.compileOne(TightStrategy, 8);
  uint64_t Neel = 0b010101 & ((1ULL << N) - 1);
  StateVector Compiled(N, Neel);
  for (const ScheduledRotation &Step : Tight.Schedule)
    Compiled.applyPauliExp(Step.String, Step.Tau);
  CVector Basis(size_t(1) << N, Complex(0, 0));
  Basis[Neel] = 1.0;
  StateVector Exact(N, evolveExact(H, T, Basis));
  StateVector Initial(N, Neel);

  Table Mag({"state", "m_staggered"});
  Mag.addRow({"initial", formatDouble(staggeredMagnetization(Initial), 5)});
  Mag.addRow({"compiled(t)", formatDouble(staggeredMagnetization(Compiled),
                                          5)});
  Mag.addRow({"exact(t)", formatDouble(staggeredMagnetization(Exact), 5)});
  Mag.print(std::cout);
  return 0;
}
