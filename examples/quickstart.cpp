//===- examples/quickstart.cpp - MarQSim in five minutes ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's running example (Example 4.1) end to end:
//
//   1. Describe a Hamiltonian as a weighted sum of Pauli strings.
//   2. Build the HTT-graph IR with the qDrift transition matrix (Cor. 4.1)
//      and inspect the gate-cancellation tuning (Alg. 2 + Thm. 5.2).
//   3. Declare what to compute as TaskSpecs and let the SimulationService
//      run them: the MCFP solution, graph, alias tables, and fidelity
//      targets are resolved through content-hash caches, and per-shot
//      fidelity is evaluated inside the batch workers.
//   4. Re-run at a different precision: everything expensive is a cache
//      hit; only the sampling budget changes.
//
//===----------------------------------------------------------------------===//

#include "circuit/QasmExport.h"
#include "service/SimulationService.h"
#include "support/Table.h"

#include <iostream>

using namespace marqsim;

int main() {
  // 1. The Hamiltonian of paper Example 4.1.
  Hamiltonian H = Hamiltonian::parse(
      {{1.0, "IIIZ"}, {0.5, "IIZZ"}, {0.4, "XXYY"}, {0.1, "ZXZY"}});
  std::cout << "Hamiltonian (lambda = " << H.lambda() << "):\n"
            << H.str() << "\n";

  // 2. The IR under the hood: the tuned matrix the service will resolve
  //    for the "gc" mix (0.4 Pqd + 0.6 Pgc, paper Eq. (15)). graphFor goes
  //    through the same cache entries the compilations below reuse.
  SimulationService Service;
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(H);
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.5;
  Spec.Epsilon = 0.01;
  std::string Error;
  auto Graph = Service.graphFor(Spec, &Error);
  if (!Graph) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "Tuned matrix (0.4 Pqd + 0.6 Pgc), paper Eq. (15):\n";
  // Label rows/columns with the canonical (service-sorted) term order,
  // which may differ from the declaration order above.
  const Hamiltonian &Canon = Graph->hamiltonian();
  const TransitionMatrix &P = Graph->transitionMatrix();
  std::vector<std::string> Header = {""};
  for (size_t I = 0; I < Canon.numTerms(); ++I)
    Header.push_back(Canon.term(I).String.str(Canon.numQubits()));
  Table M(Header);
  for (size_t I = 0; I < Canon.numTerms(); ++I) {
    std::vector<std::string> Row = {
        Canon.term(I).String.str(Canon.numQubits())};
    for (size_t J = 0; J < Canon.numTerms(); ++J)
      Row.push_back(formatDouble(P.at(I, J)));
    M.addRow(Row);
  }
  M.print(std::cout);
  std::cout << "valid for compilation: " << std::boolalpha
            << Graph->isValidForCompilation() << "\n\n";

  // 3. Compile e^{iHt} declaratively: one task per configuration, 16
  //    shots each, exact fidelity from 16 columns evaluated per shot on
  //    the batch workers. The baseline task only differs in its weights.
  Spec.Shots = 16;
  Spec.Jobs = 0; // all hardware threads; results identical for any value
  Spec.Seed = 42;
  Spec.Evaluate.FidelityColumns = 16;
  Spec.Evaluate.ExportShotZero = true;

  TaskSpec Baseline = Spec;
  Baseline.Mix = *ChannelMix::preset("baseline");

  Table R({"config", "samples N", "CNOTs(mean)", "total(mean)",
           "fidelity(mean)", "fid(std)"});
  auto Report = [&](const char *Name, const TaskResult &Task) {
    R.addRow({Name, std::to_string(Task.NumSamples),
              formatDouble(Task.Batch.CNOTs.Mean),
              formatDouble(Task.Batch.Totals.Mean),
              formatDouble(Task.Fidelity.Mean, 5),
              formatDouble(Task.Fidelity.Std, 5)});
  };
  std::optional<TaskResult> QDrift = Service.run(Baseline);
  std::optional<TaskResult> Tuned = Service.run(Spec);
  if (!QDrift || !Tuned)
    return 1;
  Report("qDrift baseline", *QDrift);
  Report("MarQSim-GC", *Tuned);
  R.print(std::cout);

  std::cout << "\nFirst gates of the optimized shot 0 (depth "
            << Tuned->ShotZero.Circ.depth() << "), as OpenQASM 2.0:\n";
  Circuit Head(Tuned->ShotZero.Circ.numQubits());
  for (size_t I = 0; I < std::min<size_t>(8, Tuned->ShotZero.Circ.size());
       ++I)
    Head.append(Tuned->ShotZero.Circ.gate(I));
  std::cout << toQasm(Head);

  // 4. A tighter-precision task: the MCFP solution, graph, alias tables,
  //    and fidelity evaluator all come from the caches; only the sampling
  //    budget N = ceil(2 lambda^2 t^2 / eps) grows.
  TaskSpec Tight = Spec;
  Tight.Epsilon = 0.002;
  std::optional<TaskResult> TightRun = Service.run(Tight);
  if (!TightRun)
    return 1;
  std::cout << "\nRe-run at eps=0.002: N=" << TightRun->NumSamples
            << ", fidelity " << formatDouble(TightRun->Fidelity.Mean, 5)
            << ", batch hash " << TightRun->Batch.batchHash() << "\n";
  CacheStats S = Service.stats();
  std::cout << "cache accounting: MCFP solves=" << S.matrixMisses()
            << " reused=" << S.matrixHits() << ", graphs built="
            << S.GraphMisses << " reused=" << S.GraphHits
            << ", evaluators built=" << S.EvaluatorMisses << " reused="
            << S.EvaluatorHits << "\n";
  return 0;
}
