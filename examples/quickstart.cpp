//===- examples/quickstart.cpp - MarQSim in five minutes ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's running example (Example 4.1) end to end:
//
//   1. Describe a Hamiltonian as a weighted sum of Pauli strings.
//   2. Build the HTT-graph IR with the qDrift transition matrix (Cor. 4.1).
//   3. Tune the matrix for CNOT cancellation via min-cost flow (Alg. 2) and
//      mix it with Pqd for strong connectivity (Thm. 5.2).
//   4. Compile by sampling (Alg. 1) through the CompilerEngine and lower
//      to gates.
//   5. Check the compiled circuit against the exact evolution e^{iHt}.
//   6. Batch-compile many independent shots — setup shared, per-shot RNG
//      substreams, deterministic for any worker count.
//
//===----------------------------------------------------------------------===//

#include "circuit/QasmExport.h"
#include "core/Baselines.h"
#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"
#include "sim/Fidelity.h"
#include "support/Table.h"

#include <iostream>
#include <memory>
#include <sstream>

using namespace marqsim;

int main() {
  // 1. The Hamiltonian of paper Example 4.1.
  Hamiltonian H = Hamiltonian::parse(
      {{1.0, "IIIZ"}, {0.5, "IIZZ"}, {0.4, "XXYY"}, {0.1, "ZXZY"}});
  std::cout << "Hamiltonian (lambda = " << H.lambda() << "):\n"
            << H.str() << "\n";

  // 2. Vanilla qDrift IR: every row of the transition matrix is the
  //    stationary distribution pi_i = |h_i| / lambda.
  HTTGraph QDrift = HTTGraph::withQDriftMatrix(H);
  std::cout << "qDrift HTT graph valid: " << std::boolalpha
            << QDrift.isValidForCompilation() << "\n\n";

  // 3. Gate-cancellation tuning: solve the min-cost flow problem, then
  //    restore strong connectivity by mixing 40% Pqd back in.
  TransitionMatrix Pgc = buildGateCancellation(H);
  TransitionMatrix P = combineWithQDrift(H, Pgc, 0.4);
  HTTGraph Tuned(H, P);
  std::cout << "Tuned matrix (0.4 Pqd + 0.6 Pgc), paper Eq. (15):\n";
  Table M({"", "H1", "H2", "H3", "H4"});
  for (size_t I = 0; I < 4; ++I)
    M.addRow({"H" + std::to_string(I + 1), formatDouble(P.at(I, 0)),
              formatDouble(P.at(I, 1)), formatDouble(P.at(I, 2)),
              formatDouble(P.at(I, 3))});
  M.print(std::cout);
  std::cout << "valid for compilation: " << Tuned.isValidForCompilation()
            << "\n\n";

  // 4. Compile e^{iHt} by sampling the chain (Algorithm 1). The engine
  //    runs any ScheduleStrategy; both strategies share one deterministic
  //    lowering backend.
  const double T = 0.5, Epsilon = 0.01;
  CompilerEngine Engine;
  auto BaselineStrategy = std::make_shared<const SamplingStrategy>(
      std::make_shared<const HTTGraph>(QDrift), T, Epsilon);
  auto TunedStrategy = std::make_shared<const SamplingStrategy>(
      std::make_shared<const HTTGraph>(Tuned), T, Epsilon);
  CompilationResult Baseline = Engine.compileOne(*BaselineStrategy, 42);
  CompilationResult Optimized = Engine.compileOne(*TunedStrategy, 42);

  // 5. Compare against the exact evolution.
  FidelityEvaluator Eval(H, T, /*NumColumns=*/16);
  Table R({"config", "samples N", "CNOTs", "1q gates", "total",
           "fidelity"});
  R.addRow({"qDrift baseline", std::to_string(Baseline.NumSamples),
            std::to_string(Baseline.Counts.CNOTs),
            std::to_string(Baseline.Counts.SingleQubit),
            std::to_string(Baseline.Counts.total()),
            formatDouble(Eval.fidelity(Baseline.Schedule), 5)});
  R.addRow({"MarQSim-GC", std::to_string(Optimized.NumSamples),
            std::to_string(Optimized.Counts.CNOTs),
            std::to_string(Optimized.Counts.SingleQubit),
            std::to_string(Optimized.Counts.total()),
            formatDouble(Eval.fidelity(Optimized.Schedule), 5)});
  R.print(std::cout);

  std::cout << "\nFirst gates of the optimized circuit (depth "
            << Optimized.Circ.depth() << "), as OpenQASM 2.0:\n";
  Circuit Head(Optimized.Circ.numQubits());
  for (size_t I = 0; I < std::min<size_t>(8, Optimized.Circ.size()); ++I)
    Head.append(Optimized.Circ.gate(I));
  std::cout << toQasm(Head);

  // 6. Batch compilation: 16 independent shots of the tuned strategy. The
  //    graph and alias tables above are reused; each shot draws from its
  //    own RNG substream, so any worker count gives the same batch.
  BatchRequest Req;
  Req.Strategy = TunedStrategy;
  Req.NumShots = 16;
  Req.Jobs = 0; // all hardware threads
  Req.Seed = 42;
  BatchResult Batch = Engine.compileBatch(Req);
  std::cout << "\nBatch of " << Batch.NumShots << " shots (jobs="
            << Batch.JobsUsed << "): CNOTs " << formatDouble(Batch.CNOTs.Mean)
            << " +- " << formatDouble(Batch.CNOTs.Std) << ", total "
            << formatDouble(Batch.Totals.Mean) << " +- "
            << formatDouble(Batch.Totals.Std) << ", hash "
            << Batch.batchHash() << "\n";
  return 0;
}
