//===- examples/syk_dynamics.cpp - SYK model time evolution ------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quantum-field-theory workload: the Sachdev-Ye-Kitaev model built from
// Majorana quadruples through our Jordan-Wigner machinery (the paper's
// SYK-1 benchmark). The example compiles increasing evolution times with
// MarQSim-GC-RP and tracks the return probability |<psi0|psi(t)>|^2 — the
// scrambling signature SYK studies look at — against exact evolution.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "service/SimulationService.h"
#include "sim/Evolution.h"
#include "sim/StateVector.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>

using namespace marqsim;

int main() {
  const unsigned NumQubits = 6;
  RNG Gen(2024);
  Hamiltonian H =
      makeSYK(NumQubits, /*NumTerms=*/120, /*J=*/1.0, Gen)
          .rescaledToLambda(18.0);
  std::cout << "SYK-4 model: " << NumQubits << " qubits ("
            << 2 * NumQubits << " Majorana modes), " << H.numTerms()
            << " Pauli strings, lambda=" << formatDouble(H.lambda())
            << "\n\n";

  const uint64_t Initial = 0b010101; // a computational reference state
  CVector Basis(size_t(1) << NumQubits, Complex(0, 0));
  Basis[Initial] = 1.0;

  // One declarative task per evolution time with the GC-RP mix. The two
  // MCFP solves, the combined matrix, and the alias tables are resolved
  // once; every later time is a pure cache hit re-targeted to its budget.
  SimulationService Service;
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(H);
  Spec.Mix = *ChannelMix::preset("gc-rp");
  Spec.PerturbRounds = 8;
  Spec.Epsilon = 0.02;
  Spec.Seed = 99;
  Spec.Evaluate.ExportShotZero = true;

  Table T({"t", "N", "CNOTs", "return prob (compiled)",
           "return prob (exact)"});
  for (double Time : {0.05, 0.1, 0.15, 0.2}) {
    Spec.Time = Time;
    std::optional<TaskResult> Task = Service.run(Spec);
    if (!Task)
      return 1;
    const CompilationResult &R = Task->ShotZero;

    StateVector Compiled(NumQubits, Initial);
    for (const ScheduledRotation &Step : R.Schedule)
      Compiled.applyPauliExp(Step.String, Step.Tau);
    double ReturnCompiled = std::norm(Compiled.amplitudes()[Initial]);

    CVector Exact = evolveExact(H, Time, Basis);
    double ReturnExact = std::norm(Exact[Initial]);

    T.addRow({formatDouble(Time), std::to_string(R.NumSamples),
              std::to_string(R.Counts.CNOTs),
              formatDouble(ReturnCompiled, 5),
              formatDouble(ReturnExact, 5)});
  }
  T.print(std::cout);
  CacheStats S = Service.stats();
  std::cout << "\ncache accounting: MCFP solves=" << S.matrixMisses()
            << ", graph+alias tables built=" << S.GraphMisses
            << " reused=" << S.GraphHits << " across 4 evolution times\n"
               "The compiled return probabilities track the exact ones; "
               "the deviation\nshrinks with epsilon (Theorem 4.1 bound "
               "2 lambda^2 t^2 / N).\n";
  return 0;
}
