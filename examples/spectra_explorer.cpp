//===- examples/spectra_explorer.cpp - The determinism/randomness dial -------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// MarQSim's central dial is the convex weight between the fully random
// qDrift matrix and the deterministic-leaning gate-cancellation matrix.
// This example sweeps that dial on a molecular-like workload and prints,
// for each setting:
//   * |lambda_2| — the mixing/convergence indicator of Section 5.4,
//   * the expected CNOTs per transition (Proposition 5.1), and
//   * measured CNOTs and fidelity of a compiled circuit,
// making the paper's trade-off (more determinism = fewer gates but slower
// chain mixing) directly visible.
//
//===----------------------------------------------------------------------===//

#include "core/CNOTCountOracle.h"
#include "hamgen/Molecular.h"
#include "service/SimulationService.h"
#include "support/Table.h"

#include <iostream>

using namespace marqsim;

int main() {
  Hamiltonian H = makeMolecularLike(8, 60, 5).rescaledToLambda(12.0);
  const double T = 0.6, Eps = 0.05;
  std::cout << "Determinism/randomness dial on a molecular-like "
               "Hamiltonian (8 qubits, 60 strings)\n\n";

  // Every dial setting is the same declarative task with different
  // channel weights: the service solves the gate-cancellation MCFP once
  // and every share reuses it (only the convex combination changes); the
  // fidelity evaluator is likewise built once, and per-shot fidelity runs
  // on the batch workers.
  SimulationService Service;
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(H);
  Spec.Time = T;
  Spec.Epsilon = Eps;
  Spec.Shots = 8;
  Spec.Seed = 11;
  Spec.Evaluate.FidelityColumns = 16;

  Table Out({"Pqd share", "|lambda2|", "E[CNOT/trans]", "CNOT(mean)",
             "CNOT(std)", "fid(mean)", "fid(std)"});
  for (double Share : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05}) {
    Spec.Mix = ChannelMix{Share, 1.0 - Share, 0.0};
    // An 8-shot batch per dial setting: the CNOT std makes the slower
    // mixing at low Pqd share visible alongside the gate savings.
    std::optional<TaskResult> Task = Service.run(Spec);
    if (!Task)
      return 1;
    auto Graph = Service.graphFor(Spec); // cached; spectra come for free
    if (!Graph)
      return 1;
    const Hamiltonian &Prepared = Graph->hamiltonian();
    double Lambda2 =
        Graph->transitionMatrix().secondEigenvalueMagnitude();
    double Expected = expectedTransitionCNOTs(
        Prepared, Graph->transitionMatrix(),
        Prepared.stationaryDistribution());
    Out.addRow({formatDouble(Share), formatDouble(Lambda2, 3),
                formatDouble(Expected, 4),
                formatDouble(Task->Batch.CNOTs.Mean),
                formatDouble(Task->Batch.CNOTs.Std),
                formatDouble(Task->Fidelity.Mean, 5),
                formatDouble(Task->Fidelity.Std, 5)});
  }
  Out.print(std::cout);
  CacheStats S = Service.stats();
  std::cout << "\ncache accounting: gate-cancellation MCFP solved "
            << S.GCSolveMisses << "x, reused " << S.GCSolveHits
            << "x across 6 dial settings\n"
               "Reading the dial: lambda2 rises as the Pqd share falls "
               "(slower mixing,\nlarger sampling variance) while the gate "
               "cost drops — the reconciliation\nthe paper's Section 5 is "
               "about.\n";
  return 0;
}
